// Real-network runtime: run one replica over TCP on the wall clock.
//
// The protocol code is transport-agnostic (it sees sim::IExecutor and
// net::INetwork); this module provides the production implementations:
//
//  * RealtimeExecutor — timer heap over the monotonic clock, driven by a
//    single node thread;
//  * TcpNetwork — full-mesh TCP with 4-byte-length-prefixed frames, a
//    peer-id handshake, and automatic reconnect;
//  * TcpNode — one thread per replica: poll() over the listening socket,
//    peer sockets and the next timer deadline; all protocol logic runs on
//    that thread, so the replica needs no locks.
//
// Outbound frames are never written inline: send() appends to a bounded
// per-peer SendQueue (refcounted payloads, no copies) and the node thread
// flushes every queue once per poll iteration with one scatter-gather
// writev per peer — all frames produced in an iteration (protocol bursts
// routinely fan a vote/timeout plus block responses at the same peer)
// coalesce into a single syscall. A full queue drops the newest frame.
//
// Reliability note: the paper assumes reliable channels. TCP gives that
// while a connection lives; frames racing a connection drop are lost and
// NOT retransmitted here — the protocol's own timeout/fallback machinery
// recovers, which is exactly the behaviour the paper prescribes for bad
// networks (backpressure drops from a full send queue land in the same
// bucket). Key distribution still uses the trusted dealer: all nodes of
// a cluster must be built from the same CryptoSystem.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/replica.h"
#include "obs/metrics.h"
#include "sim/executor.h"
#include "smr/messages.h"

namespace repro::transport {

/// Timer heap on the monotonic clock. Single-threaded: every method must
/// be called from the owning node thread.
class RealtimeExecutor final : public sim::IExecutor {
 public:
  RealtimeExecutor();

  SimTime now() const override;
  sim::EventId schedule_at(SimTime t, std::function<void()> cb) override;
  void cancel(sim::EventId id) override;

  /// Absolute time of the nearest pending event, or kSimTimeNever.
  /// Cancelled entries at the head of the heap are retired here (the
  /// protocol cancels and re-arms its round timer every round; reporting
  /// the stale deadline would wake the poll loop once per round for
  /// nothing).
  SimTime next_deadline();

  /// Fire everything due at `now()`. Returns events executed.
  std::size_t run_due();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    sim::EventId id;
    bool operator>(const Entry& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  std::chrono::steady_clock::time_point epoch_;
  std::uint64_t next_seq_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
  std::map<sim::EventId, std::function<void()>> callbacks_;
  std::unordered_set<sim::EventId> cancelled_;
};

struct PeerAddress {
  std::string host;
  std::uint16_t port = 0;
};

/// Bounded outbound frame queue for one peer connection, flushed with
/// scatter-gather vectored writes. Frames are {4-byte LE length header,
/// refcounted payload}; the payload bytes are shared with every other
/// queue holding the same multicast, never copied. Single-threaded (node
/// thread only).
///
/// Backpressure policy: when queued bytes would exceed the bound, the
/// *incoming* frame is dropped (drop-newest) and counted — equivalent to
/// the frame racing a connection drop, which the protocol already
/// tolerates. Older queued frames keep their ordering guarantee.
class SendQueue {
 public:
  static constexpr std::size_t kDefaultMaxBytes = 8u << 20;  // 8 MiB

  SendQueue() : SendQueue(kDefaultMaxBytes) {}
  explicit SendQueue(std::size_t max_bytes) : max_bytes_(max_bytes == 0 ? 1 : max_bytes) {}

  /// Enqueue one frame. Returns false — counting the drop into `stats` —
  /// when the frame would push the queue past its byte bound. `stats` may
  /// be null (transport-internal control frames stay out of the protocol
  /// traffic ledger). A nonzero `span_key` marks the frame for a
  /// kSendFlush span (queue-wait accounting) when it fully retires.
  bool push(SharedBytes payload, net::NetStats* stats, std::uint64_t span_key = 0);

  /// Install the span sink for kSendFlush records: `self` is the sending
  /// replica, `peer` the destination this queue feeds. Null disables.
  void set_span_sink(obs::SpanRing* spans, ReplicaId self, ReplicaId peer) {
    spans_ = spans;
    span_self_ = self;
    span_peer_ = peer;
  }

  enum class FlushResult {
    kDrained,   ///< queue fully written
    kProgress,  ///< wrote some bytes; socket buffer filled before empty
    kBlocked,   ///< EAGAIN before any byte — peer not draining
    kError,     ///< hard socket error; caller tears the connection down
  };

  /// Write queued frames to `fd` (non-blocking) until drained or the
  /// socket stops accepting. Each vectored write that makes progress
  /// counts one writev_batch in `stats`; frames completed by it count as
  /// writev_frames. Partial frame writes resume at the exact byte offset
  /// on the next flush (never re-sending, never skipping).
  FlushResult flush(int fd, net::NetStats* stats);

  bool empty() const { return frames_.empty(); }
  std::size_t frames() const { return frames_.size(); }
  /// Unwritten bytes queued (headers included, minus partial progress).
  std::size_t bytes() const { return queued_bytes_; }
  std::size_t max_bytes() const { return max_bytes_; }

 private:
  struct Frame {
    std::array<std::uint8_t, 4> header;
    SharedBytes payload;
    std::uint64_t span_key = 0;         ///< 0 = no kSendFlush span
    std::uint64_t enqueued_tick_us = 0; ///< steady clock at push (spans only)
  };

  std::size_t max_bytes_;
  obs::SpanRing* spans_ = nullptr;  ///< not owned; null = spans off
  ReplicaId span_self_ = 0;
  ReplicaId span_peer_ = 0;
  std::deque<Frame> frames_;
  /// Bytes of the front frame already written (spans header then payload).
  std::size_t head_offset_ = 0;
  std::size_t queued_bytes_ = 0;
};

/// Off-thread frame verification for the TCP data path, batched and
/// sharded by sender. Workers decode inbound frames and check envelope
/// signatures against the wire bytes; the node thread seeds the replica's
/// decode cache before delivering, so the single protocol thread pays
/// neither the parse nor the signature check for verified frames.
///
/// The first incarnation of this pool handed over one frame at a time
/// (one lock + one futex notify per submit, one wake-pipe write per
/// head-of-line completion) and delivered in *global* FIFO order — under
/// multicast load the per-frame synchronization cost more than the two
/// SHA-256s it offloaded, and the trickle of single-frame deliveries
/// defeated the read-drain/writev batching downstream (BENCH_pr3.json:
/// enabling the pool LOWERED throughput). The redesign (DESIGN.md §11):
///
///  * submit_batch() hands a whole read-sweep burst over as one job —
///    one lock, one notify; workers chain-notify while work remains.
///  * Workers pull chunks of up to kChunkFrames and verify them outside
///    the lock, amortizing the handoff across the chunk.
///  * Ordering is per-sender, not global: each sender's frames come back
///    in submission order (matching TCP's per-connection FIFO — cross-
///    sender order was never guaranteed by the network), so one slow
///    frame from peer A cannot head-of-line-block verified frames from
///    B..G.
///  * At most one wake-pipe write per drain cycle (wake_pending_ latch),
///    so responses re-enter the per-peer writev batcher in bursts.
///
/// Delivery remains unconditional (the replica re-derives and logs
/// failures itself), so protocol behaviour is unchanged. The simulator
/// never uses this; it stays single-threaded/deterministic. The pool
/// itself does not bound its queues: the node's poll loop stops reading
/// peer sockets once in_flight() reaches NodeConfig::verify_backlog_max,
/// so TCP backpressure caps the backlog.
class VerifyPool {
 public:
  /// One inbound frame. `key`/`has_key` carry a content hash the node
  /// thread already computed while probing for a decode-cache bypass, so
  /// the worker does not hash twice.
  struct Item {
    ReplicaId from = 0;
    Bytes payload;
    crypto::Digest key{};
    bool has_key = false;
  };

  struct Result {
    ReplicaId from = 0;
    Bytes payload;
    crypto::Digest key{};  ///< decode-cache content key of `payload`
    std::optional<smr::Message> msg;
    bool sig_ok = false;
    std::uint64_t wait_us = 0;  ///< submit -> drain pool round trip
  };

  /// Frames a worker claims per lock acquisition.
  static constexpr std::size_t kChunkFrames = 16;

  /// `wake` is invoked from a worker thread when results became drainable
  /// and no wake is already pending (it must be async-signal-ish safe:
  /// the node writes a byte to its wake pipe).
  VerifyPool(std::shared_ptr<const crypto::CryptoSystem> crypto, std::size_t threads,
             std::function<void()> wake);
  ~VerifyPool();

  VerifyPool(const VerifyPool&) = delete;
  VerifyPool& operator=(const VerifyPool&) = delete;

  /// Hand one read-sweep burst to the pool: one lock, one notify
  /// (node thread only). Empty batches are no-ops.
  void submit_batch(std::vector<Item> batch);

  /// Single-frame convenience over submit_batch (tests, odd frames).
  void submit(ReplicaId from, Bytes payload);

  /// All completed results whose same-sender predecessors have also
  /// completed — per-sender submission order, whole runs per sender
  /// (node thread only). Results still in flight stay queued.
  std::vector<Result> drain_ready();

  /// Frames submitted but not yet drained (lock-free).
  std::size_t in_flight() const { return in_flight_.load(std::memory_order_relaxed); }

  /// Adaptive bypass signal (node thread, lock-free): true once both cost
  /// EWMAs are calibrated (>= kCalibrationFrames each) and the measured
  /// per-frame verify cost is below the measured per-frame pool round
  /// trip. When the workload is one small frame per wakeup (the
  /// steady-state vote/proposal trickle), the handoff — futex, context
  /// switch on a loaded box, wake-pipe — costs more than the two SHA-256s
  /// it offloads, and the node should verify inline; under multicast
  /// bursts the amortized handoff gets cheap and pooling wins again. The
  /// caller keeps routing ~1/512 of eligible frames through the pool as
  /// probes so both EWMAs track the current regime.
  bool prefers_inline() const {
    if (verify_frames_measured_.load(std::memory_order_relaxed) < kCalibrationFrames ||
        handoff_frames_measured_.load(std::memory_order_relaxed) < kCalibrationFrames) {
      return false;
    }
    // Hysteresis: the two EWMAs sit close together exactly in the mixed
    // regimes (steady trickle with occasional bursts), where a raw
    // comparison flaps — and every flap to "pool" routes a full read
    // burst through the handoff before the refreshed EWMAs flip it back.
    // Engage the bypass only when verification is clearly cheaper (10%
    // under the handoff), disengage only when clearly dearer (10% over),
    // and hold the previous route in between.
    const std::uint64_t v = verify_ns_ewma_.load(std::memory_order_relaxed);
    const std::uint64_t h = handoff_ns_ewma_.load(std::memory_order_relaxed);
    bool engaged = inline_engaged_.load(std::memory_order_relaxed);
    if (engaged ? v * 10 > h * 11 : v * 10 < h * 9) engaged = !engaged;
    inline_engaged_.store(engaged, std::memory_order_relaxed);
    return engaged;
  }

  /// Current EWMA estimates, nanoseconds per frame (0 until calibrated).
  std::uint64_t verify_cost_ns() const { return verify_ns_ewma_.load(std::memory_order_relaxed); }
  std::uint64_t handoff_cost_ns() const { return handoff_ns_ewma_.load(std::memory_order_relaxed); }

  /// Frames each EWMA must see before prefers_inline() may fire.
  static constexpr std::uint64_t kCalibrationFrames = 64;

  /// Stop workers and join. Returns the number of frames submitted but
  /// never drained — frames that will now never be delivered. Idempotent;
  /// the destructor calls it too (discarding the count).
  std::size_t shutdown();

  /// Batch sizes seen by submit_batch (frames per handoff).
  const obs::Histogram& batch_size_hist() const { return batch_size_; }
  /// submit_batch -> drain_ready latency per frame, microseconds.
  const obs::Histogram& handoff_latency_hist() const { return handoff_us_; }

 private:
  struct Slot {
    Result r;
    std::uint64_t submitted_tick_us = 0;  ///< steady-clock at submit
    bool has_key = false;
    bool done = false;
  };
  /// Per-sender delivery queue; front = oldest undelivered frame. deque
  /// keeps references to non-front slots stable across push/pop, so
  /// workers may hold Slot* while the node drains completed heads.
  struct Shard {
    std::deque<Slot> slots;
  };

  void worker_loop();

  std::shared_ptr<const crypto::CryptoSystem> crypto_;
  std::function<void()> wake_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Slot*> jobs_;             // pending verification work, submit order
  std::map<ReplicaId, Shard> shards_;  // per-sender in-order delivery queues
  bool stop_ = false;
  std::atomic<std::size_t> in_flight_{0};
  /// Set by the worker that makes new results drainable; cleared by
  /// drain_ready. Collapses wake-pipe writes to one per drain cycle.
  std::atomic<bool> wake_pending_{false};
  /// Cost model for the adaptive bypass (relaxed atomics; the races
  /// between workers lose at most one EWMA step — these feed a routing
  /// heuristic, not protocol logic). alpha = 1/8.
  std::atomic<std::uint64_t> verify_ns_ewma_{0};   ///< per-frame decode+verify
  std::atomic<std::uint64_t> handoff_ns_ewma_{0};  ///< per-frame submit->drain
  /// Sticky routing decision for the prefers_inline hysteresis band.
  mutable std::atomic<bool> inline_engaged_{false};
  std::atomic<std::uint64_t> verify_frames_measured_{0};
  std::atomic<std::uint64_t> handoff_frames_measured_{0};
  obs::Histogram batch_size_;
  obs::Histogram handoff_us_;
  std::vector<std::thread> workers_;
};

struct NodeConfig {
  ReplicaId id = 0;
  /// Address of every replica in the cluster, indexed by replica id.
  std::vector<PeerAddress> peers;
  std::shared_ptr<const crypto::CryptoSystem> crypto;
  core::ProtocolConfig pcfg;
  std::uint64_t seed = 0;
  storage::Wal* wal = nullptr;  ///< optional crash-recovery log
  /// Delay between reconnect attempts to a down peer (microseconds).
  SimTime reconnect_interval = 200'000;
  /// How long a peer's send queue may sit blocked (EAGAIN, zero bytes
  /// accepted) before the connection is torn down (microseconds). A full
  /// socket buffer is a transient condition under load — only a stall
  /// spanning several reconnect intervals indicates a dead peer. 0
  /// derives max(1s, 5 * reconnect_interval).
  SimTime write_stall_timeout = 0;
  /// Byte bound of each per-peer send queue; a frame that would exceed it
  /// is dropped (see SendQueue).
  std::size_t send_queue_max_bytes = SendQueue::kDefaultMaxBytes;
  /// Accepted connections must complete the 4-byte hello within this
  /// budget (microseconds) or they are closed; otherwise half-open
  /// connections would hold conns_ slots (and fds) forever.
  SimTime hello_timeout = 2'000'000;
  /// The replica starts once the full peer mesh is connected, or after
  /// this grace period (microseconds) — whichever comes first. Starting
  /// before the mesh is up silently drops the first leader's proposal
  /// (no fd for the peer yet) and every cluster boot then pays a full
  /// round timeout plus a cluster-wide fallback before committing
  /// anything. The grace bound keeps a dead peer from stalling startup.
  SimTime start_grace_us = 500'000;
  /// Verification worker threads for inbound frames (decode + envelope
  /// signature off the poll thread, ordered handoff back — see
  /// VerifyPool). 0 = verify inline on the node thread.
  std::size_t verify_threads = 0;
  /// Backpressure bound on the verification pool: once this many frames
  /// are submitted but not yet delivered, the poll loop stops registering
  /// peer sockets for reads until the backlog drains — kernel socket
  /// buffers absorb the flow and TCP pushes back on senders, so peers
  /// producing frames faster than the workers verify them cannot grow the
  /// pool's queues without bound. 0 = unbounded (not recommended).
  std::size_t verify_backlog_max = 256;
  /// Optional metrics registry: the node attaches its NetStats and
  /// ReplicaStats counters once the replica exists on the node thread
  /// (Registry::attach is mutex-protected; the counters themselves are
  /// relaxed atomics, so an admin thread may snapshot while the node
  /// runs). Not owned; must outlive the node.
  obs::Registry* registry = nullptr;
  /// Optional structured trace sink shared with the replica. Wall-clock
  /// stamping should be enabled by the creator (real-time runtime).
  std::shared_ptr<obs::TraceRing> trace;
  /// Optional commit-lifecycle span sink, usually one wall-clock ring
  /// shared by every node of an in-process cluster (obs/span.h). Enables
  /// the transport milestones (socket read, verify-pool wait, send-queue
  /// flush) and the tag-0 ping/pong clock-offset estimator; when unset or
  /// capacity 0, neither exists — the wire traffic is byte-identical to a
  /// spans-free build.
  std::shared_ptr<obs::SpanRing> spans;
};

/// Builds the protocol instance for a node. Lets the transport host any
/// IReplica without depending on the experiment harness.
using ReplicaFactory =
    std::function<std::unique_ptr<core::IReplica>(const core::ReplicaContext&)>;

class TcpNode {
 public:
  TcpNode(NodeConfig cfg, ReplicaFactory factory);
  ~TcpNode();

  TcpNode(const TcpNode&) = delete;
  TcpNode& operator=(const TcpNode&) = delete;

  /// Binds the listening socket and spawns the node thread (which dials
  /// peers, starts the replica, and runs the event loop).
  void start();

  /// Signals the loop to exit and joins the thread.
  void stop();

  /// Commits observed so far (thread-safe).
  std::uint64_t committed() const { return committed_.load(std::memory_order_relaxed); }

  /// Liveness probes for /healthz (thread-safe, relaxed reads; refreshed
  /// once per poll iteration on the node thread).
  std::uint64_t last_commit_wall_us() const {
    return last_commit_wall_us_.load(std::memory_order_relaxed);
  }
  View current_view() const { return view_.load(std::memory_order_relaxed); }
  Round current_round() const { return round_.load(std::memory_order_relaxed); }

  /// Direct replica access — only safe after stop() (the node thread owns
  /// the replica while running).
  const core::IReplica& replica() const { return *replica_; }

  /// Network counters (traffic, writev batching, send-queue drops) — like
  /// replica(), only safe after stop(). Zero-valued if never started.
  net::NetStats net_stats() const;

  ReplicaId id() const { return cfg_.id; }

 private:
  class TcpNetwork;
  struct Conn;

  void run_loop();
  void try_connect(ReplicaId peer);
  /// Returns the bytes read off the socket (0 on teardown): the poll loop
  /// only spends another zero-timeout sweep when the previous one moved
  /// enough data to suggest more arrived while it was processing.
  std::size_t handle_readable(int fd);
  void close_peer(int fd);
  void on_frame(ReplicaId from, Bytes payload);
  /// Close accepted connections that have not identified themselves
  /// within cfg_.hello_timeout.
  void sweep_half_open();
  /// Flush every non-empty send queue (once per poll iteration); tears
  /// down connections on hard errors or stalls past write_budget_us().
  void flush_writes();
  /// Max no-progress stall before teardown, microseconds (see NodeConfig).
  SimTime write_budget_us() const;

  /// Submit the frames buffered by on_frame during the current read
  /// sweep to the pool as one batch (one lock, one notify).
  void flush_verify_batch();

  /// Deliver per-sender-in-order verified frames from the pool: seed the
  /// decode cache for frames that passed, then hand every frame to the
  /// replica (keyed, so the node thread never re-hashes the payload).
  void drain_verified();

  /// Frames the pool owes us plus frames buffered for the next
  /// submit_batch — what verify_backlog_max bounds.
  std::size_t verify_backlog() const {
    return (verify_pool_ ? verify_pool_->in_flight() : 0) + pending_batch_.size();
  }

  NodeConfig cfg_;
  ReplicaFactory factory_;
  RealtimeExecutor executor_;
  std::unique_ptr<TcpNetwork> network_;
  std::unique_ptr<core::IReplica> replica_;
  std::shared_ptr<smr::DecodeCache> decode_cache_;
  std::unique_ptr<VerifyPool> verify_pool_;
  /// Frames accumulated by on_frame during the current read sweep,
  /// submitted as one batch per sweep (node thread only).
  std::vector<VerifyPool::Item> pending_batch_;
  /// Per-sender frames in pending_batch_ or in the pool, not yet
  /// delivered — the decode-cache bypass may only skip the pool when its
  /// sender has nothing in flight, or frames would reorder within the
  /// sender's channel. Indexed by ReplicaId.
  std::vector<std::uint32_t> verify_pending_by_sender_;
  /// Frames routed inline by the adaptive bypass since the last probe;
  /// every 2^probe_shift_-th eligible frame goes through the pool
  /// instead, keeping the handoff EWMA fresh while the bypass is engaged.
  std::uint32_t bypass_probe_ = 0;
  /// Adaptive probe cadence: starts at 1/512 and doubles after every
  /// probe that leaves the bypass engaged, up to 1/8192; any disengage
  /// resets it. A probe is not free — on a busy (or single-core) box the
  /// worker wake-up preempts the node thread mid-sweep — and it is only
  /// *needed* when traffic is all trickle: a genuine multicast burst
  /// marks senders busy, which routes frames through the pool via the
  /// ordering rule and refreshes the handoff EWMA without any probe.
  std::uint32_t probe_shift_ = kProbeShiftBase;
  static constexpr std::uint32_t kProbeShiftBase = 9;   // 1/512
  static constexpr std::uint32_t kProbeShiftMax = 13;   // 1/8192
  /// Loopback deliveries queued by TcpNetwork::send(to == self), drained
  /// once per poll iteration — same deferred semantics as the simulator's
  /// self-delivery event, without an executor heap entry and closure
  /// allocation per message.
  std::deque<SharedBytes> self_inbox_;

  /// True when the span ring is installed and live (gates every transport
  /// span site and the clock-sync pings).
  bool spans_on() const { return cfg_.spans && cfg_.spans->enabled(); }
  /// Intercepts tag-0 transport control frames (clock-sync ping/pong)
  /// before protocol dispatch; only exists when spans are on.
  void handle_control_frame(Conn& conn, const Bytes& payload);
  /// Multicast a clock-sync ping to every identified peer (spans on only).
  void send_pings();

  std::thread thread_;
  std::atomic<bool> stop_flag_{false};
  std::atomic<std::uint64_t> committed_{0};
  std::atomic<std::uint64_t> last_commit_wall_us_{0};
  std::atomic<View> view_{0};
  std::atomic<Round> round_{0};
  /// Clock-offset estimation state (node thread only): best observed RTT
  /// per peer; a pong at or under it refreshes the offset estimate.
  std::map<ReplicaId, std::uint64_t> ping_best_rtt_;
  SimTime next_ping_at_ = 0;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};

  struct Conn {
    ReplicaId peer = UINT32_MAX;  ///< UINT32_MAX until the hello arrives
    Bytes inbox;                  ///< partial-frame read buffer
    SimTime accepted_at = 0;      ///< executor time at accept (hello deadline)
    SendQueue outbox;             ///< bounded outbound frame queue
    /// When the outbox first reported kBlocked with no progress since;
    /// kSimTimeNever while writes are flowing.
    SimTime blocked_since = kSimTimeNever;
  };
  std::map<int, Conn> conns_;               ///< fd -> connection state
  std::map<ReplicaId, int> fd_of_peer_;     ///< established, post-hello
};

}  // namespace repro::transport
