#include "transport/node.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "common/assert.h"
#include "common/log.h"

namespace repro::transport {
namespace {

constexpr std::uint32_t kMaxFrame = 16u << 20;  // 16 MiB
constexpr ReplicaId kUnknownPeer = UINT32_MAX;

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::uint32_t read_le32(const std::uint8_t* p) {
  return std::uint32_t(p[0]) | (std::uint32_t(p[1]) << 8) | (std::uint32_t(p[2]) << 16) |
         (std::uint32_t(p[3]) << 24);
}

void write_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = std::uint8_t(v);
  p[1] = std::uint8_t(v >> 8);
  p[2] = std::uint8_t(v >> 16);
  p[3] = std::uint8_t(v >> 24);
}

std::uint64_t read_le64(const std::uint8_t* p) {
  return std::uint64_t(read_le32(p)) | (std::uint64_t(read_le32(p + 4)) << 32);
}

void write_le64(std::uint8_t* p, std::uint64_t v) {
  write_le32(p, static_cast<std::uint32_t>(v));
  write_le32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

/// CLOCK_REALTIME microseconds, for cross-process clock-offset estimation
/// (the span ring stamps the same clock, so offsets apply directly).
std::uint64_t wall_clock_us() {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000 +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1'000;
}

/// Transport-level control frames ride tag 0 — smr::MsgType starts at 1,
/// so a protocol message can never begin with a zero byte and the wire
/// format needs no change. Only emitted when spans are enabled; a
/// spans-off cluster sends byte-identical traffic to a spans-free build.
constexpr std::uint8_t kCtrlTag = 0;
constexpr std::uint8_t kCtrlPing = 1;  ///< {0, 1, t1:le64} — sender wall us
constexpr std::uint8_t kCtrlPong = 2;  ///< {0, 2, t1:le64, t2:le64} — echo + responder wall us
constexpr std::size_t kPingFrameBytes = 10;
constexpr std::size_t kPongFrameBytes = 18;
/// Ping cadence per peer while spans are on. One round per second is
/// plenty: the analyzer keeps the min-RTT sample per directed pair across
/// the whole run, and clock drift over seconds is far below the
/// millisecond-scale stages the offsets are used to align. Pinging
/// faster just burns O(n^2) control frames per interval — at n=16 and
/// 250 ms that was ~2k extra frames/s of pure measurement traffic.
constexpr SimTime kPingIntervalUs = 1'000'000;

/// Does this wire payload carry a (steady or fallback) proposal? Only
/// those frames get transport spans — the critical path runs proposer ->
/// voters, and keying every vote/share frame would triple span volume for
/// stages the analyzer never stitches.
bool is_proposal_tag(const Bytes& payload) {
  if (payload.empty()) return false;
  return payload[0] == static_cast<std::uint8_t>(smr::MsgType::kProposal) ||
         payload[0] == static_cast<std::uint8_t>(smr::MsgType::kFbProposal);
}

/// Hard cap on connections parked in conns_ awaiting their hello. Together
/// with the hello deadline this bounds what an accept flood can pin: at
/// most this many fds, each for at most hello_timeout.
constexpr std::size_t kMaxPendingHellos = 64;

/// Frames per vectored write: each frame contributes a header iovec and a
/// payload iovec, and IOV_MAX is at least 16 on any POSIX system — 64
/// iovecs stays far under every real limit (Linux: 1024) while letting a
/// protocol burst coalesce dozens of frames into one syscall.
constexpr std::size_t kMaxIov = 64;

/// Write everything or fail — used only for the 4-byte connect hello,
/// written before the socket goes non-blocking. Data frames go through
/// SendQueue. A full socket buffer only means the peer is momentarily
/// slow — keep retrying until `budget_us` of wall time is spent; a single
/// timed-out poll() is not grounds for tearing the connection down.
bool write_all(int fd, const std::uint8_t* data, std::size_t len, SimTime budget_us) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::microseconds(budget_us);
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::send(fd, data + done, len - done, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR)) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now());
        if (remaining.count() <= 0) return false;  // stall outlived the budget
        // Socket buffer full: block until writable, in bounded slices so a
        // wedged peer cannot hold the node thread past the budget.
        pollfd pfd{fd, POLLOUT, 0};
        const int slice_ms = static_cast<int>(
            std::min<std::chrono::milliseconds::rep>(remaining.count(), 100));
        ::poll(&pfd, 1, slice_ms);
        continue;
      }
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

/// Extra zero-timeout poll passes per loop iteration: after the blocking
/// poll wakes, the loop re-polls and keeps reading while more input is
/// already pending, so a burst of frames (an always-fallback view fans
/// several multicasts at every replica) is processed — and its responses
/// queued — before the single flush_writes() of the iteration. Bounded so
/// a firehose peer cannot starve timers; one sweep costs one poll(0).
constexpr int kMaxReadSweeps = 4;

}  // namespace

// ---- VerifyPool -------------------------------------------------------------

namespace {

/// Monotonic microsecond tick for handoff-latency accounting. TCP-only
/// plumbing — never feeds protocol logic, so wall-clock nondeterminism is
/// fine here.
std::uint64_t steady_tick_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

VerifyPool::VerifyPool(std::shared_ptr<const crypto::CryptoSystem> crypto, std::size_t threads,
                       std::function<void()> wake)
    : crypto_(std::move(crypto)), wake_(std::move(wake)) {
  REPRO_ASSERT(crypto_ != nullptr && threads > 0);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

VerifyPool::~VerifyPool() { shutdown(); }

std::size_t VerifyPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  // Everything submitted but not drained is now undeliverable.
  return in_flight_.load(std::memory_order_relaxed);
}

void VerifyPool::submit_batch(std::vector<Item> batch) {
  if (batch.empty()) return;
  const std::uint64_t now_us = steady_tick_us();
  batch_size_.observe(batch.size());
  in_flight_.fetch_add(batch.size(), std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Item& it : batch) {
      Shard& shard = shards_[it.from];
      Slot& s = shard.slots.emplace_back();
      s.r.from = it.from;
      s.r.key = it.key;
      s.r.payload = std::move(it.payload);
      s.has_key = it.has_key;
      s.submitted_tick_us = now_us;
      jobs_.push_back(&s);
    }
  }
  // One notify for the whole burst; a woken worker chains the next while
  // jobs remain, so extra workers still engage for large batches.
  cv_.notify_one();
}

void VerifyPool::submit(ReplicaId from, Bytes payload) {
  std::vector<Item> one(1);
  one[0].from = from;
  one[0].payload = std::move(payload);
  submit_batch(std::move(one));
}

std::vector<VerifyPool::Result> VerifyPool::drain_ready() {
  std::vector<Result> out;
  // Clear the latch first: a completion racing this drain triggers a
  // fresh wake (at worst one spurious poll wakeup, never a lost result).
  wake_pending_.store(false, std::memory_order_release);
  std::uint64_t now_us = 0;  // stamped lazily; most calls drain nothing
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [from, shard] : shards_) {
      while (!shard.slots.empty() && shard.slots.front().done) {
        Slot& s = shard.slots.front();
        if (now_us == 0) now_us = steady_tick_us();
        const std::uint64_t lat_us = now_us - s.submitted_tick_us;
        handoff_us_.observe(lat_us);
        // Adaptive-bypass cost model: per-frame pool round trip, EWMA with
        // alpha = 1/8 (node thread only; relaxed is fine).
        const std::uint64_t old = handoff_ns_ewma_.load(std::memory_order_relaxed);
        const std::uint64_t lat_ns = lat_us * 1000;
        const std::uint64_t next = old == 0 ? lat_ns : old - old / 8 + lat_ns / 8;
        handoff_ns_ewma_.store(next, std::memory_order_relaxed);
        s.r.wait_us = lat_us;
        out.push_back(std::move(s.r));
        shard.slots.pop_front();
      }
    }
  }
  in_flight_.fetch_sub(out.size(), std::memory_order_relaxed);
  handoff_frames_measured_.fetch_add(out.size(), std::memory_order_relaxed);
  return out;
}

void VerifyPool::worker_loop() {
  std::vector<Slot*> chunk;
  for (;;) {
    chunk.clear();
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (stop_) return;
      const auto take =
          static_cast<std::ptrdiff_t>(std::min(jobs_.size(), kChunkFrames));
      chunk.assign(jobs_.begin(), jobs_.begin() + take);
      jobs_.erase(jobs_.begin(), jobs_.begin() + take);
      if (!jobs_.empty()) cv_.notify_one();  // chain the next worker
    }
    // Verify the whole chunk outside the lock: one handoff round for up
    // to kChunkFrames frames. The envelope check runs against the wire
    // bytes in hand (signed prefix of the payload) — no re-encode.
    const auto chunk_start = std::chrono::steady_clock::now();
    for (Slot* s : chunk) {
      Result& r = s->r;
      if (!s->has_key) r.key = smr::DecodeCache::key_of(r.payload);
      r.msg = smr::decode_message(r.payload);
      r.sig_ok =
          r.msg && smr::verify_message_signature_wire(*crypto_, r.from, *r.msg, r.payload);
    }
    if (!chunk.empty()) {
      // Feed the adaptive-bypass cost model: per-frame decode+verify time,
      // EWMA with alpha = 1/8 (relaxed load/store — a lost race between
      // workers costs one smoothing step, nothing more).
      const std::uint64_t chunk_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - chunk_start)
              .count());
      const std::uint64_t per_frame = chunk_ns / chunk.size();
      const std::uint64_t old = verify_ns_ewma_.load(std::memory_order_relaxed);
      const std::uint64_t next = old == 0 ? per_frame : old - old / 8 + per_frame / 8;
      verify_ns_ewma_.store(next, std::memory_order_relaxed);
      verify_frames_measured_.fetch_add(chunk.size(), std::memory_order_relaxed);
    }
    bool drainable = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (Slot* s : chunk) s->done = true;
      // Results became drainable iff some completed slot now heads its
      // sender's shard (later slots ride out with it on the same drain).
      for (Slot* s : chunk) {
        const Shard& shard = shards_.find(s->r.from)->second;
        if (!shard.slots.empty() && &shard.slots.front() == s) {
          drainable = true;
          break;
        }
      }
    }
    // Collapse wakes: one wake-pipe write per drain cycle, not one per
    // completion — the node drains whole batches per poll iteration.
    if (drainable && !wake_pending_.exchange(true, std::memory_order_acq_rel) && wake_) {
      wake_();
    }
  }
}

// ---- SendQueue --------------------------------------------------------------

bool SendQueue::push(SharedBytes payload, net::NetStats* stats, std::uint64_t span_key) {
  REPRO_ASSERT(payload != nullptr && payload->size() <= kMaxFrame);
  const std::size_t frame_bytes = 4 + payload->size();
  if (queued_bytes_ + frame_bytes > max_bytes_) {
    if (stats != nullptr) {
      stats->sendq_dropped_frames += 1;
      stats->sendq_dropped_bytes += frame_bytes;
    }
    return false;
  }
  Frame f;
  write_le32(f.header.data(), static_cast<std::uint32_t>(payload->size()));
  f.payload = std::move(payload);
  if (span_key != 0 && spans_ != nullptr) {
    f.span_key = span_key;
    f.enqueued_tick_us = steady_tick_us();
  }
  frames_.push_back(std::move(f));
  queued_bytes_ += frame_bytes;
  return true;
}

SendQueue::FlushResult SendQueue::flush(int fd, net::NetStats* stats) {
  bool wrote_any = false;
  while (!frames_.empty()) {
    // Gather the head of the queue into iovecs; the first frame may
    // resume mid-header or mid-payload from a previous partial write.
    std::array<iovec, kMaxIov> iov;
    std::size_t iovcnt = 0;
    bool first = true;
    for (const Frame& f : frames_) {
      if (iovcnt + 2 > kMaxIov) break;
      std::size_t off = first ? head_offset_ : 0;
      first = false;
      if (off < 4) {
        iov[iovcnt++] = {const_cast<std::uint8_t*>(f.header.data() + off), 4 - off};
        off = 0;
      } else {
        off -= 4;
      }
      if (off < f.payload->size()) {
        iov[iovcnt++] = {const_cast<std::uint8_t*>(f.payload->data() + off),
                         f.payload->size() - off};
      }
    }
    // sendmsg is writev plus MSG_NOSIGNAL (a reset peer must yield EPIPE,
    // not kill the process).
    msghdr mh{};
    mh.msg_iov = iov.data();
    mh.msg_iovlen = iovcnt;
    const ssize_t n = ::sendmsg(fd, &mh, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return wrote_any ? FlushResult::kProgress : FlushResult::kBlocked;
      }
      return FlushResult::kError;
    }
    wrote_any = true;
    queued_bytes_ -= static_cast<std::size_t>(n);
    if (stats != nullptr) {
      stats->writev_batches += 1;
      stats->writev_bytes += static_cast<std::uint64_t>(n);
    }
    // Retire fully-written frames; remember the offset into a partial one.
    std::size_t remaining = static_cast<std::size_t>(n);
    while (remaining > 0) {
      Frame& f = frames_.front();
      const std::size_t left = 4 + f.payload->size() - head_offset_;
      if (remaining < left) {
        head_offset_ += remaining;
        break;
      }
      remaining -= left;
      head_offset_ = 0;
      if (f.span_key != 0 && spans_ != nullptr) {
        // The frame fully left the process: queue-wait is over, the wire
        // hop starts. aux carries the send-queue wait; the wall-clock ring
        // stamps t_us itself.
        obs::SpanEvent ev;
        ev.stage = obs::SpanStage::kSendFlush;
        ev.replica = span_self_;
        ev.peer = span_peer_;
        ev.key = f.span_key;
        ev.aux = steady_tick_us() - f.enqueued_tick_us;
        spans_->push(ev);
      }
      frames_.pop_front();
      if (stats != nullptr) stats->writev_frames += 1;
    }
  }
  return FlushResult::kDrained;
}

// ---- RealtimeExecutor -------------------------------------------------------

RealtimeExecutor::RealtimeExecutor() : epoch_(std::chrono::steady_clock::now()) {}

SimTime RealtimeExecutor::now() const {
  return static_cast<SimTime>(std::chrono::duration_cast<std::chrono::microseconds>(
                                  std::chrono::steady_clock::now() - epoch_)
                                  .count());
}

sim::EventId RealtimeExecutor::schedule_at(SimTime t, std::function<void()> cb) {
  const std::uint64_t seq = next_seq_++;
  queue_.push(Entry{t, seq, seq});
  callbacks_.emplace(seq, std::move(cb));
  return seq;
}

void RealtimeExecutor::cancel(sim::EventId id) {
  if (callbacks_.count(id) != 0) cancelled_.insert(id);
}

SimTime RealtimeExecutor::next_deadline() {
  // Retire cancelled heads instead of reporting their stale deadlines:
  // the round timer is cancelled and re-armed every round, so the heap
  // head is routinely a dead entry whose time would cut the poll timeout
  // short for nothing.
  while (!queue_.empty()) {
    const Entry& e = queue_.top();
    if (cancelled_.erase(e.id) != 0) {
      callbacks_.erase(e.id);
      queue_.pop();
      continue;
    }
    return e.time;
  }
  return kSimTimeNever;
}

std::size_t RealtimeExecutor::run_due() {
  std::size_t fired = 0;
  const SimTime deadline = now();
  while (!queue_.empty() && queue_.top().time <= deadline) {
    const Entry e = queue_.top();
    queue_.pop();
    if (cancelled_.erase(e.id) != 0) {
      callbacks_.erase(e.id);
      continue;
    }
    auto it = callbacks_.find(e.id);
    if (it == callbacks_.end()) continue;
    auto cb = std::move(it->second);
    callbacks_.erase(it);
    cb();
    ++fired;
  }
  return fired;
}

// ---- TcpNetwork -------------------------------------------------------------

/// INetwork over the node's socket mesh. Lives on the node thread.
/// send() never touches the socket: frames land in the target peer's
/// bounded SendQueue and the poll loop flushes all queues per iteration
/// (one vectored write per peer). Accounting mirrors the simulated
/// Network: messages/bytes count frames accepted for the wire,
/// self-deliveries tally separately, send-queue drops separately.
class TcpNode::TcpNetwork final : public net::INetwork {
 public:
  explicit TcpNetwork(TcpNode& node) : node_(node) {}

  using INetwork::multicast;
  using INetwork::send;

  void send(ReplicaId from, ReplicaId to, SharedBytes payload) override {
    REPRO_ASSERT(from == node_.cfg_.id);
    REPRO_ASSERT(payload != nullptr);
    if (to == from) {
      stats_.self_messages += 1;
      stats_.self_bytes += payload->size();
      // Self-delivery: deferred like the simulator's loopback event, but
      // via a plain queue the poll loop drains once per iteration — no
      // executor heap entry or closure allocation per message. The
      // refcounted buffer rides along; no copy.
      node_.self_inbox_.push_back(std::move(payload));
      return;
    }
    auto fit = node_.fd_of_peer_.find(to);
    if (fit == node_.fd_of_peer_.end()) return;  // down; reconnect in progress
    auto cit = node_.conns_.find(fit->second);
    if (cit == node_.conns_.end()) return;
    const std::size_t size = payload->size();
    const std::uint8_t tag = size > 0 ? (*payload)[0] : 0xFF;
    // Proposal frames carry a content key so the send-queue flush span can
    // be joined with the receiver's socket-read span downstream.
    const std::uint64_t span_key =
        node_.spans_on() && is_proposal_tag(*payload)
            ? obs::span_key_of(payload->data(), payload->size())
            : 0;
    if (!cit->second.outbox.push(std::move(payload), &stats_, span_key)) {
      return;  // backpressure drop
    }
    stats_.messages += 1;
    stats_.bytes += size;
    if (size > 0 && tag < stats_.messages_by_type.size()) {
      stats_.messages_by_type[tag] += 1;
      stats_.bytes_by_type[tag] += size;
    }
  }

  void multicast(ReplicaId from, SharedBytes payload) override {
    stats_.multicasts += 1;
    const std::size_t n = node_.cfg_.peers.size();
    // One buffer for all n recipients (n-1 queues + the self-delivery).
    if (n > 1) stats_.payload_copies_avoided += n - 1;
    for (ReplicaId to = 0; to < n; ++to) {
      send(from, to, payload);
    }
  }

  net::NetStats& stats() { return stats_; }

 private:
  TcpNode& node_;
  net::NetStats stats_;
};

net::NetStats TcpNode::net_stats() const {
  return network_ ? network_->stats() : net::NetStats{};
}

// ---- TcpNode ---------------------------------------------------------------

TcpNode::TcpNode(NodeConfig cfg, ReplicaFactory factory)
    : cfg_(std::move(cfg)), factory_(std::move(factory)) {
  REPRO_ASSERT(cfg_.crypto != nullptr);
  REPRO_ASSERT(cfg_.id < cfg_.peers.size());
}

TcpNode::~TcpNode() { stop(); }

void TcpNode::start() {
  REPRO_ASSERT(!thread_.joinable());
  REPRO_ASSERT_MSG(pipe(wake_pipe_) == 0, "pipe() failed");
  set_nonblocking(wake_pipe_[0]);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  REPRO_ASSERT(listen_fd_ >= 0);
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(cfg_.peers[cfg_.id].port);
  REPRO_ASSERT_MSG(bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
                   "bind failed — port in use?");
  REPRO_ASSERT(listen(listen_fd_, 16) == 0);
  set_nonblocking(listen_fd_);

  thread_ = std::thread([this] { run_loop(); });
}

void TcpNode::stop() {
  if (!thread_.joinable()) return;
  stop_flag_.store(true);
  const char byte = 1;
  [[maybe_unused]] ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
  thread_.join();
  for (auto& [fd, conn] : conns_) ::close(fd);
  conns_.clear();
  fd_of_peer_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
}

void TcpNode::try_connect(ReplicaId peer) {
  if (stop_flag_.load() || fd_of_peer_.count(peer) != 0) return;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.peers[peer].port);
  inet_pton(AF_INET, cfg_.peers[peer].host.c_str(), &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    // Peer not up yet: retry.
    executor_.schedule_after(cfg_.reconnect_interval, [this, peer] { try_connect(peer); });
    return;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Hello: our replica id, so the acceptor can map the connection.
  std::uint8_t hello[4];
  write_le32(hello, cfg_.id);
  if (!write_all(fd, hello, 4, write_budget_us())) {
    ::close(fd);
    executor_.schedule_after(cfg_.reconnect_interval, [this, peer] { try_connect(peer); });
    return;
  }
  set_nonblocking(fd);
  Conn conn;
  conn.peer = peer;
  conn.outbox = SendQueue(cfg_.send_queue_max_bytes);
  if (spans_on()) conn.outbox.set_span_sink(cfg_.spans.get(), cfg_.id, peer);
  conns_.emplace(fd, std::move(conn));
  fd_of_peer_[peer] = fd;
}

void TcpNode::handle_control_frame(Conn& conn, const Bytes& payload) {
  if (conn.peer == kUnknownPeer || payload.size() < 2) return;
  if (payload[1] == kCtrlPing && payload.size() >= kPingFrameBytes) {
    // Echo t1, append our wall clock. Control frames bypass NetStats so
    // the protocol traffic ledger matches a spans-off run.
    Bytes pong(kPongFrameBytes);
    pong[0] = kCtrlTag;
    pong[1] = kCtrlPong;
    std::memcpy(pong.data() + 2, payload.data() + 2, 8);
    write_le64(pong.data() + 10, wall_clock_us());
    conn.outbox.push(make_shared_bytes(std::move(pong)), nullptr);
    return;
  }
  if (payload[1] == kCtrlPong && payload.size() >= kPongFrameBytes) {
    if (!spans_on()) return;  // we never pinged; stray pong
    const std::uint64_t t1 = read_le64(payload.data() + 2);
    const std::uint64_t t2 = read_le64(payload.data() + 10);
    const std::uint64_t t3 = wall_clock_us();
    if (t3 < t1) return;
    const std::uint64_t rtt = t3 - t1;
    auto [it, fresh] = ping_best_rtt_.emplace(conn.peer, rtt);
    if (!fresh && rtt > it->second) return;  // keep the min-RTT estimate
    it->second = rtt;
    // RTT-midpoint offset (NTP's two-point sample): assume the pong spent
    // rtt/2 in flight, so the peer's clock read t2 corresponds to our
    // t1 + rtt/2. Only improved estimates are published; the analyzer
    // takes the last one per pair.
    const std::int64_t offset = static_cast<std::int64_t>(t2) -
                                static_cast<std::int64_t>(t1 + rtt / 2);
    obs::SpanEvent ev;
    ev.stage = obs::SpanStage::kClockOffset;
    ev.replica = cfg_.id;
    ev.peer = conn.peer;
    ev.key = conn.peer;
    std::memcpy(&ev.aux, &offset, sizeof ev.aux);
    cfg_.spans->push(ev);
  }
}

void TcpNode::send_pings() {
  const SimTime now = executor_.now();
  if (now < next_ping_at_) return;
  next_ping_at_ = now + kPingIntervalUs;
  for (auto& [fd, conn] : conns_) {
    if (conn.peer == kUnknownPeer) continue;
    Bytes ping(kPingFrameBytes);
    ping[0] = kCtrlTag;
    ping[1] = kCtrlPing;
    write_le64(ping.data() + 2, wall_clock_us());
    conn.outbox.push(make_shared_bytes(std::move(ping)), nullptr);
  }
}

void TcpNode::close_peer(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  const ReplicaId peer = it->second.peer;
  conns_.erase(it);
  ::close(fd);
  if (peer != kUnknownPeer) {
    fd_of_peer_.erase(peer);
    // We initiate connections to lower-id peers; they re-dial us.
    if (peer < cfg_.id) {
      executor_.schedule_after(cfg_.reconnect_interval, [this, peer] { try_connect(peer); });
    }
  }
}

SimTime TcpNode::write_budget_us() const {
  if (cfg_.write_stall_timeout != 0) return cfg_.write_stall_timeout;
  return std::max<SimTime>(1'000'000, 5 * cfg_.reconnect_interval);
}

void TcpNode::sweep_half_open() {
  // Every identified conn holds exactly one fd_of_peer_ entry, so equal
  // sizes mean no half-open connections — skip the scan (and the clock
  // read) that every poll iteration would otherwise pay.
  if (conns_.size() == fd_of_peer_.size()) return;
  const SimTime now = executor_.now();
  std::vector<int> expired;
  for (const auto& [fd, conn] : conns_) {
    if (conn.peer == kUnknownPeer && now - conn.accepted_at > cfg_.hello_timeout) {
      expired.push_back(fd);
    }
  }
  for (int fd : expired) close_peer(fd);
}

void TcpNode::on_frame(ReplicaId from, Bytes payload) {
  if (spans_on() && is_proposal_tag(payload)) {
    obs::SpanEvent ev;
    ev.stage = obs::SpanStage::kSocketRead;
    ev.replica = cfg_.id;
    ev.peer = from;
    ev.key = obs::span_key_of(payload.data(), payload.size());
    ev.aux = payload.size();
    cfg_.spans->push(ev);
  }
  if (verify_pool_) {
    VerifyPool::Item item;
    item.from = from;
    if (verify_pending_by_sender_[from] == 0) {
      // Adaptive bypass (DESIGN.md §12.4): when the measured per-frame
      // verify cost sits below the pool's round-trip latency — the
      // steady-state trickle of one small vote or proposal per wakeup,
      // where the futex handoff dwarfs the two SHA-256s it offloads —
      // deliver inline on the node thread. Only legal for an idle sender
      // (same per-sender-FIFO argument as the cache bypass below). A
      // slowly backed-off fraction of eligible frames (1/512 down to
      // 1/8192) still goes through the pool as probes so the handoff
      // EWMA tracks the current regime; a multicast burst marks the
      // sender busy, piles its frames into the pool via the ordering
      // rule (refreshing the EWMAs without any probe), and the flipped
      // decision resets the probe cadence.
      const bool adaptive = verify_pool_->prefers_inline();
      if (adaptive) {
        const std::uint32_t mask = (1u << probe_shift_) - 1;
        if ((++bypass_probe_ & mask) != 0) {
          network_->stats().verify_inline_frames += 1;
          if (replica_) replica_->on_message_uncached(from, payload);
          return;
        }
        // This frame is a probe: it pays the handoff so the EWMA stays
        // honest. Each probe that leaves the bypass engaged halves the
        // probe rate — steady trickle converges to near-zero probe cost.
        if (probe_shift_ < kProbeShiftMax) ++probe_shift_;
      } else {
        probe_shift_ = kProbeShiftBase;
      }
      // Idle sender: probe the decode cache. A hit with this sender
      // already marked verified makes delivery a pure cache lookup, so the
      // pool round-trip would be pure overhead — deliver inline. Safe for
      // per-sender ordering precisely because nothing from `from` is in
      // flight. The key is computed here either way and rides along on the
      // Item, so a miss costs the workers no second hash. Calibration
      // probes (the 1-in-256 frames falling through while the adaptive
      // bypass is engaged) skip this shortcut: they exist to feed the
      // handoff EWMA a fresh sample, and a cache-hit inline delivery would
      // starve it — pinning the inline route on stale measurements.
      item.key = smr::DecodeCache::key_of(payload);
      item.has_key = true;
      if (!adaptive && decode_cache_->sender_verified(item.key, from)) {
        network_->stats().verify_bypass_frames += 1;
        if (replica_) replica_->on_message_keyed(from, payload, item.key);
        return;
      }
    }
    // Buffer for the end-of-sweep submit_batch — one lock + one notify for
    // the whole read burst instead of one per frame.
    item.payload = std::move(payload);
    pending_batch_.push_back(std::move(item));
    ++verify_pending_by_sender_[from];
    return;
  }
  // Inline path: a peer frame is never byte-shared with another delivery,
  // so skip the decode-cache probe (hash + LRU insert) entirely.
  if (replica_) replica_->on_message_uncached(from, payload);
}

void TcpNode::flush_verify_batch() {
  if (!verify_pool_ || pending_batch_.empty()) return;
  net::NetStats& stats = network_->stats();
  stats.verify_batches += 1;
  stats.verify_frames += pending_batch_.size();
  verify_pool_->submit_batch(std::move(pending_batch_));
  pending_batch_.clear();
}

void TcpNode::drain_verified() {
  if (!verify_pool_) return;
  for (auto& r : verify_pool_->drain_ready()) {
    --verify_pending_by_sender_[r.from];
    if (spans_on() && is_proposal_tag(r.payload)) {
      obs::SpanEvent ev;
      ev.stage = obs::SpanStage::kVerifyDequeue;
      ev.replica = cfg_.id;
      ev.peer = r.from;
      ev.key = obs::span_key_of(r.payload.data(), r.payload.size());
      ev.aux = r.wait_us;
      cfg_.spans->push(ev);
    }
    if (r.msg && r.sig_ok) {
      // Seed the shared decode cache (marking the sender verified), so the
      // replica's delivery below is a pure cache hit: no parse, no
      // signature check on the protocol thread.
      decode_cache_->insert(r.key, std::move(*r.msg), r.from);
    }
    // Deliver unconditionally — the replica re-derives (and logs) decode
    // or signature failures itself, keeping semantics identical to the
    // inline path. The keyed entry point reuses the digest the worker (or
    // the bypass probe) already computed.
    if (replica_) replica_->on_message_keyed(r.from, r.payload, r.key);
  }
}

std::size_t TcpNode::handle_readable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return 0;
  Conn& conn = it->second;

  std::size_t total_read = 0;
  std::uint8_t buf[65536];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.inbox.insert(conn.inbox.end(), buf, buf + n);
      total_read += static_cast<std::size_t>(n);
      // A short read means the socket buffer is drained: the follow-up
      // recv would only confirm EAGAIN. Bytes landing in the gap are
      // caught by the next poll — worth saving a syscall per wakeup on
      // the steady-state path (one small frame per read).
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close_peer(fd);  // EOF or hard error
    return total_read;
  }

  // Hello first on accepted connections. Identification is attempted on
  // every read, so an unidentified conn buffers at most 3 bytes across
  // calls — half-open peers cannot grow inbox memory, and the hello
  // deadline (sweep_half_open) bounds how long they hold the fd slot.
  if (conn.peer == kUnknownPeer) {
    if (conn.inbox.size() < 4) return total_read;
    const ReplicaId peer = read_le32(conn.inbox.data());
    conn.inbox.erase(conn.inbox.begin(), conn.inbox.begin() + 4);
    if (peer >= cfg_.peers.size() || fd_of_peer_.count(peer) != 0) {
      close_peer(fd);
      return total_read;
    }
    conn.peer = peer;
    fd_of_peer_[peer] = fd;
    if (spans_on()) conn.outbox.set_span_sink(cfg_.spans.get(), cfg_.id, peer);
  }

  // Extract complete frames.
  std::size_t offset = 0;
  while (conn.inbox.size() - offset >= 4) {
    const std::uint32_t len = read_le32(conn.inbox.data() + offset);
    if (len > kMaxFrame) {
      close_peer(fd);
      return total_read;
    }
    if (conn.inbox.size() - offset - 4 < len) break;
    Bytes payload(conn.inbox.begin() + offset + 4, conn.inbox.begin() + offset + 4 + len);
    offset += 4 + len;
    if (len > 0 && payload[0] == kCtrlTag) {
      // Transport control plane (clock-sync ping/pong): consumed here,
      // never delivered to the replica. Peers only emit these with spans
      // on, but tolerate them regardless — mixed-config clusters must not
      // feed a zero-tag frame into message decode.
      handle_control_frame(conn, payload);
      continue;
    }
    on_frame(conn.peer, std::move(payload));
    // on_frame can close fd via a send failure; revalidate.
    it = conns_.find(fd);
    if (it == conns_.end()) return total_read;
  }
  if (offset > 0) conn.inbox.erase(conn.inbox.begin(), conn.inbox.begin() + offset);
  return total_read;
}

void TcpNode::run_loop() {
  network_ = std::make_unique<TcpNetwork>(*this);
  decode_cache_ = std::make_shared<smr::DecodeCache>(cfg_.pcfg.decode_cache_capacity);
  if (cfg_.verify_threads > 0) {
    verify_pool_ = std::make_unique<VerifyPool>(cfg_.crypto, cfg_.verify_threads, [this] {
      const char byte = 1;
      [[maybe_unused]] ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
    });
  }
  verify_pending_by_sender_.assign(cfg_.peers.size(), 0);
  pending_batch_.clear();

  core::ReplicaContext ctx;
  ctx.sim = &executor_;
  ctx.net = network_.get();
  ctx.crypto = cfg_.crypto;
  ctx.id = cfg_.id;
  ctx.config = cfg_.pcfg;
  ctx.seed = cfg_.seed;
  ctx.wal = cfg_.wal;
  ctx.decode_cache = decode_cache_;
  ctx.trace = cfg_.trace;
  ctx.spans = cfg_.spans;
  replica_ = factory_(ctx);
  replica_->ledger().set_commit_callback([this](const smr::Block&, SimTime) {
    committed_.fetch_add(1);
    // Liveness beacon for /healthz and the stall watchdog: wall time of
    // the most recent local commit (relaxed — the reader only compares
    // against "now" with millisecond tolerance).
    last_commit_wall_us_.store(wall_clock_us(), std::memory_order_relaxed);
  });
  if (cfg_.registry != nullptr) {
    // The counters live inside the replica/network owned by this thread;
    // attach is serialized by the registry mutex and each counter read is
    // a relaxed atomic load, so the admin thread can snapshot while the
    // node runs.
    net::register_net_stats(*cfg_.registry, network_->stats());
    core::register_replica_stats(*cfg_.registry, replica_->stats(), cfg_.id);
    cfg_.registry->attach_gauge_fn("repro_committed_blocks",
                                   {{"replica", std::to_string(cfg_.id)}},
                                   [this] { return committed(); });
    if (verify_pool_) {
      const obs::Labels labels{{"replica", std::to_string(cfg_.id)}};
      // in_flight() is a relaxed atomic load; the pool object outlives the
      // loop (shutdown() joins the workers but keeps the storage), so the
      // admin thread can keep scraping after the node stops.
      cfg_.registry->attach_gauge_fn("repro_verify_queue_depth", labels, [this] {
        return static_cast<std::uint64_t>(verify_pool_->in_flight());
      });
      cfg_.registry->attach_histogram("repro_verify_batch_size", labels,
                                      &verify_pool_->batch_size_hist());
      cfg_.registry->attach_histogram("repro_verify_handoff_latency_us", labels,
                                      &verify_pool_->handoff_latency_hist());
    }
  }

  // Dial lower-id peers (they accept); higher-id peers dial us. The
  // replica itself starts only once the full mesh is connected (or the
  // grace deadline passes): a proposal multicast before the peer fds
  // exist is silently dropped, and a cluster booting that way pays a
  // whole round timeout plus a cluster-wide fallback before the first
  // commit.
  for (ReplicaId peer = 0; peer < cfg_.id; ++peer) try_connect(peer);
  bool replica_started = false;
  const SimTime start_deadline = executor_.now() + cfg_.start_grace_us;

  std::vector<pollfd> pfds;
  bool fatal = false;
  while (!stop_flag_.load(std::memory_order_relaxed) && !fatal) {
    if (!replica_started &&
        (fd_of_peer_.size() + 1 >= cfg_.peers.size() || executor_.now() >= start_deadline)) {
      replica_started = true;
      replica_->start();
    }
    // Read sweeps: the first poll blocks until the next timer deadline (or
    // input); follow-up passes poll with a zero timeout and only continue
    // while input is still pending. Draining a whole burst before the
    // iteration's single flush is what lets the per-peer send queues
    // coalesce the burst's responses into one writev per peer.
    for (int sweep = 0; sweep < kMaxReadSweeps; ++sweep) {
      // Backpressure: past the verification backlog cap, peer sockets are
      // not registered for reads (errors/hangups still surface — poll
      // reports POLLERR/POLLHUP regardless of events). Inbound bytes pile
      // up in kernel socket buffers and TCP pushes back on the senders;
      // the pool's wake reopens reading once drain_verified() catches up.
      // The backlog counts frames already in the pool plus frames buffered
      // for the next submit_batch, and is re-checked both every sweep and
      // between sockets within a sweep (below) — a burst can overshoot the
      // cap by at most one socket's buffered bytes, not a whole sweep.
      const bool rx_paused = verify_pool_ && cfg_.verify_backlog_max > 0 &&
                             verify_backlog() >= cfg_.verify_backlog_max;
      pfds.clear();
      pfds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
      pfds.push_back(pollfd{listen_fd_, POLLIN, 0});
      for (const auto& [fd, conn] : conns_) {
        // A backlogged outbox registers for writability so a draining peer
        // wakes the loop (the flush itself happens once per iteration).
        short events = conn.outbox.empty() ? 0 : POLLOUT;
        if (!rx_paused) events |= POLLIN;
        pfds.push_back(pollfd{fd, events, 0});
      }

      int timeout_ms = 100;
      SimTime deadline = executor_.next_deadline();
      if (!replica_started) deadline = std::min(deadline, start_deadline);
      if (deadline != kSimTimeNever) {
        const SimTime now = executor_.now();
        timeout_ms = deadline <= now
                         ? 0
                         : static_cast<int>(std::min<SimTime>((deadline - now) / 1000 + 1, 100));
      }
      const int ready = ::poll(pfds.data(), pfds.size(), sweep == 0 ? timeout_ms : 0);
      if (ready < 0) {
        if (errno != EINTR) fatal = true;
        break;
      }
      if (ready == 0) break;  // timer deadline (sweep 0) or burst drained

      if (pfds[0].revents & POLLIN) {
        char drain[16];
        while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
        }
      }
      if (pfds[1].revents & POLLIN) {
        for (;;) {
          const int fd = ::accept(listen_fd_, nullptr, nullptr);
          if (fd < 0) break;
          std::size_t pending = 0;
          for (const auto& [cfd, conn] : conns_) {
            if (conn.peer == kUnknownPeer) ++pending;
          }
          if (pending >= kMaxPendingHellos) {
            // Accept flood: refuse rather than pin more fds. A legitimate
            // peer re-dials via its reconnect timer.
            ::close(fd);
            continue;
          }
          const int one = 1;
          setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          set_nonblocking(fd);
          Conn conn;
          conn.accepted_at = executor_.now();
          conn.outbox = SendQueue(cfg_.send_queue_max_bytes);
          conns_.emplace(fd, std::move(conn));
        }
      }
      // Collect ready fds first: handle_readable can mutate conns_.
      std::vector<int> readable;
      for (std::size_t i = 2; i < pfds.size(); ++i) {
        if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) readable.push_back(pfds[i].fd);
      }
      std::size_t sweep_bytes = 0;
      for (int fd : readable) {
        sweep_bytes += handle_readable(fd);
        // Re-check the backlog after every socket, not just at sweep
        // start: one sweep reads up to every peer's pending bytes, which
        // could overshoot verify_backlog_max by a full burst before the
        // next sweep's rx_paused check. Remaining sockets keep their
        // bytes in kernel buffers — TCP pushes back for us.
        if (verify_pool_ && cfg_.verify_backlog_max > 0 &&
            verify_backlog() >= cfg_.verify_backlog_max) {
          break;
        }
      }
      // Hand this sweep's burst to the pool as one job: one lock, one
      // notify, regardless of how many frames the sweep produced.
      flush_verify_batch();
      // Each readable socket was drained to EAGAIN above, so another
      // zero-timeout sweep only pays off when data kept arriving while
      // this one was processing — plausible after a heavy sweep, pure
      // syscall overhead after a light one (the steady state: one small
      // proposal or vote per wakeup).
      if (sweep_bytes < 32768) break;
    }
    sweep_half_open();

    // Hand back frames the verification workers finished, per-sender in
    // submission order. (Flush again first: the sweep loop's fatal-error
    // path can exit with frames still buffered.)
    flush_verify_batch();
    drain_verified();

    // Loopback deliveries (handlers may queue more; drain to empty). The
    // cached entry point wins here: the sender seeded the decode cache at
    // encode time, so delivery is a pure hit.
    while (!self_inbox_.empty()) {
      SharedBytes payload = std::move(self_inbox_.front());
      self_inbox_.pop_front();
      if (replica_) replica_->on_message(cfg_.id, *payload);
    }

    executor_.run_due();

    // Health snapshot for the admin thread; clock-sync pings ride the
    // same cadence check (spans only — a spans-off run stays wire- and
    // stats-identical to the seed).
    view_.store(replica_->current_view(), std::memory_order_relaxed);
    round_.store(replica_->current_round(), std::memory_order_relaxed);
    if (spans_on()) send_pings();

    // Everything produced this iteration (frame handlers, verified
    // deliveries, due timers) is queued by now; one vectored write per
    // peer flushes it.
    flush_writes();
  }
  if (verify_pool_) {
    // Drain before joining: frames already read off sockets deserve
    // delivery (dropping them skews per-run message accounting — every
    // vt>0 bench row used to end with 1–21 frames undelivered). Submit
    // the buffered tail, then give the workers a bounded window to finish
    // what is in flight while we keep delivering results.
    flush_verify_batch();
    const auto drain_deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
    while (verify_pool_->in_flight() > 0 &&
           std::chrono::steady_clock::now() < drain_deadline) {
      drain_verified();
      if (verify_pool_->in_flight() > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
    drain_verified();
    // Join the workers; anything still stuck after the drain window can
    // never be delivered — count it instead of dropping silently. The
    // loss is benign (equivalent to frames racing the connection
    // teardown) but should be visible in the stats ledger. The pool
    // object itself stays alive: the registry may hold attached pointers
    // into its histograms.
    const std::size_t dropped = verify_pool_->shutdown() + pending_batch_.size();
    pending_batch_.clear();
    if (dropped > 0) {
      network_->stats().verify_dropped_at_stop += dropped;
      LOG_WARN("node %u: verify pool stopped with %zu frames undelivered",
               static_cast<unsigned>(cfg_.id), dropped);
    }
  }
}

void TcpNode::flush_writes() {
  // Snapshot first: a flush failure tears connections out of conns_.
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) {
    if (!conn.outbox.empty()) fds.push_back(fd);
  }
  const SimTime now = executor_.now();
  for (int fd : fds) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    Conn& conn = it->second;
    switch (conn.outbox.flush(fd, &network_->stats())) {
      case SendQueue::FlushResult::kDrained:
      case SendQueue::FlushResult::kProgress:
        conn.blocked_since = kSimTimeNever;
        break;
      case SendQueue::FlushResult::kBlocked:
        // A peer accepting zero bytes is only torn down once the stall
        // outlives the write budget — same tolerance the old blocking
        // write path gave a full socket buffer.
        if (conn.blocked_since == kSimTimeNever) {
          conn.blocked_since = now;
        } else if (now - conn.blocked_since > write_budget_us()) {
          close_peer(fd);
        }
        break;
      case SendQueue::FlushResult::kError:
        close_peer(fd);
        break;
    }
  }
}

}  // namespace repro::transport
