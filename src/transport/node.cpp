#include "transport/node.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "common/assert.h"
#include "common/log.h"

namespace repro::transport {
namespace {

constexpr std::uint32_t kMaxFrame = 16u << 20;  // 16 MiB
constexpr ReplicaId kUnknownPeer = UINT32_MAX;

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::uint32_t read_le32(const std::uint8_t* p) {
  return std::uint32_t(p[0]) | (std::uint32_t(p[1]) << 8) | (std::uint32_t(p[2]) << 16) |
         (std::uint32_t(p[3]) << 24);
}

void write_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = std::uint8_t(v);
  p[1] = std::uint8_t(v >> 8);
  p[2] = std::uint8_t(v >> 16);
  p[3] = std::uint8_t(v >> 24);
}

/// Write everything or fail (localhost frames are small; blocking writes
/// from the single node thread keep the implementation lock-free).
bool write_all(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::send(fd, data + done, len - done, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR)) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        // Socket buffer full: briefly block until writable.
        pollfd pfd{fd, POLLOUT, 0};
        if (::poll(&pfd, 1, 1000) > 0) continue;
      }
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

// ---- RealtimeExecutor -------------------------------------------------------

RealtimeExecutor::RealtimeExecutor() : epoch_(std::chrono::steady_clock::now()) {}

SimTime RealtimeExecutor::now() const {
  return static_cast<SimTime>(std::chrono::duration_cast<std::chrono::microseconds>(
                                  std::chrono::steady_clock::now() - epoch_)
                                  .count());
}

sim::EventId RealtimeExecutor::schedule_at(SimTime t, std::function<void()> cb) {
  const std::uint64_t seq = next_seq_++;
  queue_.push(Entry{t, seq, seq});
  callbacks_.emplace(seq, std::move(cb));
  return seq;
}

void RealtimeExecutor::cancel(sim::EventId id) {
  if (callbacks_.count(id) != 0) cancelled_.insert(id);
}

SimTime RealtimeExecutor::next_deadline() const {
  // Cancelled heads still wake the loop early — harmless, they are
  // dropped in run_due().
  return queue_.empty() ? kSimTimeNever : queue_.top().time;
}

std::size_t RealtimeExecutor::run_due() {
  std::size_t fired = 0;
  const SimTime deadline = now();
  while (!queue_.empty() && queue_.top().time <= deadline) {
    const Entry e = queue_.top();
    queue_.pop();
    if (cancelled_.erase(e.id) != 0) {
      callbacks_.erase(e.id);
      continue;
    }
    auto it = callbacks_.find(e.id);
    if (it == callbacks_.end()) continue;
    auto cb = std::move(it->second);
    callbacks_.erase(it);
    cb();
    ++fired;
  }
  return fired;
}

// ---- TcpNetwork -------------------------------------------------------------

/// INetwork over the node's socket mesh. Lives on the node thread.
class TcpNode::TcpNetwork final : public net::INetwork {
 public:
  explicit TcpNetwork(TcpNode& node) : node_(node) {}

  void send(ReplicaId from, ReplicaId to, Bytes payload) override {
    REPRO_ASSERT(from == node_.cfg_.id);
    if (to == from) {
      // Self-delivery: queue on the executor like the simulator does.
      node_.executor_.schedule_at(
          node_.executor_.now(),
          [&node = node_, payload = std::move(payload)] {
            if (node.replica_) node.replica_->on_message(node.cfg_.id, payload);
          });
      return;
    }
    auto it = node_.fd_of_peer_.find(to);
    if (it == node_.fd_of_peer_.end()) return;  // down; reconnect in progress
    std::uint8_t header[4];
    write_le32(header, static_cast<std::uint32_t>(payload.size()));
    if (!write_all(it->second, header, 4) ||
        !write_all(it->second, payload.data(), payload.size())) {
      node_.close_peer(it->second);
    }
  }

  void multicast(ReplicaId from, const Bytes& payload) override {
    for (ReplicaId to = 0; to < node_.cfg_.peers.size(); ++to) {
      send(from, to, payload);
    }
  }

 private:
  TcpNode& node_;
};

// ---- TcpNode ---------------------------------------------------------------

TcpNode::TcpNode(NodeConfig cfg, ReplicaFactory factory)
    : cfg_(std::move(cfg)), factory_(std::move(factory)) {
  REPRO_ASSERT(cfg_.crypto != nullptr);
  REPRO_ASSERT(cfg_.id < cfg_.peers.size());
}

TcpNode::~TcpNode() { stop(); }

void TcpNode::start() {
  REPRO_ASSERT(!thread_.joinable());
  REPRO_ASSERT_MSG(pipe(wake_pipe_) == 0, "pipe() failed");
  set_nonblocking(wake_pipe_[0]);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  REPRO_ASSERT(listen_fd_ >= 0);
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(cfg_.peers[cfg_.id].port);
  REPRO_ASSERT_MSG(bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
                   "bind failed — port in use?");
  REPRO_ASSERT(listen(listen_fd_, 16) == 0);
  set_nonblocking(listen_fd_);

  thread_ = std::thread([this] { run_loop(); });
}

void TcpNode::stop() {
  if (!thread_.joinable()) return;
  stop_flag_.store(true);
  const char byte = 1;
  [[maybe_unused]] ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
  thread_.join();
  for (auto& [fd, conn] : conns_) ::close(fd);
  conns_.clear();
  fd_of_peer_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
}

void TcpNode::try_connect(ReplicaId peer) {
  if (stop_flag_.load() || fd_of_peer_.count(peer) != 0) return;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.peers[peer].port);
  inet_pton(AF_INET, cfg_.peers[peer].host.c_str(), &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    // Peer not up yet: retry.
    executor_.schedule_after(cfg_.reconnect_interval, [this, peer] { try_connect(peer); });
    return;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Hello: our replica id, so the acceptor can map the connection.
  std::uint8_t hello[4];
  write_le32(hello, cfg_.id);
  if (!write_all(fd, hello, 4)) {
    ::close(fd);
    executor_.schedule_after(cfg_.reconnect_interval, [this, peer] { try_connect(peer); });
    return;
  }
  set_nonblocking(fd);
  conns_[fd] = Conn{peer, {}};
  fd_of_peer_[peer] = fd;
}

void TcpNode::close_peer(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  const ReplicaId peer = it->second.peer;
  conns_.erase(it);
  ::close(fd);
  if (peer != kUnknownPeer) {
    fd_of_peer_.erase(peer);
    // We initiate connections to lower-id peers; they re-dial us.
    if (peer < cfg_.id) {
      executor_.schedule_after(cfg_.reconnect_interval, [this, peer] { try_connect(peer); });
    }
  }
}

void TcpNode::on_frame(ReplicaId from, Bytes payload) {
  if (replica_) replica_->on_message(from, payload);
}

void TcpNode::handle_readable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = it->second;

  std::uint8_t buf[65536];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.inbox.insert(conn.inbox.end(), buf, buf + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close_peer(fd);  // EOF or hard error
    return;
  }

  // Hello first on accepted connections.
  if (conn.peer == kUnknownPeer) {
    if (conn.inbox.size() < 4) return;
    const ReplicaId peer = read_le32(conn.inbox.data());
    conn.inbox.erase(conn.inbox.begin(), conn.inbox.begin() + 4);
    if (peer >= cfg_.peers.size() || fd_of_peer_.count(peer) != 0) {
      close_peer(fd);
      return;
    }
    conn.peer = peer;
    fd_of_peer_[peer] = fd;
  }

  // Extract complete frames.
  std::size_t offset = 0;
  while (conn.inbox.size() - offset >= 4) {
    const std::uint32_t len = read_le32(conn.inbox.data() + offset);
    if (len > kMaxFrame) {
      close_peer(fd);
      return;
    }
    if (conn.inbox.size() - offset - 4 < len) break;
    Bytes payload(conn.inbox.begin() + offset + 4, conn.inbox.begin() + offset + 4 + len);
    offset += 4 + len;
    on_frame(conn.peer, std::move(payload));
    // on_frame can close fd via a send failure; revalidate.
    it = conns_.find(fd);
    if (it == conns_.end()) return;
  }
  if (offset > 0) conn.inbox.erase(conn.inbox.begin(), conn.inbox.begin() + offset);
}

void TcpNode::run_loop() {
  network_ = std::make_unique<TcpNetwork>(*this);

  core::ReplicaContext ctx;
  ctx.sim = &executor_;
  ctx.net = network_.get();
  ctx.crypto = cfg_.crypto;
  ctx.id = cfg_.id;
  ctx.config = cfg_.pcfg;
  ctx.seed = cfg_.seed;
  ctx.wal = cfg_.wal;
  replica_ = factory_(ctx);
  replica_->ledger().set_commit_callback(
      [this](const smr::Block&, SimTime) { committed_.fetch_add(1); });

  // Dial lower-id peers (they accept); higher-id peers dial us.
  for (ReplicaId peer = 0; peer < cfg_.id; ++peer) try_connect(peer);
  replica_->start();

  std::vector<pollfd> pfds;
  while (!stop_flag_.load(std::memory_order_relaxed)) {
    pfds.clear();
    pfds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    pfds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (const auto& [fd, conn] : conns_) pfds.push_back(pollfd{fd, POLLIN, 0});

    int timeout_ms = 100;
    const SimTime deadline = executor_.next_deadline();
    if (deadline != kSimTimeNever) {
      const SimTime now = executor_.now();
      timeout_ms = deadline <= now
                       ? 0
                       : static_cast<int>(std::min<SimTime>((deadline - now) / 1000 + 1, 100));
    }
    const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) break;

    if (pfds[0].revents & POLLIN) {
      char drain[16];
      while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
    }
    if (pfds[1].revents & POLLIN) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        const int one = 1;
        setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        set_nonblocking(fd);
        conns_[fd] = Conn{kUnknownPeer, {}};
      }
    }
    // Collect ready fds first: handle_readable can mutate conns_.
    std::vector<int> readable;
    for (std::size_t i = 2; i < pfds.size(); ++i) {
      if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) readable.push_back(pfds[i].fd);
    }
    for (int fd : readable) handle_readable(fd);

    executor_.run_due();
  }
}

}  // namespace repro::transport
