// Network delay models — where the adversary lives.
//
// The paper's channels are reliable and authenticated, with delays chosen
// by the adversary: bounded by Δ under synchrony, unbounded-but-finite
// under asynchrony, and bounded after GST under partial synchrony. Each
// model below decides a delivery delay per message; none may drop
// messages (reliability), so even the strongest adversary only defers.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace repro::net {

/// Context handed to a delay model for one message.
struct MessageContext {
  ReplicaId from = 0;
  ReplicaId to = 0;
  std::size_t size_bytes = 0;
  SimTime now = 0;
};

class DelayModel {
 public:
  virtual ~DelayModel() = default;

  /// Delivery delay (microseconds) for this message.
  virtual SimTime delay(const MessageContext& ctx, Rng& rng) = 0;
};

/// Synchrony: delays uniform in [min_delay, delta]. All honest-to-honest
/// messages arrive within Δ.
class SynchronousModel final : public DelayModel {
 public:
  SynchronousModel(SimTime min_delay, SimTime delta) : min_(min_delay), delta_(delta) {}

  SimTime delay(const MessageContext&, Rng& rng) override {
    return rng.uniform_range(min_, delta_);
  }

 private:
  SimTime min_;
  SimTime delta_;
};

/// Full asynchrony: heavy exponential delays with the given mean, capped
/// at `max_delay` (delays must be finite — reliability). With the mean a
/// small multiple of the protocol timeout, no leader ever assembles a
/// quorum in time, which is exactly the adversary that kills DiemBFT's
/// liveness while our fallback still terminates.
class AsynchronousModel final : public DelayModel {
 public:
  AsynchronousModel(SimTime mean, SimTime max_delay) : mean_(mean), max_(max_delay) {}

  SimTime delay(const MessageContext&, Rng& rng) override {
    const double d = rng.exponential(static_cast<double>(mean_));
    return std::min<SimTime>(static_cast<SimTime>(d), max_);
  }

 private:
  SimTime mean_;
  SimTime max_;
};

/// Partial synchrony: before GST behave as `pre` (typically
/// AsynchronousModel), after GST uniform in [min_delay, delta]. A message
/// sent before GST is additionally clamped to land by GST + delta
/// (the classic "all in-flight messages arrive by GST + Δ" reading).
class PartialSynchronyModel final : public DelayModel {
 public:
  PartialSynchronyModel(SimTime gst, SimTime min_delay, SimTime delta,
                        std::unique_ptr<DelayModel> pre)
      : gst_(gst), min_(min_delay), delta_(delta), pre_(std::move(pre)) {}

  SimTime delay(const MessageContext& ctx, Rng& rng) override {
    if (ctx.now >= gst_) return rng.uniform_range(min_, delta_);
    const SimTime raw = pre_->delay(ctx, rng);
    const SimTime latest = gst_ + delta_ - ctx.now;  // arrive by GST + Δ
    return std::min(raw, latest);
  }

 private:
  SimTime gst_;
  SimTime min_;
  SimTime delta_;
  std::unique_ptr<DelayModel> pre_;
};

/// Targeted adversary: messages to or from replicas in the target set are
/// deferred by `attack_delay`; everything else is synchronous. The
/// classic "starve the leader" attack — the harness updates the target
/// set as the leader schedule progresses.
class TargetedDelayModel final : public DelayModel {
 public:
  TargetedDelayModel(SimTime min_delay, SimTime delta, SimTime attack_delay)
      : min_(min_delay), delta_(delta), attack_(attack_delay) {}

  void set_targets(std::set<ReplicaId> targets) { targets_ = std::move(targets); }
  const std::set<ReplicaId>& targets() const { return targets_; }

  SimTime delay(const MessageContext& ctx, Rng& rng) override {
    if (targets_.count(ctx.from) != 0 || targets_.count(ctx.to) != 0) {
      return attack_ + rng.uniform_range(min_, delta_);
    }
    return rng.uniform_range(min_, delta_);
  }

 private:
  SimTime min_;
  SimTime delta_;
  SimTime attack_;
  std::set<ReplicaId> targets_;
};

/// Adaptive leader-targeting adversary — the strongest asynchronous
/// scheduler we model, and the one that realizes the paper's "no liveness
/// under asynchrony" for DiemBFT: it observes the protocol state (an
/// asynchronous adversary sees everything) and defers every message to or
/// from the *current* leaders long enough that no quorum ever assembles
/// for them, while all other traffic flows synchronously. Leaders rotate,
/// the adversary re-targets. Against the asynchronous fallback this
/// adversary is powerless: in a fallback every replica drives a chain and
/// the coin elects the leader only retroactively.
class AdaptiveLeaderAttackModel final : public DelayModel {
 public:
  using TargetsFn = std::function<std::set<ReplicaId>()>;

  AdaptiveLeaderAttackModel(SimTime min_delay, SimTime delta, SimTime attack_delay)
      : min_(min_delay), delta_(delta), attack_(attack_delay) {}

  /// The harness binds this to "leaders of the rounds honest replicas are
  /// currently in". Without a binding the model degrades to synchrony.
  void set_targets_fn(TargetsFn fn) { targets_fn_ = std::move(fn); }

  SimTime delay(const MessageContext& ctx, Rng& rng) override {
    if (targets_fn_) {
      const std::set<ReplicaId> targets = targets_fn_();
      if (targets.count(ctx.from) != 0 || targets.count(ctx.to) != 0) {
        return attack_ + rng.uniform_range(min_, delta_);
      }
    }
    return rng.uniform_range(min_, delta_);
  }

 private:
  SimTime min_;
  SimTime delta_;
  SimTime attack_;
  TargetsFn targets_fn_;
};

/// Piecewise timeline: phases [start_i, start_{i+1}) each with their own
/// inner model. Used for the liveness-timeline experiment (sync → async
/// window → sync again).
class SwitchingModel final : public DelayModel {
 public:
  struct Phase {
    SimTime start;
    std::unique_ptr<DelayModel> model;
  };

  /// Phases must be sorted by start; first phase should start at 0.
  explicit SwitchingModel(std::vector<Phase> phases) : phases_(std::move(phases)) {}

  SimTime delay(const MessageContext& ctx, Rng& rng) override {
    DelayModel* active = phases_.front().model.get();
    for (const auto& p : phases_) {
      if (ctx.now >= p.start) active = p.model.get();
    }
    return active->delay(ctx, rng);
  }

 private:
  std::vector<Phase> phases_;
};

/// Network partition: the replica set is split into groups; intra-group
/// traffic is synchronous, cross-group traffic is deferred until the
/// partition heals at `heal_time` (channels stay reliable — messages are
/// delayed, never dropped, as the paper's model requires). A partition
/// with no group holding 2f+1 replicas halts any quorum protocol until
/// the heal; the interesting property is clean recovery afterwards.
class PartitionModel final : public DelayModel {
 public:
  PartitionModel(std::vector<std::vector<ReplicaId>> groups, SimTime heal_time,
                 SimTime min_delay, SimTime delta)
      : heal_(heal_time), min_(min_delay), delta_(delta) {
    for (std::size_t g = 0; g < groups.size(); ++g) {
      for (ReplicaId id : groups[g]) group_of_[id] = g;
    }
  }

  SimTime delay(const MessageContext& ctx, Rng& rng) override {
    const SimTime base = rng.uniform_range(min_, delta_);
    if (ctx.now >= heal_) return base;
    auto a = group_of_.find(ctx.from);
    auto b = group_of_.find(ctx.to);
    const bool same = a != group_of_.end() && b != group_of_.end() && a->second == b->second;
    if (same) return base;
    return (heal_ - ctx.now) + base;  // parked until the heal
  }

 private:
  SimTime heal_;
  SimTime min_;
  SimTime delta_;
  std::unordered_map<ReplicaId, std::size_t> group_of_;
};

/// Runtime-mutable chaos overlay (the fuzzer's network adversary): wraps
/// an inner model and layers two self-expiring attacks on top of its
/// delays.
///
///  * Dynamic partition: set_partition splits the replicas into groups
///    until `heal_time`; cross-group messages are parked until the heal
///    (same reliable-channel discipline as PartitionModel). The window
///    expires by itself — `ctx.now >= heal` reverts to the inner model —
///    so schedules need no paired heal event, and a later set_partition
///    simply replaces the cut.
///  * Leader attack window: between [start, end) every message touching
///    a replica in targets_fn() is deferred by attack_delay, the
///    AdaptiveLeaderAttackModel behaviour scoped to a time window.
///
/// Both attacks stack (a targeted leader inside a partitioned group pays
/// both penalties), and neither draws randomness beyond the inner
/// model's, so an overlay with no active window is delay-identical to
/// the bare inner model.
class ChaosOverlayModel final : public DelayModel {
 public:
  using TargetsFn = std::function<std::set<ReplicaId>()>;

  explicit ChaosOverlayModel(std::unique_ptr<DelayModel> inner) : inner_(std::move(inner)) {}

  /// Partition into `groups` until `heal_time` (absolute sim time).
  /// Replicas in no group form an implicit extra group together.
  void set_partition(const std::vector<std::vector<ReplicaId>>& groups, SimTime heal_time) {
    group_of_.clear();
    for (std::size_t g = 0; g < groups.size(); ++g) {
      for (ReplicaId id : groups[g]) group_of_[id] = g + 1;
    }
    heal_ = heal_time;
  }

  /// Defer traffic touching targets_fn() by attack_delay in [start, end).
  void set_attack_window(SimTime start, SimTime end, SimTime attack_delay, TargetsFn fn) {
    attack_start_ = start;
    attack_end_ = end;
    attack_delay_ = attack_delay;
    targets_fn_ = std::move(fn);
  }

  SimTime delay(const MessageContext& ctx, Rng& rng) override {
    SimTime d = inner_->delay(ctx, rng);
    if (ctx.now < heal_ && !group_of_.empty()) {
      const std::size_t a = group_id(ctx.from);
      const std::size_t b = group_id(ctx.to);
      if (a != b) d += heal_ - ctx.now;  // parked until the heal
    }
    if (targets_fn_ && ctx.now >= attack_start_ && ctx.now < attack_end_) {
      const std::set<ReplicaId> targets = targets_fn_();
      if (targets.count(ctx.from) != 0 || targets.count(ctx.to) != 0) {
        d += attack_delay_;
      }
    }
    return d;
  }

 private:
  std::size_t group_id(ReplicaId id) const {
    auto it = group_of_.find(id);
    return it == group_of_.end() ? 0 : it->second;
  }

  std::unique_ptr<DelayModel> inner_;
  std::unordered_map<ReplicaId, std::size_t> group_of_;
  SimTime heal_ = 0;
  SimTime attack_start_ = 0;
  SimTime attack_end_ = 0;
  SimTime attack_delay_ = 0;
  TargetsFn targets_fn_;
};

/// Fixed-delay model for unit tests (fully predictable schedules).
class FixedDelayModel final : public DelayModel {
 public:
  explicit FixedDelayModel(SimTime d) : d_(d) {}
  SimTime delay(const MessageContext&, Rng&) override { return d_; }

 private:
  SimTime d_;
};

}  // namespace repro::net
