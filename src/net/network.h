// Simulated reliable authenticated all-to-all network.
//
// Point-to-point channels between n replicas, delays chosen per message by
// a DelayModel (the adversary). Channels never drop or corrupt messages
// and sender identity is authenticated (the paper's model); Byzantine
// *content* is produced by faulty replica behaviours, not by the network.
//
// Exact accounting: every payload is a serialized byte string, and the
// stats ledger records message and byte counts (total, per message-type
// tag, and in time windows) — the communication-complexity benchmarks read
// these counters.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/types.h"
#include "net/delay_model.h"
#include "obs/metrics.h"
#include "sim/simulation.h"

namespace repro::net {

/// Cumulative traffic counters.
///
/// Accounting policy (explicit — the complexity benches depend on it):
///  * `messages` / `bytes` / `*_by_type` count **network** messages only.
///    Self-delivery (a replica processing its own multicast) is free and
///    excluded, matching how the literature counts communication
///    complexity — a multicast from one of n replicas is n-1 messages.
///  * Self-deliveries are tallied separately in `self_messages` /
///    `self_bytes`, so the exclusion is visible rather than silent.
///  * `Network::delivered()` counts handler invocations (self-deliveries
///    included, undeliverable payloads excluded) — a processing metric
///    for drain/quiescence checks, not a traffic metric.
struct NetStats {
  obs::Counter messages;
  obs::Counter bytes;
  /// Self-deliveries, excluded from `messages`/`bytes` per the policy.
  obs::Counter self_messages;
  obs::Counter self_bytes;
  /// Indexed by the message-type tag (first byte of the payload).
  std::array<obs::Counter, 32> messages_by_type{};
  std::array<obs::Counter, 32> bytes_by_type{};

  /// Data-path counters (zero-copy multicast + batched writes). These are
  /// efficiency metrics, not traffic metrics: they never feed the
  /// communication-complexity benches.
  /// multicast() invocations.
  obs::Counter multicasts;
  /// Payload buffers that were *shared* instead of deep-copied: for each
  /// multicast, every recipient beyond the first reuses the one
  /// serialized buffer (n recipients -> n-1 copies avoided).
  obs::Counter payload_copies_avoided;
  /// TCP transport only: writev() syscalls that made progress, frames
  /// fully flushed through them, and bytes written. Mean frames per batch
  /// = writev_frames / writev_batches.
  obs::Counter writev_batches;
  obs::Counter writev_frames;
  obs::Counter writev_bytes;
  /// TCP transport only: frames rejected by the bounded per-peer send
  /// queue (backpressure drop policy; the protocol's timeout/fallback
  /// machinery recovers, exactly as for frames racing a connection drop).
  obs::Counter sendq_dropped_frames;
  obs::Counter sendq_dropped_bytes;
  /// TCP transport only, verify pool (NodeConfig::verify_threads > 0):
  /// batches handed to the pool (one lock + one notify each), frames in
  /// them, frames that skipped the pool on a decode-cache hit with the
  /// sender already verified, and frames still undelivered when the pool
  /// stopped (submitted but never drained — a stop mid-burst; the loss is
  /// equivalent to frames racing the connection teardown).
  obs::Counter verify_batches;
  obs::Counter verify_frames;
  obs::Counter verify_bypass_frames;
  /// Frames routed inline by the adaptive bypass (measured per-frame
  /// verify cost below the pool's round-trip latency — see
  /// VerifyPool::prefers_inline), as opposed to the cache-hit bypass
  /// counted above.
  obs::Counter verify_inline_frames;
  obs::Counter verify_dropped_at_stop;

  NetStats operator-(const NetStats& o) const {
    NetStats d;
    d.messages = messages - o.messages;
    d.bytes = bytes - o.bytes;
    d.self_messages = self_messages - o.self_messages;
    d.self_bytes = self_bytes - o.self_bytes;
    for (std::size_t i = 0; i < messages_by_type.size(); ++i) {
      d.messages_by_type[i] = messages_by_type[i] - o.messages_by_type[i];
      d.bytes_by_type[i] = bytes_by_type[i] - o.bytes_by_type[i];
    }
    d.multicasts = multicasts - o.multicasts;
    d.payload_copies_avoided = payload_copies_avoided - o.payload_copies_avoided;
    d.writev_batches = writev_batches - o.writev_batches;
    d.writev_frames = writev_frames - o.writev_frames;
    d.writev_bytes = writev_bytes - o.writev_bytes;
    d.sendq_dropped_frames = sendq_dropped_frames - o.sendq_dropped_frames;
    d.sendq_dropped_bytes = sendq_dropped_bytes - o.sendq_dropped_bytes;
    d.verify_batches = verify_batches - o.verify_batches;
    d.verify_frames = verify_frames - o.verify_frames;
    d.verify_bypass_frames = verify_bypass_frames - o.verify_bypass_frames;
    d.verify_inline_frames = verify_inline_frames - o.verify_inline_frames;
    d.verify_dropped_at_stop = verify_dropped_at_stop - o.verify_dropped_at_stop;
    return d;
  }
};

/// Walk every scalar NetStats counter with its stable metric name (the
/// by-type arrays are registered separately, one label per type tag).
template <typename Fn>
void for_each_counter(const NetStats& s, Fn&& fn) {
  fn("repro_net_messages_total", &s.messages);
  fn("repro_net_bytes_total", &s.bytes);
  fn("repro_net_self_messages_total", &s.self_messages);
  fn("repro_net_self_bytes_total", &s.self_bytes);
  fn("repro_net_multicasts_total", &s.multicasts);
  fn("repro_net_payload_copies_avoided_total", &s.payload_copies_avoided);
  fn("repro_net_writev_batches_total", &s.writev_batches);
  fn("repro_net_writev_frames_total", &s.writev_frames);
  fn("repro_net_writev_bytes_total", &s.writev_bytes);
  fn("repro_net_sendq_dropped_frames_total", &s.sendq_dropped_frames);
  fn("repro_net_sendq_dropped_bytes_total", &s.sendq_dropped_bytes);
  fn("repro_verify_batches_total", &s.verify_batches);
  fn("repro_verify_frames_total", &s.verify_frames);
  fn("repro_verify_bypass_frames_total", &s.verify_bypass_frames);
  fn("repro_verify_inline_frames_total", &s.verify_inline_frames);
  fn("repro_verify_dropped_at_stop_total", &s.verify_dropped_at_stop);
}

/// Attach every NetStats counter to `reg`; by-type tallies get a
/// type="<tag>" label. Storage stays inside `s` — no duplication.
inline void register_net_stats(obs::Registry& reg, const NetStats& s) {
  for_each_counter(s, [&](const char* name, const obs::Counter* c) {
    reg.attach_counter(name, {}, c);
  });
  for (std::size_t i = 0; i < s.messages_by_type.size(); ++i) {
    const obs::Labels labels{{"type", std::to_string(i)}};
    reg.attach_counter("repro_net_messages_by_type_total", labels,
                       &s.messages_by_type[i]);
    reg.attach_counter("repro_net_bytes_by_type_total", labels,
                       &s.bytes_by_type[i]);
  }
}

/// What protocol code needs from a network: point-to-point send and
/// multicast. The simulated Network below implements it for experiments;
/// transport::TcpNetwork implements it over real sockets.
class INetwork {
 public:
  virtual ~INetwork() = default;

  /// Send one message (reliable, authenticated-sender channel). The
  /// payload is a refcounted immutable buffer: implementations share it
  /// between the delivery queue / socket writes instead of copying.
  virtual void send(ReplicaId from, ReplicaId to, SharedBytes payload) = 0;

  /// Send to all n replicas including the sender (the paper's
  /// "multicast"). One serialized buffer serves every recipient.
  virtual void multicast(ReplicaId from, SharedBytes payload) = 0;

  // Convenience wrappers for callers holding a plain buffer.
  void send(ReplicaId from, ReplicaId to, Bytes payload) {
    send(from, to, make_shared_bytes(std::move(payload)));
  }
  void multicast(ReplicaId from, Bytes payload) {
    multicast(from, make_shared_bytes(std::move(payload)));
  }
};

class Network final : public INetwork {
 public:
  /// Handler invoked on delivery: (from, payload).
  using Handler = std::function<void(ReplicaId from, const Bytes& payload)>;

  Network(sim::Simulation& sim, std::uint32_t n, std::unique_ptr<DelayModel> model,
          Rng rng);

  std::uint32_t n() const { return static_cast<std::uint32_t>(handlers_.size()); }

  /// Install the delivery handler for a replica. Must be set before any
  /// message addressed to it is delivered.
  void register_handler(ReplicaId id, Handler handler);

  using INetwork::multicast;
  using INetwork::send;

  /// Send one message. Self-sends are delivered at the current time with
  /// zero network cost.
  void send(ReplicaId from, ReplicaId to, SharedBytes payload) override;

  /// Counts n-1 network messages (self-delivery is free). All n
  /// deliveries share `payload` — zero per-recipient copies.
  void multicast(ReplicaId from, SharedBytes payload) override;

  const NetStats& stats() const { return stats_; }

  /// Swap the delay model mid-run (some experiments flip the network from
  /// good to bad explicitly rather than via SwitchingModel).
  void set_delay_model(std::unique_ptr<DelayModel> model) { model_ = std::move(model); }
  DelayModel& delay_model() { return *model_; }

  /// Total messages delivered so far (for drain/quiescence checks).
  std::uint64_t delivered() const { return delivered_; }

 private:
  void deliver_after(SimTime delay, ReplicaId from, ReplicaId to, SharedBytes payload);

  sim::Simulation& sim_;
  std::unique_ptr<DelayModel> model_;
  Rng rng_;
  std::vector<Handler> handlers_;
  NetStats stats_;
  std::uint64_t delivered_ = 0;
};

}  // namespace repro::net
