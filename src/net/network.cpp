#include "net/network.h"

#include "common/assert.h"

namespace repro::net {

Network::Network(sim::Simulation& sim, std::uint32_t n, std::unique_ptr<DelayModel> model,
                 Rng rng)
    : sim_(sim), model_(std::move(model)), rng_(std::move(rng)), handlers_(n) {
  REPRO_ASSERT(model_ != nullptr);
}

void Network::register_handler(ReplicaId id, Handler handler) {
  REPRO_ASSERT(id < handlers_.size());
  handlers_[id] = std::move(handler);
}

void Network::deliver_after(SimTime delay, ReplicaId from, ReplicaId to,
                            SharedBytes payload) {
  // The delivery queue holds a reference to the one serialized buffer; a
  // multicast in flight to n-1 peers costs one allocation total.
  sim_.schedule_after(delay, [this, from, to, payload = std::move(payload)]() {
    // delivered() is a processing metric: count only payloads that actually
    // reach a handler, so drain checks don't see phantom deliveries for
    // replicas that were never registered.
    if (handlers_[to]) {
      ++delivered_;
      handlers_[to](from, *payload);
    }
  });
}

void Network::send(ReplicaId from, ReplicaId to, SharedBytes payload) {
  REPRO_ASSERT(from < handlers_.size() && to < handlers_.size());
  REPRO_ASSERT(payload != nullptr);
  if (from == to) {
    // Free per the accounting policy (see NetStats), but tallied so the
    // exclusion shows up in dumps instead of silently undercounting.
    stats_.self_messages += 1;
    stats_.self_bytes += payload->size();
    deliver_after(0, from, to, std::move(payload));
    return;
  }
  stats_.messages += 1;
  stats_.bytes += payload->size();
  if (!payload->empty()) {
    const std::uint8_t tag = (*payload)[0];
    if (tag < stats_.messages_by_type.size()) {
      stats_.messages_by_type[tag] += 1;
      stats_.bytes_by_type[tag] += payload->size();
    }
  }
  const MessageContext ctx{from, to, payload->size(), sim_.now()};
  const SimTime d = model_->delay(ctx, rng_);
  deliver_after(d, from, to, std::move(payload));
}

void Network::multicast(ReplicaId from, SharedBytes payload) {
  stats_.multicasts += 1;
  // Every recipient beyond the first shares `payload` instead of getting
  // its own deep copy (what the pre-refcount data path did).
  if (handlers_.size() > 1) stats_.payload_copies_avoided += handlers_.size() - 1;
  for (ReplicaId to = 0; to < handlers_.size(); ++to) {
    send(from, to, payload);
  }
}

}  // namespace repro::net
