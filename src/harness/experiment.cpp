#include "harness/experiment.h"

#include <algorithm>
#include <cstdio>

#include "common/assert.h"

namespace repro::harness {

const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kDiemBft: return "DiemBFT";
    case Protocol::kFallback3: return "Fallback-3chain";
    case Protocol::kFallback3Adopt: return "Fallback-3chain+adopt";
    case Protocol::kFallback2: return "Fallback-2chain";
    case Protocol::kAlwaysFallback: return "AlwaysFallback(ACE-style)";
  }
  return "?";
}

Experiment::Experiment(ExperimentConfig cfg) : cfg_(std::move(cfg)) {
  crypto_ = crypto::CryptoSystem::deal(QuorumParams::for_n(cfg_.n), cfg_.seed ^ 0xc0ffee);
  ever_faulty_.assign(cfg_.n, 0);
  for (const auto& [id, kind] : cfg_.faults) {
    if (id < cfg_.n && kind != core::FaultKind::kNone) ever_faulty_[id] = 1;
  }
  const auto& crypto = crypto_;
  net_ = std::make_unique<net::Network>(sim_, cfg_.n, build_delay_model(),
                                        Rng(cfg_.seed ^ 0x6e6574));
  // One decode cache for the whole system: every replica observes the same
  // broadcast bytes, so each distinct payload is parsed once — not once per
  // recipient (and not at all when the sender pre-populated at encode).
  decode_cache_ = std::make_shared<smr::DecodeCache>(cfg_.pcfg.decode_cache_capacity);

  // Observability: latency histograms owned by the registry, every
  // NetStats counter attached in place (the registry reads the same
  // atomics the network increments).
  commit_latency_hist_ = &registry_.histogram("repro_commit_latency_us");
  fallback_duration_hist_ = &registry_.histogram("repro_fallback_duration_us");
  net::register_net_stats(registry_, net_->stats());

  if (cfg_.span_capacity > 0) {
    // One shared ring: the sim executor is single-threaded, so events land
    // in causal order and the analyzer needs no merge.
    spans_ = std::make_shared<obs::SpanRing>(cfg_.span_capacity, /*wall_clock=*/false);
  }

  replicas_.reserve(cfg_.n);
  for (ReplicaId id = 0; id < cfg_.n; ++id) {
    core::ReplicaContext ctx;
    ctx.sim = &sim_;
    ctx.net = net_.get();
    ctx.crypto = crypto;
    ctx.id = id;
    ctx.config = cfg_.pcfg;
    if (auto it = cfg_.faults.find(id); it != cfg_.faults.end()) {
      ctx.config.fault.kind = it->second;
    }
    ctx.seed = cfg_.seed * 1'000'003 + id;
    ctx.on_block_born = [this](const smr::BlockId& bid, SimTime t) {
      births_.emplace(bid, t);
    };
    if (cfg_.payload_factory) {
      ctx.payload_source = [this, id]() { return cfg_.payload_factory(id); };
    }
    if (cfg_.enable_wal) {
      wals_.push_back(std::make_unique<storage::MemWal>());
      ctx.wal = wals_.back().get();
    }
    ctx.decode_cache = decode_cache_;
    if (cfg_.trace_capacity > 0) {
      std::size_t cap = cfg_.trace_capacity;
      if (cfg_.trace_budget_bytes > 0) {
        cap = std::min(cap, std::max<std::size_t>(1, cfg_.trace_budget_bytes /
                                                         sizeof(obs::TraceEvent)));
      }
      traces_.push_back(std::make_shared<obs::TraceRing>(cap, /*wall_clock=*/false));
      ctx.trace = traces_.back();
    }
    ctx.spans = spans_;
    ctx.on_commit = [this, id](const smr::CommitRecord& rec) {
      auto it = births_.find(rec.id);
      if (it != births_.end() && rec.commit_time >= it->second) {
        commit_latency_hist_->observe(rec.commit_time - it->second);
      }
      if (cfg_.on_commit) cfg_.on_commit(id, rec);
    };
    ctx.fallback_duration_hist = fallback_duration_hist_;
    ctxs_.push_back(ctx);
    replicas_.push_back(build_replica_with_ctx(ctx));
    core::register_replica_stats(registry_, replicas_[id]->stats(), id);
    const obs::Labels labels{{"replica", std::to_string(id)}};
    // Gauges read through replicas_[id] at snapshot time, so they keep
    // pointing at the live instance across restart_replica.
    registry_.attach_gauge_fn("repro_committed_blocks", labels, [this, id] {
      return static_cast<std::uint64_t>(replicas_[id]->ledger().size());
    });
    registry_.attach_gauge_fn("repro_current_view", labels,
                              [this, id] { return replicas_[id]->current_view(); });
    registry_.attach_gauge_fn("repro_current_round", labels,
                              [this, id] { return replicas_[id]->current_round(); });
    // Memory audit gauges (DESIGN.md §13.4): quorum-assembly state and the
    // preallocated trace-ring commitment, per replica.
    registry_.attach_gauge_fn("repro_share_pool_bytes", labels, [this, id] {
      return static_cast<std::uint64_t>(replicas_[id]->share_pool_bytes());
    });
    if (ctx.trace) {
      auto ring = ctx.trace;
      registry_.attach_gauge_fn("repro_trace_ring_bytes", labels, [ring] {
        return static_cast<std::uint64_t>(ring->approx_bytes());
      });
    }
    net_->register_handler(id, [this, id](ReplicaId from, const Bytes& payload) {
      replicas_[id]->on_message(from, payload);
    });
  }

  if (attack_model_ != nullptr) {
    // The adaptive adversary starves the leaders of every round an honest
    // replica is currently in (replicas can straddle a rotation boundary).
    attack_model_->set_targets_fn([this]() {
      std::set<ReplicaId> targets;
      for (ReplicaId id = 0; id < cfg_.n; ++id) {
        if (!is_honest(id)) continue;
        targets.insert(core::round_leader(replicas_[id]->current_round(), cfg_.n,
                                          cfg_.pcfg.leader_rotation));
      }
      return targets;
    });
  }
}

std::unique_ptr<core::IReplica> Experiment::build_replica_with_ctx(
    const core::ReplicaContext& ctx) {
  core::FallbackParams fb;
  switch (cfg_.protocol) {
    case Protocol::kDiemBft:
      return std::make_unique<core::DiemBftReplica>(ctx);
    case Protocol::kFallback3:
      fb.chain_len = 3;
      break;
    case Protocol::kFallback3Adopt:
      fb.chain_len = 3;
      fb.adoption = true;
      break;
    case Protocol::kFallback2:
      fb.chain_len = 2;
      break;
    case Protocol::kAlwaysFallback:
      fb.chain_len = 3;
      fb.always_fallback = true;
      break;
  }
  return std::make_unique<core::FallbackReplica>(ctx, fb);
}

std::unique_ptr<net::DelayModel> Experiment::build_delay_model() {
  if (cfg_.make_delay) return cfg_.make_delay();
  switch (cfg_.scenario) {
    case NetScenario::kSynchronous:
      return std::make_unique<net::SynchronousModel>(cfg_.net_min_delay, cfg_.net_delta);
    case NetScenario::kAsynchronous:
      return std::make_unique<net::AsynchronousModel>(cfg_.async_mean, cfg_.async_max);
    case NetScenario::kPartialSynchrony:
      return std::make_unique<net::PartialSynchronyModel>(
          cfg_.gst, cfg_.net_min_delay, cfg_.net_delta,
          std::make_unique<net::AsynchronousModel>(cfg_.async_mean, cfg_.async_max));
    case NetScenario::kLeaderAttack: {
      auto model = std::make_unique<net::AdaptiveLeaderAttackModel>(
          cfg_.net_min_delay, cfg_.net_delta, cfg_.attack_delay);
      attack_model_ = model.get();
      return model;
    }
  }
  return nullptr;
}

void Experiment::start() {
  for (auto& r : replicas_) r->start();
}

bool Experiment::restart_replica(ReplicaId id) {
  // Recoverable refusals, not asserts: generated churn schedules probe
  // configurations (WAL-off runs, shrunk replica counts) where a restart
  // is meaningless, and the run must fail soft instead of aborting.
  if (id >= replicas_.size()) return false;
  if (!cfg_.enable_wal) return false;
  // The old instance cannot be destroyed immediately: pending simulator
  // callbacks (timers) capture its `this`. Halt it — every entry point
  // becomes a no-op — and park it until the Experiment dies. Network
  // deliveries route through replicas_[id], so they reach the new
  // instance; the WAL-recovered replica rejoins from its durable state.
  replicas_[id]->halt();
  parked_.push_back(std::move(replicas_[id]));
  replicas_[id] = build_replica_with_ctx(ctxs_[id]);
  // The new instance owns fresh counter storage; re-attach it under the
  // same metric identity (the registry replaces the old pointers).
  core::register_replica_stats(registry_, replicas_[id]->stats(), id);
  replicas_[id]->start();
  return true;
}

std::size_t Experiment::ever_faulty_count() const {
  std::size_t c = 0;
  for (char v : ever_faulty_) c += v != 0;
  return c;
}

bool Experiment::set_fault(ReplicaId id, core::FaultKind kind) {
  if (id >= replicas_.size()) return false;
  if (kind != core::FaultKind::kNone && !ever_faulty_[id]) {
    // ≤f budget over the run's history: corrupting an f+1-th distinct
    // replica would exceed the adversary the protocol is proved against.
    if (ever_faulty_count() >= crypto_->params.f) return false;
    ever_faulty_[id] = 1;
  }
  core::FaultSpec spec;
  spec.kind = kind;
  // Keep the construction context in sync so a later restart_replica
  // rebuilds the instance with its current fault, not the original one.
  ctxs_[id].config.fault = spec;
  replicas_[id]->set_fault(spec);
  return true;
}

void Experiment::set_fault(ReplicaId id, core::FaultKind kind, SimTime at) {
  sim_.schedule_at(at, [this, id, kind] { set_fault(id, kind); });
}

bool Experiment::is_honest(ReplicaId id) const {
  // Judged against history: a replica that was Byzantine for any part of
  // the run stays outside the safety/liveness guarantees even after its
  // fault is cleared (its earlier equivocations are still in the wild).
  return id < ever_faulty_.size() && ever_faulty_[id] == 0;
}

std::size_t Experiment::min_honest_commits() const {
  std::size_t m = SIZE_MAX;
  for (ReplicaId id = 0; id < cfg_.n; ++id) {
    if (is_honest(id)) m = std::min(m, replicas_[id]->ledger().size());
  }
  return m == SIZE_MAX ? 0 : m;
}

std::size_t Experiment::max_honest_commits() const {
  std::size_t m = 0;
  for (ReplicaId id = 0; id < cfg_.n; ++id) {
    if (is_honest(id)) m = std::max(m, replicas_[id]->ledger().size());
  }
  return m;
}

bool Experiment::run_until_commits(std::size_t target, SimTime max_time) {
  // Check the predicate periodically rather than after every event.
  while (sim_.now() <= max_time) {
    if (min_honest_commits() >= target) return true;
    if (sim_.pending() == 0) break;
    for (int i = 0; i < 256 && sim_.now() <= max_time; ++i) {
      if (!sim_.step()) break;
    }
  }
  return min_honest_commits() >= target;
}

void Experiment::run_for(SimTime duration) { sim_.run_until(sim_.now() + duration); }

SafetyReport Experiment::check_safety() const {
  SafetyReport report;
  // Pairwise prefix consistency of honest committed sequences.
  for (ReplicaId a = 0; a < cfg_.n; ++a) {
    if (!is_honest(a)) continue;
    for (ReplicaId b = a + 1; b < cfg_.n; ++b) {
      if (!is_honest(b)) continue;
      const auto& ra = replicas_[a]->ledger().records();
      const auto& rb = replicas_[b]->ledger().records();
      const std::size_t common = std::min(ra.size(), rb.size());
      for (std::size_t i = 0; i < common; ++i) {
        if (ra[i].id != rb[i].id) {
          report.ok = false;
          report.detail = "ledger divergence between replicas " + std::to_string(a) +
                          " and " + std::to_string(b) + " at position " + std::to_string(i);
          return report;
        }
      }
    }
  }
  return report;
}

std::vector<obs::TraceEvent> Experiment::trace_events() const {
  std::vector<std::vector<obs::TraceEvent>> per_replica;
  per_replica.reserve(traces_.size());
  for (const auto& ring : traces_) per_replica.push_back(ring->events());
  return obs::merge_traces(per_replica);
}

std::string Experiment::traces_ndjson() const {
  return obs::to_ndjson(trace_events());
}

std::vector<obs::SpanEvent> Experiment::span_events() const {
  if (!spans_) return {};
  return spans_->events();
}

std::string Experiment::spans_ndjson() const {
  return obs::spans_to_ndjson(span_events());
}

namespace {
bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
  return std::fclose(f) == 0 && n == content.size();
}
}  // namespace

bool Experiment::write_traces(const std::string& path) const {
  return write_file(path, traces_ndjson());
}

bool Experiment::write_spans(const std::string& path) const {
  return write_file(path, spans_ndjson());
}

bool Experiment::write_metrics(const std::string& path) const {
  return write_file(path, registry_.snapshot().ndjson());
}

std::vector<SimTime> Experiment::commit_latencies(ReplicaId id) const {
  std::vector<SimTime> out;
  for (const auto& rec : replicas_[id]->ledger().records()) {
    auto it = births_.find(rec.id);
    if (it != births_.end() && rec.commit_time >= it->second) {
      out.push_back(rec.commit_time - it->second);
    }
  }
  return out;
}

}  // namespace repro::harness
