#include "harness/invariants.h"

#include <map>
#include <set>

#include "core/replica_base.h"

namespace repro::harness {
namespace {

std::string hex8(const smr::BlockId& id) {
  return to_hex(BytesView(id.data(), 4));
}

}  // namespace

InvariantReport check_invariants(const Experiment& exp) {
  InvariantReport report;

  // ---- gather global state from honest replicas ------------------------
  std::vector<const core::ReplicaBase*> honest;
  for (ReplicaId id = 0; id < exp.n(); ++id) {
    if (!exp.is_honest(id)) continue;
    honest.push_back(dynamic_cast<const core::ReplicaBase*>(&exp.replica(id)));
  }
  if (honest.empty()) return report;

  // Union of coin-QCs: view -> elected leader. Every honest replica
  // stores the same coin-QC per view, so verify each distinct one once.
  crypto::VerifierCache vcache;
  std::map<View, ReplicaId> leaders;
  for (const auto* r : honest) {
    for (const auto& [view, coin] : r->coins()) {
      if (!verify_coin_qc(exp.crypto_sys(), vcache, coin)) {
        report.fail("invalid coin-QC stored at replica " + std::to_string(r->id()));
        continue;
      }
      leaders.emplace(view, coin.leader(exp.crypto_sys()));
    }
  }

  auto endorsed = [&leaders](const smr::Certificate& c) {
    if (c.kind != smr::CertKind::kFallback) return false;
    auto it = leaders.find(c.view);
    return it != leaders.end() && it->second == c.proposer;
  };

  // Dedupe certificates by identity. Certificates live in two places: the
  // explicit per-replica certificate logs, and embedded as the parent
  // field of stored block bodies (the only form in which a crash-recovered
  // replica holds the certificates of backfilled ancestors).
  std::set<std::tuple<std::uint8_t, smr::BlockId, Round, View, FallbackHeight, ReplicaId>>
      seen;
  std::vector<smr::Certificate> certs;
  std::set<smr::BlockId> certified_ids;
  auto collect = [&](const smr::Certificate& c) {
    if (c.kind == smr::CertKind::kGenesis) return;
    auto key = std::make_tuple(static_cast<std::uint8_t>(c.kind), c.block_id, c.round,
                               c.view, c.height, c.proposer);
    if (!seen.insert(key).second) return;
    certs.push_back(c);
    certified_ids.insert(c.block_id);
  };
  std::set<smr::BlockId> walked;
  for (const auto* r : honest) {
    for (const auto& c : r->store().certificates()) collect(c);
    for (const auto& rec : r->ledger().records()) {
      // Walk each committed chain once; every block's parent field is a
      // certificate for its ancestor.
      if (!walked.insert(rec.id).second) continue;
      if (const smr::Block* b = r->store().get(rec.id)) collect(b->parent);
    }
  }

  auto find_block = [&honest](const smr::BlockId& id) -> const smr::Block* {
    for (const auto* r : honest) {
      if (const smr::Block* b = r->store().get(id)) return b;
    }
    return nullptr;
  };

  // ---- Lemma 1: unique certified block per (view, round) ----------------
  {
    std::map<std::pair<View, Round>, std::set<smr::BlockId>> regular;
    std::map<std::pair<View, Round>, std::set<smr::BlockId>> endorsed_blocks;
    for (const auto& c : certs) {
      if (c.kind == smr::CertKind::kQuorum) {
        regular[{c.view, c.round}].insert(c.block_id);
      } else if (endorsed(c)) {
        endorsed_blocks[{c.view, c.round}].insert(c.block_id);
      }
    }
    for (const auto& [key, ids] : regular) {
      if (ids.size() > 1) {
        report.fail("Lemma 1: " + std::to_string(ids.size()) +
                    " distinct certified regular blocks at view " +
                    std::to_string(key.first) + " round " + std::to_string(key.second));
      }
    }
    for (const auto& [key, ids] : endorsed_blocks) {
      if (ids.size() > 1) {
        report.fail("Lemma 1: " + std::to_string(ids.size()) +
                    " distinct endorsed f-blocks at view " + std::to_string(key.first) +
                    " round " + std::to_string(key.second));
      }
    }
  }

  // ---- Lemma 2: chain edges of certified blocks -------------------------
  // Consecutive rounds hold only for the fallback protocols, whose vote
  // rule adds r == qc.r + 1 (Fig 2); DiemBFT legitimately skips rounds
  // after a TC, so only monotonicity applies there.
  const bool consecutive_rounds = exp.config().protocol != Protocol::kDiemBft;
  for (const smr::BlockId& id : certified_ids) {
    const smr::Block* b = find_block(id);
    if (b == nullptr || b->is_genesis()) continue;
    const smr::Certificate& parent = b->parent;
    if (consecutive_rounds ? (b->round != parent.round + 1) : (b->round <= parent.round)) {
      report.fail("Lemma 2: certified block " + hex8(id) + " at round " +
                  std::to_string(b->round) + " has parent round " +
                  std::to_string(parent.round));
    }
    if (b->view < parent.view) {
      report.fail("Lemma 2: certified block " + hex8(id) + " has decreasing view");
    }
    if (b->height == 0 && parent.kind == smr::CertKind::kFallback &&
        b->view == parent.view && endorsed(parent)) {
      report.fail("Lemma 2: endorsed f-block parents a regular block of the same view");
    }
  }

  // ---- Lemma 3: endorsed f-blocks of one view form one chain ------------
  // Holds verbatim only for the base Figure-2 protocol where every replica
  // builds exclusively its own fallback-chain. Under chain adoption (§3 /
  // Figure 4) the elected leader's height-(h+1) f-block may extend another
  // replica's height-h f-block, so its endorsed blocks need not chain;
  // safety then rests on Lemma 1 (per-(view,round) uniqueness, enforced by
  // the strictly-increasing r̄_vote[j] voting rule) plus commit adjacency —
  // a commit pair through a foreign, non-endorsed parent never counts.
  const bool adoption = exp.config().protocol == Protocol::kFallback3Adopt ||
                        exp.config().protocol == Protocol::kFallback2 ||
                        exp.config().protocol == Protocol::kAlwaysFallback;
  if (!adoption) {
    std::map<View, std::map<Round, const smr::Block*>> per_view;
    for (const auto& c : certs) {
      if (!endorsed(c)) continue;
      if (const smr::Block* b = find_block(c.block_id)) {
        per_view[c.view].emplace(c.round, b);
      }
    }
    for (const auto& [view, by_round] : per_view) {
      const smr::Block* prev = nullptr;
      for (const auto& [round, block] : by_round) {
        if (prev != nullptr && block->parent.block_id != prev->id) {
          report.fail("Lemma 3: endorsed f-blocks of view " + std::to_string(view) +
                      " do not form a single chain at round " + std::to_string(round));
        }
        prev = block;
      }
    }
  }

  // ---- committed blocks are certified somewhere -------------------------
  for (const auto* r : honest) {
    for (const auto& rec : r->ledger().records()) {
      if (certified_ids.count(rec.id) == 0) {
        report.fail("commit: block " + hex8(rec.id) + " committed at replica " +
                    std::to_string(r->id()) + " without any known certificate");
      }
    }
  }

  return report;
}

}  // namespace repro::harness
