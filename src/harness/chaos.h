// Deterministic chaos fuzzer (DESIGN.md §14): a single 64-bit seed
// expands into a timed fault schedule — mid-run corruption and clearing
// under the ≤f budget, crash/restart churn through the WAL recovery
// path, dynamic partitions, WAN-style heavy-tail latency phases and
// adaptive leader-targeting windows — executed against the simulated
// system with machine-checked invariants (Lemmas 1–3 at every commit,
// ledger prefix-consistency and the Lemma 7 win-rate accounting at the
// end). A failing schedule is shrunk ddmin-style to a minimal
// reproducer and serialized as a replayable JSON artifact whose trace
// sha256 pins the exact failing execution.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace repro::harness {

/// One timed mutation of the running system.
struct ChaosEvent {
  enum class Kind : std::uint8_t {
    kSetFault,      ///< corrupt `replica` with `fault` (≤f budget enforced)
    kClearFault,    ///< set `replica` back to FaultKind::kNone
    kRestart,       ///< crash + WAL-recover `replica`
    kPartition,     ///< split [0, cut) vs [cut, n) for `duration`
    kLeaderAttack,  ///< starve current leaders for `duration`
  };
  Kind kind = Kind::kSetFault;
  SimTime at = 0;         ///< absolute sim time, microseconds
  ReplicaId replica = 0;  ///< target (fault / restart events)
  core::FaultKind fault = core::FaultKind::kNone;
  std::uint32_t cut = 1;  ///< partition split point
  SimTime duration = 0;   ///< partition / attack window length
};

/// One network regime, active from `start` until the next phase: either
/// synchronous (delays uniform in [1ms, mean_us]) or heavy-tailed
/// (exponential with mean mean_us, capped at 4x — the adversarial
/// asynchrony that forces fallbacks).
struct NetPhase {
  SimTime start = 0;
  bool heavy = false;
  SimTime mean_us = 50'000;
};

/// A complete, self-describing run: pure function of these fields. The
/// same schedule always produces the same trace (expect_trace_sha256
/// pins it for --replay).
struct ChaosSchedule {
  std::uint32_t version = 1;
  std::uint64_t seed = 0;  ///< Experiment seed (crypto, network, replicas)
  std::uint32_t n = 4;
  Protocol protocol = Protocol::kFallback3;
  SimTime horizon_us = 60'000'000;
  std::size_t commit_target = 25;
  std::uint64_t base_timeout_us = 400'000;
  std::uint32_t batch_bytes = 0;  ///< payload size; >256 engages batch refs
  bool batch_announce = true;
  /// TEST-ONLY: run with the planted deferred-vote hole open (see
  /// ProtocolConfig::unsafe_trust_catchup_blocks).
  bool plant_deferred_vote_hole = false;
  std::vector<NetPhase> phases;
  std::vector<ChaosEvent> events;
  /// Trace sha256 of the failing run this artifact reproduces; filled
  /// when a failure is serialized, verified byte-for-byte by --replay.
  std::string expect_trace_sha256;
};

/// Outcome of executing one schedule.
struct ChaosResult {
  bool ok = true;
  std::string failure;       ///< first violation detail
  std::string failure_kind;  ///< "invariant" | "safety"
  SimTime failure_time_us = 0;
  std::size_t commits = 0;  ///< min honest commit count
  bool reached_target = false;
  std::uint64_t fallbacks_entered = 0;  ///< Lemma 7 accounting
  std::uint64_t fallbacks_won = 0;
  double win_rate = 0.0;
  std::string trace_sha256;
  /// Flight-recorder bundle written for a failing run (empty unless the
  /// run failed and a forensics dir was given).
  std::string forensics_path;
};

struct ChaosGenOptions {
  bool plant_deferred_vote_hole = false;
  SimTime horizon_us = 60'000'000;
};

/// Expand a seed into a schedule. Same (seed, options) -> same schedule.
ChaosSchedule generate_schedule(std::uint64_t seed, const ChaosGenOptions& opt = {});

/// Execute a schedule: build the Experiment (WAL on, tracing on), apply
/// every event at its time, check invariants at every commit, then the
/// end-to-end safety report and trace analysis. Deterministic. When
/// `forensics_dir` is non-empty, commit-lifecycle spans are recorded too
/// and a failing run dumps a flight-recorder bundle (trace + span +
/// metrics snapshots) under that directory; see ChaosResult::forensics_path.
ChaosResult run_schedule(const ChaosSchedule& s, const std::string& forensics_dir = "");

// ---- replay artifacts --------------------------------------------------
std::string schedule_to_json(const ChaosSchedule& s);
std::optional<ChaosSchedule> schedule_from_json(const std::string& json);

// ---- shrinking ---------------------------------------------------------
struct ShrinkOutcome {
  ChaosSchedule schedule;  ///< minimal schedule still reproducing a failure
  ChaosResult result;      ///< that schedule's (failing) result
  std::size_t runs = 0;    ///< candidate executions spent
};

/// Minimize a failing schedule: drop events after the failure point,
/// ddmin the event list, simplify the network phases, lower n, truncate
/// the horizon. A candidate counts as reproducing if it fails at all
/// (same bug class, not necessarily the identical message). Bounded by
/// `max_runs` candidate executions.
ShrinkOutcome shrink_schedule(const ChaosSchedule& failing, const ChaosResult& failure,
                              std::size_t max_runs = 200);

// ---- the sweep ---------------------------------------------------------
struct FuzzFailure {
  std::uint64_t seed = 0;
  ChaosSchedule shrunk;  ///< expect_trace_sha256 already pinned
  ChaosResult result;
  std::size_t shrink_runs = 0;
  std::string forensics_path;  ///< bundle for the shrunk repro (may be empty)
};

struct FuzzStats {
  std::size_t runs = 0;
  std::size_t failures = 0;
  std::size_t targets_reached = 0;
  std::uint64_t fallbacks_entered = 0;
  std::uint64_t fallbacks_won = 0;
  std::vector<FuzzFailure> found;
};

class ChaosFuzzer {
 public:
  struct Options {
    std::uint64_t seed0 = 1;
    std::size_t seeds = 50;
    ChaosGenOptions gen;
    bool shrink = true;
    std::size_t shrink_budget = 200;
    /// Wall-clock budget in milliseconds; 0 = unlimited. The sweep stops
    /// after the current seed once exceeded (CI time box). Note this is
    /// the one intentionally non-deterministic knob: it bounds how many
    /// seeds run, never what any individual seed does.
    std::uint64_t wall_limit_ms = 0;
    /// Non-empty: every shrunk repro is re-executed with span recording
    /// on and its flight-recorder bundle written under this directory.
    std::string forensics_dir;
  };

  explicit ChaosFuzzer(Options opt) : opt_(std::move(opt)) {}

  /// Run seeds [seed0, seed0 + seeds); shrink and record every failure.
  /// `on_progress` (optional) is called after each seed with its result.
  FuzzStats run(const std::function<void(std::uint64_t, const ChaosResult&)>& on_progress = {});

 private:
  Options opt_;
};

}  // namespace repro::harness
