// Experiment harness: builds an n-replica system over a chosen network
// model, runs it to a commit target or time horizon, and checks the
// paper's two SMR guarantees — Safety (honest ledgers prefix-consistent)
// and Liveness (honest replicas keep committing).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/diembft.h"
#include "core/fallback.h"
#include "net/network.h"
#include "sim/simulation.h"

namespace repro::harness {

enum class Protocol {
  kDiemBft,         ///< Figure 1 baseline
  kFallback3,       ///< Figure 2 (3-chain)
  kFallback3Adopt,  ///< Figure 2 + §3 chain-adoption optimization
  kFallback2,       ///< Figure 4 (2-chain)
  kAlwaysFallback,  ///< ACE/VABA-style always-async baseline
};

const char* protocol_name(Protocol p);

/// Network scenarios used across experiments.
enum class NetScenario {
  kSynchronous,       ///< uniform [min, Δ]
  kAsynchronous,      ///< heavy exponential delays >> timeout (stochastic)
  kPartialSynchrony,  ///< async until GST, then synchronous
  kLeaderAttack,      ///< adaptive adversary starving current leaders
};

struct ExperimentConfig {
  std::uint32_t n = 4;
  Protocol protocol = Protocol::kFallback3;
  NetScenario scenario = NetScenario::kSynchronous;
  std::uint64_t seed = 1;
  core::ProtocolConfig pcfg;

  // Network timing (microseconds).
  SimTime net_min_delay = 1'000;
  SimTime net_delta = 50'000;          ///< Δ under synchrony
  SimTime async_mean = 2'000'000;      ///< mean delay under asynchrony
  SimTime async_max = 8'000'000;       ///< delay cap (reliability)
  SimTime gst = 10'000'000;            ///< GST for partial synchrony
  SimTime attack_delay = 20'000'000;   ///< leader-attack deferral

  /// Custom delay model factory; overrides `scenario` when set.
  std::function<std::unique_ptr<net::DelayModel>()> make_delay;

  /// Faults: replica id -> fault. At most f replicas should be faulty.
  std::unordered_map<ReplicaId, core::FaultKind> faults;

  /// Optional application payload source, called as payload_factory(id)
  /// each time replica `id` proposes a block (see examples/kv_store.cpp).
  std::function<Bytes(ReplicaId)> payload_factory;

  /// Give every replica a write-ahead log (in-memory, owned by the
  /// Experiment) so restart_replica() can crash-recover it.
  bool enable_wal = false;

  /// Structured-trace ring capacity per replica; 0 disables tracing (the
  /// replicas then skip event recording entirely).
  std::size_t trace_capacity = 0;

  /// Commit-lifecycle span ring capacity (events), shared by all replicas;
  /// 0 disables span recording entirely (DESIGN.md §15). A single ring is
  /// correct under the sim's one-threaded executor and keeps the merged
  /// stream already in causal order.
  std::size_t span_capacity = 0;

  /// Optional per-replica byte budget for the trace ring (0 = no clamp).
  /// Rings preallocate capacity * sizeof(TraceEvent) up front, which at
  /// n=300 with a 2^18-event ring would commit ~4 GiB across replicas;
  /// scale sweeps set a budget and the harness clamps the ring capacity
  /// to budget / sizeof(TraceEvent). Opt-in so seeded trace pins keep
  /// their exact ring size (ring overwrite changes which events survive).
  std::size_t trace_budget_bytes = 0;

  /// Optional harness-level commit hook, invoked after the latency
  /// histogram for every record any replica commits. The chaos fuzzer
  /// hangs its per-commit invariant check here.
  std::function<void(ReplicaId, const smr::CommitRecord&)> on_commit;
};

/// Result of the pairwise ledger prefix-consistency check.
struct SafetyReport {
  bool ok = true;
  std::string detail;  ///< first violation found, if any
};

class Experiment {
 public:
  explicit Experiment(ExperimentConfig cfg);

  /// Starts all replicas (round 1 begins).
  void start();

  /// Simulate a crash + restart of one replica: the old instance (and all
  /// its in-memory state) is destroyed and a fresh one is built, which
  /// recovers its vote state from the WAL and catches up on the chain
  /// through block retrieval. In-flight messages addressed to it are
  /// delivered to the new instance. Returns false — a recoverable error,
  /// not an abort — when the id is out of range or the experiment runs
  /// without a WAL (a restart would then be an amnesia crash, which the
  /// protocol's durability story does not cover; generated churn
  /// schedules skip the event instead of killing the process).
  bool restart_replica(ReplicaId id);

  /// Mutate one replica's fault behaviour mid-run. Enforces the ≤f
  /// corruption budget over the run's *history*: a replica that was ever
  /// faulty stays inside the budget forever (clearing a fault never frees
  /// a slot — a once-corrupted replica cannot be retroactively trusted),
  /// and corrupting a fresh replica is refused once f distinct replicas
  /// have been faulty. Returns false if refused (budget or bad id).
  bool set_fault(ReplicaId id, core::FaultKind kind);

  /// Schedule set_fault(id, kind) at absolute sim time `at`.
  void set_fault(ReplicaId id, core::FaultKind kind, SimTime at);

  /// Replicas that have ever been faulty (static map or dynamic
  /// set_fault). The ≤f budget and is_honest() judge against this.
  std::size_t ever_faulty_count() const;

  /// Run until every honest replica has committed >= target blocks, the
  /// virtual clock passes `max_time`, or the event queue drains. Returns
  /// true iff the commit target was reached.
  bool run_until_commits(std::size_t target, SimTime max_time);

  /// Run for a fixed duration of virtual time.
  void run_for(SimTime duration);

  // ---- metrics / checks ------------------------------------------------
  /// Minimum committed-block count across honest replicas ("decisions").
  std::size_t min_honest_commits() const;
  std::size_t max_honest_commits() const;

  SafetyReport check_safety() const;

  /// Commit latency samples (commit_time - block birth_time) observed at
  /// the given replica, in microseconds.
  std::vector<SimTime> commit_latencies(ReplicaId id) const;

  bool is_honest(ReplicaId id) const;

  // ---- observability ---------------------------------------------------
  /// The experiment's metrics registry: every ReplicaStats / NetStats
  /// counter plus the commit-latency and fallback-duration histograms,
  /// served directly from protocol storage (attach, not copy).
  obs::Registry& registry() { return registry_; }
  const obs::Registry& registry() const { return registry_; }

  /// Merged global timeline of every replica's trace ring, ordered by
  /// (time, replica). Empty unless cfg.trace_capacity > 0.
  std::vector<obs::TraceEvent> trace_events() const;

  /// NDJSON of the merged timeline (deterministic for identical runs).
  std::string traces_ndjson() const;

  /// Commit-lifecycle span ring (null unless cfg.span_capacity > 0).
  const std::shared_ptr<obs::SpanRing>& spans() const { return spans_; }
  /// All recorded span events (empty when spans are disabled).
  std::vector<obs::SpanEvent> span_events() const;
  /// NDJSON of the span stream — a separate stream from traces_ndjson(),
  /// so seeded trace pins are untouched by span configuration.
  std::string spans_ndjson() const;
  bool write_spans(const std::string& path) const;

  /// Write the merged NDJSON trace / a registry metrics snapshot to a
  /// file. Returns false on I/O failure.
  bool write_traces(const std::string& path) const;
  bool write_metrics(const std::string& path) const;

  sim::Simulation& sim() { return sim_; }
  net::Network& network() { return *net_; }
  /// The system-wide decode-once cache (shared by all replicas).
  const smr::DecodeCache& decode_cache() const { return *decode_cache_; }
  const crypto::CryptoSystem& crypto_sys() const { return *crypto_; }
  core::IReplica& replica(ReplicaId id) { return *replicas_[id]; }
  const core::IReplica& replica(ReplicaId id) const { return *replicas_[id]; }
  std::uint32_t n() const { return cfg_.n; }
  const ExperimentConfig& config() const { return cfg_; }

 private:
  std::unique_ptr<net::DelayModel> build_delay_model();
  std::unique_ptr<core::IReplica> build_replica_with_ctx(const core::ReplicaContext& ctx);

  ExperimentConfig cfg_;
  sim::Simulation sim_;
  std::shared_ptr<const crypto::CryptoSystem> crypto_;
  std::unique_ptr<net::Network> net_;
  std::shared_ptr<smr::DecodeCache> decode_cache_;
  net::AdaptiveLeaderAttackModel* attack_model_ = nullptr;  ///< owned by net_
  std::vector<std::unique_ptr<core::IReplica>> replicas_;
  std::vector<core::ReplicaContext> ctxs_;
  /// Ever-faulty markers (see ever_faulty_count); index = replica id.
  std::vector<char> ever_faulty_;
  std::vector<std::unique_ptr<storage::MemWal>> wals_;
  /// Halted pre-restart instances (kept alive for their queued timers).
  std::vector<std::unique_ptr<core::IReplica>> parked_;
  /// Block id -> creation time (filled by the replicas' birth hook).
  std::unordered_map<smr::BlockId, SimTime, smr::BlockIdHash> births_;
  obs::Registry registry_;
  /// Per-replica trace rings (empty when tracing is disabled).
  std::vector<std::shared_ptr<obs::TraceRing>> traces_;
  /// Shared commit-lifecycle span ring (null when spans are disabled).
  std::shared_ptr<obs::SpanRing> spans_;
  obs::Histogram* commit_latency_hist_ = nullptr;    ///< owned by registry_
  obs::Histogram* fallback_duration_hist_ = nullptr; ///< owned by registry_
};

}  // namespace repro::harness
