// Global protocol invariants — the paper's lemmas as machine-checked
// properties over the *union* of all honest replicas' observed state.
//
// The per-run safety check (ledger prefix consistency) catches end-to-end
// divergence; these checks catch the intermediate structural properties
// the proofs rely on, so a bug that hasn't yet produced divergent commits
// still fails loudly:
//   Lemma 1 — at most one certified block per (view, round) for regular
//             QCs, and per (view, round) among endorsed f-QCs;
//   Lemma 2 — every certified chain edge has consecutive rounds and
//             nondecreasing views, and (same view) no f-block parents a
//             regular block;
//   Lemma 3 — endorsed f-blocks of one view form a single chain;
//   commit  — every committed block is certified or endorsed somewhere.
#pragma once

#include <string>
#include <vector>

#include "harness/experiment.h"

namespace repro::harness {

struct InvariantReport {
  bool ok = true;
  std::vector<std::string> violations;

  void fail(std::string v) {
    ok = false;
    violations.push_back(std::move(v));
  }
};

/// Runs all structural checks against every honest replica's block store
/// and certificate log (plus coin-QCs reconstructible from the stores).
InvariantReport check_invariants(const Experiment& exp);

}  // namespace repro::harness
