#include "harness/chaos.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <utility>

#include "crypto/sha256.h"
#include "harness/invariants.h"
#include "net/delay_model.h"
#include "obs/flight.h"
#include "obs/trace.h"

namespace repro::harness {
namespace {

// ---- token tables (shared by the JSON writer and parser) ---------------

const char* kind_token(ChaosEvent::Kind k) {
  switch (k) {
    case ChaosEvent::Kind::kSetFault: return "set_fault";
    case ChaosEvent::Kind::kClearFault: return "clear_fault";
    case ChaosEvent::Kind::kRestart: return "restart";
    case ChaosEvent::Kind::kPartition: return "partition";
    case ChaosEvent::Kind::kLeaderAttack: return "leader_attack";
  }
  return "?";
}

bool parse_kind(const std::string& s, ChaosEvent::Kind* out) {
  if (s == "set_fault") *out = ChaosEvent::Kind::kSetFault;
  else if (s == "clear_fault") *out = ChaosEvent::Kind::kClearFault;
  else if (s == "restart") *out = ChaosEvent::Kind::kRestart;
  else if (s == "partition") *out = ChaosEvent::Kind::kPartition;
  else if (s == "leader_attack") *out = ChaosEvent::Kind::kLeaderAttack;
  else return false;
  return true;
}

const char* fault_token(core::FaultKind k) {
  switch (k) {
    case core::FaultKind::kNone: return "none";
    case core::FaultKind::kCrash: return "crash";
    case core::FaultKind::kMuteLeader: return "mute";
    case core::FaultKind::kEquivocate: return "equiv";
    case core::FaultKind::kWithholdVotes: return "withhold";
    case core::FaultKind::kTimeoutSpam: return "spam";
    case core::FaultKind::kInvalidTxns: return "invalid";
    case core::FaultKind::kBadShares: return "badshare";
    case core::FaultKind::kImpersonateShares: return "impersonate";
    case core::FaultKind::kForgeFbQc: return "forgeqc";
    case core::FaultKind::kGhostChain: return "ghost";
  }
  return "?";
}

bool parse_fault_token(const std::string& s, core::FaultKind* out) {
  if (s == "none") *out = core::FaultKind::kNone;
  else if (s == "crash") *out = core::FaultKind::kCrash;
  else if (s == "mute") *out = core::FaultKind::kMuteLeader;
  else if (s == "equiv") *out = core::FaultKind::kEquivocate;
  else if (s == "withhold") *out = core::FaultKind::kWithholdVotes;
  else if (s == "spam") *out = core::FaultKind::kTimeoutSpam;
  else if (s == "invalid") *out = core::FaultKind::kInvalidTxns;
  else if (s == "badshare") *out = core::FaultKind::kBadShares;
  else if (s == "impersonate") *out = core::FaultKind::kImpersonateShares;
  else if (s == "forgeqc") *out = core::FaultKind::kForgeFbQc;
  else if (s == "ghost") *out = core::FaultKind::kGhostChain;
  else return false;
  return true;
}

const char* protocol_token(Protocol p) {
  switch (p) {
    case Protocol::kDiemBft: return "diem";
    case Protocol::kFallback3: return "fallback3";
    case Protocol::kFallback3Adopt: return "fallback3adopt";
    case Protocol::kFallback2: return "fallback2";
    case Protocol::kAlwaysFallback: return "ace";
  }
  return "?";
}

bool parse_protocol_token(const std::string& s, Protocol* out) {
  if (s == "diem") *out = Protocol::kDiemBft;
  else if (s == "fallback3") *out = Protocol::kFallback3;
  else if (s == "fallback3adopt") *out = Protocol::kFallback3Adopt;
  else if (s == "fallback2") *out = Protocol::kFallback2;
  else if (s == "ace") *out = Protocol::kAlwaysFallback;
  else return false;
  return true;
}

}  // namespace

// ---- generator ---------------------------------------------------------

ChaosSchedule generate_schedule(std::uint64_t seed, const ChaosGenOptions& opt) {
  // Decorrelate from the Experiment's own derived streams (crypto uses
  // seed ^ 0xc0ffee, network seed ^ 0x6e6574).
  Rng rng(seed ^ 0xc4a05'f00dull);
  ChaosSchedule s;
  s.seed = seed;
  s.horizon_us = opt.horizon_us;
  s.plant_deferred_vote_hole = opt.plant_deferred_vote_hole;

  static const std::uint32_t kSizes[] = {4, 4, 5, 7};
  s.n = kSizes[rng.uniform(4)];
  const std::uint32_t f = (s.n - 1) / 3;
  static const Protocol kProtocols[] = {Protocol::kFallback3,      Protocol::kFallback3,
                                        Protocol::kFallback3Adopt, Protocol::kFallback2,
                                        Protocol::kAlwaysFallback, Protocol::kDiemBft};
  s.protocol = kProtocols[rng.uniform(6)];
  s.base_timeout_us = rng.chance(0.5) ? 400'000 : 200'000;
  s.batch_bytes = rng.chance(0.5) ? 512 : 0;
  s.batch_announce = rng.chance(0.5);
  s.commit_target = 15 + rng.uniform(16);

  if (opt.plant_deferred_vote_hole) {
    // The ghost-chain attack needs the batch-reference pull path (the
    // deferred vote is the hole) and a steady state to attack; keep the
    // network synchronous so the forged chain reliably wins the
    // batch-resolution race against the real proposal's pull round-trip.
    s.protocol = rng.chance(0.5) ? Protocol::kFallback3 : Protocol::kDiemBft;
    s.batch_bytes = 512;
    s.batch_announce = false;
  }

  // Network phases: a piecewise timeline of synchronous and heavy-tail
  // regimes. Heavy means are a small multiple of the round timer — the
  // adversarial asynchrony that forces fallbacks (Lemma 7 samples).
  const std::size_t nphases = opt.plant_deferred_vote_hole ? 1 : 1 + rng.uniform(3);
  for (std::size_t i = 0; i < nphases; ++i) {
    NetPhase p;
    p.start = s.horizon_us * i / nphases;
    p.heavy = !opt.plant_deferred_vote_hole && rng.chance(0.3);
    p.mean_us = p.heavy ? s.base_timeout_us * (2 + rng.uniform(5))
                        : 20'000 + rng.uniform(60'000);
    s.phases.push_back(p);
  }

  // Timed events, generated within the same ≤f budget the runtime
  // enforces (a refused event would be dead weight in the schedule).
  std::set<ReplicaId> faulted;
  if (opt.plant_deferred_vote_hole) {
    ChaosEvent ev;
    ev.kind = ChaosEvent::Kind::kSetFault;
    ev.at = 0;
    ev.replica = s.n - 1;
    ev.fault = core::FaultKind::kGhostChain;
    s.events.push_back(ev);
    faulted.insert(ev.replica);
  }
  static const core::FaultKind kPalette[] = {
      core::FaultKind::kCrash,        core::FaultKind::kMuteLeader,
      core::FaultKind::kEquivocate,   core::FaultKind::kWithholdVotes,
      core::FaultKind::kTimeoutSpam,  core::FaultKind::kBadShares,
      core::FaultKind::kImpersonateShares, core::FaultKind::kForgeFbQc,
      core::FaultKind::kGhostChain};
  const std::size_t wanted = rng.uniform(9);  // 0..8
  for (std::size_t i = 0; i < wanted; ++i) {
    ChaosEvent ev;
    ev.at = rng.uniform(s.horizon_us * 3 / 4);
    const std::uint64_t u = rng.uniform(100);
    if (u < 35) {
      ev.kind = ChaosEvent::Kind::kSetFault;
      ev.replica = static_cast<ReplicaId>(rng.uniform(s.n));
      ev.fault = kPalette[rng.uniform(9)];
      if (faulted.count(ev.replica) == 0) {
        if (faulted.size() >= f) continue;  // budget exhausted
        faulted.insert(ev.replica);
      }
    } else if (u < 50) {
      if (faulted.empty()) continue;
      ev.kind = ChaosEvent::Kind::kClearFault;
      auto it = faulted.begin();
      std::advance(it, static_cast<long>(rng.uniform(faulted.size())));
      ev.replica = *it;
      ev.fault = core::FaultKind::kNone;
    } else if (u < 70) {
      ev.kind = ChaosEvent::Kind::kRestart;
      ev.replica = static_cast<ReplicaId>(rng.uniform(s.n));
    } else if (u < 85) {
      ev.kind = ChaosEvent::Kind::kPartition;
      ev.cut = 1 + static_cast<std::uint32_t>(rng.uniform(s.n - 1));
      ev.duration = s.base_timeout_us * (2 + rng.uniform(7));
    } else {
      ev.kind = ChaosEvent::Kind::kLeaderAttack;
      ev.duration = s.base_timeout_us * (4 + rng.uniform(9));
    }
    s.events.push_back(ev);
  }
  std::stable_sort(s.events.begin(), s.events.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) { return a.at < b.at; });
  return s;
}

// ---- runner ------------------------------------------------------------

namespace {

/// Shared between the on_commit hook (installed before the Experiment
/// exists) and the run loop.
struct Watch {
  Experiment* exp = nullptr;
  bool violated = false;
  std::string detail;
  SimTime at = 0;
};

}  // namespace

ChaosResult run_schedule(const ChaosSchedule& s, const std::string& forensics_dir) {
  ExperimentConfig cfg;
  cfg.n = s.n;
  cfg.protocol = s.protocol;
  cfg.seed = s.seed;
  cfg.enable_wal = true;  // restart events need crash recovery
  cfg.trace_capacity = 1 << 14;
  // Span recording is forensics-only: the fuzz sweep itself stays lean,
  // and the span stream never feeds the trace sha256 pin either way.
  if (!forensics_dir.empty()) cfg.span_capacity = 1 << 14;
  cfg.pcfg.base_timeout_us = s.base_timeout_us;
  cfg.pcfg.batch_bytes = s.batch_bytes;
  cfg.pcfg.batch_announce = s.batch_announce;
  cfg.pcfg.unsafe_trust_catchup_blocks = s.plant_deferred_vote_hole;

  net::ChaosOverlayModel* overlay = nullptr;
  cfg.make_delay = [&s, &overlay]() -> std::unique_ptr<net::DelayModel> {
    std::vector<net::SwitchingModel::Phase> phases;
    if (s.phases.empty()) {
      phases.push_back({0, std::make_unique<net::SynchronousModel>(1'000, 50'000)});
    }
    for (const auto& p : s.phases) {
      std::unique_ptr<net::DelayModel> m;
      if (p.heavy) {
        m = std::make_unique<net::AsynchronousModel>(p.mean_us, 4 * p.mean_us);
      } else {
        m = std::make_unique<net::SynchronousModel>(1'000, std::max<SimTime>(p.mean_us, 2'000));
      }
      phases.push_back({p.start, std::move(m)});
    }
    auto ov = std::make_unique<net::ChaosOverlayModel>(
        std::make_unique<net::SwitchingModel>(std::move(phases)));
    overlay = ov.get();
    return ov;
  };

  // Machine-check the structural invariants (Lemmas 1-3 + commit
  // certification) at every commit, not just at the end: a transient
  // violation later masked by more commits must still fail the run.
  auto watch = std::make_shared<Watch>();
  cfg.on_commit = [watch](ReplicaId, const smr::CommitRecord&) {
    if (watch->exp == nullptr || watch->violated) return;
    const InvariantReport rep = check_invariants(*watch->exp);
    if (!rep.ok) {
      watch->violated = true;
      watch->detail = rep.violations.front();
      watch->at = watch->exp->sim().now();
    }
  };

  Experiment exp(cfg);
  watch->exp = &exp;

  // Apply the schedule. Events are bound to absolute sim times before
  // start(); replica ids are clamped so shrink candidates with lowered n
  // stay well-formed.
  for (const auto& ev : s.events) {
    const ReplicaId rid = static_cast<ReplicaId>(ev.replica % s.n);
    switch (ev.kind) {
      case ChaosEvent::Kind::kSetFault:
        exp.set_fault(rid, ev.fault, ev.at);
        break;
      case ChaosEvent::Kind::kClearFault:
        exp.set_fault(rid, core::FaultKind::kNone, ev.at);
        break;
      case ChaosEvent::Kind::kRestart:
        exp.sim().schedule_at(ev.at, [&exp, rid] { exp.restart_replica(rid); });
        break;
      case ChaosEvent::Kind::kPartition: {
        const std::uint32_t cut =
            std::clamp<std::uint32_t>(ev.cut, 1, s.n > 1 ? s.n - 1 : 1);
        std::vector<std::vector<ReplicaId>> groups(2);
        for (ReplicaId id = 0; id < s.n; ++id) groups[id < cut ? 0 : 1].push_back(id);
        const SimTime heal = ev.at + ev.duration;
        exp.sim().schedule_at(ev.at, [&overlay, groups, heal] {
          if (overlay != nullptr) overlay->set_partition(groups, heal);
        });
        break;
      }
      case ChaosEvent::Kind::kLeaderAttack: {
        const SimTime start = ev.at;
        const SimTime end = ev.at + ev.duration;
        const SimTime attack = 4 * s.base_timeout_us;
        exp.sim().schedule_at(ev.at, [&overlay, &exp, start, end, attack] {
          if (overlay == nullptr) return;
          overlay->set_attack_window(start, end, attack, [&exp] {
            std::set<ReplicaId> targets;
            for (ReplicaId id = 0; id < exp.n(); ++id) {
              if (!exp.is_honest(id)) continue;
              targets.insert(core::round_leader(exp.replica(id).current_round(), exp.n(),
                                                exp.config().pcfg.leader_rotation));
            }
            return targets;
          });
        });
        break;
      }
    }
  }

  exp.start();
  bool reached = false;
  for (;;) {
    if (watch->violated) break;
    if (s.commit_target > 0 && exp.min_honest_commits() >= s.commit_target) {
      reached = true;
      break;
    }
    if (exp.sim().now() > s.horizon_us) break;
    bool stepped = false;
    for (int i = 0; i < 512; ++i) {
      if (watch->violated || exp.sim().now() > s.horizon_us) break;
      if (!exp.sim().step()) break;
      stepped = true;
    }
    if (!stepped) break;  // event queue drained
  }

  ChaosResult res;
  res.commits = exp.min_honest_commits();
  res.reached_target = reached;
  if (watch->violated) {
    res.ok = false;
    res.failure_kind = "invariant";
    res.failure = watch->detail;
    res.failure_time_us = watch->at;
  } else {
    const InvariantReport inv = check_invariants(exp);
    const SafetyReport safety = exp.check_safety();
    if (!inv.ok) {
      res.ok = false;
      res.failure_kind = "invariant";
      res.failure = inv.violations.front();
      res.failure_time_us = exp.sim().now();
    } else if (!safety.ok) {
      res.ok = false;
      res.failure_kind = "safety";
      res.failure = safety.detail;
      res.failure_time_us = exp.sim().now();
    }
  }
  const obs::TraceReport trep = obs::analyze_trace(exp.trace_events());
  res.fallbacks_entered = trep.fallbacks_entered;
  res.fallbacks_won = trep.fallbacks_won;
  res.win_rate = trep.win_rate;
  const std::string ndjson = exp.traces_ndjson();
  const BytesView view{reinterpret_cast<const std::uint8_t*>(ndjson.data()), ndjson.size()};
  res.trace_sha256 = to_hex(crypto::sha256(view));

  if (!res.ok && !forensics_dir.empty()) {
    obs::FlightRecorder::Sources src;
    src.traces = [&exp] { return exp.traces_ndjson(); };
    src.spans = [&exp] { return exp.spans_ndjson(); };
    src.metrics = [&exp] { return exp.registry().snapshot().ndjson(); };
    src.manifest_extra = [&s, &res] {
      return ",\"seed\":" + std::to_string(s.seed) +
             ",\"n\":" + std::to_string(s.n) +
             ",\"failure_time_us\":" + std::to_string(res.failure_time_us) +
             ",\"commits\":" + std::to_string(res.commits) +
             ",\"trace_sha256\":\"" + res.trace_sha256 + "\"";
    };
    // One subdirectory per seed: a fresh recorder restarts its bundle
    // sequence at 0, so dumping straight into `forensics_dir` would make
    // every repro of a sweep overwrite the previous one's bundle.
    obs::FlightRecorder flight(forensics_dir + "/seed-" + std::to_string(s.seed),
                               src);
    res.forensics_path =
        flight.dump(res.failure_kind.empty() ? "failure" : res.failure_kind);
  }
  return res;
}

// ---- shrinking ---------------------------------------------------------

ShrinkOutcome shrink_schedule(const ChaosSchedule& failing, const ChaosResult& failure,
                              std::size_t max_runs) {
  ShrinkOutcome out;
  out.schedule = failing;
  out.result = failure;

  auto try_candidate = [&out, max_runs](ChaosSchedule cand) -> bool {
    if (out.runs >= max_runs) return false;
    ++out.runs;
    ChaosResult r = run_schedule(cand);
    if (r.ok) return false;
    out.schedule = std::move(cand);
    out.result = std::move(r);
    return true;
  };

  // 1. Events after the failure point cannot have caused it.
  if (!out.schedule.events.empty()) {
    ChaosSchedule cand = out.schedule;
    const SimTime cutoff = out.result.failure_time_us;
    cand.events.erase(std::remove_if(cand.events.begin(), cand.events.end(),
                                     [cutoff](const ChaosEvent& e) { return e.at > cutoff; }),
                      cand.events.end());
    if (cand.events.size() < out.schedule.events.size()) try_candidate(std::move(cand));
  }

  // 2. ddmin over the event list: remove chunks, halving the chunk size
  // on every full pass until single events survive.
  for (std::size_t chunk = (out.schedule.events.size() + 1) / 2; chunk >= 1;) {
    for (std::size_t i = 0; i < out.schedule.events.size() && out.runs < max_runs;) {
      ChaosSchedule cand = out.schedule;
      const std::size_t hi = std::min(i + chunk, cand.events.size());
      cand.events.erase(cand.events.begin() + static_cast<long>(i),
                        cand.events.begin() + static_cast<long>(hi));
      if (!try_candidate(std::move(cand))) i = hi;
      // On success the events shrank in place; retry the same index.
    }
    if (chunk == 1 || out.runs >= max_runs) break;
    chunk /= 2;
  }

  // 3. Collapse the network timeline to one synchronous phase.
  {
    const bool trivial = out.schedule.phases.size() == 1 && !out.schedule.phases[0].heavy;
    if (!trivial) {
      ChaosSchedule cand = out.schedule;
      cand.phases = {NetPhase{0, false, 50'000}};
      try_candidate(std::move(cand));
    }
  }

  // 4. Fewer replicas (events re-clamp at run time via replica % n).
  if (out.schedule.n > 4) {
    ChaosSchedule cand = out.schedule;
    cand.n = 4;
    for (auto& ev : cand.events) {
      ev.replica = static_cast<ReplicaId>(ev.replica % cand.n);
      ev.cut = std::min<std::uint32_t>(ev.cut, cand.n - 1);
    }
    try_candidate(std::move(cand));
  }

  // 5. Truncate the horizon to just past the failure.
  {
    const SimTime tight = out.result.failure_time_us + 2 * out.schedule.base_timeout_us;
    if (tight < out.schedule.horizon_us) {
      ChaosSchedule cand = out.schedule;
      cand.horizon_us = tight;
      try_candidate(std::move(cand));
    }
  }
  return out;
}

// ---- JSON artifacts ----------------------------------------------------

namespace {

void append_kv(std::string& o, const char* key, const std::string& val, bool quote,
               bool last = false) {
  o += "  \"";
  o += key;
  o += "\": ";
  if (quote) o += '"';
  o += val;
  if (quote) o += '"';
  if (!last) o += ',';
  o += '\n';
}

/// Minimal JSON document model. Numbers keep their raw token so 64-bit
/// seeds round-trip exactly (a double would lose precision past 2^53).
struct Jv {
  enum class T { kNull, kBool, kNum, kStr, kArr, kObj };
  T t = T::kNull;
  bool b = false;
  std::string num;
  std::string str;
  std::vector<Jv> arr;
  std::vector<std::pair<std::string, Jv>> obj;

  const Jv* get(const char* key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  std::uint64_t u64(std::uint64_t dflt = 0) const {
    return t == T::kNum ? std::strtoull(num.c_str(), nullptr, 10) : dflt;
  }
  bool boolean(bool dflt = false) const { return t == T::kBool ? b : dflt; }
};

/// Recursive-descent parser for the subset our writer emits (objects,
/// arrays, strings with simple escapes, non-negative numbers, booleans).
class JsonParser {
 public:
  explicit JsonParser(const std::string& s) : s_(s) {}

  bool parse(Jv* out) {
    skip();
    if (!value(out)) return false;
    skip();
    return pos_ == s_.size();
  }

 private:
  void skip() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  bool lit(const char* w) {
    const std::size_t n = std::strlen(w);
    if (s_.compare(pos_, n, w) != 0) return false;
    pos_ += n;
    return true;
  }
  bool value(Jv* out) {
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out->t = Jv::T::kStr;
      return string(&out->str);
    }
    if (lit("true")) {
      out->t = Jv::T::kBool;
      out->b = true;
      return true;
    }
    if (lit("false")) {
      out->t = Jv::T::kBool;
      out->b = false;
      return true;
    }
    if (lit("null")) return true;
    return number(out);
  }
  bool number(Jv* out) {
    const std::size_t start = pos_;
    auto numchar = [](char c) {
      return std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+' ||
             c == '.' || c == 'e' || c == 'E';
    };
    while (pos_ < s_.size() && numchar(s_[pos_])) ++pos_;
    if (pos_ == start) return false;
    out->t = Jv::T::kNum;
    out->num = s_.substr(start, pos_ - start);
    return true;
  }
  bool string(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        out->push_back(s_[pos_++]);
      } else {
        out->push_back(c);
      }
    }
    return false;
  }
  bool object(Jv* out) {
    out->t = Jv::T::kObj;
    ++pos_;
    skip();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip();
      if (pos_ >= s_.size() || s_[pos_] != '"') return false;
      std::string key;
      if (!string(&key)) return false;
      skip();
      if (pos_ >= s_.size() || s_[pos_++] != ':') return false;
      skip();
      Jv v;
      if (!value(&v)) return false;
      out->obj.emplace_back(std::move(key), std::move(v));
      skip();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < s_.size() && s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool array(Jv* out) {
    out->t = Jv::T::kArr;
    ++pos_;
    skip();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip();
      Jv v;
      if (!value(&v)) return false;
      out->arr.push_back(std::move(v));
      skip();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string schedule_to_json(const ChaosSchedule& s) {
  std::string o = "{\n";
  append_kv(o, "version", std::to_string(s.version), false);
  append_kv(o, "seed", std::to_string(s.seed), false);
  append_kv(o, "n", std::to_string(s.n), false);
  append_kv(o, "protocol", protocol_token(s.protocol), true);
  append_kv(o, "horizon_us", std::to_string(s.horizon_us), false);
  append_kv(o, "commit_target", std::to_string(s.commit_target), false);
  append_kv(o, "base_timeout_us", std::to_string(s.base_timeout_us), false);
  append_kv(o, "batch_bytes", std::to_string(s.batch_bytes), false);
  append_kv(o, "batch_announce", s.batch_announce ? "true" : "false", false);
  append_kv(o, "plant_deferred_vote_hole", s.plant_deferred_vote_hole ? "true" : "false",
            false);
  o += "  \"phases\": [\n";
  for (std::size_t i = 0; i < s.phases.size(); ++i) {
    const NetPhase& p = s.phases[i];
    o += "    {\"start_us\": " + std::to_string(p.start) +
         ", \"heavy\": " + (p.heavy ? "true" : "false") +
         ", \"mean_us\": " + std::to_string(p.mean_us) + "}";
    o += i + 1 < s.phases.size() ? ",\n" : "\n";
  }
  o += "  ],\n";
  o += "  \"events\": [\n";
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    const ChaosEvent& e = s.events[i];
    o += std::string("    {\"kind\": \"") + kind_token(e.kind) +
         "\", \"at_us\": " + std::to_string(e.at) +
         ", \"replica\": " + std::to_string(e.replica) + ", \"fault\": \"" +
         fault_token(e.fault) + "\", \"cut\": " + std::to_string(e.cut) +
         ", \"duration_us\": " + std::to_string(e.duration) + "}";
    o += i + 1 < s.events.size() ? ",\n" : "\n";
  }
  o += "  ],\n";
  append_kv(o, "expect_trace_sha256", s.expect_trace_sha256, true, /*last=*/true);
  o += "}\n";
  return o;
}

std::optional<ChaosSchedule> schedule_from_json(const std::string& json) {
  Jv root;
  if (!JsonParser(json).parse(&root) || root.t != Jv::T::kObj) return std::nullopt;
  ChaosSchedule s;
  auto u64_field = [&root](const char* key, std::uint64_t dflt) {
    const Jv* v = root.get(key);
    return v != nullptr ? v->u64(dflt) : dflt;
  };
  s.version = static_cast<std::uint32_t>(u64_field("version", 1));
  s.seed = u64_field("seed", 0);
  s.n = static_cast<std::uint32_t>(u64_field("n", 4));
  if (s.n < 1 || s.n > 1'000) return std::nullopt;
  if (const Jv* v = root.get("protocol"); v != nullptr) {
    if (v->t != Jv::T::kStr || !parse_protocol_token(v->str, &s.protocol)) return std::nullopt;
  }
  s.horizon_us = u64_field("horizon_us", 60'000'000);
  s.commit_target = u64_field("commit_target", 25);
  s.base_timeout_us = u64_field("base_timeout_us", 400'000);
  s.batch_bytes = static_cast<std::uint32_t>(u64_field("batch_bytes", 0));
  if (const Jv* v = root.get("batch_announce"); v != nullptr) s.batch_announce = v->boolean(true);
  if (const Jv* v = root.get("plant_deferred_vote_hole"); v != nullptr) {
    s.plant_deferred_vote_hole = v->boolean(false);
  }
  if (const Jv* v = root.get("phases"); v != nullptr) {
    if (v->t != Jv::T::kArr || v->arr.size() > 64) return std::nullopt;
    for (const Jv& pj : v->arr) {
      if (pj.t != Jv::T::kObj) return std::nullopt;
      NetPhase p;
      if (const Jv* f = pj.get("start_us"); f != nullptr) p.start = f->u64(0);
      if (const Jv* f = pj.get("heavy"); f != nullptr) p.heavy = f->boolean(false);
      if (const Jv* f = pj.get("mean_us"); f != nullptr) p.mean_us = f->u64(50'000);
      s.phases.push_back(p);
    }
  }
  if (const Jv* v = root.get("events"); v != nullptr) {
    if (v->t != Jv::T::kArr || v->arr.size() > 4'096) return std::nullopt;
    for (const Jv& ej : v->arr) {
      if (ej.t != Jv::T::kObj) return std::nullopt;
      ChaosEvent e;
      const Jv* kind = ej.get("kind");
      if (kind == nullptr || kind->t != Jv::T::kStr || !parse_kind(kind->str, &e.kind)) {
        return std::nullopt;
      }
      if (const Jv* f = ej.get("at_us"); f != nullptr) e.at = f->u64(0);
      if (const Jv* f = ej.get("replica"); f != nullptr) {
        e.replica = static_cast<ReplicaId>(f->u64(0));
      }
      if (const Jv* f = ej.get("fault"); f != nullptr) {
        if (f->t != Jv::T::kStr || !parse_fault_token(f->str, &e.fault)) return std::nullopt;
      }
      if (const Jv* f = ej.get("cut"); f != nullptr) e.cut = static_cast<std::uint32_t>(f->u64(1));
      if (const Jv* f = ej.get("duration_us"); f != nullptr) e.duration = f->u64(0);
      s.events.push_back(e);
    }
  }
  if (const Jv* v = root.get("expect_trace_sha256"); v != nullptr) {
    if (v->t != Jv::T::kStr) return std::nullopt;
    s.expect_trace_sha256 = v->str;
  }
  return s;
}

// ---- the sweep ---------------------------------------------------------

FuzzStats ChaosFuzzer::run(const std::function<void(std::uint64_t, const ChaosResult&)>& on_progress) {
  FuzzStats st;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < opt_.seeds; ++i) {
    if (opt_.wall_limit_ms > 0) {
      const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
      if (static_cast<std::uint64_t>(elapsed) >= opt_.wall_limit_ms) break;
    }
    const std::uint64_t seed = opt_.seed0 + i;
    const ChaosSchedule sched = generate_schedule(seed, opt_.gen);
    const ChaosResult res = run_schedule(sched);
    ++st.runs;
    st.fallbacks_entered += res.fallbacks_entered;
    st.fallbacks_won += res.fallbacks_won;
    if (res.reached_target) ++st.targets_reached;
    if (!res.ok) {
      ++st.failures;
      FuzzFailure fail;
      fail.seed = seed;
      if (opt_.shrink) {
        ShrinkOutcome shr = shrink_schedule(sched, res, opt_.shrink_budget);
        fail.shrunk = std::move(shr.schedule);
        fail.result = std::move(shr.result);
        fail.shrink_runs = shr.runs;
      } else {
        fail.shrunk = sched;
        fail.result = res;
      }
      fail.shrunk.expect_trace_sha256 = fail.result.trace_sha256;
      if (!opt_.forensics_dir.empty()) {
        // Re-execute the minimal repro with spans on: the bundle then
        // captures the failing run's full trace/span/metrics window next
        // to the replayable schedule artifact.
        const ChaosResult forensic = run_schedule(fail.shrunk, opt_.forensics_dir);
        fail.forensics_path = forensic.forensics_path;
      }
      st.found.push_back(std::move(fail));
    }
    if (on_progress) on_progress(seed, res);
  }
  return st;
}

}  // namespace repro::harness
