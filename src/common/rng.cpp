#include "common/rng.h"

#include <cmath>

namespace repro {

double Rng::exponential(double mean) {
  REPRO_ASSERT(mean > 0);
  // Inverse CDF; clamp away from 0 so log() is finite.
  double u = uniform01();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

}  // namespace repro
