// Invariant assertions that stay on in release builds.
//
// Protocol code is full of invariants whose violation means a logic bug
// (e.g. "a QC always has exactly 2f+1 distinct signers"). We never want
// those compiled out, so we do not use <cassert>.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace repro {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "REPRO_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace repro

#define REPRO_ASSERT(expr)                                          \
  do {                                                              \
    if (!(expr)) ::repro::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define REPRO_ASSERT_MSG(expr, msg)                              \
  do {                                                           \
    if (!(expr)) ::repro::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)
