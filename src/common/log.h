// Tiny leveled logger.
//
// Protocol traces are invaluable when debugging consensus; benchmarks run
// with logging off. The logger is process-global but stateless apart from
// the level, which experiments set once up front.
#pragma once

#include <cstdio>
#include <string>

namespace repro {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Set / get the global level. Default is kWarn so tests stay quiet.
void set_log_level(LogLevel level);
LogLevel log_level();

bool log_enabled(LogLevel level);

/// printf-style sink; prefixed with the level tag.
void log_write(LogLevel level, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

}  // namespace repro

#define REPRO_LOG(level, ...)                                      \
  do {                                                             \
    if (::repro::log_enabled(level)) ::repro::log_write(level, __VA_ARGS__); \
  } while (0)

#define LOG_TRACE(...) REPRO_LOG(::repro::LogLevel::kTrace, __VA_ARGS__)
#define LOG_DEBUG(...) REPRO_LOG(::repro::LogLevel::kDebug, __VA_ARGS__)
#define LOG_INFO(...) REPRO_LOG(::repro::LogLevel::kInfo, __VA_ARGS__)
#define LOG_WARN(...) REPRO_LOG(::repro::LogLevel::kWarn, __VA_ARGS__)
#define LOG_ERROR(...) REPRO_LOG(::repro::LogLevel::kError, __VA_ARGS__)
