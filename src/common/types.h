// Fundamental protocol scalar types shared by every module.
#pragma once

#include <cstdint>
#include <limits>

namespace repro {

/// Index of a replica in [0, n). The paper numbers replicas 1..n; we use
/// 0-based indices everywhere and only format as 1-based in logs.
using ReplicaId = std::uint32_t;

/// Round number r = 1, 2, 3, ... (0 is reserved for the genesis block).
using Round = std::uint64_t;

/// View number v = 0, 1, 2, ... incremented after each asynchronous fallback.
using View = std::uint64_t;

/// Height of a fallback-block within a fallback-chain: 1, 2 or 3.
using FallbackHeight = std::uint32_t;

/// Simulated time in microseconds.
using SimTime = std::uint64_t;

inline constexpr SimTime kSimTimeNever = std::numeric_limits<SimTime>::max();

/// Quorum sizes for n = 3f + 1.
struct QuorumParams {
  std::uint32_t n = 0;  ///< total replicas
  std::uint32_t f = 0;  ///< max Byzantine replicas tolerated

  /// Largest f with 3f + 1 <= n.
  static constexpr QuorumParams for_n(std::uint32_t n) {
    return QuorumParams{n, (n - 1) / 3};
  }

  /// Size of a (Byzantine) quorum: n - f. For n = 3f+1 this is 2f+1.
  constexpr std::uint32_t quorum() const { return n - f; }
  /// Size of a coin quorum: f + 1 (one honest replica guaranteed).
  constexpr std::uint32_t coin_quorum() const { return f + 1; }

  constexpr bool operator==(const QuorumParams&) const = default;
};

}  // namespace repro
