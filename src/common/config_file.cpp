#include "common/config_file.h"

#include <cstdio>
#include <cstdlib>

namespace repro {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::optional<ConfigFile> ConfigFile::parse(std::string_view text, std::string* error) {
  ConfigFile cfg;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    pos = (nl == std::string_view::npos) ? text.size() + 1 : nl + 1;
    ++line_no;

    line = trim(line);
    if (line.empty() || line.front() == '#' || line.front() == ';') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": expected 'key = value'";
      }
      return std::nullopt;
    }
    const std::string key(trim(line.substr(0, eq)));
    const std::string value(trim(line.substr(eq + 1)));
    if (key.empty()) {
      if (error != nullptr) *error = "line " + std::to_string(line_no) + ": empty key";
      return std::nullopt;
    }
    cfg.entries_.emplace_back(key, value);
  }
  return cfg;
}

std::optional<ConfigFile> ConfigFile::load(const std::string& path, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return parse(text, error);
}

std::optional<std::string> ConfigFile::get(const std::string& key) const {
  std::optional<std::string> out;
  for (const auto& [k, v] : entries_) {
    if (k == key) out = v;
  }
  return out;
}

std::vector<std::string> ConfigFile::get_all(const std::string& key) const {
  std::vector<std::string> out;
  for (const auto& [k, v] : entries_) {
    if (k == key) out.push_back(v);
  }
  return out;
}

std::int64_t ConfigFile::get_int(const std::string& key, std::int64_t fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 10);
  return (end != nullptr && *end == '\0' && !v->empty()) ? parsed : fallback;
}

bool ConfigFile::get_bool(const std::string& key, bool fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") return true;
  if (*v == "false" || *v == "0" || *v == "no" || *v == "off") return false;
  return fallback;
}

std::string ConfigFile::get_str(const std::string& key, const std::string& fallback) const {
  return get(key).value_or(fallback);
}

std::optional<HostPort> parse_host_port(std::string_view s) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string_view::npos || colon == 0 || colon + 1 >= s.size()) {
    return std::nullopt;
  }
  HostPort hp;
  hp.host = std::string(s.substr(0, colon));
  long port = 0;
  for (char c : s.substr(colon + 1)) {
    if (c < '0' || c > '9') return std::nullopt;
    port = port * 10 + (c - '0');
    if (port > 65535) return std::nullopt;
  }
  if (port == 0) return std::nullopt;
  hp.port = static_cast<std::uint16_t>(port);
  return hp;
}

}  // namespace repro
