// Deterministic pseudo-randomness.
//
// Every experiment is reproducible from (config, seed). All randomness —
// workload generation, network delays, the adversary's choices — flows
// from one of these generators; nothing uses std::random_device or global
// state.
#pragma once

#include <cstdint>

#include "common/assert.h"

namespace repro {

/// SplitMix64: used to seed and to derive independent substreams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the main generator (Blackman/Vigna), fast and high quality.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  /// Derive an independent substream (e.g. one per replica) so adding a
  /// consumer never perturbs the draws seen by others.
  Rng fork(std::uint64_t stream_id) {
    return Rng(next() ^ (0x517cc1b727220a95ull * (stream_id + 1)));
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Uses rejection sampling to avoid modulo
  /// bias. An empty range (bound == 0) yields 0 — schedule generators
  /// legitimately draw from ranges that can be empty, and `-0 % 0`
  /// would otherwise divide by zero.
  std::uint64_t uniform(std::uint64_t bound) {
    if (bound == 0) return 0;
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t uniform_range(std::uint64_t lo, std::uint64_t hi) {
    REPRO_ASSERT(lo <= hi);
    return lo + uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial.
  bool chance(double p) { return uniform01() < p; }

  /// Exponentially distributed with the given mean (for heavy network
  /// delay tails). Mean must be > 0.
  double exponential(double mean);

  // UniformRandomBitGenerator interface (for std::shuffle etc.).
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ull; }
  std::uint64_t operator()() { return next(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace repro
