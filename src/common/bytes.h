// Byte-buffer helpers: the wire format of every protocol message is a
// repro::Bytes value, so byte counting in the network layer is exact.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace repro {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Lower-case hex encoding ("deadbeef").
std::string to_hex(BytesView data);

/// Inverse of to_hex. Returns empty vector on malformed input of odd
/// length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Constant-size digests and similar fixed arrays compare/format often;
/// helper to view any trivially-copyable object as bytes.
template <typename T>
BytesView as_bytes_view(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  return BytesView(reinterpret_cast<const std::uint8_t*>(&value), sizeof(T));
}

}  // namespace repro
