// Byte-buffer helpers: the wire format of every protocol message is a
// repro::Bytes value, so byte counting in the network layer is exact.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace repro {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Refcounted immutable payload: one serialized message buffer shared by
/// every recipient of a multicast (and by the sender's own delivery), so
/// the data path never deep-copies wire bytes per recipient.
using SharedBytes = std::shared_ptr<const Bytes>;

inline SharedBytes make_shared_bytes(Bytes&& data) {
  return std::make_shared<const Bytes>(std::move(data));
}

/// Lower-case hex encoding ("deadbeef").
std::string to_hex(BytesView data);

/// Inverse of to_hex. Returns empty vector on malformed input of odd
/// length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Constant-size digests and similar fixed arrays compare/format often;
/// helper to view any trivially-copyable object as bytes.
template <typename T>
BytesView as_bytes_view(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  return BytesView(reinterpret_cast<const std::uint8_t*>(&value), sizeof(T));
}

}  // namespace repro
