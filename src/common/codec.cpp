#include "common/codec.h"

// Header-only for speed; this TU anchors the library target.
