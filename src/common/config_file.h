// Minimal INI-style configuration files for the node daemon.
//
//   # cluster.conf
//   id = 0
//   timeout_ms = 300
//   batch_bytes = 512
//   wal = /var/lib/bft/node0.wal
//   peer = 127.0.0.1:9000
//   peer = 127.0.0.1:9001
//   peer = 127.0.0.1:9002
//   peer = 127.0.0.1:9003
//
// `key = value` lines, `#`/`;` comments, repeated keys accumulate.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace repro {

class ConfigFile {
 public:
  /// Parse from text. Returns nullopt on malformed lines (reported via
  /// `error` when provided).
  static std::optional<ConfigFile> parse(std::string_view text, std::string* error = nullptr);

  /// Parse a file from disk; nullopt if unreadable or malformed.
  static std::optional<ConfigFile> load(const std::string& path, std::string* error = nullptr);

  /// Last value for a key, or nullopt.
  std::optional<std::string> get(const std::string& key) const;

  /// All values for a repeated key, in file order.
  std::vector<std::string> get_all(const std::string& key) const;

  /// Typed accessors with defaults.
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;
  std::string get_str(const std::string& key, const std::string& fallback) const;

  bool has(const std::string& key) const { return !get_all(key).empty(); }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Parse "host:port". Returns nullopt on malformed input.
struct HostPort {
  std::string host;
  std::uint16_t port = 0;
};
std::optional<HostPort> parse_host_port(std::string_view s);

}  // namespace repro
