#include "common/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdint>
#include <ctime>

namespace repro {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

std::uint64_t monotonic_us() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000 +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1'000;
}

/// Microseconds since the first log line of the process — short, stable
/// offsets instead of raw monotonic readings.
std::uint64_t us_since_start() {
  static const std::uint64_t start = monotonic_us();
  return monotonic_us() - start;
}

/// Small sequential thread ids (t0, t1, ...) in first-log order; raw
/// pthread ids are unreadably long and vary run to run anyway.
unsigned thread_seq() {
  static std::atomic<unsigned> next{0};
  thread_local unsigned id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }
bool log_enabled(LogLevel level) { return static_cast<int>(level) >= static_cast<int>(g_level); }

void log_write(LogLevel level, const char* fmt, ...) {
  // Format the whole line into one buffer and emit it with a single
  // fwrite: stdio locks the stream per call, so concurrent writers (the
  // VerifyPool workers, the admin thread, the node loop) never interleave
  // within a line.
  char line[1024];
  const std::uint64_t t = us_since_start();
  int off = std::snprintf(line, sizeof line, "[%5llu.%06llu] [t%u] [%s] ",
                          static_cast<unsigned long long>(t / 1'000'000),
                          static_cast<unsigned long long>(t % 1'000'000),
                          thread_seq(), level_tag(level));
  if (off < 0) return;
  if (off > static_cast<int>(sizeof line) - 2) off = sizeof line - 2;

  va_list args;
  va_start(args, fmt);
  int n = std::vsnprintf(line + off, sizeof line - static_cast<std::size_t>(off) - 1,
                         fmt, args);
  va_end(args);
  if (n < 0) n = 0;
  std::size_t len = static_cast<std::size_t>(off) + static_cast<std::size_t>(n);
  if (len > sizeof line - 2) len = sizeof line - 2;  // truncated long line
  line[len] = '\n';
  std::fwrite(line, 1, len + 1, stderr);
}

}  // namespace repro
