// Minimal binary serialization.
//
// Every wire message in the protocol stack encodes itself with Encoder and
// decodes with Decoder, so the simulated network can account exact byte
// sizes (communication-complexity measurements depend on this) and so
// Byzantine tests can corrupt messages at the byte level.
//
// Format: little-endian fixed-width integers; byte strings are
// u32-length-prefixed; vectors are u32-count-prefixed.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>

#include "common/bytes.h"

namespace repro {

class Encoder {
 public:
  Encoder() = default;

  /// Pre-size the buffer for `additional` more bytes. Encoders of large
  /// messages (block-carrying proposals, block responses) compute their
  /// exact wire size up front so the buffer never reallocates mid-encode.
  void reserve(std::size_t additional) { buf_.reserve(buf_.size() + additional); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }

  void bool_(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed byte string.
  void bytes(BytesView data) {
    u32(static_cast<std::uint32_t>(data.size()));
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Fixed-size byte block (no length prefix); caller must know the size.
  void raw(BytesView data) { buf_.insert(buf_.end(), data.begin(), data.end()); }

  void str(std::string_view s) {
    bytes(BytesView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }

  const Bytes& result() const& { return buf_; }
  Bytes result() && { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  Bytes buf_;
};

/// Decoder over a borrowed byte span. All accessors return std::nullopt on
/// truncation instead of throwing; protocol handlers drop malformed
/// messages (a Byzantine sender must never crash an honest replica).
class Decoder {
 public:
  explicit Decoder(BytesView data) : data_(data) {}

  std::optional<std::uint8_t> u8() {
    if (pos_ + 1 > data_.size()) return std::nullopt;
    return data_[pos_++];
  }

  std::optional<std::uint32_t> u32() { return read_le<std::uint32_t>(); }
  std::optional<std::uint64_t> u64() { return read_le<std::uint64_t>(); }

  /// Strict: only 0x00/0x01 are valid, so every decodable message has a
  /// unique (canonical) encoding — important when ids/signatures are
  /// computed over encodings.
  std::optional<bool> bool_() {
    auto b = u8();
    if (!b || *b > 1) return std::nullopt;
    return *b != 0;
  }

  std::optional<Bytes> bytes() {
    auto len = u32();
    if (!len || pos_ + *len > data_.size()) return std::nullopt;
    Bytes out(data_.begin() + pos_, data_.begin() + pos_ + *len);
    pos_ += *len;
    return out;
  }

  std::optional<Bytes> raw(std::size_t len) {
    if (pos_ + len > data_.size()) return std::nullopt;
    Bytes out(data_.begin() + pos_, data_.begin() + pos_ + len);
    pos_ += len;
    return out;
  }

  std::optional<std::string> str() {
    auto b = bytes();
    if (!b) return std::nullopt;
    return std::string(b->begin(), b->end());
  }

  bool done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  template <typename T>
  std::optional<T> read_le() {
    if (pos_ + sizeof(T) > data_.size()) return std::nullopt;
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace repro
