#include "storage/wal.h"

#include <cstdio>

#include "common/assert.h"
#include "common/codec.h"
#include "crypto/sha256.h"

namespace repro::storage {
namespace {

std::uint32_t checksum(BytesView body) {
  const crypto::Digest d = crypto::sha256_tagged("repro/wal", body);
  return static_cast<std::uint32_t>(crypto::digest_prefix_u64(d));
}

}  // namespace

FileWal::FileWal(std::string path) : path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), "ab");
  REPRO_ASSERT_MSG(file_ != nullptr, "cannot open WAL file for append");
}

FileWal::~FileWal() {
  if (file_ != nullptr) std::fclose(file_);
}

void FileWal::append(BytesView record) {
  Encoder enc;
  enc.u32(static_cast<std::uint32_t>(record.size()));
  enc.u32(checksum(record));
  enc.raw(record);
  const Bytes& framed = enc.result();
  const std::size_t written = std::fwrite(framed.data(), 1, framed.size(), file_);
  REPRO_ASSERT_MSG(written == framed.size(), "short WAL write");
  std::fflush(file_);  // stands in for fsync in this reproduction
}

std::vector<Bytes> FileWal::replay() const {
  std::vector<Bytes> records;
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return records;
  for (;;) {
    std::uint8_t header[8];
    if (std::fread(header, 1, 8, f) != 8) break;  // clean end or torn header
    Decoder dec(BytesView(header, 8));
    const std::uint32_t len = *dec.u32();
    const std::uint32_t sum = *dec.u32();
    if (len > (1u << 24)) break;  // implausible length: corrupted
    Bytes body(len);
    if (len != 0 && std::fread(body.data(), 1, len, f) != len) break;  // torn body
    if (checksum(body) != sum) break;  // corrupted record
    records.push_back(std::move(body));
  }
  std::fclose(f);
  return records;
}

}  // namespace repro::storage
