// Write-ahead logging for crash recovery.
//
// A BFT replica must never vote twice for conflicting blocks — even
// across a crash and restart. Production systems therefore make the vote
// state (r_vote, rank_lock, view, per-proposer fallback vote counters,
// qc_high) durable *before* each vote leaves the machine. This module
// provides the record log: an interface, an in-memory backend (used by
// the simulation's restart tests), and a file backend with per-record
// checksums and torn-tail tolerance for real deployments.
//
// Recovery of everything else (blocks, ledger) is intentionally *not*
// logged: a restarted replica rebuilds the chain through the protocol's
// block-retrieval path, which it needs anyway to catch up with what it
// missed while down.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace repro::storage {

class Wal {
 public:
  virtual ~Wal() = default;

  /// Durably append one record. Must be complete ("fsynced") when this
  /// returns — the protocol votes immediately afterwards.
  virtual void append(BytesView record) = 0;

  /// All intact records, oldest first. A corrupted/torn tail is silently
  /// truncated (the classic WAL recovery rule); corruption *before* the
  /// tail also stops replay there, conservatively.
  virtual std::vector<Bytes> replay() const = 0;

  /// Number of intact records (for tests / compaction policies).
  virtual std::size_t record_count() const = 0;
};

/// In-memory WAL: survives a simulated replica restart (the object
/// outlives the replica), not a process restart. Used by the harness.
class MemWal final : public Wal {
 public:
  void append(BytesView record) override {
    records_.emplace_back(record.begin(), record.end());
  }
  std::vector<Bytes> replay() const override { return records_; }
  std::size_t record_count() const override { return records_.size(); }

 private:
  std::vector<Bytes> records_;
};

/// File-backed WAL. Record format: u32 length, u32 checksum (first four
/// bytes of SHA-256 over the body), body. Appends are flushed before
/// returning.
class FileWal final : public Wal {
 public:
  /// Opens (creating if absent) the log at `path` for appending.
  explicit FileWal(std::string path);
  ~FileWal() override;

  FileWal(const FileWal&) = delete;
  FileWal& operator=(const FileWal&) = delete;

  void append(BytesView record) override;
  std::vector<Bytes> replay() const override;
  std::size_t record_count() const override { return replay().size(); }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
};

}  // namespace repro::storage
