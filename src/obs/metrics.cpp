#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace repro::obs {
namespace {

std::string render_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    out += v;
    out += "\"";
  }
  out += "}";
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

const char* kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

}  // namespace

bool Snapshot::has(const std::string& name) const {
  for (const auto& s : samples) {
    if (s.name == name) return true;
  }
  return false;
}

std::uint64_t Snapshot::value(const std::string& name) const {
  std::uint64_t total = 0;
  for (const auto& s : samples) {
    if (s.name == name) total += s.value;
  }
  return total;
}

const Sample* Snapshot::find(const std::string& name, const Labels& labels) const {
  for (const auto& s : samples) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}

std::string Snapshot::prometheus() const {
  std::string out;
  std::string last_family;
  for (const auto& s : samples) {
    if (s.name != last_family) {
      out += "# TYPE ";
      out += s.name;
      out += " ";
      out += kind_name(s.kind);
      out += "\n";
      last_family = s.name;
    }
    if (s.kind == MetricKind::kHistogram) {
      // Cumulative buckets with power-of-two `le` boundaries.
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i < s.buckets.size(); ++i) {
        cum += s.buckets[i];
        Labels bl = s.labels;
        if (i + 1 == s.buckets.size()) {
          bl.emplace_back("le", "+Inf");
        } else {
          bl.emplace_back("le", std::to_string(Histogram::bucket_upper(i)));
        }
        out += s.name;
        out += "_bucket";
        out += render_labels(bl);
        out += " ";
        append_u64(out, cum);
        out += "\n";
      }
      out += s.name;
      out += "_sum";
      out += render_labels(s.labels);
      out += " ";
      append_u64(out, s.sum);
      out += "\n";
      out += s.name;
      out += "_count";
      out += render_labels(s.labels);
      out += " ";
      append_u64(out, s.count);
      out += "\n";
    } else {
      out += s.name;
      out += render_labels(s.labels);
      out += " ";
      append_u64(out, s.value);
      out += "\n";
    }
  }
  return out;
}

std::string Snapshot::ndjson() const {
  std::string out;
  for (const auto& s : samples) {
    out += "{\"name\":\"";
    out += json_escape(s.name);
    out += "\",\"kind\":\"";
    out += kind_name(s.kind);
    out += "\"";
    for (const auto& [k, v] : s.labels) {
      out += ",\"";
      out += json_escape(k);
      out += "\":\"";
      out += json_escape(v);
      out += "\"";
    }
    if (s.kind == MetricKind::kHistogram) {
      out += ",\"count\":";
      append_u64(out, s.count);
      out += ",\"sum\":";
      append_u64(out, s.sum);
      out += ",\"buckets\":[";
      for (std::size_t i = 0; i < s.buckets.size(); ++i) {
        if (i != 0) out += ",";
        append_u64(out, s.buckets[i]);
      }
      out += "]";
    } else {
      out += ",\"value\":";
      append_u64(out, s.value);
    }
    out += "}\n";
  }
  return out;
}

Registry::Entry& Registry::upsert(const std::string& name, Labels labels,
                                  MetricKind kind) {
  for (auto& e : entries_) {
    if (e->name == name && e->labels == labels) {
      // Replace in place: a re-registration (e.g. replica restart) hands
      // over new storage under the same identity.
      *e = Entry{};
      e->name = name;
      e->labels = std::move(labels);
      e->kind = kind;
      return *e;
    }
  }
  entries_.push_back(std::make_unique<Entry>());
  Entry& e = *entries_.back();
  e.name = name;
  e.labels = std::move(labels);
  e.kind = kind;
  return e;
}

Counter& Registry::counter(const std::string& name, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = upsert(name, std::move(labels), MetricKind::kCounter);
  e.owned_counter = std::make_unique<Counter>();
  return *e.owned_counter;
}

Gauge& Registry::gauge(const std::string& name, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = upsert(name, std::move(labels), MetricKind::kGauge);
  e.owned_gauge = std::make_unique<Gauge>();
  return *e.owned_gauge;
}

Histogram& Registry::histogram(const std::string& name, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = upsert(name, std::move(labels), MetricKind::kHistogram);
  e.owned_hist = std::make_unique<Histogram>();
  return *e.owned_hist;
}

void Registry::attach_counter(const std::string& name, Labels labels,
                              const Counter* c) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = upsert(name, std::move(labels), MetricKind::kCounter);
  e.ext_counter = c;
}

void Registry::attach_gauge_fn(const std::string& name, Labels labels,
                               std::function<std::uint64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = upsert(name, std::move(labels), MetricKind::kGauge);
  e.gauge_fn = std::move(fn);
}

void Registry::attach_histogram(const std::string& name, Labels labels,
                                const Histogram* h) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = upsert(name, std::move(labels), MetricKind::kHistogram);
  e.ext_hist = h;
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.samples.reserve(entries_.size());
  for (const auto& e : entries_) {
    Sample s;
    s.name = e->name;
    s.labels = e->labels;
    s.kind = e->kind;
    const Histogram* hist = e->owned_hist ? e->owned_hist.get() : e->ext_hist;
    if (hist != nullptr) {
      s.buckets.resize(Histogram::kBuckets);
      for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
        s.buckets[i] = hist->bucket(i);
      }
      s.count = hist->count();
      s.sum = hist->sum();
    } else if (e->owned_counter) {
      s.value = e->owned_counter->load();
    } else if (e->owned_gauge) {
      s.value = e->owned_gauge->load();
    } else if (e->ext_counter != nullptr) {
      s.value = e->ext_counter->load();
    } else if (e->gauge_fn) {
      s.value = e->gauge_fn();
    }
    snap.samples.push_back(std::move(s));
  }
  // Group label variants of a family together (stable within a family by
  // registration order) so Prometheus emits one # TYPE line per family.
  std::stable_sort(snap.samples.begin(), snap.samples.end(),
                   [](const Sample& a, const Sample& b) { return a.name < b.name; });
  return snap;
}

}  // namespace repro::obs
