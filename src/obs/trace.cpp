#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <map>
#include <set>
#include <tuple>

#include "obs/metrics.h"

namespace repro::obs {
namespace {

struct KindName {
  EventKind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {EventKind::kViewEntered, "view_entered"},
    {EventKind::kProposalSent, "proposal_sent"},
    {EventKind::kProposalReceived, "proposal_received"},
    {EventKind::kVoteSent, "vote_sent"},
    {EventKind::kQcFormed, "qc_formed"},
    {EventKind::kTcFormed, "tc_formed"},
    {EventKind::kFtcFormed, "ftc_formed"},
    {EventKind::kCoinQcFormed, "coin_qc_formed"},
    {EventKind::kFallbackEntered, "fallback_entered"},
    {EventKind::kFallbackExited, "fallback_exited"},
    {EventKind::kFBlockCertified, "fblock_certified"},
    {EventKind::kChainAdopted, "chain_adopted"},
    {EventKind::kLeaderElected, "leader_elected"},
    {EventKind::kBlockCommitted, "block_committed"},
    {EventKind::kBatchAnnounced, "batch_announced"},
    {EventKind::kBatchResolved, "batch_resolved"},
};

std::uint64_t wall_now_us() {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000 +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1'000;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

/// Extract an unsigned integer field from a flat one-line JSON object.
bool json_u64(const std::string& line, const char* key, std::uint64_t* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const char* p = line.c_str() + pos + needle.size();
  char* end = nullptr;
  const unsigned long long v = std::strtoull(p, &end, 10);
  if (end == p) return false;
  *out = v;
  return true;
}

/// Extract a string field ("key":"value") from a flat JSON object. The
/// values we emit (event names) never contain escapes, so a plain scan to
/// the closing quote is sufficient.
bool json_str(const std::string& line, const char* key, std::string* out) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const std::size_t start = pos + needle.size();
  const std::size_t end = line.find('"', start);
  if (end == std::string::npos) return false;
  *out = line.substr(start, end - start);
  return true;
}

void fill_latency(LatencyStats* out, std::vector<std::uint64_t> samples) {
  out->count = samples.size();
  if (samples.empty()) return;
  std::sort(samples.begin(), samples.end());
  std::uint64_t sum = 0;
  for (auto s : samples) sum += s;
  out->mean_us = static_cast<double>(sum) / static_cast<double>(samples.size());
  out->p50_us = samples[samples.size() / 2];
  out->p99_us = samples[std::min(samples.size() - 1, samples.size() * 99 / 100)];
}

}  // namespace

const char* event_name(EventKind k) {
  for (const auto& kn : kKindNames) {
    if (kn.kind == k) return kn.name;
  }
  return "?";
}

bool event_from_name(const std::string& name, EventKind* out) {
  for (const auto& kn : kKindNames) {
    if (name == kn.name) {
      *out = kn.kind;
      return true;
    }
  }
  return false;
}

TraceRing::TraceRing(std::size_t capacity, bool wall_clock)
    : capacity_(capacity), wall_clock_(wall_clock) {
  ring_.reserve(capacity_);
}

void TraceRing::push(TraceEvent ev) {
  if (capacity_ == 0) return;
  if (wall_clock_) ev.wall_us = wall_now_us();
  std::lock_guard<std::mutex> lock(mu_);
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(ev);
  } else {
    ring_[next_] = ev;
    next_ = (next_ + 1) % capacity_;
  }
}

std::vector<TraceEvent> TraceRing::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // next_ points at the oldest retained event once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t TraceRing::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

std::uint64_t TraceRing::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_ - ring_.size();
}

std::string to_ndjson(const std::vector<TraceEvent>& events) {
  std::string out;
  out.reserve(events.size() * 96);
  for (const auto& ev : events) {
    out += "{\"ev\":\"";
    out += event_name(ev.kind);
    out += "\",\"replica\":";
    append_u64(out, ev.replica);
    out += ",\"t_us\":";
    append_u64(out, ev.t_us);
    if (ev.wall_us != 0) {
      out += ",\"wall_us\":";
      append_u64(out, ev.wall_us);
    }
    out += ",\"view\":";
    append_u64(out, ev.view);
    out += ",\"round\":";
    append_u64(out, ev.round);
    out += ",\"height\":";
    append_u64(out, ev.height);
    out += ",\"aux\":";
    append_u64(out, ev.aux);
    out += "}\n";
  }
  return out;
}

std::vector<TraceEvent> parse_ndjson(const std::string& text,
                                     std::size_t* bad_lines) {
  std::vector<TraceEvent> out;
  std::size_t bad = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    // Mixed observability streams interleave span lines and ring-health
    // meta lines with trace events; neither is malformed, just not ours.
    if (line.find("\"stage\":") != std::string::npos ||
        line.find("\"trace_meta\":") != std::string::npos) {
      continue;
    }
    std::string name;
    TraceEvent ev;
    std::uint64_t replica = 0;
    if (!json_str(line, "ev", &name) || !event_from_name(name, &ev.kind) ||
        !json_u64(line, "replica", &replica) || !json_u64(line, "t_us", &ev.t_us)) {
      ++bad;
      continue;
    }
    ev.replica = static_cast<ReplicaId>(replica);
    json_u64(line, "wall_us", &ev.wall_us);
    json_u64(line, "view", &ev.view);
    json_u64(line, "round", &ev.round);
    json_u64(line, "height", &ev.height);
    json_u64(line, "aux", &ev.aux);
    out.push_back(ev);
  }
  if (bad_lines != nullptr) *bad_lines = bad;
  return out;
}

std::string trace_meta_line(const TraceMeta& meta) {
  std::string out = "{\"trace_meta\":1,\"replica\":";
  append_u64(out, meta.replica);
  out += ",\"dropped\":";
  append_u64(out, meta.dropped);
  out += ",\"recorded\":";
  append_u64(out, meta.recorded);
  out += "}\n";
  return out;
}

bool parse_trace_meta_line(const std::string& line, TraceMeta* out) {
  if (line.find("\"trace_meta\":") == std::string::npos) return false;
  std::uint64_t replica = 0;
  TraceMeta meta;
  if (!json_u64(line, "replica", &replica) ||
      !json_u64(line, "dropped", &meta.dropped) ||
      !json_u64(line, "recorded", &meta.recorded)) {
    return false;
  }
  meta.replica = static_cast<ReplicaId>(replica);
  *out = meta;
  return true;
}

std::vector<TraceEvent> merge_traces(
    const std::vector<std::vector<TraceEvent>>& per_replica) {
  struct Tagged {
    TraceEvent ev;
    std::size_t index;  ///< arrival order within its source stream
  };
  std::vector<Tagged> all;
  std::size_t total = 0;
  for (const auto& v : per_replica) total += v.size();
  all.reserve(total);
  for (const auto& v : per_replica) {
    for (std::size_t i = 0; i < v.size(); ++i) all.push_back({v[i], i});
  }
  std::stable_sort(all.begin(), all.end(), [](const Tagged& a, const Tagged& b) {
    if (a.ev.t_us != b.ev.t_us) return a.ev.t_us < b.ev.t_us;
    if (a.ev.replica != b.ev.replica) return a.ev.replica < b.ev.replica;
    return a.index < b.index;
  });
  std::vector<TraceEvent> out;
  out.reserve(all.size());
  for (const auto& t : all) out.push_back(t.ev);
  return out;
}

TraceReport analyze_trace(const std::vector<TraceEvent>& merged) {
  TraceReport rep;
  rep.events_total = merged.size();

  // (view, round, height) coordinates identify a proposal across replicas.
  using Coord = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>;
  std::map<Coord, std::uint64_t> first_proposal;   // earliest kProposalSent
  std::map<Coord, std::uint64_t> first_commit;     // earliest kBlockCommitted
  std::set<std::uint64_t> views_entered;           // views with a fallback
  std::set<std::uint64_t> views_won;               // ... that committed an f-block
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> fb_enter;
  std::vector<std::uint64_t> fb_durations;

  for (const auto& ev : merged) {
    rep.counts[static_cast<std::size_t>(ev.kind)] += 1;
    const Coord c{ev.view, ev.round, ev.height};
    switch (ev.kind) {
      case EventKind::kProposalSent: {
        auto [it, inserted] = first_proposal.emplace(c, ev.t_us);
        if (!inserted && ev.t_us < it->second) it->second = ev.t_us;
        break;
      }
      case EventKind::kBlockCommitted: {
        first_commit.emplace(c, ev.t_us);  // merged order => first wins
        if (ev.height > 0) views_won.insert(ev.view);
        break;
      }
      case EventKind::kFallbackEntered: {
        views_entered.insert(ev.view);
        fb_enter.emplace(std::make_pair(std::uint64_t{ev.replica}, ev.view),
                         ev.t_us);
        break;
      }
      case EventKind::kFallbackExited: {
        auto it = fb_enter.find(
            std::make_pair(std::uint64_t{ev.replica}, ev.view));
        if (it != fb_enter.end() && ev.t_us >= it->second) {
          fb_durations.push_back(ev.t_us - it->second);
          fb_enter.erase(it);
        }
        break;
      }
      default:
        break;
    }
  }

  std::vector<std::uint64_t> steady, fallback;
  for (const auto& [coord, t_commit] : first_commit) {
    auto it = first_proposal.find(coord);
    if (it == first_proposal.end() || t_commit < it->second) continue;
    const std::uint64_t lat = t_commit - it->second;
    if (std::get<2>(coord) > 0) {
      fallback.push_back(lat);
    } else {
      steady.push_back(lat);
    }
  }
  fill_latency(&rep.steady, std::move(steady));
  fill_latency(&rep.fallback, std::move(fallback));
  fill_latency(&rep.fallback_duration, std::move(fb_durations));

  rep.fallbacks_entered = views_entered.size();
  // Only count wins for views that actually entered fallback (an f-block
  // commit implies entry, but guard against partial traces).
  std::uint64_t won = 0;
  for (auto v : views_won) {
    if (views_entered.count(v) != 0) ++won;
  }
  rep.fallbacks_won = won;
  rep.win_rate = ratio(rep.fallbacks_won, rep.fallbacks_entered);
  return rep;
}

std::string TraceReport::summary() const {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof buf, "events: %" PRIu64 "\n", events_total);
  out += buf;
  for (const auto& kn : kKindNames) {
    const std::uint64_t c = counts[static_cast<std::size_t>(kn.kind)];
    if (c == 0) continue;
    std::snprintf(buf, sizeof buf, "  %-18s %" PRIu64 "\n", kn.name, c);
    out += buf;
  }
  // Empty sample sets print no statistics: a mean of an empty histogram is
  // not 0, it does not exist (an always-fallback run has no steady-state
  // commits at all, and "mean=0.0us" there reads as an impossibly fast
  // protocol rather than an empty bucket).
  if (steady.count > 0) {
    std::snprintf(buf, sizeof buf,
                  "commit latency (steady-state): n=%" PRIu64
                  " mean=%.1fus p50=%" PRIu64 "us p99=%" PRIu64 "us\n",
                  steady.count, steady.mean_us, steady.p50_us, steady.p99_us);
  } else {
    std::snprintf(buf, sizeof buf, "commit latency (steady-state): n=0 (no samples)\n");
  }
  out += buf;
  if (fallback.count > 0) {
    std::snprintf(buf, sizeof buf,
                  "commit latency (fallback):     n=%" PRIu64
                  " mean=%.1fus p50=%" PRIu64 "us p99=%" PRIu64 "us\n",
                  fallback.count, fallback.mean_us, fallback.p50_us,
                  fallback.p99_us);
  } else {
    std::snprintf(buf, sizeof buf, "commit latency (fallback):     n=0 (no samples)\n");
  }
  out += buf;
  if (fallback_duration.count > 0) {
    std::snprintf(buf, sizeof buf,
                  "fallback duration:             n=%" PRIu64
                  " mean=%.1fus p50=%" PRIu64 "us p99=%" PRIu64 "us\n",
                  fallback_duration.count, fallback_duration.mean_us,
                  fallback_duration.p50_us, fallback_duration.p99_us);
    out += buf;
  }
  std::snprintf(buf, sizeof buf,
                "fallback win rate: %" PRIu64 "/%" PRIu64
                " = %.3f (paper Lemma 7 bound: >= %.3f)\n",
                fallbacks_won, fallbacks_entered, win_rate, kPaperBound);
  out += buf;
  return out;
}

}  // namespace repro::obs
