#include "obs/admin.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "common/log.h"

namespace repro::obs {
namespace {

void send_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

const char* reason_phrase(int code) {
  switch (code) {
    case 200: return " OK";
    case 400: return " Bad Request";
    case 503: return " Service Unavailable";
    default: return " Not Found";
  }
}

void respond(int fd, int code, const char* content_type, const std::string& body) {
  std::string head = "HTTP/1.0 " + std::to_string(code) + reason_phrase(code) +
                     "\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  send_all(fd, head.data(), head.size());
  send_all(fd, body.data(), body.size());
}

}  // namespace

AdminServer::AdminServer(std::uint16_t port, Options options)
    : opts_(std::move(options)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return;
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, 8) != 0) {
    LOG_WARN("admin: failed to bind 127.0.0.1:%u (%s)", unsigned(port),
             std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  socklen_t alen = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  port_ = ntohs(addr.sin_port);
  thread_ = std::thread([this] { serve_loop(); });
  LOG_INFO("admin: serving /metrics /trace /spans /healthz /dump on 127.0.0.1:%u",
           unsigned(port_));
}

AdminServer::AdminServer(std::uint16_t port, const Registry* registry,
                         std::shared_ptr<const TraceRing> trace)
    : AdminServer(port, [&] {
        Options o;
        o.registry = registry;
        o.trace = std::move(trace);
        return o;
      }()) {}

AdminServer::~AdminServer() {
  stop_.store(true, std::memory_order_relaxed);
  if (listen_fd_ >= 0) {
    // shutdown() wakes the blocking accept; close() reclaims the fd.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (thread_.joinable()) thread_.join();
}

void AdminServer::serve_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stop_.load(std::memory_order_relaxed)) break;
      continue;
    }
    handle_client(fd);
    ::close(fd);
  }
}

void AdminServer::handle_client(int fd) {
  char buf[1024];
  const ssize_t n = ::recv(fd, buf, sizeof buf - 1, 0);
  if (n <= 0) return;
  buf[n] = '\0';
  // "GET <path> HTTP/1.x" — only the path matters. A request line that
  // does not fit the read buffer, or whose first line has no space after
  // the path, is rejected rather than guessed at.
  std::string req(buf, static_cast<std::size_t>(n));
  std::string path;
  bool malformed = true;
  if (req.rfind("GET ", 0) == 0) {
    const std::size_t line_end = req.find_first_of("\r\n");
    const std::size_t end = req.find(' ', 4);
    if (end != std::string::npos && (line_end == std::string::npos || end < line_end)) {
      path = req.substr(4, end - 4);
      malformed = path.empty() || path[0] != '/';
    }
  }
  if (static_cast<std::size_t>(n) == sizeof buf - 1 &&
      req.find("\r\n") == std::string::npos && req.find('\n') == std::string::npos) {
    malformed = true;  // oversized request line, truncated mid-way
  }
  if (malformed) {
    respond(fd, 400, "text/plain", "bad request\n");
    return;
  }
  if (path == "/healthz") {
    if (opts_.health_fn) {
      const auto [code, body] = opts_.health_fn();
      respond(fd, code, "text/plain", body);
    } else {
      respond(fd, 200, "text/plain", "ok\n");
    }
  } else if (path == "/metrics" && opts_.registry != nullptr) {
    respond(fd, 200, "text/plain; version=0.0.4", opts_.registry->snapshot().prometheus());
  } else if (path == "/trace" && opts_.trace != nullptr) {
    // Meta line first so tracecat can report ring drops per replica even
    // when the retained window itself is gappy.
    TraceMeta meta;
    meta.replica = opts_.replica;
    meta.dropped = opts_.trace->dropped();
    meta.recorded = opts_.trace->recorded();
    respond(fd, 200, "application/x-ndjson",
            trace_meta_line(meta) + to_ndjson(opts_.trace->events()));
  } else if (path == "/spans" && opts_.spans != nullptr) {
    respond(fd, 200, "application/x-ndjson", spans_to_ndjson(opts_.spans->events()));
  } else if (path == "/dump" && opts_.dump_fn) {
    const std::string bundle = opts_.dump_fn();
    if (bundle.empty()) {
      respond(fd, 503, "text/plain", "dump failed\n");
    } else {
      respond(fd, 200, "text/plain", bundle + "\n");
    }
  } else {
    respond(fd, 404, "text/plain", "not found\n");
  }
}

}  // namespace repro::obs
