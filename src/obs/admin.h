// Minimal local admin endpoint for real-time nodes: serves the metrics
// registry in Prometheus text format and the trace ring as NDJSON over
// plain HTTP/1.0 on a loopback TCP port. One blocking accept thread, one
// request per connection — diagnostics plumbing, not a web server.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace repro::obs {

class AdminServer {
 public:
  /// Data sources and hooks, all optional. Absent sources make their
  /// route return 404; an absent health_fn makes /healthz a plain 200.
  struct Options {
    const Registry* registry = nullptr;
    std::shared_ptr<const TraceRing> trace;
    std::shared_ptr<const SpanRing> spans;
    /// Replica id stamped into the /trace meta header line.
    ReplicaId replica = 0;
    /// Liveness probe: returns {http status, body}. Implementations
    /// report last-commit age and current view/round, and return 503
    /// once the stall watchdog has tripped.
    std::function<std::pair<int, std::string>()> health_fn;
    /// Forensics hook: GET /dump triggers a flight-recorder bundle and
    /// returns the bundle path (empty string = dump failed -> 503).
    std::function<std::string()> dump_fn;
  };

  /// Binds 127.0.0.1:`port` (port 0 lets the kernel pick; see port()).
  /// Routes: GET /metrics (Prometheus), GET /trace (NDJSON, meta header
  /// line first), GET /spans (NDJSON), GET /healthz (liveness),
  /// GET /dump (forensics bundle). Oversized or malformed request lines
  /// get 400.
  AdminServer(std::uint16_t port, Options options);

  /// Back-compat shorthand: registry + trace only.
  AdminServer(std::uint16_t port, const Registry* registry,
              std::shared_ptr<const TraceRing> trace);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  bool running() const { return listen_fd_ >= 0; }
  std::uint16_t port() const { return port_; }

 private:
  void serve_loop();
  void handle_client(int fd);

  Options opts_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace repro::obs
