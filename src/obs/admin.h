// Minimal local admin endpoint for real-time nodes: serves the metrics
// registry in Prometheus text format and the trace ring as NDJSON over
// plain HTTP/1.0 on a loopback TCP port. One blocking accept thread, one
// request per connection — diagnostics plumbing, not a web server.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace repro::obs {

class AdminServer {
 public:
  /// Binds 127.0.0.1:`port` (port 0 lets the kernel pick; see port()).
  /// `registry` and `trace` may be null — the endpoint then returns 404.
  /// Routes: GET /metrics (Prometheus), GET /trace (NDJSON),
  /// GET /healthz ("ok").
  AdminServer(std::uint16_t port, const Registry* registry,
              std::shared_ptr<const TraceRing> trace);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  bool running() const { return listen_fd_ >= 0; }
  std::uint16_t port() const { return port_; }

 private:
  void serve_loop();
  void handle_client(int fd);

  const Registry* registry_;
  std::shared_ptr<const TraceRing> trace_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace repro::obs
