#include "obs/span.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <deque>
#include <map>
#include <set>

namespace repro::obs {
namespace {

struct StageName {
  SpanStage stage;
  const char* name;
};

constexpr StageName kStageNames[] = {
    {SpanStage::kBatchAnnounce, "batch_announce"},
    {SpanStage::kProposalEncode, "proposal_encode"},
    {SpanStage::kSendFlush, "send_flush"},
    {SpanStage::kSocketRead, "socket_read"},
    {SpanStage::kVerifyDequeue, "verify_dequeue"},
    {SpanStage::kDispatch, "dispatch"},
    {SpanStage::kVoteSend, "vote_send"},
    {SpanStage::kQcFormed, "qc_formed"},
    {SpanStage::kCommit, "commit"},
    {SpanStage::kClientConfirm, "client_confirm"},
    {SpanStage::kClockOffset, "clock_offset"},
};
static_assert(sizeof(kStageNames) / sizeof(kStageNames[0]) == kSpanStageCount);

/// Critical-path stage labels; stage i spans milestone i -> i+1.
constexpr const char* kChainStageNames[SpanChain::kMilestones - 1] = {
    "sendq_wait",   // proposal encode -> send-queue flush
    "wire",         // flush -> critical voter's socket read
    "verify_wait",  // socket read -> verify-pool dequeue
    "dispatch",     // dequeue -> proposal handler entry
    "vote_handler", // handler entry -> vote send
    "quorum",       // vote send -> QC formed
    "commit_rule",  // QC formed -> commit (the k-chain rule's trailing wait)
};

std::uint64_t wall_now_us() {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000 +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1'000;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

bool json_u64(const std::string& line, const char* key, std::uint64_t* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const char* p = line.c_str() + pos + needle.size();
  char* end = nullptr;
  const unsigned long long v = std::strtoull(p, &end, 10);
  if (end == p) return false;
  *out = v;
  return true;
}

bool json_str(const std::string& line, const char* key, std::string* out) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const std::size_t start = pos + needle.size();
  const std::size_t end = line.find('"', start);
  if (end == std::string::npos) return false;
  *out = line.substr(start, end - start);
  return true;
}

void fill_latency(LatencyStats* out, std::vector<std::uint64_t> samples) {
  out->count = samples.size();
  if (samples.empty()) return;
  std::sort(samples.begin(), samples.end());
  std::uint64_t sum = 0;
  for (auto s : samples) sum += s;
  out->mean_us = static_cast<double>(sum) / static_cast<double>(samples.size());
  out->p50_us = samples[samples.size() / 2];
  out->p99_us = samples[std::min(samples.size() - 1, samples.size() * 99 / 100)];
}

// Slot word packing: w0 = stage(8) | replica(28)<<8 | peer(24)<<36,
// w1 = t_us, w2 = key, w3 = aux, w4 = view(32) | round(32)<<32.
constexpr std::uint64_t kReplicaMask = (1ull << 28) - 1;
constexpr std::uint64_t kPeerMask = (1ull << 24) - 1;

std::uint64_t pack_w0(const SpanEvent& ev) {
  return static_cast<std::uint64_t>(ev.stage) |
         ((ev.replica & kReplicaMask) << 8) |
         ((static_cast<std::uint64_t>(ev.peer) & kPeerMask) << 36);
}

void unpack(const std::uint64_t w[5], SpanEvent* ev) {
  ev->stage = static_cast<SpanStage>(w[0] & 0xFF);
  ev->replica = static_cast<ReplicaId>((w[0] >> 8) & kReplicaMask);
  ev->peer = static_cast<ReplicaId>((w[0] >> 36) & kPeerMask);
  ev->t_us = w[1];
  ev->key = w[2];
  ev->aux = w[3];
  ev->view = static_cast<View>(w[4] & 0xFFFFFFFFull);
  ev->round = static_cast<Round>(w[4] >> 32);
}

std::size_t round_pow2(std::size_t v) {
  if (v == 0) return 0;
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

const char* span_stage_name(SpanStage s) {
  for (const auto& sn : kStageNames) {
    if (sn.stage == s) return sn.name;
  }
  return "?";
}

bool span_stage_from_name(const std::string& name, SpanStage* out) {
  for (const auto& sn : kStageNames) {
    if (name == sn.name) {
      *out = sn.stage;
      return true;
    }
  }
  return false;
}

const char* span_chain_stage_name(std::size_t i) {
  return i < SpanChain::kMilestones - 1 ? kChainStageNames[i] : "?";
}

std::uint64_t span_key_of(const std::uint8_t* data, std::size_t size) {
  // FNV-1a 64 over a bounded prefix; the length folds in afterwards so two
  // payloads sharing a 96-byte prefix but differing in size still split.
  std::uint64_t h = 1469598103934665603ull;
  const std::size_t n = std::min<std::size_t>(size, 96);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  h ^= static_cast<std::uint64_t>(size);
  h *= 1099511628211ull;
  return h;
}

SpanRing::SpanRing(std::size_t capacity, bool wall_clock)
    : capacity_(round_pow2(capacity)),
      mask_(capacity_ == 0 ? 0 : capacity_ - 1),
      wall_clock_(wall_clock) {
  if (capacity_ != 0) slots_ = std::make_unique<Slot[]>(capacity_);
}

void SpanRing::push(SpanEvent ev) {
  if (capacity_ == 0) return;
  if (wall_clock_) ev.t_us = wall_now_us();
  const std::uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[ticket & mask_];
  // Seqlock write: invalidate, store payload, publish. Readers that race
  // with us observe seq != ticket+1 and skip the slot.
  s.seq.store(0, std::memory_order_release);
  s.w[0].store(pack_w0(ev), std::memory_order_relaxed);
  s.w[1].store(ev.t_us, std::memory_order_relaxed);
  s.w[2].store(ev.key, std::memory_order_relaxed);
  s.w[3].store(ev.aux, std::memory_order_relaxed);
  s.w[4].store((ev.view & 0xFFFFFFFFull) |
                   (static_cast<std::uint64_t>(ev.round & 0xFFFFFFFFull) << 32),
               std::memory_order_relaxed);
  s.seq.store(ticket + 1, std::memory_order_release);
}

std::vector<SpanEvent> SpanRing::events() const {
  std::vector<SpanEvent> out;
  if (capacity_ == 0) return out;
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t n = std::min<std::uint64_t>(head, capacity_);
  out.reserve(n);
  for (std::uint64_t ticket = head - n; ticket < head; ++ticket) {
    const Slot& s = slots_[ticket & mask_];
    if (s.seq.load(std::memory_order_acquire) != ticket + 1) continue;
    std::uint64_t w[5];
    for (std::size_t i = 0; i < 5; ++i) w[i] = s.w[i].load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != ticket + 1) continue;
    SpanEvent ev;
    unpack(w, &ev);
    out.push_back(ev);
  }
  return out;
}

std::uint64_t SpanRing::recorded() const {
  return head_.load(std::memory_order_relaxed);
}

std::uint64_t SpanRing::dropped() const {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  return head > capacity_ ? head - capacity_ : 0;
}

std::string spans_to_ndjson(const std::vector<SpanEvent>& events) {
  std::string out;
  out.reserve(events.size() * 96);
  for (const auto& ev : events) {
    out += "{\"stage\":\"";
    out += span_stage_name(ev.stage);
    out += "\",\"replica\":";
    append_u64(out, ev.replica);
    out += ",\"t_us\":";
    append_u64(out, ev.t_us);
    out += ",\"key\":";
    append_u64(out, ev.key);
    if (ev.view != 0) {
      out += ",\"view\":";
      append_u64(out, ev.view);
    }
    if (ev.round != 0) {
      out += ",\"round\":";
      append_u64(out, ev.round);
    }
    if (ev.aux != 0) {
      out += ",\"aux\":";
      append_u64(out, ev.aux);
    }
    if (ev.peer != kSpanNoPeer) {
      out += ",\"peer\":";
      append_u64(out, ev.peer);
    }
    out += "}\n";
  }
  return out;
}

std::vector<SpanEvent> parse_spans_ndjson(const std::string& text,
                                          std::size_t* bad_lines) {
  std::vector<SpanEvent> out;
  std::size_t bad = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    // Mixed streams are fine: trace events and meta lines are simply not
    // span lines. Only lines claiming to be spans can be malformed.
    if (line.find("\"stage\":") == std::string::npos) continue;
    std::string name;
    SpanEvent ev;
    std::uint64_t replica = 0;
    if (!json_str(line, "stage", &name) || !span_stage_from_name(name, &ev.stage) ||
        !json_u64(line, "replica", &replica) || !json_u64(line, "t_us", &ev.t_us) ||
        !json_u64(line, "key", &ev.key)) {
      ++bad;
      continue;
    }
    ev.replica = static_cast<ReplicaId>(replica);
    json_u64(line, "view", &ev.view);
    json_u64(line, "round", &ev.round);
    json_u64(line, "aux", &ev.aux);
    std::uint64_t peer = kSpanNoPeer;
    json_u64(line, "peer", &peer);
    ev.peer = static_cast<ReplicaId>(peer);
    out.push_back(ev);
  }
  if (bad_lines != nullptr) *bad_lines = bad;
  return out;
}

void sort_spans(std::vector<SpanEvent>& events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     if (a.t_us != b.t_us) return a.t_us < b.t_us;
                     if (a.replica != b.replica) return a.replica < b.replica;
                     if (a.stage != b.stage) return a.stage < b.stage;
                     return a.key < b.key;
                   });
}

std::size_t apply_clock_offsets(std::vector<SpanEvent>& events) {
  // Last published estimate per (measurer, peer): offset = peer_clock -
  // measurer_clock. Senders only publish min-RTT-improved samples, so the
  // final one is the tightest.
  std::map<std::pair<ReplicaId, ReplicaId>, std::int64_t> pair_offset;
  ReplicaId ref = kSpanNoPeer;
  for (const auto& ev : events) {
    if (ev.replica < ref) ref = ev.replica;
    if (ev.stage == SpanStage::kClockOffset) {
      std::int64_t off = 0;
      std::memcpy(&off, &ev.aux, sizeof off);
      pair_offset[{ev.replica, static_cast<ReplicaId>(ev.key)}] = off;
    }
  }
  if (pair_offset.empty() || ref == kSpanNoPeer) return 0;

  // BFS the (undirected) measurement graph from the reference replica,
  // accumulating each replica's offset relative to the reference clock.
  std::map<ReplicaId, std::int64_t> rel;  // clock_r - clock_ref
  rel[ref] = 0;
  std::deque<ReplicaId> frontier{ref};
  while (!frontier.empty()) {
    const ReplicaId r = frontier.front();
    frontier.pop_front();
    const std::int64_t base = rel[r];
    for (const auto& [pair, off] : pair_offset) {
      if (pair.first == r && rel.find(pair.second) == rel.end()) {
        rel[pair.second] = base + off;
        frontier.push_back(pair.second);
      } else if (pair.second == r && rel.find(pair.first) == rel.end()) {
        rel[pair.first] = base - off;
        frontier.push_back(pair.first);
      }
    }
  }

  std::size_t adjusted = 0;
  std::set<ReplicaId> touched;
  for (auto& ev : events) {
    auto it = rel.find(ev.replica);
    if (it == rel.end() || it->second == 0) continue;
    const std::int64_t t = static_cast<std::int64_t>(ev.t_us) - it->second;
    ev.t_us = t > 0 ? static_cast<std::uint64_t>(t) : 0;
    touched.insert(ev.replica);
  }
  adjusted = touched.size();
  return adjusted;
}

SpanReport analyze_spans(std::vector<SpanEvent> events) {
  SpanReport rep;
  rep.events_total = events.size();

  std::map<std::pair<ReplicaId, ReplicaId>, bool> pairs;
  for (const auto& ev : events) {
    if (ev.stage == SpanStage::kClockOffset) {
      pairs[{ev.replica, static_cast<ReplicaId>(ev.key)}] = true;
    }
  }
  rep.clock_pairs = pairs.size();
  apply_clock_offsets(events);

  struct Encode {
    ReplicaId replica = 0;
    std::uint64_t t = 0;
    std::uint64_t payload_key = 0;
    View view = 0;
    Round round = 0;
  };
  struct Commit {
    std::uint64_t t = 0;
    View view = 0;
    Round round = 0;
    std::uint64_t height = 0;
  };
  std::map<std::uint64_t, Encode> encodes;                       // block key
  std::map<std::uint64_t, std::map<std::pair<ReplicaId, ReplicaId>, std::uint64_t>>
      flushes;                                                   // payload key
  std::map<std::uint64_t, std::map<ReplicaId, std::uint64_t>> reads;     // payload
  std::map<std::uint64_t, std::map<ReplicaId, std::uint64_t>> dequeues;  // payload
  std::map<std::uint64_t, std::map<ReplicaId, std::uint64_t>> dispatches;  // block
  std::map<std::uint64_t, std::map<ReplicaId, std::uint64_t>> votes;       // block
  std::map<std::uint64_t, std::uint64_t> qcs;                              // block
  std::map<std::uint64_t, Commit> commits;                                 // block
  std::map<std::uint64_t, std::uint64_t> confirms;                         // block

  auto keep_min = [](std::map<ReplicaId, std::uint64_t>& m, ReplicaId r,
                     std::uint64_t t) {
    auto [it, fresh] = m.emplace(r, t);
    if (!fresh && t < it->second) it->second = t;
  };

  for (const auto& ev : events) {
    switch (ev.stage) {
      case SpanStage::kProposalEncode: {
        auto [it, fresh] = encodes.emplace(
            ev.key, Encode{ev.replica, ev.t_us, ev.aux, ev.view, ev.round});
        if (!fresh && ev.t_us < it->second.t) {
          it->second = Encode{ev.replica, ev.t_us, ev.aux, ev.view, ev.round};
        }
        break;
      }
      case SpanStage::kSendFlush: {
        auto& m = flushes[ev.key];
        const auto link = std::make_pair(ev.replica, ev.peer);
        auto [it, fresh] = m.emplace(link, ev.t_us);
        if (!fresh && ev.t_us < it->second) it->second = ev.t_us;
        break;
      }
      case SpanStage::kSocketRead:
        keep_min(reads[ev.key], ev.replica, ev.t_us);
        break;
      case SpanStage::kVerifyDequeue:
        keep_min(dequeues[ev.key], ev.replica, ev.t_us);
        break;
      case SpanStage::kDispatch:
        keep_min(dispatches[ev.key], ev.replica, ev.t_us);
        break;
      case SpanStage::kVoteSend:
        keep_min(votes[ev.key], ev.replica, ev.t_us);
        break;
      case SpanStage::kQcFormed: {
        auto [it, fresh] = qcs.emplace(ev.key, ev.t_us);
        if (!fresh && ev.t_us < it->second) it->second = ev.t_us;
        break;
      }
      case SpanStage::kCommit: {
        auto [it, fresh] =
            commits.emplace(ev.key, Commit{ev.t_us, ev.view, ev.round, ev.aux});
        if (!fresh && ev.t_us < it->second.t) {
          it->second = Commit{ev.t_us, ev.view, ev.round, ev.aux};
        }
        break;
      }
      case SpanStage::kClientConfirm: {
        auto [it, fresh] = confirms.emplace(ev.key, ev.t_us);
        if (!fresh && ev.t_us < it->second) it->second = ev.t_us;
        break;
      }
      default:
        break;
    }
  }

  rep.commits_seen = commits.size();

  std::vector<std::uint64_t> stage_samples[2][SpanChain::kMilestones - 1];
  std::vector<std::uint64_t> total_samples[2];
  std::vector<std::uint64_t> confirm_samples;
  double cov_sum = 0;
  double cov_min = 2.0;

  for (const auto& [key, commit] : commits) {
    auto cit = confirms.find(key);
    if (cit != confirms.end() && cit->second >= commit.t) {
      confirm_samples.push_back(cit->second - commit.t);
    }

    auto eit = encodes.find(key);
    if (eit == encodes.end()) continue;
    const Encode& enc = eit->second;
    if (commit.t < enc.t) continue;  // irreparable clock garbage

    SpanChain chain;
    chain.key = key;
    chain.view = commit.view;
    chain.round = commit.round;
    chain.height = commit.height;
    chain.proposer = enc.replica;

    // The critical voter: the latest vote at or before QC formation (the
    // one that completed the quorum); with no QC record, the latest vote.
    const auto qit = qcs.find(key);
    const std::uint64_t t_qc = qit != qcs.end() ? qit->second : 0;
    ReplicaId critical = enc.replica;
    std::uint64_t best_t = 0;
    bool found = false;
    if (auto vit = votes.find(key); vit != votes.end()) {
      for (const auto& [r, t] : vit->second) {
        if (t_qc != 0 && t > t_qc) continue;
        if (!found || t > best_t || (t == best_t && r < critical)) {
          critical = r;
          best_t = t;
          found = true;
        }
      }
      if (!found) {  // every vote is after the QC record; take the earliest
        for (const auto& [r, t] : vit->second) {
          if (!found || t < best_t) {
            critical = r;
            best_t = t;
            found = true;
          }
        }
      }
    }
    chain.critical = critical;

    auto lookup = [](const std::map<std::uint64_t, std::map<ReplicaId, std::uint64_t>>& m,
                     std::uint64_t k, ReplicaId r) -> std::uint64_t {
      auto it = m.find(k);
      if (it == m.end()) return 0;
      auto jt = it->second.find(r);
      return jt == it->second.end() ? 0 : jt->second;
    };

    chain.t[0] = enc.t;
    if (auto fit = flushes.find(enc.payload_key); fit != flushes.end()) {
      auto jt = fit->second.find(std::make_pair(enc.replica, critical));
      if (jt != fit->second.end()) chain.t[1] = jt->second;
    }
    chain.t[2] = lookup(reads, enc.payload_key, critical);
    chain.t[3] = lookup(dequeues, enc.payload_key, critical);
    chain.t[4] = lookup(dispatches, key, critical);
    chain.t[5] = found ? best_t : 0;
    chain.t[6] = t_qc;
    chain.t[7] = commit.t;

    // Telescope: each stage measures from the previous *present* milestone,
    // so the stage sum covers encode -> commit even with gaps. Negative
    // steps (residual skew) clamp to zero but still advance the cursor.
    std::size_t last = 0;
    std::uint64_t sum = 0;
    for (std::size_t j = 1; j < SpanChain::kMilestones; ++j) {
      if (chain.t[j] == 0) continue;
      const std::uint64_t d =
          chain.t[j] >= chain.t[last] ? chain.t[j] - chain.t[last] : 0;
      chain.stage_us[j - 1] = d;
      chain.stage_set[j - 1] = true;
      sum += d;
      last = j;
    }
    chain.total_us = commit.t - enc.t;
    chain.coverage = chain.total_us == 0
                         ? 1.0
                         : static_cast<double>(sum) /
                               static_cast<double>(chain.total_us);

    const int side = chain.height > 0 ? 1 : 0;
    total_samples[side].push_back(chain.total_us);
    for (std::size_t i = 0; i + 1 < SpanChain::kMilestones; ++i) {
      if (chain.stage_set[i]) stage_samples[side][i].push_back(chain.stage_us[i]);
    }
    cov_sum += chain.coverage;
    cov_min = std::min(cov_min, chain.coverage);
    rep.chains.push_back(chain);
  }

  for (std::size_t i = 0; i + 1 < SpanChain::kMilestones; ++i) {
    fill_latency(&rep.stage_steady[i], std::move(stage_samples[0][i]));
    fill_latency(&rep.stage_fallback[i], std::move(stage_samples[1][i]));
  }
  fill_latency(&rep.total_steady, std::move(total_samples[0]));
  fill_latency(&rep.total_fallback, std::move(total_samples[1]));
  fill_latency(&rep.commit_to_confirm, std::move(confirm_samples));
  if (!rep.chains.empty()) {
    rep.coverage_mean = cov_sum / static_cast<double>(rep.chains.size());
    rep.coverage_min = cov_min;
  }
  return rep;
}

std::string SpanReport::summary() const {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof buf,
                "span events: %zu  commits: %zu  chains: %zu  clock pairs: %zu\n",
                events_total, commits_seen, chains.size(), clock_pairs);
  out += buf;
  if (chains.empty()) {
    out += "no critical-path chains (need kProposalEncode + kCommit pairs)\n";
    return out;
  }
  const struct {
    const char* label;
    const LatencyStats* stages;
    const LatencyStats* total;
  } sides[2] = {{"steady", stage_steady, &total_steady},
                {"fallback", stage_fallback, &total_fallback}};
  for (const auto& side : sides) {
    if (side.total->count == 0) continue;
    std::snprintf(buf, sizeof buf, "critical path (%s, n=%" PRIu64 "):\n",
                  side.label, side.total->count);
    out += buf;
    std::snprintf(buf, sizeof buf, "  %-14s %8s %10s %10s %12s\n", "stage", "n",
                  "p50_us", "p99_us", "mean_us");
    out += buf;
    for (std::size_t i = 0; i + 1 < SpanChain::kMilestones; ++i) {
      const LatencyStats& s = side.stages[i];
      if (s.count == 0) continue;
      std::snprintf(buf, sizeof buf,
                    "  %-14s %8" PRIu64 " %10" PRIu64 " %10" PRIu64 " %12.1f\n",
                    kChainStageNames[i], s.count, s.p50_us, s.p99_us, s.mean_us);
      out += buf;
    }
    std::snprintf(buf, sizeof buf,
                  "  %-14s %8" PRIu64 " %10" PRIu64 " %10" PRIu64 " %12.1f\n",
                  "total", side.total->count, side.total->p50_us,
                  side.total->p99_us, side.total->mean_us);
    out += buf;
  }
  std::snprintf(buf, sizeof buf, "coverage: mean=%.3f min=%.3f\n", coverage_mean,
                coverage_min);
  out += buf;
  if (commit_to_confirm.count > 0) {
    std::snprintf(buf, sizeof buf,
                  "commit->confirm: n=%" PRIu64 " mean=%.1fus p50=%" PRIu64
                  "us p99=%" PRIu64 "us\n",
                  commit_to_confirm.count, commit_to_confirm.mean_us,
                  commit_to_confirm.p50_us, commit_to_confirm.p99_us);
    out += buf;
  }
  return out;
}

std::string chrome_trace_json(const SpanReport& report) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& ev) {
    if (!first) out += ',';
    first = false;
    out += '\n';
    out += ev;
  };
  char buf[320];
  for (const auto& chain : report.chains) {
    std::size_t last = 0;
    for (std::size_t j = 1; j < SpanChain::kMilestones; ++j) {
      if (chain.t[j] == 0) continue;
      const std::size_t stage = j - 1;
      // Stages up to the wire hop run at the proposer; receive-side stages
      // at the critical voter; quorum assembly and the commit-rule wait
      // are attributed back to the proposer's lane.
      const ReplicaId tid = (stage >= 2 && stage <= 4) ? chain.critical
                                                       : chain.proposer;
      std::snprintf(buf, sizeof buf,
                    "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%u,"
                    "\"ts\":%" PRIu64 ",\"dur\":%" PRIu64
                    ",\"args\":{\"key\":%" PRIu64 ",\"view\":%" PRIu64
                    ",\"round\":%" PRIu64 ",\"height\":%" PRIu64 "}}",
                    kChainStageNames[stage], tid, chain.t[last],
                    chain.stage_us[stage], chain.key, chain.view, chain.round,
                    chain.height);
      emit(buf);
      last = j;
    }
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"commit\",\"ph\":\"i\",\"pid\":0,\"tid\":%u,"
                  "\"ts\":%" PRIu64 ",\"s\":\"g\",\"args\":{\"key\":%" PRIu64
                  "}}",
                  chain.proposer, chain.t[SpanChain::kMilestones - 1], chain.key);
    emit(buf);
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

}  // namespace repro::obs
