// Runtime metrics: named counters, gauges and log2-bucket latency
// histograms behind one process-wide registry.
//
// Hot-path discipline: a Counter/Gauge/Histogram update is a handful of
// relaxed atomic operations — no locks, no allocation, no branches beyond
// the bucket index. The Registry itself is only locked on registration
// and snapshot, never on update. Counters are therefore safe to bump from
// the simulator's single thread, the TCP node thread and the VerifyPool
// workers alike, and safe to *read* concurrently from an admin thread
// (each read is an independent relaxed load; a snapshot is per-metric
// atomic, not a cross-metric transaction).
//
// Storage can live inside an existing struct (ReplicaStats, NetStats):
// the registry then *attaches* to those counters by pointer instead of
// owning them, so the protocol keeps exactly one copy of every number and
// the exposition layer (Prometheus text, NDJSON snapshots, bench rows)
// reads the same atomics the hot path writes.
#pragma once

#include <atomic>
#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace repro::obs {

/// Guarded quotient for derived means and rates: 0 when the denominator
/// is 0 (benches compute fallback_time/fallbacks_exited, frames/batches,
/// hit rates — all of which legitimately divide by zero on quiet runs).
inline double ratio(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

/// Monotonic counter. Relaxed atomics: increments never synchronize, they
/// only count. Copyable (snapshot semantics) so stats structs holding
/// counters keep working with value copies and `operator-` deltas.
class Counter {
 public:
  constexpr Counter() = default;
  Counter(std::uint64_t v) : v_(v) {}
  Counter(const Counter& o) : v_(o.load()) {}
  Counter& operator=(const Counter& o) {
    store(o.load());
    return *this;
  }
  Counter& operator=(std::uint64_t v) {
    store(v);
    return *this;
  }

  void inc(std::uint64_t d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  Counter& operator++() {
    inc();
    return *this;
  }
  Counter& operator+=(std::uint64_t d) {
    inc(d);
    return *this;
  }

  std::uint64_t load() const { return v_.load(std::memory_order_relaxed); }
  operator std::uint64_t() const { return load(); }

 private:
  void store(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  std::atomic<std::uint64_t> v_{0};
};

/// Settable instantaneous value (queue depths, current view, ...).
class Gauge {
 public:
  void set(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(static_cast<std::uint64_t>(d), std::memory_order_relaxed); }
  std::uint64_t load() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Fixed log2-bucket histogram for microsecond latencies.
///
/// Bucket 0 holds the value 0; bucket i (i >= 1) holds values v with
/// 2^(i-1) <= v < 2^i, i.e. bit_width(v) == i; the last bucket absorbs
/// everything larger. 40 buckets cover [0, 2^39) us ≈ 6.4 days — more
/// than any latency this system can produce. observe() is two relaxed
/// fetch_adds plus one on the bucket.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  static std::size_t bucket_index(std::uint64_t v) {
    if (v == 0) return 0;
    std::size_t bits = 0;
    while (v != 0) {
      v >>= 1;
      ++bits;
    }
    return bits < kBuckets ? bits : kBuckets - 1;
  }

  /// Inclusive upper bound of bucket `i` (the Prometheus `le` boundary);
  /// the last bucket is unbounded (+Inf).
  static std::uint64_t bucket_upper(std::size_t i) {
    return (std::uint64_t{1} << i) - 1;
  }

  void observe(std::uint64_t v) {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Label set rendered as `{k1="v1",k2="v2"}` in Prometheus text and as
/// top-level string fields in NDJSON.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Point-in-time reading of one metric.
struct Sample {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t value = 0;  ///< counter / gauge reading
  // Histogram readings (kind == kHistogram only).
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
};

/// A registry snapshot: per-metric atomic readings taken at one walk.
struct Snapshot {
  std::vector<Sample> samples;

  bool has(const std::string& name) const;
  /// Sum of `value` over every sample with this name (all label sets).
  std::uint64_t value(const std::string& name) const;
  const Sample* find(const std::string& name, const Labels& labels) const;

  /// Prometheus text exposition format (one `# TYPE` line per family).
  std::string prometheus() const;
  /// One flat JSON object per metric per line.
  std::string ndjson() const;
};

/// Named metrics: owned (created through counter()/gauge()/histogram())
/// or attached (storage owned elsewhere, e.g. ReplicaStats fields). The
/// (name, labels) pair identifies a metric; re-registering it replaces
/// the previous registration, which is what a replica restart wants.
class Registry {
 public:
  Counter& counter(const std::string& name, Labels labels = {});
  Gauge& gauge(const std::string& name, Labels labels = {});
  Histogram& histogram(const std::string& name, Labels labels = {});

  /// Attach an externally-owned counter. The storage must outlive the
  /// registry or be replaced (same name + labels) before it dies.
  void attach_counter(const std::string& name, Labels labels, const Counter* c);

  /// Attach a polled gauge. `fn` runs on the snapshotting thread — it
  /// must be safe there (read an atomic, or be called only while the
  /// system is quiescent, as the sim harness does).
  void attach_gauge_fn(const std::string& name, Labels labels,
                       std::function<std::uint64_t()> fn);

  /// Attach an externally-owned histogram (same lifetime contract as
  /// attach_counter: the storage must outlive the registry or be
  /// replaced under the same name + labels before it dies).
  void attach_histogram(const std::string& name, Labels labels, const Histogram* h);

  Snapshot snapshot() const;

 private:
  struct Entry {
    std::string name;
    Labels labels;
    MetricKind kind = MetricKind::kCounter;
    std::unique_ptr<Counter> owned_counter;
    std::unique_ptr<Gauge> owned_gauge;
    std::unique_ptr<Histogram> owned_hist;
    const Counter* ext_counter = nullptr;
    const Histogram* ext_hist = nullptr;
    std::function<std::uint64_t()> gauge_fn;
  };

  Entry& upsert(const std::string& name, Labels labels, MetricKind kind);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace repro::obs
