// Commit-lifecycle spans: cross-replica causal attribution of where a
// committed block's microseconds went.
//
// Every lifecycle milestone — batch announce, proposal encode, send-queue
// flush, socket read, verify-pool dequeue, handler dispatch, vote send,
// QC formation, commit, client confirm — is recorded as a SpanEvent keyed
// by a 64-bit correlation key (block-id prefix for protocol milestones,
// a cheap payload content hash for transport milestones, bridged by the
// kProposalEncode record which carries both). No wire-format change:
// both sides derive the key from bytes they already hold.
//
// The hot path is a lock-free multi-writer ring of seqlock-style slots
// (all-atomic words, relaxed stores; TSan-clean). Capacity 0 disables
// everything — call sites keep unconditional span() calls, and spans-off
// seeded sim runs stay byte-identical to the seed traces (the span stream
// is fully separate from the TraceRing NDJSON the determinism pins hash).
//
// analyze_spans() stitches the events into one critical-path chain per
// committed block: proposer encode -> flush to the *critical* voter (the
// last vote that made the QC) -> that voter's read/verify/dispatch/vote
// -> QC -> commit, telescoping so the stage sum accounts for the whole
// encode->commit interval even when individual milestones are missing.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/types.h"
#include "obs/trace.h"

namespace repro::obs {

enum class SpanStage : std::uint8_t {
  kBatchAnnounce = 0,  ///< key = batch-id prefix, aux = batch bytes
  kProposalEncode,     ///< key = block-id prefix, aux = payload span key (the bridge)
  kSendFlush,          ///< key = payload span key, peer = dest, aux = queue-wait us
  kSocketRead,         ///< key = payload span key, peer = source, aux = frame bytes
  kVerifyDequeue,      ///< key = payload span key, aux = verify-pool wait us
  kDispatch,           ///< key = block-id prefix (proposal entered the handler)
  kVoteSend,           ///< key = block-id prefix, aux = fallback height
  kQcFormed,           ///< key = block-id prefix, aux = fallback height
  kCommit,             ///< key = block-id prefix, aux = fallback height
  kClientConfirm,      ///< key = block-id prefix, aux = client confirm latency us
  kClockOffset,        ///< key = peer id, aux = bit-cast int64 offset us (peer-local)
};
inline constexpr std::size_t kSpanStageCount = 11;

/// Stable wire name for a span stage (NDJSON `stage` field).
const char* span_stage_name(SpanStage s);
/// Inverse of span_stage_name(); returns false if the name is unknown.
bool span_stage_from_name(const std::string& name, SpanStage* out);

/// "No peer" marker. Peer ids are packed into 24 bits (committees top out
/// at n=300), so the all-ones pattern is reserved.
inline constexpr ReplicaId kSpanNoPeer = 0xFFFFFFu;

struct SpanEvent {
  SpanStage stage = SpanStage::kBatchAnnounce;
  ReplicaId replica = 0;
  ReplicaId peer = kSpanNoPeer;  ///< transport spans: the other endpoint
  std::uint64_t t_us = 0;        ///< sim time, or CLOCK_REALTIME us in wall mode
  std::uint64_t key = 0;         ///< correlation key (see SpanStage docs)
  View view = 0;
  Round round = 0;
  std::uint64_t aux = 0;

  bool operator==(const SpanEvent& o) const {
    return stage == o.stage && replica == o.replica && peer == o.peer &&
           t_us == o.t_us && key == o.key && view == o.view &&
           round == o.round && aux == o.aux;
  }
};

/// Cheap 64-bit content key correlating transport spans with the
/// kProposalEncode bridge record: FNV-1a over the first 96 payload bytes
/// mixed with the length. Deliberately not cryptographic — it runs on the
/// inline delivery path under the <5% overhead gate, and a collision
/// merely mislabels one span.
std::uint64_t span_key_of(const std::uint8_t* data, std::size_t size);
inline std::uint64_t span_key_of(BytesView v) { return span_key_of(v.data(), v.size()); }

/// Lock-free bounded span log shared by every writer thread in a process
/// (node threads, verify-pool drain, client swarm). Each slot is a
/// seqlock: writers claim a ticket with one relaxed fetch_add, invalidate
/// the slot, store the packed payload words relaxed, then publish the
/// sequence with a release store. Readers validate the sequence before
/// and after copying and drop torn slots. Capacity 0 disables recording
/// entirely (push returns before touching any atomic but the flag).
class SpanRing {
 public:
  /// `capacity` is rounded up to a power of two; 0 disables. `wall_clock`
  /// stamps t_us from CLOCK_REALTIME on push — real-time runs only; sim
  /// runs pass virtual time explicitly for determinism.
  explicit SpanRing(std::size_t capacity, bool wall_clock = false);

  bool enabled() const { return capacity_ != 0; }
  bool wall_clock() const { return wall_clock_; }

  void push(SpanEvent ev);

  /// Oldest-first snapshot of retained events. Concurrent writers may tear
  /// or overwrite slots mid-read; such slots are skipped, never misread.
  std::vector<SpanEvent> events() const;

  std::uint64_t recorded() const;  ///< total pushes, including overwritten
  std::uint64_t dropped() const;   ///< pushes that evicted an older event
  std::size_t capacity() const { return capacity_; }

  /// The up-front memory commitment (feeds the memory-budget gauges).
  std::size_t approx_bytes() const { return sizeof(SpanRing) + capacity_ * sizeof(Slot); }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  ///< ticket+1 when words are valid
    std::atomic<std::uint64_t> w[5] = {};
  };

  std::size_t capacity_ = 0;  ///< power of two (or 0 = disabled)
  std::uint64_t mask_ = 0;
  bool wall_clock_ = false;
  std::atomic<std::uint64_t> head_{0};
  std::unique_ptr<Slot[]> slots_;
};

/// Serialize span events as NDJSON, one object per line, stable key order:
/// {"stage":...,"replica":...,"t_us":...,"key":...[,"view":...][,"round":...]
///  [,"aux":...][,"peer":...]} — optional fields omitted when zero (peer:
/// when kSpanNoPeer), so identical seeded runs emit identical bytes.
std::string spans_to_ndjson(const std::vector<SpanEvent>& events);

/// Parse NDJSON produced by spans_to_ndjson. Lines without a `stage` field
/// (trace events, meta lines, blanks) are skipped silently; lines that
/// claim to be spans but fail to parse are counted in `bad_lines`.
std::vector<SpanEvent> parse_spans_ndjson(const std::string& text,
                                          std::size_t* bad_lines = nullptr);

/// Sort a combined multi-replica span stream into one deterministic
/// timeline ordered by (t_us, replica, stage, key).
void sort_spans(std::vector<SpanEvent>& events);

/// Map every event's t_us into the reference clock of the lowest replica
/// id present, using the kClockOffset measurements in the stream (each
/// records, at `replica`, the estimated offset of `key`-identified peer's
/// clock relative to its own; the last estimate per pair wins — senders
/// only publish min-RTT-improved samples). Events from replicas with no
/// offset path to the reference are left unadjusted. Returns the number
/// of replicas adjusted.
std::size_t apply_clock_offsets(std::vector<SpanEvent>& events);

/// One committed block's critical path. Milestone timestamps are 0 when
/// the corresponding span was not captured; stages between two present
/// milestones telescope so the stage sum always spans encode -> commit.
struct SpanChain {
  std::uint64_t key = 0;  ///< block-id prefix
  View view = 0;
  Round round = 0;
  std::uint64_t height = 0;  ///< 0 steady, >0 fallback
  ReplicaId proposer = 0;
  ReplicaId critical = 0;  ///< the voter whose vote completed the QC

  /// Milestones, reference-clock us: encode, flush, read, dequeue,
  /// dispatch, vote, qc, commit (0 = not captured; [0] and [7] always set).
  static constexpr std::size_t kMilestones = 8;
  std::uint64_t t[kMilestones] = {};

  /// Stage durations between consecutive *present* milestones; stage i
  /// ends at milestone i+1. A stage whose start milestone is missing is
  /// folded into the next present one; negative clock skews clamp to 0.
  std::uint64_t stage_us[kMilestones - 1] = {};
  bool stage_set[kMilestones - 1] = {};

  std::uint64_t total_us = 0;  ///< t[7] - t[0]
  double coverage = 0;         ///< sum(stage_us) / total_us (1.0 when monotone)
};

/// Human-readable stage name for SpanChain::stage_us index (0..6).
const char* span_chain_stage_name(std::size_t i);

struct SpanReport {
  std::size_t events_total = 0;
  std::uint64_t dropped = 0;      ///< ring evictions summed over the input
  std::size_t commits_seen = 0;   ///< distinct committed block keys
  std::vector<SpanChain> chains;  ///< commits with a matching encode record

  LatencyStats stage_steady[SpanChain::kMilestones - 1];
  LatencyStats stage_fallback[SpanChain::kMilestones - 1];
  LatencyStats total_steady;
  LatencyStats total_fallback;
  LatencyStats commit_to_confirm;  ///< kCommit -> first kClientConfirm per block

  double coverage_mean = 0;
  double coverage_min = 0;
  std::size_t clock_pairs = 0;  ///< (replica, peer) offset pairs applied

  std::string summary() const;  ///< per-stage p50/p99 table, steady vs fallback
};

/// Stitch a span stream (any order; clock offsets applied internally)
/// into per-commit critical-path chains.
SpanReport analyze_spans(std::vector<SpanEvent> events);

/// Perfetto/chrome://tracing JSON: one duration event per critical-path
/// stage per commit (pid = 0, tid = the replica executing the stage) plus
/// instant events for QC formation and commit.
std::string chrome_trace_json(const SpanReport& report);

}  // namespace repro::obs
