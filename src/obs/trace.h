// Structured consensus traces: a bounded per-replica event ring plus
// NDJSON import/export and a cross-replica timeline analyzer.
//
// Event kinds follow the protocol's observable milestones (the paper's
// Figure 2 steady-state steps and Figure 4 fallback steps): proposals,
// votes, the four certificate types (QC / TC / f-TC / coin-QC), fallback
// entry/exit, f-block certification, chain adoption, leader election and
// block commit. Each event carries the sim timestamp and, in real-time
// runs, a wall-clock timestamp; the wall clock is deliberately *omitted*
// from NDJSON when zero so that two identical seeded sim runs emit
// byte-identical traces (the determinism pin in tests/test_obs.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"

namespace repro::obs {

enum class EventKind : std::uint8_t {
  kViewEntered = 0,
  kProposalSent,
  kProposalReceived,
  kVoteSent,
  kQcFormed,
  kTcFormed,
  kFtcFormed,
  kCoinQcFormed,
  kFallbackEntered,
  kFallbackExited,
  kFBlockCertified,
  kChainAdopted,
  kLeaderElected,
  kBlockCommitted,
  kBatchAnnounced,  ///< out-of-band batch pre-broadcast sent (aux = bytes)
  kBatchResolved,   ///< a batch-reference block's payload resolved locally
};

/// Stable wire name for an event kind (used in NDJSON `ev` field).
const char* event_name(EventKind k);
/// Inverse of event_name(); returns false if the name is unknown.
bool event_from_name(const std::string& name, EventKind* out);

struct TraceEvent {
  EventKind kind = EventKind::kViewEntered;
  ReplicaId replica = 0;
  SimTime t_us = 0;           ///< simulator (or executor) virtual time
  std::uint64_t wall_us = 0;  ///< CLOCK_REALTIME us; 0 in sim runs
  View view = 0;
  Round round = 0;
  std::uint64_t height = 0;   ///< fallback chain rank; 0 for steady-state
  std::uint64_t aux = 0;      ///< kind-specific payload (reason, leader, block hash)

  bool operator==(const TraceEvent& o) const {
    return kind == o.kind && replica == o.replica && t_us == o.t_us &&
           wall_us == o.wall_us && view == o.view && round == o.round &&
           height == o.height && aux == o.aux;
  }
};

/// Fallback-entry reasons carried in TraceEvent::aux for kFallbackEntered.
enum : std::uint64_t {
  kFallbackReasonFtc = 1,     ///< f-TC formed after timeouts (Figure 4 trigger)
  kFallbackReasonAlways = 2,  ///< always-fallback configuration (ACE/VABA mode)
};

/// Bounded event log. One ring per replica: the hot path appends under a
/// cheap uncontended mutex (sim runs are single-threaded; TCP runs append
/// from the node thread only), readers snapshot via events(). When full,
/// the oldest events are overwritten and `dropped` counts the loss.
class TraceRing {
 public:
  /// `capacity` of 0 disables recording entirely (every push is a no-op),
  /// letting call sites keep unconditional trace calls. `wall_clock`
  /// stamps wall_us from CLOCK_REALTIME — real-time runs only.
  explicit TraceRing(std::size_t capacity, bool wall_clock = false);

  void push(TraceEvent ev);
  bool enabled() const { return capacity_ != 0; }

  /// Oldest-first copy of the retained events.
  std::vector<TraceEvent> events() const;
  std::uint64_t recorded() const;  ///< total pushes, including overwritten
  std::uint64_t dropped() const;   ///< pushes that evicted an older event

  /// Bytes reserved by the ring (capacity is preallocated up front, so
  /// this is the commitment, not the fill level). Feeds the
  /// repro_trace_ring_bytes gauge and the n=300 memory budget.
  std::size_t approx_bytes() const { return sizeof(TraceRing) + capacity_ * sizeof(TraceEvent); }

 private:
  const std::size_t capacity_;
  const bool wall_clock_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;  ///< write cursor once the ring is full
  std::uint64_t recorded_ = 0;
};

/// Serialize events as NDJSON, one object per line, stable key order:
/// {"ev":...,"replica":...,"t_us":...,["wall_us":...,]"view":...,
///  "round":...,"height":...,"aux":...}
/// wall_us is omitted when 0 (sim runs), keeping traces deterministic.
std::string to_ndjson(const std::vector<TraceEvent>& events);

/// Parse NDJSON produced by to_ndjson (tolerates unknown keys and blank
/// lines; unknown `ev` names or malformed lines are skipped and counted).
/// Span lines ("stage" field) and ring-health meta lines ("trace_meta")
/// from mixed streams are skipped silently, not counted as bad.
std::vector<TraceEvent> parse_ndjson(const std::string& text,
                                     std::size_t* bad_lines = nullptr);

/// Ring-health side channel: admin endpoints and forensics bundles append
/// one meta line per ring so downstream analyzers can tell a complete
/// window from one the ring overwrote. Never emitted by the seeded-sim
/// artifact writers (the determinism pins hash those streams).
struct TraceMeta {
  ReplicaId replica = 0;
  std::uint64_t dropped = 0;
  std::uint64_t recorded = 0;
};

/// {"trace_meta":1,"replica":R,"dropped":D,"recorded":N}\n
std::string trace_meta_line(const TraceMeta& meta);

/// Parses a single line; returns false unless it is a meta line.
bool parse_trace_meta_line(const std::string& line, TraceMeta* out);

/// Merge per-replica event streams into one global timeline ordered by
/// (t_us, replica, arrival index) — deterministic for identical inputs.
std::vector<TraceEvent> merge_traces(
    const std::vector<std::vector<TraceEvent>>& per_replica);

struct LatencyStats {
  std::uint64_t count = 0;
  double mean_us = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
};

/// What tracecat reports: commit latency split by path, and the fallback
/// win rate measured against the paper's Lemma 7 bound of 2/3.
struct TraceReport {
  std::uint64_t events_total = 0;
  std::uint64_t counts[16] = {};  ///< indexed by EventKind

  /// Per-commit latency: earliest kProposalSent for the (view,round,height)
  /// coordinate to the first kBlockCommitted on any replica.
  LatencyStats steady;    ///< height == 0 commits
  LatencyStats fallback;  ///< height > 0 commits (certified f-blocks)

  std::uint64_t fallbacks_entered = 0;  ///< distinct views with kFallbackEntered
  std::uint64_t fallbacks_won = 0;      ///< of those, views that committed an f-block
  double win_rate = 0;                  ///< fallbacks_won / fallbacks_entered
  static constexpr double kPaperBound = 2.0 / 3.0;  ///< Lemma 7

  LatencyStats fallback_duration;  ///< kFallbackEntered -> kFallbackExited per view

  std::string summary() const;  ///< human-readable multi-line report
};

/// Analyze a merged timeline (see merge_traces).
TraceReport analyze_trace(const std::vector<TraceEvent>& merged);

}  // namespace repro::obs
