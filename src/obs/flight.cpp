#include "obs/flight.h"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>

namespace repro::obs {
namespace {

bool write_file(const std::filesystem::path& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  return static_cast<bool>(out);
}

}  // namespace

FlightRecorder::FlightRecorder(std::string dir, Sources sources)
    : dir_(std::move(dir)), sources_(std::move(sources)) {}

std::string FlightRecorder::dump(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t seq = seq_++;

  char name[128];
  std::snprintf(name, sizeof name, "%s-%" PRIu64, reason.c_str(), seq);
  const std::filesystem::path bundle = std::filesystem::path(dir_) / name;
  std::error_code ec;
  std::filesystem::create_directories(bundle, ec);
  if (ec) return "";

  std::string manifest = "{\"reason\":\"" + reason + "\",\"seq\":";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, seq);
  manifest += buf;
  if (sources_.manifest_extra) manifest += sources_.manifest_extra();
  manifest += "}\n";
  if (!write_file(bundle / "manifest.json", manifest)) return "";

  if (sources_.traces) {
    if (!write_file(bundle / "trace.ndjson", sources_.traces())) return "";
  }
  if (sources_.spans) {
    if (!write_file(bundle / "spans.ndjson", sources_.spans())) return "";
  }
  if (sources_.metrics) {
    if (!write_file(bundle / "metrics.ndjson", sources_.metrics())) return "";
  }
  return bundle.string();
}

std::uint64_t FlightRecorder::dumps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

}  // namespace repro::obs
