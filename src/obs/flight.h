// Flight recorder: on invariant violation, commit-stall watchdog expiry,
// or an admin `GET /dump`, snapshot the last-N trace/span window plus a
// metrics dump into a forensics bundle directory:
//
//   <dir>/<reason>-<seq>/
//     manifest.json    {"reason":...,"seq":...,...extra fields}
//     trace.ndjson     TraceRing snapshot (with a trailing meta line)
//     spans.ndjson     SpanRing snapshot (with a trailing meta line)
//     metrics.ndjson   Registry snapshot
//
// Sources are pull-style closures so the recorder stays decoupled from
// Experiment vs bftnode wiring; any absent source simply skips its file.
// Bundle names use a monotonic sequence number, never wall time, so
// seeded-sim repro bundles are deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

namespace repro::obs {

class FlightRecorder {
 public:
  struct Sources {
    std::function<std::string()> traces;          ///< trace NDJSON (or empty)
    std::function<std::string()> spans;           ///< span NDJSON (or empty)
    std::function<std::string()> metrics;         ///< metrics NDJSON (or empty)
    std::function<std::string()> manifest_extra;  ///< extra manifest JSON
                                                  ///< fields, ",\"k\":v" form
  };

  FlightRecorder(std::string dir, Sources sources);

  /// Write a bundle. `reason` becomes part of the directory name (keep it
  /// to [a-z0-9_-]). Returns the bundle path, or "" on filesystem failure.
  /// Thread-safe; concurrent dumps serialize and get distinct sequence
  /// numbers.
  std::string dump(const std::string& reason);

  std::uint64_t dumps() const;  ///< bundles written so far

 private:
  const std::string dir_;
  Sources sources_;
  mutable std::mutex mu_;
  std::uint64_t seq_ = 0;
};

}  // namespace repro::obs
