// Deterministic discrete-event simulation core.
//
// Every run of an experiment is a pure function of (config, seed): the
// event queue orders by (virtual time, insertion sequence), so ties are
// resolved deterministically, and nothing in the stack reads wall-clock
// time. Replicas, timers and the network all schedule through this one
// queue.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/assert.h"
#include "common/types.h"
#include "sim/executor.h"

namespace repro::sim {

class Simulation final : public IExecutor {
 public:
  using Callback = std::function<void()>;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const override { return now_; }

  /// Schedule a callback at absolute virtual time `t` (>= now).
  EventId schedule_at(SimTime t, Callback cb) override;

  /// Cancel a pending event. Cancelling an already-fired or unknown id is
  /// a no-op (timers race with their own firing in protocol code).
  void cancel(EventId id) override;

  /// Run the next pending event. Returns false if the queue is empty.
  bool step();

  /// Run all events with time <= deadline; afterwards now() == deadline
  /// (even if the queue drained early). Returns events executed.
  std::size_t run_until(SimTime deadline);

  /// Run until the queue drains or `max_events` executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  bool idle() const { return queue_.size() == cancelled_.size(); }
  std::size_t pending() const { return queue_.size() - cancelled_.size(); }
  std::uint64_t events_executed() const { return executed_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    EventId id;

    bool operator>(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  bool fire_next();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
  std::unordered_map<EventId, Callback> callbacks_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace repro::sim
