// Executor abstraction: the protocol code's only notion of time.
//
// Replicas schedule timers and read a clock through this interface. The
// discrete-event Simulation implements it for deterministic experiments;
// transport/realtime.h implements it over the monotonic wall clock so the
// very same replica code runs in a real deployment (see transport/).
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.h"

namespace repro::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class IExecutor {
 public:
  virtual ~IExecutor() = default;

  /// Current time in microseconds (virtual or monotonic wall clock).
  virtual SimTime now() const = 0;

  /// Schedule a callback at absolute time `t` (>= now). Returns an id
  /// usable with cancel().
  virtual EventId schedule_at(SimTime t, std::function<void()> cb) = 0;

  /// Cancel a pending event; no-op for fired/unknown ids.
  virtual void cancel(EventId id) = 0;

  EventId schedule_after(SimTime delay, std::function<void()> cb) {
    return schedule_at(now() + delay, std::move(cb));
  }
};

}  // namespace repro::sim
