#include "sim/simulation.h"

namespace repro::sim {

EventId Simulation::schedule_at(SimTime t, Callback cb) {
  REPRO_ASSERT_MSG(t >= now_, "cannot schedule into the past");
  const std::uint64_t seq = next_seq_++;
  const EventId id = seq;  // seq doubles as the id (unique, nonzero)
  queue_.push(Entry{t, seq, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

void Simulation::cancel(EventId id) {
  if (callbacks_.find(id) == callbacks_.end()) return;
  cancelled_.insert(id);
}

bool Simulation::fire_next() {
  while (!queue_.empty()) {
    const Entry e = queue_.top();
    queue_.pop();
    auto cancelled_it = cancelled_.find(e.id);
    if (cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      callbacks_.erase(e.id);
      continue;
    }
    auto cb_it = callbacks_.find(e.id);
    REPRO_ASSERT(cb_it != callbacks_.end());
    Callback cb = std::move(cb_it->second);
    callbacks_.erase(cb_it);
    now_ = e.time;
    ++executed_;
    cb();
    return true;
  }
  return false;
}

bool Simulation::step() { return fire_next(); }

std::size_t Simulation::run_until(SimTime deadline) {
  std::size_t count = 0;
  while (!queue_.empty()) {
    // Skip over cancelled heads without advancing time.
    const Entry e = queue_.top();
    if (cancelled_.count(e.id) != 0) {
      queue_.pop();
      cancelled_.erase(e.id);
      callbacks_.erase(e.id);
      continue;
    }
    if (e.time > deadline) break;
    if (fire_next()) ++count;
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

std::size_t Simulation::run(std::size_t max_events) {
  std::size_t count = 0;
  while (count < max_events && fire_next()) ++count;
  return count;
}

}  // namespace repro::sim
