// Client layer: the part of BFT SMR the paper omits "for brevity".
//
// A swarm of simulated clients submits transactions to the replicas,
// retries on timeout, and confirms a transaction once f+1 distinct
// replicas acknowledge it as committed — f+1 matching answers are the
// classic BFT client rule (at least one is honest). The swarm measures
// the client-perceived metrics a deployment cares about: end-to-end
// confirm latency and goodput, including through asynchronous periods.
//
// Transport: client<->replica RPC is simulated with its own delay
// sampling and byte accounting, deliberately separate from the replica
// Network so the protocol's communication-complexity measurements (which
// the literature counts among replicas only) stay undistorted.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/codec.h"
#include "common/rng.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "harness/experiment.h"

namespace repro::client {

using TxnId = crypto::Digest;

struct TxnIdHash {
  std::size_t operator()(const TxnId& id) const {
    return static_cast<std::size_t>(crypto::digest_prefix_u64(id));
  }
};

struct ClientConfig {
  std::uint32_t num_clients = 8;
  std::size_t txn_bytes = 64;        ///< payload per transaction
  SimTime submit_interval = 50'000;  ///< per-client think time between txns
  SimTime retry_timeout = 2'000'000; ///< resend to the next replica after this
  std::size_t max_batch_txns = 64;   ///< txns a proposer drains per block
  SimTime rpc_min_delay = 1'000;     ///< client<->replica link delay bounds
  SimTime rpc_max_delay = 20'000;
};

struct ClientStats {
  std::uint64_t submitted = 0;
  std::uint64_t confirmed = 0;
  std::uint64_t retries = 0;
  std::uint64_t rpc_messages = 0;
  std::uint64_t rpc_bytes = 0;
  /// Acks whose Merkle inclusion proof failed verification (0 unless a
  /// test injects corrupted acks).
  std::uint64_t bad_proofs = 0;
  std::vector<SimTime> confirm_latencies_us;
};

/// Shared submission pools: the bridge between clients and proposers.
/// Create it first, point ExperimentConfig::payload_factory at
/// make_payload_factory(), construct the Experiment, then attach the
/// swarm.
class TxnPools {
 public:
  explicit TxnPools(std::uint32_t n, std::size_t max_batch_txns)
      : queues_(n), max_batch_(max_batch_txns) {}

  /// Enqueue a transaction at one replica's pool.
  void submit(ReplicaId to, const TxnId& id, BytesView payload);

  /// Proposer-side: drain up to max_batch txns into a block payload.
  /// Encoding: u32 count, then per txn (32-byte id, length-prefixed body).
  Bytes next_batch(ReplicaId proposer);

  /// Decode the txn ids inside a committed block payload.
  static std::vector<TxnId> decode_txn_ids(BytesView payload);

  /// Decode the raw txn payloads of a batch (Merkle leaves).
  static std::vector<Bytes> decode_txn_payloads(BytesView payload);

 private:
  struct Pending {
    TxnId id;
    Bytes payload;
  };
  std::vector<std::deque<Pending>> queues_;
  std::size_t max_batch_;
};

class ClientSwarm {
 public:
  /// Wires the swarm: registers commit callbacks on every replica and
  /// schedules each client's first submission at start().
  ClientSwarm(harness::Experiment& exp, std::shared_ptr<TxnPools> pools, ClientConfig cfg,
              std::uint64_t seed);

  /// Begin submitting (call after Experiment::start()).
  void start();

  const ClientStats& stats() const { return stats_; }

  /// Transactions submitted but not yet confirmed.
  std::size_t in_flight() const { return in_flight_.size(); }

 private:
  struct InFlight {
    std::uint32_t client = 0;
    SimTime submitted_at = 0;
    Bytes payload;
    std::set<ReplicaId> acks;        ///< replicas that reported commit
    ReplicaId next_target = 0;       ///< retry destination
    std::uint64_t retry_epoch = 0;   ///< invalidates stale retry timers
  };

  void client_tick(std::uint32_t client);
  void submit_txn(std::uint32_t client);
  void send_to_replica(const TxnId& id, ReplicaId target);
  void arm_retry(const TxnId& id);
  void on_commit(ReplicaId replica, const smr::Block& block);
  /// An ack carries the batch's Merkle root and an inclusion proof; the
  /// client verifies the proof against its own copy of the transaction
  /// before counting the ack toward the f+1 quorum. `block_key` is the
  /// digest prefix of the committing block, threaded through so the
  /// confirm span joins the block's commit-lifecycle chain.
  void deliver_ack(ReplicaId replica, const TxnId& id, std::uint64_t block_key,
                   const crypto::Digest& root, const crypto::MerkleProof& proof);
  SimTime rpc_delay();

  harness::Experiment& exp_;
  std::shared_ptr<TxnPools> pools_;
  ClientConfig cfg_;
  Rng rng_;
  ClientStats stats_;
  std::unordered_map<TxnId, InFlight, TxnIdHash> in_flight_;
  std::uint64_t txn_seq_ = 0;
};

}  // namespace repro::client
