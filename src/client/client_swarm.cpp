#include "client/client_swarm.h"

#include "common/assert.h"

namespace repro::client {

// ---- TxnPools --------------------------------------------------------------

void TxnPools::submit(ReplicaId to, const TxnId& id, BytesView payload) {
  REPRO_ASSERT(to < queues_.size());
  // Dedup within the pool (a retry may land at a replica already holding
  // the txn).
  for (const auto& p : queues_[to]) {
    if (p.id == id) return;
  }
  queues_[to].push_back(Pending{id, Bytes(payload.begin(), payload.end())});
}

Bytes TxnPools::next_batch(ReplicaId proposer) {
  REPRO_ASSERT(proposer < queues_.size());
  auto& q = queues_[proposer];
  const std::size_t count = std::min(max_batch_, q.size());
  Encoder enc;
  enc.u32(static_cast<std::uint32_t>(count));
  for (std::size_t i = 0; i < count; ++i) {
    const Pending& p = q.front();
    enc.raw(BytesView(p.id.data(), p.id.size()));
    enc.bytes(p.payload);
    q.pop_front();
  }
  return std::move(enc).result();
}

std::vector<TxnId> TxnPools::decode_txn_ids(BytesView payload) {
  std::vector<TxnId> ids;
  Decoder dec(payload);
  auto count = dec.u32();
  if (!count) return ids;
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto raw = dec.raw(32);
    auto body = dec.bytes();
    if (!raw || !body) return ids;
    TxnId id;
    std::copy(raw->begin(), raw->end(), id.begin());
    ids.push_back(id);
  }
  return ids;
}

std::vector<Bytes> TxnPools::decode_txn_payloads(BytesView payload) {
  std::vector<Bytes> out;
  Decoder dec(payload);
  auto count = dec.u32();
  if (!count) return out;
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto raw = dec.raw(32);
    auto body = dec.bytes();
    if (!raw || !body) return out;
    out.push_back(std::move(*body));
  }
  return out;
}

// ---- ClientSwarm -----------------------------------------------------------

ClientSwarm::ClientSwarm(harness::Experiment& exp, std::shared_ptr<TxnPools> pools,
                         ClientConfig cfg, std::uint64_t seed)
    : exp_(exp), pools_(std::move(pools)), cfg_(cfg), rng_(seed) {
  for (ReplicaId id = 0; id < exp_.n(); ++id) {
    exp_.replica(id).ledger().set_commit_callback(
        [this, id](const smr::Block& block, SimTime) { on_commit(id, block); });
  }
}

void ClientSwarm::start() {
  for (std::uint32_t c = 0; c < cfg_.num_clients; ++c) {
    exp_.sim().schedule_after(rng_.uniform_range(0, cfg_.submit_interval),
                              [this, c] { client_tick(c); });
  }
}

SimTime ClientSwarm::rpc_delay() {
  return rng_.uniform_range(cfg_.rpc_min_delay, cfg_.rpc_max_delay);
}

void ClientSwarm::client_tick(std::uint32_t client) {
  submit_txn(client);
  exp_.sim().schedule_after(cfg_.submit_interval, [this, client] { client_tick(client); });
}

void ClientSwarm::submit_txn(std::uint32_t client) {
  // Deterministic unique payload per txn.
  Encoder enc;
  enc.u32(client);
  enc.u64(txn_seq_++);
  while (enc.size() < cfg_.txn_bytes) enc.u64(rng_.next());
  Bytes payload = std::move(enc).result();
  payload.resize(cfg_.txn_bytes);
  const TxnId id = crypto::sha256_tagged("repro/txn", payload);

  InFlight fl;
  fl.client = client;
  fl.submitted_at = exp_.sim().now();
  fl.payload = payload;
  fl.next_target = static_cast<ReplicaId>((client + txn_seq_) % exp_.n());
  in_flight_.emplace(id, std::move(fl));
  ++stats_.submitted;

  send_to_replica(id, in_flight_[id].next_target);
  arm_retry(id);
}

void ClientSwarm::send_to_replica(const TxnId& id, ReplicaId target) {
  auto it = in_flight_.find(id);
  if (it == in_flight_.end()) return;
  ++stats_.rpc_messages;
  stats_.rpc_bytes += it->second.payload.size() + 32;
  const Bytes payload = it->second.payload;
  exp_.sim().schedule_after(rpc_delay(), [this, id, target, payload] {
    pools_->submit(target, id, payload);
  });
}

void ClientSwarm::arm_retry(const TxnId& id) {
  auto it = in_flight_.find(id);
  if (it == in_flight_.end()) return;
  const std::uint64_t epoch = it->second.retry_epoch;
  exp_.sim().schedule_after(cfg_.retry_timeout, [this, id, epoch] {
    auto it2 = in_flight_.find(id);
    if (it2 == in_flight_.end() || it2->second.retry_epoch != epoch) return;
    // Unconfirmed: resend to the next replica (covers a crashed or slow
    // target; eventually an honest proposer includes the txn).
    ++stats_.retries;
    ++it2->second.retry_epoch;
    it2->second.next_target = static_cast<ReplicaId>((it2->second.next_target + 1) % exp_.n());
    send_to_replica(id, it2->second.next_target);
    arm_retry(id);
  });
}

void ClientSwarm::on_commit(ReplicaId replica, const smr::Block& block) {
  const std::vector<TxnId> ids = TxnPools::decode_txn_ids(block.txns());
  if (ids.empty()) return;
  // The replica commits to the batch with a Merkle tree and attaches an
  // inclusion proof to each acknowledgment.
  const crypto::MerkleTree tree(TxnPools::decode_txn_payloads(block.txns()));
  const std::uint64_t block_key = crypto::digest_prefix_u64(block.id);
  for (std::uint32_t i = 0; i < ids.size(); ++i) {
    const TxnId id = ids[i];
    const crypto::Digest root = tree.root();
    const crypto::MerkleProof proof = tree.prove(i);
    ++stats_.rpc_messages;
    // ack: txn id + root + proof (index + 33 bytes/step).
    stats_.rpc_bytes += 32 + 32 + 8 + proof.steps.size() * 33;
    exp_.sim().schedule_after(rpc_delay(), [this, replica, id, block_key, root, proof] {
      deliver_ack(replica, id, block_key, root, proof);
    });
  }
}

void ClientSwarm::deliver_ack(ReplicaId replica, const TxnId& id, std::uint64_t block_key,
                              const crypto::Digest& root, const crypto::MerkleProof& proof) {
  auto it = in_flight_.find(id);
  if (it == in_flight_.end()) return;
  if (!crypto::MerkleTree::verify(root, it->second.payload, proof)) {
    ++stats_.bad_proofs;  // a lying replica cannot contribute to the quorum
    return;
  }
  it->second.acks.insert(replica);
  const std::uint32_t needed = QuorumParams::for_n(exp_.n()).coin_quorum();  // f + 1
  if (it->second.acks.size() < needed) return;
  const SimTime latency = exp_.sim().now() - it->second.submitted_at;
  stats_.confirm_latencies_us.push_back(latency);
  ++stats_.confirmed;
  if (const auto& spans = exp_.spans(); spans && spans->enabled()) {
    // Chain tail: the f+1'th ack closes the loop the client opened at
    // submit. Keyed by the committing block so analyze_spans can extend
    // that block's chain to client-perceived latency.
    obs::SpanEvent ev;
    ev.stage = obs::SpanStage::kClientConfirm;
    ev.replica = replica;
    ev.t_us = exp_.sim().now();
    ev.key = block_key;
    ev.aux = latency;
    spans->push(ev);
  }
  in_flight_.erase(it);
}

}  // namespace repro::client
