// DiemBFT baseline (paper Figure 1): chained HotStuff steady state with
// the quadratic round-synchronizing Pacemaker.
//
// Linear cost per decision under synchrony with honest leaders; quadratic
// timeout cost per round otherwise; **no liveness under asynchrony** —
// rounds churn forever without commits (the paper's motivating weakness,
// demonstrated by bench_table1 and bench_liveness_timeline).
#pragma once

#include <optional>
#include <tuple>

#include "core/replica_base.h"

namespace repro::core {

class DiemBftReplica final : public ReplicaBase {
 public:
  explicit DiemBftReplica(const ReplicaContext& ctx) : ReplicaBase(ctx) {
    votes_.set_max_entries(512);          // flood backstop; see DESIGN.md §13.4
    timeout_shares_.set_max_entries(64);  // honest load: one round in flight
  }

  void start() override;
  bool in_fallback() const override { return false; }

  /// Quorum-assembly footprint (the repro_share_pool_bytes gauge).
  std::size_t share_pool_bytes() const override {
    return votes_.approx_bytes() + timeout_shares_.approx_bytes() + lagrange_bytes();
  }

 protected:
  std::uint32_t commit_len() const override { return 3; }
  void handle_message(ReplicaId from, smr::Message&& msg) override;
  void on_batch_resolved(const smr::Block& block, ReplicaId from) override;

  void on_fault_changed(const FaultSpec& old) override {
    if (halted()) return;
    // Spam edge: start the flood loop (it self-terminates on clear).
    // Un-crash edge: the round timer was never armed (or swallowed by the
    // crashed() guard), so re-arm and resume proposing.
    if (!old.spams_timeouts() && fault().spams_timeouts()) spam_timeouts();
    if (old.crashed() && !fault().crashed()) {
      arm_timer();
      maybe_propose();
    }
  }

  void encode_extra_state(Encoder& enc) const override { enc.u64(last_proposed_round_); }
  bool restore_extra_state(Decoder& dec) override {
    auto last = dec.u64();
    if (!last) return false;
    last_proposed_round_ = *last;
    return true;
  }

 private:
  /// Fig 1 Lock: Advance Round, 2-chain lock, qc_high update, Commit.
  void lock_step(const smr::Certificate& qc, ReplicaId hint);

  /// Fig 1 Advance Round via a round-(r-1) QC or TC.
  void advance_to(Round round, const std::optional<smr::TimeoutCert>& tc);

  void maybe_propose();
  void arm_timer();
  void on_timer_fired(Round round);
  void spam_timeouts();

  void handle_proposal(ReplicaId from, smr::ProposalMsg&& msg);
  /// The vote rule on a stored block; also the retry point for votes
  /// deferred on an unresolved batch reference.
  void try_vote(const smr::Block& block);
  void handle_vote(ReplicaId from, const smr::VoteMsg& msg);
  void handle_timeout(ReplicaId from, const smr::DiemTimeoutMsg& msg);
  void handle_tc(const smr::TimeoutCert& tc);

  sim::EventId timer_ = sim::kInvalidEvent;
  bool timed_out_cur_round_ = false;
  std::uint32_t consecutive_timeouts_ = 0;
  Round last_proposed_round_ = 0;
  /// TC that justified entering the current round (attached to our
  /// proposal so lagging replicas can advance).
  std::optional<smr::TimeoutCert> entry_tc_;

  // Share accumulators (combine-then-verify; see smr/share_accumulator.h).
  // Pool keys cover every field of the signing message, so one accumulator
  // never mixes shares of different messages.
  smr::SharePool<std::tuple<smr::BlockId, Round>> votes_;  ///< collected as L_{r+1}
  smr::SharePool<Round> timeout_shares_;
  Round highest_tc_formed_ = 0;  ///< don't re-form TCs for old rounds
};

}  // namespace repro::core
