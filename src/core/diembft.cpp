#include "core/diembft.h"

#include "common/log.h"

namespace repro::core {

void DiemBftReplica::start() {
  if (fault().crashed()) return;
  recover_from_wal();
  resume_batch_recovery();  // re-pull batches in flight at crash time
  // Initial state per Fig 1: r_vote = 0, rank_lock = (0,0), r_cur = 1,
  // qc_high = genesis QC; enter round 1.
  arm_timer();
  maybe_propose();
  if (fault().spams_timeouts()) spam_timeouts();
}

void DiemBftReplica::spam_timeouts() {
  // The loop dies when the fault is cleared or flipped mid-run
  // (set_fault); on_fault_changed restarts it on a fresh spam edge.
  if (halted() || !fault().spams_timeouts()) return;
  smr::DiemTimeoutMsg msg;
  msg.round = r_cur_;
  msg.round_share = maybe_corrupt(
      crypto_sys().quorum_sigs.sign_share(id(), smr::tc_signing_message(r_cur_)));
  msg.qc_high = qc_high();
  multicast(std::move(msg));
  sim().schedule_after(config().base_timeout_us / 2, [this] { spam_timeouts(); });
}

void DiemBftReplica::handle_message(ReplicaId from, smr::Message&& msg) {
  if (auto* p = std::get_if<smr::ProposalMsg>(&msg)) {
    handle_proposal(from, std::move(*p));
  } else if (auto* v = std::get_if<smr::VoteMsg>(&msg)) {
    handle_vote(from, *v);
  } else if (auto* t = std::get_if<smr::DiemTimeoutMsg>(&msg)) {
    handle_timeout(from, *t);
  } else if (auto* tc = std::get_if<smr::DiemTcMsg>(&msg)) {
    if (cached_verify(tc->tc)) handle_tc(tc->tc);
  }
  // Fallback-protocol message types are ignored by the baseline.
}

void DiemBftReplica::lock_step(const smr::Certificate& qc, ReplicaId hint) {
  // 2-chain lock on the parent's rank; qc_high <- max. These run before
  // Advance Round: entering a new round can make us propose, and the
  // proposal must extend the *updated* qc_high.
  lock_parent_rank(qc, hint);
  update_qc_high(qc);
  // Advance Round: a round-(r-1) QC lets us enter round r.
  advance_to(qc.round + 1, std::nullopt);
  // Commit (3-chain) scan.
  note_certificate(qc, hint);
}

void DiemBftReplica::advance_to(Round round, const std::optional<smr::TimeoutCert>& tc) {
  if (round <= r_cur_) return;
  r_cur_ = round;
  timed_out_cur_round_ = false;
  entry_tc_ = tc;
  if (r_cur_ % 64 == 0) {
    // Bound memory on long runs: shares for long-past rounds are dead.
    const Round floor = r_cur_ > 64 ? r_cur_ - 64 : 0;
    votes_.erase_if([floor](const std::tuple<smr::BlockId, Round>& key) {
      return std::get<1>(key) < floor;
    });
    timeout_shares_.erase_if([floor](Round r) { return r < floor; });
  }
  if (tc) {
    // "Upon entering round r, the replica sends the round-(r-1) tc to L_r."
    send(leader_of(round), smr::DiemTcMsg{*tc});
  } else {
    consecutive_timeouts_ = 0;  // progress via QC
  }
  arm_timer();
  maybe_propose();
}

void DiemBftReplica::maybe_propose() {
  if (leader_of(r_cur_) != id()) return;
  if (last_proposed_round_ >= r_cur_) return;
  if (fault().mute()) return;
  last_proposed_round_ = r_cur_;
  persist_vote_state();  // durable before the proposal leaves

  if (fault().equivocates()) {
    // Conflicting blocks for the same round, sent to disjoint halves.
    smr::Block a = smr::Block::make(qc_high(), r_cur_, 0, 0, id(), next_payload());
    smr::Block b = smr::Block::make(qc_high(), r_cur_, 0, 0, id(), next_payload());
    store_block(a, id());
    note_block_born(a.id);
    note_block_born(b.id);
    for (ReplicaId to = 0; to < params().n; ++to) {
      smr::ProposalMsg msg;
      msg.block = (to % 2 == 0) ? a : b;
      msg.tc = entry_tc_;
      send(to, std::move(msg));
    }
    ++stats_.proposals_sent;
    trace(obs::EventKind::kProposalSent, 0, r_cur_);
    return;
  }

  // Pipelined payload (DESIGN.md §12): pre-announced batch or a fresh one.
  PayloadChoice pc = take_payload();
  smr::Block block = smr::Block::make(qc_high(), r_cur_, /*view=*/0, /*height=*/0, id(),
                                      std::move(pc.payload), pc.kind);
  store_block(block, id());
  note_block_born(block.id);
  smr::ProposalMsg msg;
  msg.block = std::move(block);
  msg.tc = entry_tc_;
  ++stats_.proposals_sent;
  trace(obs::EventKind::kProposalSent, 0, r_cur_);
  multicast(std::move(msg));
}

void DiemBftReplica::arm_timer() {
  if (timer_ != sim::kInvalidEvent) sim().cancel(timer_);
  const std::uint64_t factor =
      std::min<std::uint64_t>(1 + consecutive_timeouts_, config().max_timeout_factor);
  const Round round = r_cur_;
  timer_ = sim().schedule_after(config().base_timeout_us * factor,
                                [this, round] { on_timer_fired(round); });
}

void DiemBftReplica::on_timer_fired(Round round) {
  // Dead instance, (dynamically) crashed replica, or stale timer.
  if (halted() || fault().crashed() || round != r_cur_) return;
  timer_ = sim::kInvalidEvent;
  // "Upon the timer T_r expires, the replica stops voting for round r and
  // multicasts a timeout message <{r}_i, qc_high>_i."
  timed_out_cur_round_ = true;
  ++consecutive_timeouts_;
  ++stats_.timeouts_sent;
  smr::DiemTimeoutMsg msg;
  msg.round = r_cur_;
  msg.round_share = maybe_corrupt(
      crypto_sys().quorum_sigs.sign_share(id(), smr::tc_signing_message(r_cur_)));
  msg.qc_high = qc_high();
  multicast(std::move(msg));
}

void DiemBftReplica::handle_proposal(ReplicaId from, smr::ProposalMsg&& msg) {
  smr::Block& block = msg.block;
  // Validity: well-formed regular block from the designated leader.
  if (!block.id_consistent() || block.height != 0 || block.view != 0) return;
  if (block.proposer != from || leader_of(block.round) != from) return;
  if (!cached_verify(block.parent)) return;
  if (msg.tc && cached_verify(*msg.tc)) handle_tc(*msg.tc);

  const smr::Certificate parent = block.parent;
  const Round r = block.round;
  const smr::BlockId id_of_block = block.id;
  maybe_forge_ghost_chain(block);  // kGhostChain only; no-op when honest
  // This block passed proposal authentication (signed envelope from the
  // round's leader): it — and only it — may earn this round's vote, even
  // when the vote is deferred until its batch resolves.
  note_vote_candidate(block);
  store_block(std::move(block), from);
  trace(obs::EventKind::kProposalReceived, 0, r, 0, from);

  // "Upon receiving the first valid proposal from L_r, execute Lock."
  lock_step(parent, from);

  if (const smr::Block* stored = store().get(id_of_block)) try_vote(*stored);
}

void DiemBftReplica::try_vote(const smr::Block& block) {
  // Vote rule: r == r_cur, v == v_cur, r > r_vote, qc.rank >= rank_lock
  // (and we have not timed out this round).
  const Round r = block.round;
  if (block.height != 0 || block.view != 0) return;
  if (r != r_cur_ || r <= r_vote_ || timed_out_cur_round_) return;
  // Proposal authentication: blocks that entered the store via catch-up
  // (BlockResponseMsg) never passed handle_proposal's leader check, and
  // the deferred retry below must not vote on them.
  if (block.proposer != leader_of(r)) return;
  if (!config().unsafe_trust_catchup_blocks && !vote_candidate(block)) return;
  if (block.parent.rank(false) < rank_lock()) return;
  // Batch-reference blocks: defer the vote until the payload resolves
  // (store_block started the pull); on_batch_resolved retries this rule.
  if (!block.payload_resolved()) return;
  if (!externally_valid(block.txns())) return;
  if (fault().withholds_votes()) return;

  r_vote_ = r;
  persist_vote_state();  // durable before the vote leaves
  ++stats_.votes_sent;
  trace(obs::EventKind::kVoteSent, 0, r);
  smr::VoteMsg vote;
  vote.block_id = block.id;
  vote.round = r;
  vote.view = 0;
  vote.share = maybe_corrupt(crypto_sys().quorum_sigs.sign_share(
      id(), smr::cert_signing_message(smr::CertKind::kQuorum, block.id, r, 0, 0, 0)));
  send(leader_of(r + 1), std::move(vote));

  // Pipelining: round r's QC is forming at L_{r+1}; announce our next
  // batch now if that is us.
  maybe_announce_batch(r + 1);
}

void DiemBftReplica::on_batch_resolved(const smr::Block& block, ReplicaId) {
  try_vote(block);
}

void DiemBftReplica::handle_vote(ReplicaId from, const smr::VoteMsg& msg) {
  if (msg.view != 0) return;
  const auto key = std::make_tuple(msg.block_id, msg.round);
  auto sig = add_share(votes_, key, from, msg.share, crypto_sys().quorum_sigs, [&] {
    return smr::cert_signing_message(smr::CertKind::kQuorum, msg.block_id, msg.round, 0, 0, 0);
  });
  if (!sig) return;

  smr::Certificate qc;
  qc.kind = smr::CertKind::kQuorum;
  qc.block_id = msg.block_id;
  qc.round = msg.round;
  qc.sig = *sig;
  note_verified(qc);  // the accumulator verified the combined signature
  trace(obs::EventKind::kQcFormed, 0, msg.round);
  span(obs::SpanStage::kQcFormed, crypto::digest_prefix_u64(msg.block_id), 0,
       msg.round);
  lock_step(qc, from);
}

void DiemBftReplica::handle_timeout(ReplicaId from, const smr::DiemTimeoutMsg& msg) {
  // Catch up on the attached qc_high first (kind-check is free and skips
  // the hash/verify work for non-QC certificates entirely); the QC stands
  // on its own verification regardless of the share's validity.
  if (msg.qc_high.kind == smr::CertKind::kQuorum && cached_verify(msg.qc_high)) {
    lock_step(msg.qc_high, from);
  }

  if (msg.round <= highest_tc_formed_) return;
  auto sig = add_share(timeout_shares_, msg.round, from, msg.round_share,
                       crypto_sys().quorum_sigs,
                       [&] { return smr::tc_signing_message(msg.round); });
  if (!sig) return;
  const smr::TimeoutCert tc{msg.round, *sig};
  note_verified(tc);  // the accumulator verified the combined signature
  trace(obs::EventKind::kTcFormed, 0, msg.round);
  highest_tc_formed_ = msg.round;
  handle_tc(tc);
}

void DiemBftReplica::handle_tc(const smr::TimeoutCert& tc) {
  advance_to(tc.round + 1, tc);
}

}  // namespace repro::core
