// Shared machinery for all protocol variants: block store and ledger,
// endorsement-aware ranking, Lock-step helpers, the commit-rule scanner
// (parameterized by commit chain length), block retrieval, and message
// signing/dispatch. Protocol-specific logic lives in the subclasses.
#pragma once

#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/replica.h"
#include "smr/batch.h"
#include "smr/block_store.h"
#include "smr/ledger.h"
#include "smr/mempool.h"
#include "smr/messages.h"
#include "smr/share_accumulator.h"

namespace repro::core {

/// Accumulates threshold-signature shares per key, deduplicating signers.
/// Callers verify shares *before* adding.
template <typename Key>
class SigPool {
 public:
  /// Returns the number of distinct signers for `key` after the insert.
  std::size_t add(const Key& key, const crypto::PartialSig& share) {
    auto& m = pool_[key];
    m.emplace(share.signer, share);
    return m.size();
  }

  std::size_t count(const Key& key) const {
    auto it = pool_.find(key);
    return it == pool_.end() ? 0 : it->second.size();
  }

  std::vector<crypto::PartialSig> shares(const Key& key) const {
    std::vector<crypto::PartialSig> out;
    auto it = pool_.find(key);
    if (it == pool_.end()) return out;
    out.reserve(it->second.size());
    for (const auto& [signer, share] : it->second) out.push_back(share);
    return out;
  }

  void clear() { pool_.clear(); }

  /// Drop entries whose key matches `pred` (periodic pruning of stale
  /// rounds/views keeps long-running replicas at bounded memory).
  template <typename Pred>
  void erase_if(Pred pred) {
    for (auto it = pool_.begin(); it != pool_.end();) {
      it = pred(it->first) ? pool_.erase(it) : std::next(it);
    }
  }

  std::size_t size() const { return pool_.size(); }

 private:
  std::map<Key, std::map<ReplicaId, crypto::PartialSig>> pool_;
};

class ReplicaBase : public IReplica {
 public:
  explicit ReplicaBase(const ReplicaContext& ctx);

  // IReplica ----------------------------------------------------------
  void on_message(ReplicaId from, const Bytes& payload) final;
  void on_message_keyed(ReplicaId from, const Bytes& payload,
                        const crypto::Digest& key) final;
  void on_message_uncached(ReplicaId from, const Bytes& payload) final;
  void halt() final { halted_ = true; }
  ReplicaId id() const final { return id_; }
  const smr::Ledger& ledger() const final { return ledger_; }
  smr::Ledger& ledger() final { return ledger_; }
  Round current_round() const final { return r_cur_; }
  View current_view() const final { return v_cur_; }
  const ReplicaStats& stats() const final { return stats_; }
  void set_fault(const FaultSpec& fault) final {
    const FaultSpec old = cfg_.fault;
    cfg_.fault = fault;
    on_fault_changed(old);
  }

  // Extra introspection used by tests / harness.
  const smr::BlockStore& store() const { return store_; }
  const smr::Certificate& qc_high() const { return qc_high_; }
  smr::Rank rank_lock() const { return rank_lock_; }
  Round r_vote() const { return r_vote_; }
  /// Coin-QCs this replica has learned (view -> coin).
  const std::map<View, smr::CoinQC>& coins() const { return coins_; }
  /// Whether construction restored a WAL snapshot.
  bool recovered() const { return recovered_; }
  bool halted() const { return halted_; }
  /// Verified-certificate cache occupancy (tests pin its bound).
  std::size_t cert_cache_size() const { return vcache_.size(); }
  std::size_t cert_cache_capacity() const { return vcache_.capacity(); }
  /// The decode-once cache this replica delivers through (harness-shared
  /// in simulations, private otherwise).
  const smr::DecodeCache& decode_cache() const { return *dcache_; }

  /// The content-addressed batch cache (pipelined proposal path).
  const smr::BatchStore& batch_store() const { return batch_store_; }

  /// Batch references with stored ref blocks still awaiting their batch
  /// (tests pin that recovery re-issues pulls for exactly these).
  std::vector<smr::BatchId> unresolved_batch_refs() const {
    std::vector<smr::BatchId> out;
    out.reserve(waiting_batch_.size());
    for (const auto& [ref, blocks] : waiting_batch_) out.push_back(ref);
    return out;
  }

  /// Per-sender blame counters for relayed certificates that failed
  /// verification (forged f-QC / coin-QC advertisements) — public so
  /// tests and operators can attribute the flood to the misbehaving
  /// replica. Indexed by sender id; may be shorter than n.
  const std::vector<std::uint64_t>& cert_blame() const { return cert_blame_; }

  /// Model client ingress for adaptive batch sizing: `bytes` of
  /// transactions queued at this replica's mempool (benches / harness
  /// drive this; without calls the backlog stays 0 and adaptive sizing
  /// keeps batches at the base size).
  void offer_transactions(std::size_t bytes) { mempool_.offer(bytes); }

  /// Footprint of the Lagrange-coefficient memo (lazy, LRU-bounded).
  /// Protocol subclasses fold this into share_pool_bytes() so the gauge
  /// covers all quorum-assembly state (DESIGN.md §13.4).
  std::size_t lagrange_bytes() const { return lagrange_.approx_bytes(); }

 protected:
  /// Commit-rule chain length: 3 for the paper's base protocols, 2 for
  /// the Figure-4 variant.
  virtual std::uint32_t commit_len() const = 0;

  /// Dispatch a decoded, signature-verified message.
  virtual void handle_message(ReplicaId from, smr::Message&& msg) = 0;

  /// Hook invoked whenever a previously missing block body arrives
  /// (via proposal or fetch); subclasses retry deferred decisions.
  virtual void on_block_stored(const smr::Block& block, ReplicaId from);

  /// Hook invoked after set_fault replaced the FaultSpec (`old` is the
  /// previous one). Runs on the replica's own state only; subclasses
  /// handle edge transitions (kick the timeout-spam loop, re-arm the
  /// round timer after an un-crash). Default: nothing.
  virtual void on_fault_changed(const FaultSpec& old) { (void)old; }

  /// Hook invoked when a stored batch-reference block's payload resolves
  /// *after* the block arrived (the referenced batch came in later via
  /// announcement or pull). Subclasses retry the vote they deferred;
  /// their steady-state vote rule re-checks round/view freshness, so a
  /// late resolution simply yields no vote. Default: nothing.
  virtual void on_batch_resolved(const smr::Block& block, ReplicaId from) {
    (void)block;
    (void)from;
  }

  // Messaging ----------------------------------------------------------
  // Sign, serialize exactly once into a refcounted buffer, and hand the
  // buffer to the network. The sender pre-populates the decode cache with
  // the decoded form (keyed by the payload hash), so its own loopback
  // delivery — and, with the harness-shared cache, every simulated
  // recipient — skips the redundant parse.
  void send(ReplicaId to, smr::Message msg);
  void multicast(smr::Message msg);

  // Cached certificate verification --------------------------------------
  // Equivalent to the free verify_* functions but routed through the
  // replica's verified-certificate cache: each distinct certificate pays
  // the full threshold verification once; repeats (the fallback floods n
  // copies of every QC/f-TC/coin-QC) are digest lookups. Successful
  // verifications and self-combined certificates populate the cache;
  // failures are never cached. Counters land in stats().cert_verify_*.
  bool cached_verify(const smr::Certificate& cert);
  bool cached_verify(const smr::TimeoutCert& tc);
  bool cached_verify(const smr::FallbackTC& ftc);
  bool cached_verify(const smr::CoinQC& qc);

  /// Insert a certificate we built ourselves from verified shares.
  template <typename Cert>
  void note_verified(const Cert& cert) {
    smr::note_verified(vcache_, cert);
  }

  // Optimistic quorum assembly ------------------------------------------
  // Feed one share into a SharePool under this replica's share
  // environment (scheme, Lagrange-coefficient memo, counters, lazy/eager
  // mode) and sync the counters into stats(). Returns the combined
  // signature exactly once, on the add that completes the quorum.
  //
  // `from` is the envelope-authenticated sender of the message carrying
  // the share. Shares are first-person (every protocol sends only shares
  // it signed itself; certificates, not shares, are what gets relayed),
  // so a share claiming a different signer is a forgery attempt and is
  // dropped before it reaches the pool: admitting it would let a
  // Byzantine sender occupy honest signers' slots — their genuine shares
  // would then bounce as duplicates, and the accumulator's ban-on-invalid
  // eviction would ban the *honest* ids per target, wedging the quorum
  // forever (a liveness break). With the binding enforced, bans are
  // always attributable to the authenticated misbehaving replica.
  template <typename Key, typename MakeMsg>
  std::optional<crypto::ThresholdSig> add_share(smr::SharePool<Key>& pool, const Key& key,
                                                ReplicaId from, const crypto::PartialSig& share,
                                                const crypto::ThresholdScheme& scheme,
                                                MakeMsg&& make_msg) {
    std::optional<crypto::ThresholdSig> sig;
    if (share.signer == from) {
      const smr::ShareEnv env{&scheme, &lagrange_, &share_stats_, cfg_.lazy_share_verify};
      sig = pool.add(env, key, share, std::forward<MakeMsg>(make_msg));
    } else {
      ++share_stats_.bad_shares_rejected;
      share_stats_.blame_signer(from);
    }
    stats_.shares_verified = share_stats_.shares_verified;
    stats_.shares_deferred = share_stats_.shares_deferred;
    stats_.combines_optimistic = share_stats_.combines_optimistic;
    stats_.combine_fallbacks = share_stats_.combine_fallbacks;
    stats_.bad_shares_rejected = share_stats_.bad_shares_rejected;
    return sig;
  }

  /// Per-signer blame counters for rejected shares (flood diagnosis).
  const std::vector<std::uint64_t>& share_blame() const { return share_stats_.blame; }

  /// Charge `from` for a relayed certificate that failed cached_verify
  /// (forged f-QC / coin-QC advertisement). Senders are envelope-
  /// authenticated, so the blame is attributable.
  void blame_cert(ReplicaId from) {
    if (cert_blame_.size() <= from) cert_blame_.resize(from + 1, 0);
    ++cert_blame_[from];
    ++stats_.bad_certs_rejected;
  }

  /// Fault injection for kBadShares: corrupt every share this replica
  /// emits (flip the low bit of the field value — always invalid, since
  /// the correct value is unique). kImpersonateShares additionally claims
  /// the next replica's signer id on the garbage share, attacking the
  /// signer/sender binding that add_share enforces.
  crypto::PartialSig maybe_corrupt(crypto::PartialSig share) const {
    if (cfg_.fault.sends_bad_shares()) share.value ^= 1;
    if (cfg_.fault.impersonates_shares()) {
      share.signer = (share.signer + 1) % params_.n;
      share.value ^= 1;
    }
    return share;
  }

  // Ranking / endorsement ----------------------------------------------
  /// An f-QC is endorsed iff we know a coin-QC of its view electing its
  /// proposer (paper §3 "Endorsed Fallback-QC").
  bool is_endorsed(const smr::Certificate& cert) const;
  smr::Rank rank_of(const smr::Certificate& cert) const {
    return cert.rank(is_endorsed(cert));
  }
  /// A certificate "counts" for the commit rule: a regular QC or an
  /// endorsed f-QC.
  bool counts_for_commit(const smr::Certificate& cert) const;

  /// Install a coin-QC (must be pre-verified). Re-scans certificates of
  /// that view for newly committable chains. Returns true if new.
  bool install_coin(const smr::CoinQC& coin);
  const smr::CoinQC* coin_for(View view) const;

  // Certificates / commit ------------------------------------------------
  /// Record a certificate (pre-verified) and run the commit scanner from
  /// it. `hint` is who showed it to us (fetch target for missing bodies).
  void note_certificate(const smr::Certificate& cert, ReplicaId hint);

  /// qc_high <- max(qc_high, qc) by endorsement-aware rank.
  void update_qc_high(const smr::Certificate& qc);

  /// 2-chain lock rule (Figures 1/2): rank_lock <- max(rank_lock,
  /// parent(qc).rank). Needs the certified block's body; defers and
  /// fetches if missing.
  void lock_parent_rank(const smr::Certificate& qc, ReplicaId hint);

  /// 1-chain lock rule (Figure 4): rank_lock <- max(rank_lock, qc.rank).
  void lock_direct_rank(const smr::Certificate& qc);

  // Blocks ---------------------------------------------------------------
  /// True if the body is present; otherwise requests it from `hint` and
  /// returns false.
  bool ensure_block(const smr::BlockId& id, ReplicaId hint);

  /// Validates id-consistency and stores; triggers deferred work.
  /// Returns the stored block or nullptr if invalid.
  const smr::Block* store_block(smr::Block block, ReplicaId from);

  // Environment ----------------------------------------------------------
  sim::IExecutor& sim() { return *sim_; }
  net::INetwork& net() { return *net_; }
  const crypto::CryptoSystem& crypto_sys() const { return *crypto_; }
  const QuorumParams& params() const { return params_; }
  const ProtocolConfig& config() const { return cfg_; }
  Rng& rng() { return rng_; }
  smr::Mempool& mempool() { return mempool_; }

  ReplicaId leader_of(Round round) const {
    return round_leader(round, params_.n, cfg_.leader_rotation);
  }

  const FaultSpec& fault() const { return cfg_.fault; }

  /// Report block creation to the harness (latency measurements).
  void note_block_born(const smr::BlockId& id) {
    if (on_block_born_) on_block_born_(id, sim_->now());
  }

  // Observability ---------------------------------------------------------
  /// Record a structured trace event at the current sim time. Free (one
  /// branch) when no trace ring is installed.
  void trace(obs::EventKind kind, View view, Round round,
             std::uint64_t height = 0, std::uint64_t aux = 0) {
    if (trace_ && trace_->enabled()) {
      trace_->push({kind, id_, sim_->now(), 0, view, round, height, aux});
    }
  }

  /// Record a commit-lifecycle span milestone at the current sim time.
  /// Free (one branch) when no span ring is installed; in wall-clock
  /// rings the push overrides t_us with CLOCK_REALTIME itself.
  void span(obs::SpanStage stage, std::uint64_t key, View view = 0,
            Round round = 0, std::uint64_t aux = 0) {
    if (spans_ && spans_->enabled()) {
      obs::SpanEvent ev;
      ev.stage = stage;
      ev.replica = id_;
      ev.t_us = sim_->now();
      ev.key = key;
      ev.view = view;
      ev.round = round;
      ev.aux = aux;
      spans_->push(ev);
    }
  }

  /// True when span recording is live (gates work done only to feed spans,
  /// e.g. hashing an encoded payload for the transport-correlation key).
  bool spans_on() const { return spans_ && spans_->enabled(); }

  /// Fallback-duration histogram installed by the harness (may be null).
  obs::Histogram* fallback_duration_hist() { return fallback_duration_hist_; }

  /// Transaction batch for the next proposed block: the application's
  /// payload source if one is installed, else the synthetic mempool. The
  /// kInvalidTxns fault corrupts the batch (0xFF prefix) so external
  /// validity rejections can be exercised.
  Bytes next_payload() {
    Bytes batch =
        payload_source_ ? payload_source_() : mempool_.next_batch(adaptive_batch_target());
    if (cfg_.fault.proposes_invalid_txns()) {
      batch.insert(batch.begin(), 0xFF);
    }
    return batch;
  }

  /// Paper §2 external validity: "adding validity checks on the
  /// transactions before the replicas proposing or voting".
  bool externally_valid(BytesView payload) const {
    return !cfg_.external_validator || cfg_.external_validator(payload);
  }

  // Pipelined proposal path (DESIGN.md §12) -------------------------------
  /// Whether a payload of `size` bytes ships as a 32-byte batch reference
  /// (the digest only pays off once the payload outweighs it).
  bool use_batch_ref(std::size_t size) const {
    return cfg_.batch_refs && size > cfg_.batch_ref_min_bytes;
  }

  /// Adaptive batch-size target (inert unless batch_bytes_max is set):
  /// grows with mempool backlog, shrinks with rounds in flight beyond the
  /// committed tip. next_payload() seals at this size, so every proposal
  /// path — pre-announced batches, inline blocks, fallback blocks — is
  /// governed by the same policy.
  std::size_t adaptive_batch_target() {
    if (cfg_.batch_bytes_max <= cfg_.batch_bytes) return cfg_.batch_bytes;
    const Round tip = ledger_.records().empty() ? 0 : ledger_.records().back().round;
    const std::uint64_t in_flight = r_cur_ > tip ? r_cur_ - tip : 0;
    return mempool_.adaptive_target(cfg_.batch_bytes_max, in_flight);
  }

  // Deferred-vote authentication gate ------------------------------------
  // Blocks reach the store through several paths — verified proposals,
  // catch-up BlockResponseMsg, equivocation halves — but only the block
  // carried by a signature-verified ProposalMsg from the round's leader
  // may ever earn a vote. The vote rules re-check this when the deferred
  // batch-resolution retry fires, so a Byzantine peer cannot inject an
  // id-consistent ref block via catch-up, supply its batch, and harvest a
  // vote for a block the leader never proposed.
  /// Record the block of a proposal that passed authentication (called by
  /// handle_proposal after its validity checks). Only the newest matters:
  /// votes are only ever cast for the current round.
  void note_vote_candidate(const smr::Block& block) {
    vote_candidate_round_ = block.round;
    vote_candidate_id_ = block.id;
  }
  /// True iff `block` is the block the latest verified proposal carried.
  bool vote_candidate(const smr::Block& block) const {
    return vote_candidate_round_ == block.round && vote_candidate_id_ == block.id;
  }

  /// Out-of-band pre-broadcast: if this replica leads `round` and has no
  /// batch pending, seal the next mempool batch now and (when it is big
  /// enough to reference) announce it to all replicas — while the QC the
  /// actual proposal waits for is still forming. Subclasses call this the
  /// moment they learn they lead an upcoming round.
  void maybe_announce_batch(Round round);

  /// The payload for the block this replica is about to propose: consumes
  /// the pre-announced batch if one is pending, else seals (and, for
  /// referenced batches, announces) a fresh one. Either way the j-th call
  /// consumes the j-th mempool batch, so inline and reference modes order
  /// identical transaction streams.
  struct PayloadChoice {
    Bytes payload;
    std::uint8_t kind = smr::kInlinePayload;
  };
  PayloadChoice take_payload();

  /// kGhostChain behaviour: on each authenticated proposal for round r,
  /// multicast a fabricated three-block ancestor chain for r through the
  /// catch-up channel (BlockResponseMsg) — forged embedded parent
  /// certificates, the tip a batch-reference block whose batch is also
  /// shipped. Harmless against the deferred-vote gate; a safety attack
  /// when unsafe_trust_catchup_blocks re-opens the PR 7 hole. Called by
  /// the protocols' handle_proposal (no-op unless the fault is active).
  void maybe_forge_ghost_chain(const smr::Block& real);

  // Durability ------------------------------------------------------------
  /// Append a full vote-state snapshot to the WAL (no-op without one).
  /// Called by the protocol immediately *before* any message that the
  /// state change guards (votes, proposals) goes out.
  void persist_vote_state();

  /// Re-issue block fetches and batch pulls for the batch references the
  /// restored WAL snapshot recorded as unresolved at crash time. Without
  /// this a block whose batch was in flight at the crash leaves the
  /// restarted replica unable to vote until an unrelated pull fires.
  /// Called from the protocols' start() (the network must be up).
  void resume_batch_recovery();

  /// Protocol-specific state appended to / restored from each snapshot.
  virtual void encode_extra_state(Encoder& enc) const { (void)enc; }
  virtual bool restore_extra_state(Decoder& dec) { (void)dec; return true; }

  /// Restore the last snapshot, if any. Subclass constructors call this
  /// (after their own members exist, so the virtual restore dispatches).
  /// Returns true if a snapshot was restored.
  bool recover_from_wal();

  // Mutable protocol state shared by all variants -------------------------
  Round r_vote_ = 0;                ///< highest voted round
  smr::Rank rank_lock_{};           ///< highest locked rank
  Round r_cur_ = 1;                 ///< current round
  View v_cur_ = 0;                  ///< current view
  smr::Certificate qc_high_;        ///< highest known QC (genesis initially)
  smr::BlockStore store_;
  smr::Ledger ledger_;
  ReplicaStats stats_;

 private:
  /// Post-decode delivery tail shared by every receive path: centralized
  /// block retrieval + batch dissemination, then the protocol's
  /// handle_message.
  void deliver(ReplicaId from, smr::Message&& msg);
  void try_commit_from(const smr::Certificate& cert, ReplicaId hint);
  void defer_commit(const smr::BlockId& missing, const smr::Certificate& cert);
  void retry_deferred(const smr::BlockId& id, ReplicaId from);

  // Batch resolution / recovery (pipelined proposal path) -----------------
  /// Attach the referenced batch to a freshly stored ref block, or
  /// register it as waiting and start pulling. Called from store_block.
  void try_resolve_block(const smr::BlockId& id, ReplicaId hint);
  /// File received batch bytes under their own hash, then resolve every
  /// block and commit waiting on them. Announcements, pushes and our own
  /// seals all funnel here.
  void accept_batch(Bytes data, ReplicaId from);
  /// Begin (or restart, after an exhausted retry budget) pulling `ref`.
  void start_batch_pull(const smr::BatchId& ref, ReplicaId hint);
  void send_batch_pull(const smr::BatchId& ref);
  void on_batch_pull_timer(const smr::BatchId& ref);
  /// Pull-response amplification guard: true if a push of `ref` to `peer`
  /// is allowed now (and records it); false within the cooldown window.
  bool allow_batch_push(ReplicaId peer, const smr::BatchId& ref);
  /// Drop batch waiters that can no longer matter (blocks at or below the
  /// committed tip are on dead forks and are never voted on again), so
  /// Byzantine ref blocks with bogus digests cannot grow the maps across
  /// rounds. Runs after every successful commit.
  void prune_batch_waiters();

  sim::IExecutor* sim_;
  net::INetwork* net_;
  std::shared_ptr<const crypto::CryptoSystem> crypto_;
  QuorumParams params_;
  ReplicaId id_;
  ProtocolConfig cfg_;
  Rng rng_;
  smr::Mempool mempool_;
  std::function<void(const smr::BlockId&, SimTime)> on_block_born_;
  std::function<Bytes()> payload_source_;
  std::shared_ptr<obs::TraceRing> trace_;
  std::shared_ptr<obs::SpanRing> spans_;
  std::function<void(const smr::CommitRecord&)> on_commit_;
  obs::Histogram* fallback_duration_hist_ = nullptr;
  storage::Wal* wal_ = nullptr;
  bool recovered_ = false;
  bool halted_ = false;
  crypto::VerifierCache vcache_;
  std::shared_ptr<smr::DecodeCache> dcache_;
  crypto::LagrangeCache lagrange_;
  smr::ShareStats share_stats_;
  /// Per-sender counts of relayed certificates that failed verification.
  std::vector<std::uint64_t> cert_blame_;

  /// Sign + encode once; shared by send/multicast.
  SharedBytes encode_signed(smr::Message& msg);

  /// Span milestones derived from an outgoing message. Captured *before*
  /// encode_signed moves the message into the decode cache; the payload
  /// content key (bridging to transport spans) is only computable after.
  struct SpanPlan {
    enum Kind : std::uint8_t { kNone, kProposal, kVote } kind = kNone;
    std::uint64_t key = 0;  ///< block-id prefix
    View view = 0;
    Round round = 0;
    std::uint64_t height = 0;
  };
  static SpanPlan span_plan(const smr::Message& msg);
  void record_span_plan(const SpanPlan& plan, const SharedBytes& payload);

  // Pipelined proposal path state ----------------------------------------
  smr::BatchStore batch_store_;
  /// Batch sealed by maybe_announce_batch, awaiting its proposal.
  std::optional<smr::Batch> pending_batch_;
  /// Stored ref blocks whose batch has not arrived, by batch id. Entries
  /// persist until the batch arrives (even past the pull retry budget), so
  /// a late batch still resolves every waiter.
  std::unordered_map<smr::BatchId, std::vector<smr::BlockId>, smr::BlockIdHash> waiting_batch_;
  /// Commit scans stalled on an unresolved payload, by batch id.
  std::unordered_map<smr::BatchId, std::vector<smr::Certificate>, smr::BlockIdHash>
      waiting_commit_batch_;
  struct BatchPull {
    std::uint32_t attempts = 0;
    ReplicaId hint = 0;  ///< first pull target (the block's sender)
    sim::EventId timer = sim::kInvalidEvent;
  };
  std::unordered_map<smr::BatchId, BatchPull, smr::BlockIdHash> batch_pulls_;
  /// Recent pushes per peer (batch id -> send time), pruned lazily to the
  /// cooldown window. Bounded: entries exist only for batches we actually
  /// hold (the byte-bounded store) and expire after batch_pull_timeout_us.
  std::unordered_map<ReplicaId, std::unordered_map<smr::BatchId, SimTime, smr::BlockIdHash>>
      recent_pushes_;
  /// Proposal-authentication gate (see note_vote_candidate).
  Round vote_candidate_round_ = 0;
  smr::BlockId vote_candidate_id_{};
  /// Unresolved batch waiters restored from the WAL snapshot, consumed by
  /// resume_batch_recovery: batch id -> blocks that referenced it.
  std::vector<std::pair<smr::BatchId, std::vector<smr::BlockId>>> recovered_batch_waiters_;
  /// kGhostChain: one forged chain per round.
  Round last_ghost_round_ = 0;

  std::map<View, smr::CoinQC> coins_;
  std::unordered_set<smr::BlockId, smr::BlockIdHash> outstanding_fetches_;
  /// Certificates whose commit scan stalled on a missing block body.
  std::unordered_map<smr::BlockId, std::vector<smr::Certificate>, smr::BlockIdHash>
      waiting_commit_;
  /// Certificates whose parent-rank lock stalled on a missing body.
  std::unordered_map<smr::BlockId, std::vector<smr::Certificate>, smr::BlockIdHash>
      waiting_lock_;
};

}  // namespace repro::core
