// Byzantine fault injection.
//
// The paper's adversary corrupts up to f replicas arbitrarily. We model
// the classic concrete behaviours used to stress BFT implementations.
// (Signature forgery is outside the modeled threat surface — see
// DESIGN.md §2 — so faults are behavioural, not cryptographic.)
#pragma once

#include <cstdint>

namespace repro::core {

enum class FaultKind : std::uint8_t {
  kNone = 0,
  /// Dead from the start: never sends, never reacts.
  kCrash,
  /// Participates (votes, timeouts) but never proposes anything — the
  /// "bad leader" whose rounds always time out.
  kMuteLeader,
  /// Proposes conflicting blocks for the same round to different halves
  /// of the network (safety attack).
  kEquivocate,
  /// Never votes (steady state or fallback), slowing quorum formation.
  kWithholdVotes,
  /// Multicasts timeout messages continuously regardless of progress.
  kTimeoutSpam,
  /// Proposes transaction batches that fail the external validity
  /// predicate. (Convention used by the fault injector: batches are
  /// prefixed with 0xFF; install a validator that rejects that prefix.)
  kInvalidTxns,
  /// Participates normally but corrupts every threshold-signature share
  /// it sends (votes, timeout shares, f-votes, coin shares). Stresses the
  /// optimistic combine-then-verify path: honest accumulators must detect
  /// the bad shares via the failed combined check, evict them, and still
  /// assemble certificates from the honest 2f+1.
  kBadShares,
  /// Participates normally but every threshold share it sends claims
  /// another replica's signer id (with a garbage value). Stresses the
  /// signer/sender binding at share admission: without it the forged
  /// shares would occupy honest signers' accumulator slots and get the
  /// honest ids banned, wedging quorums forever.
  kImpersonateShares,
  /// Advertises forged fallback-QCs for adoption: on every fallback entry
  /// it multicasts FbQcMsg certificates for fabricated f-blocks — two
  /// *different* fakes to the two halves of the network (equivocation) —
  /// with garbage threshold signatures. Stresses the adoption rule's
  /// verification gate: honest replicas must reject (cached_verify fails),
  /// blame the sender, and never adopt or count the fake toward election.
  kForgeFbQc,
  /// On every steady-state proposal it receives, multicasts a fabricated
  /// ancestor chain through the catch-up channel (BlockResponseMsg):
  /// blocks whose embedded parent certificates carry garbage threshold
  /// signatures, the tip a batch-referenced block whose batch it also
  /// ships. Stresses the deferred-vote gate from the pipelined proposal
  /// path: a block stored via catch-up must never become a vote
  /// candidate, or the forged ancestry would be certified and committed.
  kGhostChain,
};

struct FaultSpec {
  FaultKind kind = FaultKind::kNone;

  bool crashed() const { return kind == FaultKind::kCrash; }
  bool mute() const { return kind == FaultKind::kMuteLeader || crashed(); }
  bool equivocates() const { return kind == FaultKind::kEquivocate; }
  bool withholds_votes() const { return kind == FaultKind::kWithholdVotes; }
  bool spams_timeouts() const { return kind == FaultKind::kTimeoutSpam; }
  bool proposes_invalid_txns() const { return kind == FaultKind::kInvalidTxns; }
  bool sends_bad_shares() const { return kind == FaultKind::kBadShares; }
  bool impersonates_shares() const { return kind == FaultKind::kImpersonateShares; }
  bool forges_fbqc() const { return kind == FaultKind::kForgeFbQc; }
  bool forges_ghost_chain() const { return kind == FaultKind::kGhostChain; }
};

}  // namespace repro::core
