// The replica interface every protocol variant implements, plus the
// environment handed to replicas at construction.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/types.h"
#include "core/config.h"
#include "crypto/dealer.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "sim/simulation.h"
#include "smr/decode_cache.h"
#include "smr/ledger.h"
#include "storage/wal.h"

namespace repro::core {

/// Everything a replica needs from its environment. The crypto system is
/// the trusted dealer's output, shared read-only.
struct ReplicaContext {
  sim::IExecutor* sim = nullptr;
  net::INetwork* net = nullptr;
  std::shared_ptr<const crypto::CryptoSystem> crypto;
  ReplicaId id = 0;
  ProtocolConfig config;
  std::uint64_t seed = 0;  ///< per-replica RNG stream seed

  /// Optional harness hook: invoked when this replica creates a block
  /// (latency experiments measure commit_time - birth_time).
  std::function<void(const smr::BlockId&, SimTime)> on_block_born;

  /// Optional application hook: supplies the transaction batch for each
  /// block this replica proposes (e.g. the replicated KV store example).
  /// Defaults to the synthetic mempool when unset.
  std::function<Bytes()> payload_source;

  /// Optional write-ahead log. When set, the replica makes its vote state
  /// durable before every vote/proposal and recovers it at construction,
  /// so a crash + restart can never make it equivocate. Not owned.
  storage::Wal* wal = nullptr;

  /// Decode-once delivery cache. The harness shares one instance across
  /// all replicas of a simulation (they receive the same broadcast bytes,
  /// so one decode serves n deliveries); when unset the replica builds a
  /// private cache of config.decode_cache_capacity entries.
  std::shared_ptr<smr::DecodeCache> decode_cache;

  /// Optional structured trace sink. When set, the replica records its
  /// protocol milestones (proposals, votes, certificates, fallback
  /// transitions, commits) into this ring; when unset tracing is free.
  std::shared_ptr<obs::TraceRing> trace;

  /// Optional commit-lifecycle span sink (obs/span.h). Unlike `trace`
  /// this ring is usually *shared* across replicas of a run — the span
  /// analyzer stitches cross-replica critical paths, so one merged,
  /// lock-free stream is the natural shape. Unset (or capacity 0) makes
  /// every span call a branch and nothing else.
  std::shared_ptr<obs::SpanRing> spans;

  /// Optional harness hook: invoked once per record this replica commits
  /// (after the ledger append). Distinct from Ledger::set_commit_callback,
  /// which applications (kv_store, bftnode) already own.
  std::function<void(const smr::CommitRecord&)> on_commit;

  /// Optional latency histogram: completed fallback durations
  /// (enter -> coin exit) in microseconds land here. Not owned.
  obs::Histogram* fallback_duration_hist = nullptr;
};

/// Observable per-replica protocol counters (for experiments and tests).
///
/// Every field is a relaxed-atomic obs::Counter so the same storage can
/// be read live by the metrics registry / admin endpoint while the
/// protocol increments it; the struct remains the single source of truth
/// (register_replica_stats attaches pointers, it does not copy).
struct ReplicaStats {
  obs::Counter proposals_sent;
  obs::Counter votes_sent;
  obs::Counter timeouts_sent;
  obs::Counter fallbacks_entered;
  obs::Counter fallbacks_exited;
  obs::Counter blocks_fetched;
  /// Total simulated time spent inside fallbacks (enter -> exit), summed
  /// over completed fallbacks. Mean duration = total / fallbacks_exited.
  obs::Counter fallback_time_total_us;
  /// Verified-certificate cache: hits avoided a full threshold
  /// verification; misses performed one. Covers QCs/f-QCs, TCs, f-TCs
  /// and coin-QCs routed through the cached verify path.
  obs::Counter cert_verify_hits;
  obs::Counter cert_verify_misses;
  /// Decode-once delivery cache, counted per delivery at this replica: a
  /// hit reused an already-decoded message (no parse), a miss ran a full
  /// decode_message. With the harness-shared cache, one multicast costs
  /// one miss across all n replicas (the sender's encode pre-populates).
  obs::Counter decode_hits;
  obs::Counter decode_misses;
  /// Serializations performed by this replica's multicast() calls. The
  /// zero-copy data path encodes exactly once per multicast, so summed
  /// over replicas this equals NetStats::multicasts (the benches print
  /// the ratio as serializations/multicast = 1).
  obs::Counter multicast_encodes;
  /// Share accumulators (optimistic quorum assembly): per-share
  /// verify_share calls actually paid, shares buffered without immediate
  /// verification, certificates formed by a single combine-then-verify,
  /// combined checks that failed into the per-share fallback pass, and
  /// invalid shares evicted/rejected. In eager mode (lazy_share_verify
  /// off) shares_verified counts every accepted-or-rejected share and the
  /// optimistic/fallback counters stay 0.
  obs::Counter shares_verified;
  obs::Counter shares_deferred;
  obs::Counter combines_optimistic;
  obs::Counter combine_fallbacks;
  obs::Counter bad_shares_rejected;
  /// Pipelined proposal path (DESIGN.md §12): batches this replica sealed
  /// as (upcoming) leader, optimistic pre-broadcasts sent, pulls issued
  /// for missing batches, pulls that exhausted their retry budget, and
  /// reference resolutions that hit / missed the local BatchStore.
  obs::Counter batches_sealed;
  obs::Counter batches_announced;
  obs::Counter batches_pulled;
  obs::Counter batch_pull_timeouts;
  obs::Counter batch_ref_hits;
  obs::Counter batch_ref_misses;
  /// Pull responses suppressed by the per-(peer, batch) cooldown — a
  /// nonzero count under honest load means peers are re-pulling faster
  /// than batch_pull_timeout_us, i.e. the cooldown is misconfigured.
  obs::Counter batch_pushes_suppressed;
  /// Scale-out fallback optimizations (DESIGN.md §13): fallback votes
  /// suppressed because the chain already held a completed f-QC at that
  /// position (cert_relay); coin-QC re-multicasts skipped by
  /// non-designated relayers (cert_relay); and certificates whose
  /// threshold signature failed verification — rejected, with per-sender
  /// blame recorded (the Byzantine-adoption defense).
  obs::Counter fb_votes_thinned;
  obs::Counter coin_relays_suppressed;
  /// Coin shares not sent because the assembled coin-QC was already
  /// observed when our election triggered — the aggregate certificate
  /// supersedes the share (cert_relay).
  obs::Counter coin_shares_suppressed;
  obs::Counter bad_certs_rejected;
};

/// Walk every ReplicaStats counter with its stable metric name. Single
/// enumeration point: registration, exports and tests all use this, so a
/// new field added here is automatically a registered metric.
template <typename Fn>
void for_each_counter(const ReplicaStats& s, Fn&& fn) {
  fn("repro_proposals_sent_total", &s.proposals_sent);
  fn("repro_votes_sent_total", &s.votes_sent);
  fn("repro_timeouts_sent_total", &s.timeouts_sent);
  fn("repro_fallbacks_entered_total", &s.fallbacks_entered);
  fn("repro_fallbacks_exited_total", &s.fallbacks_exited);
  fn("repro_blocks_fetched_total", &s.blocks_fetched);
  fn("repro_fallback_time_us_total", &s.fallback_time_total_us);
  fn("repro_cert_verify_hits_total", &s.cert_verify_hits);
  fn("repro_cert_verify_misses_total", &s.cert_verify_misses);
  fn("repro_decode_hits_total", &s.decode_hits);
  fn("repro_decode_misses_total", &s.decode_misses);
  fn("repro_multicast_encodes_total", &s.multicast_encodes);
  fn("repro_shares_verified_total", &s.shares_verified);
  fn("repro_shares_deferred_total", &s.shares_deferred);
  fn("repro_combines_optimistic_total", &s.combines_optimistic);
  fn("repro_combine_fallbacks_total", &s.combine_fallbacks);
  fn("repro_bad_shares_rejected_total", &s.bad_shares_rejected);
  fn("repro_batches_sealed_total", &s.batches_sealed);
  fn("repro_batches_announced_total", &s.batches_announced);
  fn("repro_batches_pulled_total", &s.batches_pulled);
  fn("repro_batch_pull_timeouts_total", &s.batch_pull_timeouts);
  fn("repro_batch_ref_hits_total", &s.batch_ref_hits);
  fn("repro_batch_ref_misses_total", &s.batch_ref_misses);
  fn("repro_batch_pushes_suppressed_total", &s.batch_pushes_suppressed);
  fn("repro_fb_votes_thinned_total", &s.fb_votes_thinned);
  fn("repro_coin_relays_suppressed_total", &s.coin_relays_suppressed);
  fn("repro_coin_shares_suppressed_total", &s.coin_shares_suppressed);
  fn("repro_bad_certs_rejected_total", &s.bad_certs_rejected);
}

/// Attach every counter of `s` to `reg` under a replica="<id>" label.
/// Re-registering the same replica id (restart) replaces the attachment.
inline void register_replica_stats(obs::Registry& reg, const ReplicaStats& s,
                                   ReplicaId id) {
  const obs::Labels labels{{"replica", std::to_string(id)}};
  for_each_counter(s, [&](const char* name, const obs::Counter* c) {
    reg.attach_counter(name, labels, c);
  });
}

class IReplica {
 public:
  virtual ~IReplica() = default;

  /// Begin the protocol (enter round 1). Call after network handlers are
  /// registered for all replicas.
  virtual void start() = 0;

  /// Deliver a raw network payload (the Network calls this).
  virtual void on_message(ReplicaId from, const Bytes& payload) = 0;

  /// Deliver a payload whose decode-cache content key the caller already
  /// computed (the TCP verify pool hashes frames off-thread; re-hashing
  /// on delivery would waste the work). `key` MUST equal
  /// smr::DecodeCache::key_of(payload). Default: ignore the hint.
  virtual void on_message_keyed(ReplicaId from, const Bytes& payload,
                                const crypto::Digest& key) {
    (void)key;
    on_message(from, payload);
  }

  /// Deliver a payload that can never be a decode-cache hit: TCP peer
  /// frames arrive exactly once per connection, so hashing them to probe
  /// the cache (and inserting the decoded form nobody will look up again)
  /// is pure overhead on the protocol thread. Implementations decode and
  /// verify directly. Default: fall back to the cached path.
  virtual void on_message_uncached(ReplicaId from, const Bytes& payload) {
    on_message(from, payload);
  }

  /// Permanently silence this instance (crash simulation): pending timer
  /// callbacks and deliveries become no-ops. Used by the harness before
  /// replacing an instance with a WAL-recovered one.
  virtual void halt() = 0;

  /// Mutate this replica's fault behaviour mid-run (chaos schedules).
  /// Replaces the FaultSpec the replica was constructed with; protocol
  /// implementations react to edge transitions (a newly spamming replica
  /// starts its flood loop, an un-crashed one re-arms its round timer).
  /// Default: ignore (protocols without fault machinery).
  virtual void set_fault(const FaultSpec& fault) { (void)fault; }

  virtual ReplicaId id() const = 0;
  virtual const smr::Ledger& ledger() const = 0;
  virtual smr::Ledger& ledger() = 0;

  /// Introspection for tests / metrics.
  virtual Round current_round() const = 0;
  virtual View current_view() const = 0;
  virtual bool in_fallback() const = 0;
  virtual const ReplicaStats& stats() const = 0;

  /// Approximate bytes held by this replica's threshold-share pools
  /// (quorum-assembly accumulators). Feeds the repro_share_pool_bytes
  /// gauge; protocols without share pools report 0.
  virtual std::size_t share_pool_bytes() const { return 0; }
};

}  // namespace repro::core
