// The replica interface every protocol variant implements, plus the
// environment handed to replicas at construction.
#pragma once

#include <functional>
#include <memory>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/types.h"
#include "core/config.h"
#include "crypto/dealer.h"
#include "net/network.h"
#include "sim/simulation.h"
#include "smr/decode_cache.h"
#include "smr/ledger.h"
#include "storage/wal.h"

namespace repro::core {

/// Everything a replica needs from its environment. The crypto system is
/// the trusted dealer's output, shared read-only.
struct ReplicaContext {
  sim::IExecutor* sim = nullptr;
  net::INetwork* net = nullptr;
  std::shared_ptr<const crypto::CryptoSystem> crypto;
  ReplicaId id = 0;
  ProtocolConfig config;
  std::uint64_t seed = 0;  ///< per-replica RNG stream seed

  /// Optional harness hook: invoked when this replica creates a block
  /// (latency experiments measure commit_time - birth_time).
  std::function<void(const smr::BlockId&, SimTime)> on_block_born;

  /// Optional application hook: supplies the transaction batch for each
  /// block this replica proposes (e.g. the replicated KV store example).
  /// Defaults to the synthetic mempool when unset.
  std::function<Bytes()> payload_source;

  /// Optional write-ahead log. When set, the replica makes its vote state
  /// durable before every vote/proposal and recovers it at construction,
  /// so a crash + restart can never make it equivocate. Not owned.
  storage::Wal* wal = nullptr;

  /// Decode-once delivery cache. The harness shares one instance across
  /// all replicas of a simulation (they receive the same broadcast bytes,
  /// so one decode serves n deliveries); when unset the replica builds a
  /// private cache of config.decode_cache_capacity entries.
  std::shared_ptr<smr::DecodeCache> decode_cache;
};

/// Observable per-replica protocol counters (for experiments and tests).
struct ReplicaStats {
  std::uint64_t proposals_sent = 0;
  std::uint64_t votes_sent = 0;
  std::uint64_t timeouts_sent = 0;
  std::uint64_t fallbacks_entered = 0;
  std::uint64_t fallbacks_exited = 0;
  std::uint64_t blocks_fetched = 0;
  /// Total simulated time spent inside fallbacks (enter -> exit), summed
  /// over completed fallbacks. Mean duration = total / fallbacks_exited.
  std::uint64_t fallback_time_total_us = 0;
  /// Verified-certificate cache: hits avoided a full threshold
  /// verification; misses performed one. Covers QCs/f-QCs, TCs, f-TCs
  /// and coin-QCs routed through the cached verify path.
  std::uint64_t cert_verify_hits = 0;
  std::uint64_t cert_verify_misses = 0;
  /// Decode-once delivery cache, counted per delivery at this replica: a
  /// hit reused an already-decoded message (no parse), a miss ran a full
  /// decode_message. With the harness-shared cache, one multicast costs
  /// one miss across all n replicas (the sender's encode pre-populates).
  std::uint64_t decode_hits = 0;
  std::uint64_t decode_misses = 0;
  /// Serializations performed by this replica's multicast() calls. The
  /// zero-copy data path encodes exactly once per multicast, so summed
  /// over replicas this equals NetStats::multicasts (the benches print
  /// the ratio as serializations/multicast = 1).
  std::uint64_t multicast_encodes = 0;
  /// Share accumulators (optimistic quorum assembly): per-share
  /// verify_share calls actually paid, shares buffered without immediate
  /// verification, certificates formed by a single combine-then-verify,
  /// combined checks that failed into the per-share fallback pass, and
  /// invalid shares evicted/rejected. In eager mode (lazy_share_verify
  /// off) shares_verified counts every accepted-or-rejected share and the
  /// optimistic/fallback counters stay 0.
  std::uint64_t shares_verified = 0;
  std::uint64_t shares_deferred = 0;
  std::uint64_t combines_optimistic = 0;
  std::uint64_t combine_fallbacks = 0;
  std::uint64_t bad_shares_rejected = 0;
};

class IReplica {
 public:
  virtual ~IReplica() = default;

  /// Begin the protocol (enter round 1). Call after network handlers are
  /// registered for all replicas.
  virtual void start() = 0;

  /// Deliver a raw network payload (the Network calls this).
  virtual void on_message(ReplicaId from, const Bytes& payload) = 0;

  /// Permanently silence this instance (crash simulation): pending timer
  /// callbacks and deliveries become no-ops. Used by the harness before
  /// replacing an instance with a WAL-recovered one.
  virtual void halt() = 0;

  virtual ReplicaId id() const = 0;
  virtual const smr::Ledger& ledger() const = 0;
  virtual smr::Ledger& ledger() = 0;

  // Introspection for tests / metrics.
  virtual Round current_round() const = 0;
  virtual View current_view() const = 0;
  virtual bool in_fallback() const = 0;
  virtual const ReplicaStats& stats() const = 0;
};

}  // namespace repro::core
