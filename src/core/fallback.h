// DiemBFT with the Asynchronous Fallback view-change (paper Figure 2) —
// the paper's primary contribution — plus its two published variants:
//
//  * chain_len == 3 (default): the base protocol — 2-chain lock, 3-chain
//    commit, fallback-chains of three f-blocks.
//  * chain_len == 2: the Figure-4 variant — 1-chain lock, 2-chain commit,
//    fallback-chains of two f-blocks with mandatory chain adoption and
//    distinct-signer leader-election counting.
//  * adoption: the §3 "Optimization in Practice" — replicas extend the
//    first certified f-block they see at each height instead of waiting
//    for their own, so the fallback runs at the speed of the fastest
//    replica (always on for chain_len == 2, per Figure 4).
//  * always_fallback: strips the synchronous path entirely and runs the
//    fallback machinery view after view — an ACE/VABA-style asynchronous
//    SMR baseline paying O(n^2) per decision always (Table 1's "async
//    SMR" row).
#pragma once

#include <optional>
#include <set>
#include <tuple>

#include "core/replica_base.h"
#include "smr/fallback_frontier.h"

namespace repro::core {

struct FallbackParams {
  std::uint32_t chain_len = 3;   ///< 3 (Figure 2) or 2 (Figure 4)
  bool adoption = false;         ///< §3 optimization (implied by chain_len == 2)
  bool always_fallback = false;  ///< ACE/VABA-style baseline mode

  /// Chain adoption is forced for the 2-chain variant (Figure 4 specifies
  /// it) and for the always-fallback baseline: without the timeout
  /// exchange that synchronizes qc_high before a fallback, proposers can
  /// start from stale QCs and fewer than 2f+1 *own* chains complete —
  /// adoption (and its distinct-signer election counting) makes one live
  /// chain suffice, which is also how VABA-family protocols behave.
  bool adoption_enabled() const { return adoption || chain_len == 2 || always_fallback; }
};

class FallbackReplica final : public ReplicaBase {
 public:
  /// Coin shares for views beyond v_cur + this horizon are rejected:
  /// honest replicas never run that far ahead, and accepting them would
  /// let a Byzantine replica grow coin_shares_ without bound between
  /// prunes (prune_stale_pools only drops *past* views).
  static constexpr View kCoinViewHorizon = 8;

  FallbackReplica(const ReplicaContext& ctx, FallbackParams fb);

  void start() override;
  bool in_fallback() const override { return fallback_mode_; }

  const FallbackParams& fallback_params() const { return fb_; }

  /// This view's certified-chain bookkeeping (tests / introspection).
  const smr::FallbackFrontier& frontier() const { return frontier_; }

  /// Quorum-assembly footprint: the four share pools, the per-view
  /// frontier and the Lagrange memo (the repro_share_pool_bytes gauge).
  std::size_t share_pool_bytes() const override {
    return view_timeout_shares_.approx_bytes() + fb_votes_.approx_bytes() +
           coin_shares_.approx_bytes() + votes_.approx_bytes() + frontier_.approx_bytes() +
           lagrange_bytes();
  }

 protected:
  std::uint32_t commit_len() const override { return fb_.chain_len; }
  void handle_message(ReplicaId from, smr::Message&& msg) override;
  void on_batch_resolved(const smr::Block& block, ReplicaId from) override;
  void on_fault_changed(const FaultSpec& old) override;
  void encode_extra_state(Encoder& enc) const override;
  bool restore_extra_state(Decoder& dec) override;

 private:
  // ---- steady state ----------------------------------------------------
  void maybe_propose_steady();
  void handle_proposal(ReplicaId from, smr::ProposalMsg&& msg);
  /// The Fig 2 vote rule on a stored block; also the retry point for
  /// votes deferred on an unresolved batch reference.
  void try_vote_steady(const smr::Block& block);
  void handle_vote(ReplicaId from, const smr::VoteMsg& msg);

  /// Full Lock step (Fig 1 Lock with Fig 2's Advance Round): applies only
  /// to certificates that "count" (regular QCs / endorsed f-QCs).
  void lock_full(const smr::Certificate& cert, ReplicaId hint);

  /// Fig 2 Advance Round: r_cur <- max(r_cur, qc.r + 1).
  void advance_round_from(const smr::Certificate& cert);

  void arm_timer();
  void on_timer_fired(Round round);
  void spam_timeouts();
  void prune_stale_pools();

  // ---- fallback --------------------------------------------------------
  void handle_fb_timeout(ReplicaId from, const smr::FbTimeoutMsg& msg);
  void handle_ftc(const smr::FallbackTC& ftc);
  void enter_fallback(View view, const std::optional<smr::FallbackTC>& ftc);
  void handle_fb_proposal(ReplicaId from, smr::FbProposalMsg&& msg);
  void handle_fb_vote(ReplicaId from, const smr::FbVoteMsg& msg);
  void handle_fb_qc(ReplicaId from, const smr::FbQcMsg& msg);
  void handle_coin_share(ReplicaId from, const smr::CoinShareMsg& msg);

  /// Install + (if view >= v_cur) run Exit Fallback; multicasts the
  /// coin-QC on first sight. All coin-QC paths funnel here.
  void process_coin(const smr::CoinQC& coin);

  /// Record an f-QC of the current view (commit scan, per-proposer best,
  /// adoption hook, top-height bookkeeping).
  void note_fallback_qc(const smr::Certificate& fqc, ReplicaId hint);

  /// Multicast our own f-block at `height` extending `parent`.
  void propose_fblock(FallbackHeight height, const smr::Certificate& parent,
                      const std::optional<smr::FallbackTC>& ftc);

  /// kForgeFbQc behaviour: advertise forged/equivocating f-QCs on every
  /// fallback entry (the Byzantine adoption attack).
  void forge_fbqc_attack(View view);

  void maybe_trigger_election();

  /// Coin-QCs needed as endorsement evidence for `cert`, to attach.
  std::vector<smr::CoinQC> evidence_for(const smr::Certificate& cert) const;

  void install_attached_coins(const std::vector<smr::CoinQC>& coins);

  // ---- parameters & state ----------------------------------------------
  FallbackParams fb_;

  bool fallback_mode_ = false;
  std::optional<View> fallback_entered_view_;  ///< highest view we entered
  SimTime fallback_entered_at_ = 0;

  sim::EventId timer_ = sim::kInvalidEvent;
  bool timed_out_cur_round_ = false;
  std::uint32_t consecutive_timeouts_ = 0;
  Round last_proposed_round_ = 0;

  // Per-entered-view fallback state (reset in enter_fallback).
  std::vector<Round> r_vote_bar_;           ///< r̄_vote[j]
  std::vector<FallbackHeight> h_vote_bar_;  ///< h̄_vote[j]
  /// Certified-chain bookkeeping: per-owner best f-QC (Exit-Fallback lock,
  /// adoption, certificate relay) and the view's certified frontier.
  smr::FallbackFrontier frontier_;
  std::map<FallbackHeight, smr::BlockId> own_fblock_;  ///< our chain, by height
  FallbackHeight own_height_ = 0;  ///< highest height we have proposed
  std::set<ReplicaId> top_fqc_proposers_;  ///< 3-chain election counting
  std::set<ReplicaId> top_fqc_signers_;    ///< adoption/2-chain election counting
  bool sent_top_fqc_ = false;              ///< re-sign guard (adoption modes)

  std::optional<View> sent_coin_share_view_;
  std::optional<smr::FallbackTC> entered_ftc_;  ///< f-TC of the entered view

  // Share accumulators (combine-then-verify; see smr/share_accumulator.h).
  // Pool keys — together with the handler guards — pin every field of the
  // signing message, so one accumulator never mixes shares of different
  // messages (fb_votes_ checks the stored block's round/view/height).
  smr::SharePool<View> view_timeout_shares_;
  smr::SharePool<std::tuple<smr::BlockId, FallbackHeight>> fb_votes_;
  smr::SharePool<View> coin_shares_;
  smr::SharePool<std::tuple<smr::BlockId, Round, View>> votes_;  ///< steady-state votes
  View highest_ftc_formed_ = 0;
  bool any_ftc_formed_ = false;
};

}  // namespace repro::core
