#include "core/replica_base.h"

#include <algorithm>

#include "common/log.h"

namespace repro::core {

ReplicaBase::ReplicaBase(const ReplicaContext& ctx)
    : sim_(ctx.sim),
      net_(ctx.net),
      crypto_(ctx.crypto),
      params_(ctx.crypto->params),
      id_(ctx.id),
      cfg_(ctx.config),
      rng_(ctx.seed),
      mempool_(ctx.id, ctx.config.batch_bytes, Rng(ctx.seed ^ 0x6d656d706f6f6cull)),
      on_block_born_(ctx.on_block_born),
      payload_source_(ctx.payload_source),
      trace_(ctx.trace),
      spans_(ctx.spans),
      on_commit_(ctx.on_commit),
      fallback_duration_hist_(ctx.fallback_duration_hist),
      wal_(ctx.wal),
      vcache_(ctx.config.cert_cache_capacity),
      dcache_(ctx.decode_cache
                  ? ctx.decode_cache
                  : std::make_shared<smr::DecodeCache>(ctx.config.decode_cache_capacity)),
      batch_store_(ctx.config.batch_store_bytes) {
  REPRO_ASSERT(sim_ != nullptr && net_ != nullptr && crypto_ != nullptr);
  qc_high_ = smr::genesis_certificate();
}

bool ReplicaBase::cached_verify(const smr::Certificate& cert) {
  const bool ok = smr::verify_certificate(*crypto_, vcache_, cert);
  // Genesis short-circuits before the cache; don't let it skew counters.
  if (cert.kind != smr::CertKind::kGenesis) {
    stats_.cert_verify_hits = vcache_.stats().hits;
    stats_.cert_verify_misses = vcache_.stats().misses;
  }
  return ok;
}

bool ReplicaBase::cached_verify(const smr::TimeoutCert& tc) {
  const bool ok = smr::verify_tc(*crypto_, vcache_, tc);
  stats_.cert_verify_hits = vcache_.stats().hits;
  stats_.cert_verify_misses = vcache_.stats().misses;
  return ok;
}

bool ReplicaBase::cached_verify(const smr::FallbackTC& ftc) {
  const bool ok = smr::verify_ftc(*crypto_, vcache_, ftc);
  stats_.cert_verify_hits = vcache_.stats().hits;
  stats_.cert_verify_misses = vcache_.stats().misses;
  return ok;
}

bool ReplicaBase::cached_verify(const smr::CoinQC& qc) {
  const bool ok = smr::verify_coin_qc(*crypto_, vcache_, qc);
  stats_.cert_verify_hits = vcache_.stats().hits;
  stats_.cert_verify_misses = vcache_.stats().misses;
  return ok;
}

void ReplicaBase::persist_vote_state() {
  if (wal_ == nullptr) return;
  Encoder enc;
  enc.u64(r_vote_);
  enc.u64(rank_lock_.view);
  enc.bool_(rank_lock_.endorsed);
  enc.u64(rank_lock_.round);
  enc.u64(v_cur_);
  qc_high_.encode(enc);
  enc.u32(static_cast<std::uint32_t>(coins_.size()));
  for (const auto& [view, coin] : coins_) coin.encode(enc);
  encode_extra_state(enc);
  // Unresolved batch waiters: blocks stored but still awaiting their
  // referenced batch. Restored into recovered_batch_waiters_ so a restart
  // can re-issue the fetches/pulls instead of stalling until an unrelated
  // pull fires (resume_batch_recovery).
  enc.u32(static_cast<std::uint32_t>(waiting_batch_.size()));
  for (const auto& [ref, ids] : waiting_batch_) {
    enc.bytes(BytesView(ref.data(), ref.size()));
    enc.u32(static_cast<std::uint32_t>(ids.size()));
    for (const auto& bid : ids) enc.bytes(BytesView(bid.data(), bid.size()));
  }
  wal_->append(enc.result());
}

bool ReplicaBase::recover_from_wal() {
  if (wal_ == nullptr) return false;
  const auto records = wal_->replay();
  if (records.empty()) return false;
  // Snapshots are complete, so only the newest matters.
  Decoder dec(records.back());
  auto r_vote = dec.u64();
  auto lock_view = dec.u64();
  auto lock_endorsed = dec.bool_();
  auto lock_round = dec.u64();
  auto v_cur = dec.u64();
  auto qc_high = smr::Certificate::decode(dec);
  auto coin_count = dec.u32();
  if (!r_vote || !lock_view || !lock_endorsed || !lock_round || !v_cur || !qc_high ||
      !coin_count) {
    LOG_ERROR("replica %u: corrupted WAL snapshot; starting fresh", id_);
    return false;
  }
  std::map<View, smr::CoinQC> coins;
  for (std::uint32_t i = 0; i < *coin_count; ++i) {
    auto coin = smr::CoinQC::decode(dec);
    if (!coin) return false;
    coins.emplace(coin->view, *coin);
  }
  r_vote_ = *r_vote;
  rank_lock_ = smr::Rank{*lock_view, *lock_endorsed, *lock_round};
  v_cur_ = *v_cur;
  qc_high_ = *qc_high;
  coins_ = std::move(coins);
  // The chain itself is not logged: r_cur re-derives from qc_high and the
  // block bodies return through the block-retrieval path as peers talk to
  // us. Conservative: never behind round 1.
  r_cur_ = std::max<Round>(1, qc_high_.round + 1);
  recovered_batch_waiters_.clear();
  if (!restore_extra_state(dec)) {
    LOG_ERROR("replica %u: corrupted WAL extra state; keeping base state", id_);
  } else if (auto wcount = dec.u32()) {
    bool ok = true;
    for (std::uint32_t i = 0; ok && i < *wcount; ++i) {
      auto ref_bytes = dec.bytes();
      auto id_count = dec.u32();
      if (!ref_bytes || !id_count || ref_bytes->size() != std::tuple_size_v<smr::BatchId>) {
        ok = false;
        break;
      }
      smr::BatchId ref{};
      std::copy(ref_bytes->begin(), ref_bytes->end(), ref.begin());
      std::vector<smr::BlockId> ids;
      ids.reserve(*id_count);
      for (std::uint32_t j = 0; j < *id_count; ++j) {
        auto idb = dec.bytes();
        if (!idb || idb->size() != std::tuple_size_v<smr::BlockId>) {
          ok = false;
          break;
        }
        smr::BlockId bid{};
        std::copy(idb->begin(), idb->end(), bid.begin());
        ids.push_back(bid);
      }
      if (ok) recovered_batch_waiters_.emplace_back(ref, std::move(ids));
    }
    if (!ok) {
      LOG_ERROR("replica %u: corrupted WAL batch-waiter state; skipping", id_);
      recovered_batch_waiters_.clear();
    }
  }
  recovered_ = true;
  return true;
}

void ReplicaBase::resume_batch_recovery() {
  if (recovered_batch_waiters_.empty()) return;
  const auto waiters = std::move(recovered_batch_waiters_);
  recovered_batch_waiters_.clear();
  for (const auto& [ref, ids] : waiters) {
    // Re-fetch the waiting blocks: the store is not persisted, and the
    // arrival path (store_block -> try_resolve_block) rebuilds the waiter
    // entry. Pull the batch in parallel so whichever lands last resolves.
    for (const auto& bid : ids) ensure_block(bid, id_);
    if (!batch_store_.contains(ref)) start_batch_pull(ref, id_);
  }
}

void ReplicaBase::on_message(ReplicaId from, const Bytes& payload) {
  // Decode-once: byte-identical payloads (a multicast seen by n replicas
  // through the shared cache, or a self-delivery the sender pre-populated
  // at encode time) parse once; any mutated byte changes the content key
  // and takes the full decode-and-verify path independently.
  on_message_keyed(from, payload, smr::DecodeCache::key_of(payload));
}

void ReplicaBase::on_message_keyed(ReplicaId from, const Bytes& payload,
                                   const crypto::Digest& key) {
  if (halted_ || cfg_.fault.crashed()) return;
  bool cache_hit = false;
  auto msg = dcache_->decode(key, payload, &cache_hit);
  cache_hit ? ++stats_.decode_hits : ++stats_.decode_misses;
  if (!msg) {
    LOG_WARN("replica %u: dropping malformed message from %u", id_, from);
    return;
  }
  // The signature memo is keyed by (payload bytes, sender): verification
  // is a pure function of the two, so a recorded success is as strong as
  // re-running it, while the same bytes replayed by a different sender
  // still pay (and fail) the full check. The check itself runs against
  // the wire bytes in hand — the signed prefix of the payload — instead
  // of re-encoding the decoded form.
  if (!dcache_->sender_verified(key, from)) {
    if (!smr::verify_message_signature_wire(*crypto_, from, *msg, payload)) {
      LOG_WARN("replica %u: bad signature on message from %u", id_, from);
      return;
    }
    dcache_->note_sender_verified(key, from);
  }

  deliver(from, std::move(*msg));
}

void ReplicaBase::on_message_uncached(ReplicaId from, const Bytes& payload) {
  if (halted_ || cfg_.fault.crashed()) return;
  auto msg = smr::decode_message(payload);
  ++stats_.decode_misses;  // a real parse ran, same as a cache miss
  if (!msg) {
    LOG_WARN("replica %u: dropping malformed message from %u", id_, from);
    return;
  }
  if (!smr::verify_message_signature_wire(*crypto_, from, *msg, payload)) {
    LOG_WARN("replica %u: bad signature on message from %u", id_, from);
    return;
  }
  deliver(from, std::move(*msg));
}

void ReplicaBase::deliver(ReplicaId from, smr::Message&& msg) {
  // Batch dissemination is protocol-independent; handle it here. All
  // three carry self-authenticating content (the receiver re-derives the
  // id from the bytes), so there is nothing protocol-specific to check.
  if (auto* batch = std::get_if<smr::BatchMsg>(&msg)) {
    accept_batch(std::move(batch->data), from);
    return;
  }
  if (auto* pull = std::get_if<smr::BatchPullMsg>(&msg)) {
    // Amplification guard: a 36-byte pull elicits a potentially
    // multi-megabyte push, so each (peer, batch) pair gets at most one
    // push per cooldown window. Honest pullers rotate targets and only
    // re-ask the same replica after n timeouts, far outside the window;
    // a flood of duplicate pulls from one peer is absorbed for free.
    if (const Bytes* data = batch_store_.get(pull->batch_id)) {
      if (allow_batch_push(from, pull->batch_id)) {
        send(from, smr::BatchPushMsg{*data});
      }
    }
    return;
  }
  if (auto* push = std::get_if<smr::BatchPushMsg>(&msg)) {
    accept_batch(std::move(push->data), from);
    return;
  }

  // Block retrieval is protocol-independent; handle it here.
  if (auto* req = std::get_if<smr::BlockRequestMsg>(&msg)) {
    const smr::Block* b = store_.get(req->block_id);
    if (b == nullptr) return;
    smr::BlockResponseMsg resp;
    resp.blocks.push_back(*b);
    const std::uint32_t extra = std::min(req->ancestors, smr::kMaxBlocksPerResponse - 1);
    const smr::Block* cur = b;
    for (std::uint32_t i = 0; i < extra && !cur->is_genesis(); ++i) {
      cur = store_.get(cur->parent.block_id);
      if (cur == nullptr) break;
      resp.blocks.push_back(*cur);
    }
    send(from, std::move(resp));
    return;
  }
  if (auto* resp = std::get_if<smr::BlockResponseMsg>(&msg)) {
    if (resp->blocks.size() > smr::kMaxBlocksPerResponse) return;
    // Oldest first, so deferred work retries at most once per block.
    for (auto it = resp->blocks.rbegin(); it != resp->blocks.rend(); ++it) {
      store_block(std::move(*it), from);
    }
    return;
  }

  if (spans_on()) {
    // The handler-entry milestone for proposals: queue/verify/decode time
    // is behind us, protocol work starts now.
    if (const auto* pm = std::get_if<smr::ProposalMsg>(&msg)) {
      span(obs::SpanStage::kDispatch, crypto::digest_prefix_u64(pm->block.id),
           pm->block.view, pm->block.round);
    } else if (const auto* fp = std::get_if<smr::FbProposalMsg>(&msg)) {
      span(obs::SpanStage::kDispatch, crypto::digest_prefix_u64(fp->block.id),
           fp->block.view, fp->block.round, fp->block.height);
    }
  }
  handle_message(from, std::move(msg));
}

SharedBytes ReplicaBase::encode_signed(smr::Message& msg) {
  smr::sign_message(*crypto_, id_, msg);
  SharedBytes payload = make_shared_bytes(smr::encode_message(msg));
  // The sender already holds the decoded form: seed the cache so the
  // loopback delivery (and shared-cache recipients) skip the re-parse.
  // Marking ourselves signature-verified is sound — we produced the
  // signature over exactly these bytes.
  dcache_->insert(smr::DecodeCache::key_of(*payload), std::move(msg), id_);
  return payload;
}

ReplicaBase::SpanPlan ReplicaBase::span_plan(const smr::Message& msg) {
  SpanPlan p;
  if (const auto* pm = std::get_if<smr::ProposalMsg>(&msg)) {
    p = {SpanPlan::kProposal, crypto::digest_prefix_u64(pm->block.id),
         pm->block.view, pm->block.round, 0};
  } else if (const auto* fp = std::get_if<smr::FbProposalMsg>(&msg)) {
    p = {SpanPlan::kProposal, crypto::digest_prefix_u64(fp->block.id),
         fp->block.view, fp->block.round, fp->block.height};
  } else if (const auto* v = std::get_if<smr::VoteMsg>(&msg)) {
    p = {SpanPlan::kVote, crypto::digest_prefix_u64(v->block_id), v->view,
         v->round, 0};
  } else if (const auto* fv = std::get_if<smr::FbVoteMsg>(&msg)) {
    p = {SpanPlan::kVote, crypto::digest_prefix_u64(fv->block_id), fv->view,
         fv->round, fv->height};
  }
  return p;
}

void ReplicaBase::record_span_plan(const SpanPlan& plan, const SharedBytes& payload) {
  switch (plan.kind) {
    case SpanPlan::kProposal:
      // aux carries the payload content key: the bridge from this block's
      // protocol-level spans to the transport spans keyed on wire bytes.
      span(obs::SpanStage::kProposalEncode, plan.key, plan.view, plan.round,
           obs::span_key_of(*payload));
      break;
    case SpanPlan::kVote:
      span(obs::SpanStage::kVoteSend, plan.key, plan.view, plan.round,
           plan.height);
      break;
    case SpanPlan::kNone:
      break;
  }
}

void ReplicaBase::send(ReplicaId to, smr::Message msg) {
  if (!spans_on()) {
    net_->send(id_, to, encode_signed(msg));
    return;
  }
  const SpanPlan plan = span_plan(msg);
  SharedBytes payload = encode_signed(msg);
  record_span_plan(plan, payload);
  net_->send(id_, to, std::move(payload));
}

void ReplicaBase::multicast(smr::Message msg) {
  ++stats_.multicast_encodes;
  if (!spans_on()) {
    net_->multicast(id_, encode_signed(msg));
    return;
  }
  const SpanPlan plan = span_plan(msg);
  SharedBytes payload = encode_signed(msg);
  record_span_plan(plan, payload);
  net_->multicast(id_, std::move(payload));
}

bool ReplicaBase::is_endorsed(const smr::Certificate& cert) const {
  if (cert.kind != smr::CertKind::kFallback) return false;
  auto it = coins_.find(cert.view);
  if (it == coins_.end()) return false;
  return it->second.leader(*crypto_) == cert.proposer;
}

bool ReplicaBase::counts_for_commit(const smr::Certificate& cert) const {
  if (cert.kind == smr::CertKind::kQuorum) return true;
  if (cert.kind == smr::CertKind::kFallback) return is_endorsed(cert);
  return false;
}

bool ReplicaBase::install_coin(const smr::CoinQC& coin) {
  const bool fresh = coins_.emplace(coin.view, coin).second;
  if (!fresh) return false;
  // Endorsements of recorded f-QCs of this view may have flipped on:
  // rescan them for commit (the Exit Fallback "check for commit").
  for (const auto& cert : store_.certificates()) {
    if (cert.kind == smr::CertKind::kFallback && cert.view == coin.view) {
      try_commit_from(cert, cert.proposer);
    }
  }
  return true;
}

const smr::CoinQC* ReplicaBase::coin_for(View view) const {
  auto it = coins_.find(view);
  return it == coins_.end() ? nullptr : &it->second;
}

void ReplicaBase::note_certificate(const smr::Certificate& cert, ReplicaId hint) {
  store_.add_certificate(cert);
  try_commit_from(cert, hint);
}

void ReplicaBase::update_qc_high(const smr::Certificate& qc) {
  if (rank_of(qc) > rank_of(qc_high_)) qc_high_ = qc;
}

void ReplicaBase::lock_parent_rank(const smr::Certificate& qc, ReplicaId hint) {
  const smr::Block* b = store_.get(qc.block_id);
  if (b == nullptr) {
    waiting_lock_[qc.block_id].push_back(qc);
    ensure_block(qc.block_id, hint);
    return;
  }
  rank_lock_ = smr::max(rank_lock_, rank_of(b->parent));
}

void ReplicaBase::lock_direct_rank(const smr::Certificate& qc) {
  rank_lock_ = smr::max(rank_lock_, rank_of(qc));
}

bool ReplicaBase::ensure_block(const smr::BlockId& id, ReplicaId hint) {
  if (store_.contains(id)) return true;
  if (outstanding_fetches_.insert(id).second) {
    ++stats_.blocks_fetched;
    // Ask for an ancestor range: when we are missing one block we are
    // often missing a suffix of the chain (catch-up after a crash or
    // partition), and batched backfill must outpace chain growth — 16
    // blocks per round trip is ~30x the steady-state commit rate while
    // keeping responses small when only one block was actually missing.
    send(hint == id_ ? leader_of(r_cur_) : hint, smr::BlockRequestMsg{id, 16});
  }
  return false;
}

const smr::Block* ReplicaBase::store_block(smr::Block block, ReplicaId from) {
  if (!block.id_consistent()) {
    LOG_WARN("replica %u: dropping id-inconsistent block from %u", id_, from);
    return nullptr;
  }
  const smr::BlockId id = block.id;
  if (!store_.insert(std::move(block))) return store_.get(id);
  outstanding_fetches_.erase(id);
  try_resolve_block(id, from);
  const smr::Block* stored = store_.get(id);
  retry_deferred(id, from);
  on_block_stored(*stored, from);
  return stored;
}

void ReplicaBase::on_block_stored(const smr::Block&, ReplicaId) {}

// ---- pipelined proposal path (DESIGN.md §12) ------------------------------

void ReplicaBase::maybe_announce_batch(Round round) {
  if (!cfg_.batch_refs || pending_batch_) return;
  if (leader_of(round) != id_) return;
  if (halted_ || cfg_.fault.crashed()) return;
  smr::Batch batch = smr::Batch::seal(next_payload());
  ++stats_.batches_sealed;
  if (use_batch_ref(batch.data.size())) {
    batch_store_.put(batch.id, batch.data);
    if (cfg_.batch_announce && !cfg_.fault.mute()) {
      ++stats_.batches_announced;
      trace(obs::EventKind::kBatchAnnounced, v_cur_, round, 0, batch.data.size());
      span(obs::SpanStage::kBatchAnnounce, crypto::digest_prefix_u64(batch.id),
           v_cur_, round, batch.data.size());
      multicast(smr::BatchMsg{batch.data});
    }
  }
  pending_batch_ = std::move(batch);
}

ReplicaBase::PayloadChoice ReplicaBase::take_payload() {
  if (pending_batch_) {
    smr::Batch batch = std::move(*pending_batch_);
    pending_batch_.reset();
    if (!use_batch_ref(batch.data.size())) {
      return {std::move(batch.data), smr::kInlinePayload};
    }
    return {Bytes(batch.id.begin(), batch.id.end()), smr::kBatchRefPayload};
  }
  Bytes data = next_payload();
  if (!use_batch_ref(data.size())) return {std::move(data), smr::kInlinePayload};
  // No pre-announced batch (first proposal after rotation, or announce is
  // off): seal and — per-link FIFO means it still lands before the
  // proposal — announce on the spot.
  smr::Batch batch = smr::Batch::seal(std::move(data));
  ++stats_.batches_sealed;
  batch_store_.put(batch.id, batch.data);
  if (cfg_.batch_announce && !cfg_.fault.mute()) {
    ++stats_.batches_announced;
    trace(obs::EventKind::kBatchAnnounced, v_cur_, r_cur_, 0, batch.data.size());
    span(obs::SpanStage::kBatchAnnounce, crypto::digest_prefix_u64(batch.id),
         v_cur_, r_cur_, batch.data.size());
    multicast(smr::BatchMsg{batch.data});
  }
  return {Bytes(batch.id.begin(), batch.id.end()), smr::kBatchRefPayload};
}

void ReplicaBase::try_resolve_block(const smr::BlockId& id, ReplicaId hint) {
  smr::Block* b = store_.get_mutable(id);
  if (b == nullptr || !b->is_batch_ref() || b->payload_resolved()) return;
  const smr::BatchId ref = b->batch_ref();
  if (const Bytes* data = batch_store_.get(ref)) {
    b->resolved_payload = *data;
    ++stats_.batch_ref_hits;
    trace(obs::EventKind::kBatchResolved, b->view, b->round);
    return;
  }
  ++stats_.batch_ref_misses;
  waiting_batch_[ref].push_back(id);
  start_batch_pull(ref, hint);
  // Keep the WAL's waiter section fresh: a crash between now and the next
  // vote must still recover this in-flight reference (no-op without WAL).
  persist_vote_state();
}

void ReplicaBase::maybe_forge_ghost_chain(const smr::Block& real) {
  if (!cfg_.fault.forges_ghost_chain() || halted_) return;
  if (!cfg_.batch_refs || real.is_fallback()) return;
  const Round r = real.round;
  if (r < 3 || r <= last_ghost_round_) return;
  // Anchor the fabricated chain on the *genuine* round-(r-3) certificate
  // so every edge has consecutive rounds and the victims' commit scan
  // walks seamlessly from the ghost blocks back into the real chain
  // (a non-consecutive edge would leave a non-monotonic ledger). The
  // attacker followed the protocol until now, so the two real ancestors
  // are normally in its store; skip this round if either is missing.
  const smr::Block* p1 = store_.get(real.parent.block_id);  // round r-1
  if (p1 == nullptr) return;
  const smr::Block* p2 = store_.get(p1->parent.block_id);  // round r-2
  if (p2 == nullptr) return;
  const smr::Certificate anchor = p2->parent;  // real cert for round r-3
  last_ghost_round_ = r;
  // A deterministic ghost batch, round-stamped so each round's fabricated
  // chain is distinct and large enough to ship as a reference.
  Bytes batch_data(cfg_.batch_ref_min_bytes + 64, 0x6b);
  Encoder stamp;
  stamp.u64(r);
  stamp.u64(id_);
  const Bytes& stamped = stamp.result();
  std::copy(stamped.begin(), stamped.end(), batch_data.begin());
  const smr::Batch batch = smr::Batch::seal(std::move(batch_data));

  // Three id-consistent blocks whose embedded parent certificates carry
  // garbage threshold signatures. Nothing on the catch-up store path
  // verifies them; the deferred-vote gate is what keeps them from ever
  // becoming vote candidates (unless unsafe_trust_catchup_blocks).
  smr::Block b0 = smr::Block::make(anchor, r - 2, real.view, 0, leader_of(r - 2),
                                   Bytes{0xde, 0xad});
  const smr::Certificate q0{smr::CertKind::kQuorum, b0.id,     b0.round,
                            b0.view,                b0.height, b0.proposer,
                            crypto::ThresholdSig{0xbadc0debadc0deull}};
  smr::Block b1 = smr::Block::make(q0, r - 1, real.view, 0, leader_of(r - 1), Bytes{0xbe, 0xef});
  const smr::Certificate q1{smr::CertKind::kQuorum, b1.id,     b1.round,
                            b1.view,                b1.height, b1.proposer,
                            crypto::ThresholdSig{0xbadc0debadc0deull}};
  smr::Block ghost = smr::Block::make(q1, r, real.view, 0, leader_of(r),
                                      Bytes(batch.id.begin(), batch.id.end()),
                                      smr::kBatchRefPayload);
  smr::BlockResponseMsg resp;  // receivers store rbegin-first: push tip first
  resp.blocks.push_back(std::move(ghost));
  resp.blocks.push_back(std::move(b1));
  resp.blocks.push_back(std::move(b0));
  multicast(std::move(resp));
  multicast(smr::BatchMsg{batch.data});
}

void ReplicaBase::accept_batch(Bytes data, ReplicaId from) {
  const smr::BatchId ref = smr::Batch::compute_id(data);
  if (!batch_store_.contains(ref)) batch_store_.put(ref, std::move(data));
  if (auto it = batch_pulls_.find(ref); it != batch_pulls_.end()) {
    sim_->cancel(it->second.timer);
    batch_pulls_.erase(it);
  }
  // A batch larger than the whole store bound can never be cached; its
  // referencing blocks stay unresolved (the round times out — liveness
  // comes from fallback, not from unbounded memory).
  const Bytes* stored = batch_store_.get(ref);
  if (stored == nullptr) return;
  if (auto it = waiting_batch_.find(ref); it != waiting_batch_.end()) {
    auto ids = std::move(it->second);
    waiting_batch_.erase(it);
    for (const auto& bid : ids) {
      smr::Block* b = store_.get_mutable(bid);
      if (b == nullptr || b->payload_resolved()) continue;
      b->resolved_payload = *stored;
      trace(obs::EventKind::kBatchResolved, b->view, b->round);
      on_batch_resolved(*b, from);
    }
  }
  if (auto it = waiting_commit_batch_.find(ref); it != waiting_commit_batch_.end()) {
    auto certs = std::move(it->second);
    waiting_commit_batch_.erase(it);
    for (const auto& c : certs) try_commit_from(c, from);
  }
}

void ReplicaBase::start_batch_pull(const smr::BatchId& ref, ReplicaId hint) {
  if (batch_pulls_.count(ref) != 0) return;
  batch_pulls_.emplace(ref, BatchPull{0, hint, sim::kInvalidEvent});
  send_batch_pull(ref);
}

void ReplicaBase::send_batch_pull(const smr::BatchId& ref) {
  auto it = batch_pulls_.find(ref);
  if (it == batch_pulls_.end()) return;
  BatchPull& st = it->second;
  // Rotate through the replicas starting at the block's sender: the
  // proposer certainly has the batch, but it may be the one replica that
  // is unreachable — any replica that voted has it too.
  ReplicaId target = (st.hint + st.attempts) % params_.n;
  if (target == id_) target = (target + 1) % params_.n;
  ++stats_.batches_pulled;
  send(target, smr::BatchPullMsg{ref});
  const smr::BatchId ref_copy = ref;
  st.timer = sim_->schedule_after(cfg_.batch_pull_timeout_us,
                                  [this, ref_copy] { on_batch_pull_timer(ref_copy); });
}

void ReplicaBase::on_batch_pull_timer(const smr::BatchId& ref) {
  if (halted_ || cfg_.fault.crashed()) return;
  auto it = batch_pulls_.find(ref);
  if (it == batch_pulls_.end()) return;
  if (batch_store_.contains(ref)) {
    batch_pulls_.erase(it);
    return;
  }
  if (++it->second.attempts > cfg_.batch_pull_retries) {
    // Give up for now; the waiting_batch_ entries stay, so a late batch
    // still resolves, and a commit attempt restarts the pull.
    ++stats_.batch_pull_timeouts;
    batch_pulls_.erase(it);
    return;
  }
  send_batch_pull(ref);
}

bool ReplicaBase::allow_batch_push(ReplicaId peer, const smr::BatchId& ref) {
  const SimTime now = sim_->now();
  auto& log = recent_pushes_[peer];
  // Lazy expiry keeps the per-peer map to pushes inside the window.
  for (auto it = log.begin(); it != log.end();) {
    it = now - it->second >= cfg_.batch_pull_timeout_us ? log.erase(it) : std::next(it);
  }
  const bool fresh = log.emplace(ref, now).second;
  if (!fresh) ++stats_.batch_pushes_suppressed;
  return fresh;
}

void ReplicaBase::prune_batch_waiters() {
  if (ledger_.records().empty()) return;
  const Round tip = ledger_.records().back().round;
  for (auto it = waiting_batch_.begin(); it != waiting_batch_.end();) {
    auto& ids = it->second;
    // A block at or below the committed tip that is not itself committed
    // sits on a dead fork: it can never be voted on (r_cur is past it)
    // and never commit (the chain at its round is final). Committed
    // blocks never linger here — commit gating requires resolution, and
    // resolution removes the waiter.
    ids.erase(std::remove_if(ids.begin(), ids.end(),
                             [&](const smr::BlockId& bid) {
                               const smr::Block* b = store_.get(bid);
                               return b == nullptr || b->round <= tip;
                             }),
              ids.end());
    it = ids.empty() ? waiting_batch_.erase(it) : std::next(it);
  }
  for (auto it = waiting_commit_batch_.begin(); it != waiting_commit_batch_.end();) {
    auto& certs = it->second;
    certs.erase(std::remove_if(certs.begin(), certs.end(),
                               [&](const smr::Certificate& c) { return c.round <= tip; }),
                certs.end());
    it = certs.empty() ? waiting_commit_batch_.erase(it) : std::next(it);
  }
}

void ReplicaBase::defer_commit(const smr::BlockId& missing, const smr::Certificate& cert) {
  auto& waiting = waiting_commit_[missing];
  // During catch-up many certificates stall on the same missing ancestor;
  // queueing duplicates makes every retry quadratic.
  for (const auto& c : waiting) {
    if (c.block_id == cert.block_id) return;
  }
  waiting.push_back(cert);
}

void ReplicaBase::retry_deferred(const smr::BlockId& id, ReplicaId from) {
  if (auto it = waiting_lock_.find(id); it != waiting_lock_.end()) {
    auto certs = std::move(it->second);
    waiting_lock_.erase(it);
    for (const auto& c : certs) lock_parent_rank(c, from);
  }
  if (auto it = waiting_commit_.find(id); it != waiting_commit_.end()) {
    auto certs = std::move(it->second);
    waiting_commit_.erase(it);
    for (const auto& c : certs) try_commit_from(c, from);
  }
}

void ReplicaBase::try_commit_from(const smr::Certificate& cert, ReplicaId hint) {
  // The commit rule (paper Fig 2 / Fig 4): commit_len() adjacent blocks,
  // each certified (regular QC) or endorsed (f-QC), with consecutive
  // round numbers and the same view number; commit the oldest and its
  // ancestors. `cert` certifies the newest block of the candidate chain.
  if (!counts_for_commit(cert)) return;

  const std::uint32_t len = commit_len();
  smr::Certificate cur = cert;
  const smr::Block* oldest = nullptr;
  for (std::uint32_t k = 0; k + 1 < len; ++k) {
    const smr::Block* b = store_.get(cur.block_id);
    if (b == nullptr) {
      defer_commit(cur.block_id, cert);
      ensure_block(cur.block_id, hint);
      return;
    }
    const smr::Certificate& parent = b->parent;
    if (!counts_for_commit(parent)) return;
    if (parent.view != cert.view) return;        // same view number
    if (parent.round + 1 != cur.round) return;   // consecutive rounds
    cur = parent;
    oldest = nullptr;  // resolved below once the loop settles on `cur`
  }
  oldest = store_.get(cur.block_id);
  if (oldest == nullptr) {
    defer_commit(cur.block_id, cert);
    ensure_block(cur.block_id, hint);
    return;
  }
  if (ledger_.is_committed(oldest->id)) return;

  std::optional<smr::BlockId> missing;
  if (!ledger_.can_commit(*oldest, store_, &missing)) {
    defer_commit(*missing, cert);
    ensure_block(*missing, hint);
    return;
  }

  // Batch-reference gating: every block about to commit must have its
  // payload resolved — the ledger record and the application's commit
  // callback need the transaction bytes, and the output must be
  // byte-identical to inline mode. A replica that voted already resolved;
  // this only stalls catch-up paths, which pull the batch like any miss.
  for (const smr::Block* b = oldest;
       b != nullptr && !b->is_genesis() && !ledger_.is_committed(b->id);
       b = store_.get(b->parent.block_id)) {
    if (b->payload_resolved()) continue;
    const smr::BatchId ref = b->batch_ref();
    auto& waiting = waiting_commit_batch_[ref];
    bool queued = false;
    for (const auto& c : waiting) {
      if (c.block_id == cert.block_id) {
        queued = true;
        break;
      }
    }
    if (!queued) waiting.push_back(cert);
    start_batch_pull(ref, hint);
    return;
  }

  const std::size_t before = ledger_.size();
  const std::size_t n = ledger_.commit_chain(*oldest, store_, sim_->now());
  if (n > 0) {
    LOG_DEBUG("replica %u: committed %zu block(s), tip round %llu view %llu", id_, n,
              static_cast<unsigned long long>(oldest->round),
              static_cast<unsigned long long>(oldest->view));
    for (std::size_t i = before; i < ledger_.size(); ++i) {
      const smr::CommitRecord& rec = ledger_.records()[i];
      trace(obs::EventKind::kBlockCommitted, rec.view, rec.round, rec.height,
            smr::BlockIdHash{}(rec.id));
      span(obs::SpanStage::kCommit, crypto::digest_prefix_u64(rec.id), rec.view,
           rec.round, rec.height);
      if (on_commit_) on_commit_(rec);
    }
    prune_batch_waiters();
  }
}

}  // namespace repro::core
