#include "core/fallback.h"

#include "common/log.h"

namespace repro::core {

FallbackReplica::FallbackReplica(const ReplicaContext& ctx, FallbackParams fb)
    : ReplicaBase(ctx), fb_(fb) {
  REPRO_ASSERT(fb_.chain_len == 2 || fb_.chain_len == 3);
  r_vote_bar_.assign(params().n, 0);
  h_vote_bar_.assign(params().n, 0);
  // Byzantine-flood backstops (DESIGN.md §13.4). The periodic pruning
  // already bounds honest load far below these caps (views: horizon 8 +
  // floor 4; rounds: 64-round window; fb-votes: own chain only), so an
  // eviction here can only hit an attacker-created key.
  view_timeout_shares_.set_max_entries(64);
  coin_shares_.set_max_entries(64);
  fb_votes_.set_max_entries(256);
  votes_.set_max_entries(512);
  recover_from_wal();  // restores vote state if a WAL with history is attached
}

void FallbackReplica::start() {
  if (fault().crashed()) return;
  if (fault().spams_timeouts()) spam_timeouts();
  resume_batch_recovery();  // re-pull batches in flight at crash time
  if (fb_.always_fallback) {
    // ACE/VABA-style baseline: no synchronous path at all — every view is
    // a fallback, entered directly without timeouts. A recovered replica
    // that already entered the current view's fallback must not re-enter
    // (it could double-propose f-blocks); it waits for the view's coin.
    if (!fallback_entered_view_ || *fallback_entered_view_ < v_cur_) {
      enter_fallback(v_cur_, std::nullopt);
    }
    return;
  }
  arm_timer();
  maybe_propose_steady();
}

void FallbackReplica::on_fault_changed(const FaultSpec& old) {
  if (halted()) return;
  // Edge transitions with pending machinery: a newly spamming replica
  // starts its flood loop (the loop self-terminates when the fault
  // clears), and an un-crashed replica resumes participation — its round
  // timer was never armed (or its firing was swallowed by the crashed()
  // guard), so without a re-arm it would stay silent forever.
  if (!old.spams_timeouts() && fault().spams_timeouts()) spam_timeouts();
  if (old.crashed() && !fault().crashed()) {
    if (fb_.always_fallback) {
      if (!fallback_entered_view_ || *fallback_entered_view_ < v_cur_) {
        enter_fallback(v_cur_, std::nullopt);
      }
    } else if (!fallback_mode_) {
      arm_timer();
      maybe_propose_steady();
    }
  }
}

void FallbackReplica::encode_extra_state(Encoder& enc) const {
  enc.u64(last_proposed_round_);
  enc.bool_(fallback_entered_view_.has_value());
  enc.u64(fallback_entered_view_.value_or(0));
  enc.bool_(sent_coin_share_view_.has_value());
  enc.u64(sent_coin_share_view_.value_or(0));
  enc.u32(static_cast<std::uint32_t>(r_vote_bar_.size()));
  for (std::size_t j = 0; j < r_vote_bar_.size(); ++j) {
    enc.u64(r_vote_bar_[j]);
    enc.u32(h_vote_bar_[j]);
  }
}

bool FallbackReplica::restore_extra_state(Decoder& dec) {
  auto last_proposed = dec.u64();
  auto has_entered = dec.bool_();
  auto entered = dec.u64();
  auto has_coin_share = dec.bool_();
  auto coin_share = dec.u64();
  auto count = dec.u32();
  if (!last_proposed || !has_entered || !entered || !has_coin_share || !coin_share ||
      !count || *count != params().n) {
    return false;
  }
  std::vector<Round> r_bar(*count);
  std::vector<FallbackHeight> h_bar(*count);
  for (std::uint32_t j = 0; j < *count; ++j) {
    auto r = dec.u64();
    auto h = dec.u32();
    if (!r || !h) return false;
    r_bar[j] = *r;
    h_bar[j] = *h;
  }
  last_proposed_round_ = *last_proposed;
  if (*has_entered) fallback_entered_view_ = *entered;
  if (*has_coin_share) sent_coin_share_view_ = *coin_share;
  r_vote_bar_ = std::move(r_bar);
  h_vote_bar_ = std::move(h_bar);
  return true;
}

void FallbackReplica::handle_message(ReplicaId from, smr::Message&& msg) {
  if (auto* p = std::get_if<smr::ProposalMsg>(&msg)) {
    if (!fb_.always_fallback) handle_proposal(from, std::move(*p));
  } else if (auto* v = std::get_if<smr::VoteMsg>(&msg)) {
    if (!fb_.always_fallback) handle_vote(from, *v);
  } else if (auto* t = std::get_if<smr::FbTimeoutMsg>(&msg)) {
    if (!fb_.always_fallback) handle_fb_timeout(from, *t);
  } else if (auto* fp = std::get_if<smr::FbProposalMsg>(&msg)) {
    handle_fb_proposal(from, std::move(*fp));
  } else if (auto* fv = std::get_if<smr::FbVoteMsg>(&msg)) {
    handle_fb_vote(from, *fv);
  } else if (auto* fq = std::get_if<smr::FbQcMsg>(&msg)) {
    handle_fb_qc(from, *fq);
  } else if (auto* cs = std::get_if<smr::CoinShareMsg>(&msg)) {
    handle_coin_share(from, *cs);
  } else if (auto* cq = std::get_if<smr::CoinQcMsg>(&msg)) {
    if (!cached_verify(cq->qc)) {
      blame_cert(from);  // forged coin-QC
      return;
    }
    // Certificate relay (DESIGN.md §13): the sender may piggyback its best
    // f-QC of the just-elected leader. Recording it *before* Exit Fallback
    // lets a straggler lock the same endorsed chain the sender locked
    // (without it, replicas that never saw a leader certificate exit with
    // a stale lock and propose dead-end chains next view). No adoption
    // hook runs here — the certificate is the exit lock, not a chain to
    // extend.
    if (cq->leader_best) {
      const smr::Certificate& best = *cq->leader_best;
      if (best.kind == smr::CertKind::kFallback && best.view == cq->qc.view &&
          cached_verify(best)) {
        frontier_.observe(best);  // ignored unless it is the current view
        note_certificate(best, from);
      } else {
        blame_cert(from);  // malformed or forged piggyback
      }
    }
    process_coin(cq->qc);
  }
  // DiemBFT pacemaker messages (kDiemTimeout / kDiemTc) are not part of
  // this protocol and are ignored.
}

// ---------------------------------------------------------------------------
// Steady state
// ---------------------------------------------------------------------------

void FallbackReplica::lock_full(const smr::Certificate& cert, ReplicaId hint) {
  // Only regular QCs and *endorsed* f-QCs are "handled as a QC in any
  // steps of the protocol such as Lock, Commit, Advance Round" (§3).
  if (!counts_for_commit(cert)) return;
  // Lock state updates run before Advance Round: entering a new round can
  // make us propose, and the proposal must extend the updated qc_high.
  if (fb_.chain_len == 3) {
    lock_parent_rank(cert, hint);  // 2-chain lock (Fig 2)
  } else {
    lock_direct_rank(cert);  // 1-chain lock (Fig 4)
  }
  update_qc_high(cert);
  advance_round_from(cert);
  note_certificate(cert, hint);  // Commit scan
}

void FallbackReplica::advance_round_from(const smr::Certificate& cert) {
  const Round target = cert.round + 1;
  if (target <= r_cur_) return;
  r_cur_ = target;
  timed_out_cur_round_ = false;
  consecutive_timeouts_ = 0;  // a QC means progress
  if (r_cur_ % 64 == 0) prune_stale_pools();
  if (!fb_.always_fallback) arm_timer();
  maybe_propose_steady();
}

void FallbackReplica::prune_stale_pools() {
  // Shares for long-past rounds/views can never reach a quorum we still
  // care about; dropping them bounds memory on long runs.
  const Round round_floor = r_cur_ > 64 ? r_cur_ - 64 : 0;
  votes_.erase_if([round_floor](const std::tuple<smr::BlockId, Round, View>& key) {
    return std::get<1>(key) < round_floor;
  });
  const View view_floor = v_cur_ > 4 ? v_cur_ - 4 : 0;
  view_timeout_shares_.erase_if([view_floor](View v) { return v < view_floor; });
  coin_shares_.erase_if([view_floor](View v) { return v < view_floor; });
  fb_votes_.erase_if([this](const std::tuple<smr::BlockId, FallbackHeight>& key) {
    // Keep only shares for blocks of our current own chain.
    for (const auto& [h, id] : own_fblock_) {
      if (id == std::get<0>(key)) return false;
    }
    return true;
  });
}

void FallbackReplica::maybe_propose_steady() {
  if (fb_.always_fallback || fallback_mode_) return;
  if (leader_of(r_cur_) != id()) return;
  if (last_proposed_round_ >= r_cur_) return;
  if (fault().mute()) return;
  // Fig 2 vote rule demands r == qc.r + 1, so only propose when our
  // qc_high is exactly one round behind.
  if (qc_high().round + 1 != r_cur_) return;
  last_proposed_round_ = r_cur_;
  persist_vote_state();  // durable before the proposal leaves

  if (fault().equivocates()) {
    smr::Block a = smr::Block::make(qc_high(), r_cur_, v_cur_, 0, id(), next_payload());
    smr::Block b = smr::Block::make(qc_high(), r_cur_, v_cur_, 0, id(), next_payload());
    store_block(a, id());
    note_block_born(a.id);
    note_block_born(b.id);
    for (ReplicaId to = 0; to < params().n; ++to) {
      smr::ProposalMsg msg;
      msg.block = (to % 2 == 0) ? a : b;
      msg.coins = evidence_for(qc_high());
      send(to, std::move(msg));
    }
    ++stats_.proposals_sent;
    trace(obs::EventKind::kProposalSent, v_cur_, r_cur_);
    return;
  }

  // Pipelined payload (DESIGN.md §12): consume the batch pre-announced
  // while the previous round's QC was forming, or seal one now. Large
  // batches ride as a 32-byte reference; the bytes travel out of band.
  PayloadChoice pc = take_payload();
  smr::Block block = smr::Block::make(qc_high(), r_cur_, v_cur_, /*height=*/0, id(),
                                      std::move(pc.payload), pc.kind);
  store_block(block, id());
  note_block_born(block.id);
  smr::ProposalMsg msg;
  msg.block = std::move(block);
  msg.coins = evidence_for(qc_high());
  ++stats_.proposals_sent;
  trace(obs::EventKind::kProposalSent, v_cur_, r_cur_);
  multicast(std::move(msg));
}

void FallbackReplica::spam_timeouts() {
  // The loop dies when the fault is cleared or flipped mid-run
  // (set_fault); on_fault_changed restarts it on a fresh spam edge.
  if (halted() || !fault().spams_timeouts()) return;
  smr::FbTimeoutMsg msg;
  msg.view = v_cur_;
  msg.view_share = maybe_corrupt(
      crypto_sys().quorum_sigs.sign_share(id(), smr::ftc_signing_message(v_cur_)));
  msg.qc_high = qc_high();
  msg.coins = evidence_for(qc_high());
  multicast(std::move(msg));
  sim().schedule_after(config().base_timeout_us / 2, [this] { spam_timeouts(); });
}

void FallbackReplica::handle_proposal(ReplicaId from, smr::ProposalMsg&& msg) {
  smr::Block& block = msg.block;
  if (!block.id_consistent() || block.height != 0) return;
  if (block.proposer != from || leader_of(block.round) != from) return;
  if (!cached_verify(block.parent)) return;
  install_attached_coins(msg.coins);

  const smr::Certificate parent = block.parent;
  const Round r = block.round;
  const View v = block.view;
  const smr::BlockId block_id = block.id;
  maybe_forge_ghost_chain(block);  // kGhostChain only; no-op when honest
  // This block passed proposal authentication (signed envelope from the
  // round's leader): it — and only it — may earn this round's vote, even
  // when the vote is deferred until its batch resolves.
  note_vote_candidate(block);
  store_block(std::move(block), from);
  trace(obs::EventKind::kProposalReceived, v, r, 0, from);

  lock_full(parent, from);

  if (const smr::Block* stored = store().get(block_id)) try_vote_steady(*stored);
}

void FallbackReplica::try_vote_steady(const smr::Block& block) {
  // Fig 2 vote rule: not in fallback, r == r_cur, v == v_cur, r > r_vote,
  // qc.rank >= rank_lock, and r == qc.r + 1 (plus: we have not timed out
  // in this round).
  const Round r = block.round;
  const View v = block.view;
  if (block.height != 0) return;
  if (fallback_mode_ || timed_out_cur_round_) return;
  if (r != r_cur_ || v != v_cur_ || r <= r_vote_) return;
  // Proposal authentication: blocks that entered the store via catch-up
  // (BlockResponseMsg) never passed handle_proposal's leader check, and
  // the deferred retry below must not vote on them.
  if (block.proposer != leader_of(r)) return;
  if (!config().unsafe_trust_catchup_blocks && !vote_candidate(block)) return;
  if (rank_of(block.parent) < rank_lock()) return;
  if (r != block.parent.round + 1) return;
  // Batch-reference blocks: the vote waits for the payload — external
  // validity is a predicate on the transactions, and a replica must never
  // endorse bytes it has not seen. store_block already started the pull;
  // on_batch_resolved retries this exact rule (by then r_cur may have
  // moved on, in which case the checks above correctly yield no vote).
  if (!block.payload_resolved()) return;
  if (!externally_valid(block.txns())) return;
  if (fault().withholds_votes()) return;

  r_vote_ = r;
  persist_vote_state();  // durable before the vote leaves
  ++stats_.votes_sent;
  trace(obs::EventKind::kVoteSent, v, r);
  smr::VoteMsg vote;
  vote.block_id = block.id;
  vote.round = r;
  vote.view = v;
  vote.share = maybe_corrupt(crypto_sys().quorum_sigs.sign_share(
      id(), smr::cert_signing_message(smr::CertKind::kQuorum, block.id, r, v, 0, 0)));
  send(leader_of(r + 1), std::move(vote));

  // Pipelining: round r's QC is now forming at L_{r+1}; if that is us,
  // push the next batch onto the wire while we wait for it.
  maybe_announce_batch(r + 1);
}

void FallbackReplica::on_batch_resolved(const smr::Block& block, ReplicaId) {
  if (!fb_.always_fallback) try_vote_steady(block);
}

void FallbackReplica::handle_vote(ReplicaId from, const smr::VoteMsg& msg) {
  const auto key = std::make_tuple(msg.block_id, msg.round, msg.view);
  auto sig = add_share(votes_, key, from, msg.share, crypto_sys().quorum_sigs, [&] {
    return smr::cert_signing_message(smr::CertKind::kQuorum, msg.block_id, msg.round,
                                     msg.view, 0, 0);
  });
  if (!sig) return;
  smr::Certificate qc;
  qc.kind = smr::CertKind::kQuorum;
  qc.block_id = msg.block_id;
  qc.round = msg.round;
  qc.view = msg.view;
  qc.sig = *sig;
  note_verified(qc);  // the accumulator verified the combined signature
  trace(obs::EventKind::kQcFormed, msg.view, msg.round);
  span(obs::SpanStage::kQcFormed, crypto::digest_prefix_u64(msg.block_id),
       msg.view, msg.round);
  lock_full(qc, from);
}

void FallbackReplica::arm_timer() {
  if (timer_ != sim::kInvalidEvent) sim().cancel(timer_);
  const std::uint64_t factor =
      std::min<std::uint64_t>(1 + consecutive_timeouts_, config().max_timeout_factor);
  const Round round = r_cur_;
  timer_ = sim().schedule_after(config().base_timeout_us * factor,
                                [this, round] { on_timer_fired(round); });
}

void FallbackReplica::on_timer_fired(Round round) {
  if (halted() || fault().crashed() || round != r_cur_ || fallback_mode_) return;
  timer_ = sim::kInvalidEvent;
  // Fig 2 Timer and Timeout: set fallback-mode and multicast
  // <{v_cur}_i, qc_high>_i.
  fallback_mode_ = true;
  timed_out_cur_round_ = true;
  ++consecutive_timeouts_;
  ++stats_.timeouts_sent;
  smr::FbTimeoutMsg msg;
  msg.view = v_cur_;
  msg.view_share = maybe_corrupt(
      crypto_sys().quorum_sigs.sign_share(id(), smr::ftc_signing_message(v_cur_)));
  msg.qc_high = qc_high();
  msg.coins = evidence_for(qc_high());
  multicast(std::move(msg));
}

// ---------------------------------------------------------------------------
// Fallback
// ---------------------------------------------------------------------------

void FallbackReplica::handle_fb_timeout(ReplicaId from, const smr::FbTimeoutMsg& msg) {
  // Attached coins and qc_high stand on their own verification, so process
  // them before the share (whose validity the accumulator establishes
  // lazily — an invalid share must not suppress the catch-up either way).
  install_attached_coins(msg.coins);
  // "Upon receiving a valid timeout message, execute Lock" (on qc_high).
  if (cached_verify(msg.qc_high)) lock_full(msg.qc_high, from);

  if (msg.view < v_cur_) return;  // stale view; shares cannot help anymore
  if (any_ftc_formed_ && msg.view <= highest_ftc_formed_) return;
  auto sig = add_share(view_timeout_shares_, msg.view, from, msg.view_share,
                       crypto_sys().quorum_sigs,
                       [&] { return smr::ftc_signing_message(msg.view); });
  if (!sig) return;
  const smr::FallbackTC ftc{msg.view, *sig};
  note_verified(ftc);  // the accumulator verified the combined signature
  trace(obs::EventKind::kFtcFormed, msg.view, 0);
  highest_ftc_formed_ = msg.view;
  any_ftc_formed_ = true;
  handle_ftc(ftc);
}

void FallbackReplica::handle_ftc(const smr::FallbackTC& ftc) {
  // Enter Fallback: f-TC of view >= v_cur, unless we already entered a
  // fallback at that view or higher.
  if (ftc.view < v_cur_) return;
  if (fallback_entered_view_ && *fallback_entered_view_ >= ftc.view) return;
  enter_fallback(ftc.view, ftc);
}

void FallbackReplica::enter_fallback(View view, const std::optional<smr::FallbackTC>& ftc) {
  fallback_mode_ = true;
  v_cur_ = view;
  fallback_entered_view_ = view;
  entered_ftc_ = ftc;
  fallback_entered_at_ = sim().now();
  ++stats_.fallbacks_entered;
  trace(obs::EventKind::kViewEntered, view, r_cur_);
  trace(obs::EventKind::kFallbackEntered, view, r_cur_, 0,
        ftc ? obs::kFallbackReasonFtc : obs::kFallbackReasonAlways);
  if (timer_ != sim::kInvalidEvent) {
    sim().cancel(timer_);
    timer_ = sim::kInvalidEvent;
  }

  // Reset per-view voting state: r̄_vote[j] = h̄_vote[j] = 0 for all j.
  r_vote_bar_.assign(params().n, 0);
  h_vote_bar_.assign(params().n, 0);
  frontier_.reset(view);
  own_fblock_.clear();
  own_height_ = 0;
  top_fqc_proposers_.clear();
  top_fqc_signers_.clear();
  sent_top_fqc_ = false;
  persist_vote_state();  // durable before the height-1 f-block leaves

  // Multicast tc̄ together with our height-1 f-block
  // B̄ = [id, qc_high, qc_high.r + 1, v_cur, txn, 1, i].
  propose_fblock(1, qc_high(), ftc);

  if (fault().forges_fbqc()) forge_fbqc_attack(view);
}

void FallbackReplica::forge_fbqc_attack(View view) {
  // Byzantine adoption attack: advertise certificates that were never
  // formed. Two vectors, both of which honest replicas must reject and
  // blame (stats_.bad_certs_rejected / cert_blame):
  //  * forged top-height f-QCs — a *different* fake to each half of the
  //    network (equivocation) — aimed at the leader-election counting;
  //  * an f-block extending a forged height-1 f-QC, aimed at the adoption
  //    rule (mid-height certificates only travel as proposal parents).
  // The signatures are garbage: the threshold scheme makes forging a real
  // one infeasible, so verification is the entire defense.
  auto forge = [&](FallbackHeight height, std::uint32_t salt) {
    smr::Certificate fake;
    fake.kind = smr::CertKind::kFallback;
    Encoder enc;
    enc.u64(view);
    enc.u32(height);
    enc.u32(salt);
    enc.u32(id());
    fake.block_id = crypto::sha256_tagged("repro/forged-fqc", enc.result());
    fake.round = qc_high().round + height;
    fake.view = view;
    fake.height = height;
    fake.proposer = id();
    fake.sig.value = 0xBAD5EEDull + salt;
    return fake;
  };
  for (ReplicaId to = 0; to < params().n; ++to) {
    send(to, smr::FbQcMsg{forge(fb_.chain_len, to % 2), {}});
  }
  smr::Certificate parent = forge(1, 2);
  smr::FbProposalMsg msg;
  msg.block = smr::Block::make(parent, parent.round + 1, view, 2, id(), next_payload());
  multicast(std::move(msg));
}

void FallbackReplica::propose_fblock(FallbackHeight height, const smr::Certificate& parent,
                                     const std::optional<smr::FallbackTC>& ftc) {
  if (fault().crashed()) return;
  own_height_ = height;

  if (fault().equivocates()) {
    // Equivocating f-chain: conflicting f-blocks at the same height to
    // different halves. The per-proposer r̄_vote/h̄_vote voting rules stop
    // more than one from certifying per (view, round).
    smr::Block a =
        smr::Block::make(parent, parent.round + 1, v_cur_, height, id(), next_payload());
    smr::Block b =
        smr::Block::make(parent, parent.round + 1, v_cur_, height, id(), next_payload());
    own_fblock_[height] = a.id;
    store_block(a, id());
    note_block_born(a.id);
    note_block_born(b.id);
    for (ReplicaId to = 0; to < params().n; ++to) {
      smr::FbProposalMsg msg;
      msg.block = (to % 2 == 0) ? a : b;
      msg.ftc = ftc;
      msg.coins = evidence_for(parent);
      send(to, std::move(msg));
    }
    ++stats_.proposals_sent;
    trace(obs::EventKind::kProposalSent, v_cur_, parent.round + 1, height);
    return;
  }

  smr::Block block = smr::Block::make(parent, parent.round + 1, v_cur_, height, id(),
                                      next_payload());
  own_fblock_[height] = block.id;
  store_block(block, id());
  note_block_born(block.id);
  smr::FbProposalMsg msg;
  msg.block = std::move(block);
  msg.ftc = ftc;
  msg.coins = evidence_for(parent);
  ++stats_.proposals_sent;
  trace(obs::EventKind::kProposalSent, v_cur_, parent.round + 1, height);
  multicast(std::move(msg));
}

void FallbackReplica::handle_fb_proposal(ReplicaId from, smr::FbProposalMsg&& msg) {
  smr::Block& block = msg.block;
  if (!block.id_consistent()) return;
  // F-blocks always inline their payload: the fallback runs precisely
  // when the network is bad, so its liveness must not hinge on a second
  // dissemination round-trip. A reference here is a protocol violation.
  if (block.is_batch_ref()) return;
  if (block.height < 1 || block.height > fb_.chain_len) return;
  if (block.proposer != from) return;
  if (!cached_verify(block.parent)) {
    blame_cert(from);  // f-block built on a forged certificate
    return;
  }
  install_attached_coins(msg.coins);

  // An attached valid f-TC can pull us into the fallback (Enter Fallback
  // triggers on receiving an f-TC from any message).
  if (msg.ftc && cached_verify(*msg.ftc)) handle_ftc(*msg.ftc);

  const smr::Certificate parent = block.parent;
  const FallbackHeight h = block.height;
  const Round r = block.round;
  const View v = block.view;
  const ReplicaId j = from;
  const smr::BlockId block_id = block.id;
  store_block(std::move(block), from);
  trace(obs::EventKind::kProposalReceived, v, r, h, from);

  // Regular-QC parents feed Lock; f-QC parents are recorded (and drive
  // adoption). Endorsed f-QC parents also feed Lock via lock_full.
  if (parent.kind == smr::CertKind::kFallback) {
    note_fallback_qc(parent, from);
  }
  lock_full(parent, from);

  // ---- Fallback Vote (Fig 2) ----
  if (!fallback_mode_ || v != v_cur_) return;
  if (h <= h_vote_bar_[j]) return;
  if (h == 1) {
    // Height 1: needs the f-TC of the current view and a parent QC with
    // qc.rank >= rank_lock, r == qc.r + 1. (The always-fallback baseline
    // has no timeouts, hence no f-TC to check.)
    const bool ftc_ok =
        fb_.always_fallback ||
        (msg.ftc && cached_verify(*msg.ftc) && msg.ftc->view == v_cur_);
    if (!ftc_ok) return;
    if (parent.kind == smr::CertKind::kFallback && !is_endorsed(parent)) return;
    if (rank_of(parent) < rank_lock()) return;
    if (r != parent.round + 1) return;
  } else {
    // Height 2..chain_len: parent must be the f-QC one height below, same
    // view, consecutive round, and fresh for this proposer.
    if (parent.kind != smr::CertKind::kFallback) return;
    if (parent.view != v_cur_) return;
    if (r != parent.round + 1) return;
    if (r <= r_vote_bar_[j]) return;
    if (h != parent.height + 1) return;
  }

  // Certificate relay (DESIGN.md §13): if we already hold the completed
  // f-QC for *this very block* (it arrived first as the parent of the
  // next proposal, or in an FbQcMsg — common under asynchrony), our vote
  // share is redundant: 2f+1 other shares already combined into the
  // certificate we hold. Skip the unicast; do NOT advance the vote bars,
  // so this stays a pure send-suppression. The condition is keyed on the
  // exact block id — never on (owner, round) or (owner, height), which
  // are not comparable across the re-proposed chain of a restarted owner.
  if (config().cert_relay && smr::relay_active(params().n)) {
    const smr::Certificate* have = store().certificate_for(block_id);
    if (have != nullptr && have->kind == smr::CertKind::kFallback && have->height == h) {
      ++stats_.fb_votes_thinned;
      return;
    }
  }

  if (!externally_valid(store().get(block_id)->payload)) return;
  if (fault().withholds_votes()) return;
  r_vote_bar_[j] = r;
  h_vote_bar_[j] = h;
  persist_vote_state();  // durable before the fallback vote leaves
  ++stats_.votes_sent;
  trace(obs::EventKind::kVoteSent, v, r, h);
  smr::FbVoteMsg vote;
  vote.block_id = block_id;
  vote.round = r;
  vote.view = v;
  vote.height = h;
  vote.chain_owner = j;
  vote.share = maybe_corrupt(crypto_sys().quorum_sigs.sign_share(
      id(), smr::cert_signing_message(smr::CertKind::kFallback, block_id, r, v, h, j)));
  send(j, std::move(vote));
}

void FallbackReplica::handle_fb_vote(ReplicaId from, const smr::FbVoteMsg& msg) {
  if (msg.chain_owner != id() || msg.view != v_cur_) return;
  auto it = own_fblock_.find(msg.height);
  if (it == own_fblock_.end() || it->second != msg.block_id) return;
  // The fb_votes_ pool is keyed by (block, height) but the signing message
  // also covers round and view; pin them against our stored f-block so a
  // vote with mismatched fields (whose share signs a different message)
  // can never seed or pollute the accumulator for this block.
  const smr::Block* own = store().get(msg.block_id);
  if (own == nullptr || own->round != msg.round || own->view != msg.view ||
      own->height != msg.height) {
    return;
  }

  const auto key = std::make_tuple(msg.block_id, msg.height);
  auto sig = add_share(fb_votes_, key, from, msg.share, crypto_sys().quorum_sigs, [&] {
    return smr::cert_signing_message(smr::CertKind::kFallback, msg.block_id, msg.round,
                                     msg.view, msg.height, id());
  });
  if (!sig) return;
  smr::Certificate fqc;
  fqc.kind = smr::CertKind::kFallback;
  fqc.block_id = msg.block_id;
  fqc.round = msg.round;
  fqc.view = msg.view;
  fqc.height = msg.height;
  fqc.proposer = id();
  fqc.sig = *sig;
  note_verified(fqc);  // the accumulator verified the combined signature
  trace(obs::EventKind::kFBlockCertified, msg.view, msg.round, msg.height);
  span(obs::SpanStage::kQcFormed, crypto::digest_prefix_u64(msg.block_id),
       msg.view, msg.round, msg.height);
  note_fallback_qc(fqc, id());

  // ---- Fallback Propose (Fig 2) ----
  if (!fallback_mode_) return;
  if (fqc.height == fb_.chain_len) {
    if (!sent_top_fqc_) {
      sent_top_fqc_ = true;
      multicast(smr::FbQcMsg{fqc, {}});
    }
  } else if (own_height_ == fqc.height) {
    propose_fblock(fqc.height + 1, fqc, std::nullopt);
  }
}

void FallbackReplica::note_fallback_qc(const smr::Certificate& fqc, ReplicaId hint) {
  if (fqc.view != v_cur_) {
    note_certificate(fqc, hint);  // still feed the commit scan
    return;
  }
  note_certificate(fqc, hint);
  frontier_.observe(fqc);

  if (!fallback_mode_) return;

  // §3 optimization / Fig 4: extend the first certified f-block we see at
  // each height instead of waiting for our own chain. With fb_adopt on,
  // the always-fallback baseline applies the rule *strictly* — adopt only
  // a chain certified at a higher position than our own (the §3 wording).
  // Adopting at an equal position forks our chain onto a foreign proposer
  // mid-chain, and such mixed-proposer chains can never satisfy the
  // endorsed 3-chain commit rule; at scale that starves decisions
  // entirely (DESIGN.md §13).
  const bool strict = fb_.always_fallback && config().fb_adopt;
  const bool behind = strict ? own_height_ < fqc.height : own_height_ <= fqc.height;
  if (fb_.adoption_enabled() && fqc.height < fb_.chain_len && behind) {
    trace(obs::EventKind::kChainAdopted, fqc.view, fqc.round, fqc.height, fqc.proposer);
    propose_fblock(fqc.height + 1, fqc, std::nullopt);
  }
  // Fig 4 Fallback Propose: re-sign and multicast the first completed
  // top-height f-QC we see (distinct-signer election counting).
  if (fb_.adoption_enabled() && fqc.height == fb_.chain_len && !sent_top_fqc_) {
    sent_top_fqc_ = true;
    multicast(smr::FbQcMsg{fqc, {}});
  }
}

void FallbackReplica::handle_fb_qc(ReplicaId from, const smr::FbQcMsg& msg) {
  const smr::Certificate& fqc = msg.fqc;
  if (fqc.kind != smr::CertKind::kFallback || fqc.height != fb_.chain_len) {
    blame_cert(from);  // honest replicas only multicast well-formed top f-QCs
    return;
  }
  if (!cached_verify(fqc)) {
    blame_cert(from);  // forged certificate — the adoption attack vector
    return;
  }
  if (fqc.view != v_cur_) return;
  note_fallback_qc(fqc, from);

  // Leader Election counting: base 3-chain protocol counts distinct
  // completed chains (proposers); adoption/2-chain modes count distinct
  // signers of the multicast f-QCs (Fig 4: "signed by distinct replicas").
  if (fb_.adoption_enabled()) {
    top_fqc_signers_.insert(from);
  } else {
    top_fqc_proposers_.insert(fqc.proposer);
  }
  maybe_trigger_election();
}

void FallbackReplica::maybe_trigger_election() {
  if (!fallback_mode_) return;
  if (sent_coin_share_view_ && *sent_coin_share_view_ >= v_cur_) return;
  const std::size_t count =
      fb_.adoption_enabled() ? top_fqc_signers_.size() : top_fqc_proposers_.size();
  if (count < params().quorum()) return;
  // Certificate relay (DESIGN.md §13): once the coin-QC itself has been
  // observed, our share can no longer contribute to assembling it — the
  // aggregate certificate supersedes the share traffic.
  if (config().cert_relay && smr::relay_active(params().n) &&
      coin_for(v_cur_) != nullptr) {
    ++stats_.coin_shares_suppressed;
    sent_coin_share_view_ = v_cur_;
    return;
  }
  sent_coin_share_view_ = v_cur_;
  smr::CoinShareMsg msg;
  msg.view = v_cur_;
  msg.share = maybe_corrupt(crypto_sys().coin.coin_share(id(), v_cur_));
  multicast(std::move(msg));
}

void FallbackReplica::handle_coin_share(ReplicaId from, const smr::CoinShareMsg& msg) {
  if (msg.view < v_cur_) return;
  // Honest replicas only share the coin of a view whose fallback they are
  // in, so anything far ahead of us is Byzantine pool-stuffing: without a
  // horizon the coin_shares_ pool grows without bound between prunes.
  if (msg.view > v_cur_ + kCoinViewHorizon) return;
  auto sig = add_share(coin_shares_, msg.view, from, msg.share, crypto_sys().coin.scheme(),
                       [&] { return crypto::CommonCoin::coin_message(msg.view); });
  if (!sig) return;
  const smr::CoinQC coin{msg.view, *sig};
  note_verified(coin);  // the accumulator verified the combined signature
  trace(obs::EventKind::kCoinQcFormed, msg.view, 0);
  process_coin(coin);
}

void FallbackReplica::process_coin(const smr::CoinQC& coin) {
  const bool fresh = install_coin(coin);
  if (fresh) {
    // Exit Fallback: forward the coin-QC. With certificate relay on, only
    // the view's f+1 designated relayers multicast it — shares were
    // multicast, so every honest replica assembles the coin-QC itself;
    // the relay only shaves latency for stragglers, and f+1 designated
    // relayers always include an honest one (DESIGN.md §13).
    if (!config().cert_relay ||
        smr::is_coin_relayer(id(), coin.view, params().n, params().f)) {
      smr::CoinQcMsg relay{coin, std::nullopt};
      if (config().cert_relay && smr::relay_active(params().n) &&
          frontier_.view() == coin.view) {
        // Piggyback the elected leader's best f-QC so a straggler exits
        // with the same endorsed lock without waiting for the f-QC to
        // arrive separately.
        const ReplicaId leader = coin.leader(crypto_sys());
        if (const smr::Certificate* best = frontier_.best_of(leader)) {
          relay.leader_best = *best;
        }
      }
      multicast(std::move(relay));
    } else {
      ++stats_.coin_relays_suppressed;
    }
  }
  if (coin.view < v_cur_) return;

  // ---- Exit Fallback (Fig 2) ----
  const ReplicaId leader = coin.leader(crypto_sys());
  trace(obs::EventKind::kLeaderElected, coin.view, 0, 0, leader);
  const bool was_in_this_fallback =
      fallback_mode_ && fallback_entered_view_ && *fallback_entered_view_ == coin.view;
  if (was_in_this_fallback) {
    // r_vote <- r̄_vote[L] (a plain assignment: it may *lower* r_vote,
    // which is safe because vote deduplication is per view, and necessary
    // for liveness when the elected chain is rooted below our last vote).
    r_vote_ = r_vote_bar_[leader];
    ++stats_.fallbacks_exited;
    const SimTime duration = sim().now() - fallback_entered_at_;
    stats_.fallback_time_total_us += duration;
    if (fallback_duration_hist() != nullptr) {
      fallback_duration_hist()->observe(duration);
    }
    trace(obs::EventKind::kFallbackExited, coin.view, 0, 0, leader);
  }
  fallback_mode_ = false;
  v_cur_ = coin.view + 1;
  timed_out_cur_round_ = false;
  consecutive_timeouts_ = 0;
  trace(obs::EventKind::kViewEntered, v_cur_, r_cur_);
  persist_vote_state();  // view change + adopted r_vote become durable

  // Execute Lock on the highest (now endorsed) f-QC of the elected leader
  // that we recorded during the fallback.
  if (was_in_this_fallback) {
    const smr::Certificate* best = frontier_.best_of(leader);
    if (best != nullptr) lock_full(*best, leader);
  }

  LOG_DEBUG("replica %u: exited fallback of view %llu, leader %u, new view %llu", id(),
            static_cast<unsigned long long>(coin.view), leader,
            static_cast<unsigned long long>(v_cur_));

  if (fb_.always_fallback) {
    enter_fallback(v_cur_, std::nullopt);
    return;
  }
  // Restart the round timer so a dead steady state (e.g. the elected
  // leader was Byzantine and produced no endorsed chain) times out into
  // the next fallback instead of deadlocking. The brief announcement
  // leaves this implicit; without it no timer would be armed when the
  // exit does not advance the round.
  arm_timer();
  maybe_propose_steady();
}

std::vector<smr::CoinQC> FallbackReplica::evidence_for(const smr::Certificate& cert) const {
  std::vector<smr::CoinQC> coins;
  if (cert.kind == smr::CertKind::kFallback) {
    if (const smr::CoinQC* c = coin_for(cert.view); c != nullptr) coins.push_back(*c);
  }
  return coins;
}

void FallbackReplica::install_attached_coins(const std::vector<smr::CoinQC>& coins) {
  for (const auto& c : coins) {
    if (cached_verify(c)) process_coin(c);
  }
}

}  // namespace repro::core
