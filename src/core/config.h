// Protocol configuration and the leader schedule.
#pragma once

#include <cstdint>
#include <functional>

#include "common/bytes.h"
#include "common/types.h"
#include "core/faults.h"

namespace repro::core {

/// External validity predicate (paper §2, validated BFT SMR / Cachin et
/// al.): applied to a block's transaction batch before the replica votes
/// for it, so "any committed transactions [are] externally valid".
using ExternalValidator = std::function<bool(BytesView payload)>;

struct ProtocolConfig {
  /// Fault injected into this replica (kNone for honest replicas).
  FaultSpec fault;

  /// Optional external-validity predicate. Unset = every batch is valid.
  ExternalValidator external_validator;

  /// Base round timer T_r in simulated microseconds. Grows linearly with
  /// consecutive timeouts (so under partial synchrony it eventually
  /// exceeds the post-GST Δ).
  SimTime base_timeout_us = 400'000;

  /// Cap on the timeout growth factor.
  std::uint32_t max_timeout_factor = 8;

  /// Transaction batch bytes per block (0 = empty blocks; complexity
  /// benches use 0 so counted bytes are pure protocol overhead).
  std::size_t batch_bytes = 0;

  /// Adaptive batch sizing ceiling. 0 disables adaptation: every batch is
  /// exactly batch_bytes. When > batch_bytes, the mempool grows the batch
  /// toward this cap while its backlog outpaces sealing, and shrinks back
  /// toward batch_bytes as in-flight rounds pile up (DESIGN.md §12.3).
  std::size_t batch_bytes_max = 0;

  /// Pipelined proposal path (DESIGN.md §12): blocks may carry a 32-byte
  /// batch reference instead of the payload, with the batch disseminated
  /// out of band. Certificates and vote rules are untouched; a replica
  /// just defers its vote until the reference resolves. Off = every block
  /// inlines its payload (differential determinism pin covers both).
  bool batch_refs = true;

  /// Only reference batches larger than this; smaller payloads (and the
  /// empty batches of complexity benches) ship inline, since a 32-byte
  /// digest plus an announcement round-trip costs more than it saves.
  std::size_t batch_ref_min_bytes = 256;

  /// Upcoming leader multicasts its sealed batch while still waiting for
  /// the previous round's QC (the optimistic pre-broadcast). Off forces
  /// every reference through the pull path — used by liveness tests.
  bool batch_announce = true;

  /// Byte bound on the per-replica content-addressed batch cache.
  std::size_t batch_store_bytes = 64u << 20;

  /// Retry cadence for pulling a missing batch, and how many replicas to
  /// try (rotating from the proposer) before counting a pull timeout and
  /// leaving recovery to the round timer / fallback.
  SimTime batch_pull_timeout_us = 50'000;
  std::uint32_t batch_pull_retries = 10;

  /// Paper §3.1 "Rules for Leader Rotation": the same leader serves this
  /// many consecutive rounds (4 in the paper — long enough to build a
  /// 3-chain and hand over).
  std::uint32_t leader_rotation = 4;

  /// Capacity of the verified-certificate cache (LRU entries). Bounded so
  /// a Byzantine flood of distinct valid certificates cannot grow replica
  /// memory without limit; the working set of a view is far smaller.
  std::size_t cert_cache_capacity = 1024;

  /// Capacity of the decode-once delivery cache (LRU entries), bounded
  /// for the same reason as the certificate cache. Only consulted when a
  /// replica constructs its own cache; harness-shared caches size
  /// themselves.
  std::size_t decode_cache_capacity = 1024;

  /// Optimistic quorum assembly (combine-then-verify): buffer incoming
  /// threshold-signature shares unverified and check one combined
  /// signature per certificate, falling back to per-share verification
  /// only when that check fails. Off = eager per-share verification on
  /// arrival (kept for differential testing; both modes produce
  /// byte-identical ledgers — see docs/PROTOCOL.md §9).
  bool lazy_share_verify = true;

  /// §3 "Optimization in Practice", applied strictly (DESIGN.md §13): in
  /// the always-fallback baseline, adopt a certified f-block only when it
  /// sits at a *higher* position than our own chain — the paper's "at a
  /// higher position" wording taken literally. The seed adopted at
  /// equal-or-higher positions, which forks a replica's chain onto a
  /// foreign proposer mid-chain; such mixed-proposer chains can never
  /// satisfy the endorsed consecutive commit rule, and at n >= 50 under
  /// asynchrony that starves decisions entirely. Strict adoption keeps
  /// every replica's chain leader-pure, so the elected leader's own
  /// 3-chain commits. Only changes which blocks we *propose*, never which
  /// certificates exist, so Lemmas 1–3 are untouched (docs/PROTOCOL.md
  /// §13). Off = the seed's equal-height adoption, byte-identical to
  /// earlier releases on seeded runs.
  bool fb_adopt = true;

  /// Certificate relay (DESIGN.md §13): replace redundant all-to-all
  /// share rebroadcast with aggregate-certificate forwarding where the
  /// protocol allows — a replica holding a completed f-QC for a chain
  /// skips its (now pointless) fallback vote for that chain, and the
  /// coin-QC is re-multicast by f+1 designated relayers per view instead
  /// of by all n replicas (every honest replica still assembles the coin
  /// from the multicast shares; the relay only serves stragglers). Off =
  /// vote-always / relay-everywhere, byte-identical to earlier releases.
  bool cert_relay = true;

  /// TEST-ONLY planted bug: re-opens the deferred-vote hole the pipelined
  /// proposal path had before its review fixes — blocks stored through
  /// the catch-up channel (BlockResponseMsg) become vote candidates as if
  /// they had arrived as authenticated proposals. With a kGhostChain
  /// adversary this lets forged ancestry get certified and committed,
  /// diverging honest ledgers. Exists so the chaos fuzzer's planted-bug
  /// test can prove it detects and shrinks a real safety violation.
  /// Never enable outside that test.
  bool unsafe_trust_catchup_blocks = false;
};

/// The predefined leader sequence L_1, L_2, ... (rounds are 1-based).
inline ReplicaId round_leader(Round round, std::uint32_t n, std::uint32_t rotation) {
  return static_cast<ReplicaId>(((round - 1) / rotation) % n);
}

}  // namespace repro::core
