// Shamir secret sharing and Lagrange interpolation over GF(2^61 - 1).
//
// The threshold-signature and common-coin schemes are built on top of
// this: a trusted dealer shares a secret with a degree-(t-1) polynomial,
// and any t shares reconstruct (interpolate at x = 0).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "crypto/field.h"

namespace repro::crypto {

/// One share: the polynomial evaluated at x = id + 1 (x = 0 is the secret
/// itself and is never handed out).
struct Share {
  ReplicaId id = 0;
  Fp value;
};

/// Deal `n` shares of `secret` with reconstruction threshold `t`
/// (any t shares suffice, any t-1 reveal nothing).
std::vector<Share> deal_shares(Fp secret, std::uint32_t n, std::uint32_t t, Rng& rng);

/// Lagrange coefficient λ_i at x = 0 for the set of x-coordinates
/// {id+1 : id in ids}; `index` selects which member the coefficient is for.
Fp lagrange_coefficient_at_zero(std::span<const ReplicaId> ids, std::size_t index);

/// Reconstruct the secret from exactly-threshold-many distinct shares.
/// Caller must pass >= t distinct shares; only the first t are used.
Fp reconstruct_secret(std::span<const Share> shares, std::uint32_t t);

}  // namespace repro::crypto
