// Shamir secret sharing and Lagrange interpolation over GF(2^61 - 1).
//
// The threshold-signature and common-coin schemes are built on top of
// this: a trusted dealer shares a secret with a degree-(t-1) polynomial,
// and any t shares reconstruct (interpolate at x = 0).
#pragma once

#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "crypto/field.h"

namespace repro::crypto {

/// One share: the polynomial evaluated at x = id + 1 (x = 0 is the secret
/// itself and is never handed out).
struct Share {
  ReplicaId id = 0;
  Fp value;
};

/// Deal `n` shares of `secret` with reconstruction threshold `t`
/// (any t shares suffice, any t-1 reveal nothing).
std::vector<Share> deal_shares(Fp secret, std::uint32_t n, std::uint32_t t, Rng& rng);

/// Lagrange coefficient λ_i at x = 0 for the set of x-coordinates
/// {id+1 : id in ids}; `index` selects which member the coefficient is for.
Fp lagrange_coefficient_at_zero(std::span<const ReplicaId> ids, std::size_t index);

/// All t coefficients λ_i(0) for `ids` at once. Equivalent to calling
/// lagrange_coefficient_at_zero for each index, but shares the numerator
/// products and batch-inverts the denominators (Montgomery's trick), so the
/// whole vector costs one field inversion instead of t.
std::vector<Fp> lagrange_coefficients_at_zero(std::span<const ReplicaId> ids);

/// Bounded memo of Lagrange coefficient vectors keyed by the exact signer
/// set (order-sensitive: callers pass ids in a canonical order). Quorums
/// repeat heavily round over round — with n replicas there are few distinct
/// first-t signer sets in a steady run — so repeat lookups cost a hash of t
/// ids instead of ~t² field ops. LRU-evicts beyond `capacity` entries.
class LagrangeCache {
 public:
  explicit LagrangeCache(std::size_t capacity = 64);

  /// Coefficients for `ids`; computed on miss, memoized on return.
  /// The reference is valid until the next coefficients() call.
  const std::vector<Fp>& coefficients(std::span<const ReplicaId> ids);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::size_t size() const { return entries_.size(); }

  /// Approximate heap footprint. Entries are created lazily on cache
  /// miss and LRU-bounded by `capacity`, so the worst case at committee
  /// size n is capacity * (2f+1) * (sizeof(ReplicaId) + sizeof(Fp)) plus
  /// index overhead — ~160 KiB per replica at n=300 with the default 64
  /// entries, reached only after 64 distinct signer sets actually combine.
  std::size_t approx_bytes() const {
    std::size_t total = 0;
    for (const auto& e : entries_) {
      total += sizeof(Entry) + e.ids.capacity() * sizeof(ReplicaId) + e.coeffs.capacity() * sizeof(Fp);
      total += e.ids.capacity() * sizeof(ReplicaId) + 64;  // index key copy + node
    }
    return sizeof(LagrangeCache) + total;
  }

 private:
  struct Entry {
    std::vector<ReplicaId> ids;
    std::vector<Fp> coeffs;
  };
  struct IdsHash {
    std::size_t operator()(const std::vector<ReplicaId>& ids) const;
  };

  std::size_t capacity_;
  std::list<Entry> entries_;  // front = most recently used
  std::unordered_map<std::vector<ReplicaId>, std::list<Entry>::iterator, IdsHash> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Reconstruct the secret from exactly-threshold-many distinct shares.
/// Caller must pass >= t distinct shares; only the first t are used.
Fp reconstruct_secret(std::span<const Share> shares, std::uint32_t t);

}  // namespace repro::crypto
