#include "crypto/threshold.h"

#include <algorithm>

#include "common/assert.h"
#include "common/codec.h"

namespace repro::crypto {

ThresholdScheme ThresholdScheme::deal(std::uint32_t n, std::uint32_t t, Rng& rng) {
  ThresholdScheme s;
  s.n_ = n;
  s.t_ = t;
  s.secret_ = Fp(rng.next());
  auto dealt = deal_shares(s.secret_, n, t, rng);
  s.shares_.resize(n);
  for (const auto& sh : dealt) s.shares_[sh.id] = sh.value;
  return s;
}

Fp ThresholdScheme::message_point(BytesView message) const {
  const Digest d = sha256_tagged("repro/thresh-msg", message);
  Fp h(digest_prefix_u64(d));
  if (h.is_zero()) h = Fp(1);  // keep the point nonzero so shares never degenerate
  return h;
}

PartialSig ThresholdScheme::sign_share(ReplicaId signer, BytesView message) const {
  REPRO_ASSERT(signer < n_);
  const Fp h = message_point(message);
  return PartialSig{signer, (shares_[signer] * h).value()};
}

bool ThresholdScheme::verify_share(const PartialSig& share, BytesView message) const {
  return verify_share_at(share, message_point(message));
}

bool ThresholdScheme::verify_share_at(const PartialSig& share, Fp point) const {
  if (share.signer >= n_) return false;
  return (shares_[share.signer] * point).value() == share.value;
}

std::optional<ThresholdSig> ThresholdScheme::combine(std::span<const PartialSig> shares,
                                                     BytesView message) const {
  // Duplicate signers are a caller bug (or an equivocating sender that the
  // caller failed to filter): reject the whole batch instead of silently
  // picking one of the conflicting shares.
  for (std::size_t i = 0; i < shares.size(); ++i) {
    for (std::size_t j = i + 1; j < shares.size(); ++j) {
      if (shares[i].signer == shares[j].signer) return std::nullopt;
    }
  }

  // Collect the first t valid signers.
  const Fp h = message_point(message);
  std::vector<PartialSig> picked;
  picked.reserve(t_);
  for (const auto& sh : shares) {
    if (!verify_share_at(sh, h)) continue;
    picked.push_back(sh);
    if (picked.size() == t_) break;
  }
  if (picked.size() < t_) return std::nullopt;

  std::vector<ReplicaId> ids;
  ids.reserve(t_);
  for (const auto& p : picked) ids.push_back(p.signer);

  return combine_with_coefficients(picked, lagrange_coefficients_at_zero(ids));
}

ThresholdSig ThresholdScheme::combine_with_coefficients(std::span<const PartialSig> shares,
                                                        std::span<const Fp> coefficients) const {
  REPRO_ASSERT(shares.size() == coefficients.size());
  REPRO_ASSERT(shares.size() == t_);
  Fp combined;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    combined += Fp(shares[i].value) * coefficients[i];
  }
  return ThresholdSig{combined.value()};
}

bool ThresholdScheme::verify(const ThresholdSig& sig, BytesView message) const {
  return verify_at(sig, message_point(message));
}

bool ThresholdScheme::verify_at(const ThresholdSig& sig, Fp point) const {
  return (secret_ * point).value() == sig.value;
}

CommonCoin CommonCoin::deal(std::uint32_t n, std::uint32_t f_plus_1, Rng& rng) {
  CommonCoin c;
  c.n_ = n;
  c.scheme_ = ThresholdScheme::deal(n, f_plus_1, rng);
  return c;
}

Bytes CommonCoin::coin_message(View view) {
  Encoder enc;
  enc.str("repro/coin");
  enc.u64(view);
  return std::move(enc).result();
}

PartialSig CommonCoin::coin_share(ReplicaId signer, View view) const {
  return scheme_.sign_share(signer, coin_message(view));
}

bool CommonCoin::verify_coin_share(const PartialSig& share, View view) const {
  return scheme_.verify_share(share, coin_message(view));
}

std::optional<ThresholdSig> CommonCoin::combine(std::span<const PartialSig> shares,
                                                View view) const {
  return scheme_.combine(shares, coin_message(view));
}

bool CommonCoin::verify(const ThresholdSig& sig, View view) const {
  return scheme_.verify(sig, coin_message(view));
}

ReplicaId CommonCoin::leader_from(const ThresholdSig& sig) const {
  // The combined value is s·H("coin"||v): hash it once more so the leader
  // index is uniform even though field values cluster below 2^61.
  Encoder enc;
  enc.u64(sig.value);
  const Digest d = sha256_tagged("repro/coin-leader", enc.result());
  return static_cast<ReplicaId>(digest_prefix_u64(d) % n_);
}

}  // namespace repro::crypto
