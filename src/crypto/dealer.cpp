#include "crypto/dealer.h"

namespace repro::crypto {

std::shared_ptr<const CryptoSystem> CryptoSystem::deal(QuorumParams params,
                                                       std::uint64_t seed) {
  Rng rng(seed);
  auto sys = std::make_shared<CryptoSystem>();
  sys->params = params;
  sys->signatures = SignatureScheme::deal(params.n, rng);
  sys->quorum_sigs = ThresholdScheme::deal(params.n, params.quorum(), rng);
  sys->coin = CommonCoin::deal(params.n, params.coin_quorum(), rng);
  return sys;
}

}  // namespace repro::crypto
