// SHA-256 (FIPS 180-4), implemented from scratch.
//
// This is the collision-resistant hash H(.) the paper assumes: block ids,
// threshold-signature message points and the common coin all derive from
// it. Validated against the official FIPS test vectors in the unit tests.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace repro::crypto {

using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(BytesView data);
  /// Finalizes and returns the digest. The context must be reset() before
  /// reuse.
  Digest finalize();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::uint64_t bit_len_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
};

/// One-shot convenience.
Digest sha256(BytesView data);

/// Domain-separated hash: sha256(tag_len || tag || data). Used so block
/// ids, vote messages, coin inputs etc. can never collide across domains.
Digest sha256_tagged(std::string_view tag, BytesView data);

/// First 8 bytes of a digest as a little-endian integer (for hash maps
/// and field-element derivation).
std::uint64_t digest_prefix_u64(const Digest& d);

}  // namespace repro::crypto
