// Arithmetic in GF(p) with p = 2^61 - 1 (a Mersenne prime).
//
// The threshold-signature and common-coin schemes do real Shamir secret
// sharing and Lagrange interpolation over this field. A Mersenne prime
// makes reduction branch-free and fast.
#pragma once

#include <cstdint>

#include "common/assert.h"

namespace repro::crypto {

/// Field element of GF(2^61 - 1). Value is kept reduced in [0, p).
class Fp {
 public:
  static constexpr std::uint64_t kP = (1ull << 61) - 1;

  constexpr Fp() = default;
  /// Reduces any u64 into the field.
  constexpr explicit Fp(std::uint64_t v) : v_(reduce64(v)) {}

  constexpr std::uint64_t value() const { return v_; }
  constexpr bool is_zero() const { return v_ == 0; }

  friend constexpr Fp operator+(Fp a, Fp b) {
    std::uint64_t s = a.v_ + b.v_;  // < 2^62, no overflow
    if (s >= kP) s -= kP;
    return from_reduced(s);
  }

  friend constexpr Fp operator-(Fp a, Fp b) {
    std::uint64_t s = a.v_ + kP - b.v_;
    if (s >= kP) s -= kP;
    return from_reduced(s);
  }

  friend constexpr Fp operator*(Fp a, Fp b) {
    const unsigned __int128 prod = static_cast<unsigned __int128>(a.v_) * b.v_;
    // Mersenne reduction: x = hi*2^61 + lo  =>  x mod p = hi + lo (mod p).
    const std::uint64_t lo = static_cast<std::uint64_t>(prod) & kP;
    const std::uint64_t hi = static_cast<std::uint64_t>(prod >> 61);
    std::uint64_t s = lo + hi;
    if (s >= kP) s -= kP;
    if (s >= kP) s -= kP;
    return from_reduced(s);
  }

  constexpr Fp& operator+=(Fp o) { return *this = *this + o; }
  constexpr Fp& operator-=(Fp o) { return *this = *this - o; }
  constexpr Fp& operator*=(Fp o) { return *this = *this * o; }

  constexpr bool operator==(const Fp&) const = default;

  /// Exponentiation by squaring.
  Fp pow(std::uint64_t e) const {
    Fp base = *this;
    Fp result(1);
    while (e != 0) {
      if (e & 1) result *= base;
      base *= base;
      e >>= 1;
    }
    return result;
  }

  /// Multiplicative inverse via Fermat's little theorem. Input must be
  /// nonzero.
  Fp inverse() const {
    REPRO_ASSERT_MSG(!is_zero(), "inverse of zero");
    return pow(kP - 2);
  }

 private:
  static constexpr std::uint64_t reduce64(std::uint64_t v) {
    std::uint64_t s = (v & kP) + (v >> 61);
    if (s >= kP) s -= kP;
    return s;
  }

  static constexpr Fp from_reduced(std::uint64_t v) {
    Fp f;
    f.v_ = v;
    return f;
  }

  std::uint64_t v_ = 0;
};

}  // namespace repro::crypto
