#include "crypto/merkle.h"

#include "common/assert.h"

namespace repro::crypto {

void MerkleProof::encode(Encoder& enc) const {
  enc.u32(index);
  enc.u32(static_cast<std::uint32_t>(steps.size()));
  for (const Step& s : steps) {
    enc.bool_(s.sibling_on_left);
    enc.raw(BytesView(s.sibling.data(), s.sibling.size()));
  }
}

std::optional<MerkleProof> MerkleProof::decode(Decoder& dec) {
  MerkleProof p;
  auto index = dec.u32();
  auto count = dec.u32();
  if (!index || !count || *count > 64) return std::nullopt;
  p.index = *index;
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto on_left = dec.bool_();
    auto raw = dec.raw(32);
    if (!on_left || !raw) return std::nullopt;
    Step s;
    s.sibling_on_left = *on_left;
    std::copy(raw->begin(), raw->end(), s.sibling.begin());
    p.steps.push_back(s);
  }
  return p;
}

Digest MerkleTree::leaf_hash(BytesView item) {
  return sha256_tagged("repro/merkle-leaf", item);
}

Digest MerkleTree::node_hash(const Digest& left, const Digest& right) {
  Bytes both;
  both.reserve(64);
  both.insert(both.end(), left.begin(), left.end());
  both.insert(both.end(), right.begin(), right.end());
  return sha256_tagged("repro/merkle-node", both);
}

Digest MerkleTree::empty_root() {
  return sha256_tagged("repro/merkle-empty", BytesView{});
}

MerkleTree::MerkleTree(const std::vector<Bytes>& items) : leaf_count_(items.size()) {
  if (items.empty()) {
    root_ = empty_root();
    return;
  }
  std::vector<Digest> level;
  level.reserve(items.size());
  for (const Bytes& item : items) level.push_back(leaf_hash(item));
  levels_.push_back(level);
  while (levels_.back().size() > 1) {
    const auto& below = levels_.back();
    std::vector<Digest> above;
    above.reserve((below.size() + 1) / 2);
    for (std::size_t i = 0; i < below.size(); i += 2) {
      if (i + 1 < below.size()) {
        above.push_back(node_hash(below[i], below[i + 1]));
      } else {
        above.push_back(below[i]);  // odd node promoted, not duplicated
      }
    }
    levels_.push_back(std::move(above));
  }
  root_ = levels_.back().front();
}

MerkleProof MerkleTree::prove(std::uint32_t index) const {
  REPRO_ASSERT(index < leaf_count_);
  MerkleProof proof;
  proof.index = index;
  std::size_t pos = index;
  for (std::size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const auto& level = levels_[lvl];
    const std::size_t sibling = (pos % 2 == 0) ? pos + 1 : pos - 1;
    if (sibling < level.size()) {
      proof.steps.push_back(MerkleProof::Step{/*sibling_on_left=*/pos % 2 == 1,
                                              level[sibling]});
    }
    // A promoted odd node carries over unchanged (no step recorded); its
    // index in the level above is still pos / 2 (it is the last element).
    pos /= 2;
  }
  return proof;
}

bool MerkleTree::verify(const Digest& root, BytesView item, const MerkleProof& proof) {
  Digest acc = leaf_hash(item);
  for (const MerkleProof::Step& s : proof.steps) {
    acc = s.sibling_on_left ? node_hash(s.sibling, acc) : node_hash(acc, s.sibling);
  }
  return acc == root;
}

}  // namespace repro::crypto
