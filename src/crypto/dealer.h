// Trusted dealer: one-stop key generation for a system of n replicas.
//
// The paper assumes "a trusted dealer equips replicas with the above
// cryptographic schemes" (liftable via asynchronous DKG, which it cites).
// CryptoSystem is that dealer's output, shared read-only by all simulated
// replicas.
#pragma once

#include <memory>

#include "common/rng.h"
#include "common/types.h"
#include "crypto/signer.h"
#include "crypto/threshold.h"

namespace repro::crypto {

struct CryptoSystem {
  QuorumParams params;
  SignatureScheme signatures;   ///< per-replica ⟨m⟩_i
  ThresholdScheme quorum_sigs;  ///< (2f+1)-of-n, for QCs / TCs / f-QCs / f-TCs
  CommonCoin coin;              ///< (f+1)-of-n leader-election coin

  /// Deals everything for n = 3f+1 replicas from a seed.
  static std::shared_ptr<const CryptoSystem> deal(QuorumParams params, std::uint64_t seed);
};

}  // namespace repro::crypto
