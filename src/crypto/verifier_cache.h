// Verified-certificate cache: remembers which threshold signatures have
// already passed full verification, so the message hot path pays the
// Lagrange/field recomputation only once per distinct certificate.
//
// The fallback floods all n replicas with the *same* QCs, f-QCs, f-TCs
// and coin-QCs (every timeout carries qc_high, every top f-QC is
// re-multicast by every replica), so without a cache each replica pays
// O(n) identical threshold verifications per certificate. HotStuff-family
// implementations treat QC-verification caching as a standard hot-path
// optimization; this is ours.
//
// Safety argument (see docs/PROTOCOL.md §7): entries are keyed by a
// collision-resistant digest computed over the *exact bytes that full
// verification would check* — the domain-separated signing message plus
// the combined signature value. A hit therefore implies that a prior call
// fully verified a certificate with byte-identical content; any mutation
// of the message fields or of the signature changes the key and misses.
// Only *successful* verifications are inserted, so a flood of invalid
// certificates cannot populate (or poison) the cache, and the LRU bound
// keeps a flood of valid-but-distinct certificates from growing it
// without limit.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "crypto/sha256.h"

namespace repro::crypto {

/// Bounded LRU set of verification-key digests. Single-threaded, like
/// everything else a replica owns.
class VerifierCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;

  /// Observable counters. hits + misses counts every cached-verify call
  /// that had to consult the cache; misses equals the number of *full*
  /// threshold verifications actually performed through it.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };

  explicit VerifierCache(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// True iff `key` was previously inserted (i.e. verified). Refreshes
  /// the entry's LRU position and counts a hit or a miss.
  bool check(const Digest& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      return false;
    }
    ++stats_.hits;
    order_.splice(order_.begin(), order_, it->second);
    return true;
  }

  /// Record that the certificate behind `key` verified (either by a full
  /// verification after a miss, or because we combined it ourselves from
  /// verified shares). Evicts the least-recently-used entry at capacity.
  void insert(const Digest& key) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (index_.size() >= capacity_) {
      index_.erase(order_.back());
      order_.pop_back();
      ++stats_.evictions;
    }
    order_.push_front(key);
    index_.emplace(key, order_.begin());
    ++stats_.insertions;
  }

  std::size_t size() const { return index_.size(); }
  std::size_t capacity() const { return capacity_; }
  const Stats& stats() const { return stats_; }

 private:
  struct DigestHash {
    std::size_t operator()(const Digest& d) const {
      return static_cast<std::size_t>(digest_prefix_u64(d));
    }
  };

  std::size_t capacity_;
  std::list<Digest> order_;  ///< most-recently-used first
  std::unordered_map<Digest, std::list<Digest>::iterator, DigestHash> index_;
  Stats stats_;
};

}  // namespace repro::crypto
