#include "crypto/shamir.h"

#include "common/assert.h"

namespace repro::crypto {

std::vector<Share> deal_shares(Fp secret, std::uint32_t n, std::uint32_t t, Rng& rng) {
  REPRO_ASSERT(t >= 1 && t <= n);
  // Random polynomial f of degree t-1 with f(0) = secret.
  std::vector<Fp> coeffs(t);
  coeffs[0] = secret;
  for (std::uint32_t i = 1; i < t; ++i) coeffs[i] = Fp(rng.next());

  std::vector<Share> shares;
  shares.reserve(n);
  for (ReplicaId id = 0; id < n; ++id) {
    const Fp x(static_cast<std::uint64_t>(id) + 1);
    // Horner evaluation.
    Fp y;
    for (auto it = coeffs.rbegin(); it != coeffs.rend(); ++it) y = y * x + *it;
    shares.push_back(Share{id, y});
  }
  return shares;
}

Fp lagrange_coefficient_at_zero(std::span<const ReplicaId> ids, std::size_t index) {
  REPRO_ASSERT(index < ids.size());
  const Fp xi(static_cast<std::uint64_t>(ids[index]) + 1);
  Fp num(1);
  Fp den(1);
  for (std::size_t j = 0; j < ids.size(); ++j) {
    if (j == index) continue;
    const Fp xj(static_cast<std::uint64_t>(ids[j]) + 1);
    REPRO_ASSERT_MSG(!(xj == xi), "duplicate share ids in interpolation");
    num *= Fp(0) - xj;  // (0 - x_j)
    den *= xi - xj;     // (x_i - x_j)
  }
  return num * den.inverse();
}

std::vector<Fp> lagrange_coefficients_at_zero(std::span<const ReplicaId> ids) {
  const std::size_t t = ids.size();
  std::vector<Fp> coeffs(t);
  if (t == 0) return coeffs;
  if (t == 1) {
    coeffs[0] = Fp(1);
    return coeffs;
  }

  std::vector<Fp> xs(t);
  for (std::size_t i = 0; i < t; ++i) xs[i] = Fp(static_cast<std::uint64_t>(ids[i]) + 1);

  // Numerators: num_i = prod_{j != i} (0 - x_j), via prefix/suffix products.
  std::vector<Fp> prefix(t), suffix(t);
  Fp acc(1);
  for (std::size_t i = 0; i < t; ++i) {
    prefix[i] = acc;
    acc *= Fp(0) - xs[i];
  }
  acc = Fp(1);
  for (std::size_t i = t; i-- > 0;) {
    suffix[i] = acc;
    acc *= Fp(0) - xs[i];
  }

  // Denominators: den_i = prod_{j != i} (x_i - x_j); invert all of them with
  // a single field inversion (Montgomery batch inversion). inverse() is a
  // ~60-multiplication exponentiation, so this is the win over per-index
  // lagrange_coefficient_at_zero calls.
  std::vector<Fp> den(t);
  for (std::size_t i = 0; i < t; ++i) {
    Fp d(1);
    for (std::size_t j = 0; j < t; ++j) {
      if (j == i) continue;
      REPRO_ASSERT_MSG(!(xs[j] == xs[i]), "duplicate share ids in interpolation");
      d *= xs[i] - xs[j];
    }
    den[i] = d;
  }
  std::vector<Fp> running(t);
  acc = Fp(1);
  for (std::size_t i = 0; i < t; ++i) {
    running[i] = acc;
    acc *= den[i];
  }
  Fp inv_all = acc.inverse();
  for (std::size_t i = t; i-- > 0;) {
    const Fp inv_i = inv_all * running[i];
    inv_all *= den[i];
    coeffs[i] = prefix[i] * suffix[i] * inv_i;
  }
  return coeffs;
}

LagrangeCache::LagrangeCache(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

std::size_t LagrangeCache::IdsHash::operator()(const std::vector<ReplicaId>& ids) const {
  // FNV-1a over the id words; signer sets are tiny so this is cheap.
  std::uint64_t h = 1469598103934665603ull;
  for (const ReplicaId id : ids) {
    h ^= id;
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h);
}

const std::vector<Fp>& LagrangeCache::coefficients(std::span<const ReplicaId> ids) {
  std::vector<ReplicaId> key(ids.begin(), ids.end());
  if (auto it = index_.find(key); it != index_.end()) {
    ++hits_;
    entries_.splice(entries_.begin(), entries_, it->second);
    return entries_.front().coeffs;
  }
  ++misses_;
  entries_.push_front(Entry{std::move(key), lagrange_coefficients_at_zero(ids)});
  index_.emplace(entries_.front().ids, entries_.begin());
  if (entries_.size() > capacity_) {
    index_.erase(entries_.back().ids);
    entries_.pop_back();
  }
  return entries_.front().coeffs;
}

Fp reconstruct_secret(std::span<const Share> shares, std::uint32_t t) {
  REPRO_ASSERT(shares.size() >= t);
  std::vector<ReplicaId> ids;
  ids.reserve(t);
  for (std::uint32_t i = 0; i < t; ++i) ids.push_back(shares[i].id);

  Fp secret;
  for (std::uint32_t i = 0; i < t; ++i) {
    secret += shares[i].value * lagrange_coefficient_at_zero(ids, i);
  }
  return secret;
}

}  // namespace repro::crypto
