#include "crypto/shamir.h"

#include "common/assert.h"

namespace repro::crypto {

std::vector<Share> deal_shares(Fp secret, std::uint32_t n, std::uint32_t t, Rng& rng) {
  REPRO_ASSERT(t >= 1 && t <= n);
  // Random polynomial f of degree t-1 with f(0) = secret.
  std::vector<Fp> coeffs(t);
  coeffs[0] = secret;
  for (std::uint32_t i = 1; i < t; ++i) coeffs[i] = Fp(rng.next());

  std::vector<Share> shares;
  shares.reserve(n);
  for (ReplicaId id = 0; id < n; ++id) {
    const Fp x(static_cast<std::uint64_t>(id) + 1);
    // Horner evaluation.
    Fp y;
    for (auto it = coeffs.rbegin(); it != coeffs.rend(); ++it) y = y * x + *it;
    shares.push_back(Share{id, y});
  }
  return shares;
}

Fp lagrange_coefficient_at_zero(std::span<const ReplicaId> ids, std::size_t index) {
  REPRO_ASSERT(index < ids.size());
  const Fp xi(static_cast<std::uint64_t>(ids[index]) + 1);
  Fp num(1);
  Fp den(1);
  for (std::size_t j = 0; j < ids.size(); ++j) {
    if (j == index) continue;
    const Fp xj(static_cast<std::uint64_t>(ids[j]) + 1);
    REPRO_ASSERT_MSG(!(xj == xi), "duplicate share ids in interpolation");
    num *= Fp(0) - xj;  // (0 - x_j)
    den *= xi - xj;     // (x_i - x_j)
  }
  return num * den.inverse();
}

Fp reconstruct_secret(std::span<const Share> shares, std::uint32_t t) {
  REPRO_ASSERT(shares.size() >= t);
  std::vector<ReplicaId> ids;
  ids.reserve(t);
  for (std::uint32_t i = 0; i < t; ++i) ids.push_back(shares[i].id);

  Fp secret;
  for (std::uint32_t i = 0; i < t; ++i) {
    secret += shares[i].value * lagrange_coefficient_at_zero(ids, i);
  }
  return secret;
}

}  // namespace repro::crypto
