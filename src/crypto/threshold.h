// Threshold signatures and the common coin, built on Shamir sharing.
//
// Model (documented substitution — see DESIGN.md §2): a trusted dealer
// shares a field secret s. Replica i's signature share on message m is
//     σ_i = x_i · H(m)   in GF(2^61 - 1),
// where x_i is i's Shamir share and H(m) is a nonzero field point derived
// from SHA-256. Combining any t shares by Lagrange interpolation yields
//     σ = s · H(m),
// a constant-size "signature" that any party (holding the scheme's
// verification state) can check by recomputation. This preserves exactly
// what the protocol relies on — t-of-n combination algebra, constant-size
// certificates, quorum intersection — but is NOT cryptographically secure
// against an adversary outside the simulation, because verification keys
// equal signing secrets. Byzantine behaviours in this repo are explicit
// modeled behaviours; none forge signatures.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/types.h"
#include "crypto/field.h"
#include "crypto/shamir.h"
#include "crypto/sha256.h"

namespace repro::crypto {

/// A signature share from one replica. Wire size: 4 + 8 bytes.
struct PartialSig {
  ReplicaId signer = 0;
  std::uint64_t value = 0;  ///< Fp value of σ_i

  bool operator==(const PartialSig&) const = default;
};

/// A combined threshold signature. Wire size: 8 bytes (constant in n —
/// this constant size is what makes QCs O(1) and the sync path O(n)).
struct ThresholdSig {
  std::uint64_t value = 0;

  bool operator==(const ThresholdSig&) const = default;
};

/// t-of-n threshold signature scheme instance (one per system, dealt by
/// the trusted dealer). Shared read-only between all simulated replicas.
class ThresholdScheme {
 public:
  /// Deals a fresh scheme: n shares, reconstruction threshold t.
  static ThresholdScheme deal(std::uint32_t n, std::uint32_t t, Rng& rng);

  std::uint32_t n() const { return n_; }
  std::uint32_t threshold() const { return t_; }

  /// Maps a message to a nonzero field point (domain-separated SHA-256).
  Fp message_point(BytesView message) const;

  /// Replica `signer`'s share signature on `message`.
  PartialSig sign_share(ReplicaId signer, BytesView message) const;

  /// Checks that a share is the correct evaluation for its signer.
  bool verify_share(const PartialSig& share, BytesView message) const;

  /// verify_share against an already-computed message_point — the hot-path
  /// variant: 2f+1 shares on the same message hash the identical point, so
  /// accumulators compute it once per target and skip the SHA-256 here.
  bool verify_share_at(const PartialSig& share, Fp point) const;

  /// Combines >= t shares into a threshold signature. Shares must have
  /// distinct signers — any duplicate signer makes the whole call fail
  /// (returns nullopt) rather than silently depending on callers to
  /// pre-deduplicate. Invalid shares are skipped; returns nullopt if fewer
  /// than t valid signers remain. Performs real Lagrange interpolation
  /// (cost ~t^2 field ops).
  std::optional<ThresholdSig> combine(std::span<const PartialSig> shares,
                                      BytesView message) const;

  /// Pure interpolation of exactly-threshold-many shares with caller-
  /// supplied Lagrange coefficients (one per share, same order). Does NOT
  /// verify anything — the combine-then-verify path checks the result with
  /// a single verify_at instead of t verify_share calls.
  ThresholdSig combine_with_coefficients(std::span<const PartialSig> shares,
                                         std::span<const Fp> coefficients) const;

  /// Verifies a combined signature on `message`.
  bool verify(const ThresholdSig& sig, BytesView message) const;

  /// verify against an already-computed message_point.
  bool verify_at(const ThresholdSig& sig, Fp point) const;

 private:
  std::uint32_t n_ = 0;
  std::uint32_t t_ = 0;
  Fp secret_;
  std::vector<Fp> shares_;  // indexed by ReplicaId
};

/// Common coin for leader election (paper: Loss-Moran-style black box).
/// coin(v) combines f+1 shares on the domain-separated message "coin"||v
/// and maps the field value uniformly onto [0, n). Unpredictable (in the
/// modeled-adversary sense) until f+1 shares are released, hence the
/// adversary guesses the elected leader w.p. <= 1/n (paper §3).
class CommonCoin {
 public:
  static CommonCoin deal(std::uint32_t n, std::uint32_t f_plus_1, Rng& rng);

  std::uint32_t threshold() const { return scheme_.threshold(); }

  /// The underlying f+1-threshold scheme, for share accumulators that
  /// assemble coin QCs with the same combine-then-verify machinery as
  /// quorum certificates.
  const ThresholdScheme& scheme() const { return scheme_; }

  /// The domain-separated message coin shares sign for `view`.
  static Bytes coin_message(View view);

  PartialSig coin_share(ReplicaId signer, View view) const;
  bool verify_coin_share(const PartialSig& share, View view) const;

  /// Combine f+1 coin shares into the coin value for `view`.
  std::optional<ThresholdSig> combine(std::span<const PartialSig> shares, View view) const;
  bool verify(const ThresholdSig& sig, View view) const;

  /// The elected leader encoded by a (valid) coin value.
  ReplicaId leader_from(const ThresholdSig& sig) const;

 private:
  std::uint32_t n_ = 0;
  ThresholdScheme scheme_;
};

}  // namespace repro::crypto
