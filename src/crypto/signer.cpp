#include "crypto/signer.h"

#include "common/assert.h"

namespace repro::crypto {

SignatureScheme SignatureScheme::deal(std::uint32_t n, Rng& rng) {
  SignatureScheme s;
  s.keys_.resize(n);
  for (auto& key : s.keys_) {
    for (std::size_t i = 0; i < key.size(); i += 8) {
      const std::uint64_t word = rng.next();
      for (std::size_t b = 0; b < 8; ++b) key[i + b] = static_cast<std::uint8_t>(word >> (8 * b));
    }
  }
  return s;
}

Signature SignatureScheme::sign(ReplicaId signer, BytesView message) const {
  REPRO_ASSERT(signer < keys_.size());
  Sha256 ctx;
  ctx.update(BytesView(keys_[signer].data(), keys_[signer].size()));
  ctx.update(message);
  return ctx.finalize();
}

bool SignatureScheme::verify(ReplicaId signer, BytesView message, const Signature& sig) const {
  if (signer >= keys_.size()) return false;
  return sign(signer, message) == sig;
}

}  // namespace repro::crypto
