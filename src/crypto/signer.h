// Per-replica authenticated signatures ⟨m⟩_i.
//
// The paper assumes standard PKI signatures. We model them as keyed
// SHA-256 MACs dealt by the trusted dealer: sig_i(m) = SHA256(k_i || m),
// 32 bytes (comparable to Ed25519's 64-byte signatures in order of
// magnitude — message-size accounting stays realistic). Verification uses
// the dealer's key table; as with the threshold scheme, forgery is outside
// the modeled threat surface (see DESIGN.md §2).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/types.h"
#include "crypto/sha256.h"

namespace repro::crypto {

/// Wire size: 32 bytes.
using Signature = std::array<std::uint8_t, 32>;

class SignatureScheme {
 public:
  static SignatureScheme deal(std::uint32_t n, Rng& rng);

  std::uint32_t n() const { return static_cast<std::uint32_t>(keys_.size()); }

  Signature sign(ReplicaId signer, BytesView message) const;
  bool verify(ReplicaId signer, BytesView message, const Signature& sig) const;

 private:
  std::vector<std::array<std::uint8_t, 32>> keys_;
};

}  // namespace repro::crypto
