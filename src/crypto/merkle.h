// Merkle trees over transaction batches.
//
// The paper's validated-SMR remark (external validity, clients) implies
// clients need evidence that their transaction is inside a committed
// block. A Merkle commitment gives it in O(log k): the block carries the
// root; a client holding (txn, proof) verifies inclusion against the root
// of any committed block id it has f+1 acks for, without downloading the
// batch. Standard construction: leaves are tagged hashes of the items,
// odd nodes are promoted (no duplication, so no CVE-2012-2459-style
// ambiguity), and inner nodes are domain-separated from leaves.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/codec.h"
#include "crypto/sha256.h"

namespace repro::crypto {

struct MerkleProof {
  /// One hashing step, bottom-up. With promoted odd nodes some levels
  /// contribute no sibling, so the combine direction is recorded
  /// explicitly instead of being derived from the leaf index.
  struct Step {
    bool sibling_on_left = false;
    Digest sibling{};

    bool operator==(const Step&) const = default;
  };

  std::uint32_t index = 0;   ///< leaf position in the batch (advisory)
  std::vector<Step> steps;   ///< bottom-up combine steps

  bool operator==(const MerkleProof&) const = default;

  void encode(Encoder& enc) const;
  static std::optional<MerkleProof> decode(Decoder& dec);
};

class MerkleTree {
 public:
  /// Builds the tree over the given leaf payloads. An empty batch has the
  /// well-known empty root.
  explicit MerkleTree(const std::vector<Bytes>& items);

  const Digest& root() const { return root_; }
  std::size_t size() const { return leaf_count_; }

  /// Inclusion proof for the item at `index` (must be < size()).
  MerkleProof prove(std::uint32_t index) const;

  /// Verifies that `item` is at `proof.index` under `root`.
  static bool verify(const Digest& root, BytesView item, const MerkleProof& proof);

  /// The root of an empty batch.
  static Digest empty_root();

  static Digest leaf_hash(BytesView item);
  static Digest node_hash(const Digest& left, const Digest& right);

 private:
  std::size_t leaf_count_ = 0;
  /// levels_[0] = leaf hashes, levels_.back() = {root}.
  std::vector<std::vector<Digest>> levels_;
  Digest root_{};
};

}  // namespace repro::crypto
