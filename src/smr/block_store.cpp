#include "smr/block_store.h"

#include "common/assert.h"

namespace repro::smr {

BlockStore::BlockStore() {
  // Genesis is always present and certified by fiat.
  blocks_.emplace(genesis_id(), Block::genesis());
  const Certificate g = genesis_certificate();
  certs_.emplace(g.block_id, g);
  cert_log_.push_back(g);
}

bool BlockStore::insert(Block block) {
  REPRO_ASSERT_MSG(block.id_consistent(), "inserting id-inconsistent block");
  return blocks_.emplace(block.id, std::move(block)).second;
}

const Block* BlockStore::get(const BlockId& id) const {
  auto it = blocks_.find(id);
  return it == blocks_.end() ? nullptr : &it->second;
}

bool BlockStore::add_certificate(const Certificate& cert) {
  const bool inserted = certs_.emplace(cert.block_id, cert).second;
  if (inserted) cert_log_.push_back(cert);
  return inserted;
}

const Certificate* BlockStore::certificate_for(const BlockId& id) const {
  auto it = certs_.find(id);
  return it == certs_.end() ? nullptr : &it->second;
}

BlockStore::ChainWalk BlockStore::walk_ancestors(const BlockId& id) const {
  ChainWalk walk;
  BlockId cur = id;
  for (;;) {
    const Block* b = get(cur);
    if (b == nullptr) {
      walk.missing = cur;
      return walk;
    }
    walk.blocks.push_back(b);
    if (b->is_genesis()) return walk;
    cur = b->parent.block_id;
  }
}

}  // namespace repro::smr
