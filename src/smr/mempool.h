// Synthetic transaction workload.
//
// The paper abstracts clients away; what matters for communication
// complexity is the batch the leader puts in each block. The mempool
// produces deterministic pseudo-random batches of a configured size, each
// carrying a sequence number so tests can check that committed payloads
// are exactly the proposed ones.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/codec.h"
#include "common/rng.h"
#include "common/types.h"

namespace repro::smr {

class Mempool {
 public:
  /// `batch_bytes` is the payload size per block (0 = empty blocks, used
  /// by complexity benches that count protocol-overhead bytes only).
  Mempool(ReplicaId owner, std::size_t batch_bytes, Rng rng)
      : owner_(owner), batch_bytes_(batch_bytes), rng_(std::move(rng)) {}

  /// Next transaction batch.
  Bytes next_batch() {
    Encoder enc;
    enc.u32(owner_);
    enc.u64(seq_++);
    while (enc.size() < batch_bytes_ + 12) enc.u64(rng_.next());
    Bytes out = std::move(enc).result();
    out.resize(batch_bytes_ + 12);
    return out;
  }

  std::uint64_t batches_produced() const { return seq_; }

 private:
  ReplicaId owner_;
  std::size_t batch_bytes_;
  Rng rng_;
  std::uint64_t seq_ = 0;
};

}  // namespace repro::smr
