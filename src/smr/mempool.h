// Synthetic transaction workload.
//
// The paper abstracts clients away; what matters for communication
// complexity is the batch the leader puts in each block. The mempool
// produces deterministic pseudo-random batches of a configured size, each
// carrying a sequence number so tests can check that committed payloads
// are exactly the proposed ones.
//
// For the pipelined proposal path the mempool also models ingress: callers
// offer() incoming transaction bytes and the adaptive sizing policy
// (DESIGN.md §12.3) grows the per-block batch toward a ceiling while the
// backlog outpaces sealing, and shrinks it while many rounds are still in
// flight. Batch *content* stays the deterministic owner/seq/filler stream
// regardless of size, so the j-th sealed batch is a pure function of
// (owner, seed, size sequence) — which is what the inline-vs-ref
// differential determinism pin relies on.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/bytes.h"
#include "common/codec.h"
#include "common/rng.h"
#include "common/types.h"

namespace repro::smr {

class Mempool {
 public:
  /// `batch_bytes` is the payload size per block (0 = empty blocks, used
  /// by complexity benches that count protocol-overhead bytes only).
  Mempool(ReplicaId owner, std::size_t batch_bytes, Rng rng)
      : owner_(owner), batch_bytes_(batch_bytes), rng_(std::move(rng)) {}

  /// Next transaction batch at the configured base size.
  Bytes next_batch() { return next_batch(batch_bytes_); }

  /// Next transaction batch at an explicit target size (adaptive sizing).
  /// The 12-byte owner/seq header always fits, so even target 0 produces
  /// a distinct, attributable batch.
  Bytes next_batch(std::size_t target_bytes) {
    Encoder enc;
    enc.u32(owner_);
    enc.u64(seq_++);
    while (enc.size() < target_bytes + 12) enc.u64(rng_.next());
    Bytes out = std::move(enc).result();
    out.resize(target_bytes + 12);
    backlog_bytes_ -= std::min(backlog_bytes_, out.size());
    return out;
  }

  /// Model client ingress: `bytes` of transactions queued for sealing.
  void offer(std::size_t bytes) { backlog_bytes_ += bytes; }

  /// Bytes offered but not yet sealed into a batch.
  std::size_t backlog_bytes() const { return backlog_bytes_; }

  /// Adaptive target size (DESIGN.md §12.3): grow stepwise toward
  /// `max_bytes` while more than one batch's worth of backlog is queued,
  /// shrink back toward the base size while `in_flight_rounds` proposals
  /// are still unresolved downstream. The back-off threshold sits above
  /// the steady-state 3-chain commit depth (~3 rounds between the tip
  /// and r_cur even when everything is healthy), so only genuine pileups
  /// — timeouts, a slow replica — trigger the shrink. With max_bytes <=
  /// base the policy is inert and the target is exactly the base size.
  std::size_t adaptive_target(std::size_t max_bytes, std::uint64_t in_flight_rounds) {
    if (max_bytes <= batch_bytes_) return batch_bytes_;
    std::size_t target = target_ == 0 ? batch_bytes_ : target_;
    const std::size_t step = std::max<std::size_t>(256, (max_bytes - batch_bytes_) / 8);
    if (in_flight_rounds > 6) {
      target = target > batch_bytes_ + step ? target - step : batch_bytes_;
    } else if (backlog_bytes_ > target + target / 2) {
      target = std::min(max_bytes, target + step);
    } else if (backlog_bytes_ < target / 2) {
      target = target > batch_bytes_ + step ? target - step : batch_bytes_;
    }
    target_ = target;
    return target;
  }

  std::uint64_t batches_produced() const { return seq_; }

 private:
  ReplicaId owner_;
  std::size_t batch_bytes_;
  std::size_t backlog_bytes_ = 0;
  std::size_t target_ = 0;  ///< last adaptive target (0 = not yet computed)
  Rng rng_;
  std::uint64_t seq_ = 0;
};

}  // namespace repro::smr
