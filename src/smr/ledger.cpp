#include "smr/ledger.h"

#include <algorithm>

#include "common/assert.h"

namespace repro::smr {

bool Ledger::can_commit(const Block& tip, const BlockStore& store,
                        std::optional<BlockId>* missing) const {
  if (is_committed(tip.id)) return true;
  BlockId cur = tip.parent.block_id;
  while (true) {
    if (committed_set_.count(cur) != 0) return true;
    const Block* b = store.get(cur);
    if (b == nullptr) {
      if (missing != nullptr) *missing = cur;
      return false;
    }
    if (b->is_genesis()) return true;
    cur = b->parent.block_id;
  }
}

std::size_t Ledger::commit_chain(const Block& tip, const BlockStore& store, SimTime now) {
  if (is_committed(tip.id)) return 0;

  // Collect the uncommitted suffix, newest first.
  std::vector<const Block*> chain;
  const Block* cur = &tip;
  while (cur != nullptr && !cur->is_genesis() && committed_set_.count(cur->id) == 0) {
    chain.push_back(cur);
    cur = store.get(cur->parent.block_id);
  }
  REPRO_ASSERT_MSG(cur != nullptr, "commit_chain called with missing ancestors");

  // Apply oldest first.
  std::reverse(chain.begin(), chain.end());
  for (const Block* b : chain) {
    committed_set_.insert(b->id);
    // txns(): the resolved transaction bytes, so a batch-reference block
    // records the same payload size as its inline twin.
    records_.push_back(CommitRecord{b->id, b->round, b->view, b->height, b->txns().size(), now});
    if (on_commit_) on_commit_(*b, now);
  }
  return chain.size();
}

}  // namespace repro::smr
