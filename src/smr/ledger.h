// The committed log — the SMR output.
//
// Safety (paper Thm 6) is a statement about these logs: honest replicas'
// committed sequences must be prefix-consistent. The harness's safety
// checker compares Ledger contents across replicas after every run.
#pragma once

#include <functional>
#include <unordered_set>
#include <vector>

#include "smr/block_store.h"

namespace repro::smr {

/// One committed block with bookkeeping for the metrics pipeline.
struct CommitRecord {
  BlockId id{};
  Round round = 0;
  View view = 0;
  FallbackHeight height = 0;  ///< 0 = regular block, >0 = fallback block
  std::size_t payload_bytes = 0;
  SimTime commit_time = 0;
};

class Ledger {
 public:
  /// Invoked for every newly committed block, oldest first (applications
  /// execute transactions here — see examples/kv_store).
  using CommitCallback = std::function<void(const Block&, SimTime)>;

  void set_commit_callback(CommitCallback cb) { on_commit_ = std::move(cb); }

  /// Commit `tip` and all its not-yet-committed ancestors. Requires the
  /// full ancestor chain down to the previous commit to be in `store`
  /// (the caller fetches missing blocks first). Returns the number of
  /// newly committed blocks; 0 if tip is already committed.
  std::size_t commit_chain(const Block& tip, const BlockStore& store, SimTime now);

  /// Whether committing `tip` is currently possible (no missing ancestor
  /// bodies). Outputs the first missing ancestor id if not.
  bool can_commit(const Block& tip, const BlockStore& store,
                  std::optional<BlockId>* missing) const;

  bool is_committed(const BlockId& id) const { return committed_set_.count(id) != 0; }
  const std::vector<CommitRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

 private:
  std::vector<CommitRecord> records_;
  std::unordered_set<BlockId, BlockIdHash> committed_set_;
  CommitCallback on_commit_;
};

}  // namespace repro::smr
