// Blocks: the paper's regular blocks B = [id, qc, r, v, txn] and
// fallback-blocks B̄ = [B, height, proposer].
//
// One struct covers both: height == 0 means regular block, height in
// {1,2,3} means f-block at that position in its proposer's fallback-chain.
// The id is the SHA-256 digest of every other field, as in the paper
// (id = H(qc, r, v, txn) extended with height/proposer for f-blocks).
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.h"
#include "common/codec.h"
#include "common/types.h"
#include "smr/certificates.h"

namespace repro::smr {

struct Block {
  BlockId id{};
  Certificate parent;  ///< QC (regular / height-1 f-block) or f-QC (height 2-3)
  Round round = 0;
  View view = 0;
  FallbackHeight height = 0;  ///< 0 = regular block; 1..3 = fallback-block
  ReplicaId proposer = 0;
  Bytes payload;  ///< transaction batch (opaque bytes)

  bool is_fallback() const { return height > 0; }
  bool is_genesis() const { return id == genesis_id(); }

  bool operator==(const Block&) const = default;

  /// Recomputes what the id must be for the other fields.
  static BlockId compute_id(const Certificate& parent, Round round, View view,
                            FallbackHeight height, ReplicaId proposer, BytesView payload);

  /// Builds a block with a freshly computed id.
  static Block make(const Certificate& parent, Round round, View view, FallbackHeight height,
                    ReplicaId proposer, Bytes payload);

  /// The unique genesis block (round 0, view 0, parented on itself).
  static const Block& genesis();

  /// True iff id matches the other fields (first validity check on any
  /// received block).
  bool id_consistent() const;

  void encode(Encoder& enc) const;
  static std::optional<Block> decode(Decoder& dec);
};

}  // namespace repro::smr
