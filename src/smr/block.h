// Blocks: the paper's regular blocks B = [id, qc, r, v, txn] and
// fallback-blocks B̄ = [B, height, proposer].
//
// One struct covers both: height == 0 means regular block, height in
// {1,2,3} means f-block at that position in its proposer's fallback-chain.
// The id is the SHA-256 digest of every other field, as in the paper
// (id = H(qc, r, v, txn) extended with height/proposer for f-blocks).
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.h"
#include "common/codec.h"
#include "common/types.h"
#include "smr/batch.h"
#include "smr/certificates.h"

namespace repro::smr {

/// Discriminates what Block::payload holds: the transaction batch itself,
/// or a 32-byte content address of a batch disseminated out of band (see
/// smr::Batch / DESIGN.md §12). The kind is covered by the block id, so a
/// reference block and an inline block with the same transactions are
/// distinct blocks — a digest can never be re-interpreted as data.
enum : std::uint8_t {
  kInlinePayload = 0,
  kBatchRefPayload = 1,
};

struct Block {
  BlockId id{};
  Certificate parent;  ///< QC (regular / height-1 f-block) or f-QC (height 2-3)
  Round round = 0;
  View view = 0;
  FallbackHeight height = 0;  ///< 0 = regular block; 1..3 = fallback-block
  ReplicaId proposer = 0;
  std::uint8_t payload_kind = kInlinePayload;
  Bytes payload;  ///< transaction batch, or its 32-byte batch id (kBatchRefPayload)

  /// Resolved transaction bytes of a kBatchRefPayload block. NOT part of
  /// the wire format or the id: each replica fills it locally from its
  /// BatchStore before voting on / committing the block. Inline blocks
  /// leave it empty.
  Bytes resolved_payload;

  bool is_fallback() const { return height > 0; }
  bool is_genesis() const { return id == genesis_id(); }
  bool is_batch_ref() const { return payload_kind == kBatchRefPayload; }
  /// A ref block's resolved_payload is filled in; inline blocks always are.
  bool payload_resolved() const { return !is_batch_ref() || !resolved_payload.empty(); }

  /// The referenced batch id (payload must be exactly 32 bytes; enforced
  /// by id_consistent for received blocks).
  BatchId batch_ref() const;

  /// The transaction bytes this block orders: the inline payload, or the
  /// locally resolved batch. Only meaningful once payload_resolved().
  const Bytes& txns() const { return is_batch_ref() ? resolved_payload : payload; }

  /// Wire fields only — resolved_payload is local state, not identity.
  bool operator==(const Block& o) const {
    return id == o.id && parent == o.parent && round == o.round && view == o.view &&
           height == o.height && proposer == o.proposer && payload_kind == o.payload_kind &&
           payload == o.payload;
  }

  /// Recomputes what the id must be for the other fields.
  static BlockId compute_id(const Certificate& parent, Round round, View view,
                            FallbackHeight height, ReplicaId proposer, BytesView payload,
                            std::uint8_t payload_kind = kInlinePayload);

  /// Builds a block with a freshly computed id.
  static Block make(const Certificate& parent, Round round, View view, FallbackHeight height,
                    ReplicaId proposer, Bytes payload,
                    std::uint8_t payload_kind = kInlinePayload);

  /// The unique genesis block (round 0, view 0, parented on itself).
  static const Block& genesis();

  /// True iff id matches the other fields (first validity check on any
  /// received block).
  bool id_consistent() const;

  void encode(Encoder& enc) const;
  static std::optional<Block> decode(Decoder& dec);
};

}  // namespace repro::smr
