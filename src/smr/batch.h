// Content-addressed transaction batches for out-of-band dissemination.
//
// The pipelined proposal path (DESIGN.md §12) separates payload
// dissemination from consensus ordering: the upcoming leader seals its
// mempool batch into a Batch — identified by the SHA-256 of its bytes —
// and multicasts it while still waiting for the previous round's QC. The
// proposal that follows carries only the 32-byte id (Block payload_kind
// kBatchRefPayload); replicas resolve it from their BatchStore, or pull
// it on a miss. Content addressing makes the store unforgeable: data is
// only ever filed under its own hash, so a Byzantine announcement can
// waste cache bytes but can never make a digest resolve to wrong bytes.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace repro::smr {

using BatchId = crypto::Digest;

/// A sealed transaction batch: opaque bytes plus their content address.
struct Batch {
  BatchId id{};
  Bytes data;

  static BatchId compute_id(BytesView data) {
    return crypto::sha256_tagged("repro/batch", data);
  }

  static Batch seal(Bytes data) {
    Batch b;
    b.id = compute_id(data);
    b.data = std::move(data);
    return b;
  }
};

/// Byte-bounded LRU cache of sealed batches, one per replica. Bounded by
/// payload bytes (not entry count) because batch sizes span 0 bytes to
/// megabytes under adaptive sizing; the bound is what keeps a flood of
/// announcements from growing replica memory. Entries are only ever
/// stored under the hash of their own bytes (see put()).
class BatchStore {
 public:
  explicit BatchStore(std::size_t max_bytes) : max_bytes_(max_bytes == 0 ? 1 : max_bytes) {}

  /// Store `data` under the hash the caller computed from it (callers
  /// MUST pass id == Batch::compute_id(data); the receive paths hash the
  /// wire bytes before calling). Returns false if already present or if
  /// the batch alone exceeds the bound. Evicts least-recently-used
  /// entries until the new batch fits.
  bool put(const BatchId& id, Bytes data) {
    if (index_.count(id) != 0) return false;
    const std::size_t sz = entry_bytes(data);
    if (sz > max_bytes_) return false;
    while (bytes_ + sz > max_bytes_ && !order_.empty()) {
      const auto& victim = order_.back();
      bytes_ -= entry_bytes(victim.second);
      index_.erase(victim.first);
      order_.pop_back();
      ++evictions_;
    }
    order_.emplace_front(id, std::move(data));
    index_.emplace(id, order_.begin());
    bytes_ += sz;
    return true;
  }

  /// The batch bytes for `id`, or nullptr. Touches the LRU order.
  const Bytes* get(const BatchId& id) {
    auto it = index_.find(id);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  bool contains(const BatchId& id) const { return index_.count(id) != 0; }

  std::size_t size() const { return index_.size(); }
  std::size_t bytes() const { return bytes_; }
  std::size_t max_bytes() const { return max_bytes_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  /// Accounted cost of one entry: payload plus the 32-byte id, so even
  /// empty batches have nonzero weight and the entry count stays bounded.
  static std::size_t entry_bytes(const Bytes& data) { return data.size() + 32; }

  struct IdHash {
    std::size_t operator()(const BatchId& d) const {
      return static_cast<std::size_t>(crypto::digest_prefix_u64(d));
    }
  };

  std::size_t max_bytes_;
  std::size_t bytes_ = 0;
  std::uint64_t evictions_ = 0;
  std::list<std::pair<BatchId, Bytes>> order_;  ///< front = most recent
  std::unordered_map<BatchId, std::list<std::pair<BatchId, Bytes>>::iterator, IdHash> index_;
};

}  // namespace repro::smr
