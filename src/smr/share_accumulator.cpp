#include "smr/share_accumulator.h"

#include "common/assert.h"

namespace repro::smr {

ShareAccumulator::ShareAccumulator(const crypto::ThresholdScheme& scheme,
                                   BytesView signing_message)
    : point_(scheme.message_point(signing_message)) {}

std::optional<crypto::ThresholdSig> ShareAccumulator::add(const ShareEnv& env,
                                                          const crypto::PartialSig& share) {
  REPRO_ASSERT(env.scheme != nullptr && env.lagrange != nullptr && env.stats != nullptr);
  if (done_) return std::nullopt;
  if (share.signer >= env.scheme->n()) return std::nullopt;
  if (banned_.count(share.signer) != 0) return std::nullopt;
  if (slots_.count(share.signer) != 0) return std::nullopt;  // duplicate signer

  if (env.lazy) {
    ++env.stats->shares_deferred;
    slots_.emplace(share.signer, Slot{share.value, false});
  } else {
    ++env.stats->shares_verified;
    if (!env.scheme->verify_share_at(share, point_)) {
      ++env.stats->bad_shares_rejected;
      env.stats->blame_signer(share.signer);
      banned_.insert(share.signer);
      return std::nullopt;
    }
    slots_.emplace(share.signer, Slot{share.value, true});
  }

  if (slots_.size() < env.scheme->threshold()) return std::nullopt;
  return try_assemble(env);
}

std::optional<crypto::ThresholdSig> ShareAccumulator::try_assemble(const ShareEnv& env) {
  const std::uint32_t t = env.scheme->threshold();
  while (slots_.size() >= t) {
    // Interpolate the first t signers in id order. Any t valid shares of
    // the same degree-(t-1) polynomial combine to the identical signature,
    // so the subset choice cannot affect the certificate's bytes — it only
    // has to be deterministic for the lazy/eager differential pin.
    std::vector<ReplicaId> ids;
    std::vector<crypto::PartialSig> picked;
    ids.reserve(t);
    picked.reserve(t);
    bool all_verified = true;
    for (const auto& [signer, slot] : slots_) {
      ids.push_back(signer);
      picked.push_back(crypto::PartialSig{signer, slot.value});
      all_verified = all_verified && slot.verified;
      if (ids.size() == t) break;
    }

    const crypto::ThresholdSig candidate =
        env.scheme->combine_with_coefficients(picked, env.lagrange->coefficients(ids));

    if (all_verified) {
      // Every contributor was individually verified (eager mode, or lazy
      // after a fallback pass) — the interpolation is exact, no check.
      done_ = true;
      return candidate;
    }
    if (env.scheme->verify_at(candidate, point_)) {
      ++env.stats->combines_optimistic;
      done_ = true;
      return candidate;
    }

    // The single combined check failed: at least one buffered share is
    // invalid. Pay the per-share pass once, evict + ban the bad ones, and
    // loop (if >= t verified shares remain, the retry combines them with
    // all_verified == true and succeeds without another verify).
    ++env.stats->combine_fallbacks;
    for (auto it = slots_.begin(); it != slots_.end();) {
      if (it->second.verified) {
        ++it;
        continue;
      }
      ++env.stats->shares_verified;
      if (env.scheme->verify_share_at(crypto::PartialSig{it->first, it->second.value}, point_)) {
        it->second.verified = true;
        ++it;
      } else {
        ++env.stats->bad_shares_rejected;
        env.stats->blame_signer(it->first);
        banned_.insert(it->first);
        it = slots_.erase(it);
      }
    }
  }
  return std::nullopt;
}

}  // namespace repro::smr
