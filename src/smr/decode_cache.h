// Decode-once delivery cache: content-keyed memo of decoded wire
// messages, so a multicast delivered to n replicas is parsed once, not n
// times — the decode-side twin of the zero-copy (refcounted) payload on
// the send side.
//
// The fallback's O(n²) message complexity means the data path dominates
// when the network goes bad: every replica used to re-run
// `decode_message` on byte-identical payloads that n-1 peers (or its own
// multicast loopback) already decoded. Entries are keyed by the SHA-256
// of the exact payload bytes, so a hit returns a value equal to a fresh
// decode of those bytes (the codec is canonical: decode(encode(m)) == m,
// and any mutated byte changes the key and misses). Malformed payloads
// are never cached — each distinct malformed buffer is rejected
// independently.
//
// Senders pre-populate the cache at encode time (they hold the decoded
// form already), which is what makes a replica's *self-delivery* free of
// the encode → decode round trip. They also record themselves as a
// verified envelope signer: signature verification is a deterministic
// pure function of (sender, payload bytes), so a per-entry memo of
// senders whose envelope signature over these exact bytes checked out is
// as strong as re-verifying — a replayed payload from a *different*
// sender is not in the memo and pays the full check (and fails).
//
// Bounded LRU, mirroring crypto::VerifierCache. Shared by all replicas of
// one simulation (they observe the same broadcast bytes); per-node in the
// TCP transport (processes share nothing).
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "crypto/sha256.h"
#include "smr/messages.h"

namespace repro::smr {

class DecodeCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;

  /// hits + misses counts every delivery that consulted the cache;
  /// misses equals the number of full `decode_message` parses performed
  /// through it (malformed payloads included).
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };

  explicit DecodeCache(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Content key: hash of the exact payload bytes.
  static crypto::Digest key_of(BytesView payload) { return crypto::sha256(payload); }

  /// Decoded form of `payload`: a copy of the cached message on a hit, a
  /// fresh `decode_message` (inserted on success) on a miss. Sets *hit
  /// accordingly. nullopt = malformed payload (never cached).
  std::optional<Message> decode(const crypto::Digest& key, BytesView payload, bool* hit) {
    if (auto it = index_.find(key); it != index_.end()) {
      ++stats_.hits;
      *hit = true;
      order_.splice(order_.begin(), order_, it->second);
      return it->second->second.msg;
    }
    ++stats_.misses;
    *hit = false;
    auto msg = decode_message(payload);
    if (msg) insert_entry(key, Entry{*msg, {}});
    return msg;
  }

  /// Sender-side pre-population: `msg`'s canonical encoding hashes to
  /// `key`, and `signer` produced (hence trivially verifies) the envelope
  /// signature inside it.
  void insert(const crypto::Digest& key, Message msg, ReplicaId signer) {
    if (auto it = index_.find(key); it != index_.end()) {
      order_.splice(order_.begin(), order_, it->second);
      note_sender_verified(key, signer);
      return;
    }
    insert_entry(key, Entry{std::move(msg), {signer}});
  }

  /// True iff a previous envelope-signature check of these exact bytes
  /// against `sender` succeeded (or `sender` encoded them itself).
  bool sender_verified(const crypto::Digest& key, ReplicaId sender) const {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    const auto& v = it->second->second.verified_senders;
    for (ReplicaId id : v) {
      if (id == sender) return true;
    }
    return false;
  }

  /// Record a successful envelope-signature verification. No-op if the
  /// entry was evicted in the meantime. Failures must never be recorded.
  void note_sender_verified(const crypto::Digest& key, ReplicaId sender) {
    auto it = index_.find(key);
    if (it == index_.end()) return;
    auto& v = it->second->second.verified_senders;
    for (ReplicaId id : v) {
      if (id == sender) return;
    }
    v.push_back(sender);
  }

  std::size_t size() const { return index_.size(); }
  std::size_t capacity() const { return capacity_; }
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    Message msg;
    /// Senders whose envelope signature over these bytes verified. Tiny
    /// in practice: a payload has one legitimate signer.
    std::vector<ReplicaId> verified_senders;
  };

  struct DigestHash {
    std::size_t operator()(const crypto::Digest& d) const {
      return static_cast<std::size_t>(crypto::digest_prefix_u64(d));
    }
  };

  void insert_entry(const crypto::Digest& key, Entry entry) {
    if (index_.size() >= capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++stats_.evictions;
    }
    order_.emplace_front(key, std::move(entry));
    index_.emplace(key, order_.begin());
    ++stats_.insertions;
  }

  std::size_t capacity_;
  /// Most-recently-used first.
  std::list<std::pair<crypto::Digest, Entry>> order_;
  std::unordered_map<crypto::Digest, decltype(order_)::iterator, DigestHash> index_;
  Stats stats_;
};

}  // namespace repro::smr
