// In-memory block store: the DAG of blocks and the certificates known for
// them. Purely a data structure — all protocol validity rules live in the
// replica implementations.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "smr/block.h"
#include "smr/certificates.h"

namespace repro::smr {

struct BlockIdHash {
  std::size_t operator()(const BlockId& id) const {
    return static_cast<std::size_t>(crypto::digest_prefix_u64(id));
  }
};

class BlockStore {
 public:
  BlockStore();

  /// Insert a block (must be id-consistent; caller validates). Returns
  /// true if newly inserted.
  bool insert(Block block);

  bool contains(const BlockId& id) const { return blocks_.count(id) != 0; }
  const Block* get(const BlockId& id) const;

  /// Mutable access for local bookkeeping on a stored block (attaching
  /// resolved_payload to a batch-reference block). Wire fields and the id
  /// must not change — they are the map key's preimage.
  Block* get_mutable(const BlockId& id) {
    auto it = blocks_.find(id);
    return it == blocks_.end() ? nullptr : &it->second;
  }

  /// Record a certificate. Keeps the first certificate seen per
  /// (block, kind); a block can hold both a plain cert and later an
  /// endorsed one — they are identical wire objects, so one is enough.
  /// Returns true if this is the first certificate for the block.
  bool add_certificate(const Certificate& cert);

  const Certificate* certificate_for(const BlockId& id) const;
  bool is_certified(const BlockId& id) const { return certs_.count(id) != 0; }

  /// All certificates seen, in insertion order (commit scans iterate it).
  const std::vector<Certificate>& certificates() const { return cert_log_; }

  /// Walk parent links from `id` toward genesis, newest first. Stops at
  /// the first missing block (the walk then ends with that missing id in
  /// `missing`).
  struct ChainWalk {
    std::vector<const Block*> blocks;    ///< newest -> oldest, all present
    std::optional<BlockId> missing;      ///< set if an ancestor body is absent
  };
  ChainWalk walk_ancestors(const BlockId& id) const;

  std::size_t block_count() const { return blocks_.size(); }

 private:
  std::unordered_map<BlockId, Block, BlockIdHash> blocks_;
  std::unordered_map<BlockId, Certificate, BlockIdHash> certs_;
  std::vector<Certificate> cert_log_;
};

}  // namespace repro::smr
