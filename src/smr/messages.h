// Wire messages for all protocol variants.
//
// Every message serializes as: 1 type-tag byte, then the body, then (for
// ⟨m⟩_i-style authenticated messages) the sender's 32-byte signature over
// tag||body. Votes and coin shares need no outer signature: the threshold
// share itself authenticates the signer, exactly as in the paper where a
// vote *is* a threshold signature share.
//
// Messages that embed a certificate which might be an *endorsed* f-QC
// (timeouts carrying qc_high, proposals carrying parents) also carry the
// coin-QCs that prove the endorsement ("As cryptographic evidence of
// endorsement, the first block in a new view can additionally include the
// coin-QC of the previous view" — paper §3). Receivers install these into
// their coin table before judging ranks.
#pragma once

#include <optional>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "common/types.h"
#include "crypto/dealer.h"
#include "smr/block.h"
#include "smr/certificates.h"

namespace repro::smr {

enum class MsgType : std::uint8_t {
  kProposal = 1,     // steady state: leader's regular block
  kVote = 2,         // steady state: share on a regular block -> next leader
  kDiemTimeout = 3,  // DiemBFT pacemaker: ⟨{r}_i, qc_high⟩_i multicast
  kDiemTc = 4,       // DiemBFT pacemaker: TC forwarded to the new leader
  kFbTimeout = 5,    // fallback: ⟨{v}_i, qc_high⟩_i multicast
  kFbProposal = 6,   // fallback: f-block (height-1 carries the f-TC)
  kFbVote = 7,       // fallback: share on an f-block -> chain owner
  kFbQc = 8,         // fallback: completed top-height f-QC multicast
  kCoinShare = 9,    // leader election: coin share multicast
  kCoinQc = 10,      // leader election: combined coin-QC multicast
  kBlockRequest = 11,   // block retrieval: fetch a missing block by id
  kBlockResponse = 12,  // block retrieval: the requested block
  kBatch = 13,          // pipelining: out-of-band batch announcement
  kBatchPull = 14,      // pipelining: fetch a missing batch by id
  kBatchPush = 15,      // pipelining: the requested batch bytes
};

struct ProposalMsg {
  Block block;
  std::optional<TimeoutCert> tc;  ///< DiemBFT: TC that justified entering this round
  std::vector<CoinQC> coins;      ///< endorsement evidence for embedded certs
  crypto::Signature sig{};
};

struct VoteMsg {
  BlockId block_id{};
  Round round = 0;
  View view = 0;
  crypto::PartialSig share;  ///< {id, r, v}_i — signer identified inside
};

struct DiemTimeoutMsg {
  Round round = 0;
  crypto::PartialSig round_share;  ///< {r}_i
  Certificate qc_high;
  crypto::Signature sig{};
};

struct DiemTcMsg {
  TimeoutCert tc;
};

struct FbTimeoutMsg {
  View view = 0;
  crypto::PartialSig view_share;  ///< {v}_i
  Certificate qc_high;
  std::vector<CoinQC> coins;
  crypto::Signature sig{};
};

struct FbProposalMsg {
  Block block;                    ///< an f-block (height 1..3)
  std::optional<FallbackTC> ftc;  ///< required at height 1 (paper: "j also sends tc̄")
  std::vector<CoinQC> coins;
  crypto::Signature sig{};
};

struct FbVoteMsg {
  BlockId block_id{};
  Round round = 0;
  View view = 0;
  FallbackHeight height = 0;
  ReplicaId chain_owner = 0;  ///< the j in B̄_{h,j}
  crypto::PartialSig share;   ///< {id, r, v, h, j}_i
};

struct FbQcMsg {
  Certificate fqc;
  crypto::Signature sig{};  ///< 2-chain variant counts distinct signers of these
};

struct CoinShareMsg {
  View view = 0;
  crypto::PartialSig share;
};

struct CoinQcMsg {
  CoinQC qc;
  /// Certificate relay (DESIGN.md §13): the sender's highest f-QC of the
  /// elected leader's chain, piggybacked so stragglers exit the fallback
  /// holding the same endorsed lock without a separate f-QC round-trip.
  /// Empty on the flags-off wire (and always optional — receivers verify
  /// it like any other delivered certificate).
  std::optional<Certificate> leader_best;
};

/// DiemBFT-style block retrieval: certificates can reference blocks a
/// replica never received (e.g. qc_high adopted from a timeout message);
/// the replica fetches them from whoever showed it the certificate. The
/// block bodies are self-authenticating via their ids. Requests are
/// range-based — "this block plus up to `ancestors` of its ancestors" —
/// so a replica recovering from a crash backfills a long chain in a few
/// round trips instead of one block per round trip.
struct BlockRequestMsg {
  BlockId block_id{};
  std::uint32_t ancestors = 0;  ///< additionally ship up to this many parents
};

struct BlockResponseMsg {
  /// The requested block first, then ancestors (newest to oldest).
  std::vector<Block> blocks;
};

/// Upper bound on blocks per response (and on `ancestors` honored).
inline constexpr std::uint32_t kMaxBlocksPerResponse = 128;

/// Out-of-band batch dissemination (DESIGN.md §12). All three carry raw
/// batch bytes or a content address and need no signature: the receiver
/// hashes the data itself, so the sender cannot lie about what id the
/// bytes resolve to, and a pull is answered only with self-verifying
/// bytes. BatchMsg is the optimistic pre-broadcast by the upcoming
/// leader; BatchPull/BatchPush recover a miss so liveness never depends
/// on the optimistic path.
struct BatchMsg {
  Bytes data;  ///< sealed batch bytes; id = Batch::compute_id(data)
};

struct BatchPullMsg {
  BatchId batch_id{};
};

struct BatchPushMsg {
  Bytes data;  ///< the requested batch; receiver re-derives the id
};

using Message =
    std::variant<ProposalMsg, VoteMsg, DiemTimeoutMsg, DiemTcMsg, FbTimeoutMsg, FbProposalMsg,
                 FbVoteMsg, FbQcMsg, CoinShareMsg, CoinQcMsg, BlockRequestMsg, BlockResponseMsg,
                 BatchMsg, BatchPullMsg, BatchPushMsg>;

MsgType message_type(const Message& msg);

/// Exact wire size of `encode_message(msg)` — every field is fixed-width
/// or length-prefixed, so the size is computable without serializing.
/// `encode_message` pre-reserves exactly this many bytes; exposed so tests
/// can pin the two against each other.
std::size_t encoded_size(const Message& msg);

/// Serialize (without touching any signature field — sign first).
Bytes encode_message(const Message& msg);

/// Parse; nullopt on malformed input (malformed wire data must never
/// crash a replica).
std::optional<Message> decode_message(BytesView data);

/// Sign / verify the ⟨m⟩_i-authenticated messages in place. For message
/// types without an outer signature these are no-ops returning true.
void sign_message(const crypto::CryptoSystem& crypto, ReplicaId signer, Message& msg);
bool verify_message_signature(const crypto::CryptoSystem& crypto, ReplicaId sender,
                              const Message& msg);

/// Envelope verification against the exact wire bytes `msg` was decoded
/// from. The codec is canonical (fixed-width fields, decode_message
/// rejects trailing garbage) and signed types append the 32-byte
/// signature after the body, so for any payload with
/// decode_message(payload) == msg the signing bytes are simply
/// payload[0 .. size-32] — no re-encode, no allocation. Equivalent to
/// verify_message_signature(crypto, sender, msg) under that precondition;
/// callers holding only the decoded form keep using the re-encoding one.
bool verify_message_signature_wire(const crypto::CryptoSystem& crypto, ReplicaId sender,
                                   const Message& msg, BytesView payload);

}  // namespace repro::smr
