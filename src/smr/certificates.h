// Certificates: QC, fallback-QC, timeout certificates and the coin-QC.
//
// A single Certificate struct covers regular QCs (height == 0) and
// fallback-QCs (height in {1,2,3}), plus the genesis pseudo-certificate.
// Endorsement of an f-QC is *contextual* — it means "a coin-QC of the same
// view elects this certificate's proposer" — so it is never a wire field;
// replicas decide endorsement against their table of learned coin-QCs.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "common/bytes.h"
#include "common/codec.h"
#include "common/types.h"
#include "crypto/dealer.h"
#include "crypto/sha256.h"
#include "crypto/verifier_cache.h"
#include "smr/rank.h"

namespace repro::smr {

using BlockId = crypto::Digest;

/// The well-known genesis block id.
BlockId genesis_id();

enum class CertKind : std::uint8_t {
  kGenesis = 0,   ///< pseudo-certificate for the genesis block
  kQuorum = 1,    ///< regular QC: threshold sig on (id, r, v)
  kFallback = 2,  ///< f-QC: threshold sig on (id, r, v, h, proposer)
};

/// A quorum / fallback-quorum certificate. Constant wire size regardless
/// of n (that is the whole point of threshold signatures here).
struct Certificate {
  CertKind kind = CertKind::kGenesis;
  BlockId block_id{};
  Round round = 0;
  View view = 0;
  FallbackHeight height = 0;  ///< 0 for regular QCs, 1..3 for f-QCs
  ReplicaId proposer = 0;     ///< f-QCs: owner of the fallback-chain
  crypto::ThresholdSig sig;

  bool operator==(const Certificate&) const = default;

  /// Rank given whether the caller considers this certificate endorsed.
  Rank rank(bool endorsed) const { return Rank{view, endorsed, round}; }

  void encode(Encoder& enc) const;
  static std::optional<Certificate> decode(Decoder& dec);
};

/// The genesis pseudo-certificate (round 0, view 0), valid by fiat.
Certificate genesis_certificate();

/// Message that quorum members threshold-sign for a QC / f-QC with these
/// parameters (paper: {B.id, B.r, B.v} resp. {B.id, B.r, B.v, h, i}).
Bytes cert_signing_message(CertKind kind, const BlockId& id, Round round, View view,
                           FallbackHeight height, ReplicaId proposer);

/// Verify a certificate's threshold signature (genesis verifies by fiat
/// against the well-known genesis id/round/view).
bool verify_certificate(const crypto::CryptoSystem& crypto, const Certificate& cert);

/// Combine >= 2f+1 shares into a certificate. Returns nullopt if shares
/// are insufficient/invalid.
std::optional<Certificate> combine_certificate(const crypto::CryptoSystem& crypto,
                                               CertKind kind, const BlockId& id, Round round,
                                               View view, FallbackHeight height,
                                               ReplicaId proposer,
                                               std::span<const crypto::PartialSig> shares);

/// DiemBFT round timeout certificate: threshold sig on the round number.
struct TimeoutCert {
  Round round = 0;
  crypto::ThresholdSig sig;

  bool operator==(const TimeoutCert&) const = default;
  void encode(Encoder& enc) const;
  static std::optional<TimeoutCert> decode(Decoder& dec);
};

Bytes tc_signing_message(Round round);
bool verify_tc(const crypto::CryptoSystem& crypto, const TimeoutCert& tc);
std::optional<TimeoutCert> combine_tc(const crypto::CryptoSystem& crypto, Round round,
                                      std::span<const crypto::PartialSig> shares);

/// Fallback timeout certificate: threshold sig on the view number.
struct FallbackTC {
  View view = 0;
  crypto::ThresholdSig sig;

  bool operator==(const FallbackTC&) const = default;
  void encode(Encoder& enc) const;
  static std::optional<FallbackTC> decode(Decoder& dec);
};

Bytes ftc_signing_message(View view);
bool verify_ftc(const crypto::CryptoSystem& crypto, const FallbackTC& ftc);
std::optional<FallbackTC> combine_ftc(const crypto::CryptoSystem& crypto, View view,
                                      std::span<const crypto::PartialSig> shares);

/// Coin-QC: f+1 combined coin shares electing the leader of a view.
struct CoinQC {
  View view = 0;
  crypto::ThresholdSig sig;

  bool operator==(const CoinQC&) const = default;
  void encode(Encoder& enc) const;
  static std::optional<CoinQC> decode(Decoder& dec);

  ReplicaId leader(const crypto::CryptoSystem& crypto) const {
    return crypto.coin.leader_from(sig);
  }
};

bool verify_coin_qc(const crypto::CryptoSystem& crypto, const CoinQC& qc);
std::optional<CoinQC> combine_coin_qc(const crypto::CryptoSystem& crypto, View view,
                                      std::span<const crypto::PartialSig> shares);

// ---------------------------------------------------------------------------
// Cached verification (the message hot path)
// ---------------------------------------------------------------------------
//
// Each function below is equivalent to its uncached counterpart, but
// consults a VerifierCache first and records successful verifications in
// it. The cache key is a domain-separated digest over exactly the bytes
// full verification checks — the signing message plus the combined
// signature value — so a hit implies a prior full verification of
// byte-identical content (see docs/PROTOCOL.md §7 for the safety
// argument). Failed verifications are never cached.

/// Cache key for a certificate: digest over (kind domain, signing
/// message, signature). Genesis has no signature and is never cached.
crypto::Digest cert_cache_key(const Certificate& cert);
crypto::Digest tc_cache_key(const TimeoutCert& tc);
crypto::Digest ftc_cache_key(const FallbackTC& ftc);
crypto::Digest coin_qc_cache_key(const CoinQC& qc);

bool verify_certificate(const crypto::CryptoSystem& crypto, crypto::VerifierCache& cache,
                        const Certificate& cert);
bool verify_tc(const crypto::CryptoSystem& crypto, crypto::VerifierCache& cache,
               const TimeoutCert& tc);
bool verify_ftc(const crypto::CryptoSystem& crypto, crypto::VerifierCache& cache,
                const FallbackTC& ftc);
bool verify_coin_qc(const crypto::CryptoSystem& crypto, crypto::VerifierCache& cache,
                    const CoinQC& qc);

/// Record certificates we combined ourselves (from individually verified
/// shares) as pre-verified, so our own QCs never pay a redundant full
/// verification when they come back to us in messages.
void note_verified(crypto::VerifierCache& cache, const Certificate& cert);
void note_verified(crypto::VerifierCache& cache, const TimeoutCert& tc);
void note_verified(crypto::VerifierCache& cache, const FallbackTC& ftc);
void note_verified(crypto::VerifierCache& cache, const CoinQC& qc);

}  // namespace repro::smr
