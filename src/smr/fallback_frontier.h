// Per-view fallback chain bookkeeping: the certified frontier.
//
// One fallback view runs up to n parallel f-block chains (one per chain
// owner). The scale-out optimizations of DESIGN.md §13 need two views of
// that race, collected here behind one interface:
//
//  * per-owner: the highest completed f-QC of each owner's chain, used by
//    the Exit-Fallback lock (f-QCs of the elected leader) and by the
//    certificate-relay piggyback (the coin-QC carries the elected
//    leader's best f-QC so stragglers exit holding the same lock);
//  * global: the frontier — the highest certified f-block position any
//    chain has reached this view, which is what adoption extends.
//
// Only *verified* certificates may be observed; callers run them through
// the replica's VerifierCache first (a forged certificate must never move
// the frontier — see the Byzantine-adoption tests).
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>

#include "common/types.h"
#include "smr/certificates.h"

namespace repro::smr {

class FallbackFrontier {
 public:
  /// Start tracking `view`; drops all state of the previous view.
  void reset(View view) {
    view_ = view;
    by_owner_.clear();
    height_ = 0;
    round_ = 0;
    certs_seen_ = 0;
  }

  /// Record a verified f-QC. Returns true if it raised its owner's best
  /// position (it was news). Certificates of other views or kinds are
  /// ignored — the caller does not need to pre-filter.
  bool observe(const Certificate& fqc) {
    if (fqc.kind != CertKind::kFallback || fqc.view != view_) return false;
    ++certs_seen_;
    if (fqc.height > height_ || (fqc.height == height_ && fqc.round > round_)) {
      height_ = fqc.height;
      round_ = fqc.round;
    }
    auto it = by_owner_.find(fqc.proposer);
    if (it != by_owner_.end() && it->second.round >= fqc.round) return false;
    by_owner_.insert_or_assign(fqc.proposer, fqc);
    return true;
  }

  View view() const { return view_; }

  /// Highest certified f-block height observed this view (0 = none yet).
  FallbackHeight height() const { return height_; }

  /// Round of the frontier certificate (0 = none yet).
  Round round() const { return round_; }

  /// Verified f-QCs observed this view (duplicates included).
  std::uint64_t certs_seen() const { return certs_seen_; }

  /// `owner`'s highest completed f-QC this view, nullptr if none.
  const Certificate* best_of(ReplicaId owner) const {
    auto it = by_owner_.find(owner);
    return it == by_owner_.end() ? nullptr : &it->second;
  }

  /// Approximate heap footprint, for the repro_share_pool_bytes audit.
  std::size_t approx_bytes() const {
    return by_owner_.size() * (sizeof(ReplicaId) + sizeof(Certificate) + 48);
  }

 private:
  View view_ = 0;
  FallbackHeight height_ = 0;
  Round round_ = 0;
  std::uint64_t certs_seen_ = 0;
  std::map<ReplicaId, Certificate> by_owner_;
};

/// Floor on the designated coin-QC relayer count. A straggler's exit
/// latency is the minimum over the relayed copies' delays, so very small
/// relayer sets visibly widen the exit spread at small n — exactly where
/// the relay savings are negligible (the suppression saves (n - relayers)
/// · n messages per view, ~2/3 of the coin-QC traffic at n >= 100 but
/// nothing worth having at n <= 8). Below the floor every replica relays,
/// which is the seed behaviour.
inline constexpr std::uint32_t kMinCoinRelayers = 8;

/// Designated coin-QC relayers for `view`: the max(f+1, kMinCoinRelayers)
/// replicas {(view + k) mod n : k = 0..count-1}. Rotating with the view
/// spreads the relay load; f+1 designated relayers always include at
/// least one honest replica, and the relay is only a latency aid anyway —
/// coin shares are multicast, so every honest replica eventually
/// assembles the coin-QC itself even if every relayed copy is withheld.
inline bool is_coin_relayer(ReplicaId id, View view, std::uint32_t n, std::uint32_t f) {
  const std::uint32_t count = std::max(f + 1, std::min(n, kMinCoinRelayers));
  const std::uint32_t start = static_cast<std::uint32_t>(view % n);
  const std::uint32_t offset = (id + n - start) % n;
  return offset < count;
}

/// Whether the certificate-relay suppressions engage at committee size
/// `n`. Below the relayer floor every mechanism is inert — the relayer
/// set is all of n already, and the vote / coin-share suppressions would
/// save O(n) messages per view while perturbing the delivery schedule of
/// exactly the configurations where one message can decide whether a
/// crash-recovery trajectory converges. Above the floor the savings are
/// O(n^2) per view and the suppressions carry the scale-out win
/// (DESIGN.md §13). cert_relay=on at n <= kMinCoinRelayers is therefore
/// byte-identical to cert_relay=off.
inline bool relay_active(std::uint32_t n) { return n > kMinCoinRelayers; }

}  // namespace repro::smr
