// Ranks of blocks / certificates.
//
// Paper §2: "QCs or blocks are ranked first by the view number and then by
// the round number", and §3: "An endorsed f-QC rank[s] higher than any QC
// ... with the same view number". So the full order is lexicographic on
// (view, endorsed, round). For the original DiemBFT (view always 0, no
// endorsement) this degenerates to ranking by round, as in the paper.
#pragma once

#include <compare>

#include "common/types.h"

namespace repro::smr {

struct Rank {
  View view = 0;
  bool endorsed = false;
  Round round = 0;

  // Lexicographic in declaration order: view, then endorsed, then round.
  friend constexpr auto operator<=>(const Rank&, const Rank&) = default;
};

constexpr Rank max(Rank a, Rank b) { return a < b ? b : a; }

}  // namespace repro::smr
