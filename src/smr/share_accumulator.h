// Optimistic quorum assembly: combine-then-verify share accumulators.
//
// The fallback path is deliberately message-quadratic (paper Thm 9), so
// per-share threshold crypto dominates the hot path: naively every incoming
// vote/timeout/coin share pays a fresh SHA-256 message_point plus a field
// check, and every certificate pays a ~t² Lagrange interpolation. The
// accumulator turns that around, the way Jolteon/Ditto-style implementations
// assemble quorums:
//
//   - the signing message's field point is hashed ONCE per target and
//     memoized (2f+1 shares on the same message hash the identical point);
//   - shares are buffered unverified (duplicate signers rejected) until the
//     threshold t is reached;
//   - at threshold, ONE Lagrange combine (coefficients served from a
//     per-replica signer-set memo, batch-inverted on miss) plus ONE verify
//     of the candidate ThresholdSig replaces t per-share verifications;
//   - only if that single check fails does the per-share fallback run: it
//     verifies the buffered shares individually, evicts + bans the invalid
//     ones (charging a per-signer blame counter), and retries with the
//     remaining + later-arriving shares.
//
// Safety: a certificate is handed out only after the combined signature
// passes `verify` (or after every contributing share was individually
// verified), so an invalid share can only make the single combined check
// fail — no unverified certificate ever forms. Liveness: invalid shares are
// evicted and their signers banned per-target, so the t-th valid share to
// arrive always completes the certificate, exactly as in eager mode.
// Honest-path cost per certificate: O(1) verifications instead of O(n).
//
// ADMISSION PRECONDITION: callers must only feed shares whose claimed
// signer equals the envelope-authenticated sender of the carrying message
// (ReplicaBase::add_share enforces this at the single choke point). The
// duplicate-signer and ban-on-invalid rules key on share.signer; without
// the binding, a Byzantine sender could stuff garbage shares under honest
// ids, bouncing the genuine shares as duplicates and getting the honest
// signers banned — the quorum would then never form.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/bytes.h"
#include "common/types.h"
#include "crypto/shamir.h"
#include "crypto/threshold.h"

namespace repro::smr {

/// Counters shared by all accumulators of one replica (surfaced through
/// ReplicaStats and the bench tables).
struct ShareStats {
  std::uint64_t shares_verified = 0;     ///< per-share verify_share calls paid
  std::uint64_t shares_deferred = 0;     ///< shares buffered without verification
  std::uint64_t combines_optimistic = 0; ///< certificates formed by combine-then-verify
  std::uint64_t combine_fallbacks = 0;   ///< combined check failed -> per-share pass
  std::uint64_t bad_shares_rejected = 0; ///< invalid shares evicted/rejected
  /// Per-signer count of rejected shares (blame for flood diagnosis).
  std::vector<std::uint64_t> blame;

  void blame_signer(ReplicaId signer) {
    if (blame.size() <= signer) blame.resize(signer + 1, 0);
    ++blame[signer];
  }
};

/// Everything an accumulator needs from its owning replica, passed per call
/// so accumulators stay cheap to store by the thousand.
struct ShareEnv {
  const crypto::ThresholdScheme* scheme = nullptr;
  crypto::LagrangeCache* lagrange = nullptr;
  ShareStats* stats = nullptr;
  bool lazy = true;  ///< false = eager per-share verification (differential mode)
};

/// Collects shares for ONE signing message and assembles the threshold
/// signature at quorum. The signing message itself is not retained — only
/// its memoized field point, which is all verification needs.
class ShareAccumulator {
 public:
  ShareAccumulator(const crypto::ThresholdScheme& scheme, BytesView signing_message);

  /// Feed one share. Returns the combined signature exactly once: on the
  /// add that completes a (verified) quorum. Duplicate signers, banned
  /// signers, out-of-range signers, and post-completion adds return
  /// nullopt, as does any add that leaves the accumulator below threshold.
  std::optional<crypto::ThresholdSig> add(const ShareEnv& env, const crypto::PartialSig& share);

  /// Distinct signers currently buffered (excludes evicted shares).
  std::size_t count() const { return slots_.size(); }
  /// True once the combined signature has been handed out.
  bool done() const { return done_; }

  /// Approximate heap footprint (the repro_share_pool_bytes audit). The
  /// per-node constants cover the red-black-tree bookkeeping of the slot
  /// map / ban set; exactness doesn't matter, scaling with n does: one
  /// accumulator buffers up to n slots, so at n=300 a single in-flight
  /// quorum costs ~21 KiB and the pool caps below bound the total.
  std::size_t approx_bytes() const {
    return sizeof(ShareAccumulator) + slots_.size() * (sizeof(ReplicaId) + sizeof(Slot) + 48) +
           banned_.size() * (sizeof(ReplicaId) + 40);
  }

 private:
  std::optional<crypto::ThresholdSig> try_assemble(const ShareEnv& env);

  crypto::Fp point_;  ///< memoized message_point of the signing message
  bool done_ = false;

  struct Slot {
    std::uint64_t value = 0;
    bool verified = false;
  };
  std::map<ReplicaId, Slot> slots_;  // signer -> share, id-ordered
  std::set<ReplicaId> banned_;       // signers whose share for this target was invalid
};

/// Keyed map of accumulators — the drop-in replacement for the verified
/// SigPool at every quorum-collection site. The signing message is built
/// lazily (first share for a key) by `make_msg`, so callers must key pools
/// by every field that feeds the signing message.
template <typename Key>
class SharePool {
 public:
  /// Feed one share for `key`. See ShareAccumulator::add for semantics.
  template <typename MakeMsg>
  std::optional<crypto::ThresholdSig> add(const ShareEnv& env, const Key& key,
                                          const crypto::PartialSig& share, MakeMsg&& make_msg) {
    auto it = pool_.find(key);
    if (it == pool_.end()) {
      if (max_entries_ != 0 && pool_.size() >= max_entries_) pool_.erase(pool_.begin());
      it = pool_.emplace(key, ShareAccumulator(*env.scheme, make_msg())).first;
    }
    return it->second.add(env, share);
  }

  std::size_t count(const Key& key) const {
    auto it = pool_.find(key);
    return it == pool_.end() ? 0 : it->second.count();
  }

  /// True if a certificate was already assembled for `key`.
  bool formed(const Key& key) const {
    auto it = pool_.find(key);
    return it != pool_.end() && it->second.done();
  }

  void clear() { pool_.clear(); }

  /// Drop entries whose key matches `pred` (periodic pruning of stale
  /// rounds/views keeps long-running replicas at bounded memory).
  template <typename Pred>
  void erase_if(Pred pred) {
    for (auto it = pool_.begin(); it != pool_.end();) {
      it = pred(it->first) ? pool_.erase(it) : std::next(it);
    }
  }

  std::size_t size() const { return pool_.size(); }

  /// Hard cap on live accumulators (0 = unbounded). The periodic
  /// round/view pruning already bounds honest load; the cap is the
  /// Byzantine-flood backstop that turns "bounded in expectation" into a
  /// provable per-replica byte budget (DESIGN.md §13.4): when a new key
  /// would exceed it, the lowest-ordered entry is evicted. Set it well
  /// above the pruning window so honest runs never touch it — an evicted
  /// live quorum would have to re-collect its shares.
  void set_max_entries(std::size_t cap) { max_entries_ = cap; }

  /// Approximate heap footprint across all accumulators (the
  /// repro_share_pool_bytes gauge). Walks the pool — metrics snapshots
  /// are off the hot path.
  std::size_t approx_bytes() const {
    std::size_t total = 0;
    for (const auto& [key, acc] : pool_) total += sizeof(Key) + 48 + acc.approx_bytes();
    return total;
  }

 private:
  std::map<Key, ShareAccumulator> pool_;
  std::size_t max_entries_ = 0;
};

}  // namespace repro::smr
