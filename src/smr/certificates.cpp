#include "smr/certificates.h"

namespace repro::smr {

BlockId genesis_id() {
  return crypto::sha256_tagged("repro/genesis", BytesView{});
}

Certificate genesis_certificate() {
  Certificate c;
  c.kind = CertKind::kGenesis;
  c.block_id = genesis_id();
  c.round = 0;
  c.view = 0;
  return c;
}

void Certificate::encode(Encoder& enc) const {
  enc.u8(static_cast<std::uint8_t>(kind));
  enc.raw(BytesView(block_id.data(), block_id.size()));
  enc.u64(round);
  enc.u64(view);
  enc.u32(height);
  enc.u32(proposer);
  enc.u64(sig.value);
}

std::optional<Certificate> Certificate::decode(Decoder& dec) {
  Certificate c;
  auto kind = dec.u8();
  auto id = dec.raw(32);
  auto round = dec.u64();
  auto view = dec.u64();
  auto height = dec.u32();
  auto proposer = dec.u32();
  auto sig = dec.u64();
  if (!kind || !id || !round || !view || !height || !proposer || !sig) return std::nullopt;
  if (*kind > static_cast<std::uint8_t>(CertKind::kFallback)) return std::nullopt;
  c.kind = static_cast<CertKind>(*kind);
  std::copy(id->begin(), id->end(), c.block_id.begin());
  c.round = *round;
  c.view = *view;
  c.height = *height;
  c.proposer = *proposer;
  c.sig.value = *sig;
  return c;
}

Bytes cert_signing_message(CertKind kind, const BlockId& id, Round round, View view,
                           FallbackHeight height, ReplicaId proposer) {
  Encoder enc;
  enc.str(kind == CertKind::kFallback ? "repro/fqc" : "repro/qc");
  enc.raw(BytesView(id.data(), id.size()));
  enc.u64(round);
  enc.u64(view);
  if (kind == CertKind::kFallback) {
    enc.u32(height);
    enc.u32(proposer);
  }
  return std::move(enc).result();
}

bool verify_certificate(const crypto::CryptoSystem& crypto, const Certificate& cert) {
  switch (cert.kind) {
    case CertKind::kGenesis:
      return cert == genesis_certificate();
    case CertKind::kQuorum:
      if (cert.height != 0) return false;
      break;
    case CertKind::kFallback:
      if (cert.height < 1 || cert.height > 3) return false;
      if (cert.proposer >= crypto.params.n) return false;
      break;
  }
  const Bytes msg = cert_signing_message(cert.kind, cert.block_id, cert.round, cert.view,
                                         cert.height, cert.proposer);
  return crypto.quorum_sigs.verify(cert.sig, msg);
}

std::optional<Certificate> combine_certificate(const crypto::CryptoSystem& crypto,
                                               CertKind kind, const BlockId& id, Round round,
                                               View view, FallbackHeight height,
                                               ReplicaId proposer,
                                               std::span<const crypto::PartialSig> shares) {
  const Bytes msg = cert_signing_message(kind, id, round, view, height, proposer);
  auto sig = crypto.quorum_sigs.combine(shares, msg);
  if (!sig) return std::nullopt;
  Certificate c;
  c.kind = kind;
  c.block_id = id;
  c.round = round;
  c.view = view;
  c.height = height;
  c.proposer = proposer;
  c.sig = *sig;
  return c;
}

void TimeoutCert::encode(Encoder& enc) const {
  enc.u64(round);
  enc.u64(sig.value);
}

std::optional<TimeoutCert> TimeoutCert::decode(Decoder& dec) {
  auto round = dec.u64();
  auto sig = dec.u64();
  if (!round || !sig) return std::nullopt;
  return TimeoutCert{*round, crypto::ThresholdSig{*sig}};
}

Bytes tc_signing_message(Round round) {
  Encoder enc;
  enc.str("repro/tc");
  enc.u64(round);
  return std::move(enc).result();
}

bool verify_tc(const crypto::CryptoSystem& crypto, const TimeoutCert& tc) {
  return crypto.quorum_sigs.verify(tc.sig, tc_signing_message(tc.round));
}

std::optional<TimeoutCert> combine_tc(const crypto::CryptoSystem& crypto, Round round,
                                      std::span<const crypto::PartialSig> shares) {
  auto sig = crypto.quorum_sigs.combine(shares, tc_signing_message(round));
  if (!sig) return std::nullopt;
  return TimeoutCert{round, *sig};
}

void FallbackTC::encode(Encoder& enc) const {
  enc.u64(view);
  enc.u64(sig.value);
}

std::optional<FallbackTC> FallbackTC::decode(Decoder& dec) {
  auto view = dec.u64();
  auto sig = dec.u64();
  if (!view || !sig) return std::nullopt;
  return FallbackTC{*view, crypto::ThresholdSig{*sig}};
}

Bytes ftc_signing_message(View view) {
  Encoder enc;
  enc.str("repro/ftc");
  enc.u64(view);
  return std::move(enc).result();
}

bool verify_ftc(const crypto::CryptoSystem& crypto, const FallbackTC& ftc) {
  return crypto.quorum_sigs.verify(ftc.sig, ftc_signing_message(ftc.view));
}

std::optional<FallbackTC> combine_ftc(const crypto::CryptoSystem& crypto, View view,
                                      std::span<const crypto::PartialSig> shares) {
  auto sig = crypto.quorum_sigs.combine(shares, ftc_signing_message(view));
  if (!sig) return std::nullopt;
  return FallbackTC{view, *sig};
}

void CoinQC::encode(Encoder& enc) const {
  enc.u64(view);
  enc.u64(sig.value);
}

std::optional<CoinQC> CoinQC::decode(Decoder& dec) {
  auto view = dec.u64();
  auto sig = dec.u64();
  if (!view || !sig) return std::nullopt;
  return CoinQC{*view, crypto::ThresholdSig{*sig}};
}

bool verify_coin_qc(const crypto::CryptoSystem& crypto, const CoinQC& qc) {
  return crypto.coin.verify(qc.sig, qc.view);
}

std::optional<CoinQC> combine_coin_qc(const crypto::CryptoSystem& crypto, View view,
                                      std::span<const crypto::PartialSig> shares) {
  auto sig = crypto.coin.combine(shares, view);
  if (!sig) return std::nullopt;
  return CoinQC{view, *sig};
}

// ---------------------------------------------------------------------------
// Cached verification
// ---------------------------------------------------------------------------

namespace {

/// Digest over (domain tag, signing message, signature value). The key
/// covers every byte full verification reads, so two certificates map to
/// the same key iff full verification is the same computation for both.
crypto::Digest verified_key(std::string_view tag, BytesView signing_message,
                            const crypto::ThresholdSig& sig) {
  Encoder enc;
  enc.raw(signing_message);
  enc.u64(sig.value);
  return crypto::sha256_tagged(tag, std::move(enc).result());
}

}  // namespace

crypto::Digest cert_cache_key(const Certificate& cert) {
  const Bytes msg = cert_signing_message(cert.kind, cert.block_id, cert.round, cert.view,
                                         cert.height, cert.proposer);
  return verified_key("repro/vc-cert", msg, cert.sig);
}

crypto::Digest tc_cache_key(const TimeoutCert& tc) {
  return verified_key("repro/vc-tc", tc_signing_message(tc.round), tc.sig);
}

crypto::Digest ftc_cache_key(const FallbackTC& ftc) {
  return verified_key("repro/vc-ftc", ftc_signing_message(ftc.view), ftc.sig);
}

crypto::Digest coin_qc_cache_key(const CoinQC& qc) {
  Encoder enc;
  enc.u64(qc.view);
  return verified_key("repro/vc-coin", std::move(enc).result(), qc.sig);
}

bool verify_certificate(const crypto::CryptoSystem& crypto, crypto::VerifierCache& cache,
                        const Certificate& cert) {
  // Genesis verifies by a plain comparison — cheaper than hashing a key.
  if (cert.kind == CertKind::kGenesis) return cert == genesis_certificate();
  const crypto::Digest key = cert_cache_key(cert);
  if (cache.check(key)) return true;
  if (!verify_certificate(crypto, cert)) return false;
  cache.insert(key);
  return true;
}

bool verify_tc(const crypto::CryptoSystem& crypto, crypto::VerifierCache& cache,
               const TimeoutCert& tc) {
  const crypto::Digest key = tc_cache_key(tc);
  if (cache.check(key)) return true;
  if (!verify_tc(crypto, tc)) return false;
  cache.insert(key);
  return true;
}

bool verify_ftc(const crypto::CryptoSystem& crypto, crypto::VerifierCache& cache,
                const FallbackTC& ftc) {
  const crypto::Digest key = ftc_cache_key(ftc);
  if (cache.check(key)) return true;
  if (!verify_ftc(crypto, ftc)) return false;
  cache.insert(key);
  return true;
}

bool verify_coin_qc(const crypto::CryptoSystem& crypto, crypto::VerifierCache& cache,
                    const CoinQC& qc) {
  const crypto::Digest key = coin_qc_cache_key(qc);
  if (cache.check(key)) return true;
  if (!verify_coin_qc(crypto, qc)) return false;
  cache.insert(key);
  return true;
}

void note_verified(crypto::VerifierCache& cache, const Certificate& cert) {
  if (cert.kind == CertKind::kGenesis) return;
  cache.insert(cert_cache_key(cert));
}

void note_verified(crypto::VerifierCache& cache, const TimeoutCert& tc) {
  cache.insert(tc_cache_key(tc));
}

void note_verified(crypto::VerifierCache& cache, const FallbackTC& ftc) {
  cache.insert(ftc_cache_key(ftc));
}

void note_verified(crypto::VerifierCache& cache, const CoinQC& qc) {
  cache.insert(coin_qc_cache_key(qc));
}

}  // namespace repro::smr
