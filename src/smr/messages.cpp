#include "smr/messages.h"

#include "common/assert.h"

namespace repro::smr {
namespace {

void encode_partial(Encoder& enc, const crypto::PartialSig& p) {
  enc.u32(p.signer);
  enc.u64(p.value);
}

std::optional<crypto::PartialSig> decode_partial(Decoder& dec) {
  auto signer = dec.u32();
  auto value = dec.u64();
  if (!signer || !value) return std::nullopt;
  return crypto::PartialSig{*signer, *value};
}

void encode_sig(Encoder& enc, const crypto::Signature& s) {
  enc.raw(BytesView(s.data(), s.size()));
}

std::optional<crypto::Signature> decode_sig(Decoder& dec) {
  auto raw = dec.raw(32);
  if (!raw) return std::nullopt;
  crypto::Signature s;
  std::copy(raw->begin(), raw->end(), s.begin());
  return s;
}

void encode_coins(Encoder& enc, const std::vector<CoinQC>& coins) {
  enc.u32(static_cast<std::uint32_t>(coins.size()));
  for (const auto& c : coins) c.encode(enc);
}

std::optional<std::vector<CoinQC>> decode_coins(Decoder& dec) {
  auto count = dec.u32();
  if (!count || *count > 64) return std::nullopt;  // sanity bound
  std::vector<CoinQC> coins;
  coins.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto c = CoinQC::decode(dec);
    if (!c) return std::nullopt;
    coins.push_back(*c);
  }
  return coins;
}

void encode_block_id(Encoder& enc, const BlockId& id) {
  enc.raw(BytesView(id.data(), id.size()));
}

std::optional<BlockId> decode_block_id(Decoder& dec) {
  auto raw = dec.raw(32);
  if (!raw) return std::nullopt;
  BlockId id;
  std::copy(raw->begin(), raw->end(), id.begin());
  return id;
}

// ---- per-type body encoding (everything except the trailing signature) --

void encode_body(Encoder& enc, const ProposalMsg& m) {
  m.block.encode(enc);
  enc.bool_(m.tc.has_value());
  if (m.tc) m.tc->encode(enc);
  encode_coins(enc, m.coins);
}

void encode_body(Encoder& enc, const VoteMsg& m) {
  encode_block_id(enc, m.block_id);
  enc.u64(m.round);
  enc.u64(m.view);
  encode_partial(enc, m.share);
}

void encode_body(Encoder& enc, const DiemTimeoutMsg& m) {
  enc.u64(m.round);
  encode_partial(enc, m.round_share);
  m.qc_high.encode(enc);
}

void encode_body(Encoder& enc, const DiemTcMsg& m) { m.tc.encode(enc); }

void encode_body(Encoder& enc, const FbTimeoutMsg& m) {
  enc.u64(m.view);
  encode_partial(enc, m.view_share);
  m.qc_high.encode(enc);
  encode_coins(enc, m.coins);
}

void encode_body(Encoder& enc, const FbProposalMsg& m) {
  m.block.encode(enc);
  enc.bool_(m.ftc.has_value());
  if (m.ftc) m.ftc->encode(enc);
  encode_coins(enc, m.coins);
}

void encode_body(Encoder& enc, const FbVoteMsg& m) {
  encode_block_id(enc, m.block_id);
  enc.u64(m.round);
  enc.u64(m.view);
  enc.u32(m.height);
  enc.u32(m.chain_owner);
  encode_partial(enc, m.share);
}

void encode_body(Encoder& enc, const FbQcMsg& m) { m.fqc.encode(enc); }

void encode_body(Encoder& enc, const CoinShareMsg& m) {
  enc.u64(m.view);
  encode_partial(enc, m.share);
}

void encode_body(Encoder& enc, const CoinQcMsg& m) {
  m.qc.encode(enc);
  enc.bool_(m.leader_best.has_value());
  if (m.leader_best) m.leader_best->encode(enc);
}

void encode_body(Encoder& enc, const BlockRequestMsg& m) {
  encode_block_id(enc, m.block_id);
  enc.u32(m.ancestors);
}

void encode_body(Encoder& enc, const BlockResponseMsg& m) {
  enc.u32(static_cast<std::uint32_t>(m.blocks.size()));
  for (const Block& b : m.blocks) b.encode(enc);
}

void encode_body(Encoder& enc, const BatchMsg& m) { enc.bytes(m.data); }

void encode_body(Encoder& enc, const BatchPullMsg& m) {
  enc.raw(BytesView(m.batch_id.data(), m.batch_id.size()));
}

void encode_body(Encoder& enc, const BatchPushMsg& m) { enc.bytes(m.data); }

// ---- per-type body decoding ---------------------------------------------

std::optional<ProposalMsg> decode_proposal(Decoder& dec) {
  ProposalMsg m;
  auto block = Block::decode(dec);
  if (!block) return std::nullopt;
  m.block = std::move(*block);
  auto has_tc = dec.bool_();
  if (!has_tc) return std::nullopt;
  if (*has_tc) {
    auto tc = TimeoutCert::decode(dec);
    if (!tc) return std::nullopt;
    m.tc = *tc;
  }
  auto coins = decode_coins(dec);
  if (!coins) return std::nullopt;
  m.coins = std::move(*coins);
  auto sig = decode_sig(dec);
  if (!sig) return std::nullopt;
  m.sig = *sig;
  return m;
}

std::optional<VoteMsg> decode_vote(Decoder& dec) {
  VoteMsg m;
  auto id = decode_block_id(dec);
  auto round = dec.u64();
  auto view = dec.u64();
  auto share = decode_partial(dec);
  if (!id || !round || !view || !share) return std::nullopt;
  m.block_id = *id;
  m.round = *round;
  m.view = *view;
  m.share = *share;
  return m;
}

std::optional<DiemTimeoutMsg> decode_diem_timeout(Decoder& dec) {
  DiemTimeoutMsg m;
  auto round = dec.u64();
  auto share = decode_partial(dec);
  if (!round || !share) return std::nullopt;
  auto qc = Certificate::decode(dec);
  auto sig = decode_sig(dec);
  if (!qc || !sig) return std::nullopt;
  m.round = *round;
  m.round_share = *share;
  m.qc_high = *qc;
  m.sig = *sig;
  return m;
}

std::optional<DiemTcMsg> decode_diem_tc(Decoder& dec) {
  auto tc = TimeoutCert::decode(dec);
  if (!tc) return std::nullopt;
  return DiemTcMsg{*tc};
}

std::optional<FbTimeoutMsg> decode_fb_timeout(Decoder& dec) {
  FbTimeoutMsg m;
  auto view = dec.u64();
  auto share = decode_partial(dec);
  if (!view || !share) return std::nullopt;
  auto qc = Certificate::decode(dec);
  auto coins = decode_coins(dec);
  auto sig = decode_sig(dec);
  if (!qc || !coins || !sig) return std::nullopt;
  m.view = *view;
  m.view_share = *share;
  m.qc_high = *qc;
  m.coins = std::move(*coins);
  m.sig = *sig;
  return m;
}

std::optional<FbProposalMsg> decode_fb_proposal(Decoder& dec) {
  FbProposalMsg m;
  auto block = Block::decode(dec);
  if (!block) return std::nullopt;
  m.block = std::move(*block);
  auto has_ftc = dec.bool_();
  if (!has_ftc) return std::nullopt;
  if (*has_ftc) {
    auto ftc = FallbackTC::decode(dec);
    if (!ftc) return std::nullopt;
    m.ftc = *ftc;
  }
  auto coins = decode_coins(dec);
  auto sig = decode_sig(dec);
  if (!coins || !sig) return std::nullopt;
  m.coins = std::move(*coins);
  m.sig = *sig;
  return m;
}

std::optional<FbVoteMsg> decode_fb_vote(Decoder& dec) {
  FbVoteMsg m;
  auto id = decode_block_id(dec);
  auto round = dec.u64();
  auto view = dec.u64();
  auto height = dec.u32();
  auto owner = dec.u32();
  auto share = decode_partial(dec);
  if (!id || !round || !view || !height || !owner || !share) return std::nullopt;
  m.block_id = *id;
  m.round = *round;
  m.view = *view;
  m.height = *height;
  m.chain_owner = *owner;
  m.share = *share;
  return m;
}

std::optional<FbQcMsg> decode_fb_qc(Decoder& dec) {
  auto fqc = Certificate::decode(dec);
  auto sig = decode_sig(dec);
  if (!fqc || !sig) return std::nullopt;
  return FbQcMsg{*fqc, *sig};
}

std::optional<CoinShareMsg> decode_coin_share(Decoder& dec) {
  auto view = dec.u64();
  auto share = decode_partial(dec);
  if (!view || !share) return std::nullopt;
  return CoinShareMsg{*view, *share};
}

std::optional<CoinQcMsg> decode_coin_qc(Decoder& dec) {
  auto qc = CoinQC::decode(dec);
  if (!qc) return std::nullopt;
  auto has_best = dec.bool_();
  if (!has_best) return std::nullopt;
  CoinQcMsg msg{*qc, std::nullopt};
  if (*has_best) {
    auto best = Certificate::decode(dec);
    if (!best) return std::nullopt;
    msg.leader_best = *best;
  }
  return msg;
}

std::optional<BlockRequestMsg> decode_block_request(Decoder& dec) {
  auto id = decode_block_id(dec);
  auto ancestors = dec.u32();
  if (!id || !ancestors) return std::nullopt;
  return BlockRequestMsg{*id, *ancestors};
}

std::optional<BlockResponseMsg> decode_block_response(Decoder& dec) {
  auto count = dec.u32();
  if (!count || *count > kMaxBlocksPerResponse) return std::nullopt;
  BlockResponseMsg m;
  m.blocks.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto block = Block::decode(dec);
    if (!block) return std::nullopt;
    m.blocks.push_back(std::move(*block));
  }
  return m;
}

std::optional<BatchMsg> decode_batch(Decoder& dec) {
  auto data = dec.bytes();
  if (!data) return std::nullopt;
  return BatchMsg{std::move(*data)};
}

std::optional<BatchPullMsg> decode_batch_pull(Decoder& dec) {
  auto raw = dec.raw(32);
  if (!raw) return std::nullopt;
  BatchPullMsg m;
  std::copy(raw->begin(), raw->end(), m.batch_id.begin());
  return m;
}

std::optional<BatchPushMsg> decode_batch_push(Decoder& dec) {
  auto data = dec.bytes();
  if (!data) return std::nullopt;
  return BatchPushMsg{std::move(*data)};
}

// ---- per-type body wire sizes -------------------------------------------
//
// Mirrors the encode_body functions above field by field; a round-trip
// test pins encoded_size() == encode_message().size() for every type.

constexpr std::size_t kCertSize = 1 + 32 + 8 + 8 + 4 + 4 + 8;  // Certificate
constexpr std::size_t kThresholdCertSize = 8 + 8;  // TimeoutCert / FallbackTC / CoinQC
constexpr std::size_t kPartialSize = 4 + 8;        // PartialSig
constexpr std::size_t kSigSize = 32;               // outer Signature

std::size_t coins_size(const std::vector<CoinQC>& coins) {
  return 4 + kThresholdCertSize * coins.size();
}

std::size_t block_size(const Block& b) {
  return 32 + kCertSize + 8 + 8 + 4 + 4 + 1 + 4 + b.payload.size();
}

std::size_t body_size(const ProposalMsg& m) {
  return block_size(m.block) + 1 + (m.tc ? kThresholdCertSize : 0) + coins_size(m.coins);
}
std::size_t body_size(const VoteMsg&) { return 32 + 8 + 8 + kPartialSize; }
std::size_t body_size(const DiemTimeoutMsg&) { return 8 + kPartialSize + kCertSize; }
std::size_t body_size(const DiemTcMsg&) { return kThresholdCertSize; }
std::size_t body_size(const FbTimeoutMsg& m) {
  return 8 + kPartialSize + kCertSize + coins_size(m.coins);
}
std::size_t body_size(const FbProposalMsg& m) {
  return block_size(m.block) + 1 + (m.ftc ? kThresholdCertSize : 0) + coins_size(m.coins);
}
std::size_t body_size(const FbVoteMsg&) { return 32 + 8 + 8 + 4 + 4 + kPartialSize; }
std::size_t body_size(const FbQcMsg&) { return kCertSize; }
std::size_t body_size(const CoinShareMsg&) { return 8 + kPartialSize; }
std::size_t body_size(const CoinQcMsg& m) {
  return kThresholdCertSize + 1 + (m.leader_best ? kCertSize : 0);
}
std::size_t body_size(const BlockRequestMsg&) { return 32 + 4; }
std::size_t body_size(const BlockResponseMsg& m) {
  std::size_t s = 4;
  for (const Block& b : m.blocks) s += block_size(b);
  return s;
}
std::size_t body_size(const BatchMsg& m) { return 4 + m.data.size(); }
std::size_t body_size(const BatchPullMsg&) { return 32; }
std::size_t body_size(const BatchPushMsg& m) { return 4 + m.data.size(); }

// Signed messages append the signature after the body.
template <typename T>
constexpr bool kHasOuterSig =
    std::is_same_v<T, ProposalMsg> || std::is_same_v<T, DiemTimeoutMsg> ||
    std::is_same_v<T, FbTimeoutMsg> || std::is_same_v<T, FbProposalMsg> ||
    std::is_same_v<T, FbQcMsg>;

template <typename T>
Bytes signing_bytes(const T& m) {
  Encoder enc;
  enc.reserve(1 + body_size(m));
  enc.u8(static_cast<std::uint8_t>(message_type(Message{m})));
  encode_body(enc, m);
  return std::move(enc).result();
}

}  // namespace

MsgType message_type(const Message& msg) {
  return std::visit(
      [](const auto& m) -> MsgType {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, ProposalMsg>) return MsgType::kProposal;
        if constexpr (std::is_same_v<T, VoteMsg>) return MsgType::kVote;
        if constexpr (std::is_same_v<T, DiemTimeoutMsg>) return MsgType::kDiemTimeout;
        if constexpr (std::is_same_v<T, DiemTcMsg>) return MsgType::kDiemTc;
        if constexpr (std::is_same_v<T, FbTimeoutMsg>) return MsgType::kFbTimeout;
        if constexpr (std::is_same_v<T, FbProposalMsg>) return MsgType::kFbProposal;
        if constexpr (std::is_same_v<T, FbVoteMsg>) return MsgType::kFbVote;
        if constexpr (std::is_same_v<T, FbQcMsg>) return MsgType::kFbQc;
        if constexpr (std::is_same_v<T, CoinShareMsg>) return MsgType::kCoinShare;
        if constexpr (std::is_same_v<T, CoinQcMsg>) return MsgType::kCoinQc;
        if constexpr (std::is_same_v<T, BlockRequestMsg>) return MsgType::kBlockRequest;
        if constexpr (std::is_same_v<T, BlockResponseMsg>) return MsgType::kBlockResponse;
        if constexpr (std::is_same_v<T, BatchMsg>) return MsgType::kBatch;
        if constexpr (std::is_same_v<T, BatchPullMsg>) return MsgType::kBatchPull;
        if constexpr (std::is_same_v<T, BatchPushMsg>) return MsgType::kBatchPush;
      },
      msg);
}

std::size_t encoded_size(const Message& msg) {
  return std::visit(
      [](const auto& m) -> std::size_t {
        using T = std::decay_t<decltype(m)>;
        return 1 + body_size(m) + (kHasOuterSig<T> ? kSigSize : 0);
      },
      msg);
}

Bytes encode_message(const Message& msg) {
  Encoder enc;
  enc.reserve(encoded_size(msg));
  enc.u8(static_cast<std::uint8_t>(message_type(msg)));
  std::visit(
      [&enc](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        encode_body(enc, m);
        if constexpr (kHasOuterSig<T>) encode_sig(enc, m.sig);
      },
      msg);
  return std::move(enc).result();
}

std::optional<Message> decode_message(BytesView data) {
  Decoder dec(data);
  auto tag = dec.u8();
  if (!tag) return std::nullopt;
  std::optional<Message> out;
  switch (static_cast<MsgType>(*tag)) {
    case MsgType::kProposal: {
      auto m = decode_proposal(dec);
      if (m) out = std::move(*m);
      break;
    }
    case MsgType::kVote: {
      auto m = decode_vote(dec);
      if (m) out = *m;
      break;
    }
    case MsgType::kDiemTimeout: {
      auto m = decode_diem_timeout(dec);
      if (m) out = *m;
      break;
    }
    case MsgType::kDiemTc: {
      auto m = decode_diem_tc(dec);
      if (m) out = *m;
      break;
    }
    case MsgType::kFbTimeout: {
      auto m = decode_fb_timeout(dec);
      if (m) out = std::move(*m);
      break;
    }
    case MsgType::kFbProposal: {
      auto m = decode_fb_proposal(dec);
      if (m) out = std::move(*m);
      break;
    }
    case MsgType::kFbVote: {
      auto m = decode_fb_vote(dec);
      if (m) out = *m;
      break;
    }
    case MsgType::kFbQc: {
      auto m = decode_fb_qc(dec);
      if (m) out = *m;
      break;
    }
    case MsgType::kCoinShare: {
      auto m = decode_coin_share(dec);
      if (m) out = *m;
      break;
    }
    case MsgType::kCoinQc: {
      auto m = decode_coin_qc(dec);
      if (m) out = *m;
      break;
    }
    case MsgType::kBlockRequest: {
      auto m = decode_block_request(dec);
      if (m) out = *m;
      break;
    }
    case MsgType::kBlockResponse: {
      auto m = decode_block_response(dec);
      if (m) out = std::move(*m);
      break;
    }
    case MsgType::kBatch: {
      auto m = decode_batch(dec);
      if (m) out = std::move(*m);
      break;
    }
    case MsgType::kBatchPull: {
      auto m = decode_batch_pull(dec);
      if (m) out = *m;
      break;
    }
    case MsgType::kBatchPush: {
      auto m = decode_batch_push(dec);
      if (m) out = std::move(*m);
      break;
    }
    default:
      return std::nullopt;
  }
  if (!out || !dec.done()) return std::nullopt;  // reject trailing garbage
  return out;
}

void sign_message(const crypto::CryptoSystem& crypto, ReplicaId signer, Message& msg) {
  std::visit(
      [&](auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (kHasOuterSig<T>) {
          m.sig = crypto.signatures.sign(signer, signing_bytes(m));
        }
      },
      msg);
}

bool verify_message_signature(const crypto::CryptoSystem& crypto, ReplicaId sender,
                              const Message& msg) {
  return std::visit(
      [&](const auto& m) -> bool {
        using T = std::decay_t<decltype(m)>;
        if constexpr (kHasOuterSig<T>) {
          return crypto.signatures.verify(sender, signing_bytes(m), m.sig);
        } else {
          (void)m;
          return true;
        }
      },
      msg);
}

bool verify_message_signature_wire(const crypto::CryptoSystem& crypto, ReplicaId sender,
                                   const Message& msg, BytesView payload) {
  return std::visit(
      [&](const auto& m) -> bool {
        using T = std::decay_t<decltype(m)>;
        if constexpr (kHasOuterSig<T>) {
          // decode_message consumed the whole buffer and read m.sig from
          // its tail, so the signed prefix is everything before it.
          if (payload.size() < 1 + kSigSize) return false;
          return crypto.signatures.verify(sender, payload.first(payload.size() - kSigSize),
                                          m.sig);
        } else {
          (void)m;
          return true;
        }
      },
      msg);
}

}  // namespace repro::smr
