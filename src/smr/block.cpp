#include "smr/block.h"

namespace repro::smr {

BlockId Block::compute_id(const Certificate& parent, Round round, View view,
                          FallbackHeight height, ReplicaId proposer, BytesView payload,
                          std::uint8_t payload_kind) {
  Encoder enc;
  parent.encode(enc);
  enc.u64(round);
  enc.u64(view);
  enc.u32(height);
  enc.u32(proposer);
  enc.u8(payload_kind);
  enc.bytes(payload);
  return crypto::sha256_tagged("repro/block", enc.result());
}

Block Block::make(const Certificate& parent, Round round, View view, FallbackHeight height,
                  ReplicaId proposer, Bytes payload, std::uint8_t payload_kind) {
  Block b;
  b.parent = parent;
  b.round = round;
  b.view = view;
  b.height = height;
  b.proposer = proposer;
  b.payload_kind = payload_kind;
  b.payload = std::move(payload);
  b.id = compute_id(b.parent, b.round, b.view, b.height, b.proposer, b.payload,
                    b.payload_kind);
  return b;
}

BatchId Block::batch_ref() const {
  BatchId out{};
  if (payload.size() == out.size()) std::copy(payload.begin(), payload.end(), out.begin());
  return out;
}

const Block& Block::genesis() {
  static const Block g = [] {
    Block b;
    b.parent = genesis_certificate();
    b.round = 0;
    b.view = 0;
    b.height = 0;
    b.proposer = 0;
    b.id = genesis_id();
    return b;
  }();
  return g;
}

bool Block::id_consistent() const {
  if (is_genesis()) return *this == genesis();
  if (payload_kind == kBatchRefPayload && payload.size() != 32) return false;
  if (payload_kind > kBatchRefPayload) return false;
  return id == compute_id(parent, round, view, height, proposer, payload, payload_kind);
}

void Block::encode(Encoder& enc) const {
  enc.raw(BytesView(id.data(), id.size()));
  parent.encode(enc);
  enc.u64(round);
  enc.u64(view);
  enc.u32(height);
  enc.u32(proposer);
  enc.u8(payload_kind);
  enc.bytes(payload);
}

std::optional<Block> Block::decode(Decoder& dec) {
  auto id = dec.raw(32);
  if (!id) return std::nullopt;
  auto parent = Certificate::decode(dec);
  auto round = dec.u64();
  auto view = dec.u64();
  auto height = dec.u32();
  auto proposer = dec.u32();
  auto payload_kind = dec.u8();
  auto payload = dec.bytes();
  if (!parent || !round || !view || !height || !proposer || !payload_kind || !payload) {
    return std::nullopt;
  }
  Block b;
  std::copy(id->begin(), id->end(), b.id.begin());
  b.parent = *parent;
  b.round = *round;
  b.view = *view;
  b.height = *height;
  b.proposer = *proposer;
  b.payload_kind = *payload_kind;
  b.payload = std::move(*payload);
  return b;
}

}  // namespace repro::smr
