// Experiment µ — microbenchmarks (google-benchmark) for the cryptographic
// substrate and serialization: these set the constant factors behind
// every protocol message the macro benches count.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "crypto/dealer.h"
#include "crypto/verifier_cache.h"
#include "smr/block.h"
#include "smr/certificates.h"
#include "smr/messages.h"

using namespace repro;

namespace {

void BM_Sha256(benchmark::State& state) {
  const std::size_t size = state.range(0);
  Bytes data(size, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * size));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_FieldMul(benchmark::State& state) {
  Rng rng(1);
  crypto::Fp a(rng.next()), b(rng.next());
  for (auto _ : state) {
    a = a * b;
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FieldMul);

void BM_FieldInverse(benchmark::State& state) {
  crypto::Fp a(123456789);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.inverse());
  }
}
BENCHMARK(BM_FieldInverse);

void BM_ThresholdSignShare(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  auto sys = crypto::CryptoSystem::deal(QuorumParams::for_n(n), 7);
  const Bytes msg = {1, 2, 3, 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys->quorum_sigs.sign_share(0, msg));
  }
}
BENCHMARK(BM_ThresholdSignShare)->Arg(4)->Arg(31);

void BM_ThresholdCombine(benchmark::State& state) {
  // Real Lagrange interpolation over 2f+1 shares — the QC formation cost.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  auto sys = crypto::CryptoSystem::deal(QuorumParams::for_n(n), 7);
  const Bytes msg = {1, 2, 3, 4};
  std::vector<crypto::PartialSig> shares;
  for (ReplicaId i = 0; i < sys->params.quorum(); ++i) {
    shares.push_back(sys->quorum_sigs.sign_share(i, msg));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys->quorum_sigs.combine(shares, msg));
  }
}
BENCHMARK(BM_ThresholdCombine)->Arg(4)->Arg(10)->Arg(31)->Arg(100);

void BM_ShareVerifyEach(benchmark::State& state) {
  // Eager quorum assembly: every arriving share pays one verify_share
  // (point memoized). Cost of collecting one certificate = t of these.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  auto sys = crypto::CryptoSystem::deal(QuorumParams::for_n(n), 7);
  const Bytes msg = {1, 2, 3, 4};
  const crypto::Fp point = sys->quorum_sigs.message_point(msg);
  std::vector<crypto::PartialSig> shares;
  for (ReplicaId i = 0; i < sys->params.quorum(); ++i) {
    shares.push_back(sys->quorum_sigs.sign_share(i, msg));
  }
  for (auto _ : state) {
    for (const auto& s : shares) {
      benchmark::DoNotOptimize(sys->quorum_sigs.verify_share_at(s, point));
    }
  }
  state.counters["shares"] = static_cast<double>(shares.size());
}
BENCHMARK(BM_ShareVerifyEach)->Arg(4)->Arg(31);

void BM_CombineThenVerify(benchmark::State& state) {
  // Lazy (optimistic) quorum assembly: one Lagrange combine over cached
  // coefficients plus ONE combined verification — the per-certificate
  // cost that replaces the t per-share checks of BM_ShareVerifyEach.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  auto sys = crypto::CryptoSystem::deal(QuorumParams::for_n(n), 7);
  const Bytes msg = {1, 2, 3, 4};
  const crypto::Fp point = sys->quorum_sigs.message_point(msg);
  std::vector<crypto::PartialSig> shares;
  std::vector<ReplicaId> ids;
  for (ReplicaId i = 0; i < sys->params.quorum(); ++i) {
    shares.push_back(sys->quorum_sigs.sign_share(i, msg));
    ids.push_back(i);
  }
  crypto::LagrangeCache cache;
  for (auto _ : state) {
    const auto& coeffs = cache.coefficients(ids);
    const auto sig = sys->quorum_sigs.combine_with_coefficients(shares, coeffs);
    benchmark::DoNotOptimize(sys->quorum_sigs.verify_at(sig, point));
  }
  state.counters["lagrange_hits"] = static_cast<double>(cache.hits());
}
BENCHMARK(BM_CombineThenVerify)->Arg(4)->Arg(31);

void BM_LagrangeBatchCoefficients(benchmark::State& state) {
  // Cold-path coefficient derivation: prefix/suffix products + ONE field
  // inversion for all t denominators (Montgomery batch inversion),
  // instead of t independent ~60-squaring inverses.
  const auto t = static_cast<std::uint32_t>(state.range(0));
  std::vector<ReplicaId> ids;
  for (ReplicaId i = 0; i < t; ++i) ids.push_back(i * 3 + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::lagrange_coefficients_at_zero(ids));
  }
}
BENCHMARK(BM_LagrangeBatchCoefficients)->Arg(3)->Arg(21)->Arg(67);

void BM_LagrangeCachedCoefficients(benchmark::State& state) {
  // Steady state: the same 2f+1 signer set recurs round after round, so
  // the coefficient vector is an LRU hit — one hash of the id vector.
  const auto t = static_cast<std::uint32_t>(state.range(0));
  std::vector<ReplicaId> ids;
  for (ReplicaId i = 0; i < t; ++i) ids.push_back(i * 3 + 1);
  crypto::LagrangeCache cache;
  cache.coefficients(ids);  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.coefficients(ids));
  }
}
BENCHMARK(BM_LagrangeCachedCoefficients)->Arg(3)->Arg(21)->Arg(67);

void BM_ThresholdVerify(benchmark::State& state) {
  auto sys = crypto::CryptoSystem::deal(QuorumParams::for_n(4), 7);
  const Bytes msg = {1, 2, 3, 4};
  std::vector<crypto::PartialSig> shares;
  for (ReplicaId i = 0; i < 3; ++i) shares.push_back(sys->quorum_sigs.sign_share(i, msg));
  const auto sig = *sys->quorum_sigs.combine(shares, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys->quorum_sigs.verify(sig, msg));
  }
}
BENCHMARK(BM_ThresholdVerify);

smr::Certificate bench_certificate(const crypto::CryptoSystem& sys) {
  const smr::BlockId id = crypto::sha256(Bytes{1, 2, 3});
  const Bytes msg = smr::cert_signing_message(smr::CertKind::kQuorum, id, 3, 0, 0, 0);
  std::vector<crypto::PartialSig> shares;
  for (ReplicaId i = 0; i < sys.params.quorum(); ++i) {
    shares.push_back(sys.quorum_sigs.sign_share(i, msg));
  }
  return *smr::combine_certificate(sys, smr::CertKind::kQuorum, id, 3, 0, 0, 0, shares);
}

void BM_CertVerifyFull(benchmark::State& state) {
  // Baseline: every delivery pays the full threshold verification. Note
  // the GF(2^61-1) model scheme verifies in O(1) field ops, so full and
  // cached-hit times are comparable here; with a production threshold
  // scheme (BLS) a verification is a pairing (~ms), which is why the
  // macro benches report the verification-*count* reduction.
  auto sys = crypto::CryptoSystem::deal(QuorumParams::for_n(4), 7);
  const smr::Certificate cert = bench_certificate(*sys);
  for (auto _ : state) {
    benchmark::DoNotOptimize(smr::verify_certificate(*sys, cert));
  }
}
BENCHMARK(BM_CertVerifyFull);

void BM_CertVerifyCachedHit(benchmark::State& state) {
  // Hot path after the first delivery of a certificate: one tagged SHA-256
  // over ~50 bytes plus an LRU lookup, no threshold math.
  auto sys = crypto::CryptoSystem::deal(QuorumParams::for_n(4), 7);
  const smr::Certificate cert = bench_certificate(*sys);
  crypto::VerifierCache cache;
  smr::verify_certificate(*sys, cache, cert);  // warm: populates the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(smr::verify_certificate(*sys, cache, cert));
  }
  state.counters["hits"] = static_cast<double>(cache.stats().hits);
  state.counters["misses"] = static_cast<double>(cache.stats().misses);
}
BENCHMARK(BM_CertVerifyCachedHit);

void BM_CertVerifyCachedMiss(benchmark::State& state) {
  // Worst case for the cache: every certificate is distinct, so each
  // verification pays key derivation + lookup + insert ON TOP of the full
  // verification. Compare against BM_CertVerifyFull for the overhead.
  auto sys = crypto::CryptoSystem::deal(QuorumParams::for_n(4), 7);
  std::vector<smr::Certificate> certs;
  for (Round r = 1; r <= 512; ++r) {
    const smr::BlockId id = crypto::sha256(Bytes{std::uint8_t(r), std::uint8_t(r >> 8)});
    const Bytes msg = smr::cert_signing_message(smr::CertKind::kQuorum, id, r, 0, 0, 0);
    std::vector<crypto::PartialSig> shares;
    for (ReplicaId i = 0; i < sys->params.quorum(); ++i) {
      shares.push_back(sys->quorum_sigs.sign_share(i, msg));
    }
    certs.push_back(*smr::combine_certificate(*sys, smr::CertKind::kQuorum, id, r, 0, 0, 0,
                                              shares));
  }
  crypto::VerifierCache cache(256);  // half the working set: all misses + evictions
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(smr::verify_certificate(*sys, cache, certs[i]));
    i = (i + 1) % certs.size();
  }
  state.counters["misses"] = static_cast<double>(cache.stats().misses);
  state.counters["evictions"] = static_cast<double>(cache.stats().evictions);
}
BENCHMARK(BM_CertVerifyCachedMiss);

void BM_CertCacheKey(benchmark::State& state) {
  // The fixed per-call overhead the cache adds: one domain-separated
  // SHA-256 over the signing message + signature.
  auto sys = crypto::CryptoSystem::deal(QuorumParams::for_n(4), 7);
  const smr::Certificate cert = bench_certificate(*sys);
  for (auto _ : state) {
    benchmark::DoNotOptimize(smr::cert_cache_key(cert));
  }
}
BENCHMARK(BM_CertCacheKey);

void BM_CoinElection(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  auto sys = crypto::CryptoSystem::deal(QuorumParams::for_n(n), 7);
  std::vector<crypto::PartialSig> shares;
  for (ReplicaId i = 0; i < sys->params.coin_quorum(); ++i) {
    shares.push_back(sys->coin.coin_share(i, 5));
  }
  for (auto _ : state) {
    auto qc = sys->coin.combine(shares, 5);
    benchmark::DoNotOptimize(sys->coin.leader_from(*qc));
  }
}
BENCHMARK(BM_CoinElection)->Arg(4)->Arg(31);

void BM_SignatureSign(benchmark::State& state) {
  auto sys = crypto::CryptoSystem::deal(QuorumParams::for_n(4), 7);
  const Bytes msg(256, 0x11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys->signatures.sign(1, msg));
  }
}
BENCHMARK(BM_SignatureSign);

void BM_BlockIdCompute(benchmark::State& state) {
  const std::size_t payload = state.range(0);
  const Bytes txn(payload, 0x22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        smr::Block::compute_id(smr::genesis_certificate(), 1, 0, 0, 0, txn));
  }
}
BENCHMARK(BM_BlockIdCompute)->Arg(0)->Arg(1024);

void BM_ProposalEncodeDecode(benchmark::State& state) {
  auto sys = crypto::CryptoSystem::deal(QuorumParams::for_n(4), 7);
  smr::Message msg = smr::ProposalMsg{
      smr::Block::make(smr::genesis_certificate(), 1, 0, 0, 0, Bytes(256, 0x33)),
      std::nullopt,
      {},
      {}};
  smr::sign_message(*sys, 0, msg);
  for (auto _ : state) {
    const Bytes wire = smr::encode_message(msg);
    benchmark::DoNotOptimize(smr::decode_message(wire));
  }
}
BENCHMARK(BM_ProposalEncodeDecode);

}  // namespace

BENCHMARK_MAIN();
