// Experiment T1 — reproduces Table 1 of the paper plus the Theorem 9
// efficiency claims, empirically.
//
// Paper's Table 1 (qualitative):
//   HotStuff/DiemBFT : sync O(n) per decision, NOT live under asynchrony
//   VABA/Dumbo/ACE   : O(n^2) per decision, always live
//   Ours             : sync O(n), async O(n^2), always live
//
// We measure messages and protocol bytes per committed block ("decision")
// for each protocol under (a) synchrony with honest leaders and (b) the
// adaptive leader-attack asynchronous adversary, sweeping n, and fit the
// log-log growth exponent (Theorem 9: slope ~1 on the sync path, ~2 on
// the async path).
#include <cmath>
#include <cstdio>
#include <vector>

#include "harness/experiment.h"
#include "obs/metrics.h"

using namespace repro;
using namespace repro::harness;

namespace {

struct Row {
  std::uint32_t n;
  bool live;
  double msgs_per_decision;
  double bytes_per_decision;
  std::size_t decisions;
};

Row run_cell(Protocol p, NetScenario s, std::uint32_t n, std::size_t target,
             SimTime horizon, std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.n = n;
  cfg.protocol = p;
  cfg.scenario = s;
  cfg.seed = seed;
  Experiment exp(cfg);
  exp.start();
  exp.run_until_commits(target, horizon);
  const std::size_t decisions = exp.min_honest_commits();
  Row row;
  row.n = n;
  row.decisions = decisions;
  row.live = decisions > 0;
  // NetStats.messages/bytes exclude self-delivery (a multicast is n-1
  // network messages), matching how the paper's Table 1 counts
  // communication; the excluded traffic is in stats().self_messages.
  const auto& st = exp.network().stats();
  row.msgs_per_decision = obs::ratio(st.messages, decisions);
  row.bytes_per_decision = obs::ratio(st.bytes, decisions);
  return row;
}

/// Least-squares slope of log(y) vs log(n) — the growth exponent.
double loglog_slope(const std::vector<Row>& rows) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int k = 0;
  for (const auto& r : rows) {
    if (r.msgs_per_decision <= 0) continue;
    const double x = std::log(double(r.n));
    const double y = std::log(r.msgs_per_decision);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++k;
  }
  if (k < 2) return 0;
  return (k * sxy - sx * sy) / (k * sxx - sx * sx);
}

void print_sweep(const char* title, const std::vector<Row>& rows) {
  std::printf("  %s\n", title);
  std::printf("    %-6s %-6s %16s %16s %10s\n", "n", "live", "msgs/decision",
              "bytes/decision", "decisions");
  for (const auto& r : rows) {
    std::printf("    %-6u %-6s %16.1f %16.1f %10zu\n", r.n, r.live ? "yes" : "NO",
                r.msgs_per_decision, r.bytes_per_decision, r.decisions);
  }
  const double slope = loglog_slope(rows);
  if (slope != 0) std::printf("    log-log growth exponent of msgs/decision: %.2f\n", slope);
}

}  // namespace

int main() {
  const std::vector<std::uint32_t> ns = {4, 7, 10, 13, 16, 22, 31};
  std::printf("==============================================================\n");
  std::printf("T1: Table 1 reproduction — cost per decision & liveness\n");
  std::printf("==============================================================\n\n");

  struct Cell {
    Protocol p;
    const char* label;
  };
  const std::vector<Cell> protocols = {
      {Protocol::kDiemBft, "DiemBFT (Fig 1 baseline)"},
      {Protocol::kAlwaysFallback, "Always-fallback (ACE/VABA-style async SMR)"},
      {Protocol::kFallback3, "Ours: DiemBFT + async fallback (Fig 2)"},
  };

  std::printf("--- (a) synchrony, honest leaders: expect O(n) for DiemBFT and ours,\n");
  std::printf("    O(n^2) for the always-async baseline -------------------------\n\n");
  for (const auto& cell : protocols) {
    std::vector<Row> rows;
    for (std::uint32_t n : ns) {
      rows.push_back(run_cell(cell.p, NetScenario::kSynchronous, n, 60,
                              4'000'000'000ull, 1000 + n));
    }
    print_sweep(cell.label, rows);
    std::printf("\n");
  }

  std::printf("--- (b) asynchrony (adaptive leader-attack adversary): expect DiemBFT\n");
  std::printf("    NOT live; always-fallback and ours live at O(n^2) -------------\n\n");
  for (const auto& cell : protocols) {
    std::vector<Row> rows;
    for (std::uint32_t n : ns) {
      // DiemBFT will never reach the target; bound its run by time.
      const SimTime horizon =
          (cell.p == Protocol::kDiemBft) ? 300'000'000ull : 40'000'000'000ull;
      rows.push_back(run_cell(cell.p, NetScenario::kLeaderAttack, n, 20, horizon, 2000 + n));
    }
    print_sweep(cell.label, rows);
    std::printf("\n");
  }

  std::printf("Reading: 'live' must be NO only for DiemBFT under (b). Sync-path\n");
  std::printf("exponents ~1 and async-path exponents ~2 reproduce Theorem 9.\n");
  return 0;
}
