// Minimal NDJSON emitter for bench acceptance artifacts: each bench
// appends one self-describing JSON object per line to the path given via
// `--json <path>`, so CI can run several benches against the same file
// and diff the numbers across commits. No external JSON dependency —
// benches emit flat objects of numbers and short names only.
#pragma once

#include <cstdio>
#include <string>

namespace repro::bench {

/// `argv`-style lookup of `<flag> <value>`; nullptr when absent.
inline const char* flag_value(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == flag) return argv[i + 1];
  }
  return nullptr;
}

/// `argv`-style lookup of `--json <path>`; nullptr when absent.
inline const char* json_path_arg(int argc, char** argv) {
  return flag_value(argc, argv, "--json");
}

/// `--trace-out <path>`: write the run's merged NDJSON event trace here.
inline const char* trace_out_arg(int argc, char** argv) {
  return flag_value(argc, argv, "--trace-out");
}

/// `--metrics-out <path>`: write an NDJSON registry snapshot here.
inline const char* metrics_out_arg(int argc, char** argv) {
  return flag_value(argc, argv, "--metrics-out");
}

class JsonLine {
 public:
  explicit JsonLine(const char* bench) { field_str("bench", bench); }

  JsonLine& field_str(const char* key, const std::string& value) {
    sep();
    body_ += '"';
    body_ += key;
    body_ += "\":\"";
    body_ += value;
    body_ += '"';
    return *this;
  }

  JsonLine& field(const char* key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return raw(key, buf);
  }

  JsonLine& field(const char* key, std::uint64_t value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(value));
    return raw(key, buf);
  }

  /// Mean over `count` samples, omitted entirely when count == 0: an empty
  /// histogram has no mean, and emitting 0 would read as a measured value
  /// (e.g. "steady_commit_latency_mean_us: 0" on an always-fallback run).
  JsonLine& field_mean(const char* key, double mean, std::uint64_t count) {
    if (count == 0) return *this;
    return field(key, mean);
  }

  /// Append as one NDJSON line; no-op when `path` is nullptr.
  void append_to(const char* path) const {
    if (path == nullptr) return;
    std::FILE* f = std::fopen(path, "a");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot open %s for append\n", path);
      return;
    }
    std::fprintf(f, "{%s}\n", body_.c_str());
    std::fclose(f);
  }

 private:
  JsonLine& raw(const char* key, const char* value) {
    sep();
    body_ += '"';
    body_ += key;
    body_ += "\":";
    body_ += value;
    return *this;
  }

  void sep() {
    if (!body_.empty()) body_ += ',';
  }

  std::string body_;
};

}  // namespace repro::bench
