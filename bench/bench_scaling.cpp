// Scale-out sweep (DESIGN.md §13): committee sizes n = 16..300 across the
// three operating regimes —
//   * steady:   fallback3adopt under synchrony (the fallback never fires;
//               per-decision cost is the leader's O(n) steady path),
//   * fallback: fallback3adopt under partial synchrony (asynchronous until
//               GST, so the run pays real O(n^2) fallbacks, then settles),
//   * ace:      always-fallback under asynchrony (the paper's bad-network
//               regime: EVERY decision goes through the n^2 fallback).
// Each row records messages-per-decision, bytes-per-decision, decisions
// per virtual second, and the peak per-replica quorum-pool footprint.
//
// The acceptance rows run always-fallback at n=100 under asynchrony for a
// FIXED 30-virtual-second horizon with the scale-out flags (fb_adopt +
// cert_relay) on vs off. Off reproduces the seed protocol, whose
// equal-height adoption never builds the leader-pure chains the commit
// rule needs under asynchrony — the baseline commits nothing and the row
// is flagged `baseline_starved`. tools/check_scaling_gate.py asserts the
// >= 25% per-decision message reduction on these rows (a starved baseline
// counts as an infinite per-decision cost: 100% reduction, provided the
// flags-on run does commit).
//
// `--json <path>` appends every row as NDJSON (BENCH_pr8.json).
// `--quick` caps the sweep at n <= 100 (CI smoke; the gate rows already
// run at n=100 and stay in).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "bench_json.h"
#include "harness/experiment.h"

using namespace repro;
using namespace repro::harness;

namespace {

struct Row {
  const char* mode;
  std::uint32_t n = 0;
  bool fb_adopt = true;
  bool cert_relay = true;
  std::size_t decisions = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t virtual_us = 0;
  std::size_t share_pool_peak = 0;  ///< max per-replica footprint at cutoff
  double wall_s = 0;

  double msgs_per_decision() const {
    return decisions ? double(messages) / double(decisions) : 0.0;
  }
  double bytes_per_decision() const {
    return decisions ? double(bytes) / double(decisions) : 0.0;
  }
  double blocks_per_sec() const {
    return virtual_us ? double(decisions) / double(virtual_us) * 1e6 : 0.0;
  }
};

struct RunSpec {
  Protocol protocol;
  NetScenario scenario;
  SimTime async_mean = 0;        ///< 0 = config default
  std::size_t commit_target = 0;  ///< 0 = run the full horizon
  SimTime horizon = 600'000'000;
  bool fb_adopt = true;
  bool cert_relay = true;
};

Row run_one(const char* mode, std::uint32_t n, const RunSpec& spec) {
  ExperimentConfig cfg;
  cfg.n = n;
  cfg.protocol = spec.protocol;
  cfg.scenario = spec.scenario;
  cfg.seed = 80'000 + n;
  if (spec.async_mean != 0) cfg.async_mean = spec.async_mean;
  cfg.pcfg.fb_adopt = spec.fb_adopt;
  cfg.pcfg.cert_relay = spec.cert_relay;
  // Per-replica observability budget for the memory audit: a small traced
  // ring, clamped in bytes so n=300 x ring stays bounded (DESIGN.md §13.4).
  cfg.trace_capacity = 1 << 12;
  cfg.trace_budget_bytes = 128 * 1024;

  const auto t0 = std::chrono::steady_clock::now();
  Experiment exp(cfg);
  exp.start();
  const std::size_t target =
      spec.commit_target != 0 ? spec.commit_target : static_cast<std::size_t>(-1);
  exp.run_until_commits(target, spec.horizon);
  const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;

  Row row;
  row.mode = mode;
  row.n = n;
  row.fb_adopt = spec.fb_adopt;
  row.cert_relay = spec.cert_relay;
  row.decisions = exp.min_honest_commits();
  row.messages = exp.network().stats().messages;
  row.bytes = exp.network().stats().bytes;
  row.virtual_us = exp.sim().now();
  for (ReplicaId id = 0; id < n; ++id) {
    row.share_pool_peak = std::max(row.share_pool_peak, exp.replica(id).share_pool_bytes());
  }
  row.wall_s = dt.count();
  return row;
}

void print_row(const Row& r) {
  std::printf("  %-9s n=%-4u flags=%s%s decisions=%-5zu msgs/dec=%-10.0f "
              "KiB/dec=%-8.1f blocks/s=%-7.1f pool-peak=%zuKiB wall=%.1fs\n",
              r.mode, r.n, r.fb_adopt ? "A" : "-", r.cert_relay ? "R" : "-", r.decisions,
              r.msgs_per_decision(), r.bytes_per_decision() / 1024.0, r.blocks_per_sec(),
              r.share_pool_peak / 1024, r.wall_s);
}

void emit_row(const char* json_path, const Row& r, bool gate_row, bool starved) {
  if (json_path == nullptr) return;
  bench::JsonLine("scaling")
      .field_str("mode", r.mode)
      .field("n", std::uint64_t{r.n})
      .field("fb_adopt", std::uint64_t{r.fb_adopt ? 1u : 0u})
      .field("cert_relay", std::uint64_t{r.cert_relay ? 1u : 0u})
      .field("decisions", std::uint64_t{r.decisions})
      .field("messages", r.messages)
      .field("bytes", r.bytes)
      .field("msgs_per_decision", r.msgs_per_decision())
      .field("bytes_per_decision", r.bytes_per_decision())
      .field("blocks_per_sec", r.blocks_per_sec())
      .field("virtual_time_s", r.virtual_us / 1e6)
      .field("share_pool_peak_bytes", std::uint64_t{r.share_pool_peak})
      .field("gate_row", std::uint64_t{gate_row ? 1u : 0u})
      .field("baseline_starved", std::uint64_t{starved ? 1u : 0u})
      .field("wall_time_s", r.wall_s)
      .append_to(json_path);
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = bench::json_path_arg(argc, argv);
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  std::printf("==============================================================\n");
  std::printf("Scale-out sweep: n=16..300, steady / fallback / always-fallback\n");
  std::printf("(flags column: A = strict f-block adoption, R = certificate relay)\n");
  std::printf("==============================================================\n\n");

  // Commit targets shrink with n so each row stays a few wall-seconds: the
  // ace rows cost ~2.5 n^2 messages per decision, so a handful of
  // decisions at n=300 already exercises ~half a million messages.
  struct Scale {
    std::uint32_t n;
    std::size_t steady, fallback, ace;
  };
  const Scale scales[] = {
      {16, 30, 12, 10}, {50, 20, 8, 5}, {100, 10, 5, 3}, {200, 5, 3, 2}, {300, 5, 2, 2},
  };

  for (const Scale& s : scales) {
    if (quick && s.n > 100) continue;
    RunSpec steady;
    steady.protocol = Protocol::kFallback3Adopt;
    steady.scenario = NetScenario::kSynchronous;
    steady.commit_target = s.steady;
    const Row r1 = run_one("steady", s.n, steady);
    print_row(r1);
    emit_row(json_path, r1, false, false);

    RunSpec fb;
    fb.protocol = Protocol::kFallback3Adopt;
    fb.scenario = NetScenario::kPartialSynchrony;
    fb.async_mean = 200'000;  // pre-GST asynchrony brisk enough to fall back
    fb.commit_target = s.fallback;
    const Row r2 = run_one("fallback", s.n, fb);
    print_row(r2);
    emit_row(json_path, r2, false, false);

    RunSpec ace;
    ace.protocol = Protocol::kAlwaysFallback;
    ace.scenario = NetScenario::kAsynchronous;
    ace.async_mean = 50'000;
    ace.commit_target = s.ace;
    const Row r3 = run_one("ace", s.n, ace);
    print_row(r3);
    emit_row(json_path, r3, false, false);
  }

  std::printf("\n--- acceptance: always-fallback n=100 under asynchrony, fixed\n");
  std::printf("    30-virtual-second horizon, scale-out flags on vs off --------\n\n");
  {
    RunSpec gate;
    gate.protocol = Protocol::kAlwaysFallback;
    gate.scenario = NetScenario::kAsynchronous;
    gate.async_mean = 50'000;
    gate.horizon = 30'000'000;
    gate.commit_target = 0;  // run the whole horizon on both sides

    RunSpec off = gate;
    off.fb_adopt = false;
    off.cert_relay = false;
    const Row r_off = run_one("ace-gate", 100, off);
    const Row r_on = run_one("ace-gate", 100, gate);
    const bool starved = r_off.decisions == 0;
    print_row(r_off);
    print_row(r_on);
    emit_row(json_path, r_off, true, starved);
    emit_row(json_path, r_on, true, false);

    if (starved) {
      std::printf("\n  baseline (flags off) committed NOTHING in the horizon: the\n");
      std::printf("  seed's equal-height adoption cannot assemble leader-pure chains\n");
      std::printf("  under asynchrony, so its per-decision cost is unbounded.\n");
      std::printf("  Reduction: 100%% (flags-on decisions: %zu)\n", r_on.decisions);
    } else {
      const double drop =
          (r_off.msgs_per_decision() - r_on.msgs_per_decision()) / r_off.msgs_per_decision();
      std::printf("\n  msgs/decision: off=%.0f on=%.0f reduction=%.1f%%\n",
                  r_off.msgs_per_decision(), r_on.msgs_per_decision(), drop * 100.0);
    }
  }

  std::printf("\nReading: steady cost is O(n) per decision and flat in n per\n");
  std::printf("replica; the ace rows pay the O(n^2) fallback on every decision,\n");
  std::printf("which is exactly where strict adoption (liveness under asynchrony)\n");
  std::printf("and certificate relay (fewer redundant re-multicasts) pay off.\n");
  return 0;
}
