// Experiment LIVE — the paper's headline story as a timeline (intro +
// Theorem 8): the network is good, turns bad, then recovers.
//
//   phase 1 [0,  20s): synchrony            — both protocols commit
//   phase 2 [20s, 60s): leader-attack async — DiemBFT stalls; ours falls
//                                             back and keeps committing
//   phase 3 [60s, 90s): synchrony again     — DiemBFT resumes; ours
//                                             returns to the linear path
//
// Prints committed-blocks-per-2s series for both protocols — the figure a
// full paper would plot.
#include <cstdio>
#include <vector>

#include "harness/experiment.h"

using namespace repro;
using namespace repro::harness;

namespace {

constexpr SimTime kSec = 1'000'000;
constexpr SimTime kPhase2 = 20 * kSec;
constexpr SimTime kPhase3 = 60 * kSec;
constexpr SimTime kEnd = 90 * kSec;
constexpr SimTime kBucket = 2 * kSec;

std::vector<std::size_t> commit_series(Protocol p, std::uint64_t seed,
                                       std::uint64_t* fallbacks) {
  ExperimentConfig cfg;
  cfg.n = 4;
  cfg.protocol = p;
  cfg.seed = seed;
  cfg.scenario = NetScenario::kLeaderAttack;  // builds the attack model
  cfg.attack_delay = 5'000'000;  // 5s >> max timeout backoff (3.2s)
  Experiment exp(cfg);

  // Swap phases by toggling the attack window: before kPhase2 and after
  // kPhase3 the attack function returns no targets (pure synchrony).
  auto* attack = dynamic_cast<net::AdaptiveLeaderAttackModel*>(&exp.network().delay_model());
  auto& simref = exp.sim();
  auto& e = exp;
  attack->set_targets_fn([&simref, &e]() {
    std::set<ReplicaId> targets;
    const SimTime now = simref.now();
    if (now < kPhase2 || now >= kPhase3) return targets;  // good network
    for (ReplicaId id = 0; id < e.n(); ++id) {
      targets.insert(core::round_leader(e.replica(id).current_round(), e.n(),
                                        e.config().pcfg.leader_rotation));
    }
    return targets;
  });

  exp.start();
  // Count system-wide progress: the fastest honest ledger. (The attacked
  // leader's own ledger lags by the attack delay even though the system
  // commits — it catches up when the adversary moves on.)
  std::vector<std::size_t> series;
  std::size_t prev = 0;
  for (SimTime t = kBucket; t <= kEnd; t += kBucket) {
    exp.sim().run_until(t);
    const std::size_t now_commits = exp.max_honest_commits();
    series.push_back(now_commits - prev);
    prev = now_commits;
  }
  if (fallbacks != nullptr) {
    *fallbacks = 0;
    for (ReplicaId id = 0; id < 4; ++id) {
      *fallbacks += exp.replica(id).stats().fallbacks_entered;
    }
  }
  return series;
}

void print_series(const char* label, const std::vector<std::size_t>& s) {
  std::printf("  %-14s", label);
  for (std::size_t i = 0; i < s.size(); ++i) {
    std::printf("%4zu", s[i]);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("LIVE: commit throughput timeline (blocks per 2s bucket, n=4)\n");
  std::printf("  [0,20s) synchrony | [20s,60s) leader-attack | [60s,90s) synchrony\n");
  std::printf("==============================================================\n\n");

  std::printf("  %-14s", "t(s) ->");
  for (SimTime t = kBucket; t <= kEnd; t += kBucket) {
    std::printf("%4llu", static_cast<unsigned long long>(t / kSec));
  }
  std::printf("\n");

  std::uint64_t diem_fb = 0, ours_fb = 0;
  const auto diem = commit_series(Protocol::kDiemBft, 77, &diem_fb);
  const auto ours = commit_series(Protocol::kFallback3, 77, &ours_fb);
  print_series("DiemBFT", diem);
  print_series("Ours (Fig 2)", ours);

  std::size_t diem_bad = 0, ours_bad = 0;
  for (std::size_t i = kPhase2 / kBucket; i < kPhase3 / kBucket; ++i) {
    diem_bad += diem[i];
    ours_bad += ours[i];
  }
  std::printf("\n  commits during the bad-network window: DiemBFT=%zu, ours=%zu\n",
              diem_bad, ours_bad);
  std::printf("  fallbacks entered (ours): %llu\n",
              static_cast<unsigned long long>(ours_fb));
  std::printf("\nReading: DiemBFT's series must drop to ~0 inside the window and\n");
  std::printf("recover after; ours keeps committing through the window via the\n");
  std::printf("asynchronous fallback, then returns to the fast path.\n");
  return 0;
}
