// Experiment CL — client-perceived latency and goodput (system-level view
// of the paper's liveness claim): what a *user* of the service observes
// with DiemBFT vs the asynchronous-fallback protocol when the network
// goes through a bad period.
//
// Network: synchronous for 10s, leader-attack asynchronous for 20s,
// synchronous again for 10s. Confirm rule: f+1 acks.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "client/client_swarm.h"

using namespace repro;
using namespace repro::client;
using namespace repro::harness;

namespace {

constexpr SimTime kSec = 1'000'000;
constexpr SimTime kBadStart = 10 * kSec;
constexpr SimTime kBadEnd = 30 * kSec;
constexpr SimTime kEnd = 40 * kSec;

struct Outcome {
  std::uint64_t confirmed_good1 = 0, confirmed_bad = 0, confirmed_good2 = 0;
  double p50_good_ms = 0, p99_all_ms = 0;
  std::uint64_t unconfirmed_at_end = 0;
  /// Commit -> first client confirm (the span layer's chain tail): the
  /// ack fan-out + f+1 quorum cost on top of consensus latency.
  obs::LatencyStats commit_to_confirm;
};

Outcome run(Protocol p, std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.n = 4;
  cfg.protocol = p;
  cfg.seed = seed;
  cfg.scenario = NetScenario::kLeaderAttack;
  cfg.attack_delay = 5'000'000;
  cfg.span_capacity = 1 << 16;  // commit->confirm attribution

  ClientConfig ccfg;
  ccfg.num_clients = 4;
  ccfg.submit_interval = 100'000;
  ccfg.retry_timeout = 3'000'000;

  auto pools = std::make_shared<TxnPools>(cfg.n, ccfg.max_batch_txns);
  cfg.payload_factory = [pools](ReplicaId id) { return pools->next_batch(id); };

  Experiment exp(cfg);
  auto* attack =
      dynamic_cast<net::AdaptiveLeaderAttackModel*>(&exp.network().delay_model());
  auto& simref = exp.sim();
  auto& e = exp;
  attack->set_targets_fn([&simref, &e]() {
    std::set<ReplicaId> targets;
    if (simref.now() < kBadStart || simref.now() >= kBadEnd) return targets;
    for (ReplicaId id = 0; id < e.n(); ++id) {
      targets.insert(core::round_leader(e.replica(id).current_round(), e.n(),
                                        e.config().pcfg.leader_rotation));
    }
    return targets;
  });

  ClientSwarm swarm(exp, pools, ccfg, seed ^ 0xabc);
  exp.start();
  swarm.start();

  Outcome out;
  exp.sim().run_until(kBadStart);
  out.confirmed_good1 = swarm.stats().confirmed;
  exp.sim().run_until(kBadEnd);
  out.confirmed_bad = swarm.stats().confirmed - out.confirmed_good1;
  exp.sim().run_until(kEnd);
  out.confirmed_good2 = swarm.stats().confirmed - out.confirmed_good1 - out.confirmed_bad;
  out.unconfirmed_at_end = swarm.in_flight();

  auto lats = swarm.stats().confirm_latencies_us;
  if (!lats.empty()) {
    std::vector<SimTime> sorted = lats;
    std::sort(sorted.begin(), sorted.end());
    out.p50_good_ms = sorted[sorted.size() / 2] / 1000.0;
    out.p99_all_ms = sorted[sorted.size() * 99 / 100] / 1000.0;
  }
  out.commit_to_confirm = obs::analyze_spans(exp.span_events()).commit_to_confirm;
  return out;
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("CL: client-perceived service quality through a bad-network window\n");
  std::printf("  [0,10s) good | [10s,30s) leader-attack | [30s,40s) good; n=4\n");
  std::printf("==============================================================\n\n");
  std::printf("  %-22s %12s %12s %12s %10s %10s %12s\n", "protocol", "conf(good1)",
              "conf(bad)", "conf(good2)", "p50 ms", "p99 ms", "stuck@end");
  for (auto [p, label] : {std::pair{Protocol::kDiemBft, "DiemBFT"},
                          std::pair{Protocol::kFallback3, "Ours (Fig 2)"},
                          std::pair{Protocol::kFallback2, "Ours 2-chain"}}) {
    const Outcome o = run(p, 55);
    std::printf("  %-22s %12llu %12llu %12llu %10.1f %10.1f %12llu\n", label,
                static_cast<unsigned long long>(o.confirmed_good1),
                static_cast<unsigned long long>(o.confirmed_bad),
                static_cast<unsigned long long>(o.confirmed_good2), o.p50_good_ms,
                o.p99_all_ms, static_cast<unsigned long long>(o.unconfirmed_at_end));
    if (o.commit_to_confirm.count > 0) {
      std::printf("  %-22s commit->confirm: p50 %.1f ms, p99 %.1f ms "
                  "(%llu blocks; ack fan-out on top of consensus)\n",
                  "", o.commit_to_confirm.p50_us / 1000.0,
                  o.commit_to_confirm.p99_us / 1000.0,
                  static_cast<unsigned long long>(o.commit_to_confirm.count));
    }
  }
  std::printf("\nReading: during the bad window DiemBFT confirms ~0 transactions\n");
  std::printf("(they pile up as stuck/in-flight until recovery); the fallback\n");
  std::printf("protocols keep confirming, at fallback (quadratic-path) latency.\n");
  return 0;
}
