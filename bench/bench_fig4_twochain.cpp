// Experiment F4 — the 2-chain commit variant (paper Figure 4, Section 4).
//
// The paper: "the 2-chain-commit version strictly improves the latency of
// the 3-chain commit version, by reducing the commit latency by 2 rounds
// for both Steady State and Asynchronous Fallback."
//
// We measure commit latency (block birth -> commit at a fixed replica) in
// both regimes and express steady-state latency in network hops.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "harness/experiment.h"
#include "obs/metrics.h"

using namespace repro;
using namespace repro::harness;

namespace {

std::vector<double> latencies_ms(Protocol p, NetScenario s, std::size_t commits,
                                 std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.n = 4;
  cfg.protocol = p;
  cfg.scenario = s;
  cfg.seed = seed;
  Experiment exp(cfg);
  exp.start();
  exp.run_until_commits(commits, 60'000'000'000ull);
  std::vector<double> out;
  for (SimTime lat : exp.commit_latencies(0)) out.push_back(double(lat) / 1000.0);
  return out;
}

double pct(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[std::min(v.size() - 1, static_cast<std::size_t>(p * v.size()))];
}

void report(const char* regime, NetScenario s, std::size_t commits, double hop_ms) {
  std::printf("--- %s ---\n", regime);
  std::printf("    %-22s %10s %10s %10s %9s\n", "protocol", "p50 (ms)", "p90 (ms)",
              "samples", "~hops");
  for (auto [p, label] : {std::pair{Protocol::kFallback3, "3-chain (Fig 2)"},
                          std::pair{Protocol::kFallback2, "2-chain (Fig 4)"}}) {
    std::vector<double> all;
    for (std::uint64_t seed : {31ull, 32ull, 33ull}) {
      auto v = latencies_ms(p, s, commits, seed);
      all.insert(all.end(), v.begin(), v.end());
    }
    const double p50 = pct(all, 0.5);
    std::printf("    %-22s %10.1f %10.1f %10zu %9.1f\n", label, p50, pct(all, 0.9),
                all.size(), hop_ms > 0 ? p50 / hop_ms : 0.0);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("F4: 2-chain commit vs 3-chain commit (Figure 4 / Section 4)\n");
  std::printf("==============================================================\n\n");

  // Under synchrony the mean hop is ~(1+50)/2 ms; a commit needs
  // 2 hops/round (proposal + votes). Paper: 6 rounds -> 4 rounds.
  const double mean_hop_ms = (1.0 + 50.0) / 2.0;
  report("steady state (synchrony, n=4)", NetScenario::kSynchronous, 200, mean_hop_ms);

  // Fallback duration (enter -> exit), measured directly from replica
  // stats under a moderate asynchronous adversary: the 2-chain variant's
  // fallback builds chains of 2 f-blocks instead of 3, so it should exit
  // ~1 certified-round (2 hops) earlier.
  std::printf("--- asynchronous fallback duration (enter -> exit, n=4) ---\n");
  std::printf("    %-22s %16s %12s\n", "protocol", "mean (ms)", "fallbacks");
  for (auto [p, label] : {std::pair{Protocol::kFallback3, "3-chain (Fig 2)"},
                          std::pair{Protocol::kFallback2, "2-chain (Fig 4)"}}) {
    std::uint64_t total_us = 0, exits = 0;
    for (std::uint64_t seed : {41ull, 42ull, 43ull, 44ull, 45ull, 46ull}) {
      ExperimentConfig cfg;
      cfg.n = 4;
      cfg.protocol = p;
      cfg.scenario = NetScenario::kAsynchronous;
      cfg.async_mean = 400'000;  // moderate asynchrony: still > timeout
      cfg.async_max = 1'600'000;
      cfg.seed = seed;
      Experiment exp(cfg);
      exp.start();
      exp.run_until_commits(12, 60'000'000'000ull);
      for (ReplicaId id = 0; id < 4; ++id) {
        total_us += exp.replica(id).stats().fallback_time_total_us;
        exits += exp.replica(id).stats().fallbacks_exited;
      }
    }
    std::printf("    %-22s %16.1f %12llu\n", label,
                obs::ratio(total_us, exits) / 1000.0,
                static_cast<unsigned long long>(exits));
  }
  std::printf("\n");

  std::printf("Reading: 2-chain should show ~2/3 of the 3-chain steady-state\n");
  std::printf("latency (4 hops vs 6 hops of proposal+vote), and shorter fallbacks\n");
  std::printf("(chains of 2 f-blocks instead of 3). Same safety & liveness —\n");
  std::printf("see tests/test_fallback.cpp and tests/test_properties.cpp.\n");
  return 0;
}
