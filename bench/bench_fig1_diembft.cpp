// Experiment F1 — DiemBFT baseline anatomy (paper Figure 1).
//
// Shows the two regimes the paper describes:
//  * steady state with honest leaders: leader-to-all proposals + all-to-
//    next-leader votes, linear per round;
//  * pacemaker synchronization under a bad leader: all-to-all timeout
//    multicasts, quadratic per view-change.
// Message-type breakdowns come from the network's per-tag counters.
#include <cstdio>

#include "harness/experiment.h"
#include "smr/messages.h"

using namespace repro;
using namespace repro::harness;

namespace {

void print_breakdown(const char* title, const net::NetStats& st, std::size_t decisions) {
  std::printf("  %s (decisions=%zu)\n", title, decisions);
  struct Tag {
    smr::MsgType t;
    const char* name;
  };
  const Tag tags[] = {
      {smr::MsgType::kProposal, "proposals"}, {smr::MsgType::kVote, "votes"},
      {smr::MsgType::kDiemTimeout, "timeouts"}, {smr::MsgType::kDiemTc, "TCs"},
      {smr::MsgType::kBlockRequest, "block-req"}, {smr::MsgType::kBlockResponse, "block-resp"},
  };
  for (const auto& tag : tags) {
    const auto i = static_cast<std::size_t>(tag.t);
    if (st.messages_by_type[i] == 0) continue;
    std::printf("    %-10s %10llu msgs %12llu bytes\n", tag.name,
                static_cast<unsigned long long>(st.messages_by_type[i]),
                static_cast<unsigned long long>(st.bytes_by_type[i]));
  }
  std::printf("    %-10s %10llu msgs %12llu bytes", "total",
              static_cast<unsigned long long>(st.messages),
              static_cast<unsigned long long>(st.bytes));
  if (decisions > 0) std::printf("  (%.1f msgs/decision)", double(st.messages) / decisions);
  std::printf("\n\n");
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("F1: DiemBFT baseline (Figure 1) — steady state vs pacemaker\n");
  std::printf("==============================================================\n\n");

  // (1) Honest leaders: pure steady state — votes + proposals only.
  {
    ExperimentConfig cfg;
    cfg.n = 7;
    cfg.protocol = Protocol::kDiemBft;
    cfg.seed = 11;
    Experiment exp(cfg);
    exp.start();
    exp.run_until_commits(100, 4'000'000'000ull);
    print_breakdown("honest leaders, synchrony (n=7)", exp.network().stats(),
                    exp.min_honest_commits());
  }

  // (2) One mute leader: its rounds cost n^2 timeout messages each.
  {
    ExperimentConfig cfg;
    cfg.n = 7;
    cfg.protocol = Protocol::kDiemBft;
    cfg.seed = 12;
    cfg.faults[2] = core::FaultKind::kMuteLeader;
    Experiment exp(cfg);
    exp.start();
    exp.run_until_commits(100, 20'000'000'000ull);
    print_breakdown("one mute leader (n=7) — timeouts appear", exp.network().stats(),
                    exp.min_honest_commits());
  }

  // (3) Leader attack: rounds churn forever, all cost is timeout traffic,
  //     zero decisions (the "not live if async" row of Table 1).
  {
    ExperimentConfig cfg;
    cfg.n = 7;
    cfg.protocol = Protocol::kDiemBft;
    cfg.scenario = NetScenario::kLeaderAttack;
    cfg.seed = 13;
    Experiment exp(cfg);
    exp.start();
    exp.run_for(120'000'000);
    std::printf("  leader attack, 120 virtual seconds: reached round %llu, commits %zu\n",
                static_cast<unsigned long long>(exp.replica(0).current_round()),
                exp.min_honest_commits());
    print_breakdown("leader attack (n=7) — all pacemaker, no decisions",
                    exp.network().stats(), exp.min_honest_commits());
  }
  return 0;
}
