// Experiments F2/F3, L7 and OPT — anatomy of the asynchronous fallback
// (paper Figures 2-3, Lemma 7, and the §3 "Optimization in Practice").
//
// Measures, over many seeded asynchronous runs:
//  * fallback termination (every entered fallback exits — Lemma 7),
//  * empirical commit probability per fallback vs the 2/3 bound,
//  * fallback duration (enter -> exit) with and without chain adoption,
//  * message-type breakdown of one fallback (who pays the n^2),
//  * the zero-copy/decode-once data path under the fallback's n^2 traffic
//    (serializations per multicast, payload copies avoided, parses saved).
//
// `--json <path>` appends the data-path acceptance numbers as NDJSON.
// `--trace-out <path>` / `--metrics-out <path>` write the traced artifact
// run's merged NDJSON event trace and registry snapshot.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_json.h"
#include "harness/experiment.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "smr/messages.h"

using namespace repro;
using namespace repro::harness;

namespace {

struct FallbackStats {
  int views = 0;
  int views_with_commit = 0;
  std::uint64_t entered = 0;
  std::uint64_t exited = 0;
  std::uint64_t fallback_time_us = 0;  ///< summed enter->exit durations
  std::uint64_t verify_hits = 0;       ///< certificate verifications answered by cache
  std::uint64_t verify_misses = 0;     ///< full threshold verifications paid
  // Data path (zero-copy multicast + decode-once delivery).
  std::uint64_t decode_hits = 0;       ///< deliveries served from the decode cache
  std::uint64_t decode_misses = 0;     ///< full decode_message parses paid
  std::uint64_t multicast_encodes = 0; ///< serializations performed for multicasts
  std::uint64_t multicasts = 0;        ///< network multicast() calls
  std::uint64_t copies_avoided = 0;    ///< per-recipient payload copies not made
  std::uint64_t net_messages = 0;
  std::uint64_t net_bytes = 0;
  std::uint64_t commits = 0;           ///< min honest commits, summed over seeds
  std::uint64_t virtual_time_us = 0;   ///< summed virtual run durations
  // Optimistic share assembly (combine-then-verify accumulators).
  std::uint64_t shares_verified = 0;   ///< per-share verify_share calls paid
  std::uint64_t shares_deferred = 0;   ///< shares buffered unverified
  std::uint64_t combines_optimistic = 0;
  std::uint64_t combine_fallbacks = 0;
  std::uint64_t bad_shares_rejected = 0;
  /// Per-seed fingerprint of replica 0's full commit sequence (block id,
  /// round, view, height, commit time) — equal fingerprints mean
  /// byte-identical commit histories with identical timing.
  std::vector<std::uint64_t> ledger_fp;

  double mean_duration_ms() const {
    return obs::ratio(fallback_time_us, exited) / 1000.0;
  }

  /// Factor by which the verified-certificate cache cuts full threshold
  /// verifications: without it every lookup (hit + miss) would pay one.
  double verify_reduction() const {
    return verify_misses ? double(verify_hits + verify_misses) / verify_misses : 1.0;
  }

  /// Factor by which decode-once cuts full parses: every delivery would
  /// pay one without the cache. With sender pre-population misses can be
  /// zero — the reduction is then "all of them" and reported against 1.
  double decode_reduction() const {
    return double(decode_hits + decode_misses) / double(std::max<std::uint64_t>(1, decode_misses));
  }

  /// Serialized buffers per multicast; 1.0 = encode-once achieved.
  double serializations_per_multicast() const {
    return obs::ratio(multicast_encodes, multicasts);
  }

  double commits_per_sec() const {
    return obs::ratio(commits, virtual_time_us) * 1e6;
  }
};

struct MeasureOpts {
  std::uint32_t crashes = 0;
  bool lazy_share_verify = true;
  /// Byzantine replicas flooding invalid threshold shares (kBadShares).
  std::uint32_t bad_share_replicas = 0;
  /// Per-replica trace ring capacity; 0 = tracing off (no event records).
  std::size_t trace_capacity = 0;
};

FallbackStats measure(Protocol p, std::uint32_t n, int seeds, std::size_t commits,
                      MeasureOpts opts = {}) {
  FallbackStats agg;
  for (int seed = 1; seed <= seeds; ++seed) {
    ExperimentConfig cfg;
    cfg.n = n;
    cfg.protocol = p;
    cfg.scenario = NetScenario::kAsynchronous;
    cfg.seed = 7000 + seed;
    cfg.pcfg.lazy_share_verify = opts.lazy_share_verify;
    cfg.trace_capacity = opts.trace_capacity;
    for (std::uint32_t c = 0; c < opts.crashes; ++c) {
      cfg.faults[n - 1 - c] = core::FaultKind::kCrash;
    }
    for (std::uint32_t b = 0; b < opts.bad_share_replicas; ++b) {
      cfg.faults[n - 1 - opts.crashes - b] = core::FaultKind::kBadShares;
    }
    Experiment exp(cfg);
    exp.start();
    exp.run_until_commits(commits, 30'000'000'000ull);

    std::set<View> commit_views;
    for (const auto& rec : exp.replica(0).ledger().records()) {
      if (rec.height > 0) commit_views.insert(rec.view);
    }
    agg.views += static_cast<int>(exp.replica(0).current_view());
    agg.views_with_commit += static_cast<int>(commit_views.size());
    for (ReplicaId id = 0; id < n; ++id) {
      if (!exp.is_honest(id)) continue;
      agg.entered += exp.replica(id).stats().fallbacks_entered;
      agg.exited += exp.replica(id).stats().fallbacks_exited;
      agg.fallback_time_us += exp.replica(id).stats().fallback_time_total_us;
      agg.verify_hits += exp.replica(id).stats().cert_verify_hits;
      agg.verify_misses += exp.replica(id).stats().cert_verify_misses;
    }
    // Data-path counters sum over every replica (faulty senders multicast
    // too, and their traffic rides the same zero-copy path), so the
    // serializations/multicast identity holds exactly.
    for (ReplicaId id = 0; id < n; ++id) {
      agg.decode_hits += exp.replica(id).stats().decode_hits;
      agg.decode_misses += exp.replica(id).stats().decode_misses;
      agg.multicast_encodes += exp.replica(id).stats().multicast_encodes;
    }
    for (ReplicaId id = 0; id < n; ++id) {
      if (!exp.is_honest(id)) continue;
      agg.shares_verified += exp.replica(id).stats().shares_verified;
      agg.shares_deferred += exp.replica(id).stats().shares_deferred;
      agg.combines_optimistic += exp.replica(id).stats().combines_optimistic;
      agg.combine_fallbacks += exp.replica(id).stats().combine_fallbacks;
      agg.bad_shares_rejected += exp.replica(id).stats().bad_shares_rejected;
    }
    std::uint64_t fp = 1469598103934665603ull;  // FNV-1a over the commit sequence
    auto mix = [&fp](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        fp = (fp ^ ((v >> (8 * i)) & 0xff)) * 1099511628211ull;
      }
    };
    for (const auto& rec : exp.replica(0).ledger().records()) {
      mix(smr::BlockIdHash{}(rec.id));
      mix(rec.round);
      mix(rec.view);
      mix(rec.height);
      mix(rec.commit_time);
    }
    agg.ledger_fp.push_back(fp);
    const auto& net = exp.network().stats();
    agg.multicasts += net.multicasts;
    agg.copies_avoided += net.payload_copies_avoided;
    agg.net_messages += net.messages;
    agg.net_bytes += net.bytes;
    agg.commits += exp.min_honest_commits();
    agg.virtual_time_us += exp.sim().now();
  }
  return agg;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = bench::json_path_arg(argc, argv);
  const char* trace_out = bench::trace_out_arg(argc, argv);
  const char* metrics_out = bench::metrics_out_arg(argc, argv);
  std::printf("==============================================================\n");
  std::printf("F2/F3 + L7 + OPT: asynchronous fallback anatomy (Figures 2-3)\n");
  std::printf("==============================================================\n\n");

  std::printf("--- Lemma 7: termination & commit probability per fallback -----\n");
  std::printf("    (with f crashed replicas, f of the n fallback-chains never\n");
  std::printf("    complete, so the coin misses with probability ~f/n; the paper's\n");
  std::printf("    bound P >= 2/3 is the worst case) ---------------------------\n\n");
  struct L7Row {
    std::uint32_t n;
    std::uint32_t crashes;
  };
  for (const L7Row row : {L7Row{4, 0}, L7Row{7, 0}, L7Row{10, 0}, L7Row{4, 1}, L7Row{7, 2},
                          L7Row{10, 3}}) {
    MeasureOpts opts;
    opts.crashes = row.crashes;
    const FallbackStats st = measure(Protocol::kFallback3, row.n, 10, 6, opts);
    const double p_commit = obs::ratio(st.views_with_commit, st.views);
    std::printf("  n=%-3u crashes=%-2u views=%-4d committed-in-view=%-4d P(commit)=%.2f\n",
                row.n, row.crashes, st.views, st.views_with_commit, p_commit);
    std::printf("        fallbacks entered=%llu exited=%llu (in-flight at cutoff: %llu)\n",
                static_cast<unsigned long long>(st.entered),
                static_cast<unsigned long long>(st.exited),
                static_cast<unsigned long long>(st.entered - st.exited));
  }

  std::printf("\n--- OPT (Section 3): chain adoption speeds up the fallback -----\n\n");
  std::printf("  mean fallback duration (enter -> exit) under asynchrony:\n");
  std::printf("  (plain waits for the 2f+1-th fastest replica's own chain; adoption\n");
  std::printf("  proceeds at the speed of the fastest chain)\n");
  for (std::uint32_t n : {7u, 10u}) {
    const FallbackStats plain = measure(Protocol::kFallback3, n, 8, 5);
    const FallbackStats adopt = measure(Protocol::kFallback3Adopt, n, 8, 5);
    std::printf("    n=%-3u plain: %8.1f ms (%llu fallbacks)   adoption: %8.1f ms (%llu fallbacks)\n",
                n, plain.mean_duration_ms(),
                static_cast<unsigned long long>(plain.exited), adopt.mean_duration_ms(),
                static_cast<unsigned long long>(adopt.exited));
  }

  std::printf("\n--- fallback duration vs n (async adversary; O(n) message stages\n");
  std::printf("    but more straggler order-statistics as n grows) ------------\n\n");
  std::printf("    %-6s %18s %14s\n", "n", "mean duration ms", "fallbacks");
  std::vector<std::pair<std::uint32_t, FallbackStats>> sweep;
  for (std::uint32_t n : {4u, 7u, 10u, 13u}) {
    sweep.emplace_back(n, measure(Protocol::kFallback3, n, 6, 4));
    const FallbackStats& st = sweep.back().second;
    std::printf("    %-6u %18.1f %14llu\n", n, st.mean_duration_ms(),
                static_cast<unsigned long long>(st.exited));
  }

  std::printf("\n--- verified-certificate cache: full verifications avoided -----\n");
  std::printf("    (the fallback floods each replica with n copies of every QC /\n");
  std::printf("    f-TC / coin-QC; only the first copy pays the threshold math;\n");
  std::printf("    Fig-2 rows reuse the duration-sweep runs above) ------------\n\n");
  std::printf("    %-22s %-6s %12s %12s %12s %10s\n", "protocol", "n", "cache hits",
              "full (miss)", "would-pay", "reduction");
  auto print_cache_row = [](const char* label, std::uint32_t n, const FallbackStats& st) {
    std::printf("    %-22s %-6u %12llu %12llu %12llu %9.1fx\n", label, n,
                static_cast<unsigned long long>(st.verify_hits),
                static_cast<unsigned long long>(st.verify_misses),
                static_cast<unsigned long long>(st.verify_hits + st.verify_misses),
                st.verify_reduction());
  };
  for (const auto& [n, st] : sweep) print_cache_row("fallback (Fig 2)", n, st);
  for (std::uint32_t n : {4u, 7u, 10u}) {
    print_cache_row("always-fallback", n, measure(Protocol::kAlwaysFallback, n, 6, 4));
  }

  std::printf("\n--- data path: zero-copy multicast + decode-once delivery ------\n");
  std::printf("    (the fallback's n^2 traffic is mostly multicasts of identical\n");
  std::printf("    bytes: one serialization feeds all n recipients, and the\n");
  std::printf("    shared decode cache parses each distinct payload at most once\n");
  std::printf("    instead of once per recipient) -----------------------------\n\n");
  std::printf("    %-22s %-4s %11s %10s %10s %9s %10s\n", "protocol", "n", "ser/mcast",
              "copies-", "parses", "parse", "commits/s");
  std::printf("    %-22s %-4s %11s %10s %10s %9s %10s\n", "", "", "", "avoided",
              "saved", "redux", "");
  auto print_datapath_row = [](const char* label, std::uint32_t n, const FallbackStats& st) {
    std::printf("    %-22s %-4u %11.2f %10llu %10llu %8.0fx %10.1f\n", label, n,
                st.serializations_per_multicast(),
                static_cast<unsigned long long>(st.copies_avoided),
                static_cast<unsigned long long>(st.decode_hits), st.decode_reduction(),
                st.commits_per_sec());
  };
  // The acceptance row: always-fallback keeps the protocol permanently in
  // its asynchronous O(n^2) mode — the data path's worst case — at n=16.
  const FallbackStats accept = measure(Protocol::kAlwaysFallback, 16, 3, 4);
  for (const auto& [n, st] : sweep) print_datapath_row("fallback (Fig 2)", n, st);
  print_datapath_row("always-fallback", 16, accept);
  if (json_path != nullptr) {
    bench::JsonLine("fig23_fallback_datapath")
        .field_str("protocol", "always-fallback")
        .field("n", std::uint64_t{16})
        .field("messages", accept.net_messages)
        .field("bytes", accept.net_bytes)
        .field("multicasts", accept.multicasts)
        .field("serializations_per_multicast", accept.serializations_per_multicast())
        .field("payload_copies_avoided", accept.copies_avoided)
        .field("decode_hits", accept.decode_hits)
        .field("decode_misses", accept.decode_misses)
        .field("decode_reduction", accept.decode_reduction())
        .field("commits", accept.commits)
        .field("commits_per_sec", accept.commits_per_sec())
        .field("virtual_time_s", accept.virtual_time_us / 1e6)
        .append_to(json_path);
  }

  std::printf("\n--- optimistic share assembly: combine-then-verify accumulators -\n");
  std::printf("    (eager verifies every arriving threshold share; lazy buffers\n");
  std::printf("    unverified and pays ONE combine + ONE verify per certificate,\n");
  std::printf("    falling back to per-share checks only when the combined check\n");
  std::printf("    fails. Acceptance: always-fallback async n=16, >=5x fewer\n");
  std::printf("    per-share verifications, identical commit sequence) ---------\n\n");
  {
    MeasureOpts eager_opts;
    eager_opts.lazy_share_verify = false;
    const FallbackStats eager = measure(Protocol::kAlwaysFallback, 16, 3, 4, eager_opts);
    const FallbackStats lazy = measure(Protocol::kAlwaysFallback, 16, 3, 4);
    const double reduction =
        double(eager.shares_verified) / double(std::max<std::uint64_t>(1, lazy.shares_verified));
    const bool same_ledgers = eager.ledger_fp == lazy.ledger_fp;
    std::printf("    %-8s %14s %14s %12s %12s %12s\n", "mode", "shares-verif", "deferred",
                "opt-combines", "fallbacks", "commits");
    auto print_mode_row = [](const char* label, const FallbackStats& st) {
      std::printf("    %-8s %14llu %14llu %12llu %12llu %12llu\n", label,
                  static_cast<unsigned long long>(st.shares_verified),
                  static_cast<unsigned long long>(st.shares_deferred),
                  static_cast<unsigned long long>(st.combines_optimistic),
                  static_cast<unsigned long long>(st.combine_fallbacks),
                  static_cast<unsigned long long>(st.commits));
    };
    print_mode_row("eager", eager);
    print_mode_row("lazy", lazy);
    std::printf("    per-share verification reduction: %.0fx (acceptance: >=5x)\n", reduction);
    std::printf("    commit sequences identical (ids+rounds+views+times): %s\n",
                same_ledgers ? "yes" : "NO");

    // Flood: f Byzantine replicas spray invalid shares into every pool;
    // each poisoned certificate costs one failed combine + a per-share
    // pass that evicts and bans, then assembly proceeds.
    MeasureOpts flood_opts;
    flood_opts.bad_share_replicas = 5;  // f for n=16
    const FallbackStats flood = measure(Protocol::kAlwaysFallback, 16, 3, 4, flood_opts);
    std::printf("    bad-share flood (f=5 Byzantine): commits=%llu fallbacks=%llu "
                "rejected=%llu (liveness: %s)\n",
                static_cast<unsigned long long>(flood.commits),
                static_cast<unsigned long long>(flood.combine_fallbacks),
                static_cast<unsigned long long>(flood.bad_shares_rejected),
                flood.commits > 0 ? "yes" : "NO");
    if (json_path != nullptr) {
      bench::JsonLine("fig23_share_assembly")
          .field_str("protocol", "always-fallback")
          .field("n", std::uint64_t{16})
          .field("eager_shares_verified", eager.shares_verified)
          .field("lazy_shares_verified", lazy.shares_verified)
          .field("lazy_shares_deferred", lazy.shares_deferred)
          .field("combines_optimistic", lazy.combines_optimistic)
          .field("combine_fallbacks", lazy.combine_fallbacks)
          .field("verification_reduction", reduction)
          .field("ledgers_identical", static_cast<std::uint64_t>(same_ledgers ? 1 : 0))
          .field("flood_commits", flood.commits)
          .field("flood_combine_fallbacks", flood.combine_fallbacks)
          .field("flood_bad_shares_rejected", flood.bad_shares_rejected)
          .append_to(json_path);
    }
  }

  std::printf("\n--- message breakdown of asynchronous operation (n=7) ----------\n\n");
  {
    ExperimentConfig cfg;
    cfg.n = 7;
    cfg.protocol = Protocol::kFallback3;
    cfg.scenario = NetScenario::kAsynchronous;
    cfg.seed = 5;
    Experiment exp(cfg);
    exp.start();
    exp.run_until_commits(5, 30'000'000'000ull);
    const auto& st = exp.network().stats();
    struct Tag {
      smr::MsgType t;
      const char* name;
    };
    const Tag tags[] = {
        {smr::MsgType::kProposal, "proposals"},    {smr::MsgType::kVote, "votes"},
        {smr::MsgType::kFbTimeout, "fb-timeouts"}, {smr::MsgType::kFbProposal, "f-blocks"},
        {smr::MsgType::kFbVote, "f-votes"},        {smr::MsgType::kFbQc, "f-QCs"},
        {smr::MsgType::kCoinShare, "coin-shares"}, {smr::MsgType::kCoinQc, "coin-QCs"},
        {smr::MsgType::kBlockRequest, "block-req"},
        {smr::MsgType::kBlockResponse, "block-resp"},
    };
    for (const auto& tag : tags) {
      const auto i = static_cast<std::size_t>(tag.t);
      if (st.messages_by_type[i] == 0) continue;
      std::printf("    %-12s %10llu msgs %12llu bytes\n", tag.name,
                  static_cast<unsigned long long>(st.messages_by_type[i]),
                  static_cast<unsigned long long>(st.bytes_by_type[i]));
    }
    std::printf("    %-12s %10llu msgs %12llu bytes over %zu decisions\n", "total",
                static_cast<unsigned long long>(st.messages),
                static_cast<unsigned long long>(st.bytes), exp.min_honest_commits());
  }

  std::printf("\n--- tracing overhead: always-fallback n=16, traced vs untraced --\n");
  std::printf("    (same seeds and commit target; WALL-clock sim throughput, best\n");
  std::printf("    of %d runs per mode to damp scheduler noise; acceptance: the\n", 3);
  std::printf("    trace ring costs < 5%% commit throughput) --------------------\n\n");
  double overhead_pct = 0.0;
  {
    // Wall-clock commits/sec of one full measure() pass; tracing on means
    // every replica records into a 64Ki-event ring exactly as --trace-out
    // runs do.
    auto wall_cps = [](std::size_t trace_capacity) {
      MeasureOpts opts;
      opts.trace_capacity = trace_capacity;
      const auto t0 = std::chrono::steady_clock::now();
      const FallbackStats st = measure(Protocol::kAlwaysFallback, 16, 2, 4, opts);
      const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
      return dt.count() > 0 ? double(st.commits) / dt.count() : 0.0;
    };
    double best_off = 0.0, best_on = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      best_off = std::max(best_off, wall_cps(0));
      best_on = std::max(best_on, wall_cps(1 << 16));
    }
    overhead_pct = best_off > 0 ? (best_off - best_on) / best_off * 100.0 : 0.0;
    std::printf("    untraced: %8.1f commits/s (wall)\n", best_off);
    std::printf("    traced:   %8.1f commits/s (wall)\n", best_on);
    std::printf("    overhead: %+.2f%% (acceptance: < 5%%) -> %s\n", overhead_pct,
                overhead_pct < 5.0 ? "OK" : "FAIL");
  }

  std::printf("\n--- traced artifact run: event-derived latency split + Lemma 7 -\n");
  std::printf("    (always-fallback n=16 async; per-commit latency measured from\n");
  std::printf("    the merged trace timeline, not from harness bookkeeping) -----\n\n");
  {
    ExperimentConfig cfg;
    cfg.n = 16;
    cfg.protocol = Protocol::kAlwaysFallback;
    cfg.scenario = NetScenario::kAsynchronous;
    cfg.seed = 7001;
    cfg.trace_capacity = 1 << 16;
    Experiment exp(cfg);
    exp.start();
    exp.run_until_commits(4, 30'000'000'000ull);
    if (trace_out != nullptr && !exp.write_traces(trace_out)) {
      std::fprintf(stderr, "bench: cannot write trace to '%s'\n", trace_out);
      return 2;
    }
    if (metrics_out != nullptr && !exp.write_metrics(metrics_out)) {
      std::fprintf(stderr, "bench: cannot write metrics to '%s'\n", metrics_out);
      return 2;
    }
    const obs::TraceReport report = obs::analyze_trace(exp.trace_events());
    std::fputs(report.summary().c_str(), stdout);
    if (json_path != nullptr) {
      // The acceptance row is built from a registry snapshot — the same
      // counters /metrics serves — not from hand-summed stats structs.
      const obs::Snapshot snap = exp.registry().snapshot();
      bench::JsonLine("pr5_tracing")
          .field_str("protocol", "always-fallback")
          .field("n", std::uint64_t{16})
          .field("commits", std::uint64_t{exp.min_honest_commits()})
          .field("net_messages", snap.value("repro_net_messages_total"))
          .field("net_bytes", snap.value("repro_net_bytes_total"))
          .field("fallbacks_entered", snap.value("repro_fallbacks_entered_total"))
          .field("trace_events", report.events_total)
          .field_mean("steady_commit_latency_mean_us", report.steady.mean_us,
                      report.steady.count)
          .field_mean("fallback_commit_latency_mean_us", report.fallback.mean_us,
                      report.fallback.count)
          .field("fallback_win_rate", report.win_rate)
          .field("tracing_overhead_pct", overhead_pct)
          .append_to(json_path);
    }
  }

  std::printf("\nReading: P(commit) ~1 with all-honest replicas and ~(n-f)/n with f\n");
  std::printf("crashes (the Lemma 7 worst-case bound is 2/3; single-replica\n");
  std::printf("measurement at a finite cutoff can dip slightly below it); adoption\n");
  std::printf("should cut the mean fallback duration; cost is dominated by the n^2\n");
  std::printf("fallback traffic (f-votes / timeouts / coin shares).\n");
  return 0;
}
