// Experiment TCP — reality check on real sockets and the wall clock.
//
// The macro benches above run in the deterministic simulator; this one
// runs the identical protocol code over localhost TCP with one thread per
// replica and measures actual throughput and commit latency. It grounds
// the simulator results: the shapes (linear fast path, fallback recovery
// after a node loss) carry over to a real transport.
// Also measures the transport data path: frames coalesced per vectored
// write (the per-peer send queues batch every frame produced in one poll
// iteration into a single writev), payload copies avoided by refcounted
// multicast buffers, and backpressure drops. `--json <path>` appends the
// numbers as NDJSON.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <unistd.h>

#include "bench_json.h"
#include "core/fallback.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "transport/node.h"

using namespace repro;
using namespace repro::transport;

namespace {

std::uint16_t next_port = 0;

std::uint16_t alloc_ports(std::uint32_t n) {
  if (next_port == 0) next_port = static_cast<std::uint16_t>(24000 + (::getpid() * 13) % 8000);
  const std::uint16_t base = next_port;
  next_port = static_cast<std::uint16_t>(next_port + n);
  return base;
}

struct RunResult {
  double blocks_per_sec = 0;
  bool consistent = true;
  std::uint64_t fallbacks = 0;
  net::NetStats net;  ///< summed over all nodes
  double wall_seconds = 0;
  // Pipelined-dissemination counters (DESIGN.md §12), summed over nodes.
  std::uint64_t batches_sealed = 0;
  std::uint64_t batches_announced = 0;
  std::uint64_t batches_pulled = 0;
  std::uint64_t batch_pull_timeouts = 0;
  std::uint64_t batch_ref_hits = 0;
  std::uint64_t batch_ref_misses = 0;

  double frames_per_writev() const {
    return obs::ratio(net.writev_frames, net.writev_batches);
  }
  double frames_per_verify_batch() const {
    return obs::ratio(net.verify_frames, net.verify_batches);
  }
};

struct RunOpts {
  bool kill_one_node = false;
  /// Run the always-fallback baseline: every view is an O(n^2) multicast
  /// storm of f-blocks/votes/coin shares — the worst-case write load for
  /// the per-peer send queues.
  bool always_fallback = false;
  std::size_t verify_threads = 0;
  /// Digest-referenced payload dissemination (ProtocolConfig::batch_refs);
  /// false pins the inline wire format for A/B rows.
  bool batch_refs = true;
  /// Commit-lifecycle span ring shared by every node (wall-clock mode);
  /// null runs spans-off, the baseline side of the overhead gate.
  std::shared_ptr<obs::SpanRing> spans;
};

RunResult run_cluster(std::uint32_t n, int millis, std::size_t batch_bytes,
                      RunOpts opts = {}) {
  auto crypto = crypto::CryptoSystem::deal(QuorumParams::for_n(n), 7);
  const std::uint16_t port0 = alloc_ports(n);
  std::vector<PeerAddress> peers;
  for (std::uint32_t i = 0; i < n; ++i) {
    peers.push_back(PeerAddress{"127.0.0.1", static_cast<std::uint16_t>(port0 + i)});
  }
  core::FallbackParams fb;
  fb.always_fallback = opts.always_fallback;
  std::vector<std::unique_ptr<TcpNode>> nodes;
  for (ReplicaId i = 0; i < n; ++i) {
    NodeConfig cfg;
    cfg.id = i;
    cfg.peers = peers;
    cfg.crypto = crypto;
    cfg.seed = 42 + i;
    cfg.pcfg.base_timeout_us = 150'000;
    cfg.pcfg.batch_bytes = batch_bytes;
    cfg.pcfg.batch_refs = opts.batch_refs;
    cfg.verify_threads = opts.verify_threads;
    cfg.spans = opts.spans;
    nodes.push_back(std::make_unique<TcpNode>(cfg, [fb](const core::ReplicaContext& ctx) {
      return std::make_unique<core::FallbackReplica>(ctx, fb);
    }));
  }
  for (auto& node : nodes) node->start();

  if (opts.kill_one_node) {
    std::this_thread::sleep_for(std::chrono::milliseconds(millis / 3));
    nodes[1]->stop();  // hard crash of one replica mid-run
    std::this_thread::sleep_for(std::chrono::milliseconds(2 * millis / 3));
  } else {
    std::this_thread::sleep_for(std::chrono::milliseconds(millis));
  }
  for (auto& node : nodes) node->stop();

  RunResult r;
  r.blocks_per_sec = double(nodes[0]->replica().ledger().size()) / (millis / 1000.0);
  for (std::uint32_t a = 0; a < n && r.consistent; ++a) {
    for (std::uint32_t b = a + 1; b < n && r.consistent; ++b) {
      const auto& ra = nodes[a]->replica().ledger().records();
      const auto& rb = nodes[b]->replica().ledger().records();
      for (std::size_t i = 0; i < std::min(ra.size(), rb.size()); ++i) {
        if (ra[i].id != rb[i].id) r.consistent = false;
      }
    }
  }
  for (auto& node : nodes) r.fallbacks += node->replica().stats().fallbacks_entered;
  r.wall_seconds = millis / 1000.0;
  for (auto& node : nodes) {
    const net::NetStats st = node->net_stats();  // safe: all nodes stopped
    r.net.messages += st.messages;
    r.net.bytes += st.bytes;
    r.net.multicasts += st.multicasts;
    r.net.payload_copies_avoided += st.payload_copies_avoided;
    r.net.writev_batches += st.writev_batches;
    r.net.writev_frames += st.writev_frames;
    r.net.writev_bytes += st.writev_bytes;
    r.net.sendq_dropped_frames += st.sendq_dropped_frames;
    r.net.sendq_dropped_bytes += st.sendq_dropped_bytes;
    r.net.verify_batches += st.verify_batches;
    r.net.verify_frames += st.verify_frames;
    r.net.verify_bypass_frames += st.verify_bypass_frames;
    r.net.verify_inline_frames += st.verify_inline_frames;
    r.net.verify_dropped_at_stop += st.verify_dropped_at_stop;
    const core::ReplicaStats& rs = node->replica().stats();
    r.batches_sealed += rs.batches_sealed;
    r.batches_announced += rs.batches_announced;
    r.batches_pulled += rs.batches_pulled;
    r.batch_pull_timeouts += rs.batch_pull_timeouts;
    r.batch_ref_hits += rs.batch_ref_hits;
    r.batch_ref_misses += rs.batch_ref_misses;
  }
  return r;
}

/// Shared emitter for the verify-pool data-path fields of a JSON row.
void add_verify_fields(bench::JsonLine& line, const RunResult& r) {
  line.field("verify_batches", r.net.verify_batches)
      .field("verify_frames", r.net.verify_frames)
      .field("frames_per_verify_batch", r.frames_per_verify_batch())
      .field("verify_bypass_frames", r.net.verify_bypass_frames)
      .field("verify_inline_frames", r.net.verify_inline_frames)
      .field("verify_dropped_at_stop", r.net.verify_dropped_at_stop);
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = bench::json_path_arg(argc, argv);
  const char* spans_out = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--spans-out") == 0) spans_out = argv[i + 1];
  }
  std::printf("==============================================================\n");
  std::printf("TCP: real-socket reality check (localhost, 1 thread/replica)\n");
  std::printf("==============================================================\n\n");

  std::printf("--- throughput vs cluster size (1s wall clock each, empty blocks) ---\n");
  std::printf("    %-6s %-4s %14s %12s %12s %14s %10s\n", "n", "vt", "blocks/s",
              "consistent", "fallbacks", "frames/writev", "drops");
  for (std::uint32_t n : {4u, 7u, 10u}) {
    // These rows feed the 0.97-slack verify gate
    // (tools/check_verify_gate.py). Two noise sources on a shared runner
    // would swamp that margin if each (n, vt) were a single 1-second
    // sample: per-run jitter (~5%) and slow machine-wide drift over the
    // bench's lifetime (vt2 always measured after vt0 would eat a
    // systematic penalty). Interleave the vt0/vt2 repetitions so drift
    // hits both sides equally, and report the median of three per side.
    RunResult runs[2][3];
    for (int rep = 0; rep < 3; ++rep) {
      for (std::size_t vi = 0; vi < 2; ++vi) {
        RunOpts opts;
        opts.verify_threads = vi == 0 ? 0 : 2;
        runs[vi][rep] = run_cluster(n, 1000, 0, opts);
      }
    }
    for (std::size_t vi = 0; vi < 2; ++vi) {
      const std::size_t vt = vi == 0 ? 0 : 2;
      std::sort(std::begin(runs[vi]), std::end(runs[vi]),
                [](const RunResult& a, const RunResult& b) {
                  return a.blocks_per_sec < b.blocks_per_sec;
                });
      const RunResult& r = runs[vi][1];
      std::printf("    %-6u %-4zu %14.0f %12s %12llu %14.2f %10llu\n", n, vt,
                  r.blocks_per_sec, r.consistent ? "yes" : "NO",
                  static_cast<unsigned long long>(r.fallbacks), r.frames_per_writev(),
                  static_cast<unsigned long long>(r.net.sendq_dropped_frames));
      if (json_path != nullptr) {
        bench::JsonLine line("tcp_cluster");
        line.field("n", std::uint64_t{n})
            .field("verify_threads", std::uint64_t{vt})
            .field("blocks_per_sec", r.blocks_per_sec)
            .field("messages", r.net.messages)
            .field("bytes", r.net.bytes)
            .field("multicasts", r.net.multicasts)
            .field("payload_copies_avoided", r.net.payload_copies_avoided)
            .field("writev_batches", r.net.writev_batches)
            .field("writev_frames", r.net.writev_frames)
            .field("frames_per_writev", r.frames_per_writev())
            .field("sendq_dropped_frames", r.net.sendq_dropped_frames);
        add_verify_fields(line, r);
        line.field("wall_time_s", r.wall_seconds).append_to(json_path);
      }
    }
  }

  std::printf("\n--- throughput vs batch size (n=4, 1s each) --------------------\n");
  std::printf("    %-12s %16s %18s\n", "batch bytes", "blocks/s", "payload MB/s");
  for (std::size_t batch : {0u, 1024u, 16384u}) {
    const RunResult r = run_cluster(4, 1000, batch);
    std::printf("    %-12zu %16.0f %18.2f\n", batch, r.blocks_per_sec,
                r.blocks_per_sec * batch / 1e6);
  }

  std::printf("\n--- pipelined dissemination: inline vs digest-referenced -------\n");
  std::printf("    batch_refs=1 streams payload batches out of band while the\n");
  std::printf("    previous round's QC forms; proposals then carry a 32-byte\n");
  std::printf("    digest instead of the payload (DESIGN.md §12). ref_misses are\n");
  std::printf("    proposals that arrived before their batch (recovered by pull).\n");
  std::printf("    %-4s %-12s %-5s %12s %14s %10s %8s %8s\n", "n", "batch bytes", "refs",
              "blocks/s", "payload MB/s", "announced", "misses", "pulls");
  for (std::uint32_t n : {4u, 7u}) {
    for (std::size_t batch : {1024u, 16384u}) {
      for (bool refs : {false, true}) {
        RunOpts opts;
        opts.batch_refs = refs;
        const RunResult r = run_cluster(n, 1000, batch, opts);
        std::printf("    %-4u %-12zu %-5d %12.0f %14.2f %10llu %8llu %8llu\n", n, batch,
                    refs ? 1 : 0, r.blocks_per_sec, r.blocks_per_sec * batch / 1e6,
                    static_cast<unsigned long long>(r.batches_announced),
                    static_cast<unsigned long long>(r.batch_ref_misses),
                    static_cast<unsigned long long>(r.batches_pulled));
        if (json_path != nullptr) {
          bench::JsonLine line("tcp_pipeline");
          line.field("n", std::uint64_t{n})
              .field("batch_bytes", std::uint64_t{batch})
              .field("batch_refs", std::uint64_t{refs ? 1 : 0})
              .field("blocks_per_sec", r.blocks_per_sec)
              .field("payload_mb_per_sec", r.blocks_per_sec * batch / 1e6)
              .field("consistent", std::uint64_t{r.consistent ? 1 : 0})
              .field("batches_sealed", r.batches_sealed)
              .field("batches_announced", r.batches_announced)
              .field("batches_pulled", r.batches_pulled)
              .field("batch_pull_timeouts", r.batch_pull_timeouts)
              .field("batch_ref_hits", r.batch_ref_hits)
              .field("batch_ref_misses", r.batch_ref_misses)
              .field("wall_time_s", r.wall_seconds)
              .append_to(json_path);
        }
      }
    }
  }

  std::printf("\n--- multicast load: always-fallback baseline (n=7, 1s each) ----\n");
  std::printf("    every view multicasts f-blocks, f-votes and coin shares from\n");
  std::printf("    all n replicas (O(n^2) frames/decision) — the send queues must\n");
  std::printf("    coalesce bursts or the poll threads drown in write syscalls.\n");
  std::printf("    sweep over verify_threads: 0 = inline verification on the node\n");
  std::printf("    thread; >0 = batched, sender-sharded off-thread verification.\n");
  std::printf("    %-14s %12s %14s %16s %12s %12s\n", "verify_threads", "blocks/s",
              "frames/writev", "frames/vbatch", "consistent", "drops");
  for (std::size_t vt : {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    RunOpts opts;
    opts.always_fallback = true;
    opts.verify_threads = vt;
    const RunResult r = run_cluster(7, 1000, 0, opts);
    std::printf("    %-14zu %12.0f %14.2f %16.2f %12s %12llu\n", vt, r.blocks_per_sec,
                r.frames_per_writev(), r.frames_per_verify_batch(),
                r.consistent ? "yes" : "NO",
                static_cast<unsigned long long>(r.net.sendq_dropped_frames));
    if (json_path != nullptr) {
      bench::JsonLine line("tcp_cluster_multicast_load");
      line.field("n", std::uint64_t{7})
          .field("always_fallback", std::uint64_t{1})
          .field("verify_threads", std::uint64_t{vt})
          .field("blocks_per_sec", r.blocks_per_sec)
          .field("writev_batches", r.net.writev_batches)
          .field("writev_frames", r.net.writev_frames)
          .field("frames_per_writev", r.frames_per_writev())
          .field("payload_copies_avoided", r.net.payload_copies_avoided)
          .field("sendq_dropped_frames", r.net.sendq_dropped_frames);
      add_verify_fields(line, r);
      line.field("wall_time_s", r.wall_seconds).append_to(json_path);
    }
  }

  std::printf("\n--- commit-lifecycle spans: overhead + critical path -----------\n");
  std::printf("    n=16 always-fallback, vt=2 — the worst-case span volume (every\n");
  std::printf("    view is an O(n^2) proposal/vote storm). Interleaved best-of-5\n");
  std::printf("    spans-off vs spans-on (noise only lowers throughput, so the\n");
  std::printf("    best sample per side is the stable estimator — same statistic\n");
  std::printf("    as the trace-ring overhead gate); check_span_gate.py\n");
  std::printf("    requires on >= 0.95x off. The stage table below attributes each\n");
  std::printf("    commit's end-to-end latency to its critical-path stages; the\n");
  std::printf("    telescoped stage sum must cover >= 90%% of encode->commit.\n");
  {
    const std::uint32_t n = 16;
    constexpr int kReps = 5;
    RunResult runs[2][kReps];
    std::shared_ptr<obs::SpanRing> last_ring;
    for (int rep = 0; rep < kReps; ++rep) {
      for (std::size_t pos = 0; pos < 2; ++pos) {
        // Alternate which side goes first each rep so slow machine drift
        // (thermal, noisy neighbours) cannot systematically punish one
        // side of the comparison.
        const std::size_t si = (rep % 2 == 0) ? pos : 1 - pos;
        RunOpts opts;
        opts.always_fallback = true;
        opts.verify_threads = 2;
        if (si == 1) {
          // Fresh ring per run so each sample pays full recording cost
          // and the analyzed window is one clean run.
          // 2^19 slots (~25 MiB): a 2 s always-fallback storm emits ~260k
          // span events; the window must hold a whole run so every commit
          // keeps its encode record (chains == commits, zero drops).
          last_ring = std::make_shared<obs::SpanRing>(1 << 19, /*wall_clock=*/true);
          opts.spans = last_ring;
        }
        runs[si][rep] = run_cluster(n, 2000, 0, opts);
      }
    }
    double best[2] = {0, 0};
    for (std::size_t si = 0; si < 2; ++si) {
      for (const RunResult& r : runs[si]) {
        best[si] = std::max(best[si], r.blocks_per_sec);
      }
    }
    const double overhead = best[0] > 0 ? 1.0 - best[1] / best[0] : 0.0;
    std::printf("    samples (blocks/s):");
    for (std::size_t si = 0; si < 2; ++si) {
      std::printf("  %s {", si == 0 ? "off" : "on");
      for (int rep = 0; rep < kReps; ++rep) {
        std::printf("%s%.0f", rep == 0 ? "" : " ", runs[si][rep].blocks_per_sec);
      }
      std::printf("}");
    }
    std::printf("\n");
    std::printf("    spans-off %.0f blocks/s, spans-on %.0f blocks/s "
                "(overhead %.1f%%)\n\n",
                best[0], best[1], overhead * 100.0);

    const std::vector<obs::SpanEvent> events = last_ring->events();
    if (spans_out != nullptr) {
      const std::string ndjson = obs::spans_to_ndjson(events);
      std::FILE* f = std::fopen(spans_out, "w");
      if (f != nullptr) {
        std::fwrite(ndjson.data(), 1, ndjson.size(), f);
        std::fclose(f);
        std::printf("    span stream -> %s (%zu events)\n\n", spans_out, events.size());
      }
    }
    obs::SpanReport report = obs::analyze_spans(events);
    report.dropped += last_ring->dropped();
    std::fputs(report.summary().c_str(), stdout);
    if (report.chains.empty()) {
      std::fprintf(stderr, "FAIL: no critical-path chains stitched from %zu span "
                           "events\n", events.size());
      return 1;
    }
    if (report.coverage_min < 0.9) {
      std::fprintf(stderr, "FAIL: critical-path stage sum covers only %.1f%% of "
                           "end-to-end commit latency (gate: >= 90%%)\n",
                   report.coverage_min * 100.0);
      return 1;
    }
    std::printf("    stage-sum coverage: min %.3f mean %.3f over %zu chains "
                "(gate >= 0.9: OK)\n",
                report.coverage_min, report.coverage_mean, report.chains.size());
    if (json_path != nullptr) {
      bench::JsonLine line("tcp_span_overhead");
      line.field("n", std::uint64_t{n})
          .field("always_fallback", std::uint64_t{1})
          .field("verify_threads", std::uint64_t{2})
          .field("blocks_per_sec_off", best[0])
          .field("blocks_per_sec_on", best[1])
          .field("overhead_frac", overhead)
          .field("span_events", std::uint64_t{events.size()})
          .field("span_dropped", last_ring->dropped())
          .field("chains", std::uint64_t{report.chains.size()})
          .field("commits_seen", std::uint64_t{report.commits_seen})
          .field("coverage_min", report.coverage_min)
          .field("coverage_mean", report.coverage_mean)
          .field("clock_pairs", std::uint64_t{report.clock_pairs})
          .append_to(json_path);
    }
  }

  std::printf("\n--- crash tolerance on real sockets (n=4, one node dies) -------\n");
  {
    RunOpts opts;
    opts.kill_one_node = true;
    const RunResult r = run_cluster(4, 1500, 0, opts);
    std::printf("    survivors keep committing: %s (%.0f blocks/s overall, "
                "consistent: %s, fallbacks: %llu)\n",
                r.blocks_per_sec > 0 ? "yes" : "NO", r.blocks_per_sec,
                r.consistent ? "yes" : "NO", static_cast<unsigned long long>(r.fallbacks));
  }

  std::printf("\nReading: real-transport behaviour mirrors the simulator — linear\n");
  std::printf("fast path, throughput bounded by serialization+syscalls, and a dead\n");
  std::printf("node at most costs its leader rotations (timeout -> fallback/skip).\n");
  std::printf("frames/writev > 1 means the send queues are coalescing protocol\n");
  std::printf("bursts into single syscalls; drops > 0 only under backpressure.\n");
  return 0;
}
