// Experiment ABL — ablations of the design parameters the paper fixes by
// fiat, showing *why* those choices matter:
//
//  A1 leader rotation length (paper §3.1 fixes 4): shorter rotations break
//     the 3-chain fast path's ability to commit without handoffs; longer
//     rotations concentrate trust in one leader for longer.
//  A2 round timer vs network Δ: timers below Δ fire spuriously and push
//     the system into (correct but quadratic) fallbacks; timers far above
//     Δ slow recovery from real faults.
//  A3 batch size: amortization of the O(n)-per-block protocol overhead
//     over transaction bytes.
//  A4 adversary strength: fallback duration vs the attack deferral — the
//     fallback completes in O(attack delay), never deadlocks.
#include <cstdio>

#include "harness/experiment.h"

using namespace repro;
using namespace repro::harness;

namespace {

struct RunResult {
  std::size_t commits = 0;
  double msgs_per_decision = 0;
  double bytes_per_decision = 0;
  std::uint64_t fallbacks = 0;
  double mean_fallback_ms = 0;
  SimTime elapsed = 0;
};

RunResult run(ExperimentConfig cfg, std::size_t target, SimTime horizon) {
  Experiment exp(cfg);
  exp.start();
  exp.run_until_commits(target, horizon);
  RunResult r;
  r.commits = exp.min_honest_commits();
  r.elapsed = exp.sim().now();
  const auto& st = exp.network().stats();
  if (r.commits > 0) {
    r.msgs_per_decision = double(st.messages) / r.commits;
    r.bytes_per_decision = double(st.bytes) / r.commits;
  }
  std::uint64_t exits = 0, time_us = 0;
  for (ReplicaId id = 0; id < exp.n(); ++id) {
    if (!exp.is_honest(id)) continue;
    r.fallbacks += exp.replica(id).stats().fallbacks_entered;
    exits += exp.replica(id).stats().fallbacks_exited;
    time_us += exp.replica(id).stats().fallback_time_total_us;
  }
  if (exits > 0) r.mean_fallback_ms = double(time_us) / exits / 1000.0;
  return r;
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("ABL: design-parameter ablations (protocol: Fallback 3-chain)\n");
  std::printf("==============================================================\n\n");

  // ---- A1: leader rotation length -------------------------------------
  std::printf("--- A1: leader rotation (paper fixes 4 rounds/leader; n=4, sync,\n");
  std::printf("    one mute leader so handoffs matter) -----------------------\n");
  std::printf("    %-10s %10s %14s %12s %12s\n", "rotation", "commits", "msgs/decision",
              "fallbacks", "virt time s");
  for (std::uint32_t rot : {1u, 2u, 3u, 4u, 8u}) {
    ExperimentConfig cfg;
    cfg.n = 4;
    cfg.protocol = Protocol::kFallback3;
    cfg.seed = 500 + rot;
    cfg.pcfg.leader_rotation = rot;
    cfg.faults[1] = core::FaultKind::kMuteLeader;
    const RunResult r = run(cfg, 60, 60'000'000'000ull);
    std::printf("    %-10u %10zu %14.1f %12llu %12.1f\n", rot, r.commits,
                r.msgs_per_decision, static_cast<unsigned long long>(r.fallbacks),
                r.elapsed / 1e6);
  }

  // ---- A2: timer vs delta ----------------------------------------------
  std::printf("\n--- A2: round timer vs network Delta (n=4, sync Δ=50ms, honest) ---\n");
  std::printf("    %-14s %10s %14s %12s %12s\n", "timeout ms", "commits", "msgs/decision",
              "fallbacks", "virt time s");
  for (SimTime to : {60'000u, 120'000u, 400'000u, 1'600'000u, 6'400'000u}) {
    ExperimentConfig cfg;
    cfg.n = 4;
    cfg.protocol = Protocol::kFallback3;
    cfg.seed = 600;
    cfg.pcfg.base_timeout_us = to;
    const RunResult r = run(cfg, 100, 60'000'000'000ull);
    std::printf("    %-14.1f %10zu %14.1f %12llu %12.1f\n", to / 1000.0, r.commits,
                r.msgs_per_decision, static_cast<unsigned long long>(r.fallbacks),
                r.elapsed / 1e6);
  }
  // And a *pathological* timer: below the minimum delay, every round times
  // out — the protocol must still be live purely through fallbacks.
  {
    ExperimentConfig cfg;
    cfg.n = 4;
    cfg.protocol = Protocol::kFallback3;
    cfg.seed = 601;
    cfg.pcfg.base_timeout_us = 500;  // 0.5 ms << min network delay
    const RunResult r = run(cfg, 20, 120'000'000'000ull);
    std::printf("    %-14s %10zu %14.1f %12llu %12.1f   <- all-fallback mode\n", "0.5 (<min)",
                r.commits, r.msgs_per_decision,
                static_cast<unsigned long long>(r.fallbacks), r.elapsed / 1e6);
  }

  // ---- A3: batch size ----------------------------------------------------
  std::printf("\n--- A3: batch size (n=7, sync): protocol overhead amortization ---\n");
  std::printf("    %-12s %16s %18s %16s\n", "batch bytes", "bytes/decision",
              "overhead bytes", "overhead %%");
  for (std::size_t batch : {0u, 256u, 1024u, 4096u, 16384u}) {
    ExperimentConfig cfg;
    cfg.n = 7;
    cfg.protocol = Protocol::kFallback3;
    cfg.seed = 700;
    cfg.pcfg.batch_bytes = batch;
    const RunResult r = run(cfg, 60, 60'000'000'000ull);
    // Each decision carries one batch of ~batch bytes to n-1 replicas.
    const double payload_per_decision = double(batch + 12) * (7 - 1);
    const double overhead = r.bytes_per_decision - payload_per_decision;
    std::printf("    %-12zu %16.1f %18.1f %15.1f%%\n", batch, r.bytes_per_decision,
                overhead, 100.0 * overhead / r.bytes_per_decision);
  }

  // ---- A4: adversary strength --------------------------------------------
  std::printf("\n--- A4: fallback duration vs attack strength (n=4, leader attack) ---\n");
  std::printf("    %-16s %12s %16s %12s\n", "attack delay s", "commits",
              "mean fallback ms", "fallbacks");
  for (SimTime attack : {1'000'000u, 2'000'000u, 5'000'000u, 10'000'000u, 20'000'000u}) {
    ExperimentConfig cfg;
    cfg.n = 4;
    cfg.protocol = Protocol::kFallback3;
    cfg.scenario = NetScenario::kLeaderAttack;
    cfg.attack_delay = attack;
    cfg.seed = 800;
    const RunResult r = run(cfg, 15, 400'000'000'000ull);
    std::printf("    %-16.1f %12zu %16.1f %12llu\n", attack / 1e6, r.commits,
                r.mean_fallback_ms, static_cast<unsigned long long>(r.fallbacks));
  }

  std::printf("\nReading: A1 — longer rotations amortize handoffs and reduce the\n");
  std::printf("fallbacks a faulty leader triggers; the paper picks 4 so a full\n");
  std::printf("3-chain fits inside one honest reign; A2 — short\n");
  std::printf("timers trade fast-path linearity for fallback quadratic cost but\n");
  std::printf("never lose liveness; A3 — overhead amortizes with batch size;\n");
  std::printf("A4 — fallback duration scales linearly with the adversary's\n");
  std::printf("deferral, never deadlocking.\n");
  return 0;
}
