// End-to-end client service demo: clients submit transactions, retry on
// silence, and confirm once f+1 replicas acknowledge the commit. Shows
// the full request path (client -> proposer mempool -> block -> commit ->
// ack -> f+1 confirmation) and client-perceived latency, including with a
// crashed replica in the mix.
//
//   $ ./build/examples/client_service
#include <algorithm>
#include <cstdio>

#include "client/client_swarm.h"

using namespace repro;
using namespace repro::client;
using namespace repro::harness;

namespace {

void run_service(const char* title, ExperimentConfig cfg) {
  ClientConfig ccfg;
  ccfg.num_clients = 6;
  ccfg.submit_interval = 40'000;  // each client submits every 40 ms

  auto pools = std::make_shared<TxnPools>(cfg.n, ccfg.max_batch_txns);
  cfg.payload_factory = [pools](ReplicaId id) { return pools->next_batch(id); };

  Experiment exp(cfg);
  ClientSwarm swarm(exp, pools, ccfg, 123);
  exp.start();
  swarm.start();
  exp.sim().run_until(30'000'000);  // 30 virtual seconds

  const ClientStats& st = swarm.stats();
  auto lats = st.confirm_latencies_us;
  std::sort(lats.begin(), lats.end());
  const double p50 = lats.empty() ? 0 : lats[lats.size() / 2] / 1000.0;
  const double p99 = lats.empty() ? 0 : lats[lats.size() * 99 / 100] / 1000.0;

  std::printf("=== %s ===\n", title);
  std::printf("  submitted=%llu confirmed=%llu in-flight=%zu retries=%llu\n",
              static_cast<unsigned long long>(st.submitted),
              static_cast<unsigned long long>(st.confirmed), swarm.in_flight(),
              static_cast<unsigned long long>(st.retries));
  std::printf("  confirm latency p50=%.1f ms  p99=%.1f ms\n", p50, p99);
  std::printf("  goodput=%.1f txn/s  client rpc: %llu msgs, %llu bytes\n",
              st.confirmed / 30.0, static_cast<unsigned long long>(st.rpc_messages),
              static_cast<unsigned long long>(st.rpc_bytes));
  std::printf("  ledger safety: %s\n\n", exp.check_safety().ok ? "OK" : "VIOLATED");
}

}  // namespace

int main() {
  std::printf("Replicated service with real clients (n=4, f=1), 30 virtual seconds\n");
  std::printf("confirmation rule: f+1 = 2 matching commit acknowledgments\n\n");

  {
    ExperimentConfig cfg;
    cfg.n = 4;
    cfg.protocol = Protocol::kFallback3;
    cfg.seed = 1;
    run_service("healthy network, all replicas honest", cfg);
  }
  {
    ExperimentConfig cfg;
    cfg.n = 4;
    cfg.protocol = Protocol::kFallback3;
    cfg.seed = 2;
    cfg.faults[1] = core::FaultKind::kCrash;
    run_service("one crashed replica (clients retry around it)", cfg);
  }
  {
    ExperimentConfig cfg;
    cfg.n = 4;
    cfg.protocol = Protocol::kFallback3;
    cfg.scenario = NetScenario::kPartialSynchrony;
    cfg.gst = 8'000'000;
    cfg.seed = 3;
    run_service("bad network until t=8s (fallbacks keep the service up)", cfg);
  }
  return 0;
}
