// Run a real BFT cluster: n replicas, each on its own thread with its own
// TCP sockets on localhost, committing blocks on the wall clock — the
// same protocol code the simulator runs, on a real transport.
//
//   $ ./build/examples/tcp_cluster [n] [seconds]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "core/fallback.h"
#include "transport/node.h"

using namespace repro;
using namespace repro::transport;

int main(int argc, char** argv) {
  const std::uint32_t n = argc > 1 ? std::atoi(argv[1]) : 4;
  const int seconds = argc > 2 ? std::atoi(argv[2]) : 3;

  // Trusted-dealer key generation, shared by all nodes of the cluster.
  auto crypto = crypto::CryptoSystem::deal(QuorumParams::for_n(n), 7);

  std::vector<PeerAddress> peers;
  const std::uint16_t port0 = 23000 + (::getpid() % 10000);
  for (std::uint32_t i = 0; i < n; ++i) {
    peers.push_back(PeerAddress{"127.0.0.1", static_cast<std::uint16_t>(port0 + i)});
  }
  std::printf("starting %u replicas on 127.0.0.1:%u..%u (f = %u tolerated)\n", n, port0,
              port0 + n - 1, QuorumParams::for_n(n).f);

  std::vector<std::unique_ptr<TcpNode>> nodes;
  for (ReplicaId i = 0; i < n; ++i) {
    NodeConfig cfg;
    cfg.id = i;
    cfg.peers = peers;
    cfg.crypto = crypto;
    cfg.seed = 42 + i;
    cfg.pcfg.base_timeout_us = 300'000;  // 300 ms round timer
    cfg.pcfg.batch_bytes = 512;
    nodes.push_back(std::make_unique<TcpNode>(cfg, [](const core::ReplicaContext& ctx) {
      return std::make_unique<core::FallbackReplica>(ctx, core::FallbackParams{});
    }));
  }
  for (auto& node : nodes) node->start();

  for (int s = 1; s <= seconds; ++s) {
    std::this_thread::sleep_for(std::chrono::seconds(1));
    std::printf("t=%ds committed:", s);
    for (auto& node : nodes) std::printf(" %llu", (unsigned long long)node->committed());
    std::printf("\n");
  }

  for (auto& node : nodes) node->stop();

  // Offline check: all ledgers prefix-consistent.
  bool consistent = true;
  const auto& ref = nodes[0]->replica().ledger().records();
  for (std::uint32_t i = 1; i < n; ++i) {
    const auto& other = nodes[i]->replica().ledger().records();
    for (std::size_t k = 0; k < std::min(ref.size(), other.size()); ++k) {
      if (ref[k].id != other[k].id) consistent = false;
    }
  }
  std::printf("ledger prefix consistency: %s\n", consistent ? "OK" : "VIOLATED");
  std::printf("throughput: %.1f blocks/s per replica\n",
              double(nodes[0]->replica().ledger().size()) / seconds);
  return consistent ? 0 : 1;
}
