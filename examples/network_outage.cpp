// The paper's motivating scenario as a narrated demo: "Be prepared when
// network goes bad." The network turns adversarially asynchronous for a
// while, then recovers. DiemBFT stops committing during the outage; the
// asynchronous view-change protocol falls back and keeps the chain
// growing, then returns to the linear fast path.
//
//   $ ./build/examples/network_outage
#include <cstdio>

#include "harness/experiment.h"

using namespace repro;
using namespace repro::harness;

namespace {

constexpr SimTime kSec = 1'000'000;
constexpr SimTime kOutageStart = 10 * kSec;
constexpr SimTime kOutageEnd = 30 * kSec;
constexpr SimTime kRunEnd = 40 * kSec;

void narrate(Protocol p, const char* name) {
  ExperimentConfig cfg;
  cfg.n = 4;
  cfg.protocol = p;
  cfg.seed = 7;
  cfg.scenario = NetScenario::kLeaderAttack;
  cfg.attack_delay = 5'000'000;
  Experiment exp(cfg);

  // The adversary only operates inside the outage window.
  auto* attack =
      dynamic_cast<net::AdaptiveLeaderAttackModel*>(&exp.network().delay_model());
  auto& simref = exp.sim();
  auto& e = exp;
  attack->set_targets_fn([&simref, &e]() {
    std::set<ReplicaId> targets;
    if (simref.now() < kOutageStart || simref.now() >= kOutageEnd) return targets;
    for (ReplicaId id = 0; id < e.n(); ++id) {
      targets.insert(core::round_leader(e.replica(id).current_round(), e.n(),
                                        e.config().pcfg.leader_rotation));
    }
    return targets;
  });
  exp.start();

  std::printf("=== %s ===\n", name);
  std::size_t prev = 0;
  for (SimTime t = 5 * kSec; t <= kRunEnd; t += 5 * kSec) {
    exp.sim().run_until(t);
    const std::size_t commits = exp.max_honest_commits();
    const char* phase = (t <= kOutageStart)  ? "good network "
                        : (t <= kOutageEnd) ? "NETWORK BAD  "
                                            : "recovered    ";
    std::uint64_t fallbacks = 0;
    for (ReplicaId id = 0; id < 4; ++id) {
      fallbacks += exp.replica(id).stats().fallbacks_entered;
    }
    std::printf("  t=%2llus  %s  committed=%4zu (+%3zu in window)  view=%llu  fallbacks=%llu\n",
                static_cast<unsigned long long>(t / kSec), phase, commits, commits - prev,
                static_cast<unsigned long long>(exp.replica(1).current_view()),
                static_cast<unsigned long long>(fallbacks));
    prev = commits;
  }
  const SafetyReport safety = exp.check_safety();
  std::printf("  safety: %s\n\n", safety.ok ? "OK" : safety.detail.c_str());
}

}  // namespace

int main() {
  std::printf("Scenario: leader-targeting asynchronous adversary active during\n");
  std::printf("t in [10s, 30s); synchronous otherwise. n = 4, f = 1.\n\n");
  narrate(Protocol::kDiemBft, "DiemBFT (baseline — loses liveness during the outage)");
  narrate(Protocol::kFallback3,
          "DiemBFT + Asynchronous Fallback (stays live via view-changes)");
  std::printf("Note the fallback counter: every view-change during the outage is an\n");
  std::printf("asynchronous fallback that elects a leader retroactively by coin.\n");
  return 0;
}
