// Quickstart: stand up a 4-replica BFT SMR system running DiemBFT with
// the Asynchronous Fallback (the paper's protocol), commit some blocks,
// and inspect the ledger.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "harness/experiment.h"

using namespace repro;
using namespace repro::harness;

int main() {
  // 1. Configure a system of n = 3f+1 = 4 replicas (f = 1) on a
  //    synchronous simulated network, running the Figure-2 protocol.
  ExperimentConfig cfg;
  cfg.n = 4;
  cfg.protocol = Protocol::kFallback3;
  cfg.scenario = NetScenario::kSynchronous;
  cfg.seed = 2021;
  cfg.pcfg.batch_bytes = 128;  // 128-byte transaction batch per block

  // 2. Build and start: the harness deals keys (trusted dealer), wires
  //    the replicas to the network, and enters round 1.
  Experiment exp(cfg);
  exp.start();

  // 3. Run the virtual clock until every replica has committed 10 blocks.
  const bool ok = exp.run_until_commits(10, /*max_time=*/60'000'000);
  std::printf("reached 10 commits on every replica: %s\n", ok ? "yes" : "no");
  std::printf("virtual time elapsed: %.2f s\n", exp.sim().now() / 1e6);

  // 4. Inspect replica 0's committed ledger.
  std::printf("\nreplica 0 ledger:\n");
  for (const auto& rec : exp.replica(0).ledger().records()) {
    std::printf("  round %2llu  view %llu  payload %3zu bytes  committed at %.3f s\n",
                static_cast<unsigned long long>(rec.round),
                static_cast<unsigned long long>(rec.view), rec.payload_bytes,
                rec.commit_time / 1e6);
  }

  // 5. Check the SMR safety guarantee across all replicas.
  const SafetyReport safety = exp.check_safety();
  std::printf("\nsafety (all honest ledgers prefix-consistent): %s\n",
              safety.ok ? "OK" : safety.detail.c_str());

  // 6. Communication cost so far (the fallback protocol's sync path is
  //    linear: ~2 messages per replica per block).
  const auto& st = exp.network().stats();
  std::printf("network: %llu messages, %llu bytes, %.1f msgs/committed block\n",
              static_cast<unsigned long long>(st.messages),
              static_cast<unsigned long long>(st.bytes),
              double(st.messages) / exp.min_honest_commits());
  return safety.ok ? 0 : 1;
}
