// A replicated key-value store built on the SMR public API — the classic
// "state machine" in state machine replication.
//
// Each replica proposes batches of KV commands through the payload hook,
// executes committed batches in ledger order via the commit callback,
// and — because the SMR layer guarantees an identical committed log — all
// replicas end with byte-identical stores, even though the run
// deliberately passes through an asynchronous period.
//
//   $ ./build/examples/kv_store
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/codec.h"
#include "harness/experiment.h"

using namespace repro;
using namespace repro::harness;

namespace {

// ---- the application state machine -----------------------------------------

struct KvCommand {
  std::string key;
  std::string value;  // empty = delete
};

Bytes encode_batch(const std::vector<KvCommand>& cmds) {
  Encoder enc;
  enc.u32(static_cast<std::uint32_t>(cmds.size()));
  for (const auto& c : cmds) {
    enc.str(c.key);
    enc.str(c.value);
  }
  return std::move(enc).result();
}

std::vector<KvCommand> decode_batch(BytesView payload) {
  Decoder dec(payload);
  std::vector<KvCommand> cmds;
  auto count = dec.u32();
  if (!count) return cmds;
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto key = dec.str();
    auto value = dec.str();
    if (!key || !value) return {};
    cmds.push_back(KvCommand{*key, *value});
  }
  return cmds;
}

/// One replica's materialized view of the replicated store.
struct KvStateMachine {
  std::map<std::string, std::string> data;
  std::size_t applied_batches = 0;

  void apply(BytesView payload) {
    for (const auto& cmd : decode_batch(payload)) {
      if (cmd.value.empty()) {
        data.erase(cmd.key);
      } else {
        data[cmd.key] = cmd.value;
      }
    }
    ++applied_batches;
  }
};

/// Deterministic synthetic client workload: SETs with periodic DELETEs.
class Workload {
 public:
  explicit Workload(std::uint64_t seed) : rng_(seed) {}

  Bytes next_batch() {
    std::vector<KvCommand> cmds;
    const int k = 1 + static_cast<int>(rng_.uniform(4));
    for (int i = 0; i < k; ++i) {
      const std::string key = "user:" + std::to_string(rng_.uniform(50));
      if (rng_.chance(0.15)) {
        cmds.push_back(KvCommand{key, ""});  // delete
      } else {
        cmds.push_back(KvCommand{key, "balance=" + std::to_string(rng_.uniform(10000))});
      }
    }
    return encode_batch(cmds);
  }

 private:
  Rng rng_;
};

}  // namespace

int main() {
  constexpr std::uint32_t kN = 4;

  // Per-replica client workloads feeding the proposers.
  std::vector<Workload> workloads;
  for (std::uint32_t i = 0; i < kN; ++i) workloads.emplace_back(1000 + i);

  ExperimentConfig cfg;
  cfg.n = kN;
  cfg.protocol = Protocol::kFallback3;
  cfg.seed = 99;
  // Pass through a bad-network period: async until GST, then synchronous —
  // the fallback keeps the store available throughout.
  cfg.scenario = NetScenario::kPartialSynchrony;
  cfg.gst = 6'000'000;
  cfg.payload_factory = [&workloads](ReplicaId id) { return workloads[id].next_batch(); };

  Experiment exp(cfg);

  // Execute committed batches, in ledger order, on each replica's state
  // machine.
  std::vector<KvStateMachine> machines(kN);
  for (ReplicaId id = 0; id < kN; ++id) {
    exp.replica(id).ledger().set_commit_callback(
        [&machines, id](const smr::Block& block, SimTime) {
          machines[id].apply(block.txns());
        });
  }
  exp.start();

  const bool ok = exp.run_until_commits(40, 300'000'000);
  std::printf("committed 40 blocks everywhere: %s (virtual time %.2f s)\n",
              ok ? "yes" : "no", exp.sim().now() / 1e6);

  // SMR guarantee realized at the application layer: identical stores.
  // (Replicas may have applied a different *number* of batches if some
  // are a few commits ahead; compare the common prefix length.)
  std::size_t min_applied = machines[0].applied_batches;
  for (const auto& m : machines) min_applied = std::min(min_applied, m.applied_batches);
  std::printf("applied batches per replica:");
  for (const auto& m : machines) std::printf(" %zu", m.applied_batches);
  std::printf("\n");

  // Re-derive each store at the common prefix and compare.
  std::vector<KvStateMachine> prefix(kN);
  for (ReplicaId id = 0; id < kN; ++id) {
    const auto& base = dynamic_cast<const core::ReplicaBase&>(exp.replica(id));
    const auto& recs = exp.replica(id).ledger().records();
    for (std::size_t i = 0; i < min_applied && i < recs.size(); ++i) {
      prefix[id].apply(base.store().get(recs[i].id)->txns());
    }
  }
  bool identical = true;
  for (ReplicaId id = 1; id < kN; ++id) {
    if (prefix[id].data != prefix[0].data) identical = false;
  }
  std::printf("stores identical at the common committed prefix (%zu batches): %s\n",
              min_applied, identical ? "YES" : "NO");
  std::printf("replica 0 store holds %zu keys; sample:\n", prefix[0].data.size());
  int shown = 0;
  for (const auto& [k, v] : prefix[0].data) {
    std::printf("  %-10s -> %s\n", k.c_str(), v.c_str());
    if (++shown == 5) break;
  }

  const SafetyReport safety = exp.check_safety();
  std::printf("ledger safety: %s\n", safety.ok ? "OK" : safety.detail.c_str());
  return safety.ok && ok && identical ? 0 : 1;
}
