// Byzantine-fault demo: run the fallback protocol with the maximum
// tolerated number of Byzantine replicas under several concrete attack
// behaviours, and show that safety holds and the system keeps committing.
//
//   $ ./build/examples/byzantine_leaders
#include <cstdio>

#include "harness/experiment.h"

using namespace repro;
using namespace repro::harness;

namespace {

const char* fault_name(core::FaultKind k) {
  switch (k) {
    case core::FaultKind::kNone: return "honest";
    case core::FaultKind::kCrash: return "crash";
    case core::FaultKind::kMuteLeader: return "mute leader";
    case core::FaultKind::kEquivocate: return "equivocating proposer";
    case core::FaultKind::kWithholdVotes: return "vote withholder";
    case core::FaultKind::kTimeoutSpam: return "timeout spammer";
    case core::FaultKind::kInvalidTxns: return "invalid-txn proposer";
    case core::FaultKind::kBadShares: return "bad-share flooder";
    case core::FaultKind::kImpersonateShares: return "share impersonator";
  }
  return "?";
}

void demo(std::uint32_t n, std::vector<core::FaultKind> faults, NetScenario scenario,
          const char* net_name) {
  ExperimentConfig cfg;
  cfg.n = n;
  cfg.protocol = Protocol::kFallback3;
  cfg.scenario = scenario;
  cfg.seed = 33;
  std::printf("n=%u (%s), Byzantine replicas:", n, net_name);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const ReplicaId id = static_cast<ReplicaId>(n - 1 - i);
    cfg.faults[id] = faults[i];
    std::printf(" #%u=%s", id, fault_name(faults[i]));
  }
  std::printf("\n");

  Experiment exp(cfg);
  exp.start();
  const bool live = exp.run_until_commits(15, 20'000'000'000ull);
  const SafetyReport safety = exp.check_safety();

  std::uint64_t fallbacks = 0;
  for (ReplicaId id = 0; id < n; ++id) {
    if (exp.is_honest(id)) fallbacks += exp.replica(id).stats().fallbacks_entered;
  }
  std::printf("  -> commits(min honest)=%zu live=%s safety=%s fallbacks=%llu, %.1fs virtual\n\n",
              exp.min_honest_commits(), live ? "yes" : "NO",
              safety.ok ? "OK" : safety.detail.c_str(),
              static_cast<unsigned long long>(fallbacks), exp.sim().now() / 1e6);
}

}  // namespace

int main() {
  using FK = core::FaultKind;
  std::printf("Byzantine behaviours under DiemBFT + Asynchronous Fallback\n");
  std::printf("(n = 3f+1 tolerates f Byzantine replicas)\n\n");

  // f = 1 of 4, synchronous network.
  demo(4, {FK::kCrash}, NetScenario::kSynchronous, "synchronous");
  demo(4, {FK::kMuteLeader}, NetScenario::kSynchronous, "synchronous");
  demo(4, {FK::kEquivocate}, NetScenario::kSynchronous, "synchronous");
  demo(4, {FK::kWithholdVotes}, NetScenario::kSynchronous, "synchronous");
  demo(4, {FK::kTimeoutSpam}, NetScenario::kSynchronous, "synchronous");

  // f = 2 of 7, mixed behaviours.
  demo(7, {FK::kCrash, FK::kEquivocate}, NetScenario::kSynchronous, "synchronous");
  demo(7, {FK::kMuteLeader, FK::kTimeoutSpam}, NetScenario::kSynchronous, "synchronous");

  // Byzantine replicas *and* an asynchronous network at once.
  demo(7, {FK::kCrash, FK::kCrash}, NetScenario::kAsynchronous, "asynchronous");

  std::printf("All scenarios must report safety=OK; liveness holds in every case\n");
  std::printf("because faulty replicas number at most f and the fallback handles\n");
  std::printf("the network. An elected Byzantine fallback-leader merely wastes one\n");
  std::printf("view (probability <= f/n per fallback).\n");
  return 0;
}
