// bftlab — command-line laboratory for the simulated protocols.
//
// Run any protocol under any network scenario with any fault mix and get
// the full metrics readout, without writing a line of C++:
//
//   $ bftlab --protocol fallback3 --net attack --n 7 --commits 50
//   $ bftlab --protocol diem --net sync --n 31 --faults crash,mute
//   $ bftlab --protocol fallback2 --net async --seconds 120 --seed 9
//
// Every run is deterministic in (arguments, seed) and ends with the
// safety + invariant checks.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/chaos.h"
#include "harness/experiment.h"
#include "harness/invariants.h"
#include "obs/metrics.h"

using namespace repro;
using namespace repro::harness;

namespace {

void usage() {
  std::printf(
      "usage: bftlab [options]\n"
      "       bftlab fuzz [fuzz-options]   (see bftlab fuzz --help)\n"
      "  --protocol P   diem | fallback3 | fallback3adopt | fallback2 | ace\n"
      "                 (default fallback3)\n"
      "  --net S        sync | async | psync | attack  (default sync)\n"
      "  --n N          replicas, n = 3f+1 recommended  (default 4)\n"
      "  --commits C    run until every honest replica commits C (default 50)\n"
      "  --seconds T    cap on virtual time, seconds     (default 600)\n"
      "  --seed X       RNG seed                          (default 1)\n"
      "  --batch B      txn batch bytes per block         (default 0)\n"
      "  --timeout MS   round timer, milliseconds         (default 400)\n"
      "  --async-mean MS  mean delay for async/psync scenarios, ms\n"
      "                 (default 2000; cap tracks at 4x the mean)\n"
      "  --faults LIST  comma-separated, applied to the last replicas:\n"
      "                 crash | mute | equiv | withhold | spam | badshare |\n"
      "                 impersonate | forgeqc | ghost\n"
      "  --eager        verify every threshold share on arrival (default is\n"
      "                 optimistic combine-then-verify accumulation)\n"
      "  --no-adopt     disable the strict higher-position adoption rule in\n"
      "                 the ace baseline (ProtocolConfig::fb_adopt = false)\n"
      "  --no-relay     disable certificate relay (designated coin-QC\n"
      "                 relayers + redundant-vote suppression; cert_relay = false)\n"
      "  --wal          enable write-ahead logs\n"
      "  --quiet        metrics only, no banner\n"
      "  --trace-out F  write the merged NDJSON event trace to F\n"
      "                 (analyze with tools/tracecat)\n"
      "  --metrics-out F  write an NDJSON registry snapshot to F\n");
}

bool parse_protocol(const std::string& s, Protocol* out) {
  if (s == "diem") *out = Protocol::kDiemBft;
  else if (s == "fallback3") *out = Protocol::kFallback3;
  else if (s == "fallback3adopt") *out = Protocol::kFallback3Adopt;
  else if (s == "fallback2") *out = Protocol::kFallback2;
  else if (s == "ace") *out = Protocol::kAlwaysFallback;
  else return false;
  return true;
}

bool parse_net(const std::string& s, NetScenario* out) {
  if (s == "sync") *out = NetScenario::kSynchronous;
  else if (s == "async") *out = NetScenario::kAsynchronous;
  else if (s == "psync") *out = NetScenario::kPartialSynchrony;
  else if (s == "attack") *out = NetScenario::kLeaderAttack;
  else return false;
  return true;
}

bool parse_fault(const std::string& s, core::FaultKind* out) {
  if (s == "crash") *out = core::FaultKind::kCrash;
  else if (s == "mute") *out = core::FaultKind::kMuteLeader;
  else if (s == "equiv") *out = core::FaultKind::kEquivocate;
  else if (s == "withhold") *out = core::FaultKind::kWithholdVotes;
  else if (s == "spam") *out = core::FaultKind::kTimeoutSpam;
  else if (s == "badshare") *out = core::FaultKind::kBadShares;
  else if (s == "impersonate") *out = core::FaultKind::kImpersonateShares;
  else if (s == "forgeqc") *out = core::FaultKind::kForgeFbQc;
  else if (s == "ghost") *out = core::FaultKind::kGhostChain;
  else return false;
  return true;
}

/// Human names for the MsgType tags (smr/messages.h), for the breakdown.
const char* msg_type_name(std::size_t tag) {
  switch (tag) {
    case 1: return "proposal";
    case 2: return "vote";
    case 3: return "diem-timeout";
    case 4: return "diem-tc";
    case 5: return "fb-timeout";
    case 6: return "fb-proposal";
    case 7: return "fb-vote";
    case 8: return "fb-qc";
    case 9: return "coin-share";
    case 10: return "coin-qc";
    case 11: return "block-request";
    case 12: return "block-response";
    case 13: return "batch";
    case 14: return "batch-pull";
    case 15: return "batch-push";
    default: return "?";
  }
}

// ---- bftlab fuzz: the deterministic chaos fuzzer -----------------------

void usage_fuzz() {
  std::printf(
      "usage: bftlab fuzz [options]\n"
      "  --seeds N      number of schedules to run        (default 50)\n"
      "  --seed0 X      first seed of the sweep           (default 1)\n"
      "  --seconds S    wall-clock budget; stop after the current seed\n"
      "                 once exceeded (default unlimited)\n"
      "  --quick        CI smoke preset: 120 s wall budget, shrink\n"
      "                 budget 100 candidate runs\n"
      "  --plant-deferred-vote-hole\n"
      "                 open the planted catch-up vote hole in every\n"
      "                 schedule (self-test: the fuzzer must find it)\n"
      "  --no-shrink    keep failing schedules unminimized\n"
      "  --out DIR      write repro-<seed>.json per failure into DIR\n"
      "  --forensics-out DIR\n"
      "                 re-run every shrunk repro with span recording on\n"
      "                 and write its flight-recorder bundle (trace, span\n"
      "                 and metrics snapshots) into DIR\n"
      "  --json FILE    write the sweep summary as JSON to FILE\n"
      "  --replay FILE  re-execute one schedule artifact; exits nonzero\n"
      "                 unless the trace sha256 matches its pin\n"
      "  --quiet        summary only, no per-failure lines\n");
}

int run_replay(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "fuzz: cannot read '%s'\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto sched = schedule_from_json(buf.str());
  if (!sched) {
    std::fprintf(stderr, "fuzz: '%s' is not a valid schedule artifact\n", path.c_str());
    return 2;
  }
  const ChaosResult res = run_schedule(*sched);
  std::printf("replay: seed=%llu n=%u commits=%zu %s\n",
              static_cast<unsigned long long>(sched->seed), sched->n, res.commits,
              res.ok ? "no violation" : res.failure.c_str());
  std::printf("replay: trace sha256 %s\n", res.trace_sha256.c_str());
  if (sched->expect_trace_sha256.empty()) {
    std::printf("replay: artifact carries no trace pin\n");
    return 0;
  }
  if (res.trace_sha256 != sched->expect_trace_sha256) {
    std::fprintf(stderr, "replay: MISMATCH, artifact pinned %s\n",
                 sched->expect_trace_sha256.c_str());
    return 1;
  }
  std::printf("replay: byte-identical to the pinned run\n");
  return 0;
}

int run_fuzz(int argc, char** argv) {
  ChaosFuzzer::Options opt;
  std::string out_dir, json_out, replay_file;
  bool quiet = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seeds") {
      opt.seeds = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--seed0") {
      opt.seed0 = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--seconds") {
      opt.wall_limit_ms = static_cast<std::uint64_t>(std::atoll(next())) * 1'000;
    } else if (arg == "--quick") {
      if (opt.wall_limit_ms == 0) opt.wall_limit_ms = 120'000;
      opt.shrink_budget = 100;
    } else if (arg == "--plant-deferred-vote-hole") {
      opt.gen.plant_deferred_vote_hole = true;
    } else if (arg == "--no-shrink") {
      opt.shrink = false;
    } else if (arg == "--out") {
      out_dir = next();
    } else if (arg == "--forensics-out") {
      opt.forensics_dir = next();
    } else if (arg == "--json") {
      json_out = next();
    } else if (arg == "--replay") {
      replay_file = next();
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      usage_fuzz();
      return arg == "--help" ? 0 : 2;
    }
  }
  if (!replay_file.empty()) return run_replay(replay_file);

  ChaosFuzzer fuzzer(opt);
  const FuzzStats stats = fuzzer.run([&](std::uint64_t seed, const ChaosResult& res) {
    if (!quiet && !res.ok) {
      std::printf("fuzz: seed %llu FAILED (%s): %s\n",
                  static_cast<unsigned long long>(seed), res.failure_kind.c_str(),
                  res.failure.c_str());
    }
  });

  if (!out_dir.empty() && !stats.found.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    for (const FuzzFailure& fail : stats.found) {
      const std::string path =
          out_dir + "/repro-" + std::to_string(fail.seed) + ".json";
      std::ofstream f(path);
      if (!f) {
        std::fprintf(stderr, "fuzz: cannot write '%s'\n", path.c_str());
        return 2;
      }
      f << schedule_to_json(fail.shrunk);
      if (!quiet) {
        std::printf("fuzz: seed %llu shrunk to %zu events (%zu shrink runs) -> %s\n",
                    static_cast<unsigned long long>(fail.seed), fail.shrunk.events.size(),
                    fail.shrink_runs, path.c_str());
        if (!fail.forensics_path.empty()) {
          std::printf("fuzz: seed %llu forensics bundle -> %s\n",
                      static_cast<unsigned long long>(fail.seed),
                      fail.forensics_path.c_str());
        }
      }
    }
  }

  const double win_rate =
      stats.fallbacks_entered > 0
          ? static_cast<double>(stats.fallbacks_won) / stats.fallbacks_entered
          : 0.0;
  if (!json_out.empty()) {
    std::ofstream f(json_out);
    if (!f) {
      std::fprintf(stderr, "fuzz: cannot write '%s'\n", json_out.c_str());
      return 2;
    }
    f << "{\n";
    f << "  \"runs\": " << stats.runs << ",\n";
    f << "  \"failures\": " << stats.failures << ",\n";
    f << "  \"targets_reached\": " << stats.targets_reached << ",\n";
    f << "  \"fallbacks_entered\": " << stats.fallbacks_entered << ",\n";
    f << "  \"fallbacks_won\": " << stats.fallbacks_won << ",\n";
    f << "  \"win_rate\": " << win_rate << ",\n";
    f << "  \"failure_seeds\": [";
    for (std::size_t i = 0; i < stats.found.size(); ++i) {
      f << (i > 0 ? ", " : "") << stats.found[i].seed;
    }
    f << "]\n}\n";
  }

  std::printf("fuzz: %zu runs, %zu failures, %zu reached their commit target\n",
              stats.runs, stats.failures, stats.targets_reached);
  std::printf("fuzz: %llu fallbacks entered, %llu won by the fallback chain "
              "(win rate %.3f, paper bound %.3f)\n",
              static_cast<unsigned long long>(stats.fallbacks_entered),
              static_cast<unsigned long long>(stats.fallbacks_won), win_rate, 2.0 / 3.0);
  return stats.failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "fuzz") == 0) return run_fuzz(argc, argv);
  ExperimentConfig cfg;
  std::size_t commits = 50;
  SimTime horizon = 600'000'000;
  bool quiet = false;
  std::string trace_out, metrics_out;
  std::vector<core::FaultKind> faults;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--protocol") {
      if (!parse_protocol(next(), &cfg.protocol)) { usage(); return 2; }
    } else if (arg == "--net") {
      if (!parse_net(next(), &cfg.scenario)) { usage(); return 2; }
    } else if (arg == "--n") {
      cfg.n = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (arg == "--commits") {
      commits = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--seconds") {
      horizon = static_cast<SimTime>(std::atoll(next())) * 1'000'000;
    } else if (arg == "--seed") {
      cfg.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--batch") {
      cfg.pcfg.batch_bytes = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--timeout") {
      cfg.pcfg.base_timeout_us = static_cast<SimTime>(std::atoll(next())) * 1'000;
    } else if (arg == "--async-mean") {
      cfg.async_mean = static_cast<SimTime>(std::atoll(next())) * 1'000;
      cfg.async_max = cfg.async_mean * 4;
    } else if (arg == "--eager") {
      cfg.pcfg.lazy_share_verify = false;
    } else if (arg == "--no-adopt") {
      cfg.pcfg.fb_adopt = false;
    } else if (arg == "--no-relay") {
      cfg.pcfg.cert_relay = false;
    } else if (arg == "--wal") {
      cfg.enable_wal = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--trace-out") {
      trace_out = next();
    } else if (arg == "--metrics-out") {
      metrics_out = next();
    } else if (arg == "--faults") {
      std::string list = next();
      std::size_t pos = 0;
      while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string tok = list.substr(pos, comma - pos);
        core::FaultKind kind;
        if (!tok.empty()) {
          if (!parse_fault(tok, &kind)) { usage(); return 2; }
          faults.push_back(kind);
        }
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else {
      usage();
      return arg == "--help" ? 0 : 2;
    }
  }

  const auto f = QuorumParams::for_n(cfg.n).f;
  if (faults.size() > f) {
    std::fprintf(stderr, "refusing %zu faults with f = %u (safety is only promised for <= f)\n",
                 faults.size(), f);
    return 2;
  }
  for (std::size_t i = 0; i < faults.size(); ++i) {
    cfg.faults[static_cast<ReplicaId>(cfg.n - 1 - i)] = faults[i];
  }

  if (!quiet) {
    std::printf("bftlab: %s, n=%u (f=%u), seed=%llu, target=%zu commits\n",
                protocol_name(cfg.protocol), cfg.n, f,
                static_cast<unsigned long long>(cfg.seed), commits);
  }

  if (!trace_out.empty() && cfg.trace_capacity == 0) {
    cfg.trace_capacity = 1 << 16;
  }

  Experiment exp(cfg);
  exp.start();
  const bool reached = exp.run_until_commits(commits, horizon);

  if (!trace_out.empty() && !exp.write_traces(trace_out)) {
    std::fprintf(stderr, "bftlab: cannot write trace to '%s'\n", trace_out.c_str());
    return 2;
  }
  if (!metrics_out.empty() && !exp.write_metrics(metrics_out)) {
    std::fprintf(stderr, "bftlab: cannot write metrics to '%s'\n", metrics_out.c_str());
    return 2;
  }

  const auto& st = exp.network().stats();
  const std::size_t decisions = exp.min_honest_commits();
  std::uint64_t fallbacks = 0, fb_time = 0, fb_exits = 0;
  std::uint64_t vhits = 0, vmiss = 0;
  std::uint64_t dhits = 0, dmiss = 0;
  std::uint64_t sh_verified = 0, sh_deferred = 0, sh_opt = 0, sh_fb = 0, sh_bad = 0;
  std::uint64_t thinned = 0, relays_skipped = 0, bad_certs = 0;
  for (ReplicaId id = 0; id < cfg.n; ++id) {
    if (!exp.is_honest(id)) continue;
    thinned += exp.replica(id).stats().fb_votes_thinned;
    relays_skipped += exp.replica(id).stats().coin_relays_suppressed;
    bad_certs += exp.replica(id).stats().bad_certs_rejected;
    fallbacks += exp.replica(id).stats().fallbacks_entered;
    fb_exits += exp.replica(id).stats().fallbacks_exited;
    fb_time += exp.replica(id).stats().fallback_time_total_us;
    vhits += exp.replica(id).stats().cert_verify_hits;
    vmiss += exp.replica(id).stats().cert_verify_misses;
    dhits += exp.replica(id).stats().decode_hits;
    dmiss += exp.replica(id).stats().decode_misses;
    sh_verified += exp.replica(id).stats().shares_verified;
    sh_deferred += exp.replica(id).stats().shares_deferred;
    sh_opt += exp.replica(id).stats().combines_optimistic;
    sh_fb += exp.replica(id).stats().combine_fallbacks;
    sh_bad += exp.replica(id).stats().bad_shares_rejected;
  }

  std::printf("reached target     : %s\n", reached ? "yes" : "NO");
  std::printf("decisions          : %zu\n", decisions);
  std::printf("virtual time       : %.2f s\n", exp.sim().now() / 1e6);
  if (decisions > 0) {
    std::printf("throughput         : %.1f blocks/s\n", decisions / (exp.sim().now() / 1e6));
    std::printf("msgs per decision  : %.1f\n", double(st.messages) / decisions);
    std::printf("bytes per decision : %.1f\n", double(st.bytes) / decisions);
  }
  std::printf("total messages     : %llu (%llu bytes)\n",
              static_cast<unsigned long long>(st.messages),
              static_cast<unsigned long long>(st.bytes));
  for (std::size_t tag = 0; tag < st.messages_by_type.size(); ++tag) {
    const std::uint64_t m = st.messages_by_type[tag];
    if (m == 0) continue;
    std::printf("  %-16s : %llu msgs (%llu bytes)\n", msg_type_name(tag),
                static_cast<unsigned long long>(m),
                static_cast<unsigned long long>(st.bytes_by_type[tag]));
  }
  if (thinned + relays_skipped + bad_certs > 0) {
    std::printf("scale-out          : %llu votes thinned, %llu coin relays skipped, "
                "%llu bad certs rejected\n",
                static_cast<unsigned long long>(thinned),
                static_cast<unsigned long long>(relays_skipped),
                static_cast<unsigned long long>(bad_certs));
  }
  std::printf("self-delivery      : %llu msgs (%llu bytes), excluded from totals\n",
              static_cast<unsigned long long>(st.self_messages),
              static_cast<unsigned long long>(st.self_bytes));
  std::printf("cert verifications : %llu full, %llu cache hits",
              static_cast<unsigned long long>(vmiss),
              static_cast<unsigned long long>(vhits));
  if (vmiss > 0) std::printf(" (%.1fx fewer full verifies)", double(vhits + vmiss) / vmiss);
  std::printf("\n");
  std::printf("payload decodes    : %llu full, %llu cache hits",
              static_cast<unsigned long long>(dmiss),
              static_cast<unsigned long long>(dhits));
  if (dmiss > 0) std::printf(" (%.1fx fewer parses)", double(dhits + dmiss) / dmiss);
  std::printf("\n");
  std::printf("share assembly     : %llu verified per-share, %llu deferred, "
              "%llu optimistic combines, %llu fallbacks",
              static_cast<unsigned long long>(sh_verified),
              static_cast<unsigned long long>(sh_deferred),
              static_cast<unsigned long long>(sh_opt),
              static_cast<unsigned long long>(sh_fb));
  if (sh_bad > 0) std::printf(", %llu bad shares rejected",
                              static_cast<unsigned long long>(sh_bad));
  std::printf("\n");
  std::printf("zero-copy multicast: %llu multicasts, %llu payload copies avoided\n",
              static_cast<unsigned long long>(st.multicasts),
              static_cast<unsigned long long>(st.payload_copies_avoided));
  std::printf("fallbacks entered  : %llu", static_cast<unsigned long long>(fallbacks));
  if (fb_exits > 0) {
    std::printf(" (mean duration %.1f ms)", obs::ratio(fb_time, fb_exits) / 1000.0);
  }
  std::printf("\n");

  const SafetyReport safety = exp.check_safety();
  std::printf("safety             : %s\n", safety.ok ? "OK" : safety.detail.c_str());
  const InvariantReport inv = check_invariants(exp);
  std::printf("structural lemmas  : %s\n",
              inv.ok ? "OK" : inv.violations.front().c_str());
  return (safety.ok && inv.ok) ? 0 : 1;
}
