// bftnode — run one replica of the cluster as a standalone process.
//
//   $ bftnode node0.conf
//
// Config file (key = value; see common/config_file.h):
//
//   id = 0                     # this node's replica id
//   peer = 127.0.0.1:9000      # one line per replica, in id order
//   peer = 127.0.0.1:9001
//   peer = 127.0.0.1:9002
//   peer = 127.0.0.1:9003
//   seed = 7                   # cluster key seed — MUST match on all nodes
//   protocol = fallback3       # fallback3 | fallback3adopt | fallback2 | diem
//   timeout_ms = 300
//   batch_bytes = 256
//   wal = node0.wal            # optional: durable vote state
//   report_ms = 1000           # status line interval (0 = quiet)
//   admin_port = 9100          # optional: serve GET /metrics (Prometheus
//                              # text), /trace and /spans (NDJSON),
//                              # /healthz (liveness) and /dump (forensics
//                              # bundle) on 127.0.0.1:<port>; 0 = off
//   trace_capacity = 65536     # trace ring size (events) when admin_port
//                              # is set; 0 disables tracing
//   span_capacity = 65536      # commit-lifecycle span ring size (events)
//                              # when admin_port is set; 0 disables spans
//                              # (and the clock-sync ping frames)
//   forensics_dir = ./bundles  # optional: flight-recorder output dir;
//                              # enables GET /dump and watchdog dumps
//   stall_timeout_ms = 0       # commit-stall watchdog: /healthz turns 503
//                              # and (once) dumps a forensics bundle when
//                              # no commit lands for this long; 0 = off
//
// Every node of a cluster must use the same `seed` and the same peer
// list: the trusted-dealer keys are derived deterministically from the
// seed (a real deployment would replace this with a DKG — see DESIGN.md).
// Stop with SIGINT/SIGTERM; the committed count is printed on exit.
#include <csignal>
#include <cstdio>
#include <thread>

#include "common/config_file.h"
#include "core/diembft.h"
#include "core/fallback.h"
#include "obs/admin.h"
#include "obs/flight.h"
#include "transport/node.h"

using namespace repro;
using namespace repro::transport;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: bftnode <config-file>\n");
    return 2;
  }
  std::string error;
  auto cfg_file = ConfigFile::load(argv[1], &error);
  if (!cfg_file) {
    std::fprintf(stderr, "bftnode: %s\n", error.c_str());
    return 2;
  }

  NodeConfig cfg;
  cfg.id = static_cast<ReplicaId>(cfg_file->get_int("id", 0));
  for (const std::string& peer : cfg_file->get_all("peer")) {
    auto hp = parse_host_port(peer);
    if (!hp) {
      std::fprintf(stderr, "bftnode: bad peer address '%s'\n", peer.c_str());
      return 2;
    }
    cfg.peers.push_back(PeerAddress{hp->host, hp->port});
  }
  if (cfg.peers.size() < 4 || cfg.id >= cfg.peers.size()) {
    std::fprintf(stderr, "bftnode: need >= 4 peers and id < peer count (got %zu peers, id %u)\n",
                 cfg.peers.size(), cfg.id);
    return 2;
  }

  const auto n = static_cast<std::uint32_t>(cfg.peers.size());
  const auto seed = static_cast<std::uint64_t>(cfg_file->get_int("seed", 7));
  cfg.crypto = crypto::CryptoSystem::deal(QuorumParams::for_n(n), seed);
  cfg.seed = seed * 1'000'003 + cfg.id;
  cfg.pcfg.base_timeout_us = static_cast<SimTime>(cfg_file->get_int("timeout_ms", 300)) * 1000;
  cfg.pcfg.batch_bytes = static_cast<std::size_t>(cfg_file->get_int("batch_bytes", 256));

  std::unique_ptr<storage::FileWal> wal;
  if (cfg_file->has("wal")) {
    wal = std::make_unique<storage::FileWal>(cfg_file->get_str("wal", ""));
    cfg.wal = wal.get();
  }

  const std::string protocol = cfg_file->get_str("protocol", "fallback3");
  ReplicaFactory factory;
  if (protocol == "diem") {
    factory = [](const core::ReplicaContext& ctx) {
      return std::make_unique<core::DiemBftReplica>(ctx);
    };
  } else {
    core::FallbackParams fb;
    if (protocol == "fallback3") {
      fb.chain_len = 3;
    } else if (protocol == "fallback3adopt") {
      fb.chain_len = 3;
      fb.adoption = true;
    } else if (protocol == "fallback2") {
      fb.chain_len = 2;
    } else {
      std::fprintf(stderr, "bftnode: unknown protocol '%s'\n", protocol.c_str());
      return 2;
    }
    factory = [fb](const core::ReplicaContext& ctx) {
      return std::make_unique<core::FallbackReplica>(ctx, fb);
    };
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  // Observability: the registry and trace ring outlive the node; the node
  // thread attaches its counters into them at startup and the admin
  // server snapshots them on demand.
  obs::Registry registry;
  const auto admin_port = static_cast<std::uint16_t>(cfg_file->get_int("admin_port", 0));
  const auto trace_capacity =
      static_cast<std::size_t>(cfg_file->get_int("trace_capacity", 65536));
  const auto span_capacity =
      static_cast<std::size_t>(cfg_file->get_int("span_capacity", 65536));
  const std::string forensics_dir = cfg_file->get_str("forensics_dir", "");
  const auto stall_timeout_us =
      static_cast<std::uint64_t>(cfg_file->get_int("stall_timeout_ms", 0)) * 1000;
  std::shared_ptr<obs::TraceRing> trace;
  if (admin_port != 0 && trace_capacity > 0) {
    trace = std::make_shared<obs::TraceRing>(trace_capacity, /*wall_clock=*/true);
  }
  std::shared_ptr<obs::SpanRing> spans;
  if (admin_port != 0 && span_capacity > 0) {
    spans = std::make_shared<obs::SpanRing>(span_capacity, /*wall_clock=*/true);
  }
  if (admin_port != 0) {
    cfg.registry = &registry;
    cfg.trace = trace;
    cfg.spans = spans;
  }

  TcpNode node(cfg, factory);
  node.start();

  // Flight recorder + commit-stall watchdog. The watchdog arms after the
  // first commit (a cold cluster is "starting", not "stalled") and clears
  // if commits resume.
  std::unique_ptr<obs::FlightRecorder> flight;
  if (!forensics_dir.empty()) {
    obs::FlightRecorder::Sources src;
    if (trace) {
      src.traces = [id = cfg.id, trace] {
        obs::TraceMeta meta;
        meta.replica = id;
        meta.dropped = trace->dropped();
        meta.recorded = trace->recorded();
        return obs::trace_meta_line(meta) + obs::to_ndjson(trace->events());
      };
    }
    if (spans) {
      src.spans = [spans] { return obs::spans_to_ndjson(spans->events()); };
    }
    src.metrics = [&registry] { return registry.snapshot().ndjson(); };
    src.manifest_extra = [&node, id = cfg.id] {
      return ",\"replica\":" + std::to_string(id) +
             ",\"view\":" + std::to_string(node.current_view()) +
             ",\"round\":" + std::to_string(node.current_round()) +
             ",\"committed\":" + std::to_string(node.committed());
    };
    flight = std::make_unique<obs::FlightRecorder>(forensics_dir, src);
  }
  std::atomic<bool> stalled{false};

  std::unique_ptr<obs::AdminServer> admin;
  if (admin_port != 0) {
    obs::AdminServer::Options aopts;
    aopts.registry = &registry;
    aopts.trace = trace;
    aopts.spans = spans;
    aopts.replica = cfg.id;
    aopts.health_fn = [&node, &stalled, stall_timeout_us] {
      const std::uint64_t last = node.last_commit_wall_us();
      timespec ts{};
      clock_gettime(CLOCK_REALTIME, &ts);
      const std::uint64_t now =
          static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000 +
          static_cast<std::uint64_t>(ts.tv_nsec) / 1'000;
      const std::uint64_t age = (last == 0 || now < last) ? 0 : now - last;
      std::string body = std::string(stalled.load(std::memory_order_relaxed)
                                         ? "stalled"
                                         : "ok") +
                         " last_commit_age_us=" + std::to_string(age) +
                         " view=" + std::to_string(node.current_view()) +
                         " round=" + std::to_string(node.current_round()) +
                         " committed=" + std::to_string(node.committed()) + "\n";
      const int code = stalled.load(std::memory_order_relaxed) ? 503 : 200;
      return std::make_pair(code, std::move(body));
    };
    if (flight) {
      aopts.dump_fn = [&flight] { return flight->dump("admin"); };
    }
    admin = std::make_unique<obs::AdminServer>(admin_port, std::move(aopts));
    if (admin->running()) {
      std::printf(
          "bftnode: admin endpoint on 127.0.0.1:%u (/metrics /trace /spans /healthz /dump)\n",
          unsigned(admin->port()));
    }
  }
  std::printf("bftnode: replica %u/%u (%s) listening on %s:%u%s\n", cfg.id, n,
              protocol.c_str(), cfg.peers[cfg.id].host.c_str(), cfg.peers[cfg.id].port,
              wal ? ", WAL enabled" : "");

  const auto report_ms = cfg_file->get_int("report_ms", 1000);
  std::uint64_t last = 0;
  while (!g_stop) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(report_ms > 0 ? report_ms : 250));
    if (stall_timeout_us > 0) {
      const std::uint64_t last_commit = node.last_commit_wall_us();
      timespec ts{};
      clock_gettime(CLOCK_REALTIME, &ts);
      const std::uint64_t now_us =
          static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000 +
          static_cast<std::uint64_t>(ts.tv_nsec) / 1'000;
      const bool tripped =
          last_commit != 0 && now_us > last_commit + stall_timeout_us;
      const bool was_stalled = stalled.exchange(tripped, std::memory_order_relaxed);
      if (tripped && !was_stalled) {
        std::printf("bftnode: commit stall detected (%.1fs since last commit)\n",
                    (now_us - last_commit) / 1e6);
        if (flight) {
          const std::string bundle = flight->dump("stall");
          if (!bundle.empty()) {
            std::printf("bftnode: forensics bundle: %s\n", bundle.c_str());
          }
        }
        std::fflush(stdout);
      }
    }
    if (report_ms > 0) {
      const std::uint64_t now = node.committed();
      std::printf("committed=%llu (+%llu)\n", static_cast<unsigned long long>(now),
                  static_cast<unsigned long long>(now - last));
      std::fflush(stdout);
      last = now;
    }
  }

  node.stop();
  std::printf("bftnode: stopped with %llu committed blocks\n",
              static_cast<unsigned long long>(node.committed()));
  return 0;
}
