#!/usr/bin/env python3
"""CI gate for the verify-pool throughput fix.

Reads a bench NDJSON file and asserts that off-thread verification with
verify_threads=2 is no slower than inline verification (verify_threads=0),
modulo a slack factor for shared-runner noise, on two row families:

  * tcp_cluster_multicast_load — the O(n^2) always-fallback storm at n=7.
    The regression this guards: the first VerifyPool paid more in
    per-frame handoff synchronization than the two SHA-256s it offloaded,
    so enabling it LOWERED blocks/s. The batched, sender-sharded redesign
    must at least break even here.
  * tcp_cluster — the steady-state trickle (one small vote/proposal per
    wakeup), gated per cluster size n. The regression this guards: with a
    cold pool every frame paid a futex round trip that dwarfed the two
    SHA-256s, so vt2 ran far below vt0 (BENCH_pr6: 1175 vs 1917 at n=10).
    The adaptive bypass (VerifyPool::prefers_inline) must keep vt2 within
    the slack of vt0 in this regime too. These rows get a tighter slack
    than the multicast-load family: the bench reports the median of three
    runs per row, and the hysteresis + 1/512 probe rate leave the bypass
    within ~2-3% of inline, so a 10% allowance would mask exactly the
    EWMA-flap regression seen at n=7 in BENCH_pr7 (5431 vs 5897 = 0.92).

Usage: check_verify_gate.py BENCH.json [cluster_slack] [multicast_slack]
  cluster_slack:   tcp_cluster rows, vt2 >= slack * vt0 (default 0.97)
  multicast_slack: multicast-load rows              (default 0.9)
"""
import json
import sys


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_pr6.json"
    cluster_slack = float(sys.argv[2]) if len(sys.argv) > 2 else 0.97
    multicast_slack = float(sys.argv[3]) if len(sys.argv) > 3 else 0.9

    # Last row per key wins (the file accumulates across CI runs of
    # several benches; the freshest numbers are the ones that belong to
    # this run).
    multicast_by_vt = {}
    cluster_by_n_vt = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            bench = row.get("bench")
            if bench == "tcp_cluster_multicast_load":
                multicast_by_vt[int(row["verify_threads"])] = float(row["blocks_per_sec"])
            elif bench == "tcp_cluster":
                key = (int(row["n"]), int(row["verify_threads"]))
                cluster_by_n_vt[key] = float(row["blocks_per_sec"])

    failed = False

    if 0 not in multicast_by_vt or 2 not in multicast_by_vt:
        print(f"gate: missing multicast-load rows (have vt={sorted(multicast_by_vt)}) in {path}")
        return 1
    vt0, vt2 = multicast_by_vt[0], multicast_by_vt[2]
    floor = multicast_slack * vt0
    verdict = "PASS" if vt2 >= floor else "FAIL"
    print(
        f"gate: multicast-load blocks/s: vt0={vt0:.0f} vt2={vt2:.0f} "
        f"(floor {multicast_slack:.2f}*vt0={floor:.0f}) -> {verdict}"
    )
    if vt2 < floor:
        print("gate: off-thread verification is slower than inline again — "
              "the pool handoff has regressed")
        failed = True

    sizes = sorted({n for (n, _vt) in cluster_by_n_vt})
    if not sizes:
        print(f"gate: missing tcp_cluster rows in {path}")
        return 1
    for n in sizes:
        if (n, 0) not in cluster_by_n_vt or (n, 2) not in cluster_by_n_vt:
            print(f"gate: tcp_cluster n={n}: missing vt0 or vt2 row")
            failed = True
            continue
        vt0 = cluster_by_n_vt[(n, 0)]
        vt2 = cluster_by_n_vt[(n, 2)]
        floor = cluster_slack * vt0
        verdict = "PASS" if vt2 >= floor else "FAIL"
        print(
            f"gate: tcp_cluster n={n} blocks/s: vt0={vt0:.0f} vt2={vt2:.0f} "
            f"(floor {cluster_slack:.2f}*vt0={floor:.0f}) -> {verdict}"
        )
        if vt2 < floor:
            print(f"gate: n={n}: the adaptive verify bypass is not engaging — "
                  "steady-state frames are paying the pool round trip again")
            failed = True

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
