#!/usr/bin/env python3
"""CI gate for the verify-pool throughput fix.

Reads a bench NDJSON file (BENCH_pr6.json) and asserts that on the
multicast-load rows (tcp_cluster_multicast_load, the O(n^2) always-
fallback storm at n=7) the batched off-thread verification path with
verify_threads=2 is no slower than inline verification (verify_threads=0),
modulo a slack factor for shared-runner noise.

The regression this guards: the first VerifyPool paid more in per-frame
handoff synchronization than the two SHA-256s it offloaded, so enabling
it LOWERED blocks/s. The batched, sender-sharded redesign must at least
break even here (and wins outright on multi-core hardware).

Usage: check_verify_gate.py BENCH_pr6.json [slack]
  slack: vt2 must be >= slack * vt0 (default 0.9, i.e. 10% slack).
"""
import json
import sys


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_pr6.json"
    slack = float(sys.argv[2]) if len(sys.argv) > 2 else 0.9

    # Last row per verify_threads value wins (the file accumulates across
    # CI runs of several benches; the freshest numbers are the ones that
    # belong to this run).
    by_vt = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            if row.get("bench") != "tcp_cluster_multicast_load":
                continue
            by_vt[int(row["verify_threads"])] = float(row["blocks_per_sec"])

    if 0 not in by_vt or 2 not in by_vt:
        print(f"gate: missing multicast-load rows (have vt={sorted(by_vt)}) in {path}")
        return 1

    vt0, vt2 = by_vt[0], by_vt[2]
    floor = slack * vt0
    verdict = "PASS" if vt2 >= floor else "FAIL"
    print(
        f"gate: multicast-load blocks/s: vt0={vt0:.0f} vt2={vt2:.0f} "
        f"(floor {slack:.2f}*vt0={floor:.0f}) -> {verdict}"
    )
    if vt2 < floor:
        print("gate: off-thread verification is slower than inline again — "
              "the pool handoff has regressed")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
