#!/usr/bin/env python3
"""CI gate for the chaos-fuzzer smoke sweep (bftlab fuzz --json).

Hard requirements on main:
  * zero failures — no schedule may violate the structural lemmas
    (Lemmas 1-3, commit certification) or ledger prefix-consistency;
  * a nonzero fallback sample count — the sweep must actually exercise
    the asynchronous fallback path, otherwise the Lemma 7 win-rate
    accounting (and much of the fuzzer's value) is vacuous.

The aggregate fallback win rate is reported and compared against the
paper's >= 2/3 bound; it only warns, because per-sweep sampling noise on
a few hundred fallbacks is real while the bound is asymptotic.

Usage: check_fuzz_gate.py FUZZ.json
"""

import json
import sys

PAPER_BOUND = 2.0 / 3.0


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        with open(sys.argv[1], encoding="utf-8") as f:
            stats = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_fuzz_gate: cannot read summary: {e}", file=sys.stderr)
        return 2

    runs = int(stats.get("runs", 0))
    failures = int(stats.get("failures", 0))
    entered = int(stats.get("fallbacks_entered", 0))
    won = int(stats.get("fallbacks_won", 0))
    ok = True

    if runs == 0:
        print("check_fuzz_gate: FAIL - summary records zero runs")
        ok = False
    if failures != 0:
        seeds = stats.get("failure_seeds", [])
        print(f"check_fuzz_gate: FAIL - {failures} failing schedules "
              f"(seeds {seeds}); replay the repro-<seed>.json artifacts")
        ok = False
    if entered == 0:
        print("check_fuzz_gate: FAIL - no fallbacks entered; the sweep "
              "never exercised the asynchronous path")
        ok = False

    if entered > 0:
        rate = won / entered
        verdict = "ok" if rate >= PAPER_BOUND else "WARN (below paper bound; sampling noise?)"
        print(f"check_fuzz_gate: win rate {won}/{entered} = {rate:.3f} "
              f"vs bound {PAPER_BOUND:.3f} - {verdict}")

    if ok:
        print(f"check_fuzz_gate: OK - {runs} runs, 0 failures, "
              f"{entered} fallback samples")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
