#!/usr/bin/env python3
"""CI gate for the scale-out acceptance rows (PR 8, DESIGN.md §13).

Reads a bench NDJSON file (BENCH_pr8.json) and asserts that on the
always-fallback n=100 asynchrony rows (bench_scaling's `gate_row`
pair, both sides run for the SAME fixed virtual horizon) the
scale-out flags (strict f-block adoption + certificate relay) cut
messages-per-decision by at least `min_drop`.

The flags-off side reproduces the seed protocol. Under asynchrony
its equal-height adoption never assembles the leader-pure chains the
endorsed-consecutive commit rule needs, so it commits NOTHING in the
horizon (the row carries `baseline_starved: 1`). A starved baseline
has unbounded per-decision cost: the reduction is 100%, provided the
flags-on side actually commits — that second condition is what this
gate really enforces (asynchronous liveness at n=100), the message
accounting covers the non-starved case.

Usage: check_scaling_gate.py BENCH_pr8.json [min_drop] [n]
  min_drop: minimum fractional msgs/decision reduction (default 0.25).
  n:        committee size of the gated rows (default 100).
"""
import json
import sys


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_pr8.json"
    min_drop = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25
    n_gate = int(sys.argv[3]) if len(sys.argv) > 3 else 100

    off = on = None
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            if row.get("bench") != "scaling" or not row.get("gate_row"):
                continue
            if int(row["n"]) != n_gate:
                continue
            # Last matching pair wins (the file accumulates across runs).
            if row.get("fb_adopt") or row.get("cert_relay"):
                on = row
            else:
                off = row

    if off is None or on is None:
        print(f"scaling gate: no flags-on/off gate_row pair at n={n_gate} in {path}")
        return 1

    on_dec = int(on["decisions"])
    if on_dec == 0:
        print(f"scaling gate: FAIL — flags-on run committed nothing at n={n_gate} "
              "(asynchronous liveness lost)")
        return 1

    off_dec = int(off["decisions"])
    if off_dec == 0:
        if not off.get("baseline_starved"):
            print("scaling gate: baseline committed nothing but the row is not "
                  "flagged baseline_starved — bench and gate disagree")
            return 1
        print(f"scaling gate: OK — baseline starved (0 decisions in the horizon), "
              f"flags-on committed {on_dec}: reduction 100% >= {min_drop:.0%}")
        return 0

    off_mpd = float(off["msgs_per_decision"])
    on_mpd = float(on["msgs_per_decision"])
    drop = (off_mpd - on_mpd) / off_mpd if off_mpd > 0 else 0.0
    verdict = drop >= min_drop
    print(f"scaling gate: n={n_gate} msgs/decision off={off_mpd:.0f} on={on_mpd:.0f} "
          f"reduction={drop:.1%} (floor {min_drop:.0%}) -> {'OK' if verdict else 'FAIL'}")
    return 0 if verdict else 1


if __name__ == "__main__":
    sys.exit(main())
