#!/usr/bin/env python3
"""CI gate for commit-lifecycle span tracing (DESIGN.md §15).

Reads a bench NDJSON file and asserts, on the tcp_span_overhead row
(n=16 always-fallback, vt=2 — the worst-case span volume):

  * recording overhead: spans-on throughput >= slack * spans-off
    (default 0.95, i.e. < 5% commit-throughput cost);
  * attribution: at least one critical-path chain was stitched, and the
    telescoped per-stage sum covers >= 90% of every chain's end-to-end
    encode->commit latency (coverage_min >= 0.9).

The regression this guards: any instrumentation creep on the inline
delivery path (per-frame hashing beyond the 96-byte FNV prefix, a lock
on the span ring, eager NDJSON formatting) shows up here as throughput
loss before it shows up anywhere else; a key-derivation mismatch between
the transport and protocol layers shows up as zero chains.

Usage: check_span_gate.py BENCH.json [overhead_slack] [min_coverage]
"""
import json
import sys


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_pr10.json"
    slack = float(sys.argv[2]) if len(sys.argv) > 2 else 0.95
    min_coverage = float(sys.argv[3]) if len(sys.argv) > 3 else 0.9

    # Last row wins (the file accumulates across CI runs of several
    # benches; the freshest numbers belong to this run).
    row = None
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            parsed = json.loads(line)
            if parsed.get("bench") == "tcp_span_overhead":
                row = parsed

    if row is None:
        print(f"gate: no tcp_span_overhead row in {path}")
        return 1

    off = float(row["blocks_per_sec_off"])
    on = float(row["blocks_per_sec_on"])
    chains = int(row["chains"])
    coverage_min = float(row["coverage_min"])

    failed = False
    if off <= 0 or on < slack * off:
        print(f"gate: FAIL span overhead: spans-on {on:.0f} < {slack} * "
              f"spans-off {off:.0f} blocks/s")
        failed = True
    else:
        print(f"gate: ok span overhead: spans-on {on:.0f} vs spans-off "
              f"{off:.0f} blocks/s (>= {slack}x)")

    if chains < 1:
        print("gate: FAIL no critical-path chains stitched")
        failed = True
    else:
        print(f"gate: ok {chains} critical-path chains stitched")

    if coverage_min < min_coverage:
        print(f"gate: FAIL stage-sum coverage_min {coverage_min:.3f} < "
              f"{min_coverage}")
        failed = True
    else:
        print(f"gate: ok stage-sum coverage_min {coverage_min:.3f} "
              f"(>= {min_coverage})")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
