// tracecat — merge and analyze NDJSON consensus traces.
//
//   $ tracecat trace0.ndjson [trace1.ndjson ...]
//   $ bftlab --trace-out trace.ndjson ... && tracecat trace.ndjson
//
// Input files are per-replica (or pre-merged) NDJSON event streams as
// written by bftlab/benches (--trace-out) or served by bftnode's admin
// /trace endpoint. tracecat merges them into one global timeline ordered
// by (t_us, replica) and reports:
//
//   * per-kind event counts,
//   * per-commit latency (first proposal of a (view, round, height)
//     coordinate to its first commit anywhere), split into steady-state
//     rounds (height = 0) and fallback rounds (height > 0),
//   * completed fallback durations (enter -> coin exit), and
//   * the observed fallback leader-win rate next to the paper's Lemma 7
//     bound (an honest leader is elected, hence the fallback commits,
//     with probability >= 2/3).
//
// Exit status: 0 on success, 1 if no valid events were found, 2 on usage
// or I/O errors. `--merged-out <path>` additionally writes the merged
// timeline as NDJSON (useful for diffing runs).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/trace.h"

using namespace repro;

namespace {

bool read_file(const char* path, std::string* out) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out->append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<const char*> inputs;
  const char* merged_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--merged-out") == 0 && i + 1 < argc) {
      merged_out = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::fprintf(stderr, "usage: tracecat [--merged-out <path>] <trace.ndjson>...\n");
      return 2;
    } else {
      inputs.push_back(argv[i]);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "usage: tracecat [--merged-out <path>] <trace.ndjson>...\n");
    return 2;
  }

  std::vector<std::vector<obs::TraceEvent>> streams;
  std::size_t bad_total = 0;
  for (const char* path : inputs) {
    std::string text;
    if (!read_file(path, &text)) {
      std::fprintf(stderr, "tracecat: cannot read '%s'\n", path);
      return 2;
    }
    std::size_t bad = 0;
    streams.push_back(obs::parse_ndjson(text, &bad));
    bad_total += bad;
  }
  if (bad_total > 0) {
    std::fprintf(stderr, "tracecat: skipped %zu malformed line(s)\n", bad_total);
  }

  const auto merged = obs::merge_traces(streams);
  if (merged.empty()) {
    std::fprintf(stderr, "tracecat: no valid events in %zu input file(s)\n",
                 inputs.size());
    return 1;
  }

  if (merged_out != nullptr) {
    const std::string ndjson = obs::to_ndjson(merged);
    std::FILE* f = std::fopen(merged_out, "w");
    if (f == nullptr ||
        std::fwrite(ndjson.data(), 1, ndjson.size(), f) != ndjson.size() ||
        std::fclose(f) != 0) {
      std::fprintf(stderr, "tracecat: cannot write '%s'\n", merged_out);
      return 2;
    }
  }

  const obs::TraceReport report = obs::analyze_trace(merged);
  std::fputs(report.summary().c_str(), stdout);
  return 0;
}
