// tracecat — merge and analyze NDJSON consensus traces and span streams.
//
//   $ tracecat trace0.ndjson [trace1.ndjson ...]
//   $ bftlab --trace-out trace.ndjson ... && tracecat trace.ndjson
//   $ tracecat --critical-path spans.ndjson
//   $ tracecat --critical-path --chrome-trace out.json spans.ndjson
//
// Input files are per-replica (or pre-merged) NDJSON streams as written
// by bftlab/benches (--trace-out, --spans-out) or served by bftnode's
// admin /trace and /spans endpoints. Trace and span lines may be mixed in
// one file; each analysis picks out its own lines. tracecat merges trace
// events into one global timeline ordered by (t_us, replica) and reports:
//
//   * per-kind event counts,
//   * per-commit latency (first proposal of a (view, round, height)
//     coordinate to its first commit anywhere), split into steady-state
//     rounds (height = 0) and fallback rounds (height > 0),
//   * completed fallback durations (enter -> coin exit), and
//   * the observed fallback leader-win rate next to the paper's Lemma 7
//     bound (an honest leader is elected, hence the fallback commits,
//     with probability >= 2/3).
//
// `--critical-path` instead analyzes commit-lifecycle spans: per-commit
// critical-path chains (proposer encode -> critical voter -> QC ->
// commit) with a per-stage p50/p99 table split steady vs fallback.
// `--chrome-trace <path>` additionally writes the chains as a
// Perfetto/chrome://tracing-loadable JSON file.
//
// Files served by the admin endpoint carry a leading trace_meta line with
// the replica's ring-drop counters; tracecat prints them in the timeline
// header and warns when latency statistics were computed over a gappy
// (ring-overwritten) window.
//
// Exit status: 0 on success, 1 if no valid events were found, 2 on usage
// or I/O errors. `--merged-out <path>` additionally writes the merged
// timeline as NDJSON (useful for diffing runs).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/span.h"
#include "obs/trace.h"

using namespace repro;

namespace {

bool read_file(const char* path, std::string* out) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out->append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool write_file(const char* path, const std::string& content) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
  return std::fclose(f) == 0 && n == content.size();
}

/// Scan an NDJSON stream for trace_meta header lines (admin /trace and
/// flight-recorder bundles emit one per replica).
std::vector<obs::TraceMeta> collect_meta(const std::string& text) {
  std::vector<obs::TraceMeta> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    obs::TraceMeta meta;
    if (obs::parse_trace_meta_line(line, &meta)) out.push_back(meta);
    pos = end + 1;
  }
  return out;
}

void usage() {
  std::fprintf(stderr,
               "usage: tracecat [--merged-out <path>] [--critical-path]\n"
               "                [--chrome-trace <path>] <trace.ndjson>...\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<const char*> inputs;
  const char* merged_out = nullptr;
  const char* chrome_out = nullptr;
  bool critical_path = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--merged-out") == 0 && i + 1 < argc) {
      merged_out = argv[++i];
    } else if (std::strcmp(argv[i], "--chrome-trace") == 0 && i + 1 < argc) {
      chrome_out = argv[++i];
    } else if (std::strcmp(argv[i], "--critical-path") == 0) {
      critical_path = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      usage();
      return 2;
    } else {
      inputs.push_back(argv[i]);
    }
  }
  if (inputs.empty()) {
    usage();
    return 2;
  }

  std::vector<std::vector<obs::TraceEvent>> streams;
  std::vector<obs::SpanEvent> spans;
  std::vector<obs::TraceMeta> metas;
  std::size_t bad_total = 0;
  for (const char* path : inputs) {
    std::string text;
    if (!read_file(path, &text)) {
      std::fprintf(stderr, "tracecat: cannot read '%s'\n", path);
      return 2;
    }
    std::size_t bad = 0;
    streams.push_back(obs::parse_ndjson(text, &bad));
    bad_total += bad;
    std::size_t bad_spans = 0;
    auto file_spans = obs::parse_spans_ndjson(text, &bad_spans);
    bad_total += bad_spans;
    spans.insert(spans.end(), file_spans.begin(), file_spans.end());
    for (const auto& meta : collect_meta(text)) metas.push_back(meta);
  }
  if (bad_total > 0) {
    std::fprintf(stderr, "tracecat: skipped %zu malformed line(s)\n", bad_total);
  }

  std::uint64_t dropped_total = 0;
  for (const auto& meta : metas) dropped_total += meta.dropped;

  if (critical_path || chrome_out != nullptr) {
    if (spans.empty()) {
      std::fprintf(stderr, "tracecat: no span events in %zu input file(s)\n",
                   inputs.size());
      return 1;
    }
    obs::SpanReport report = obs::analyze_spans(std::move(spans));
    report.dropped += dropped_total;
    if (dropped_total > 0) {
      std::fprintf(stderr,
                   "tracecat: warning: %llu ring-dropped event(s) — stage "
                   "statistics computed over a gappy window\n",
                   static_cast<unsigned long long>(dropped_total));
    }
    std::fputs(report.summary().c_str(), stdout);
    if (chrome_out != nullptr) {
      if (!write_file(chrome_out, obs::chrome_trace_json(report))) {
        std::fprintf(stderr, "tracecat: cannot write '%s'\n", chrome_out);
        return 2;
      }
      std::printf("chrome trace: %s (%zu chains)\n", chrome_out, report.chains.size());
    }
    return 0;
  }

  const auto merged = obs::merge_traces(streams);
  if (merged.empty()) {
    std::fprintf(stderr, "tracecat: no valid events in %zu input file(s)\n",
                 inputs.size());
    return 1;
  }

  if (merged_out != nullptr) {
    const std::string ndjson = obs::to_ndjson(merged);
    if (!write_file(merged_out, ndjson)) {
      std::fprintf(stderr, "tracecat: cannot write '%s'\n", merged_out);
      return 2;
    }
  }

  // Timeline header: ring-drop accounting per replica (from trace_meta
  // lines, when present), so a gappy window is visible up front.
  for (const auto& meta : metas) {
    std::printf("replica %u: recorded=%llu dropped=%llu%s\n", meta.replica,
                static_cast<unsigned long long>(meta.recorded),
                static_cast<unsigned long long>(meta.dropped),
                meta.dropped > 0 ? " (ring overwrote events)" : "");
  }
  if (dropped_total > 0) {
    std::fprintf(stderr,
                 "tracecat: warning: %llu event(s) dropped by ring overwrite — "
                 "latency statistics below are computed over a gappy window\n",
                 static_cast<unsigned long long>(dropped_total));
  }

  const obs::TraceReport report = obs::analyze_trace(merged);
  std::fputs(report.summary().c_str(), stdout);
  return 0;
}
