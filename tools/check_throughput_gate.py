#!/usr/bin/env python3
"""CI gate for the pipelined-proposal-path throughput target (PR 7).

Reads a bench NDJSON file (BENCH_pr7.json) and asserts that the
steady-state TCP cluster at n=10 with inline verification
(tcp_cluster rows, verify_threads=0) sustains at least `floor`
blocks/s — 2x the pre-pipelining baseline (BENCH_pr6: 1917 blocks/s)
by default.

The speedups this guards (DESIGN.md §12): mesh-gated replica start,
lazy-popped timer deadlines, short-read recv, deferred loopback
delivery via self_inbox_, the uncached inline delivery path, and the
out-of-band batch dissemination layer staying off the critical path
when payloads are inline.

Usage: check_throughput_gate.py BENCH_pr7.json [floor] [n]
  floor: minimum blocks/s for the gated row (default 3834).
  n:     cluster size of the gated row (default 10).
"""
import json
import sys


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_pr7.json"
    floor = float(sys.argv[2]) if len(sys.argv) > 2 else 3834.0
    n_gate = int(sys.argv[3]) if len(sys.argv) > 3 else 10

    # Last matching row wins (the file accumulates across benches).
    best = None
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            if row.get("bench") != "tcp_cluster":
                continue
            if int(row["n"]) != n_gate or int(row["verify_threads"]) != 0:
                continue
            best = float(row["blocks_per_sec"])

    if best is None:
        print(f"gate: no tcp_cluster n={n_gate} vt0 row in {path}")
        return 1

    verdict = "PASS" if best >= floor else "FAIL"
    print(f"gate: tcp_cluster n={n_gate} vt0 blocks/s={best:.0f} (floor {floor:.0f}) -> {verdict}")
    if best < floor:
        print("gate: the pipelined proposal path has regressed below 2x the "
              "pre-pipelining baseline")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
