// Integration tests for the paper's contribution: DiemBFT with the
// Asynchronous Fallback (Figure 2), its 2-chain variant (Figure 4), the
// §3 chain-adoption optimization, and the always-fallback baseline.
#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace repro::harness {
namespace {

ExperimentConfig fb_config(Protocol p, std::uint32_t n, std::uint64_t seed = 7) {
  ExperimentConfig cfg;
  cfg.n = n;
  cfg.protocol = p;
  cfg.scenario = NetScenario::kSynchronous;
  cfg.seed = seed;
  return cfg;
}

/// Post-run structural invariants from the paper's lemmas, checked on the
/// committed chain of every honest replica:
///  - Lemma 2: adjacent blocks have consecutive round numbers and
///    nondecreasing view numbers.
///  - Theorem 6 territory: the ledger is one connected chain.
void check_chain_invariants(Experiment& exp) {
  for (ReplicaId id = 0; id < exp.n(); ++id) {
    if (!exp.is_honest(id)) continue;
    const auto& base = dynamic_cast<const core::ReplicaBase&>(exp.replica(id));
    const auto& recs = exp.replica(id).ledger().records();
    for (std::size_t i = 0; i < recs.size(); ++i) {
      const smr::Block* b = base.store().get(recs[i].id);
      ASSERT_NE(b, nullptr);
      if (i == 0) {
        EXPECT_EQ(b->parent.block_id, smr::genesis_id());
        EXPECT_EQ(b->round, 1u);
      } else {
        EXPECT_EQ(b->parent.block_id, recs[i - 1].id) << "replica " << id << " pos " << i;
        EXPECT_EQ(b->round, recs[i - 1].round + 1) << "Lemma 2: consecutive rounds";
        EXPECT_GE(b->view, recs[i - 1].view) << "Lemma 2: nondecreasing views";
      }
    }
  }
}

// ---- steady state -------------------------------------------------------------

TEST(Fallback, SteadyStateCommitsWithoutEnteringFallback) {
  Experiment exp(fb_config(Protocol::kFallback3, 4));
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(100, 120'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
  check_chain_invariants(exp);
  for (ReplicaId id = 0; id < 4; ++id) {
    EXPECT_EQ(exp.replica(id).stats().fallbacks_entered, 0u);
    EXPECT_EQ(exp.replica(id).current_view(), 0u);  // never left view 0
  }
}

TEST(Fallback, SteadyStateRoundsAreConsecutive) {
  // Fig 2 vote rule (r == qc.r + 1) forbids round gaps entirely.
  Experiment exp(fb_config(Protocol::kFallback3, 4));
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(40, 120'000'000));
  const auto& recs = exp.replica(2).ledger().records();
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].round, i + 1);
  }
}

// ---- entering / exiting the fallback --------------------------------------------

TEST(Fallback, AsyncPeriodTriggersFallbackAndViewAdvances) {
  auto cfg = fb_config(Protocol::kFallback3, 4);
  cfg.scenario = NetScenario::kAsynchronous;
  Experiment exp(cfg);
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(3, 2'000'000'000ull));
  EXPECT_TRUE(exp.check_safety().ok);
  std::uint64_t entered = 0;
  for (ReplicaId id = 0; id < 4; ++id) entered += exp.replica(id).stats().fallbacks_entered;
  EXPECT_GT(entered, 0u);
  EXPECT_GT(exp.replica(0).current_view(), 0u);
  check_chain_invariants(exp);
}

TEST(Fallback, EveryEnteredFallbackEventuallyExits) {
  // Lemma 7 (termination): run through several async-triggered fallbacks
  // and require entered == exited once the network quiesces.
  auto cfg = fb_config(Protocol::kFallback3, 4);
  cfg.scenario = NetScenario::kAsynchronous;
  Experiment exp(cfg);
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(5, 3'000'000'000ull));
  // Let in-flight fallbacks finish: message delays are capped at
  // async_max (8s), so a bounded number of extra windows must suffice.
  auto all_exited = [&] {
    for (ReplicaId id = 0; id < 4; ++id) {
      const auto& st = exp.replica(id).stats();
      if (st.fallbacks_entered != st.fallbacks_exited) return false;
    }
    return true;
  };
  for (int i = 0; i < 40 && !all_exited(); ++i) exp.run_for(10'000'000);
  for (ReplicaId id = 0; id < 4; ++id) {
    const auto& st = exp.replica(id).stats();
    EXPECT_EQ(st.fallbacks_entered, st.fallbacks_exited) << "replica " << id;
  }
}

TEST(Fallback, CommitsUnderLeaderAttackWhereDiemStalls) {
  // The paper's headline: same adversary, opposite liveness outcomes.
  auto attack_cfg = fb_config(Protocol::kFallback3, 4);
  attack_cfg.scenario = NetScenario::kLeaderAttack;
  Experiment ours(attack_cfg);
  ours.start();
  ASSERT_TRUE(ours.run_until_commits(10, 3'000'000'000ull));
  EXPECT_TRUE(ours.check_safety().ok);
  check_chain_invariants(ours);

  auto diem_cfg = attack_cfg;
  diem_cfg.protocol = Protocol::kDiemBft;
  Experiment diem(diem_cfg);
  diem.start();
  diem.run_for(500'000'000);
  EXPECT_EQ(diem.min_honest_commits(), 0u);
}

TEST(Fallback, RecoversSteadyStateAfterGst) {
  auto cfg = fb_config(Protocol::kFallback3, 4);
  cfg.scenario = NetScenario::kPartialSynchrony;
  cfg.gst = 4'000'000;
  Experiment exp(cfg);
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(50, 500'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
  check_chain_invariants(exp);
  // After GST the system should be back in steady state: the last many
  // commits happen without growing the view number.
  const View final_view = exp.replica(0).current_view();
  exp.run_until_commits(100, 1'000'000'000);
  EXPECT_EQ(exp.replica(0).current_view(), final_view);
}

TEST(Fallback, CommitProbabilityPerFallbackIsAtLeastTwoThirds) {
  // Lemma 7: each fallback commits a new block with probability >= 2/3
  // (the coin lands on one of >= 2f+1 completed chains). Count over many
  // seeded async runs: fraction of views that committed f-blocks.
  int views_total = 0;
  int views_with_commit = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    auto cfg = fb_config(Protocol::kFallback3, 4, seed);
    cfg.scenario = NetScenario::kAsynchronous;
    Experiment exp(cfg);
    exp.start();
    exp.run_until_commits(6, 2'000'000'000ull);
    const auto& recs = exp.replica(0).ledger().records();
    std::set<View> commit_views;
    for (const auto& rec : recs) {
      if (rec.height > 0) commit_views.insert(rec.view);
    }
    const View reached = exp.replica(0).current_view();
    views_total += static_cast<int>(reached);
    views_with_commit += static_cast<int>(commit_views.size());
  }
  ASSERT_GT(views_total, 20);
  const double p = static_cast<double>(views_with_commit) / views_total;
  EXPECT_GT(p, 0.55) << "Lemma 7 lower bound is 2/3; observed " << p;
}

// ---- fault tolerance --------------------------------------------------------------

TEST(Fallback, SurvivesFCrashes) {
  auto cfg = fb_config(Protocol::kFallback3, 7);
  cfg.faults[5] = core::FaultKind::kCrash;
  cfg.faults[6] = core::FaultKind::kCrash;
  Experiment exp(cfg);
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(25, 600'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
  check_chain_invariants(exp);
}

TEST(Fallback, SurvivesCrashesDuringAsynchrony) {
  auto cfg = fb_config(Protocol::kFallback3, 7);
  cfg.scenario = NetScenario::kAsynchronous;
  cfg.faults[0] = core::FaultKind::kCrash;
  cfg.faults[3] = core::FaultKind::kCrash;
  Experiment exp(cfg);
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(3, 4'000'000'000ull));
  EXPECT_TRUE(exp.check_safety().ok);
  check_chain_invariants(exp);
}

TEST(Fallback, EquivocatingLeaderCannotBreakSafety) {
  auto cfg = fb_config(Protocol::kFallback3, 4);
  cfg.faults[0] = core::FaultKind::kEquivocate;
  Experiment exp(cfg);
  exp.start();
  exp.run_until_commits(15, 400'000'000);
  EXPECT_TRUE(exp.check_safety().ok);
  EXPECT_GT(exp.min_honest_commits(), 0u);
  check_chain_invariants(exp);
}

TEST(Fallback, TimeoutSpammerCannotForceFallbackAlone) {
  // One spammer is < 2f+1 shares: no f-TC can form from it alone, and the
  // steady state keeps committing.
  auto cfg = fb_config(Protocol::kFallback3, 4);
  cfg.faults[3] = core::FaultKind::kTimeoutSpam;
  Experiment exp(cfg);
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(30, 300'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
  for (ReplicaId id = 0; id < 3; ++id) {
    EXPECT_EQ(exp.replica(id).stats().fallbacks_entered, 0u);
  }
}

TEST(Fallback, MuteLeaderForcesFallbackButProgressContinues) {
  auto cfg = fb_config(Protocol::kFallback3, 4);
  cfg.faults[1] = core::FaultKind::kMuteLeader;
  Experiment exp(cfg);
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(25, 600'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
  check_chain_invariants(exp);
}

// ---- variants -----------------------------------------------------------------------

TEST(Fallback, AdoptionVariantCommitsUnderAsynchrony) {
  auto cfg = fb_config(Protocol::kFallback3Adopt, 4);
  cfg.scenario = NetScenario::kAsynchronous;
  Experiment exp(cfg);
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(3, 2'000'000'000ull));
  EXPECT_TRUE(exp.check_safety().ok);
  check_chain_invariants(exp);
}

TEST(Fallback, TwoChainVariantCommitsEverywhere) {
  for (NetScenario s : {NetScenario::kSynchronous, NetScenario::kAsynchronous,
                        NetScenario::kLeaderAttack}) {
    auto cfg = fb_config(Protocol::kFallback2, 4);
    cfg.scenario = s;
    Experiment exp(cfg);
    exp.start();
    ASSERT_TRUE(exp.run_until_commits(5, 3'000'000'000ull)) << "scenario " << int(s);
    EXPECT_TRUE(exp.check_safety().ok);
    check_chain_invariants(exp);
  }
}

TEST(Fallback, TwoChainHasLowerCommitLatencyThanThreeChain) {
  // Section 4: 2-chain commit saves 2 rounds of latency in steady state.
  auto median_latency = [](Protocol p) {
    Experiment exp(fb_config(p, 4, 99));
    exp.start();
    EXPECT_TRUE(exp.run_until_commits(60, 200'000'000));
    auto lats = exp.commit_latencies(0);
    EXPECT_GT(lats.size(), 20u);
    std::sort(lats.begin(), lats.end());
    return lats[lats.size() / 2];
  };
  const SimTime lat3 = median_latency(Protocol::kFallback3);
  const SimTime lat2 = median_latency(Protocol::kFallback2);
  EXPECT_LT(lat2, lat3);
}

TEST(Fallback, AlwaysFallbackAlwaysLive) {
  for (NetScenario s : {NetScenario::kSynchronous, NetScenario::kAsynchronous,
                        NetScenario::kLeaderAttack}) {
    auto cfg = fb_config(Protocol::kAlwaysFallback, 4);
    cfg.scenario = s;
    Experiment exp(cfg);
    exp.start();
    ASSERT_TRUE(exp.run_until_commits(5, 3'000'000'000ull)) << "scenario " << int(s);
    EXPECT_TRUE(exp.check_safety().ok);
    check_chain_invariants(exp);
  }
}

TEST(Fallback, AlwaysFallbackNeverRunsSteadyState) {
  Experiment exp(fb_config(Protocol::kAlwaysFallback, 4));
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(10, 600'000'000));
  // Every committed block is a fallback-block.
  for (const auto& rec : exp.replica(0).ledger().records()) {
    EXPECT_GT(rec.height, 0u);
  }
}

// ---- ranking / view bookkeeping -----------------------------------------------------

TEST(Fallback, ViewsIncrementByOnePerFallback) {
  auto cfg = fb_config(Protocol::kFallback3, 4);
  cfg.scenario = NetScenario::kAsynchronous;
  Experiment exp(cfg);
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(4, 3'000'000'000ull));
  // Committed views never skip (views advance one fallback at a time for
  // a replica that participates in each).
  const auto& recs = exp.replica(0).ledger().records();
  for (std::size_t i = 1; i < recs.size(); ++i) {
    EXPECT_GE(recs[i].view, recs[i - 1].view);
  }
}

TEST(Fallback, LargerScaleSanity) {
  Experiment exp(fb_config(Protocol::kFallback3, 13));
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(15, 200'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
  check_chain_invariants(exp);
}

TEST(Fallback, DeterministicForFixedSeed) {
  auto run = [](std::uint64_t seed) {
    auto cfg = fb_config(Protocol::kFallback3, 4, seed);
    cfg.scenario = NetScenario::kAsynchronous;
    Experiment exp(cfg);
    exp.start();
    exp.run_until_commits(4, 2'000'000'000ull);
    std::vector<smr::BlockId> ids;
    for (const auto& rec : exp.replica(1).ledger().records()) ids.push_back(rec.id);
    return ids;
  };
  EXPECT_EQ(run(21), run(21));
}

}  // namespace
}  // namespace repro::harness
