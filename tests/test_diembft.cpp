// Integration tests for the DiemBFT baseline (paper Figure 1): steady
// state progress, pacemaker round synchronization, fault tolerance and
// the protocol's known liveness limits.
#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace repro::harness {
namespace {

ExperimentConfig diem_config(std::uint32_t n, std::uint64_t seed = 7) {
  ExperimentConfig cfg;
  cfg.n = n;
  cfg.protocol = Protocol::kDiemBft;
  cfg.scenario = NetScenario::kSynchronous;
  cfg.seed = seed;
  return cfg;
}

TEST(DiemBft, CommitsManyBlocksUnderSynchrony) {
  Experiment exp(diem_config(4));
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(100, 120'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
}

TEST(DiemBft, CommittedRoundsStrictlyIncrease) {
  Experiment exp(diem_config(4));
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(50, 120'000'000));
  const auto& recs = exp.replica(0).ledger().records();
  for (std::size_t i = 1; i < recs.size(); ++i) {
    EXPECT_LT(recs[i - 1].round, recs[i].round);
    EXPECT_EQ(recs[i].view, 0u);  // DiemBFT never leaves view 0
  }
}

TEST(DiemBft, AllReplicasTakeTurnsAsLeader) {
  Experiment exp(diem_config(4));
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(40, 120'000'000));
  std::set<ReplicaId> proposers;
  // Inspect the committed blocks' proposers via the block store.
  const auto& base = dynamic_cast<const core::ReplicaBase&>(exp.replica(0));
  for (const auto& rec : exp.replica(0).ledger().records()) {
    const smr::Block* b = base.store().get(rec.id);
    ASSERT_NE(b, nullptr);
    proposers.insert(b->proposer);
  }
  EXPECT_EQ(proposers.size(), 4u);
}

TEST(DiemBft, SurvivesOneCrashedFollower) {
  auto cfg = diem_config(4);
  cfg.faults[3] = core::FaultKind::kCrash;  // replica 3 leads rounds 13-16 etc.
  Experiment exp(cfg);
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(30, 300'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
}

TEST(DiemBft, SurvivesFCrashesAtLargerScale) {
  auto cfg = diem_config(7);
  cfg.faults[5] = core::FaultKind::kCrash;
  cfg.faults[6] = core::FaultKind::kCrash;
  Experiment exp(cfg);
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(25, 400'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
}

TEST(DiemBft, MuteLeaderRoundsSkippedViaTc) {
  auto cfg = diem_config(4);
  cfg.faults[1] = core::FaultKind::kMuteLeader;
  Experiment exp(cfg);
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(30, 300'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
  // The mute leader's rounds produced timeouts at every honest replica.
  std::uint64_t timeouts = 0;
  for (ReplicaId id = 0; id < 4; ++id) timeouts += exp.replica(id).stats().timeouts_sent;
  EXPECT_GT(timeouts, 0u);
}

TEST(DiemBft, EquivocatingLeaderCannotBreakSafety) {
  auto cfg = diem_config(4);
  cfg.faults[0] = core::FaultKind::kEquivocate;
  Experiment exp(cfg);
  exp.start();
  exp.run_until_commits(20, 300'000'000);
  EXPECT_TRUE(exp.check_safety().ok);
  // Honest replicas still make progress in the other leaders' rounds.
  EXPECT_GT(exp.min_honest_commits(), 0u);
}

TEST(DiemBft, VoteWithholderOnlySlowsProgress) {
  auto cfg = diem_config(4);
  cfg.faults[2] = core::FaultKind::kWithholdVotes;
  Experiment exp(cfg);
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(20, 300'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
}

TEST(DiemBft, TimeoutSpammerIsHarmless) {
  auto cfg = diem_config(4);
  cfg.faults[3] = core::FaultKind::kTimeoutSpam;
  Experiment exp(cfg);
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(20, 300'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
}

TEST(DiemBft, RecoversAfterGst) {
  auto cfg = diem_config(4);
  cfg.scenario = NetScenario::kPartialSynchrony;
  cfg.gst = 5'000'000;
  Experiment exp(cfg);
  exp.start();
  // Almost nothing before GST; plenty after.
  ASSERT_TRUE(exp.run_until_commits(20, 400'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
}

TEST(DiemBft, NoLivenessUnderLeaderAttack) {
  // The paper's Table 1 row: "not live if async". Rounds keep churning via
  // TCs but nothing commits.
  auto cfg = diem_config(4);
  cfg.scenario = NetScenario::kLeaderAttack;
  Experiment exp(cfg);
  exp.start();
  exp.run_for(300'000'000);
  EXPECT_EQ(exp.min_honest_commits(), 0u);
  // Rounds did advance (the pacemaker is alive, consensus is not).
  EXPECT_GT(exp.replica(0).current_round(), 5u);
  EXPECT_TRUE(exp.check_safety().ok);
}

TEST(DiemBft, LinearMessageCostPerDecisionUnderSynchrony) {
  // Theorem 9 shape check at small scale: messages per decision grow
  // linearly, so cost(n=7)/cost(n=4) should be < quadratic growth ratio.
  double per_decision[2] = {0, 0};
  const std::uint32_t ns[2] = {4, 7};
  for (int i = 0; i < 2; ++i) {
    Experiment exp(diem_config(ns[i]));
    exp.start();
    EXPECT_TRUE(exp.run_until_commits(50, 600'000'000));
    per_decision[i] =
        static_cast<double>(exp.network().stats().messages) / exp.min_honest_commits();
  }
  const double growth = per_decision[1] / per_decision[0];
  const double quadratic = (7.0 * 7.0) / (4.0 * 4.0);  // ≈ 3.06
  EXPECT_LT(growth, quadratic * 0.8);
}

TEST(DiemBft, DeterministicForFixedSeed) {
  auto run = [](std::uint64_t seed) {
    Experiment exp(diem_config(4, seed));
    exp.start();
    exp.run_until_commits(20, 120'000'000);
    std::vector<smr::BlockId> ids;
    for (const auto& rec : exp.replica(1).ledger().records()) ids.push_back(rec.id);
    return ids;
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));
}

}  // namespace
}  // namespace repro::harness
