// Direct unit tests for the core replica machinery — the commit-rule
// scanner, the two lock rules, endorsement-aware ranking, vote pooling
// and the leader schedule — exercised through a test subclass instead of
// full protocol runs (those live in test_fallback / test_properties).
#include <gtest/gtest.h>

#include "core/replica_base.h"
#include "net/network.h"
#include "sim/simulation.h"

namespace repro::core {
namespace {

smr::Certificate make_cert(const crypto::CryptoSystem& sys, smr::CertKind kind,
                           const smr::BlockId& id, Round r, View v, FallbackHeight h,
                           ReplicaId proposer) {
  std::vector<crypto::PartialSig> shares;
  const Bytes msg = smr::cert_signing_message(kind, id, r, v, h, proposer);
  for (ReplicaId i = 0; i < sys.params.quorum(); ++i) {
    shares.push_back(sys.quorum_sigs.sign_share(i, msg));
  }
  auto c = smr::combine_certificate(sys, kind, id, r, v, h, proposer, shares);
  EXPECT_TRUE(c.has_value());
  return *c;
}

smr::CoinQC make_coin(const crypto::CryptoSystem& sys, View v) {
  std::vector<crypto::PartialSig> shares;
  for (ReplicaId i = 0; i < sys.params.coin_quorum(); ++i) {
    shares.push_back(sys.coin.coin_share(i, v));
  }
  auto qc = smr::combine_coin_qc(sys, v, shares);
  EXPECT_TRUE(qc.has_value());
  return *qc;
}

/// Minimal concrete replica exposing the protected machinery.
class TestReplica final : public ReplicaBase {
 public:
  explicit TestReplica(const ReplicaContext& ctx, std::uint32_t commit_len = 3)
      : ReplicaBase(ctx), commit_len_(commit_len) {}

  void start() override {}
  bool in_fallback() const override { return false; }

  using ReplicaBase::counts_for_commit;
  using ReplicaBase::ensure_block;
  using ReplicaBase::multicast;
  using ReplicaBase::install_coin;
  using ReplicaBase::is_endorsed;
  using ReplicaBase::lock_direct_rank;
  using ReplicaBase::lock_parent_rank;
  using ReplicaBase::note_certificate;
  using ReplicaBase::rank_of;
  using ReplicaBase::store_block;
  using ReplicaBase::update_qc_high;

 protected:
  std::uint32_t commit_len() const override { return commit_len_; }
  void handle_message(ReplicaId, smr::Message&&) override {}

 private:
  std::uint32_t commit_len_;
};

class CoreUnits : public ::testing::Test {
 protected:
  CoreUnits() {
    crypto_ = crypto::CryptoSystem::deal(QuorumParams::for_n(4), 5);
    net_ = std::make_unique<net::Network>(sim_, 4, std::make_unique<net::FixedDelayModel>(10),
                                          Rng(1));
    ReplicaContext ctx;
    ctx.sim = &sim_;
    ctx.net = net_.get();
    ctx.crypto = crypto_;
    ctx.id = 0;
    ctx.seed = 9;
    replica_ = std::make_unique<TestReplica>(ctx);
  }

  /// Build & store a chain of `len` certified regular blocks with
  /// consecutive rounds in view `v`; returns the certificates.
  std::vector<smr::Certificate> build_chain(std::uint32_t len, View v) {
    std::vector<smr::Certificate> certs;
    smr::Certificate parent = smr::genesis_certificate();
    for (std::uint32_t i = 0; i < len; ++i) {
      smr::Block b = smr::Block::make(parent, parent.round + 1, v, 0, 0,
                                      Bytes{std::uint8_t(i)});
      replica_->store_block(b, 0);
      parent = make_cert(*crypto_, smr::CertKind::kQuorum, b.id, b.round, v, 0, 0);
      certs.push_back(parent);
    }
    return certs;
  }

  sim::Simulation sim_;
  std::shared_ptr<const crypto::CryptoSystem> crypto_;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<TestReplica> replica_;
};

// ---- commit scanner ---------------------------------------------------------

TEST_F(CoreUnits, ThreeChainCommitsOldestBlock) {
  auto certs = build_chain(3, 0);
  EXPECT_EQ(replica_->ledger().size(), 0u);
  for (const auto& c : certs) replica_->note_certificate(c, 0);
  // 3 adjacent certified blocks, consecutive rounds -> commit block 1.
  ASSERT_EQ(replica_->ledger().size(), 1u);
  EXPECT_EQ(replica_->ledger().records()[0].round, 1u);
}

TEST_F(CoreUnits, TwoAdjacentCertifiedBlocksDoNotCommitUnderThreeChain) {
  auto certs = build_chain(2, 0);
  for (const auto& c : certs) replica_->note_certificate(c, 0);
  EXPECT_EQ(replica_->ledger().size(), 0u);
}

TEST_F(CoreUnits, RoundGapBreaksTheChain) {
  // b1 certified, then a block at round 3 extending it (gap at round 2):
  // DiemBFT permits the gap, but the commit rule must not fire.
  auto certs = build_chain(1, 0);
  const smr::Certificate& qc1 = certs[0];
  smr::Block b3 = smr::Block::make(qc1, 3, 0, 0, 0, Bytes{3});
  replica_->store_block(b3, 0);
  auto qc3 = make_cert(*crypto_, smr::CertKind::kQuorum, b3.id, 3, 0, 0, 0);
  smr::Block b4 = smr::Block::make(qc3, 4, 0, 0, 0, Bytes{4});
  replica_->store_block(b4, 0);
  auto qc4 = make_cert(*crypto_, smr::CertKind::kQuorum, b4.id, 4, 0, 0, 0);

  replica_->note_certificate(qc1, 0);
  replica_->note_certificate(qc3, 0);
  replica_->note_certificate(qc4, 0);
  EXPECT_EQ(replica_->ledger().size(), 0u);  // rounds 1,3,4 never commit
}

TEST_F(CoreUnits, CommitIncludesAllAncestors) {
  auto certs = build_chain(5, 0);
  for (const auto& c : certs) replica_->note_certificate(c, 0);
  // Chain of 5: the 3-chain tip at rounds 3,4,5 commits rounds 1..3.
  ASSERT_EQ(replica_->ledger().size(), 3u);
  EXPECT_EQ(replica_->ledger().records()[2].round, 3u);
}

TEST_F(CoreUnits, TwoChainModeCommitsWithTwoBlocks) {
  ReplicaContext ctx;
  ctx.sim = &sim_;
  ctx.net = net_.get();
  ctx.crypto = crypto_;
  ctx.id = 0;
  ctx.seed = 10;
  TestReplica two(ctx, /*commit_len=*/2);
  smr::Certificate parent = smr::genesis_certificate();
  std::vector<smr::Certificate> certs;
  for (int i = 0; i < 2; ++i) {
    smr::Block b = smr::Block::make(parent, parent.round + 1, 0, 0, 0, Bytes{std::uint8_t(i)});
    two.store_block(b, 0);
    parent = make_cert(*crypto_, smr::CertKind::kQuorum, b.id, b.round, 0, 0, 0);
    certs.push_back(parent);
  }
  for (const auto& c : certs) two.note_certificate(c, 0);
  ASSERT_EQ(two.ledger().size(), 1u);
}

TEST_F(CoreUnits, MixedViewChainDoesNotCommit) {
  // Three adjacent certified blocks but the middle one is from a later
  // view: the same-view requirement must block the commit.
  smr::Certificate parent = smr::genesis_certificate();
  View views[3] = {0, 1, 1};
  std::vector<smr::Certificate> certs;
  for (int i = 0; i < 3; ++i) {
    smr::Block b =
        smr::Block::make(parent, parent.round + 1, views[i], 0, 0, Bytes{std::uint8_t(i)});
    replica_->store_block(b, 0);
    parent = make_cert(*crypto_, smr::CertKind::kQuorum, b.id, b.round, views[i], 0, 0);
    certs.push_back(parent);
  }
  for (const auto& c : certs) replica_->note_certificate(c, 0);
  EXPECT_EQ(replica_->ledger().size(), 0u);
}

TEST_F(CoreUnits, FallbackCertsOnlyCommitWhenEndorsed) {
  // An f-chain of 3: without the coin nothing commits; after installing
  // the coin that elects the chain owner, the scan fires.
  const smr::CoinQC coin = make_coin(*crypto_, 0);
  const ReplicaId leader = coin.leader(*crypto_);

  smr::Certificate parent = smr::genesis_certificate();
  std::vector<smr::Certificate> fcerts;
  for (FallbackHeight h = 1; h <= 3; ++h) {
    smr::Block b =
        smr::Block::make(parent, parent.round + 1, 0, h, leader, Bytes{std::uint8_t(h)});
    replica_->store_block(b, 0);
    parent = make_cert(*crypto_, smr::CertKind::kFallback, b.id, b.round, 0, h, leader);
    fcerts.push_back(parent);
  }
  for (const auto& c : fcerts) replica_->note_certificate(c, 0);
  EXPECT_EQ(replica_->ledger().size(), 0u);  // not endorsed yet

  EXPECT_TRUE(replica_->install_coin(coin));  // rescans -> commit fires
  ASSERT_EQ(replica_->ledger().size(), 1u);
  EXPECT_EQ(replica_->ledger().records()[0].height, 1u);
}

TEST_F(CoreUnits, MissingBlockDefersCommitAndFetches) {
  // Build the chain but withhold b2's body from the replica: the scan
  // must defer and issue a fetch; supplying the body completes it.
  smr::Certificate parent = smr::genesis_certificate();
  std::vector<smr::Block> blocks;
  std::vector<smr::Certificate> certs;
  for (int i = 0; i < 3; ++i) {
    smr::Block b = smr::Block::make(parent, parent.round + 1, 0, 0, 0, Bytes{std::uint8_t(i)});
    blocks.push_back(b);
    parent = make_cert(*crypto_, smr::CertKind::kQuorum, b.id, b.round, 0, 0, 0);
    certs.push_back(parent);
  }
  replica_->store_block(blocks[0], 0);
  replica_->store_block(blocks[2], 0);  // b2 (index 1) missing
  for (const auto& c : certs) replica_->note_certificate(c, 1);
  EXPECT_EQ(replica_->ledger().size(), 0u);
  EXPECT_GT(replica_->stats().blocks_fetched, 0u);

  replica_->store_block(blocks[1], 1);  // body arrives (e.g. via fetch)
  ASSERT_EQ(replica_->ledger().size(), 1u);
}

// ---- endorsement / ranking -----------------------------------------------------

TEST_F(CoreUnits, EndorsementRequiresMatchingCoin) {
  const smr::CoinQC coin = make_coin(*crypto_, 2);
  const ReplicaId leader = coin.leader(*crypto_);
  const ReplicaId not_leader = (leader + 1) % 4;

  smr::Block b = smr::Block::make(smr::genesis_certificate(), 1, 2, 1, leader, Bytes{});
  auto fqc = make_cert(*crypto_, smr::CertKind::kFallback, b.id, 1, 2, 1, leader);
  smr::Block b2 = smr::Block::make(smr::genesis_certificate(), 1, 2, 1, not_leader, Bytes{});
  auto other = make_cert(*crypto_, smr::CertKind::kFallback, b2.id, 1, 2, 1, not_leader);

  EXPECT_FALSE(replica_->is_endorsed(fqc));  // coin unknown
  replica_->install_coin(coin);
  EXPECT_TRUE(replica_->is_endorsed(fqc));
  EXPECT_FALSE(replica_->is_endorsed(other));  // wrong proposer
  EXPECT_TRUE(replica_->counts_for_commit(fqc));
  EXPECT_FALSE(replica_->counts_for_commit(other));
}

TEST_F(CoreUnits, EndorsedFqcOutranksRegularQcOfSameView) {
  const smr::CoinQC coin = make_coin(*crypto_, 1);
  const ReplicaId leader = coin.leader(*crypto_);
  replica_->install_coin(coin);

  smr::Block rb = smr::Block::make(smr::genesis_certificate(), 9, 1, 0, 0, Bytes{});
  auto qc = make_cert(*crypto_, smr::CertKind::kQuorum, rb.id, 9, 1, 0, 0);
  smr::Block fb = smr::Block::make(smr::genesis_certificate(), 1, 1, 1, leader, Bytes{});
  auto fqc = make_cert(*crypto_, smr::CertKind::kFallback, fb.id, 1, 1, 1, leader);

  // Endorsed, round 1 beats plain round 9 in the same view (paper §3).
  EXPECT_GT(replica_->rank_of(fqc), replica_->rank_of(qc));

  replica_->update_qc_high(qc);
  EXPECT_EQ(replica_->qc_high(), qc);
  replica_->update_qc_high(fqc);
  EXPECT_EQ(replica_->qc_high(), fqc);
  replica_->update_qc_high(qc);  // lower rank: no change
  EXPECT_EQ(replica_->qc_high(), fqc);
}

// ---- lock rules -----------------------------------------------------------------

TEST_F(CoreUnits, ParentLockUsesGrandparentRank) {
  auto certs = build_chain(2, 0);
  replica_->lock_parent_rank(certs[1], 0);  // lock on qc for round-2 block
  // 2-chain lock: rank_lock = rank of its parent (round 1).
  EXPECT_EQ(replica_->rank_lock(), (smr::Rank{0, false, 1}));
}

TEST_F(CoreUnits, DirectLockUsesOwnRank) {
  auto certs = build_chain(2, 0);
  replica_->lock_direct_rank(certs[1]);
  EXPECT_EQ(replica_->rank_lock(), (smr::Rank{0, false, 2}));
}

TEST_F(CoreUnits, LocksAreMonotone) {
  auto certs = build_chain(3, 0);
  replica_->lock_direct_rank(certs[2]);
  replica_->lock_direct_rank(certs[0]);  // lower: must not regress
  EXPECT_EQ(replica_->rank_lock(), (smr::Rank{0, false, 3}));
}

// ---- multicast data path ----------------------------------------------------

TEST_F(CoreUnits, MulticastSelfDeliveryKeepsExactAccounting) {
  // Route the replica's own deliveries through the real network boundary
  // so the self-send takes the full encode -> network -> decode round
  // trip rather than a shortcut inside ReplicaBase.
  net_->register_handler(0, [this](ReplicaId from, const Bytes& payload) {
    replica_->on_message(from, payload);
  });
  smr::Message msg = smr::BlockRequestMsg{smr::BlockId{}, 2};
  const std::uint64_t wire = smr::encoded_size(msg);
  replica_->multicast(std::move(msg));
  sim_.run();

  // Self-delivery is tallied separately and never inflates network
  // traffic: exactly n-1 wire messages, one self message, byte-for-byte.
  const net::NetStats& net = net_->stats();
  EXPECT_EQ(net.self_messages, 1u);
  EXPECT_EQ(net.self_bytes, wire);
  EXPECT_EQ(net.messages, 3u);
  EXPECT_EQ(net.bytes, 3 * wire);
  EXPECT_EQ(net.multicasts, 1u);
  EXPECT_EQ(net.payload_copies_avoided, 3u);

  // The sender serialized once and its own delivery hit the decode cache
  // it pre-populated — zero parses anywhere on this multicast.
  EXPECT_EQ(replica_->stats().multicast_encodes, 1u);
  EXPECT_EQ(replica_->stats().decode_hits, 1u);
  EXPECT_EQ(replica_->stats().decode_misses, 0u);
  EXPECT_EQ(replica_->decode_cache().stats().insertions, 1u);
}

// ---- SigPool / schedule -----------------------------------------------------------

TEST(SigPoolTest, DeduplicatesSigners) {
  SigPool<int> pool;
  EXPECT_EQ(pool.add(7, crypto::PartialSig{0, 1}), 1u);
  EXPECT_EQ(pool.add(7, crypto::PartialSig{0, 1}), 1u);  // same signer
  EXPECT_EQ(pool.add(7, crypto::PartialSig{1, 2}), 2u);
  EXPECT_EQ(pool.count(7), 2u);
  EXPECT_EQ(pool.count(8), 0u);
  EXPECT_EQ(pool.shares(7).size(), 2u);
}

TEST(SigPoolTest, KeysAreIndependent) {
  SigPool<int> pool;
  pool.add(1, crypto::PartialSig{0, 1});
  pool.add(2, crypto::PartialSig{1, 1});
  EXPECT_EQ(pool.count(1), 1u);
  EXPECT_EQ(pool.count(2), 1u);
  pool.clear();
  EXPECT_EQ(pool.count(1), 0u);
}

TEST(LeaderSchedule, RotatesEveryKRounds) {
  // Paper §3.1: L_{4k+1}..L_{4k+4} are the same replica.
  for (Round r = 1; r <= 4; ++r) EXPECT_EQ(round_leader(r, 4, 4), 0u);
  for (Round r = 5; r <= 8; ++r) EXPECT_EQ(round_leader(r, 4, 4), 1u);
  EXPECT_EQ(round_leader(17, 4, 4), 0u);  // wraps around n
}

TEST(LeaderSchedule, RotationOfOneChangesEveryRound) {
  EXPECT_EQ(round_leader(1, 4, 1), 0u);
  EXPECT_EQ(round_leader(2, 4, 1), 1u);
  EXPECT_EQ(round_leader(5, 4, 1), 0u);
}

}  // namespace
}  // namespace repro::core
