// Unit tests for the SMR data model: ranks, blocks, certificates, wire
// messages, block store, ledger and mempool.
#include <gtest/gtest.h>

#include "smr/block.h"
#include "smr/block_store.h"
#include "smr/certificates.h"
#include "smr/ledger.h"
#include "smr/mempool.h"
#include "smr/messages.h"
#include "smr/rank.h"

namespace repro::smr {
namespace {

std::shared_ptr<const crypto::CryptoSystem> test_crypto(std::uint32_t n = 4) {
  return crypto::CryptoSystem::deal(QuorumParams::for_n(n), 4242);
}

Certificate make_qc(const crypto::CryptoSystem& sys, const BlockId& id, Round r, View v) {
  std::vector<crypto::PartialSig> shares;
  const Bytes msg = cert_signing_message(CertKind::kQuorum, id, r, v, 0, 0);
  for (ReplicaId i = 0; i < sys.params.quorum(); ++i) {
    shares.push_back(sys.quorum_sigs.sign_share(i, msg));
  }
  auto qc = combine_certificate(sys, CertKind::kQuorum, id, r, v, 0, 0, shares);
  EXPECT_TRUE(qc.has_value());
  return *qc;
}

Certificate make_fqc(const crypto::CryptoSystem& sys, const BlockId& id, Round r, View v,
                     FallbackHeight h, ReplicaId proposer) {
  std::vector<crypto::PartialSig> shares;
  const Bytes msg = cert_signing_message(CertKind::kFallback, id, r, v, h, proposer);
  for (ReplicaId i = 0; i < sys.params.quorum(); ++i) {
    shares.push_back(sys.quorum_sigs.sign_share(i, msg));
  }
  auto qc = combine_certificate(sys, CertKind::kFallback, id, r, v, h, proposer, shares);
  EXPECT_TRUE(qc.has_value());
  return *qc;
}

// ---- Rank -------------------------------------------------------------------

TEST(Rank, OrderedByViewFirst) {
  EXPECT_LT((Rank{0, true, 100}), (Rank{1, false, 1}));
}

TEST(Rank, EndorsedBeatsPlainInSameView) {
  // Paper §3: an endorsed f-QC ranks higher than any QC of the same view.
  EXPECT_LT((Rank{3, false, 100}), (Rank{3, true, 1}));
}

TEST(Rank, RoundBreaksTiesLast) {
  EXPECT_LT((Rank{3, false, 5}), (Rank{3, false, 6}));
  EXPECT_EQ((Rank{3, false, 5}), (Rank{3, false, 5}));
}

TEST(Rank, MaxPicksHigher) {
  const Rank a{1, false, 9};
  const Rank b{2, false, 1};
  EXPECT_EQ(max(a, b), b);
  EXPECT_EQ(max(b, a), b);
}

TEST(Rank, DiemDegenerateCaseRanksByRound) {
  // View fixed at 0, no endorsements: rank order == round order.
  EXPECT_LT((Rank{0, false, 3}), (Rank{0, false, 4}));
}

// ---- Block ------------------------------------------------------------------

TEST(Block, IdBindsAllFields) {
  const Certificate g = genesis_certificate();
  const Block base = Block::make(g, 1, 0, 0, 2, Bytes{1, 2});
  EXPECT_TRUE(base.id_consistent());

  Block tampered = base;
  tampered.round = 2;
  EXPECT_FALSE(tampered.id_consistent());
  tampered = base;
  tampered.payload = Bytes{1, 3};
  EXPECT_FALSE(tampered.id_consistent());
  tampered = base;
  tampered.proposer = 3;
  EXPECT_FALSE(tampered.id_consistent());
  tampered = base;
  tampered.height = 1;
  EXPECT_FALSE(tampered.id_consistent());
}

TEST(Block, GenesisIsSelfConsistent) {
  EXPECT_TRUE(Block::genesis().id_consistent());
  EXPECT_TRUE(Block::genesis().is_genesis());
  EXPECT_EQ(Block::genesis().round, 0u);
}

TEST(Block, EncodeDecodeRoundTrip) {
  const Block b = Block::make(genesis_certificate(), 5, 2, 3, 1, Bytes{9, 9, 9});
  Encoder enc;
  b.encode(enc);
  Decoder dec(enc.result());
  auto decoded = Block::decode(dec);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, b);
  EXPECT_TRUE(dec.done());
}

TEST(Block, DistinctPayloadsDistinctIds) {
  const Block a = Block::make(genesis_certificate(), 1, 0, 0, 0, Bytes{1});
  const Block b = Block::make(genesis_certificate(), 1, 0, 0, 0, Bytes{2});
  EXPECT_NE(a.id, b.id);
}

// ---- Certificates --------------------------------------------------------------

TEST(Certificates, GenesisVerifiesByFiat) {
  auto sys = test_crypto();
  EXPECT_TRUE(verify_certificate(*sys, genesis_certificate()));
}

TEST(Certificates, ForgedGenesisRejected) {
  auto sys = test_crypto();
  Certificate fake = genesis_certificate();
  fake.round = 3;
  EXPECT_FALSE(verify_certificate(*sys, fake));
}

TEST(Certificates, QuorumCertRoundTripsAndVerifies) {
  auto sys = test_crypto();
  const Block b = Block::make(genesis_certificate(), 1, 0, 0, 0, Bytes{});
  const Certificate qc = make_qc(*sys, b.id, 1, 0);
  EXPECT_TRUE(verify_certificate(*sys, qc));

  Encoder enc;
  qc.encode(enc);
  Decoder dec(enc.result());
  auto decoded = Certificate::decode(dec);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, qc);
}

TEST(Certificates, TamperedQcRejected) {
  auto sys = test_crypto();
  const Block b = Block::make(genesis_certificate(), 1, 0, 0, 0, Bytes{});
  Certificate qc = make_qc(*sys, b.id, 1, 0);
  qc.round = 2;
  EXPECT_FALSE(verify_certificate(*sys, qc));
}

TEST(Certificates, QuorumCertWithHeightRejected) {
  auto sys = test_crypto();
  const Block b = Block::make(genesis_certificate(), 1, 0, 0, 0, Bytes{});
  Certificate qc = make_qc(*sys, b.id, 1, 0);
  qc.height = 2;  // regular QCs must have height 0
  EXPECT_FALSE(verify_certificate(*sys, qc));
}

TEST(Certificates, FallbackCertVerifies) {
  auto sys = test_crypto();
  const Block b = Block::make(genesis_certificate(), 1, 1, 1, 2, Bytes{});
  const Certificate fqc = make_fqc(*sys, b.id, 1, 1, 1, 2);
  EXPECT_TRUE(verify_certificate(*sys, fqc));
}

TEST(Certificates, FallbackCertHeightBoundsEnforced) {
  auto sys = test_crypto();
  const Block b = Block::make(genesis_certificate(), 1, 1, 1, 2, Bytes{});
  Certificate fqc = make_fqc(*sys, b.id, 1, 1, 1, 2);
  fqc.height = 0;
  EXPECT_FALSE(verify_certificate(*sys, fqc));
  fqc.height = 4;
  EXPECT_FALSE(verify_certificate(*sys, fqc));
}

TEST(Certificates, SigningMessageSeparatesQcFromFqc) {
  // An f-QC signature must not validate as a regular QC of the same block.
  const BlockId id = genesis_id();
  EXPECT_NE(cert_signing_message(CertKind::kQuorum, id, 1, 0, 0, 0),
            cert_signing_message(CertKind::kFallback, id, 1, 0, 1, 0));
}

TEST(Certificates, CombineRequiresQuorum) {
  auto sys = test_crypto();
  const Block b = Block::make(genesis_certificate(), 1, 0, 0, 0, Bytes{});
  const Bytes msg = cert_signing_message(CertKind::kQuorum, b.id, 1, 0, 0, 0);
  std::vector<crypto::PartialSig> shares = {sys->quorum_sigs.sign_share(0, msg),
                                            sys->quorum_sigs.sign_share(1, msg)};
  EXPECT_FALSE(
      combine_certificate(*sys, CertKind::kQuorum, b.id, 1, 0, 0, 0, shares).has_value());
}

TEST(Certificates, TcAndFtcVerify) {
  auto sys = test_crypto();
  std::vector<crypto::PartialSig> tc_shares, ftc_shares;
  for (ReplicaId i = 0; i < 3; ++i) {
    tc_shares.push_back(sys->quorum_sigs.sign_share(i, tc_signing_message(7)));
    ftc_shares.push_back(sys->quorum_sigs.sign_share(i, ftc_signing_message(2)));
  }
  auto tc = combine_tc(*sys, 7, tc_shares);
  ASSERT_TRUE(tc.has_value());
  EXPECT_TRUE(verify_tc(*sys, *tc));
  EXPECT_FALSE(verify_tc(*sys, TimeoutCert{8, tc->sig}));

  auto ftc = combine_ftc(*sys, 2, ftc_shares);
  ASSERT_TRUE(ftc.has_value());
  EXPECT_TRUE(verify_ftc(*sys, *ftc));
  EXPECT_FALSE(verify_ftc(*sys, FallbackTC{3, ftc->sig}));
}

TEST(Certificates, TcShareIsNotFtcShare) {
  // Round-TC and view-f-TC domains must not collide even for equal numbers.
  EXPECT_NE(tc_signing_message(5), ftc_signing_message(5));
}

TEST(Certificates, CoinQcElectsConsistently) {
  auto sys = test_crypto();
  std::vector<crypto::PartialSig> shares = {sys->coin.coin_share(0, 3),
                                            sys->coin.coin_share(2, 3)};
  auto qc = combine_coin_qc(*sys, 3, shares);
  ASSERT_TRUE(qc.has_value());
  EXPECT_TRUE(verify_coin_qc(*sys, *qc));
  EXPECT_LT(qc->leader(*sys), 4u);
  EXPECT_FALSE(verify_coin_qc(*sys, CoinQC{4, qc->sig}));
}

// ---- Messages -------------------------------------------------------------------

TEST(Messages, AllTypesRoundTrip) {
  auto sys = test_crypto();
  const Block blk = Block::make(genesis_certificate(), 1, 0, 0, 0, Bytes{1, 2, 3});
  const Certificate qc = make_qc(*sys, blk.id, 1, 0);

  std::vector<Message> cases;
  {
    ProposalMsg m;
    m.block = blk;
    m.tc = TimeoutCert{3, crypto::ThresholdSig{99}};
    m.coins = {CoinQC{1, crypto::ThresholdSig{5}}};
    cases.push_back(m);
  }
  cases.push_back(VoteMsg{blk.id, 1, 0, crypto::PartialSig{2, 77}});
  {
    DiemTimeoutMsg m;
    m.round = 4;
    m.round_share = crypto::PartialSig{1, 55};
    m.qc_high = qc;
    cases.push_back(m);
  }
  cases.push_back(DiemTcMsg{TimeoutCert{9, crypto::ThresholdSig{1}}});
  {
    FbTimeoutMsg m;
    m.view = 2;
    m.view_share = crypto::PartialSig{0, 11};
    m.qc_high = qc;
    cases.push_back(m);
  }
  {
    FbProposalMsg m;
    m.block = blk;
    m.ftc = FallbackTC{2, crypto::ThresholdSig{8}};
    cases.push_back(m);
  }
  cases.push_back(FbVoteMsg{blk.id, 2, 1, 1, 3, crypto::PartialSig{1, 6}});
  cases.push_back(FbQcMsg{qc, {}});
  cases.push_back(CoinShareMsg{7, crypto::PartialSig{3, 2}});
  cases.push_back(CoinQcMsg{CoinQC{7, crypto::ThresholdSig{3}}});
  cases.push_back(BlockRequestMsg{blk.id, 64});
  cases.push_back(BlockResponseMsg{{blk, Block::genesis()}});

  for (auto& msg : cases) {
    sign_message(*sys, 0, msg);
    const Bytes wire = encode_message(msg);
    ASSERT_FALSE(wire.empty());
    EXPECT_EQ(wire[0], static_cast<std::uint8_t>(message_type(msg)));
    // The size hint encode_message reserves from must be exact — a drift
    // here means mid-encode reallocations (or an over-reservation) snuck
    // back in with a wire-format change.
    EXPECT_EQ(encoded_size(msg), wire.size()) << "type " << int(wire[0]);
    auto decoded = decode_message(wire);
    ASSERT_TRUE(decoded.has_value()) << "type " << int(wire[0]);
    EXPECT_EQ(encode_message(*decoded), wire);
  }
}

TEST(Messages, SignatureVerificationBindsSender) {
  auto sys = test_crypto();
  Message msg = ProposalMsg{Block::make(genesis_certificate(), 1, 0, 0, 0, Bytes{}),
                            std::nullopt, {}, {}};
  sign_message(*sys, 1, msg);
  EXPECT_TRUE(verify_message_signature(*sys, 1, msg));
  EXPECT_FALSE(verify_message_signature(*sys, 2, msg));
}

TEST(Messages, UnsignedTypesAlwaysVerify) {
  auto sys = test_crypto();
  Message msg = VoteMsg{genesis_id(), 1, 0, crypto::PartialSig{0, 1}};
  EXPECT_TRUE(verify_message_signature(*sys, 3, msg));
}

TEST(Messages, MalformedInputRejected) {
  EXPECT_FALSE(decode_message(Bytes{}).has_value());
  EXPECT_FALSE(decode_message(Bytes{0}).has_value());     // invalid tag
  EXPECT_FALSE(decode_message(Bytes{200}).has_value());   // unknown tag
  EXPECT_FALSE(decode_message(Bytes{1, 2, 3}).has_value());  // truncated body
}

TEST(Messages, TrailingGarbageRejected) {
  Message msg = CoinShareMsg{7, crypto::PartialSig{3, 2}};
  Bytes wire = encode_message(msg);
  wire.push_back(0xff);
  EXPECT_FALSE(decode_message(wire).has_value());
}

TEST(Messages, TruncationAtEveryByteNeverCrashes) {
  auto sys = test_crypto();
  Message msg = FbProposalMsg{Block::make(genesis_certificate(), 1, 0, 1, 0, Bytes{1}),
                              FallbackTC{0, crypto::ThresholdSig{1}},
                              {CoinQC{0, crypto::ThresholdSig{2}}},
                              {}};
  sign_message(*sys, 0, msg);
  const Bytes wire = encode_message(msg);
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(decode_message(BytesView(wire.data(), len)).has_value()) << len;
  }
}

// ---- BlockStore ------------------------------------------------------------------

TEST(BlockStore, GenesisPreInstalled) {
  BlockStore store;
  EXPECT_TRUE(store.contains(genesis_id()));
  EXPECT_TRUE(store.is_certified(genesis_id()));
}

TEST(BlockStore, InsertAndGet) {
  BlockStore store;
  const Block b = Block::make(genesis_certificate(), 1, 0, 0, 0, Bytes{1});
  EXPECT_TRUE(store.insert(b));
  EXPECT_FALSE(store.insert(b));  // dedup
  ASSERT_NE(store.get(b.id), nullptr);
  EXPECT_EQ(*store.get(b.id), b);
}

TEST(BlockStore, WalkAncestorsToGenesis) {
  auto sys = test_crypto();
  BlockStore store;
  const Block b1 = Block::make(genesis_certificate(), 1, 0, 0, 0, Bytes{1});
  const Certificate qc1 = make_qc(*sys, b1.id, 1, 0);
  const Block b2 = Block::make(qc1, 2, 0, 0, 0, Bytes{2});
  store.insert(b1);
  store.insert(b2);
  const auto walk = store.walk_ancestors(b2.id);
  EXPECT_FALSE(walk.missing.has_value());
  ASSERT_EQ(walk.blocks.size(), 3u);
  EXPECT_EQ(walk.blocks[0]->id, b2.id);
  EXPECT_EQ(walk.blocks[2]->id, genesis_id());
}

TEST(BlockStore, WalkReportsMissingAncestor) {
  auto sys = test_crypto();
  BlockStore store;
  const Block b1 = Block::make(genesis_certificate(), 1, 0, 0, 0, Bytes{1});
  const Certificate qc1 = make_qc(*sys, b1.id, 1, 0);
  const Block b2 = Block::make(qc1, 2, 0, 0, 0, Bytes{2});
  store.insert(b2);  // b1 body absent
  const auto walk = store.walk_ancestors(b2.id);
  ASSERT_TRUE(walk.missing.has_value());
  EXPECT_EQ(*walk.missing, b1.id);
  EXPECT_EQ(walk.blocks.size(), 1u);
}

TEST(BlockStore, CertificateLogKeepsFirstPerBlock) {
  auto sys = test_crypto();
  BlockStore store;
  const Block b = Block::make(genesis_certificate(), 1, 0, 0, 0, Bytes{});
  const Certificate qc = make_qc(*sys, b.id, 1, 0);
  EXPECT_TRUE(store.add_certificate(qc));
  EXPECT_FALSE(store.add_certificate(qc));
  ASSERT_NE(store.certificate_for(b.id), nullptr);
  EXPECT_EQ(store.certificate_for(b.id)->block_id, b.id);
}

// ---- Ledger ----------------------------------------------------------------------

TEST(Ledger, CommitsChainOldestFirst) {
  auto sys = test_crypto();
  BlockStore store;
  const Block b1 = Block::make(genesis_certificate(), 1, 0, 0, 0, Bytes{1});
  const Certificate qc1 = make_qc(*sys, b1.id, 1, 0);
  const Block b2 = Block::make(qc1, 2, 0, 0, 0, Bytes{2});
  store.insert(b1);
  store.insert(b2);

  Ledger ledger;
  std::vector<Round> committed_rounds;
  ledger.set_commit_callback([&](const Block& b, SimTime) {
    committed_rounds.push_back(b.round);
  });
  EXPECT_EQ(ledger.commit_chain(b2, store, 100), 2u);
  EXPECT_EQ(committed_rounds, (std::vector<Round>{1, 2}));
  EXPECT_TRUE(ledger.is_committed(b1.id));
  EXPECT_TRUE(ledger.is_committed(b2.id));
  EXPECT_EQ(ledger.records()[0].commit_time, 100u);
}

TEST(Ledger, RecommitIsNoop) {
  auto sys = test_crypto();
  BlockStore store;
  const Block b1 = Block::make(genesis_certificate(), 1, 0, 0, 0, Bytes{1});
  store.insert(b1);
  Ledger ledger;
  EXPECT_EQ(ledger.commit_chain(b1, store, 1), 1u);
  EXPECT_EQ(ledger.commit_chain(b1, store, 2), 0u);
  EXPECT_EQ(ledger.size(), 1u);
}

TEST(Ledger, CanCommitDetectsMissingAncestor) {
  auto sys = test_crypto();
  BlockStore store;
  const Block b1 = Block::make(genesis_certificate(), 1, 0, 0, 0, Bytes{1});
  const Certificate qc1 = make_qc(*sys, b1.id, 1, 0);
  const Block b2 = Block::make(qc1, 2, 0, 0, 0, Bytes{2});
  store.insert(b2);
  Ledger ledger;
  std::optional<BlockId> missing;
  EXPECT_FALSE(ledger.can_commit(b2, store, &missing));
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(*missing, b1.id);
}

TEST(Ledger, CommitExtendsFromPreviousCommit) {
  auto sys = test_crypto();
  BlockStore store;
  const Block b1 = Block::make(genesis_certificate(), 1, 0, 0, 0, Bytes{1});
  const Certificate qc1 = make_qc(*sys, b1.id, 1, 0);
  const Block b2 = Block::make(qc1, 2, 0, 0, 0, Bytes{2});
  store.insert(b1);
  store.insert(b2);
  Ledger ledger;
  ledger.commit_chain(b1, store, 1);
  EXPECT_EQ(ledger.commit_chain(b2, store, 2), 1u);
  ASSERT_EQ(ledger.records().size(), 2u);
  EXPECT_EQ(ledger.records()[1].id, b2.id);
}

// ---- Mempool ----------------------------------------------------------------------

TEST(Mempool, BatchesHaveConfiguredSize) {
  Mempool pool(3, 256, Rng(1));
  EXPECT_EQ(pool.next_batch().size(), 256u + 12u);
}

TEST(Mempool, BatchesAreDistinct) {
  Mempool pool(3, 64, Rng(1));
  EXPECT_NE(pool.next_batch(), pool.next_batch());
  EXPECT_EQ(pool.batches_produced(), 2u);
}

TEST(Mempool, DeterministicAcrossInstances) {
  Mempool a(3, 64, Rng(9)), b(3, 64, Rng(9));
  EXPECT_EQ(a.next_batch(), b.next_batch());
}

}  // namespace
}  // namespace repro::smr
