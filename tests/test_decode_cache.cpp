// Decode-once delivery cache: content-keyed hits must be
// indistinguishable from fresh decodes, mutated bytes must miss and be
// judged independently, the LRU bound must hold under floods of distinct
// payloads, and the per-sender signature memo must never leak a
// verification to a different sender.
#include <gtest/gtest.h>

#include "crypto/dealer.h"
#include "smr/decode_cache.h"

namespace repro::smr {
namespace {

std::shared_ptr<const crypto::CryptoSystem> test_crypto() {
  return crypto::CryptoSystem::deal(QuorumParams::for_n(4), 21);
}

Bytes wire_coin_share(View view, ReplicaId signer, std::uint64_t value) {
  return encode_message(Message{CoinShareMsg{view, crypto::PartialSig{signer, value}}});
}

TEST(DecodeCache, HitReturnsValueEqualToFreshDecode) {
  DecodeCache cache(16);
  const Bytes wire = wire_coin_share(7, 2, 99);
  const auto key = DecodeCache::key_of(wire);

  bool hit = true;
  auto first = cache.decode(key, wire, &hit);
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(hit);

  auto second = cache.decode(key, wire, &hit);
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(hit);
  // Message has no operator==; canonical encoding makes byte equality
  // the right notion of "same decoded value".
  EXPECT_EQ(encode_message(*second), encode_message(*first));
  EXPECT_EQ(encode_message(*second), wire);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(DecodeCache, EveryMutatedByteMissesAndIsJudgedIndependently) {
  DecodeCache cache(DecodeCache::kDefaultCapacity);
  const Bytes wire = wire_coin_share(3, 1, 42);
  bool hit = false;
  ASSERT_TRUE(cache.decode(DecodeCache::key_of(wire), wire, &hit).has_value());

  for (std::size_t i = 0; i < wire.size(); ++i) {
    Bytes mutated = wire;
    mutated[i] ^= 0x01;
    const auto key = DecodeCache::key_of(mutated);
    hit = true;
    auto msg = cache.decode(key, mutated, &hit);
    EXPECT_FALSE(hit) << "byte " << i << " flip must change the content key";
    // The mutated buffer must be decoded (or rejected) on its own merits:
    // flipping the tag or a length prefix can make it malformed, flipping
    // a value byte yields a different-but-valid message. Either way it
    // must never alias the cached original.
    if (msg) {
      EXPECT_EQ(encode_message(*msg), mutated) << "byte " << i;
      EXPECT_NE(encode_message(*msg), wire) << "byte " << i;
    }
  }
}

TEST(DecodeCache, MalformedPayloadsAreNeverCached) {
  DecodeCache cache(16);
  const Bytes garbage{200, 1, 2, 3};
  const auto key = DecodeCache::key_of(garbage);
  bool hit = false;
  EXPECT_FALSE(cache.decode(key, garbage, &hit).has_value());
  EXPECT_EQ(cache.size(), 0u);
  // The retry pays a full (failing) decode again — no negative caching.
  EXPECT_FALSE(cache.decode(key, garbage, &hit).has_value());
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(DecodeCache, BoundHoldsUnderFloodOfDistinctPayloads) {
  constexpr std::size_t kCap = 32;
  DecodeCache cache(kCap);
  bool hit = false;
  for (std::uint64_t i = 0; i < 10 * kCap; ++i) {
    const Bytes wire = wire_coin_share(i, 0, i);
    ASSERT_TRUE(cache.decode(DecodeCache::key_of(wire), wire, &hit).has_value());
    ASSERT_LE(cache.size(), kCap);
  }
  EXPECT_EQ(cache.size(), kCap);
  EXPECT_EQ(cache.stats().evictions, 10 * kCap - kCap);

  // LRU: the newest payload survives the flood, the oldest does not.
  const Bytes newest = wire_coin_share(10 * kCap - 1, 0, 10 * kCap - 1);
  cache.decode(DecodeCache::key_of(newest), newest, &hit);
  EXPECT_TRUE(hit);
  const Bytes oldest = wire_coin_share(0, 0, 0);
  cache.decode(DecodeCache::key_of(oldest), oldest, &hit);
  EXPECT_FALSE(hit);
}

TEST(DecodeCache, SenderPrepopulationServesSelfDelivery) {
  auto sys = test_crypto();
  DecodeCache cache(16);
  // A signed type: the sender encodes once and seeds the cache.
  Message msg = FbQcMsg{genesis_certificate(), {}};
  sign_message(*sys, 1, msg);
  const Bytes wire = encode_message(msg);
  const auto key = DecodeCache::key_of(wire);
  cache.insert(key, msg, /*signer=*/1);

  bool hit = false;
  auto delivered = cache.decode(key, wire, &hit);
  ASSERT_TRUE(delivered.has_value());
  EXPECT_TRUE(hit);
  EXPECT_EQ(encode_message(*delivered), wire);
  EXPECT_TRUE(cache.sender_verified(key, 1));
}

TEST(DecodeCache, SenderMemoDoesNotLeakAcrossSenders) {
  DecodeCache cache(16);
  const Bytes wire = wire_coin_share(1, 0, 5);
  const auto key = DecodeCache::key_of(wire);
  bool hit = false;
  cache.decode(key, wire, &hit);
  cache.note_sender_verified(key, 2);

  // A Byzantine replica replaying replica 2's exact bytes presents a
  // different (key, sender) pair — it must not inherit the verification.
  EXPECT_TRUE(cache.sender_verified(key, 2));
  EXPECT_FALSE(cache.sender_verified(key, 3));

  // Memos survive repeats and tolerate evicted keys.
  cache.note_sender_verified(key, 2);
  EXPECT_TRUE(cache.sender_verified(key, 2));
  const auto ghost = DecodeCache::key_of(Bytes{9, 9, 9});
  cache.note_sender_verified(ghost, 2);  // no-op, no crash
  EXPECT_FALSE(cache.sender_verified(ghost, 2));
}

}  // namespace
}  // namespace repro::smr
