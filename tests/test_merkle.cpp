// Merkle tree unit + property tests: inclusion proofs verify for every
// leaf at every batch size; tampered items, proofs and roots fail.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "crypto/merkle.h"

namespace repro::crypto {
namespace {

std::vector<Bytes> make_items(std::size_t k, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bytes> items;
  for (std::size_t i = 0; i < k; ++i) {
    Bytes b(8 + rng.uniform(32));
    for (auto& byte : b) byte = static_cast<std::uint8_t>(rng.next());
    items.push_back(std::move(b));
  }
  return items;
}

TEST(Merkle, EmptyBatchHasWellKnownRoot) {
  MerkleTree tree({});
  EXPECT_EQ(tree.root(), MerkleTree::empty_root());
  EXPECT_EQ(tree.size(), 0u);
}

TEST(Merkle, SingleLeafRootIsLeafHash) {
  const Bytes item = {1, 2, 3};
  MerkleTree tree({item});
  EXPECT_EQ(tree.root(), MerkleTree::leaf_hash(item));
  const MerkleProof proof = tree.prove(0);
  EXPECT_TRUE(proof.steps.empty());
  EXPECT_TRUE(MerkleTree::verify(tree.root(), item, proof));
}

TEST(Merkle, RootDependsOnEveryItem) {
  auto items = make_items(8, 1);
  const Digest root = MerkleTree(items).root();
  for (std::size_t i = 0; i < items.size(); ++i) {
    auto tweaked = items;
    tweaked[i][0] ^= 1;
    EXPECT_NE(MerkleTree(tweaked).root(), root) << "item " << i;
  }
}

TEST(Merkle, RootDependsOnOrder) {
  auto items = make_items(4, 2);
  auto swapped = items;
  std::swap(swapped[1], swapped[2]);
  EXPECT_NE(MerkleTree(items).root(), MerkleTree(swapped).root());
}

class MerkleSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleSizes, EveryLeafProvesAndVerifies) {
  const std::size_t k = GetParam();
  const auto items = make_items(k, 100 + k);
  MerkleTree tree(items);
  for (std::uint32_t i = 0; i < k; ++i) {
    const MerkleProof proof = tree.prove(i);
    EXPECT_TRUE(MerkleTree::verify(tree.root(), items[i], proof)) << "leaf " << i;
    // Proof depth is logarithmic.
    EXPECT_LE(proof.steps.size(), 1 + static_cast<std::size_t>(std::ceil(std::log2(k))));
  }
}

TEST_P(MerkleSizes, WrongItemFailsVerification) {
  const std::size_t k = GetParam();
  const auto items = make_items(k, 200 + k);
  MerkleTree tree(items);
  for (std::uint32_t i = 0; i < k; ++i) {
    Bytes tampered = items[i];
    tampered.back() ^= 0xff;
    EXPECT_FALSE(MerkleTree::verify(tree.root(), tampered, tree.prove(i)));
  }
}

TEST_P(MerkleSizes, TamperedProofFailsVerification) {
  const std::size_t k = GetParam();
  if (k < 2) return;  // single-leaf proofs have no steps to tamper
  const auto items = make_items(k, 300 + k);
  MerkleTree tree(items);
  for (std::uint32_t i = 0; i < k; ++i) {
    MerkleProof proof = tree.prove(i);
    ASSERT_FALSE(proof.steps.empty());
    proof.steps[0].sibling[0] ^= 1;
    EXPECT_FALSE(MerkleTree::verify(tree.root(), items[i], proof));
  }
}

TEST_P(MerkleSizes, ProofEncodingRoundTrips) {
  const std::size_t k = GetParam();
  const auto items = make_items(k, 400 + k);
  MerkleTree tree(items);
  for (std::uint32_t i = 0; i < k; ++i) {
    const MerkleProof proof = tree.prove(i);
    Encoder enc;
    proof.encode(enc);
    Decoder dec(enc.result());
    auto decoded = MerkleProof::decode(dec);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, proof);
    EXPECT_TRUE(MerkleTree::verify(tree.root(), items[i], *decoded));
  }
}

// Odd sizes exercise the promoted-node paths; powers of two the full
// binary case.
INSTANTIATE_TEST_SUITE_P(Sizes, MerkleSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 13, 16, 17, 31, 64,
                                           100));

TEST(Merkle, CrossTreeProofRejected) {
  const auto a = make_items(8, 500);
  const auto b = make_items(8, 501);
  MerkleTree ta(a), tb(b);
  EXPECT_FALSE(MerkleTree::verify(tb.root(), a[3], ta.prove(3)));
}

TEST(Merkle, LeafAndNodeDomainsSeparated) {
  // A 64-byte item equal to the concatenation of two child hashes must
  // not collide with the inner node above them.
  const auto items = make_items(2, 600);
  MerkleTree tree(items);
  Bytes concat;
  const Digest l0 = MerkleTree::leaf_hash(items[0]);
  const Digest l1 = MerkleTree::leaf_hash(items[1]);
  concat.insert(concat.end(), l0.begin(), l0.end());
  concat.insert(concat.end(), l1.begin(), l1.end());
  EXPECT_NE(MerkleTree::leaf_hash(concat), tree.root());
}

}  // namespace
}  // namespace repro::crypto
