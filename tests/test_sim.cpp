// Unit tests for the discrete-event simulation core.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.h"

namespace repro::sim {
namespace {

TEST(Simulation, ExecutesInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulation, TiesBreakByInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(7, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, ScheduleAfterUsesCurrentTime) {
  Simulation sim;
  SimTime observed = 0;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { observed = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(observed, 150u);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  const EventId id = sim.schedule_at(10, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, CancelAfterFireIsNoop) {
  Simulation sim;
  int fires = 0;
  const EventId id = sim.schedule_at(10, [&] { ++fires; });
  sim.run();
  sim.cancel(id);  // must not crash or corrupt
  sim.schedule_at(20, [&] { ++fires; });
  sim.run();
  EXPECT_EQ(fires, 2);
}

TEST(Simulation, CancelUnknownIdIsNoop) {
  Simulation sim;
  sim.cancel(9999);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation sim;
  std::vector<SimTime> fired;
  for (SimTime t : {10u, 20u, 30u, 40u}) {
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  const std::size_t count = sim.run_until(25);
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(sim.now(), 25u);  // clock advances to the deadline
  EXPECT_EQ(sim.pending(), 2u);
}

TEST(Simulation, RunUntilAdvancesClockOnEmptyQueue) {
  Simulation sim;
  sim.run_until(1000);
  EXPECT_EQ(sim.now(), 1000u);
}

TEST(Simulation, EventsCanScheduleMoreEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) sim.schedule_after(1, chain);
  };
  sim.schedule_at(0, chain);
  sim.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now(), 9u);
}

TEST(Simulation, StepExecutesExactlyOne) {
  Simulation sim;
  int fires = 0;
  sim.schedule_at(1, [&] { ++fires; });
  sim.schedule_at(2, [&] { ++fires; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fires, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fires, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, RunHonorsMaxEvents) {
  Simulation sim;
  int fires = 0;
  for (int i = 0; i < 10; ++i) sim.schedule_at(i, [&] { ++fires; });
  EXPECT_EQ(sim.run(4), 4u);
  EXPECT_EQ(fires, 4);
}

TEST(Simulation, PendingExcludesCancelled) {
  Simulation sim;
  const EventId a = sim.schedule_at(10, [] {});
  sim.schedule_at(20, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulation, SchedulingIntoThePastAborts) {
  Simulation sim;
  sim.schedule_at(100, [] {});
  sim.run();
  EXPECT_DEATH(sim.schedule_at(50, [] {}), "past");
}

TEST(Simulation, CancelledHeadDoesNotAdvanceClockInRunUntil) {
  Simulation sim;
  const EventId a = sim.schedule_at(10, [] {});
  bool fired = false;
  sim.schedule_at(30, [&] { fired = true; });
  sim.cancel(a);
  sim.run_until(20);
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.now(), 20u);
}

}  // namespace
}  // namespace repro::sim
