// Robustness fuzzing: a Byzantine sender controls every byte it sends, so
// no sequence of malformed, truncated, bit-flipped or replayed messages
// may ever crash an honest replica or break safety. These tests hammer
// the decode and handler paths with adversarial bytes.
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "smr/messages.h"

namespace repro::harness {
namespace {

/// Valid wire messages of every type, to use as mutation seeds.
std::vector<Bytes> seed_messages(const crypto::CryptoSystem& sys) {
  using namespace smr;
  const Block blk = Block::make(genesis_certificate(), 1, 0, 0, 0, Bytes{1, 2, 3});
  std::vector<Message> msgs;
  msgs.push_back(ProposalMsg{blk, std::nullopt, {}, {}});
  msgs.push_back(VoteMsg{blk.id, 1, 0, crypto::PartialSig{1, 42}});
  msgs.push_back(DiemTimeoutMsg{3, crypto::PartialSig{0, 7}, genesis_certificate(), {}});
  msgs.push_back(DiemTcMsg{TimeoutCert{3, crypto::ThresholdSig{9}}});
  msgs.push_back(FbTimeoutMsg{0, crypto::PartialSig{2, 5}, genesis_certificate(), {}, {}});
  msgs.push_back(FbProposalMsg{Block::make(genesis_certificate(), 1, 0, 1, 2, Bytes{7}),
                               FallbackTC{0, crypto::ThresholdSig{3}},
                               {},
                               {}});
  msgs.push_back(FbVoteMsg{blk.id, 1, 0, 1, 2, crypto::PartialSig{3, 1}});
  msgs.push_back(FbQcMsg{genesis_certificate(), {}});
  msgs.push_back(CoinShareMsg{0, crypto::PartialSig{1, 2}});
  msgs.push_back(CoinQcMsg{CoinQC{0, crypto::ThresholdSig{4}}});
  msgs.push_back(BlockRequestMsg{blk.id, 32});
  msgs.push_back(BlockResponseMsg{{blk}});

  std::vector<Bytes> wires;
  for (auto& m : msgs) {
    sign_message(sys, 0, m);
    wires.push_back(encode_message(m));
  }
  return wires;
}

TEST(Fuzz, DecodeNeverCrashesOnMutatedMessages) {
  auto sys = crypto::CryptoSystem::deal(QuorumParams::for_n(4), 1);
  Rng rng(0xf0220);
  for (const Bytes& seed : seed_messages(*sys)) {
    for (int trial = 0; trial < 400; ++trial) {
      Bytes mutated = seed;
      const int flips = 1 + static_cast<int>(rng.uniform(8));
      for (int f = 0; f < flips; ++f) {
        mutated[rng.uniform(mutated.size())] ^= static_cast<std::uint8_t>(1 + rng.uniform(255));
      }
      // Must not crash; result may be nullopt or a (differently) valid msg.
      auto decoded = smr::decode_message(mutated);
      if (decoded) {
        // Whatever decodes must re-encode to the same bytes (canonical).
        EXPECT_EQ(smr::encode_message(*decoded), mutated);
      }
    }
  }
}

TEST(Fuzz, DecodeNeverCrashesOnRandomBytes) {
  Rng rng(0xbeef);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes junk(rng.uniform(300));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    (void)smr::decode_message(junk);
  }
}

TEST(Fuzz, RepliсasSurviveGarbageInjection) {
  // Run a live system and inject mutated/replayed/random messages into
  // every replica from every sender id; the system must neither crash nor
  // lose safety, and must still commit.
  ExperimentConfig cfg;
  cfg.n = 4;
  cfg.protocol = Protocol::kFallback3;
  cfg.seed = 77;
  Experiment exp(cfg);
  exp.start();

  auto sys = crypto::CryptoSystem::deal(QuorumParams::for_n(4), 1);  // WRONG keys on purpose
  const auto seeds = seed_messages(*sys);
  Rng rng(0xabad1dea);

  for (int wave = 0; wave < 30; ++wave) {
    exp.sim().run_until(exp.sim().now() + 100'000);
    for (ReplicaId victim = 0; victim < 4; ++victim) {
      // (a) replay of a foreign-keyed valid message
      exp.replica(victim).on_message(static_cast<ReplicaId>(rng.uniform(4)),
                                     seeds[rng.uniform(seeds.size())]);
      // (b) mutated message
      Bytes mutated = seeds[rng.uniform(seeds.size())];
      mutated[rng.uniform(mutated.size())] ^= 0x40;
      exp.replica(victim).on_message(static_cast<ReplicaId>(rng.uniform(4)), mutated);
      // (c) pure junk
      Bytes junk(rng.uniform(100) + 1);
      for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
      exp.replica(victim).on_message(static_cast<ReplicaId>(rng.uniform(4)), junk);
    }
  }
  ASSERT_TRUE(exp.run_until_commits(20, 120'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
}

TEST(Fuzz, ReplayOfOwnValidMessagesIsHarmless) {
  // Capture real traffic from one run and replay it (out of order,
  // repeatedly) into a second run with the same keys.
  ExperimentConfig cfg;
  cfg.n = 4;
  cfg.protocol = Protocol::kFallback3;
  cfg.seed = 11;
  Experiment exp(cfg);
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(5, 60'000'000));

  // Harvest blocks from replica 0's store as replay material.
  const auto& base = dynamic_cast<const core::ReplicaBase&>(exp.replica(0));
  std::vector<Bytes> replays;
  for (const auto& rec : exp.replica(0).ledger().records()) {
    const smr::Block* b = base.store().get(rec.id);
    smr::Message m = smr::BlockResponseMsg{{*b}};
    replays.push_back(smr::encode_message(m));
  }
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    exp.replica(rng.uniform(4)).on_message(static_cast<ReplicaId>(rng.uniform(4)),
                                           replays[rng.uniform(replays.size())]);
  }
  ASSERT_TRUE(exp.run_until_commits(15, 120'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
}

}  // namespace
}  // namespace repro::harness
