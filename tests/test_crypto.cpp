// Unit tests for the crypto substrate: SHA-256 against FIPS 180-4
// vectors, field arithmetic laws, Shamir reconstruction, threshold
// signatures and the common coin.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/bytes.h"
#include "common/rng.h"
#include "crypto/dealer.h"
#include "crypto/field.h"
#include "crypto/shamir.h"
#include "crypto/sha256.h"
#include "crypto/signer.h"
#include "crypto/threshold.h"
#include "crypto/verifier_cache.h"
#include "smr/certificates.h"

namespace repro::crypto {
namespace {

Bytes str_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

// ---- SHA-256 --------------------------------------------------------------

TEST(Sha256, EmptyInputMatchesFipsVector) {
  EXPECT_EQ(to_hex(sha256(BytesView{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, AbcMatchesFipsVector) {
  EXPECT_EQ(to_hex(sha256(str_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessageMatchesFipsVector) {
  EXPECT_EQ(to_hex(sha256(str_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAsMatchesFipsVector) {
  Sha256 ctx;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(to_hex(ctx.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Rng rng(7);
  Bytes data(4096);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  // Split at awkward boundaries relative to the 64-byte block size.
  for (std::size_t split : {1u, 63u, 64u, 65u, 127u, 1000u}) {
    Sha256 ctx;
    ctx.update(BytesView(data.data(), split));
    ctx.update(BytesView(data.data() + split, data.size() - split));
    EXPECT_EQ(ctx.finalize(), sha256(data)) << "split=" << split;
  }
}

TEST(Sha256, TaggedHashSeparatesDomains) {
  const Bytes msg = str_bytes("payload");
  EXPECT_NE(sha256_tagged("a", msg), sha256_tagged("b", msg));
  EXPECT_NE(sha256_tagged("a", msg), sha256(msg));
}

TEST(Sha256, PaddingBoundaries) {
  // Lengths around the 56-byte padding cliff must all hash distinctly and
  // deterministically.
  std::vector<Digest> seen;
  for (std::size_t len = 54; len <= 66; ++len) {
    const Bytes data(len, 0x5a);
    const Digest d = sha256(data);
    EXPECT_EQ(d, sha256(data));
    EXPECT_TRUE(std::find(seen.begin(), seen.end(), d) == seen.end());
    seen.push_back(d);
  }
}

// ---- GF(2^61 - 1) ----------------------------------------------------------

TEST(Field, AdditionWrapsModP) {
  const Fp a(Fp::kP - 1);
  const Fp b(2);
  EXPECT_EQ((a + b).value(), 1u);
}

TEST(Field, SubtractionWraps) {
  EXPECT_EQ((Fp(0) - Fp(1)).value(), Fp::kP - 1);
}

TEST(Field, ReductionOfLargeValues) {
  // 2^61 == 1 (mod 2^61 - 1)
  EXPECT_EQ(Fp(1ull << 61).value(), 1u);
  EXPECT_EQ(Fp(Fp::kP).value(), 0u);
  EXPECT_EQ(Fp(~0ull).value(), ((~0ull) % Fp::kP));
}

TEST(Field, MultiplicationMatchesInt128Reference) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t a = rng.next() % Fp::kP;
    const std::uint64_t b = rng.next() % Fp::kP;
    const auto expect = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(a) * b) % Fp::kP);
    EXPECT_EQ((Fp(a) * Fp(b)).value(), expect);
  }
}

TEST(Field, InverseIsMultiplicativeInverse) {
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    Fp a(rng.next());
    if (a.is_zero()) continue;
    EXPECT_EQ((a * a.inverse()).value(), 1u);
  }
}

TEST(Field, PowMatchesRepeatedMultiplication) {
  const Fp base(123456789);
  Fp acc(1);
  for (std::uint64_t e = 0; e < 20; ++e) {
    EXPECT_EQ(base.pow(e), acc);
    acc *= base;
  }
}

TEST(Field, FermatLittleTheorem) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    Fp a(rng.next());
    if (a.is_zero()) continue;
    EXPECT_EQ(a.pow(Fp::kP - 1).value(), 1u);
  }
}

// ---- Shamir ----------------------------------------------------------------

TEST(Shamir, ReconstructsFromExactlyThreshold) {
  Rng rng(19);
  const Fp secret(0x123456789abcdefull);
  const auto shares = deal_shares(secret, 10, 4, rng);
  ASSERT_EQ(shares.size(), 10u);
  EXPECT_EQ(reconstruct_secret(std::span(shares).subspan(0, 4), 4), secret);
}

TEST(Shamir, AnySubsetOfThresholdSizeReconstructs) {
  Rng rng(23);
  const Fp secret(42);
  auto shares = deal_shares(secret, 7, 5, rng);
  // Try several random 5-subsets.
  for (int trial = 0; trial < 20; ++trial) {
    std::shuffle(shares.begin(), shares.end(), rng);
    EXPECT_EQ(reconstruct_secret(std::span(shares).subspan(0, 5), 5), secret);
  }
}

TEST(Shamir, FewerThanThresholdGivesWrongSecret) {
  // t-1 shares interpolated as if threshold were t-1 must not (except with
  // negligible probability) yield the secret.
  Rng rng(29);
  const Fp secret(777);
  const auto shares = deal_shares(secret, 7, 5, rng);
  EXPECT_NE(reconstruct_secret(std::span(shares).subspan(0, 4), 4), secret);
}

TEST(Shamir, LagrangeCoefficientsSumToOneOnConstantPoly) {
  // For a degree-0 polynomial every share equals the secret, so the
  // coefficients must sum to 1.
  std::vector<ReplicaId> ids = {0, 2, 5, 6};
  Fp sum;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    sum += lagrange_coefficient_at_zero(ids, i);
  }
  EXPECT_EQ(sum.value(), 1u);
}

TEST(Shamir, ThresholdOneIsBroadcastSecret) {
  Rng rng(31);
  const Fp secret(99);
  const auto shares = deal_shares(secret, 4, 1, rng);
  for (const auto& s : shares) EXPECT_EQ(s.value, secret);
}

// ---- Threshold signatures ---------------------------------------------------

class ThresholdTest : public ::testing::Test {
 protected:
  ThresholdTest() : rng_(101), scheme_(ThresholdScheme::deal(7, 5, rng_)) {}

  Rng rng_;
  ThresholdScheme scheme_;
  const Bytes msg_ = str_bytes("block 42");
};

TEST_F(ThresholdTest, SharesVerify) {
  for (ReplicaId i = 0; i < 7; ++i) {
    EXPECT_TRUE(scheme_.verify_share(scheme_.sign_share(i, msg_), msg_));
  }
}

TEST_F(ThresholdTest, ShareForWrongMessageFailsVerification) {
  auto share = scheme_.sign_share(0, msg_);
  EXPECT_FALSE(scheme_.verify_share(share, str_bytes("other")));
}

TEST_F(ThresholdTest, TamperedShareFailsVerification) {
  auto share = scheme_.sign_share(0, msg_);
  share.value ^= 1;
  EXPECT_FALSE(scheme_.verify_share(share, msg_));
}

TEST_F(ThresholdTest, CombineWithThresholdSharesVerifies) {
  std::vector<PartialSig> shares;
  for (ReplicaId i = 0; i < 5; ++i) shares.push_back(scheme_.sign_share(i, msg_));
  auto sig = scheme_.combine(shares, msg_);
  ASSERT_TRUE(sig.has_value());
  EXPECT_TRUE(scheme_.verify(*sig, msg_));
}

TEST_F(ThresholdTest, CombineIsSubsetIndependent) {
  std::vector<PartialSig> a, b;
  for (ReplicaId i = 0; i < 5; ++i) a.push_back(scheme_.sign_share(i, msg_));
  for (ReplicaId i = 2; i < 7; ++i) b.push_back(scheme_.sign_share(i, msg_));
  auto sa = scheme_.combine(a, msg_);
  auto sb = scheme_.combine(b, msg_);
  ASSERT_TRUE(sa && sb);
  EXPECT_EQ(sa->value, sb->value);  // both equal s·H(m)
}

TEST_F(ThresholdTest, CombineRejectsTooFewShares) {
  std::vector<PartialSig> shares;
  for (ReplicaId i = 0; i < 4; ++i) shares.push_back(scheme_.sign_share(i, msg_));
  EXPECT_FALSE(scheme_.combine(shares, msg_).has_value());
}

TEST_F(ThresholdTest, CombineDeduplicatesSigners) {
  // Five copies of one signer's share are one signer, not five.
  std::vector<PartialSig> shares(5, scheme_.sign_share(0, msg_));
  EXPECT_FALSE(scheme_.combine(shares, msg_).has_value());
}

TEST_F(ThresholdTest, CombineSkipsInvalidShares) {
  std::vector<PartialSig> shares;
  for (ReplicaId i = 0; i < 5; ++i) shares.push_back(scheme_.sign_share(i, msg_));
  shares[2].value ^= 0xdeadbeef;  // corrupt one
  shares.push_back(scheme_.sign_share(5, msg_));
  auto sig = scheme_.combine(shares, msg_);
  ASSERT_TRUE(sig.has_value());
  EXPECT_TRUE(scheme_.verify(*sig, msg_));
}

TEST_F(ThresholdTest, VerifyRejectsWrongMessage) {
  std::vector<PartialSig> shares;
  for (ReplicaId i = 0; i < 5; ++i) shares.push_back(scheme_.sign_share(i, msg_));
  auto sig = scheme_.combine(shares, msg_);
  ASSERT_TRUE(sig.has_value());
  EXPECT_FALSE(scheme_.verify(*sig, str_bytes("forged")));
}

TEST_F(ThresholdTest, CombineRejectsDuplicateSignerOutright) {
  // Enough DISTINCT signers are present, but one duplicated signer poisons
  // the whole call: combine refuses instead of silently deduplicating, so
  // callers (the share accumulators) must reject duplicates at admission.
  std::vector<PartialSig> shares;
  for (ReplicaId i = 0; i < 5; ++i) shares.push_back(scheme_.sign_share(i, msg_));
  shares.push_back(scheme_.sign_share(3, msg_));  // duplicate of signer 3
  EXPECT_FALSE(scheme_.combine(shares, msg_).has_value());
}

TEST_F(ThresholdTest, CombineWithCoefficientsMatchesCombine) {
  std::vector<PartialSig> shares;
  std::vector<ReplicaId> ids;
  for (ReplicaId i = 1; i < 6; ++i) {
    shares.push_back(scheme_.sign_share(i, msg_));
    ids.push_back(i);
  }
  const auto coeffs = lagrange_coefficients_at_zero(ids);
  const ThresholdSig fast = scheme_.combine_with_coefficients(shares, coeffs);
  const auto slow = scheme_.combine(shares, msg_);
  ASSERT_TRUE(slow.has_value());
  EXPECT_EQ(fast.value, slow->value);
  EXPECT_TRUE(scheme_.verify_at(fast, scheme_.message_point(msg_)));
}

TEST_F(ThresholdTest, VerifyShareAtMatchesVerifyShare) {
  const Fp point = scheme_.message_point(msg_);
  for (ReplicaId i = 0; i < 7; ++i) {
    auto share = scheme_.sign_share(i, msg_);
    EXPECT_TRUE(scheme_.verify_share_at(share, point));
    EXPECT_EQ(scheme_.verify_share(share, msg_), scheme_.verify_share_at(share, point));
    share.value ^= 1;
    EXPECT_FALSE(scheme_.verify_share_at(share, point));
  }
}

TEST(Shamir, BatchLagrangeMatchesPerIndex) {
  for (const std::size_t t : {std::size_t{1}, std::size_t{2}, std::size_t{5}, std::size_t{21}}) {
    std::vector<ReplicaId> ids;
    for (ReplicaId i = 0; i < t; ++i) ids.push_back(i * 7 + 2);  // arbitrary distinct ids
    const auto batch = lagrange_coefficients_at_zero(ids);
    ASSERT_EQ(batch.size(), t);
    for (std::size_t i = 0; i < t; ++i) {
      EXPECT_EQ(batch[i].value(), lagrange_coefficient_at_zero(ids, i).value())
          << "t=" << t << " i=" << i;
    }
  }
}

TEST(Shamir, LagrangeCacheHitsAndEvicts) {
  LagrangeCache cache(2);
  const std::vector<ReplicaId> a{0, 1, 2}, b{1, 2, 3}, c{2, 3, 4};
  const auto a_coeffs = cache.coefficients(a);  // miss
  EXPECT_EQ(a_coeffs.size(), 3u);
  EXPECT_EQ(cache.misses(), 1u);
  cache.coefficients(a);  // hit
  EXPECT_EQ(cache.hits(), 1u);
  cache.coefficients(b);  // miss, cache full
  cache.coefficients(c);  // miss, evicts a (LRU)
  EXPECT_EQ(cache.size(), 2u);
  cache.coefficients(a);  // miss again: was evicted
  EXPECT_EQ(cache.misses(), 4u);
  // Values are correct regardless of hit/miss path.
  EXPECT_EQ(cache.coefficients(b)[1].value(), lagrange_coefficient_at_zero(b, 1).value());
}

// ---- Common coin -------------------------------------------------------------

TEST(CommonCoin, ElectsSameLeaderForAnyShareSubset) {
  Rng rng(202);
  auto coin = CommonCoin::deal(10, 4, rng);
  std::vector<PartialSig> a, b;
  for (ReplicaId i = 0; i < 4; ++i) a.push_back(coin.coin_share(i, 9));
  for (ReplicaId i = 6; i < 10; ++i) b.push_back(coin.coin_share(i, 9));
  auto qa = coin.combine(a, 9);
  auto qb = coin.combine(b, 9);
  ASSERT_TRUE(qa && qb);
  EXPECT_EQ(coin.leader_from(*qa), coin.leader_from(*qb));
}

TEST(CommonCoin, DifferentViewsGiveIndependentCoins) {
  Rng rng(203);
  auto coin = CommonCoin::deal(4, 2, rng);
  std::set<ReplicaId> leaders;
  for (View v = 0; v < 64; ++v) {
    std::vector<PartialSig> shares = {coin.coin_share(0, v), coin.coin_share(1, v)};
    auto qc = coin.combine(shares, v);
    ASSERT_TRUE(qc.has_value());
    leaders.insert(coin.leader_from(*qc));
  }
  // Over 64 views with 4 replicas, all leaders should appear.
  EXPECT_EQ(leaders.size(), 4u);
}

TEST(CommonCoin, LeaderDistributionIsRoughlyUniform) {
  Rng rng(205);
  const std::uint32_t n = 4;
  auto coin = CommonCoin::deal(n, 2, rng);
  std::vector<int> counts(n, 0);
  const int kViews = 4000;
  for (View v = 0; v < kViews; ++v) {
    std::vector<PartialSig> shares = {coin.coin_share(0, v), coin.coin_share(3, v)};
    auto qc = coin.combine(shares, v);
    ASSERT_TRUE(qc.has_value());
    counts[coin.leader_from(*qc)]++;
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_GT(counts[i], kViews / n / 2) << "leader " << i << " underrepresented";
    EXPECT_LT(counts[i], kViews / n * 2) << "leader " << i << " overrepresented";
  }
}

TEST(CommonCoin, ShareFromWrongViewRejected) {
  Rng rng(207);
  auto coin = CommonCoin::deal(4, 2, rng);
  auto share = coin.coin_share(0, 5);
  EXPECT_TRUE(coin.verify_coin_share(share, 5));
  EXPECT_FALSE(coin.verify_coin_share(share, 6));
}

// ---- Per-replica signatures ---------------------------------------------------

TEST(SignatureScheme, SignVerifyRoundTrip) {
  Rng rng(301);
  auto sigs = SignatureScheme::deal(4, rng);
  const Bytes msg = str_bytes("hello");
  for (ReplicaId i = 0; i < 4; ++i) {
    EXPECT_TRUE(sigs.verify(i, msg, sigs.sign(i, msg)));
  }
}

TEST(SignatureScheme, WrongSignerRejected) {
  Rng rng(303);
  auto sigs = SignatureScheme::deal(4, rng);
  const Bytes msg = str_bytes("hello");
  EXPECT_FALSE(sigs.verify(1, msg, sigs.sign(0, msg)));
}

TEST(SignatureScheme, TamperedMessageRejected) {
  Rng rng(305);
  auto sigs = SignatureScheme::deal(4, rng);
  auto sig = sigs.sign(2, str_bytes("hello"));
  EXPECT_FALSE(sigs.verify(2, str_bytes("hellp"), sig));
}

TEST(SignatureScheme, OutOfRangeSignerRejected) {
  Rng rng(307);
  auto sigs = SignatureScheme::deal(4, rng);
  Signature sig{};
  EXPECT_FALSE(sigs.verify(9, str_bytes("x"), sig));
}

// ---- Dealer --------------------------------------------------------------------

TEST(Dealer, QuorumParamsMatchPaper) {
  // n = 3f + 1 and quorum = 2f + 1.
  for (std::uint32_t f = 1; f <= 10; ++f) {
    const auto p = QuorumParams::for_n(3 * f + 1);
    EXPECT_EQ(p.f, f);
    EXPECT_EQ(p.quorum(), 2 * f + 1);
    EXPECT_EQ(p.coin_quorum(), f + 1);
  }
}

TEST(Dealer, DealsConsistentSchemes) {
  auto sys = CryptoSystem::deal(QuorumParams::for_n(7), 99);
  EXPECT_EQ(sys->params.n, 7u);
  EXPECT_EQ(sys->quorum_sigs.threshold(), 5u);
  EXPECT_EQ(sys->coin.threshold(), 3u);
}

TEST(Dealer, DeterministicFromSeed) {
  auto a = CryptoSystem::deal(QuorumParams::for_n(4), 5);
  auto b = CryptoSystem::deal(QuorumParams::for_n(4), 5);
  const Bytes msg = str_bytes("m");
  EXPECT_EQ(a->quorum_sigs.sign_share(0, msg).value,
            b->quorum_sigs.sign_share(0, msg).value);
}

// ---- VerifierCache -------------------------------------------------------------

TEST(VerifierCache, MissInsertHit) {
  VerifierCache cache(4);
  const Digest k = sha256(str_bytes("a"));
  EXPECT_FALSE(cache.check(k));
  cache.insert(k);
  EXPECT_TRUE(cache.check(k));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(VerifierCache, BoundedUnderFloodOfDistinctKeys) {
  // Byzantine flood model: a stream of never-repeating certificates must
  // not grow the cache past its capacity.
  VerifierCache cache(8);
  for (int i = 0; i < 1000; ++i) {
    const Digest k = sha256(Bytes{std::uint8_t(i), std::uint8_t(i >> 8)});
    EXPECT_FALSE(cache.check(k));
    cache.insert(k);
    EXPECT_LE(cache.size(), 8u);
  }
  EXPECT_EQ(cache.size(), 8u);
  EXPECT_EQ(cache.stats().evictions, 1000u - 8u);
  // The earliest keys were evicted; the most recent ones survive.
  EXPECT_FALSE(cache.check(sha256(Bytes{0, 0})));
  EXPECT_TRUE(cache.check(sha256(Bytes{std::uint8_t(999), std::uint8_t(999 >> 8)})));
}

TEST(VerifierCache, HitRefreshesLruOrder) {
  VerifierCache cache(2);
  const Digest a = sha256(str_bytes("a"));
  const Digest b = sha256(str_bytes("b"));
  const Digest c = sha256(str_bytes("c"));
  cache.insert(a);
  cache.insert(b);
  EXPECT_TRUE(cache.check(a));  // a becomes most-recently-used
  cache.insert(c);              // evicts b, not a
  EXPECT_TRUE(cache.check(a));
  EXPECT_FALSE(cache.check(b));
}

TEST(VerifierCache, DuplicateInsertIsIdempotent) {
  VerifierCache cache(4);
  const Digest k = sha256(str_bytes("x"));
  cache.insert(k);
  cache.insert(k);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

// ---- cached certificate verification (cache-safety) ---------------------------

smr::Certificate signed_cert(const CryptoSystem& sys, Round round) {
  const smr::BlockId id = sha256(Bytes{std::uint8_t(round)});
  const Bytes m = smr::cert_signing_message(smr::CertKind::kQuorum, id, round, 0, 0, 0);
  std::vector<PartialSig> shares;
  for (ReplicaId i = 0; i < sys.params.quorum(); ++i) {
    shares.push_back(sys.quorum_sigs.sign_share(i, m));
  }
  return *smr::combine_certificate(sys, smr::CertKind::kQuorum, id, round, 0, 0, 0, shares);
}

TEST(CachedVerify, SecondVerificationIsAHit) {
  auto sys = CryptoSystem::deal(QuorumParams::for_n(4), 41);
  VerifierCache cache;
  const smr::Certificate cert = signed_cert(*sys, 3);
  EXPECT_TRUE(smr::verify_certificate(*sys, cache, cert));
  EXPECT_TRUE(smr::verify_certificate(*sys, cache, cert));
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(CachedVerify, MutatedSignatureAfterHitStillFails) {
  // The key covers the signature bytes: re-sending a cached certificate
  // with a tampered signature must MISS (different key) and then fail
  // full verification — a hit can never vouch for different bytes.
  auto sys = CryptoSystem::deal(QuorumParams::for_n(4), 42);
  VerifierCache cache;
  smr::Certificate cert = signed_cert(*sys, 5);
  ASSERT_TRUE(smr::verify_certificate(*sys, cache, cert));
  cert.sig.value += 1;
  EXPECT_FALSE(smr::verify_certificate(*sys, cache, cert));
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(CachedVerify, MutatedMessageFieldAfterHitStillFails) {
  // The key covers the signing message too: a valid signature re-attached
  // to different certificate fields must not ride on the cached entry.
  auto sys = CryptoSystem::deal(QuorumParams::for_n(4), 43);
  VerifierCache cache;
  smr::Certificate cert = signed_cert(*sys, 7);
  ASSERT_TRUE(smr::verify_certificate(*sys, cache, cert));
  smr::Certificate forged = cert;
  forged.round = 8;  // claim the same sig certifies a different round
  EXPECT_FALSE(smr::verify_certificate(*sys, cache, forged));
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(CachedVerify, FailedVerificationIsNeverCached) {
  auto sys = CryptoSystem::deal(QuorumParams::for_n(4), 44);
  VerifierCache cache;
  smr::Certificate cert = signed_cert(*sys, 9);
  cert.sig.value += 1;
  EXPECT_FALSE(smr::verify_certificate(*sys, cache, cert));
  EXPECT_FALSE(smr::verify_certificate(*sys, cache, cert));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(CachedVerify, NoteVerifiedPrepopulates) {
  // Self-combined certificates enter pre-verified: the first incoming
  // copy is already a hit.
  auto sys = CryptoSystem::deal(QuorumParams::for_n(4), 45);
  VerifierCache cache;
  const smr::Certificate cert = signed_cert(*sys, 11);
  smr::note_verified(cache, cert);
  EXPECT_TRUE(smr::verify_certificate(*sys, cache, cert));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(CachedVerify, GenesisIsNeverCached) {
  auto sys = CryptoSystem::deal(QuorumParams::for_n(4), 46);
  VerifierCache cache;
  EXPECT_TRUE(smr::verify_certificate(*sys, cache, smr::genesis_certificate()));
  smr::note_verified(cache, smr::genesis_certificate());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(CachedVerify, CoinQcAndFtcRoundTrip) {
  auto sys = CryptoSystem::deal(QuorumParams::for_n(4), 47);
  VerifierCache cache;
  std::vector<PartialSig> coin_shares;
  for (ReplicaId i = 0; i < sys->params.coin_quorum(); ++i) {
    coin_shares.push_back(sys->coin.coin_share(i, 6));
  }
  smr::CoinQC coin = *smr::combine_coin_qc(*sys, 6, coin_shares);
  EXPECT_TRUE(smr::verify_coin_qc(*sys, cache, coin));
  EXPECT_TRUE(smr::verify_coin_qc(*sys, cache, coin));
  coin.view = 7;  // same sig, different view: must miss and fail
  EXPECT_FALSE(smr::verify_coin_qc(*sys, cache, coin));

  std::vector<PartialSig> ftc_shares;
  for (ReplicaId i = 0; i < sys->params.quorum(); ++i) {
    ftc_shares.push_back(sys->quorum_sigs.sign_share(i, smr::ftc_signing_message(4)));
  }
  smr::FallbackTC ftc = *smr::combine_ftc(*sys, 4, ftc_shares);
  EXPECT_TRUE(smr::verify_ftc(*sys, cache, ftc));
  EXPECT_TRUE(smr::verify_ftc(*sys, cache, ftc));
  ftc.sig.value ^= 1;
  EXPECT_FALSE(smr::verify_ftc(*sys, cache, ftc));
}

}  // namespace
}  // namespace repro::crypto
