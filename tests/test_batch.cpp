// Pipelined proposal path (DESIGN.md §12): content-addressed batch store,
// digest-referenced blocks, out-of-band dissemination, pull-based
// recovery, adaptive sizing, and the inline/reference determinism pin.
#include <gtest/gtest.h>

#include "core/fallback.h"
#include "harness/experiment.h"
#include "net/network.h"
#include "sim/simulation.h"
#include "smr/batch.h"
#include "smr/mempool.h"

namespace repro {
namespace {

using core::ReplicaBase;
using smr::Batch;
using smr::BatchId;
using smr::BatchStore;

Bytes bytes_of(std::size_t n, std::uint8_t fill) { return Bytes(n, fill); }

// ---- BatchStore unit behaviour ---------------------------------------------

TEST(BatchStore, StoresAndRetrievesByContentHash) {
  BatchStore store(1 << 20);
  Batch b = Batch::seal(bytes_of(100, 0xAB));
  EXPECT_EQ(b.id, Batch::compute_id(b.data));
  EXPECT_TRUE(store.put(b.id, b.data));
  ASSERT_NE(store.get(b.id), nullptr);
  EXPECT_EQ(*store.get(b.id), b.data);
  EXPECT_EQ(store.size(), 1u);
  // Duplicate puts are rejected (content-addressed: same id, same bytes).
  EXPECT_FALSE(store.put(b.id, b.data));
  EXPECT_EQ(store.size(), 1u);
}

TEST(BatchStore, EvictsLeastRecentlyUsedAtByteBound) {
  // Entry cost = data + 32 bytes of id; bound fits exactly 3 entries.
  BatchStore store(3 * (100 + 32));
  std::vector<Batch> batches;
  for (std::uint8_t i = 0; i < 3; ++i) {
    batches.push_back(Batch::seal(bytes_of(100, i)));
    EXPECT_TRUE(store.put(batches.back().id, batches.back().data));
  }
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.evictions(), 0u);

  // Touch batch 0 so batch 1 becomes the LRU, then insert a fourth.
  ASSERT_NE(store.get(batches[0].id), nullptr);
  Batch b4 = Batch::seal(bytes_of(100, 0x33));
  EXPECT_TRUE(store.put(b4.id, b4.data));
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.evictions(), 1u);
  EXPECT_TRUE(store.contains(batches[0].id));   // refreshed, survived
  EXPECT_FALSE(store.contains(batches[1].id));  // LRU, evicted
  EXPECT_TRUE(store.contains(batches[2].id));
  EXPECT_TRUE(store.contains(b4.id));
  EXPECT_LE(store.bytes(), store.max_bytes());
}

TEST(BatchStore, RejectsOversizeBatch) {
  BatchStore store(64);
  Batch big = Batch::seal(bytes_of(256, 0x01));
  EXPECT_FALSE(store.put(big.id, big.data));
  EXPECT_EQ(store.size(), 0u);
}

// ---- adaptive batch sizing --------------------------------------------------

TEST(AdaptiveBatch, GrowsWithBacklogShrinksWithInFlight) {
  smr::Mempool pool(0, /*batch_bytes=*/1024, Rng(1));
  // No backlog: target stays at the base size.
  EXPECT_EQ(pool.adaptive_target(64 * 1024, 0), 1024u);
  // Deep backlog, nothing in flight: target climbs stepwise to the max.
  pool.offer(1 << 20);
  std::size_t prev = 1024;
  for (int i = 0; i < 32; ++i) {
    const std::size_t t = pool.adaptive_target(64 * 1024, 0);
    EXPECT_GE(t, prev);
    prev = t;
  }
  EXPECT_EQ(prev, 64u * 1024);
  // Rounds piling up in flight: target backs off toward the base.
  for (int i = 0; i < 32; ++i) prev = pool.adaptive_target(64 * 1024, 8);
  EXPECT_EQ(prev, 1024u);
  // Inert when the max does not exceed the base.
  EXPECT_EQ(pool.adaptive_target(1024, 0), 1024u);
}

// ---- digest-referenced round trip ------------------------------------------

TEST(BatchRef, RoundTripCommitsWithAnnouncedBatches) {
  harness::ExperimentConfig cfg;
  cfg.n = 4;
  cfg.protocol = harness::Protocol::kFallback3;
  cfg.seed = 91;
  cfg.pcfg.batch_bytes = 1024;  // > batch_ref_min_bytes: refs engage
  cfg.trace_capacity = 1 << 14;
  cfg.make_delay = [] { return std::make_unique<net::FixedDelayModel>(1'000); };
  harness::Experiment exp(cfg);
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(30, 60'000'000));
  EXPECT_TRUE(exp.check_safety().ok);

  std::uint64_t sealed = 0, announced = 0, hits = 0, misses = 0;
  for (ReplicaId id = 0; id < cfg.n; ++id) {
    sealed += exp.replica(id).stats().batches_sealed;
    announced += exp.replica(id).stats().batches_announced;
    hits += exp.replica(id).stats().batch_ref_hits;
    misses += exp.replica(id).stats().batch_ref_misses;
  }
  EXPECT_GT(sealed, 0u);
  EXPECT_GT(announced, 0u);
  // Announcements precede proposals on FIFO links, so refs resolve from
  // the local store without pulling.
  EXPECT_GT(hits, 0u);

  // Execution sees full payloads, never the 32-byte references.
  for (const auto& rec : exp.replica(0).ledger().records()) {
    if (rec.height == 0) EXPECT_EQ(rec.payload_bytes, 1024u + 12);
  }

  // The dissemination shows up in the structured trace.
  bool saw_announce = false, saw_resolve = false;
  for (const auto& ev : exp.trace_events()) {
    saw_announce |= ev.kind == obs::EventKind::kBatchAnnounced;
    saw_resolve |= ev.kind == obs::EventKind::kBatchResolved;
  }
  EXPECT_TRUE(saw_announce);
  EXPECT_TRUE(saw_resolve);
}

// ---- pull-based recovery ----------------------------------------------------

TEST(BatchRef, PullRecoversUnannouncedBatchesUnderMuteLeader) {
  // Announcements off: every ref proposal arrives before its batch, so
  // voters must miss, pull from the proposer, and vote only after the
  // push lands. A mute leader rides along (its rounds time out into the
  // usual recovery), proving the deferred-vote path does not wedge
  // liveness machinery.
  harness::ExperimentConfig cfg;
  cfg.n = 4;
  cfg.protocol = harness::Protocol::kFallback3;
  cfg.seed = 92;
  cfg.pcfg.batch_bytes = 1024;
  cfg.pcfg.batch_announce = false;
  cfg.faults[3] = core::FaultKind::kMuteLeader;
  cfg.make_delay = [] { return std::make_unique<net::FixedDelayModel>(1'000); };
  harness::Experiment exp(cfg);
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(20, 120'000'000));
  EXPECT_TRUE(exp.check_safety().ok);

  std::uint64_t pulled = 0, misses = 0, announced = 0;
  for (ReplicaId id = 0; id < cfg.n; ++id) {
    pulled += exp.replica(id).stats().batches_pulled;
    misses += exp.replica(id).stats().batch_ref_misses;
    announced += exp.replica(id).stats().batches_announced;
  }
  EXPECT_EQ(announced, 0u);
  EXPECT_GT(misses, 0u);
  EXPECT_GT(pulled, 0u);
}

// ---- differential determinism pin ------------------------------------------

/// Inline and reference modes must order the identical transaction
/// stream and commit it at identical virtual times: the j-th proposal
/// seals the j-th mempool batch either way, and on fixed-delay links the
/// extra announce traffic never sits on the critical path. Block ids DO
/// differ (payload_kind is part of the id), so the pin compares
/// everything else — including the executed payload bytes.
TEST(BatchRef, InlineAndReferenceModesCommitIdentically) {
  auto run = [](bool refs) {
    harness::ExperimentConfig cfg;
    cfg.n = 4;
    cfg.protocol = harness::Protocol::kFallback3;
    cfg.seed = 93;
    cfg.pcfg.batch_bytes = 1024;
    cfg.pcfg.batch_refs = refs;
    cfg.make_delay = [] { return std::make_unique<net::FixedDelayModel>(1'000); };
    auto exp = std::make_unique<harness::Experiment>(cfg);
    exp->start();
    exp->run_for(5'000'000);
    return exp;
  };
  auto inline_exp = run(false);
  auto ref_exp = run(true);

  for (ReplicaId id = 0; id < 4; ++id) {
    const auto& a = inline_exp->replica(id).ledger().records();
    const auto& b = ref_exp->replica(id).ledger().records();
    ASSERT_GT(a.size(), 10u) << "replica " << id;
    ASSERT_EQ(a.size(), b.size()) << "replica " << id;
    const auto& base_a = dynamic_cast<const ReplicaBase&>(inline_exp->replica(id));
    const auto& base_b = dynamic_cast<const ReplicaBase&>(ref_exp->replica(id));
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].round, b[i].round) << id << "/" << i;
      EXPECT_EQ(a[i].view, b[i].view) << id << "/" << i;
      EXPECT_EQ(a[i].height, b[i].height) << id << "/" << i;
      EXPECT_EQ(a[i].payload_bytes, b[i].payload_bytes) << id << "/" << i;
      EXPECT_EQ(a[i].commit_time, b[i].commit_time) << id << "/" << i;
      // Executed transaction bytes are byte-identical.
      const smr::Block* ba = base_a.store().get(a[i].id);
      const smr::Block* bb = base_b.store().get(b[i].id);
      ASSERT_NE(ba, nullptr);
      ASSERT_NE(bb, nullptr);
      EXPECT_EQ(ba->txns(), bb->txns()) << id << "/" << i;
    }
  }
  // And the reference run actually exercised the reference path.
  std::uint64_t hits = 0;
  for (ReplicaId id = 0; id < 4; ++id) hits += ref_exp->replica(id).stats().batch_ref_hits;
  EXPECT_GT(hits, 0u);
}

// ---- Byzantine bad-digest rejection -----------------------------------------

/// White-box rig (same shape as test_protocol_rules): replica 0 is the
/// unit under test, deliveries to 1..3 are captured.
struct Rig {
  sim::Simulation sim;
  std::shared_ptr<const crypto::CryptoSystem> crypto_sys;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<core::FallbackReplica> replica;
  std::vector<std::tuple<ReplicaId, ReplicaId, smr::Message>> captured;

  explicit Rig(core::ProtocolConfig pcfg = {}) {
    crypto_sys = crypto::CryptoSystem::deal(QuorumParams::for_n(4), 777);
    net = std::make_unique<net::Network>(sim, 4, std::make_unique<net::FixedDelayModel>(1),
                                         Rng(1));
    core::ReplicaContext ctx;
    ctx.sim = &sim;
    ctx.net = net.get();
    ctx.crypto = crypto_sys;
    ctx.id = 0;
    ctx.config = pcfg;
    ctx.seed = 7;
    replica = std::make_unique<core::FallbackReplica>(ctx, core::FallbackParams{});
    net->register_handler(0, [this](ReplicaId from, const Bytes& payload) {
      replica->on_message(from, payload);
    });
    for (ReplicaId id = 1; id < 4; ++id) {
      net->register_handler(id, [this, id](ReplicaId from, const Bytes& payload) {
        captured.emplace_back(id, from, *smr::decode_message(payload));
      });
    }
  }

  void inject(ReplicaId from, smr::Message msg) {
    smr::sign_message(*crypto_sys, from, msg);
    net->send(from, 0, smr::encode_message(msg));
    settle();
  }

  void settle() { sim.run_until(sim.now() + 10'000); }

  template <typename T>
  std::vector<T> sent() const {
    std::vector<T> out;
    for (const auto& [to, from, msg] : captured) {
      if (const T* m = std::get_if<T>(&msg)) out.push_back(*m);
    }
    return out;
  }

  smr::Certificate make_qc(const smr::Block& b) const {
    std::vector<crypto::PartialSig> shares;
    const Bytes m =
        smr::cert_signing_message(smr::CertKind::kQuorum, b.id, b.round, b.view, 0, 0);
    for (ReplicaId i = 0; i < 3; ++i) {
      shares.push_back(crypto_sys->quorum_sigs.sign_share(i, m));
    }
    return *smr::combine_certificate(*crypto_sys, smr::CertKind::kQuorum, b.id, b.round,
                                     b.view, 0, 0, shares);
  }
};

TEST(BatchRef, ByzantineBadDigestNeverGetsAVote) {
  core::ProtocolConfig pcfg;
  pcfg.leader_rotation = 1;  // leader(2) = replica 1
  Rig rig(pcfg);
  rig.replica->start();
  rig.settle();  // replica 0 proposes round 1
  const auto proposals = rig.sent<smr::ProposalMsg>();
  ASSERT_FALSE(proposals.empty());
  const smr::Block b1 = proposals.front().block;

  // Round-2 proposal from the correct leader, referencing a digest that
  // matches NO batch: 32 bytes of garbage, id-consistent as a ref block.
  Bytes bogus_ref(32, 0xEE);
  smr::Block bad = smr::Block::make(rig.make_qc(b1), 2, 0, 0, /*proposer=*/1,
                                    std::move(bogus_ref), smr::kBatchRefPayload);
  smr::ProposalMsg msg;
  msg.block = bad;
  rig.inject(1, std::move(msg));

  // The replica entered round 2 but deferred the vote and started pulling.
  EXPECT_EQ(rig.replica->current_round(), 2u);
  EXPECT_FALSE(rig.sent<smr::BatchPullMsg>().empty());
  for (const auto& v : rig.sent<smr::VoteMsg>()) EXPECT_NE(v.round, 2u);

  // A push whose bytes hash elsewhere cannot satisfy the reference: the
  // store files data under its TRUE digest, so the bogus one stays
  // unresolved and the vote stays withheld.
  rig.inject(1, smr::BatchPushMsg{bytes_of(1036, 0x42)});
  for (const auto& v : rig.sent<smr::VoteMsg>()) EXPECT_NE(v.round, 2u);
  EXPECT_GT(rig.replica->stats().batch_ref_misses, 0u);

  // Liveness recovers through the ordinary round timeout, exactly as for
  // a withheld proposal: the replica times out of round 2 rather than
  // wedging on the unresolvable reference.
  rig.sim.run_until(rig.sim.now() + 600'000);
  EXPECT_FALSE(rig.sent<smr::FbTimeoutMsg>().empty());
}

/// A block that enters the store through catch-up (an unsolicited
/// BlockResponseMsg) never passed proposal authentication, so the
/// deferred batch-resolution retry must not vote on it — even when it is
/// id-consistent, names the correct leader as proposer, and its batch
/// later resolves. Without the vote-candidate gate a Byzantine peer
/// could harvest honest votes for blocks the leader never proposed.
TEST(BatchRef, CatchUpBlockNeverHarvestsDeferredVote) {
  core::ProtocolConfig pcfg;
  pcfg.leader_rotation = 1;  // leader(1) = replica 0, leader(2) = replica 1
  Rig rig(pcfg);
  rig.replica->start();
  rig.settle();  // replica 0 proposes round 1
  const auto proposals = rig.sent<smr::ProposalMsg>();
  ASSERT_FALSE(proposals.empty());
  const smr::Block b1 = proposals.front().block;

  // Advance replica 0 into round 2 by forming the round-1 QC from votes
  // (no round-2 proposal exists: leader 1 stays silent).
  const Bytes vote_msg =
      smr::cert_signing_message(smr::CertKind::kQuorum, b1.id, b1.round, b1.view, 0, 0);
  for (ReplicaId i = 1; i < 4; ++i) {
    smr::VoteMsg v;
    v.block_id = b1.id;
    v.round = b1.round;
    v.view = b1.view;
    v.share = rig.crypto_sys->quorum_sigs.sign_share(i, vote_msg);
    rig.inject(i, std::move(v));
  }
  ASSERT_EQ(rig.replica->current_round(), 2u);

  // Byzantine replica 2 injects an id-consistent ref block for round 2
  // naming the honest leader 1 as proposer — via catch-up, not a signed
  // proposal from leader 1 — then supplies the matching batch.
  Bytes batch = bytes_of(2048, 0x7A);
  const BatchId ref = Batch::compute_id(batch);
  smr::Block forged = smr::Block::make(rig.make_qc(b1), 2, 0, 0, /*proposer=*/1,
                                       Bytes(ref.begin(), ref.end()), smr::kBatchRefPayload);
  smr::BlockResponseMsg resp;
  resp.blocks.push_back(forged);
  rig.inject(2, std::move(resp));
  EXPECT_GT(rig.replica->stats().batch_ref_misses, 0u);  // the retry armed
  rig.inject(2, smr::BatchPushMsg{std::move(batch)});

  // The batch resolved the block, but the resolution retry finds no
  // authenticated proposal for it: no round-2 vote ever leaves.
  for (const auto& v : rig.sent<smr::VoteMsg>()) EXPECT_NE(v.round, 2u);
}

/// Pull responses are deduplicated per (peer, batch): a flood of
/// identical 36-byte pulls cannot multiply into a stream of full-batch
/// pushes (bandwidth amplification). Distinct peers are unaffected, and
/// the same peer may pull again once the cooldown window passes.
TEST(BatchRef, PullResponsesAreRateLimitedPerPeer) {
  core::ProtocolConfig pcfg;
  pcfg.leader_rotation = 1;
  pcfg.batch_bytes = 1024;  // the round-1 proposal seals + announces
  Rig rig(pcfg);
  rig.replica->start();
  rig.settle();
  const auto announced = rig.sent<smr::BatchMsg>();
  ASSERT_FALSE(announced.empty());
  const BatchId ref = Batch::compute_id(announced.front().data);

  auto pushes_to = [&](ReplicaId peer) {
    std::size_t count = 0;
    for (const auto& [to, from, msg] : rig.captured) {
      if (to == peer && std::holds_alternative<smr::BatchPushMsg>(msg)) ++count;
    }
    return count;
  };
  rig.inject(2, smr::BatchPullMsg{ref});
  rig.inject(2, smr::BatchPullMsg{ref});
  rig.inject(2, smr::BatchPullMsg{ref});
  EXPECT_EQ(pushes_to(2), 1u);
  EXPECT_EQ(rig.replica->stats().batch_pushes_suppressed, 2u);
  // A different peer's first pull answers immediately.
  rig.inject(3, smr::BatchPullMsg{ref});
  EXPECT_EQ(pushes_to(3), 1u);
  // Past the cooldown the original peer is served again (honest retries
  // rotate through all n replicas, landing far outside the window).
  rig.sim.run_until(rig.sim.now() + 2 * pcfg.batch_pull_timeout_us);
  rig.inject(2, smr::BatchPullMsg{ref});
  EXPECT_EQ(pushes_to(2), 2u);
}

/// End-to-end adaptive sizing: with batch_bytes_max set and a deep client
/// backlog, the production proposal path (next_payload -> take_payload)
/// seals batches above the base size; with the knob off every committed
/// payload stays at exactly base + header.
TEST(AdaptiveBatch, ProposalPathGrowsBatchesUnderBacklog) {
  auto run = [](std::size_t max_bytes) {
    harness::ExperimentConfig cfg;
    cfg.n = 4;
    cfg.protocol = harness::Protocol::kFallback3;
    cfg.seed = 94;
    cfg.pcfg.batch_bytes = 1024;
    cfg.pcfg.batch_bytes_max = max_bytes;
    cfg.make_delay = [] { return std::make_unique<net::FixedDelayModel>(1'000); };
    auto exp = std::make_unique<harness::Experiment>(cfg);
    for (ReplicaId id = 0; id < 4; ++id) {
      dynamic_cast<ReplicaBase&>(exp->replica(id)).offer_transactions(1 << 20);
    }
    exp->start();
    exp->run_for(5'000'000);
    return exp;
  };
  auto base = run(0);
  auto adaptive = run(16 * 1024);
  auto max_payload = [](const harness::Experiment& exp) {
    std::size_t mx = 0;
    for (const auto& rec : exp.replica(0).ledger().records()) {
      mx = std::max<std::size_t>(mx, rec.payload_bytes);
    }
    return mx;
  };
  ASSERT_GT(base->replica(0).ledger().records().size(), 10u);
  EXPECT_EQ(max_payload(*base), 1024u + 12);
  EXPECT_GT(max_payload(*adaptive), 1024u + 12);
  EXPECT_LE(max_payload(*adaptive), 16u * 1024 + 12);
}

}  // namespace
}  // namespace repro
