// Byzantine bad-share flood + differential determinism for the optimistic
// (combine-then-verify) share accumulators.
//
// The determinism claim under test: with lazy verification, a certificate
// forms on the add that supplies the t-th VALID distinct-signer share —
// exactly when eager mode forms it — because any t valid shares
// interpolate to the same signature and invalid shares are evicted (and
// their signers banned) by the per-share fallback pass, just as eager mode
// rejects-and-bans them at admission. Hence lazy and eager runs are
// byte-identical: same commit sequence, same commit timestamps, even with
// Byzantine replicas flooding invalid shares into every pool.
#include <gtest/gtest.h>

#include <vector>

#include "harness/experiment.h"
#include "harness/invariants.h"

namespace repro::harness {
namespace {

/// Full commit history of one replica, flattened for exact comparison
/// (ids + rounds + views + heights + commit times).
std::vector<std::uint64_t> ledger_trace(const Experiment& exp, ReplicaId id) {
  std::vector<std::uint64_t> trace;
  for (const auto& rec : exp.replica(id).ledger().records()) {
    for (const auto byte : rec.id) trace.push_back(byte);
    trace.push_back(rec.round);
    trace.push_back(rec.view);
    trace.push_back(rec.height);
    trace.push_back(rec.commit_time);
  }
  return trace;
}

struct FloodRun {
  std::vector<std::vector<std::uint64_t>> traces;  ///< per honest replica
  std::uint64_t combine_fallbacks = 0;
  std::uint64_t bad_shares_rejected = 0;
  std::uint64_t shares_verified = 0;
  bool reached = false;
  bool safe = false;
};

FloodRun run_flood(Protocol p, std::uint32_t n, std::uint32_t bad, bool lazy,
                   std::size_t commits,
                   core::FaultKind fault = core::FaultKind::kBadShares) {
  ExperimentConfig cfg;
  cfg.n = n;
  cfg.protocol = p;
  cfg.scenario = NetScenario::kAsynchronous;
  cfg.seed = 4242;
  cfg.pcfg.lazy_share_verify = lazy;
  for (std::uint32_t b = 0; b < bad; ++b) {
    cfg.faults[n - 1 - b] = fault;
  }
  Experiment exp(cfg);
  exp.start();
  FloodRun r;
  r.reached = exp.run_until_commits(commits, 120'000'000'000ull);
  r.safe = exp.check_safety().ok;
  for (ReplicaId id = 0; id < n; ++id) {
    if (!exp.is_honest(id)) continue;
    r.traces.push_back(ledger_trace(exp, id));
    r.combine_fallbacks += exp.replica(id).stats().combine_fallbacks;
    r.bad_shares_rejected += exp.replica(id).stats().bad_shares_rejected;
    r.shares_verified += exp.replica(id).stats().shares_verified;
  }
  return r;
}

/// f replicas flood invalid threshold shares into every quorum pool the
/// protocol runs (votes, view-timeouts, f-votes, coin shares). Liveness
/// must hold through the per-share fallback path, and the lazy run must
/// remain byte-identical to the eager run.
TEST(BadShareFlood, FallbackProtocolStaysLiveViaPerShareFallback) {
  const FloodRun lazy = run_flood(Protocol::kFallback3, 7, 2, /*lazy=*/true, 15);
  EXPECT_TRUE(lazy.reached);
  EXPECT_TRUE(lazy.safe);
  // Poisoned quorums forced optimistic combines to fail over to the
  // per-share pass, which evicted the invalid shares.
  EXPECT_GT(lazy.combine_fallbacks, 0u);
  EXPECT_GT(lazy.bad_shares_rejected, 0u);
  // Only fallback passes verify shares in lazy mode.
  EXPECT_GT(lazy.shares_verified, 0u);

  const FloodRun eager = run_flood(Protocol::kFallback3, 7, 2, /*lazy=*/false, 15);
  EXPECT_TRUE(eager.reached);
  EXPECT_TRUE(eager.safe);
  EXPECT_EQ(eager.combine_fallbacks, 0u);  // eager never defers
  EXPECT_GT(eager.bad_shares_rejected, 0u);
  ASSERT_EQ(lazy.traces.size(), eager.traces.size());
  for (std::size_t i = 0; i < lazy.traces.size(); ++i) {
    EXPECT_EQ(lazy.traces[i], eager.traces[i]) << "honest replica " << i;
  }
}

TEST(BadShareFlood, AlwaysFallbackFloodedCoinAndVotePoolsStayLive) {
  // The ACE-style baseline exercises every pool type each view; f bad
  // replicas poison all of them, permanently.
  const FloodRun lazy = run_flood(Protocol::kAlwaysFallback, 7, 2, /*lazy=*/true, 10);
  EXPECT_TRUE(lazy.reached);
  EXPECT_TRUE(lazy.safe);
  EXPECT_GT(lazy.combine_fallbacks, 0u);
  EXPECT_GT(lazy.bad_shares_rejected, 0u);

  const FloodRun eager = run_flood(Protocol::kAlwaysFallback, 7, 2, /*lazy=*/false, 10);
  ASSERT_EQ(lazy.traces.size(), eager.traces.size());
  for (std::size_t i = 0; i < lazy.traces.size(); ++i) {
    EXPECT_EQ(lazy.traces[i], eager.traces[i]) << "honest replica " << i;
  }
}

/// f replicas flood garbage shares that CLAIM HONEST SIGNER IDS (each
/// stamps its neighbour's id on every vote/timeout/coin share it sends).
/// Admission must bind the claimed signer to the envelope-authenticated
/// sender and drop the forgeries; were they admitted, they would occupy
/// the honest signers' accumulator slots — the genuine shares would then
/// bounce as duplicates and the per-share fallback would ban the honest
/// ids per target, so no quorum certificate (QC, f-TC, coin-QC) could
/// ever form again: a permanent liveness break, in lazy AND eager mode.
TEST(ImpersonatedShareFlood, ForgedSignerIdsCannotWedgeQuorums) {
  for (const Protocol p : {Protocol::kFallback3, Protocol::kAlwaysFallback}) {
    const FloodRun lazy =
        run_flood(p, 7, 2, /*lazy=*/true, 10, core::FaultKind::kImpersonateShares);
    EXPECT_TRUE(lazy.reached);
    EXPECT_TRUE(lazy.safe);
    // Forgeries are rejected at admission (blamed on the authenticated
    // sender), never buffered — so no optimistic combine ever fails.
    EXPECT_GT(lazy.bad_shares_rejected, 0u);
    EXPECT_EQ(lazy.combine_fallbacks, 0u);
    EXPECT_EQ(lazy.shares_verified, 0u);

    const FloodRun eager =
        run_flood(p, 7, 2, /*lazy=*/false, 10, core::FaultKind::kImpersonateShares);
    EXPECT_TRUE(eager.reached);
    EXPECT_TRUE(eager.safe);
    EXPECT_GT(eager.bad_shares_rejected, 0u);
    // The admission check fires before the lazy/eager split, so the runs
    // stay byte-identical.
    ASSERT_EQ(lazy.traces.size(), eager.traces.size());
    for (std::size_t i = 0; i < lazy.traces.size(); ++i) {
      EXPECT_EQ(lazy.traces[i], eager.traces[i]) << "honest replica " << i;
    }
  }
}

/// Identical (config, seed) with lazy_share_verify on vs off must produce
/// byte-identical ledgers INCLUDING commit timestamps on every replica —
/// deferring verification may not shift a single event in the schedule.
TEST(DifferentialDeterminism, LazyAndEagerRunsAreByteIdentical) {
  struct Case {
    Protocol protocol;
    NetScenario scenario;
    const char* name;
  };
  const Case cases[] = {
      {Protocol::kDiemBft, NetScenario::kSynchronous, "diembft-sync"},
      {Protocol::kDiemBft, NetScenario::kPartialSynchrony, "diembft-psync"},
      {Protocol::kAlwaysFallback, NetScenario::kAsynchronous, "always-fallback-async"},
      {Protocol::kFallback2, NetScenario::kAsynchronous, "2chain-async"},
      {Protocol::kFallback3, NetScenario::kLeaderAttack, "3chain-attack"},
  };
  for (const Case& c : cases) {
    std::vector<std::vector<std::uint64_t>> traces[2];
    for (const bool lazy : {true, false}) {
      ExperimentConfig cfg;
      cfg.n = 4;
      cfg.protocol = c.protocol;
      cfg.scenario = c.scenario;
      cfg.seed = 99;
      cfg.pcfg.lazy_share_verify = lazy;
      Experiment exp(cfg);
      exp.start();
      EXPECT_TRUE(exp.run_until_commits(20, 120'000'000'000ull)) << c.name;
      EXPECT_TRUE(exp.check_safety().ok) << c.name;
      for (ReplicaId id = 0; id < 4; ++id) {
        traces[lazy ? 0 : 1].push_back(ledger_trace(exp, id));
      }
      if (lazy) {
        // The honest path must not pay per-share verifications.
        std::uint64_t verified = 0, optimistic = 0;
        for (ReplicaId id = 0; id < 4; ++id) {
          verified += exp.replica(id).stats().shares_verified;
          optimistic += exp.replica(id).stats().combines_optimistic;
        }
        EXPECT_EQ(verified, 0u) << c.name;
        EXPECT_GT(optimistic, 0u) << c.name;
      }
    }
    ASSERT_EQ(traces[0].size(), traces[1].size()) << c.name;
    for (std::size_t i = 0; i < traces[0].size(); ++i) {
      EXPECT_EQ(traces[0][i], traces[1][i]) << c.name << " replica " << i;
    }
  }
}

}  // namespace
}  // namespace repro::harness
