// Network partition tests: during a split with no 2f+1 group, no quorum
// protocol can commit (that is physics, not a bug); after the heal the
// fallback protocol recovers cleanly, stays safe, and commits.
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/invariants.h"

namespace repro::harness {
namespace {

constexpr SimTime kHeal = 20'000'000;  // 20 s

ExperimentConfig part_config(Protocol p, std::uint32_t n,
                             std::vector<std::vector<ReplicaId>> groups,
                             std::uint64_t seed = 17) {
  ExperimentConfig cfg;
  cfg.n = n;
  cfg.protocol = p;
  cfg.seed = seed;
  cfg.make_delay = [groups = std::move(groups)]() {
    return std::make_unique<net::PartitionModel>(groups, kHeal, 1'000, 50'000);
  };
  return cfg;
}

TEST(Partition, MinorityGroupsCannotCommitDuringSplit) {
  // 2-2 split of n=4: no group holds 2f+1 = 3.
  Experiment exp(part_config(Protocol::kFallback3, 4, {{0, 1}, {2, 3}}));
  exp.start();
  exp.sim().run_until(kHeal - 1'000'000);
  EXPECT_EQ(exp.max_honest_commits(), 0u);
  EXPECT_TRUE(exp.check_safety().ok);
}

TEST(Partition, RecoversAfterHeal) {
  Experiment exp(part_config(Protocol::kFallback3, 4, {{0, 1}, {2, 3}}));
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(10, 200'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
  const auto rep = check_invariants(exp);
  EXPECT_TRUE(rep.ok) << (rep.violations.empty() ? "" : rep.violations.front());
}

TEST(Partition, MajorityGroupCommitsThroughSplit) {
  // 5-2 split of n=7: the 5-group holds 2f+1 = 5 and keeps committing;
  // the isolated pair catches up after the heal via block retrieval.
  Experiment exp(part_config(Protocol::kFallback3, 7, {{0, 1, 2, 3, 4}, {5, 6}}));
  exp.start();
  exp.sim().run_until(kHeal - 1'000'000);
  EXPECT_GT(exp.max_honest_commits(), 0u);   // majority side progressed
  EXPECT_EQ(exp.replica(5).ledger().size(), 0u);  // isolated side did not
  ASSERT_TRUE(exp.run_until_commits(20, 400'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
}

TEST(Partition, DiemBftAlsoRecovers) {
  // The baseline recovers too (partitions end = a GST); the difference vs
  // the fallback protocol is adversarial asynchrony, not partitions.
  Experiment exp(part_config(Protocol::kDiemBft, 4, {{0, 1}, {2, 3}}));
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(10, 200'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
}

TEST(Partition, IsolatedReplicaRejoins) {
  // 3-1 split of n=4: the triple commits alone; the loner rejoins.
  Experiment exp(part_config(Protocol::kFallback3, 4, {{0, 1, 2}, {3}}));
  exp.start();
  exp.sim().run_until(kHeal - 1'000'000);
  EXPECT_GT(exp.replica(0).ledger().size(), 0u);
  EXPECT_EQ(exp.replica(3).ledger().size(), 0u);
  // After the heal the loner must catch up to a healthy fraction of the
  // majority's ledger (block retrieval + new commits carry it forward).
  ASSERT_TRUE(exp.run_until_commits(10, 400'000'000));
  EXPECT_GE(exp.replica(3).ledger().size(), 10u);
  EXPECT_TRUE(exp.check_safety().ok);
}

TEST(Partition, TwoChainVariantRecoversToo) {
  Experiment exp(part_config(Protocol::kFallback2, 7, {{0, 1, 2}, {3, 4, 5, 6}}));
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(10, 400'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
}

}  // namespace
}  // namespace repro::harness
