// Tests for the client layer: submission, batching, f+1 confirmation,
// retries around crashed replicas, and end-to-end liveness through
// asynchrony.
#include <gtest/gtest.h>

#include "client/client_swarm.h"

namespace repro::client {
namespace {

using harness::Experiment;
using harness::ExperimentConfig;
using harness::NetScenario;
using harness::Protocol;

struct Rig {
  std::shared_ptr<TxnPools> pools;
  std::unique_ptr<Experiment> exp;
  std::unique_ptr<ClientSwarm> swarm;

  explicit Rig(ExperimentConfig cfg, ClientConfig ccfg = {}) {
    pools = std::make_shared<TxnPools>(cfg.n, ccfg.max_batch_txns);
    auto pools_copy = pools;
    cfg.payload_factory = [pools_copy](ReplicaId id) { return pools_copy->next_batch(id); };
    exp = std::make_unique<Experiment>(cfg);
    swarm = std::make_unique<ClientSwarm>(*exp, pools, ccfg, cfg.seed ^ 0xc11e47);
  }

  void run(SimTime duration) {
    exp->start();
    swarm->start();
    exp->sim().run_until(duration);
  }
};

// ---- TxnPools unit behaviour -------------------------------------------------

TEST(TxnPools, BatchEncodingRoundTrips) {
  TxnPools pools(2, 10);
  const TxnId a = crypto::sha256_tagged("t", Bytes{1});
  const TxnId b = crypto::sha256_tagged("t", Bytes{2});
  pools.submit(0, a, Bytes{10, 11});
  pools.submit(0, b, Bytes{12});
  const Bytes batch = pools.next_batch(0);
  const auto ids = TxnPools::decode_txn_ids(batch);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], a);
  EXPECT_EQ(ids[1], b);
}

TEST(TxnPools, DrainRespectsMaxBatch) {
  TxnPools pools(1, 3);
  for (int i = 0; i < 10; ++i) {
    pools.submit(0, crypto::sha256_tagged("t", Bytes{std::uint8_t(i)}), Bytes{std::uint8_t(i)});
  }
  EXPECT_EQ(TxnPools::decode_txn_ids(pools.next_batch(0)).size(), 3u);
  EXPECT_EQ(TxnPools::decode_txn_ids(pools.next_batch(0)).size(), 3u);
}

TEST(TxnPools, DuplicateSubmitIgnored) {
  TxnPools pools(1, 10);
  const TxnId a = crypto::sha256_tagged("t", Bytes{1});
  pools.submit(0, a, Bytes{1});
  pools.submit(0, a, Bytes{1});
  EXPECT_EQ(TxnPools::decode_txn_ids(pools.next_batch(0)).size(), 1u);
}

TEST(TxnPools, EmptyPoolGivesEmptyBatch) {
  TxnPools pools(1, 10);
  EXPECT_TRUE(TxnPools::decode_txn_ids(pools.next_batch(0)).empty());
}

// ---- end-to-end -----------------------------------------------------------------

TEST(ClientSwarm, TransactionsConfirmUnderSynchrony) {
  ExperimentConfig cfg;
  cfg.n = 4;
  cfg.protocol = Protocol::kFallback3;
  cfg.seed = 5;
  Rig rig(cfg);
  rig.run(20'000'000);
  const auto& st = rig.swarm->stats();
  EXPECT_GT(st.submitted, 50u);
  EXPECT_GT(st.confirmed, 40u);
  // Confirmations require f+1 = 2 acks; latency must be positive and sane.
  for (SimTime lat : st.confirm_latencies_us) {
    EXPECT_GT(lat, 0u);
    EXPECT_LT(lat, 10'000'000u);
  }
  EXPECT_TRUE(rig.exp->check_safety().ok);
}

TEST(ClientSwarm, ConfirmsDespiteCrashedReplica) {
  ExperimentConfig cfg;
  cfg.n = 4;
  cfg.protocol = Protocol::kFallback3;
  cfg.seed = 6;
  cfg.faults[2] = core::FaultKind::kCrash;
  ClientConfig ccfg;
  ccfg.num_clients = 4;
  Rig rig(cfg, ccfg);
  rig.run(40'000'000);
  const auto& st = rig.swarm->stats();
  // Txns initially sent to the crashed replica confirm via retries.
  EXPECT_GT(st.confirmed, 20u);
  EXPECT_GT(st.retries, 0u);
}

TEST(ClientSwarm, ConfirmsThroughAsynchrony) {
  ExperimentConfig cfg;
  cfg.n = 4;
  cfg.protocol = Protocol::kFallback3;
  cfg.scenario = NetScenario::kAsynchronous;
  cfg.seed = 7;
  ClientConfig ccfg;
  ccfg.num_clients = 2;
  ccfg.submit_interval = 500'000;
  ccfg.retry_timeout = 10'000'000;
  Rig rig(cfg, ccfg);
  rig.run(120'000'000);
  EXPECT_GT(rig.swarm->stats().confirmed, 5u);
  EXPECT_TRUE(rig.exp->check_safety().ok);
}

TEST(ClientSwarm, NoConfirmationWithoutQuorumOfAcks) {
  // With DiemBFT under leader attack nothing commits, so nothing confirms
  // even though submissions and retries keep happening.
  ExperimentConfig cfg;
  cfg.n = 4;
  cfg.protocol = Protocol::kDiemBft;
  cfg.scenario = NetScenario::kLeaderAttack;
  cfg.seed = 8;
  ClientConfig ccfg;
  ccfg.num_clients = 2;
  ccfg.submit_interval = 1'000'000;
  Rig rig(cfg, ccfg);
  rig.run(60'000'000);
  EXPECT_EQ(rig.swarm->stats().confirmed, 0u);
  EXPECT_GT(rig.swarm->stats().retries, 0u);
  EXPECT_GT(rig.swarm->in_flight(), 0u);
}

TEST(ClientSwarm, CommittedPayloadsMatchSubmittedTxns) {
  ExperimentConfig cfg;
  cfg.n = 4;
  cfg.protocol = Protocol::kFallback3;
  cfg.seed = 9;
  Rig rig(cfg);
  rig.run(10'000'000);
  // Every committed batch decodes cleanly into txn records.
  const auto& base = dynamic_cast<const core::ReplicaBase&>(rig.exp->replica(0));
  std::size_t txns = 0;
  for (const auto& rec : rig.exp->replica(0).ledger().records()) {
    const smr::Block* b = base.store().get(rec.id);
    ASSERT_NE(b, nullptr);
    txns += TxnPools::decode_txn_ids(b->payload).size();
  }
  EXPECT_GT(txns, 0u);
  EXPECT_LE(txns, rig.swarm->stats().submitted);
}

}  // namespace
}  // namespace repro::client
