// Wire-size properties behind Theorem 9: certificates are constant-size
// in n (that is what makes the sync path O(n) instead of O(n^2)), votes
// are tiny, and message overheads are bounded. These tests pin the
// actual encoded sizes so an accidental regression to O(n)-sized
// certificates (e.g. shipping signer bitmaps or vote vectors) fails CI.
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "smr/messages.h"

namespace repro::smr {
namespace {

Certificate make_qc(const crypto::CryptoSystem& sys, Round r) {
  const Block b = Block::make(genesis_certificate(), r, 0, 0, 0, Bytes{});
  std::vector<crypto::PartialSig> shares;
  const Bytes msg = cert_signing_message(CertKind::kQuorum, b.id, r, 0, 0, 0);
  for (ReplicaId i = 0; i < sys.params.quorum(); ++i) {
    shares.push_back(sys.quorum_sigs.sign_share(i, msg));
  }
  return *combine_certificate(sys, CertKind::kQuorum, b.id, r, 0, 0, 0, shares);
}

std::size_t encoded_size(const Certificate& c) {
  Encoder enc;
  c.encode(enc);
  return enc.size();
}

TEST(WireSizes, CertificateSizeIndependentOfN) {
  // The whole point of threshold signatures (paper §2): a QC combining
  // 2f+1 shares is one constant-size object.
  std::size_t size4 = 0, size31 = 0, size100 = 0;
  {
    auto sys = crypto::CryptoSystem::deal(QuorumParams::for_n(4), 1);
    size4 = encoded_size(make_qc(*sys, 1));
  }
  {
    auto sys = crypto::CryptoSystem::deal(QuorumParams::for_n(31), 2);
    size31 = encoded_size(make_qc(*sys, 1));
  }
  {
    auto sys = crypto::CryptoSystem::deal(QuorumParams::for_n(100), 3);
    size100 = encoded_size(make_qc(*sys, 1));
  }
  EXPECT_EQ(size4, size31);
  EXPECT_EQ(size31, size100);
  EXPECT_LE(size4, 80u);  // kind + id + numbers + one threshold sig
}

TEST(WireSizes, VoteIsConstantSize) {
  auto sys = crypto::CryptoSystem::deal(QuorumParams::for_n(31), 4);
  VoteMsg vote{genesis_id(), 5, 0, sys->quorum_sigs.sign_share(7, Bytes{1})};
  const Bytes wire = encode_message(Message{vote});
  EXPECT_LE(wire.size(), 80u);
}

TEST(WireSizes, EmptyProposalOverheadIsBounded) {
  auto sys = crypto::CryptoSystem::deal(QuorumParams::for_n(31), 5);
  const Certificate qc = make_qc(*sys, 1);
  Block b = Block::make(qc, 2, 0, 0, 0, Bytes{});
  Message msg = ProposalMsg{std::move(b), std::nullopt, {}, {}};
  sign_message(*sys, 0, msg);
  // Tag + block (id + parent cert + numbers) + flags + signature.
  EXPECT_LE(encode_message(msg).size(), 220u);
}

TEST(WireSizes, ProposalScalesOnlyWithPayload) {
  auto sys = crypto::CryptoSystem::deal(QuorumParams::for_n(4), 6);
  const Certificate qc = make_qc(*sys, 1);
  auto size_for = [&](std::size_t payload) {
    Block b = Block::make(qc, 2, 0, 0, 0, Bytes(payload, 0x7));
    Message msg = ProposalMsg{std::move(b), std::nullopt, {}, {}};
    sign_message(*sys, 0, msg);
    return encode_message(msg).size();
  };
  const std::size_t s0 = size_for(0);
  const std::size_t s1k = size_for(1024);
  EXPECT_EQ(s1k - s0, 1024u);  // byte-for-byte: no payload re-encoding blowup
}

TEST(WireSizes, TimeoutMessageConstantSize) {
  auto sys = crypto::CryptoSystem::deal(QuorumParams::for_n(31), 7);
  FbTimeoutMsg m;
  m.view = 3;
  m.view_share = sys->quorum_sigs.sign_share(2, ftc_signing_message(3));
  m.qc_high = make_qc(*sys, 9);
  Message msg = m;
  sign_message(*sys, 2, msg);
  EXPECT_LE(encode_message(msg).size(), 180u);
}

TEST(WireSizes, MeasuredSyncTrafficMatchesLinearModel) {
  // End-to-end: with empty batches, per-decision bytes are ~2(n-1) small
  // constant-size messages, i.e. linear in n with a small constant.
  for (std::uint32_t n : {4u, 13u}) {
    harness::ExperimentConfig cfg;
    cfg.n = n;
    cfg.protocol = harness::Protocol::kFallback3;
    cfg.seed = 8;
    harness::Experiment exp(cfg);
    exp.start();
    ASSERT_TRUE(exp.run_until_commits(40, 2'000'000'000ull));
    const double bytes_per_decision =
        double(exp.network().stats().bytes) / exp.min_honest_commits();
    // proposal (~210B) + vote (~60B) per replica-pair, with slack for
    // block fetches and rotation-boundary effects.
    EXPECT_LT(bytes_per_decision, 400.0 * (n - 1)) << "n=" << n;
  }
}

}  // namespace
}  // namespace repro::smr
