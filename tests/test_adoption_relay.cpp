// Scale-out fallback optimizations (DESIGN.md §13): the strict
// higher-position adoption rule, certificate relay, and their safety
// properties under Byzantine certificate forgery — plus the seeded
// determinism pins that hold the flags-off behaviour byte-identical to
// the pre-optimization releases.
#include <gtest/gtest.h>

#include <string>

#include "common/bytes.h"
#include "core/fallback.h"
#include "crypto/sha256.h"
#include "harness/experiment.h"

namespace repro::harness {
namespace {

ExperimentConfig ace_config(std::uint32_t n, std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.n = n;
  cfg.protocol = Protocol::kAlwaysFallback;
  cfg.scenario = NetScenario::kSynchronous;
  cfg.seed = seed;
  return cfg;
}

/// Lemma 2 / Theorem 6 structural invariants on every honest ledger (same
/// checks as test_fallback.cpp, kept local so this file stands alone).
void check_chain_invariants(Experiment& exp) {
  for (ReplicaId id = 0; id < exp.n(); ++id) {
    if (!exp.is_honest(id)) continue;
    const auto& base = dynamic_cast<const core::ReplicaBase&>(exp.replica(id));
    const auto& recs = exp.replica(id).ledger().records();
    for (std::size_t i = 0; i < recs.size(); ++i) {
      const smr::Block* b = base.store().get(recs[i].id);
      ASSERT_NE(b, nullptr);
      if (i == 0) {
        EXPECT_EQ(b->parent.block_id, smr::genesis_id());
      } else {
        EXPECT_EQ(b->parent.block_id, recs[i - 1].id) << "replica " << id << " pos " << i;
        EXPECT_EQ(b->round, recs[i - 1].round + 1) << "Lemma 2: consecutive rounds";
        EXPECT_GE(b->view, recs[i - 1].view) << "Lemma 2: nondecreasing views";
      }
    }
  }
}

std::string trace_hash(const Experiment& exp) {
  const std::string ndjson = exp.traces_ndjson();
  const BytesView view{reinterpret_cast<const std::uint8_t*>(ndjson.data()), ndjson.size()};
  return to_hex(crypto::sha256(view));
}

// ---- Byzantine adoption: forged / equivocating f-QCs --------------------------

// f forgers advertise fabricated f-QCs (invalid threshold signatures over
// invented blocks, equivocating per recipient half) on every fallback
// entry. Honest replicas must reject every one of them at the cached
// verify, charge the blame to the authenticated sender, never adopt the
// fake positions — and keep committing with full safety.
TEST(ByzantineAdoption, ForgedFbQcsAreRejectedAndBlamed) {
  ExperimentConfig cfg = ace_config(7, 11);
  cfg.faults[5] = core::FaultKind::kForgeFbQc;
  cfg.faults[6] = core::FaultKind::kForgeFbQc;
  Experiment exp(cfg);
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(10, 600'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
  check_chain_invariants(exp);

  std::uint64_t rejected = 0;
  for (ReplicaId id = 0; id < exp.n(); ++id) {
    if (!exp.is_honest(id)) continue;
    rejected += exp.replica(id).stats().bad_certs_rejected;
    const auto& base = dynamic_cast<const core::ReplicaBase&>(exp.replica(id));
    const auto& blame = base.cert_blame();
    // Blame lands on the forgers and nowhere else: honest senders only
    // relay certificates that passed their own verification first.
    std::uint64_t honest_blamed = 0;
    for (std::size_t from = 0; from < blame.size(); ++from) {
      if (exp.is_honest(static_cast<ReplicaId>(from))) honest_blamed += blame[from];
    }
    EXPECT_EQ(honest_blamed, 0u) << "replica " << id << " blamed an honest sender";
  }
  EXPECT_GT(rejected, 0u) << "no forged certificate ever reached an honest replica";
}

// A forged f-QC must never move the adoption frontier: positions only a
// forger advertised stay unadopted, so every honest replica's chain keeps
// the strict-adoption leader-purity that the commit rule needs.
TEST(ByzantineAdoption, ForgedCertsNeverEnterTheFrontier) {
  ExperimentConfig cfg = ace_config(4, 3);
  cfg.faults[3] = core::FaultKind::kForgeFbQc;
  Experiment exp(cfg);
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(6, 600'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
  for (ReplicaId id = 0; id < exp.n(); ++id) {
    if (!exp.is_honest(id)) continue;
    const auto& fb = dynamic_cast<const core::FallbackReplica&>(exp.replica(id));
    // The forged chains sit at heights 1-2 with fabricated rounds; any
    // frontier entry must carry a certificate that verified, i.e. one of
    // the real chains' — heights never exceed the protocol's chain_len.
    EXPECT_LE(fb.frontier().height(), fb.fallback_params().chain_len);
  }
}

// ---- adoption on/off: both modes are safe and live ----------------------------

TEST(AdoptionModes, StrictAndSeedAdoptionBothCommitWithPrefixAgreement) {
  for (bool strict : {true, false}) {
    ExperimentConfig cfg = ace_config(7, 21);
    cfg.pcfg.fb_adopt = strict;
    Experiment exp(cfg);
    exp.start();
    ASSERT_TRUE(exp.run_until_commits(12, 600'000'000)) << "fb_adopt=" << strict;
    EXPECT_TRUE(exp.check_safety().ok) << "fb_adopt=" << strict;
    check_chain_invariants(exp);
  }
}

// ---- certificate relay: reduction smoke ---------------------------------------

// Above the relayer floor (n > 8) the designated-relayer rule must
// actually suppress coin-QC re-multicasts, with no safety cost; below or
// with the flag off, the counters stay zero (seed behaviour).
TEST(CertRelay, SuppressesCoinRelaysAboveTheFloor) {
  std::uint64_t suppressed_on = 0;
  for (bool relay : {true, false}) {
    ExperimentConfig cfg = ace_config(16, 1);
    cfg.pcfg.cert_relay = relay;
    Experiment exp(cfg);
    exp.start();
    ASSERT_TRUE(exp.run_until_commits(5, 600'000'000)) << "cert_relay=" << relay;
    EXPECT_TRUE(exp.check_safety().ok);
    std::uint64_t suppressed = 0;
    for (ReplicaId id = 0; id < exp.n(); ++id) {
      suppressed += exp.replica(id).stats().coin_relays_suppressed;
    }
    if (relay) {
      suppressed_on = suppressed;
    } else {
      EXPECT_EQ(suppressed, 0u) << "flags off must not suppress anything";
    }
  }
  EXPECT_GT(suppressed_on, 0u) << "designated relayers never engaged at n=16";
}

TEST(CertRelay, InertAtOrBelowTheRelayerFloor) {
  // n=7 <= kMinCoinRelayers: every replica is a designated relayer and
  // both suppressions are gated off, so the counters must stay zero even
  // with the flag on.
  Experiment exp(ace_config(7, 2));
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(8, 600'000'000));
  for (ReplicaId id = 0; id < exp.n(); ++id) {
    EXPECT_EQ(exp.replica(id).stats().coin_relays_suppressed, 0u);
    EXPECT_EQ(exp.replica(id).stats().fb_votes_thinned, 0u);
    EXPECT_EQ(exp.replica(id).stats().coin_shares_suppressed, 0u);
  }
}

// ---- seeded determinism pins --------------------------------------------------

// With both flags off, the protocol must be byte-identical to the
// pre-optimization releases: same proposals, same certificates, same
// commit timestamps, same trace stream. The golden hashes below were
// recorded from the seed tree (equivalently: this tree with fb_adopt =
// cert_relay = false), over bftlab's exact configurations:
//
//   bftlab --protocol ace --net sync --n 7 --seed 42 --commits 20
//          --no-adopt --no-relay --trace-out pin.ndjson
//   bftlab --protocol fallback3adopt --net psync --n 7 --seed 7
//          --commits 30 --no-adopt --no-relay --trace-out pin.ndjson
//
// A hash change here means the flags-off path is no longer the seed
// protocol — a silent behavioural change the differential benchmarks
// would then be blind to.
TEST(DeterminismPin, FlagsOffAceTraceIsByteIdentical) {
  ExperimentConfig cfg = ace_config(7, 42);
  cfg.pcfg.fb_adopt = false;
  cfg.pcfg.cert_relay = false;
  cfg.trace_capacity = 1 << 16;  // bftlab's --trace-out ring size
  Experiment exp(cfg);
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(20, 600'000'000));
  EXPECT_EQ(trace_hash(exp),
            "8a03ae45e06c8f993a8aded09135e48d605215a1d9c240c46244977912c42f2a");
}

TEST(DeterminismPin, FlagsOffFallbackAdoptTraceIsByteIdentical) {
  ExperimentConfig cfg;
  cfg.n = 7;
  cfg.protocol = Protocol::kFallback3Adopt;
  cfg.scenario = NetScenario::kPartialSynchrony;
  cfg.seed = 7;
  cfg.pcfg.fb_adopt = false;
  cfg.pcfg.cert_relay = false;
  cfg.trace_capacity = 1 << 16;
  Experiment exp(cfg);
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(30, 600'000'000));
  EXPECT_EQ(trace_hash(exp),
            "7970de19efc07c5a346d784c7289bd4f6fb4a0d10966d843274b50b0e6d63ad1");
}

}  // namespace
}  // namespace repro::harness
