// Unit tests for the combine-then-verify share accumulators
// (smr/share_accumulator.h) — the optimistic quorum-assembly layer under
// every vote/timeout/coin-share pool.
#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/rng.h"
#include "crypto/threshold.h"
#include "smr/share_accumulator.h"

using namespace repro;
using namespace repro::smr;

namespace {

Bytes str_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

class ShareAccumulatorTest : public ::testing::Test {
 protected:
  ShareAccumulatorTest() : rng_(77), scheme_(crypto::ThresholdScheme::deal(7, 5, rng_)) {}

  ShareEnv env(bool lazy = true) { return ShareEnv{&scheme_, &lagrange_, &stats_, lazy}; }

  crypto::PartialSig share_of(ReplicaId i) { return scheme_.sign_share(i, msg_); }

  crypto::PartialSig bad_share_of(ReplicaId i) {
    auto s = share_of(i);
    s.value ^= 1;
    return s;
  }

  Rng rng_;
  crypto::ThresholdScheme scheme_;
  crypto::LagrangeCache lagrange_;
  ShareStats stats_;
  const Bytes msg_ = str_bytes("target message");
};

TEST_F(ShareAccumulatorTest, OptimisticPathFormsAtThresholdWithoutShareVerifies) {
  ShareAccumulator acc(scheme_, msg_);
  for (ReplicaId i = 0; i < 4; ++i) {
    EXPECT_FALSE(acc.add(env(), share_of(i)).has_value());
  }
  const auto sig = acc.add(env(), share_of(4));
  ASSERT_TRUE(sig.has_value());
  EXPECT_TRUE(scheme_.verify(*sig, msg_));
  EXPECT_TRUE(acc.done());
  EXPECT_EQ(stats_.shares_verified, 0u);  // no per-share check on the honest path
  EXPECT_EQ(stats_.shares_deferred, 5u);
  EXPECT_EQ(stats_.combines_optimistic, 1u);
  EXPECT_EQ(stats_.combine_fallbacks, 0u);
}

TEST_F(ShareAccumulatorTest, LazySignatureEqualsEagerSignature) {
  ShareAccumulator lazy_acc(scheme_, msg_);
  ShareAccumulator eager_acc(scheme_, msg_);
  std::optional<crypto::ThresholdSig> lazy_sig, eager_sig;
  for (ReplicaId i = 0; i < 5; ++i) {
    lazy_sig = lazy_acc.add(env(true), share_of(i));
    eager_sig = eager_acc.add(env(false), share_of(i));
  }
  ASSERT_TRUE(lazy_sig && eager_sig);
  EXPECT_EQ(lazy_sig->value, eager_sig->value);
}

TEST_F(ShareAccumulatorTest, BadShareTriggersFallbackEvictionAndRecovers) {
  ShareAccumulator acc(scheme_, msg_);
  EXPECT_FALSE(acc.add(env(), bad_share_of(0)).has_value());  // buffered unverified
  for (ReplicaId i = 1; i < 4; ++i) {
    EXPECT_FALSE(acc.add(env(), share_of(i)).has_value());
  }
  // 5th distinct signer reaches threshold; the optimistic combine fails,
  // the per-share pass evicts signer 0 and the accumulator drops back
  // below threshold.
  EXPECT_FALSE(acc.add(env(), share_of(4)).has_value());
  EXPECT_EQ(stats_.combine_fallbacks, 1u);
  EXPECT_EQ(stats_.bad_shares_rejected, 1u);
  EXPECT_EQ(acc.count(), 4u);
  ASSERT_GT(stats_.blame.size(), 0u);
  EXPECT_EQ(stats_.blame[0], 1u);
  // The next valid share completes the certificate.
  const auto sig = acc.add(env(), share_of(5));
  ASSERT_TRUE(sig.has_value());
  EXPECT_TRUE(scheme_.verify(*sig, msg_));
}

TEST_F(ShareAccumulatorTest, BannedSignerStaysBannedAfterEviction) {
  ShareAccumulator acc(scheme_, msg_);
  acc.add(env(), bad_share_of(0));
  for (ReplicaId i = 1; i < 5; ++i) acc.add(env(), share_of(i));  // fallback evicts 0
  EXPECT_EQ(stats_.bad_shares_rejected, 1u);
  // A now-VALID share from the banned signer is refused: admitting it
  // would let a Byzantine replica force one combine fallback per share.
  EXPECT_FALSE(acc.add(env(), share_of(0)).has_value());
  EXPECT_EQ(acc.count(), 4u);
  const auto sig = acc.add(env(), share_of(5));
  ASSERT_TRUE(sig.has_value());
}

TEST_F(ShareAccumulatorTest, EagerModeRejectsAndBansAtAdmission) {
  ShareAccumulator acc(scheme_, msg_);
  EXPECT_FALSE(acc.add(env(false), bad_share_of(0)).has_value());
  EXPECT_EQ(stats_.bad_shares_rejected, 1u);
  EXPECT_EQ(acc.count(), 0u);
  // Banned exactly like the lazy fallback pass would: later valid shares
  // from the same signer are dropped, keeping both modes byte-identical.
  EXPECT_FALSE(acc.add(env(false), share_of(0)).has_value());
  EXPECT_EQ(acc.count(), 0u);
  std::optional<crypto::ThresholdSig> sig;
  for (ReplicaId i = 1; i < 6; ++i) sig = acc.add(env(false), share_of(i));
  ASSERT_TRUE(sig.has_value());
  EXPECT_EQ(stats_.combines_optimistic, 0u);  // all-verified combine skips the check
}

TEST_F(ShareAccumulatorTest, DuplicateAndOutOfRangeSignersRejected) {
  ShareAccumulator acc(scheme_, msg_);
  EXPECT_FALSE(acc.add(env(), share_of(2)).has_value());
  EXPECT_FALSE(acc.add(env(), share_of(2)).has_value());  // duplicate
  EXPECT_EQ(acc.count(), 1u);
  crypto::PartialSig oor = share_of(2);
  oor.signer = 7;  // n = 7, ids are 0..6
  EXPECT_FALSE(acc.add(env(), oor).has_value());
  EXPECT_EQ(acc.count(), 1u);
}

TEST_F(ShareAccumulatorTest, DoneAccumulatorIgnoresFurtherShares) {
  ShareAccumulator acc(scheme_, msg_);
  std::optional<crypto::ThresholdSig> sig;
  for (ReplicaId i = 0; i < 5; ++i) sig = acc.add(env(), share_of(i));
  ASSERT_TRUE(sig.has_value());
  // The certificate is handed out exactly once; extra shares are no-ops.
  EXPECT_FALSE(acc.add(env(), share_of(5)).has_value());
  EXPECT_TRUE(acc.done());
}

TEST_F(ShareAccumulatorTest, AllBadSharesNeverFormCertificate) {
  ShareAccumulator acc(scheme_, msg_);
  for (ReplicaId i = 0; i < 7; ++i) {
    EXPECT_FALSE(acc.add(env(), bad_share_of(i)).has_value());
  }
  EXPECT_FALSE(acc.done());
  // The add reaching threshold (5th) triggered one fallback pass that
  // evicted all five buffered shares; the last two sit buffered below
  // threshold and can never complete a quorum (only 2 unbanned signers).
  EXPECT_EQ(stats_.combine_fallbacks, 1u);
  EXPECT_EQ(stats_.bad_shares_rejected, 5u);
  EXPECT_EQ(acc.count(), 2u);
}

TEST(SharePool, KeysIsolateTargetsAndEraseIfPrunes) {
  Rng rng(9);
  auto scheme = crypto::ThresholdScheme::deal(4, 3, rng);
  crypto::LagrangeCache lagrange;
  ShareStats stats;
  const ShareEnv env{&scheme, &lagrange, &stats, true};
  SharePool<std::uint64_t> pool;

  auto msg_for = [](std::uint64_t key) { return str_bytes("round " + std::to_string(key)); };
  for (std::uint64_t round : {1ull, 2ull, 3ull}) {
    for (ReplicaId i = 0; i < 2; ++i) {
      EXPECT_FALSE(pool.add(env, round, scheme.sign_share(i, msg_for(round)),
                            [&] { return msg_for(round); })
                       .has_value());
    }
    EXPECT_EQ(pool.count(round), 2u);
  }
  EXPECT_EQ(pool.size(), 3u);
  // Completing round 2 does not touch rounds 1 and 3.
  const auto sig = pool.add(env, 2, scheme.sign_share(2, msg_for(2)), [&] { return msg_for(2); });
  ASSERT_TRUE(sig.has_value());
  EXPECT_TRUE(pool.formed(2));
  EXPECT_FALSE(pool.formed(1));
  // Prune everything below round 3.
  pool.erase_if([](std::uint64_t key) { return key < 3; });
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.count(3), 2u);
  EXPECT_EQ(pool.count(1), 0u);
}

}  // namespace
