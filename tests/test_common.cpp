// Unit tests for the common substrate: hex, codec, RNG.
#include <gtest/gtest.h>

#include <map>

#include "common/bytes.h"
#include "common/codec.h"
#include "common/config_file.h"
#include "common/rng.h"

namespace repro {
namespace {

// ---- hex ------------------------------------------------------------------

TEST(Hex, RoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(data), "0001abff");
  EXPECT_EQ(from_hex("0001abff"), data);
}

TEST(Hex, AcceptsUppercase) {
  EXPECT_EQ(from_hex("ABFF"), (Bytes{0xab, 0xff}));
}

TEST(Hex, RejectsOddLength) { EXPECT_TRUE(from_hex("abc").empty()); }

TEST(Hex, RejectsNonHexChars) { EXPECT_TRUE(from_hex("zz").empty()); }

TEST(Hex, EmptyIsEmpty) {
  EXPECT_EQ(to_hex(BytesView{}), "");
  EXPECT_TRUE(from_hex("").empty());
}

// ---- codec ------------------------------------------------------------------

TEST(Codec, ScalarRoundTrip) {
  Encoder enc;
  enc.u8(0xab);
  enc.u32(0xdeadbeef);
  enc.u64(0x0123456789abcdefull);
  enc.bool_(true);
  enc.bool_(false);

  Decoder dec(enc.result());
  EXPECT_EQ(dec.u8(), 0xab);
  EXPECT_EQ(dec.u32(), 0xdeadbeefu);
  EXPECT_EQ(dec.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(dec.bool_(), true);
  EXPECT_EQ(dec.bool_(), false);
  EXPECT_TRUE(dec.done());
}

TEST(Codec, BytesAndStringsRoundTrip) {
  Encoder enc;
  enc.bytes(Bytes{1, 2, 3});
  enc.str("hello");
  enc.bytes(Bytes{});

  Decoder dec(enc.result());
  EXPECT_EQ(dec.bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(dec.str(), "hello");
  EXPECT_EQ(dec.bytes(), Bytes{});
  EXPECT_TRUE(dec.done());
}

TEST(Codec, BoolDecodingIsStrict) {
  // Canonical wire format: only 0x00/0x01 decode as bool (found by the
  // mutation fuzzer — permissive bools break encoding uniqueness).
  EXPECT_EQ(Decoder(Bytes{0}).bool_(), false);
  EXPECT_EQ(Decoder(Bytes{1}).bool_(), true);
  EXPECT_FALSE(Decoder(Bytes{2}).bool_().has_value());
  EXPECT_FALSE(Decoder(Bytes{0x40}).bool_().has_value());
}

TEST(Codec, TruncationReturnsNullopt) {
  Encoder enc;
  enc.u64(42);
  Bytes data = enc.result();
  data.resize(4);
  Decoder dec(data);
  EXPECT_FALSE(dec.u64().has_value());
}

TEST(Codec, ByteLengthPrefixBeyondBufferRejected) {
  Encoder enc;
  enc.u32(1000);  // claims 1000 bytes follow
  Decoder dec(enc.result());
  EXPECT_FALSE(dec.bytes().has_value());
}

TEST(Codec, RawReadsExactCount) {
  Encoder enc;
  enc.raw(Bytes{9, 8, 7});
  Decoder dec(enc.result());
  EXPECT_EQ(dec.raw(3), (Bytes{9, 8, 7}));
  EXPECT_FALSE(dec.raw(1).has_value());
}

TEST(Codec, LittleEndianLayout) {
  Encoder enc;
  enc.u32(0x01020304);
  EXPECT_EQ(enc.result(), (Bytes{0x04, 0x03, 0x02, 0x01}));
}

// ---- rng --------------------------------------------------------------------

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(7), 7u);
}

TEST(Rng, UniformZeroBoundYieldsZero) {
  // An empty range must not divide by zero — chaos-schedule generators
  // draw from ranges that can legitimately be empty.
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(0), 0u);
  EXPECT_EQ(rng.uniform_range(4, 4), 4u);  // degenerate-but-nonempty still works
}

TEST(Rng, UniformCoversRange) {
  Rng rng(6);
  std::map<std::uint64_t, int> hist;
  for (int i = 0; i < 7000; ++i) hist[rng.uniform(7)]++;
  EXPECT_EQ(hist.size(), 7u);
  for (const auto& [v, c] : hist) EXPECT_GT(c, 500) << "value " << v;
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialHasRoughlyRightMean) {
  Rng rng(9);
  double sum = 0;
  const int k = 100000;
  for (int i = 0; i < k; ++i) sum += rng.exponential(250.0);
  const double mean = sum / k;
  EXPECT_GT(mean, 240.0);
  EXPECT_LT(mean, 260.0);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng base(10);
  Rng a = base.fork(1);
  Rng b = base.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}


// ---- config files -------------------------------------------------------

TEST(ConfigFile, ParsesKeysCommentsAndRepeats) {
  const char* text =
      "# cluster\n"
      "id = 3\n"
      "; semicolon comment\n"
      "peer = 127.0.0.1:9000\n"
      "peer = 127.0.0.1:9001\n"
      "\n"
      "name = node three\n";
  auto cfg = ConfigFile::parse(text);
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->get_int("id", -1), 3);
  EXPECT_EQ(cfg->get_all("peer").size(), 2u);
  EXPECT_EQ(cfg->get_str("name", ""), "node three");
  EXPECT_FALSE(cfg->has("missing"));
  EXPECT_EQ(cfg->get_int("missing", 42), 42);
}

TEST(ConfigFile, LastValueWinsForScalars) {
  auto cfg = ConfigFile::parse("x = 1\nx = 2\n");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->get_int("x", 0), 2);
  EXPECT_EQ(cfg->get_all("x").size(), 2u);
}

TEST(ConfigFile, BoolParsing) {
  auto cfg = ConfigFile::parse("a = true\nb = off\nc = banana\n");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_TRUE(cfg->get_bool("a", false));
  EXPECT_FALSE(cfg->get_bool("b", true));
  EXPECT_TRUE(cfg->get_bool("c", true));  // unparseable -> fallback
}

TEST(ConfigFile, MalformedLineRejectedWithError) {
  std::string error;
  EXPECT_FALSE(ConfigFile::parse("just words\n", &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_FALSE(ConfigFile::parse("= value\n").has_value());
}

TEST(ConfigFile, NonIntegerFallsBack) {
  auto cfg = ConfigFile::parse("x = 12abc\n");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->get_int("x", 7), 7);
}

TEST(HostPort, ParsesValidAddresses) {
  auto hp = parse_host_port("127.0.0.1:9000");
  ASSERT_TRUE(hp.has_value());
  EXPECT_EQ(hp->host, "127.0.0.1");
  EXPECT_EQ(hp->port, 9000);
  EXPECT_TRUE(parse_host_port("example.com:1").has_value());
}

TEST(HostPort, RejectsMalformedAddresses) {
  EXPECT_FALSE(parse_host_port("nohost").has_value());
  EXPECT_FALSE(parse_host_port(":123").has_value());
  EXPECT_FALSE(parse_host_port("h:").has_value());
  EXPECT_FALSE(parse_host_port("h:0").has_value());
  EXPECT_FALSE(parse_host_port("h:70000").has_value());
  EXPECT_FALSE(parse_host_port("h:12x").has_value());
}

}  // namespace
}  // namespace repro
