// WAL unit tests (framing, checksums, torn-tail recovery) and
// crash-recovery integration: restarted replicas rejoin from durable vote
// state without ever equivocating, and catch up on the chain.
#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>

#include "harness/experiment.h"
#include "harness/invariants.h"
#include "storage/wal.h"

namespace repro {
namespace {

using harness::Experiment;
using harness::ExperimentConfig;
using harness::NetScenario;
using harness::Protocol;

// ---- MemWal -----------------------------------------------------------------

TEST(MemWal, AppendReplayRoundTrip) {
  storage::MemWal wal;
  wal.append(Bytes{1, 2, 3});
  wal.append(Bytes{});
  wal.append(Bytes{9});
  const auto records = wal.replay();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], (Bytes{1, 2, 3}));
  EXPECT_TRUE(records[1].empty());
  EXPECT_EQ(records[2], (Bytes{9}));
}

// ---- FileWal ----------------------------------------------------------------

class FileWalTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "wal_test_" +
                      std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".log";

  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(FileWalTest, PersistsAcrossReopen) {
  {
    storage::FileWal wal(path_);
    wal.append(Bytes{1, 2});
    wal.append(Bytes{3, 4, 5});
  }
  storage::FileWal wal2(path_);
  const auto records = wal2.replay();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1], (Bytes{3, 4, 5}));
  wal2.append(Bytes{6});
  EXPECT_EQ(wal2.record_count(), 3u);
}

TEST_F(FileWalTest, TornTailIsDropped) {
  {
    storage::FileWal wal(path_);
    wal.append(Bytes{1, 2});
    wal.append(Bytes{3, 4});
  }
  // Truncate mid-record: chop the last 3 bytes.
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(0, truncate(path_.c_str(), size - 3));

  storage::FileWal wal(path_);
  const auto records = wal.replay();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], (Bytes{1, 2}));
}

TEST_F(FileWalTest, CorruptedRecordStopsReplay) {
  {
    storage::FileWal wal(path_);
    wal.append(Bytes{1, 2, 3, 4});
    wal.append(Bytes{5, 6, 7, 8});
  }
  // Flip a byte inside the first record's body.
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 9, SEEK_SET);  // 8-byte header + second body byte
  std::fputc(0xEE, f);
  std::fclose(f);

  storage::FileWal wal(path_);
  EXPECT_TRUE(wal.replay().empty());  // conservative stop at corruption
}

TEST_F(FileWalTest, EmptyFileReplaysEmpty) {
  storage::FileWal wal(path_);
  EXPECT_TRUE(wal.replay().empty());
}

// ---- crash-recovery integration ------------------------------------------------

ExperimentConfig recovery_config(Protocol p, std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.n = 4;
  cfg.protocol = p;
  cfg.seed = seed;
  cfg.enable_wal = true;
  return cfg;
}

TEST(CrashRecovery, RestartedReplicaRejoinsAndCatchesUp) {
  Experiment exp(recovery_config(Protocol::kFallback3, 21));
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(10, 60'000'000));

  exp.restart_replica(2);
  const auto& fresh = dynamic_cast<const core::ReplicaBase&>(exp.replica(2));
  EXPECT_TRUE(fresh.recovered());
  EXPECT_EQ(fresh.ledger().size(), 0u);  // chain state is not logged...

  ASSERT_TRUE(exp.run_until_commits(40, 400'000'000));  // ...but rebuilds
  EXPECT_GE(exp.replica(2).ledger().size(), 40u);
  EXPECT_TRUE(exp.check_safety().ok);
}

TEST(CrashRecovery, VoteStateSurvivesRestart) {
  Experiment exp(recovery_config(Protocol::kFallback3, 22));
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(8, 60'000'000));
  const auto& before = dynamic_cast<const core::ReplicaBase&>(exp.replica(1));
  const Round r_vote_before = before.r_vote();
  const smr::Rank lock_before = before.rank_lock();
  ASSERT_GT(r_vote_before, 0u);

  exp.restart_replica(1);
  const auto& after = dynamic_cast<const core::ReplicaBase&>(exp.replica(1));
  EXPECT_EQ(after.r_vote(), r_vote_before);
  EXPECT_EQ(after.rank_lock(), lock_before);
}

TEST(CrashRecovery, RepeatedRestartsStaySafeAndLive) {
  Experiment exp(recovery_config(Protocol::kFallback3, 23));
  exp.start();
  for (int round = 0; round < 6; ++round) {
    ASSERT_TRUE(exp.run_until_commits(5 * (round + 1), 600'000'000)) << round;
    exp.restart_replica(static_cast<ReplicaId>(round % 4));
  }
  ASSERT_TRUE(exp.run_until_commits(40, 600'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
  const auto rep = harness::check_invariants(exp);
  EXPECT_TRUE(rep.ok) << (rep.violations.empty() ? "" : rep.violations.front());
}

TEST(CrashRecovery, RestartDuringAsynchronyIsSafe) {
  auto cfg = recovery_config(Protocol::kFallback3, 24);
  cfg.scenario = NetScenario::kAsynchronous;
  Experiment exp(cfg);
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(2, 4'000'000'000ull));
  exp.restart_replica(0);  // quite possibly mid-fallback
  exp.restart_replica(3);
  ASSERT_TRUE(exp.run_until_commits(6, 8'000'000'000ull));
  EXPECT_TRUE(exp.check_safety().ok);
}

TEST(CrashRecovery, DiemBftRecoversToo) {
  Experiment exp(recovery_config(Protocol::kDiemBft, 25));
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(10, 60'000'000));
  exp.restart_replica(2);
  ASSERT_TRUE(exp.run_until_commits(30, 400'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
}

TEST(CrashRecovery, TwoChainVariantRecoversToo) {
  Experiment exp(recovery_config(Protocol::kFallback2, 26));
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(10, 60'000'000));
  exp.restart_replica(1);
  ASSERT_TRUE(exp.run_until_commits(30, 400'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
}

TEST(CrashRecovery, RestartWithoutWalIsARecoverableError) {
  // Without a WAL a restart would be an amnesia crash, which the
  // durability story does not cover. The harness must refuse — returning
  // false so generated chaos schedules can skip the event — rather than
  // aborting the process.
  ExperimentConfig cfg;
  cfg.n = 4;
  cfg.protocol = Protocol::kFallback3;
  cfg.seed = 28;
  Experiment exp(cfg);
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(5, 60'000'000));
  EXPECT_FALSE(exp.restart_replica(1));
  EXPECT_FALSE(exp.restart_replica(99));  // out-of-range id likewise refused
  // The refused restart must leave the run undisturbed.
  ASSERT_TRUE(exp.run_until_commits(10, 60'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
}

TEST(CrashRecovery, CrashDuringBatchRecoveryResumesPulls) {
  // Batch-reference blocks park in waiting_batch_ until their payload
  // arrives; that waiter set is part of the WAL snapshot, so a replica
  // that crashes mid-recovery re-issues the pulls immediately on restart
  // instead of stalling until some later proposal references the batch.
  auto cfg = recovery_config(Protocol::kFallback3, 29);
  cfg.pcfg.batch_bytes = 512;       // > batch_ref_min_bytes -> reference blocks
  cfg.pcfg.batch_announce = false;  // force every payload through the pull path
  Experiment exp(cfg);
  exp.start();
  const auto& victim = dynamic_cast<const core::ReplicaBase&>(exp.replica(2));
  bool caught = false;
  for (int i = 0; i < 200'000 && !caught; ++i) {
    if (!exp.sim().step()) break;
    caught = !victim.unresolved_batch_refs().empty();
  }
  ASSERT_TRUE(caught);  // crash it while a batch pull is in flight

  exp.restart_replica(2);
  const auto& fresh = dynamic_cast<const core::ReplicaBase&>(exp.replica(2));
  EXPECT_TRUE(fresh.recovered());
  // Recovery already re-requested the parked block and re-pulled its
  // batch (the batch store is in-memory and died with the instance).
  EXPECT_GE(fresh.stats().batches_pulled + fresh.stats().blocks_fetched, 1u);

  ASSERT_TRUE(exp.run_until_commits(20, 400'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
  const auto rep = harness::check_invariants(exp);
  EXPECT_TRUE(rep.ok) << (rep.violations.empty() ? "" : rep.violations.front());
}

TEST(CrashRecovery, HaltedInstanceIsSilent) {
  Experiment exp(recovery_config(Protocol::kFallback3, 27));
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(5, 60'000'000));
  auto& old_ref = exp.replica(0);
  exp.restart_replica(0);
  // Feeding the halted instance directly must be a no-op.
  old_ref.on_message(1, Bytes{1, 2, 3});
  ASSERT_TRUE(exp.run_until_commits(15, 200'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
}

}  // namespace
}  // namespace repro
