// Real-network integration: the same replica code that runs in the
// simulator runs over localhost TCP on the wall clock — commits blocks,
// stays prefix-consistent, and tolerates a node crash + rejoin.
//
// These tests use real time and real sockets; they are kept short (a few
// hundred milliseconds each) and use pid-derived ports to avoid clashes.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include "core/fallback.h"
#include "transport/node.h"

namespace repro::transport {
namespace {

std::uint16_t base_port() {
  // Spread across runs; stay above the ephemeral floor most systems use.
  return static_cast<std::uint16_t>(21000 + (::getpid() * 37) % 20000);
}

ReplicaFactory fallback_factory(core::FallbackParams fb = {}) {
  return [fb](const core::ReplicaContext& ctx) {
    return std::make_unique<core::FallbackReplica>(ctx, fb);
  };
}

struct Cluster {
  std::vector<PeerAddress> peers;
  std::shared_ptr<const crypto::CryptoSystem> crypto;
  std::vector<std::unique_ptr<storage::FileWal>> wals;
  std::vector<std::unique_ptr<TcpNode>> nodes;

  Cluster(std::uint32_t n, std::uint16_t port0, bool with_wal = false,
          std::size_t verify_threads = 0) {
    crypto = crypto::CryptoSystem::deal(QuorumParams::for_n(n), 99);
    for (std::uint32_t i = 0; i < n; ++i) {
      peers.push_back(PeerAddress{"127.0.0.1", static_cast<std::uint16_t>(port0 + i)});
    }
    for (ReplicaId i = 0; i < n; ++i) {
      NodeConfig cfg;
      cfg.id = i;
      cfg.peers = peers;
      cfg.crypto = crypto;
      cfg.seed = 1000 + i;
      cfg.pcfg.base_timeout_us = 200'000;
      cfg.verify_threads = verify_threads;
      if (with_wal) {
        wals.push_back(std::make_unique<storage::FileWal>(
            ::testing::TempDir() + "tcp_wal_" + std::to_string(port0 + i) + ".log"));
        cfg.wal = wals.back().get();
      }
      nodes.push_back(std::make_unique<TcpNode>(cfg, fallback_factory()));
    }
  }

  ~Cluster() {
    stop_all();
    for (auto& w : wals) std::remove(w->path().c_str());
  }

  void start_all() {
    for (auto& n : nodes) n->start();
  }

  void stop_all() {
    for (auto& n : nodes) n->stop();
  }

  /// Real-time wait until every node committed >= target (or timeout).
  bool wait_commits(std::uint64_t target, std::chrono::milliseconds budget) {
    const auto deadline = std::chrono::steady_clock::now() + budget;
    for (;;) {
      bool all = true;
      for (auto& n : nodes) {
        if (n->committed() < target) all = false;
      }
      if (all) return true;
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  /// Prefix-consistency across stopped nodes' ledgers.
  bool ledgers_consistent() {
    for (std::size_t a = 0; a < nodes.size(); ++a) {
      for (std::size_t b = a + 1; b < nodes.size(); ++b) {
        const auto& ra = nodes[a]->replica().ledger().records();
        const auto& rb = nodes[b]->replica().ledger().records();
        for (std::size_t i = 0; i < std::min(ra.size(), rb.size()); ++i) {
          if (ra[i].id != rb[i].id) return false;
        }
      }
    }
    return true;
  }
};

TEST(TcpCluster, FourNodesCommitOverRealSockets) {
  Cluster cluster(4, base_port());
  cluster.start_all();
  ASSERT_TRUE(cluster.wait_commits(10, std::chrono::seconds(20)));
  cluster.stop_all();
  EXPECT_TRUE(cluster.ledgers_consistent());
  // Should have committed via the fast path, not via fallbacks.
  for (auto& n : cluster.nodes) {
    EXPECT_GE(n->replica().ledger().size(), 10u);
  }
}

TEST(TcpCluster, SurvivesSlowStart) {
  // Start nodes staggered: late joiners connect through the reconnect
  // path and the cluster still commits.
  Cluster cluster(4, static_cast<std::uint16_t>(base_port() + 100));
  cluster.nodes[0]->start();
  cluster.nodes[1]->start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  cluster.nodes[2]->start();
  cluster.nodes[3]->start();
  ASSERT_TRUE(cluster.wait_commits(10, std::chrono::seconds(20)));
  cluster.stop_all();
  EXPECT_TRUE(cluster.ledgers_consistent());
}

TEST(TcpCluster, VerifyPoolOffThreadDeliveryCommits) {
  // Same cluster, but frames are decoded + envelope-verified by worker
  // threads and handed back in order; the protocol thread must see every
  // frame as a decode-cache hit with the sender already verified.
  Cluster cluster(4, static_cast<std::uint16_t>(base_port() + 300), /*with_wal=*/false,
                  /*verify_threads=*/2);
  cluster.start_all();
  ASSERT_TRUE(cluster.wait_commits(10, std::chrono::seconds(20)));
  cluster.stop_all();
  EXPECT_TRUE(cluster.ledgers_consistent());
  for (auto& n : cluster.nodes) {
    EXPECT_GE(n->replica().ledger().size(), 10u);
    // The pool pre-populates the decode cache, so deliveries of peer
    // frames are hits; only pathological races would miss.
    EXPECT_GT(n->replica().stats().decode_hits, 0u);
  }
}

TEST(VerifyPool, ResultsComeBackInSubmissionOrder) {
  auto crypto = crypto::CryptoSystem::deal(QuorumParams::for_n(4), 5);
  VerifyPool pool(crypto, 3, [] {});
  constexpr int kFrames = 200;
  std::vector<Bytes> sent;
  for (int i = 0; i < kFrames; ++i) {
    // Garbage payloads: decode fails, but ordering must still hold even
    // though workers finish out of order.
    Bytes p(static_cast<std::size_t>(1 + i % 64), static_cast<std::uint8_t>(i));
    sent.push_back(p);
    pool.submit(0, std::move(p));
  }
  std::vector<VerifyPool::Result> got;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (got.size() < kFrames && std::chrono::steady_clock::now() < deadline) {
    for (auto& r : pool.drain_ready()) got.push_back(std::move(r));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kFrames));
  EXPECT_EQ(pool.in_flight(), 0u);
  for (int i = 0; i < kFrames; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)].payload, sent[static_cast<std::size_t>(i)]);
    EXPECT_FALSE(got[static_cast<std::size_t>(i)].msg.has_value());
    EXPECT_FALSE(got[static_cast<std::size_t>(i)].sig_ok);
  }
}

TEST(VerifyPool, PerSenderOrderHoldsUnderOutOfOrderCompletion) {
  // Frames from several senders, interleaved within each batch, with
  // wildly varying payload sizes so worker completion order scrambles
  // relative to submission order. Each sender's frames must still come
  // back in its own submission order; cross-sender interleaving is free.
  auto crypto = crypto::CryptoSystem::deal(QuorumParams::for_n(7), 5);
  VerifyPool pool(crypto, 4, [] {});
  constexpr std::size_t kSenders = 5;
  constexpr int kRounds = 40;
  constexpr std::size_t kPerRound = 6;
  std::array<std::vector<Bytes>, kSenders> sent;
  int counter = 0;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<VerifyPool::Item> batch;
    for (std::size_t f = 0; f < kPerRound; ++f) {
      for (ReplicaId s = 0; s < kSenders; ++s) {
        Bytes p(static_cast<std::size_t>(1 + (counter * 17) % 512),
                static_cast<std::uint8_t>(counter));
        ++counter;
        sent[s].push_back(p);
        VerifyPool::Item item;
        item.from = s;
        item.payload = std::move(p);
        batch.push_back(std::move(item));
      }
    }
    pool.submit_batch(std::move(batch));
  }
  const std::size_t total = kSenders * kPerRound * kRounds;
  std::array<std::vector<Bytes>, kSenders> got;
  std::size_t drained = 0;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (drained < total && std::chrono::steady_clock::now() < deadline) {
    for (auto& r : pool.drain_ready()) {
      ASSERT_LT(r.from, kSenders);
      got[r.from].push_back(std::move(r.payload));
      ++drained;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(drained, total);
  EXPECT_EQ(pool.in_flight(), 0u);
  for (std::size_t s = 0; s < kSenders; ++s) EXPECT_EQ(got[s], sent[s]);
}

TEST(VerifyPool, InFlightCountsSubmittedMinusDrained) {
  auto crypto = crypto::CryptoSystem::deal(QuorumParams::for_n(4), 5);
  VerifyPool pool(crypto, 2, [] {});
  EXPECT_EQ(pool.in_flight(), 0u);
  std::vector<VerifyPool::Item> batch(10);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i].from = static_cast<ReplicaId>(i % 3);
    batch[i].payload = Bytes{static_cast<std::uint8_t>(i)};
  }
  pool.submit_batch(std::move(batch));
  // Workers completing frames must not lower the count — only a drain
  // may. in_flight() is what the node's rx-pause backpressure reads, so
  // it has to track undelivered frames, not unverified ones.
  EXPECT_EQ(pool.in_flight(), 10u);
  std::size_t drained = 0;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (drained < 10 && std::chrono::steady_clock::now() < deadline) {
    drained += pool.drain_ready().size();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(drained, 10u);
  EXPECT_EQ(pool.in_flight(), 0u);
}

TEST(VerifyPool, ShutdownReportsUndrainedFrames) {
  auto crypto = crypto::CryptoSystem::deal(QuorumParams::for_n(4), 5);
  VerifyPool pool(crypto, 2, [] {});
  std::vector<VerifyPool::Item> batch(7);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i].from = static_cast<ReplicaId>(i % 2);
    batch[i].payload = Bytes{static_cast<std::uint8_t>(i)};
  }
  pool.submit_batch(std::move(batch));
  // Never drained: whether or not the workers finished verifying, all 7
  // frames are undelivered at shutdown. Idempotent — the count sticks.
  EXPECT_EQ(pool.shutdown(), 7u);
  EXPECT_EQ(pool.shutdown(), 7u);
}

TEST(VerifyPool, PrecomputedContentKeyRidesThrough) {
  auto crypto = crypto::CryptoSystem::deal(QuorumParams::for_n(4), 5);
  VerifyPool pool(crypto, 1, [] {});
  const Bytes payload{1, 2, 3, 4};
  const auto drain_one = [&] {
    std::vector<VerifyPool::Result> got;
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (got.empty() && std::chrono::steady_clock::now() < deadline) {
      for (auto& r : pool.drain_ready()) got.push_back(std::move(r));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return got;
  };

  // has_key: the worker must trust (not recompute) a key the node thread
  // already paid for during its decode-cache bypass probe — detectable by
  // feeding a sentinel that is deliberately NOT key_of(payload).
  crypto::Digest sentinel{};
  sentinel.fill(0xAB);
  std::vector<VerifyPool::Item> batch(1);
  batch[0].from = 0;
  batch[0].payload = payload;
  batch[0].key = sentinel;
  batch[0].has_key = true;
  pool.submit_batch(std::move(batch));
  auto got = drain_one();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].key, sentinel);

  // Without has_key the worker computes the real content key itself.
  pool.submit(0, payload);
  got = drain_one();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].key, smr::DecodeCache::key_of(payload));
}

TEST(VerifyPool, ConcurrentSubmitDrainStress) {
  // The full race surface: the (single) producer thread interleaves
  // submit_batch and drain_ready while four workers verify and fire the
  // wake callback. Per-sender sequence numbers ride inside the payloads
  // so ordering is checked without keeping every sent frame around.
  // Primarily a TSan target, but the ordering assertions bite anywhere.
  auto crypto = crypto::CryptoSystem::deal(QuorumParams::for_n(7), 5);
  std::atomic<std::uint64_t> wakes{0};
  VerifyPool pool(crypto, 4, [&] { wakes.fetch_add(1, std::memory_order_relaxed); });
  constexpr std::size_t kSenders = 7;
  constexpr std::uint32_t kRounds = 400;  // one frame per sender per round
  std::array<std::uint32_t, kSenders> submit_seq{};
  std::array<std::uint32_t, kSenders> expect_seq{};
  std::uint32_t rounds = 0;
  std::size_t drained = 0;
  std::uint64_t x = 88172645463325252ull;  // deterministic size jitter
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while ((rounds < kRounds || drained < kSenders * kRounds) &&
         std::chrono::steady_clock::now() < deadline) {
    if (rounds < kRounds) {
      std::vector<VerifyPool::Item> batch;
      for (ReplicaId s = 0; s < kSenders; ++s) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        Bytes p(5 + x % 200, 0);
        const std::uint32_t seq = submit_seq[s]++;
        p[0] = static_cast<std::uint8_t>(s);
        p[1] = static_cast<std::uint8_t>(seq);
        p[2] = static_cast<std::uint8_t>(seq >> 8);
        p[3] = static_cast<std::uint8_t>(seq >> 16);
        p[4] = static_cast<std::uint8_t>(seq >> 24);
        VerifyPool::Item item;
        item.from = s;
        item.payload = std::move(p);
        batch.push_back(std::move(item));
      }
      ++rounds;
      pool.submit_batch(std::move(batch));
    }
    for (auto& r : pool.drain_ready()) {
      ASSERT_LT(r.from, kSenders);
      ASSERT_GE(r.payload.size(), 5u);
      EXPECT_EQ(r.payload[0], static_cast<std::uint8_t>(r.from));
      const std::uint32_t seq = std::uint32_t(r.payload[1]) |
                                (std::uint32_t(r.payload[2]) << 8) |
                                (std::uint32_t(r.payload[3]) << 16) |
                                (std::uint32_t(r.payload[4]) << 24);
      EXPECT_EQ(seq, expect_seq[r.from]++);
      ++drained;
    }
  }
  EXPECT_EQ(drained, kSenders * kRounds);
  EXPECT_EQ(pool.in_flight(), 0u);
  // The wake latch collapses bursts but must never deadlock the drain:
  // with every frame delivered, at least one wake fired along the way.
  EXPECT_GE(wakes.load(), 1u);
}

TEST(TcpCluster, DuplicateFrameFromIdleSenderBypassesPool) {
  // One real node (id 0) in a 2-peer config; the test acts as peer 1 over
  // a raw socket and replays the same signed frame twice. The second copy
  // arrives with nothing from peer 1 in flight and its bytes already in
  // the decode cache marked sender-verified, so it must skip the pool
  // (counted in verify_bypass_frames) and still be delivered inline.
  const auto port0 = static_cast<std::uint16_t>(base_port() + 400);
  auto crypto = crypto::CryptoSystem::deal(QuorumParams::for_n(2), 99);
  std::vector<PeerAddress> peers{
      {"127.0.0.1", port0}, {"127.0.0.1", static_cast<std::uint16_t>(port0 + 1)}};
  NodeConfig cfg;
  cfg.id = 0;
  cfg.peers = peers;
  cfg.crypto = crypto;
  cfg.seed = 7;
  cfg.pcfg.base_timeout_us = 10'000'000;  // keep the replica's timers quiet
  cfg.verify_threads = 2;
  TcpNode node(cfg, fallback_factory());
  node.start();

  // Connect as peer 1 (retrying while the node's listener comes up) and
  // send the 4-byte hello.
  int fd = -1;
  for (int attempt = 0; attempt < 100; ++attempt) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port0);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) break;
    ::close(fd);
    fd = -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_GE(fd, 0);
  const std::uint8_t hello[4] = {1, 0, 0, 0};
  ASSERT_EQ(::send(fd, hello, 4, 0), 4);

  // A correctly signed (envelope) timeout message from replica 1.
  smr::Message msg = smr::DiemTimeoutMsg{};
  smr::sign_message(*crypto, 1, msg);
  const Bytes payload = smr::encode_message(msg);
  Bytes frame(4 + payload.size());
  frame[0] = static_cast<std::uint8_t>(payload.size());
  frame[1] = static_cast<std::uint8_t>(payload.size() >> 8);
  frame[2] = static_cast<std::uint8_t>(payload.size() >> 16);
  frame[3] = static_cast<std::uint8_t>(payload.size() >> 24);
  std::copy(payload.begin(), payload.end(), frame.begin() + 4);

  const auto send_frame = [&] {
    ASSERT_EQ(::send(fd, frame.data(), frame.size(), 0),
              static_cast<ssize_t>(frame.size()));
  };
  send_frame();
  // Let the first copy clear the pool and seed the decode cache.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  send_frame();
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  ::close(fd);
  node.stop();

  const net::NetStats st = node.net_stats();
  EXPECT_GE(st.verify_frames, 1u);  // first copy went through the pool
  EXPECT_EQ(st.verify_bypass_frames, 1u);
}

TEST(TcpCluster, NodeCrashAndWalRecoveryOverTcp) {
  const auto port0 = static_cast<std::uint16_t>(base_port() + 200);
  Cluster cluster(4, port0, /*with_wal=*/true);
  cluster.start_all();
  ASSERT_TRUE(cluster.wait_commits(5, std::chrono::seconds(20)));

  // Hard-stop node 3 (simulated crash), then bring up a fresh process
  // image of it recovering from its on-disk WAL.
  cluster.nodes[3]->stop();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  NodeConfig cfg;
  cfg.id = 3;
  cfg.peers = cluster.peers;
  cfg.crypto = cluster.crypto;
  cfg.seed = 4242;
  cfg.pcfg.base_timeout_us = 200'000;
  cfg.wal = cluster.wals[3].get();
  cluster.nodes[3] = std::make_unique<TcpNode>(cfg, fallback_factory());
  cluster.nodes[3]->start();

  // The recovered node catches up and the cluster keeps committing.
  ASSERT_TRUE(cluster.wait_commits(20, std::chrono::seconds(30)));
  cluster.stop_all();
  EXPECT_TRUE(cluster.ledgers_consistent());
  EXPECT_TRUE(dynamic_cast<const core::ReplicaBase&>(cluster.nodes[3]->replica()).recovered());
}

// ---- per-peer send queue ----------------------------------------------------

SharedBytes frame_of(std::size_t size, std::uint8_t fill) {
  return make_shared_bytes(Bytes(size, fill));
}

/// AF_UNIX socketpair with a tiny send buffer on the writer side so a few
/// KiB of frames reliably hit EAGAIN; both ends non-blocking.
struct TinyPipe {
  int writer = -1;
  int reader = -1;

  TinyPipe() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    writer = fds[0];
    reader = fds[1];
    const int small = 4096;  // kernel clamps upward, but stays small
    ::setsockopt(writer, SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
    ::fcntl(writer, F_SETFL, O_NONBLOCK);
    ::fcntl(reader, F_SETFL, O_NONBLOCK);
  }
  ~TinyPipe() {
    if (writer >= 0) ::close(writer);
    if (reader >= 0) ::close(reader);
  }

  /// Read everything currently buffered on the reader side.
  void drain_into(Bytes& out) {
    std::uint8_t buf[4096];
    for (;;) {
      const ssize_t n = ::read(reader, buf, sizeof(buf));
      if (n <= 0) return;
      out.insert(out.end(), buf, buf + n);
    }
  }
};

TEST(SendQueue, DropsNewestFrameAtByteBoundAndCountsIt) {
  net::NetStats stats;
  SendQueue q(100);
  EXPECT_TRUE(q.push(frame_of(40, 1), &stats));   // 44 bytes with header
  EXPECT_TRUE(q.push(frame_of(40, 2), &stats));   // 88
  EXPECT_FALSE(q.push(frame_of(40, 3), &stats));  // 132 > 100: dropped
  EXPECT_EQ(q.frames(), 2u);
  EXPECT_EQ(q.bytes(), 88u);
  EXPECT_EQ(stats.sendq_dropped_frames, 1u);
  EXPECT_EQ(stats.sendq_dropped_bytes, 44u);  // header counted too
  // A smaller frame that fits is still accepted after a drop.
  EXPECT_TRUE(q.push(frame_of(8, 4), &stats));
  EXPECT_EQ(stats.sendq_dropped_frames, 1u);
}

TEST(SendQueue, PartialWritesResumeWithoutLossOrDuplication) {
  TinyPipe pipe;
  net::NetStats stats;
  SendQueue q;
  // Far more data than the writer's socket buffer: flushes will stop
  // mid-frame and must resume at the exact byte offset.
  constexpr std::size_t kFrames = 8;
  constexpr std::size_t kSize = 8 * 1024;
  for (std::size_t i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(q.push(frame_of(kSize, static_cast<std::uint8_t>(i + 1)), &stats));
  }

  Bytes received;
  int spins = 0;
  for (;;) {
    const auto r = q.flush(pipe.writer, &stats);
    ASSERT_NE(r, SendQueue::FlushResult::kError);
    if (r == SendQueue::FlushResult::kDrained) break;
    pipe.drain_into(received);  // the peer consumes; the queue recovers
    ASSERT_LT(++spins, 10'000) << "flush never drained — stalled queue";
  }
  pipe.drain_into(received);

  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.bytes(), 0u);
  EXPECT_EQ(stats.writev_frames, kFrames);
  EXPECT_EQ(stats.writev_bytes, kFrames * (4 + kSize));
  EXPECT_GE(stats.writev_batches, 2u);  // tiny buffer forces multiple writes

  // The byte stream must contain each frame exactly once, in order.
  ASSERT_EQ(received.size(), kFrames * (4 + kSize));
  std::size_t off = 0;
  for (std::size_t i = 0; i < kFrames; ++i) {
    const std::uint32_t len = static_cast<std::uint32_t>(received[off]) |
                              (static_cast<std::uint32_t>(received[off + 1]) << 8) |
                              (static_cast<std::uint32_t>(received[off + 2]) << 16) |
                              (static_cast<std::uint32_t>(received[off + 3]) << 24);
    ASSERT_EQ(len, kSize) << "frame " << i;
    off += 4;
    for (std::size_t b = 0; b < kSize; ++b) {
      ASSERT_EQ(received[off + b], static_cast<std::uint8_t>(i + 1))
          << "frame " << i << " byte " << b;
    }
    off += kSize;
  }
}

TEST(SendQueue, BlockedSocketLeavesQueueIntact) {
  TinyPipe pipe;
  net::NetStats stats;
  SendQueue q;
  ASSERT_TRUE(q.push(frame_of(64 * 1024, 7), &stats));

  // Nobody drains the reader: the first flush makes progress until the
  // socket buffer fills, later flushes are blocked outright.
  ASSERT_EQ(q.flush(pipe.writer, &stats), SendQueue::FlushResult::kProgress);
  const std::size_t left = q.bytes();
  ASSERT_GT(left, 0u);
  EXPECT_EQ(q.flush(pipe.writer, &stats), SendQueue::FlushResult::kBlocked);
  EXPECT_EQ(q.bytes(), left);  // blocked flush consumed nothing
  EXPECT_EQ(q.frames(), 1u);

  // Once the peer drains, the same queue finishes the frame.
  Bytes received;
  int spins = 0;
  while (q.flush(pipe.writer, &stats) != SendQueue::FlushResult::kDrained) {
    pipe.drain_into(received);
    ASSERT_LT(++spins, 10'000);
  }
  pipe.drain_into(received);
  EXPECT_EQ(received.size(), 4u + 64 * 1024);
  EXPECT_EQ(stats.writev_frames, 1u);
}

TEST(SendQueue, PeerResetSurfacesErrorNotSignal) {
  TinyPipe pipe;
  net::NetStats stats;
  SendQueue q;
  ::close(pipe.reader);
  pipe.reader = -1;
  ASSERT_TRUE(q.push(frame_of(128, 9), &stats));
  // MSG_NOSIGNAL: a reset peer yields EPIPE for the caller to tear the
  // connection down — it must not kill the test process with SIGPIPE.
  EXPECT_EQ(q.flush(pipe.writer, &stats), SendQueue::FlushResult::kError);
}

TEST(RealtimeExecutor, TimersFireInOrder) {
  RealtimeExecutor exec;
  std::vector<int> order;
  exec.schedule_after(2'000, [&] { order.push_back(2); });
  exec.schedule_after(500, [&] { order.push_back(1); });
  const auto id = exec.schedule_after(1'000, [&] { order.push_back(99); });
  exec.cancel(id);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  exec.run_due();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(exec.next_deadline(), kSimTimeNever);
}

TEST(RealtimeExecutor, DueEventsOnlyFireWhenDue) {
  RealtimeExecutor exec;
  bool fired = false;
  exec.schedule_after(200'000, [&] { fired = true; });
  exec.run_due();
  EXPECT_FALSE(fired);
  EXPECT_NE(exec.next_deadline(), kSimTimeNever);
}

}  // namespace
}  // namespace repro::transport
