// TCP framing edge cases: a raw test socket speaks directly to a live
// TcpNode — fragmented frames, oversized frames, bad hellos and abrupt
// disconnects must all be handled without wedging the node.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include "core/fallback.h"
#include "transport/node.h"

namespace repro::transport {
namespace {

std::uint16_t framing_port(int offset) {
  return static_cast<std::uint16_t>(27000 + (::getpid() * 7) % 6000 + offset * 8);
}

struct NodeRig {
  std::shared_ptr<const crypto::CryptoSystem> crypto_sys;
  std::unique_ptr<TcpNode> node;
  std::uint16_t port;

  explicit NodeRig(int offset, SimTime hello_timeout = 2'000'000)
      : port(framing_port(offset)) {
    // A 4-peer cluster where only replica 0 actually runs; the test
    // socket impersonates replica 3 (3 > 0, so it dials us — matching the
    // connection convention).
    crypto_sys = crypto::CryptoSystem::deal(QuorumParams::for_n(4), 5);
    NodeConfig cfg;
    cfg.id = 0;
    for (int i = 0; i < 4; ++i) {
      cfg.peers.push_back(
          PeerAddress{"127.0.0.1", static_cast<std::uint16_t>(port + i)});
    }
    cfg.crypto = crypto_sys;
    cfg.seed = 1;
    cfg.pcfg.base_timeout_us = 200'000;
    cfg.hello_timeout = hello_timeout;
    node = std::make_unique<TcpNode>(cfg, [](const core::ReplicaContext& ctx) {
      return std::make_unique<core::FallbackReplica>(ctx, core::FallbackParams{});
    });
    node->start();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  ~NodeRig() { node->stop(); }

  int connect_raw() const {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);  // node 0's listen port
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
    return fd;
  }

  static void send_all(int fd, const Bytes& data) {
    std::size_t done = 0;
    while (done < data.size()) {
      const ssize_t n = ::send(fd, data.data() + done, data.size() - done, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      done += static_cast<std::size_t>(n);
    }
  }

  static Bytes le32(std::uint32_t v) {
    return Bytes{std::uint8_t(v), std::uint8_t(v >> 8), std::uint8_t(v >> 16),
                 std::uint8_t(v >> 24)};
  }

  /// A validly framed (hello + message) byte stream from "replica 3".
  Bytes hello_and_message() const {
    smr::Message msg = smr::BlockRequestMsg{smr::genesis_id(), 4};
    const Bytes wire = smr::encode_message(msg);
    Bytes out = le32(3);  // hello: peer id 3
    const Bytes len = le32(static_cast<std::uint32_t>(wire.size()));
    out.insert(out.end(), len.begin(), len.end());
    out.insert(out.end(), wire.begin(), wire.end());
    return out;
  }

  /// Wait (bounded) for a reply frame on fd; true if one arrives.
  static bool reply_arrives(int fd) {
    std::uint8_t buf[256];
    timeval tv{1, 0};
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    return ::recv(fd, buf, sizeof(buf), 0) > 0;
  }
};

TEST(TcpFraming, WholeStreamAtOnce) {
  NodeRig rig(0);
  const int fd = rig.connect_raw();
  NodeRig::send_all(fd, rig.hello_and_message());
  // A BlockRequest for genesis earns a BlockResponse.
  EXPECT_TRUE(NodeRig::reply_arrives(fd));
  ::close(fd);
}

TEST(TcpFraming, ByteByByteFragmentation) {
  NodeRig rig(1);
  const int fd = rig.connect_raw();
  const Bytes stream = rig.hello_and_message();
  for (std::uint8_t b : stream) {
    NodeRig::send_all(fd, Bytes{b});
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  EXPECT_TRUE(NodeRig::reply_arrives(fd));
  ::close(fd);
}

TEST(TcpFraming, OversizedFrameClosesConnection) {
  NodeRig rig(2);
  const int fd = rig.connect_raw();
  Bytes stream = NodeRig::le32(3);                  // hello
  const Bytes huge = NodeRig::le32(64u << 20);      // 64 MiB claim > 16 MiB cap
  stream.insert(stream.end(), huge.begin(), huge.end());
  NodeRig::send_all(fd, stream);
  // The node must close on us (recv sees EOF), not wedge.
  std::uint8_t buf[16];
  timeval tv{2, 0};
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0);
  ::close(fd);
}

TEST(TcpFraming, BogusHelloClosesConnection) {
  NodeRig rig(3);
  const int fd = rig.connect_raw();
  NodeRig::send_all(fd, NodeRig::le32(999));  // peer id out of range
  std::uint8_t buf[16];
  timeval tv{2, 0};
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0);
  ::close(fd);
}

TEST(TcpFraming, AbruptDisconnectDoesNotWedgeNode) {
  NodeRig rig(4);
  for (int i = 0; i < 5; ++i) {
    const int fd = rig.connect_raw();
    NodeRig::send_all(fd, NodeRig::le32(3));
    ::close(fd);  // vanish mid-session
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  // Node still accepts and serves a well-behaved session afterwards.
  const int fd = rig.connect_raw();
  NodeRig::send_all(fd, rig.hello_and_message());
  EXPECT_TRUE(NodeRig::reply_arrives(fd));
  ::close(fd);
}

TEST(TcpFraming, HalfOpenConnectionIsReapedAfterHelloDeadline) {
  // A connection that never completes the 4-byte hello must not hold a
  // conns_ slot forever: the node closes it once hello_timeout passes.
  NodeRig rig(6, /*hello_timeout=*/200'000);  // 200 ms
  const int fd = rig.connect_raw();
  NodeRig::send_all(fd, Bytes{3});  // one byte of hello, then stall
  std::uint8_t buf[16];
  timeval tv{2, 0};
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0);  // EOF: node reaped us
  ::close(fd);

  // A well-behaved session that completes the hello promptly still works.
  const int good = rig.connect_raw();
  NodeRig::send_all(good, rig.hello_and_message());
  EXPECT_TRUE(NodeRig::reply_arrives(good));
  ::close(good);
}

TEST(TcpFraming, PromptHelloIsNotReaped) {
  // The deadline applies only to unidentified connections: an identified
  // peer idling past hello_timeout stays connected.
  NodeRig rig(7, /*hello_timeout=*/200'000);
  const int fd = rig.connect_raw();
  NodeRig::send_all(fd, NodeRig::le32(3));  // complete hello immediately
  std::this_thread::sleep_for(std::chrono::milliseconds(400));  // idle past deadline
  smr::Message msg = smr::BlockRequestMsg{smr::genesis_id(), 4};
  const Bytes wire = smr::encode_message(msg);
  Bytes follow = NodeRig::le32(static_cast<std::uint32_t>(wire.size()));
  follow.insert(follow.end(), wire.begin(), wire.end());
  NodeRig::send_all(fd, follow);
  EXPECT_TRUE(NodeRig::reply_arrives(fd));
  ::close(fd);
}

TEST(TcpFraming, GarbagePayloadInsideValidFrameIsDropped) {
  NodeRig rig(5);
  const int fd = rig.connect_raw();
  Bytes stream = NodeRig::le32(3);
  const Bytes junk = {0xde, 0xad, 0xbe, 0xef, 0x01};
  const Bytes len = NodeRig::le32(static_cast<std::uint32_t>(junk.size()));
  stream.insert(stream.end(), len.begin(), len.end());
  stream.insert(stream.end(), junk.begin(), junk.end());
  NodeRig::send_all(fd, stream);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Connection survives (undecodable payloads are a replica-level drop,
  // not a transport error) and a valid request still works.
  smr::Message msg = smr::BlockRequestMsg{smr::genesis_id(), 4};
  const Bytes wire = smr::encode_message(msg);
  Bytes follow = NodeRig::le32(static_cast<std::uint32_t>(wire.size()));
  follow.insert(follow.end(), wire.begin(), wire.end());
  NodeRig::send_all(fd, follow);
  EXPECT_TRUE(NodeRig::reply_arrives(fd));
  ::close(fd);
}

}  // namespace
}  // namespace repro::transport
