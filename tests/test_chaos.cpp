// Chaos fuzzer (DESIGN.md §14): schedule generation and replay
// determinism, JSON artifact round-trips, the dynamic ≤f fault budget,
// and the acceptance self-test — the fuzzer must find the planted
// deferred-vote hole and shrink it to a minimal replayable schedule.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "harness/chaos.h"
#include "harness/invariants.h"

namespace repro {
namespace {

using harness::ChaosEvent;
using harness::ChaosFuzzer;
using harness::ChaosResult;
using harness::ChaosSchedule;
using harness::Experiment;
using harness::ExperimentConfig;
using harness::FuzzStats;
using harness::generate_schedule;
using harness::NetPhase;
using harness::Protocol;
using harness::run_schedule;
using harness::schedule_from_json;
using harness::schedule_to_json;

// ---- schedule generation ----------------------------------------------------

TEST(ChaosSchedule, GenerationIsDeterministic) {
  const ChaosSchedule a = generate_schedule(42);
  const ChaosSchedule b = generate_schedule(42);
  EXPECT_EQ(schedule_to_json(a), schedule_to_json(b));
  const ChaosSchedule c = generate_schedule(43);
  EXPECT_NE(schedule_to_json(a), schedule_to_json(c));
}

TEST(ChaosSchedule, GeneratedEventsRespectTheFaultBudget) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const ChaosSchedule s = generate_schedule(seed);
    const std::uint32_t f = (s.n - 1) / 3;
    std::set<ReplicaId> faulted;
    for (const ChaosEvent& ev : s.events) {
      if (ev.kind == ChaosEvent::Kind::kSetFault) faulted.insert(ev.replica % s.n);
    }
    EXPECT_LE(faulted.size(), f) << "seed " << seed;
  }
}

TEST(ChaosSchedule, JsonRoundTrip) {
  ChaosSchedule s = generate_schedule(7);
  s.expect_trace_sha256 = "deadbeef";
  const std::string json = schedule_to_json(s);
  const auto back = schedule_from_json(json);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(schedule_to_json(*back), json);
  EXPECT_EQ(back->seed, s.seed);
  EXPECT_EQ(back->events.size(), s.events.size());

  EXPECT_FALSE(schedule_from_json("{").has_value());
  EXPECT_FALSE(schedule_from_json(R"({"protocol": "bogus"})").has_value());
  EXPECT_FALSE(schedule_from_json(R"({"events": [{"kind": "sabotage"}]})").has_value());
}

// ---- the runner -------------------------------------------------------------

TEST(ChaosRunner, SameScheduleSameTrace) {
  const ChaosSchedule s = generate_schedule(11);
  const ChaosResult a = run_schedule(s);
  const ChaosResult b = run_schedule(s);
  EXPECT_TRUE(a.ok) << a.failure;
  EXPECT_EQ(a.trace_sha256, b.trace_sha256);  // pure function of the schedule
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_EQ(a.fallbacks_entered, b.fallbacks_entered);
}

TEST(ChaosRunner, CleanSeedsHoldInvariants) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const ChaosResult res = run_schedule(generate_schedule(seed));
    EXPECT_TRUE(res.ok) << "seed " << seed << " (" << res.failure_kind
                        << "): " << res.failure;
  }
}

TEST(ChaosRunner, MidRunCrashClearAndHealStaysLive) {
  // Hand-built schedule: crash a replica mid-run, un-crash it later, and
  // cut a partition in between. The run must still reach its target —
  // set_fault's un-crash edge re-arms the round timer, and the overlay
  // partition self-heals.
  ChaosSchedule s;
  s.seed = 5;
  s.n = 4;
  s.protocol = Protocol::kFallback3;
  s.horizon_us = 120'000'000;
  s.commit_target = 25;
  s.phases = {NetPhase{0, false, 50'000}};
  ChaosEvent crash;
  crash.kind = ChaosEvent::Kind::kSetFault;
  crash.at = 2'000'000;
  crash.replica = 1;
  crash.fault = core::FaultKind::kCrash;
  ChaosEvent cut;
  cut.kind = ChaosEvent::Kind::kPartition;
  cut.at = 4'000'000;
  cut.cut = 2;
  cut.duration = 1'500'000;
  ChaosEvent heal;
  heal.kind = ChaosEvent::Kind::kClearFault;
  heal.at = 8'000'000;
  heal.replica = 1;
  heal.fault = core::FaultKind::kNone;
  s.events = {crash, cut, heal};

  const ChaosResult res = run_schedule(s);
  EXPECT_TRUE(res.ok) << res.failure;
  EXPECT_TRUE(res.reached_target) << "only " << res.commits << " commits";
  // Replay determinism holds for hand-built schedules too.
  EXPECT_EQ(run_schedule(s).trace_sha256, res.trace_sha256);
}

TEST(ChaosRunner, DynamicFaultBudgetIsEnforced) {
  ExperimentConfig cfg;
  cfg.n = 4;  // f = 1
  cfg.protocol = Protocol::kFallback3;
  cfg.seed = 3;
  Experiment exp(cfg);
  exp.start();
  EXPECT_TRUE(exp.set_fault(0, core::FaultKind::kMuteLeader));
  EXPECT_FALSE(exp.set_fault(1, core::FaultKind::kCrash));  // budget spent
  EXPECT_TRUE(exp.set_fault(0, core::FaultKind::kNone));    // clearing is free
  EXPECT_FALSE(exp.is_honest(0));  // ...but history taints forever
  EXPECT_FALSE(exp.set_fault(1, core::FaultKind::kCrash));  // still refused
  EXPECT_TRUE(exp.set_fault(0, core::FaultKind::kCrash));   // same replica ok
  EXPECT_FALSE(exp.set_fault(99, core::FaultKind::kCrash));  // bad id
  EXPECT_EQ(exp.ever_faulty_count(), 1u);
}

// ---- planted-bug acceptance -------------------------------------------------

// Scan plant-mode seeds until the fuzzer trips over the hole.
FuzzStats hunt_planted(std::size_t seeds) {
  ChaosFuzzer::Options opt;
  opt.seeds = seeds;
  opt.gen.plant_deferred_vote_hole = true;
  opt.shrink_budget = 100;
  return ChaosFuzzer(opt).run();
}

TEST(ChaosFuzzer, FindsAndShrinksThePlantedDeferredVoteHole) {
  const FuzzStats st = hunt_planted(20);
  ASSERT_GT(st.failures, 0u) << "the fuzzer missed the planted bug";
  const harness::FuzzFailure& fail = st.found.front();
  EXPECT_FALSE(fail.result.ok);
  // Acceptance: the ghost-chain repro shrinks to a handful of events
  // (in practice exactly one — the kGhostChain fault itself).
  EXPECT_LE(fail.shrunk.events.size(), 5u);
  // The shrunk artifact replays byte-identically (the --replay contract).
  const ChaosResult replay = run_schedule(fail.shrunk);
  EXPECT_FALSE(replay.ok);
  EXPECT_EQ(replay.trace_sha256, fail.shrunk.expect_trace_sha256);
}

TEST(ChaosFuzzer, DeferredVoteGateBlocksTheSameScheduleWhenClosed) {
  // Take a schedule that provably commits a forged ghost chain with the
  // hole open, close the hole, and re-run: the deferred-vote gate must
  // reduce the attack to harmless stored garbage.
  const FuzzStats st = hunt_planted(20);
  ASSERT_GT(st.failures, 0u);
  ChaosSchedule gated = st.found.front().shrunk;
  gated.plant_deferred_vote_hole = false;
  gated.expect_trace_sha256.clear();
  const ChaosResult res = run_schedule(gated);
  EXPECT_TRUE(res.ok) << res.failure;
}

}  // namespace
}  // namespace repro
