// Unit tests for the simulated network and its delay models (the
// adversary implementations).
#include <gtest/gtest.h>

#include <vector>

#include "net/delay_model.h"
#include "net/network.h"
#include "sim/simulation.h"

namespace repro::net {
namespace {

struct Delivery {
  ReplicaId to;
  ReplicaId from;
  Bytes payload;
  SimTime at;
};

struct Rig {
  sim::Simulation sim;
  std::unique_ptr<Network> net;
  std::vector<Delivery> log;

  explicit Rig(std::uint32_t n, std::unique_ptr<DelayModel> model) {
    net = std::make_unique<Network>(sim, n, std::move(model), Rng(77));
    for (ReplicaId id = 0; id < n; ++id) {
      net->register_handler(id, [this, id](ReplicaId from, const Bytes& payload) {
        log.push_back(Delivery{id, from, payload, sim.now()});
      });
    }
  }
};

TEST(Network, DeliversWithModelDelay) {
  Rig rig(2, std::make_unique<FixedDelayModel>(500));
  rig.net->send(0, 1, Bytes{1, 2, 3});
  rig.sim.run();
  ASSERT_EQ(rig.log.size(), 1u);
  EXPECT_EQ(rig.log[0].at, 500u);
  EXPECT_EQ(rig.log[0].from, 0u);
  EXPECT_EQ(rig.log[0].payload, (Bytes{1, 2, 3}));
}

TEST(Network, SelfSendIsImmediateAndFree) {
  Rig rig(2, std::make_unique<FixedDelayModel>(500));
  rig.net->send(0, 0, Bytes{9});
  rig.sim.run();
  ASSERT_EQ(rig.log.size(), 1u);
  EXPECT_EQ(rig.log[0].at, 0u);
  EXPECT_EQ(rig.net->stats().messages, 0u);  // self-delivery not counted...
  EXPECT_EQ(rig.net->stats().bytes, 0u);
  EXPECT_EQ(rig.net->stats().self_messages, 1u);  // ...but tallied separately
  EXPECT_EQ(rig.net->stats().self_bytes, 1u);
}

TEST(Network, MulticastReachesAllIncludingSender) {
  Rig rig(4, std::make_unique<FixedDelayModel>(10));
  rig.net->multicast(2, Bytes{7});
  rig.sim.run();
  EXPECT_EQ(rig.log.size(), 4u);
  // n-1 network messages counted (self-delivery free but tallied).
  EXPECT_EQ(rig.net->stats().messages, 3u);
  EXPECT_EQ(rig.net->stats().bytes, 3u);
  EXPECT_EQ(rig.net->stats().self_messages, 1u);
  EXPECT_EQ(rig.net->stats().self_bytes, 1u);
  EXPECT_EQ(rig.net->delivered(), 4u);  // processing metric includes self
}

TEST(Network, MulticastSharesOnePayloadBufferZeroCopies) {
  // The refcounted data path: every handler must observe the *same*
  // buffer object — pointer identity, not just byte equality — so a
  // multicast to n recipients costs exactly one allocation.
  sim::Simulation sim;
  Network net(sim, 4, std::make_unique<FixedDelayModel>(10), Rng(77));
  std::vector<const Bytes*> seen;
  for (ReplicaId id = 0; id < 4; ++id) {
    net.register_handler(id, [&seen](ReplicaId, const Bytes& payload) {
      seen.push_back(&payload);
    });
  }
  net.multicast(1, Bytes{5, 6});
  sim.run();
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0], seen[1]);
  EXPECT_EQ(seen[1], seen[2]);
  EXPECT_EQ(seen[2], seen[3]);
  EXPECT_EQ(net.stats().multicasts, 1u);
  EXPECT_EQ(net.stats().payload_copies_avoided, 3u);  // n-1 shared recipients
  // Traffic accounting unchanged by the zero-copy path.
  EXPECT_EQ(net.stats().messages, 3u);
  EXPECT_EQ(net.stats().self_messages, 1u);
}

TEST(Network, SharedPayloadOutlivesSenderScope) {
  // The delivery queue must keep the buffer alive on its own: send a
  // payload whose only other reference dies before the sim runs.
  sim::Simulation sim;
  Network net(sim, 2, std::make_unique<FixedDelayModel>(1000), Rng(77));
  Bytes got;
  net.register_handler(1, [&got](ReplicaId, const Bytes& payload) { got = payload; });
  net.register_handler(0, [](ReplicaId, const Bytes&) {});
  {
    SharedBytes payload = make_shared_bytes(Bytes{1, 2, 3, 4});
    net.send(0, 1, payload);
  }  // caller's reference gone; queue's reference remains
  sim.run();
  EXPECT_EQ(got, (Bytes{1, 2, 3, 4}));
}

TEST(Network, DeliveredCountsOnlyHandledPayloads) {
  // A payload addressed to a replica with no registered handler must not
  // inflate delivered(): it is a traffic event, not a processing event.
  sim::Simulation sim;
  Network net(sim, 2, std::make_unique<FixedDelayModel>(10), Rng(77));
  int handled = 0;
  net.register_handler(0, [&handled](ReplicaId, const Bytes&) { ++handled; });
  // Handler for replica 1 intentionally not registered.
  net.send(0, 1, Bytes{1});
  net.send(1, 0, Bytes{2});
  net.send(1, 1, Bytes{3});  // self-send into the void
  sim.run();
  EXPECT_EQ(handled, 1);
  EXPECT_EQ(net.delivered(), 1u);
  EXPECT_EQ(net.stats().messages, 2u);  // traffic counted regardless
  EXPECT_EQ(net.stats().self_messages, 1u);
}

TEST(Network, StatsDeltaCoversSelfCounters) {
  Rig rig(2, std::make_unique<FixedDelayModel>(1));
  rig.net->send(0, 0, Bytes{1, 2});
  const NetStats before = rig.net->stats();
  rig.net->send(1, 1, Bytes{1, 2, 3});
  const NetStats delta = rig.net->stats() - before;
  EXPECT_EQ(delta.self_messages, 1u);
  EXPECT_EQ(delta.self_bytes, 3u);
  EXPECT_EQ(delta.messages, 0u);
}

TEST(Network, StatsCountByTypeTag) {
  Rig rig(2, std::make_unique<FixedDelayModel>(1));
  rig.net->send(0, 1, Bytes{5, 0, 0});  // tag 5
  rig.net->send(0, 1, Bytes{5, 1});     // tag 5
  rig.net->send(0, 1, Bytes{9});        // tag 9
  rig.sim.run();
  EXPECT_EQ(rig.net->stats().messages_by_type[5], 2u);
  EXPECT_EQ(rig.net->stats().bytes_by_type[5], 5u);
  EXPECT_EQ(rig.net->stats().messages_by_type[9], 1u);
}

TEST(Network, StatsDeltaOperator) {
  Rig rig(2, std::make_unique<FixedDelayModel>(1));
  rig.net->send(0, 1, Bytes{1, 1});
  const NetStats before = rig.net->stats();
  rig.net->send(0, 1, Bytes{1, 1, 1});
  const NetStats delta = rig.net->stats() - before;
  EXPECT_EQ(delta.messages, 1u);
  EXPECT_EQ(delta.bytes, 3u);
}

TEST(Network, NoDropsEverUnderAnyModel) {
  // Reliability: 200 messages under the asynchronous adversary all arrive.
  Rig rig(3, std::make_unique<AsynchronousModel>(1'000'000, 5'000'000));
  for (int i = 0; i < 200; ++i) rig.net->send(0, 1 + (i % 2), Bytes{1});
  rig.sim.run();
  EXPECT_EQ(rig.log.size(), 200u);
}

// ---- delay models -----------------------------------------------------------

TEST(DelayModels, SynchronousBoundedByDelta) {
  SynchronousModel model(100, 5000);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const SimTime d = model.delay(MessageContext{0, 1, 10, 0}, rng);
    EXPECT_GE(d, 100u);
    EXPECT_LE(d, 5000u);
  }
}

TEST(DelayModels, AsynchronousCappedAtMax) {
  AsynchronousModel model(1'000'000, 2'000'000);
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(model.delay(MessageContext{0, 1, 10, 0}, rng), 2'000'000u);
  }
}

TEST(DelayModels, AsynchronousOftenExceedsDelta) {
  AsynchronousModel model(1'000'000, 8'000'000);
  Rng rng(5);
  int slow = 0;
  for (int i = 0; i < 1000; ++i) {
    if (model.delay(MessageContext{0, 1, 10, 0}, rng) > 50'000) ++slow;
  }
  EXPECT_GT(slow, 900);  // nearly all messages blow past a 50ms Δ
}

TEST(DelayModels, PartialSynchronyClampsInFlightToGstPlusDelta) {
  auto pre = std::make_unique<FixedDelayModel>(100'000'000);  // huge
  PartialSynchronyModel model(1'000'000, 10, 1000, std::move(pre));
  Rng rng(6);
  // Sent before GST: must arrive by GST + delta.
  const SimTime d = model.delay(MessageContext{0, 1, 10, 500'000}, rng);
  EXPECT_LE(500'000 + d, 1'001'000u);
  // Sent after GST: synchronous.
  const SimTime d2 = model.delay(MessageContext{0, 1, 10, 2'000'000}, rng);
  EXPECT_LE(d2, 1000u);
}

TEST(DelayModels, TargetedDelaysOnlyTargets) {
  TargetedDelayModel model(10, 100, 1'000'000);
  model.set_targets({2});
  Rng rng(7);
  EXPECT_LE(model.delay(MessageContext{0, 1, 10, 0}, rng), 100u);
  EXPECT_GT(model.delay(MessageContext{2, 1, 10, 0}, rng), 1'000'000u - 1);
  EXPECT_GT(model.delay(MessageContext{0, 2, 10, 0}, rng), 1'000'000u - 1);
}

TEST(DelayModels, AdaptiveAttackFollowsTargetFn) {
  AdaptiveLeaderAttackModel model(10, 100, 1'000'000);
  ReplicaId victim = 0;
  model.set_targets_fn([&victim] { return std::set<ReplicaId>{victim}; });
  Rng rng(8);
  EXPECT_GT(model.delay(MessageContext{0, 1, 10, 0}, rng), 999'999u);
  victim = 3;
  EXPECT_LE(model.delay(MessageContext{0, 1, 10, 0}, rng), 100u);
  EXPECT_GT(model.delay(MessageContext{1, 3, 10, 0}, rng), 999'999u);
}

TEST(DelayModels, AdaptiveAttackWithoutBindingIsSynchronous) {
  AdaptiveLeaderAttackModel model(10, 100, 1'000'000);
  Rng rng(9);
  EXPECT_LE(model.delay(MessageContext{0, 1, 10, 0}, rng), 100u);
}

TEST(DelayModels, SwitchingModelPicksPhaseByTime) {
  std::vector<SwitchingModel::Phase> phases;
  phases.push_back({0, std::make_unique<FixedDelayModel>(10)});
  phases.push_back({1000, std::make_unique<FixedDelayModel>(500)});
  phases.push_back({2000, std::make_unique<FixedDelayModel>(20)});
  SwitchingModel model(std::move(phases));
  Rng rng(10);
  EXPECT_EQ(model.delay(MessageContext{0, 1, 10, 0}, rng), 10u);
  EXPECT_EQ(model.delay(MessageContext{0, 1, 10, 999}, rng), 10u);
  EXPECT_EQ(model.delay(MessageContext{0, 1, 10, 1000}, rng), 500u);
  EXPECT_EQ(model.delay(MessageContext{0, 1, 10, 5000}, rng), 20u);
}

}  // namespace
}  // namespace repro::net
