// Soak tests: long runs (thousands of commits) mixing network phases,
// faults and crash-restarts, asserting safety, the structural lemmas and
// bounded replica memory (the pool-pruning paths actually execute).
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/invariants.h"

namespace repro::harness {
namespace {

TEST(Soak, TwoThousandCommitsSteadyState) {
  ExperimentConfig cfg;
  cfg.n = 4;
  cfg.protocol = Protocol::kFallback3;
  cfg.seed = 1001;
  Experiment exp(cfg);
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(2000, 600'000'000'000ull));
  EXPECT_TRUE(exp.check_safety().ok);
  const auto rep = check_invariants(exp);
  EXPECT_TRUE(rep.ok) << (rep.violations.empty() ? "" : rep.violations.front());
  // Rounds advanced enough for several pruning sweeps (r_cur % 64).
  EXPECT_GT(exp.replica(0).current_round(), 1500u);
}

TEST(Soak, DiemBftTwoThousandCommits) {
  ExperimentConfig cfg;
  cfg.n = 4;
  cfg.protocol = Protocol::kDiemBft;
  cfg.seed = 1002;
  Experiment exp(cfg);
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(2000, 600'000'000'000ull));
  EXPECT_TRUE(exp.check_safety().ok);
}

TEST(Soak, AlternatingGoodAndBadNetworkPhases) {
  // 10 alternating phases of synchrony and leader attack; the system must
  // keep making progress overall and stay safe throughout.
  ExperimentConfig cfg;
  cfg.n = 4;
  cfg.protocol = Protocol::kFallback3;
  cfg.scenario = NetScenario::kLeaderAttack;
  cfg.attack_delay = 3'000'000;
  cfg.seed = 1003;
  Experiment exp(cfg);

  bool attack_on = false;
  auto* attack =
      dynamic_cast<net::AdaptiveLeaderAttackModel*>(&exp.network().delay_model());
  auto& e = exp;
  attack->set_targets_fn([&attack_on, &e]() {
    std::set<ReplicaId> targets;
    if (!attack_on) return targets;
    for (ReplicaId id = 0; id < e.n(); ++id) {
      targets.insert(core::round_leader(e.replica(id).current_round(), e.n(),
                                        e.config().pcfg.leader_rotation));
    }
    return targets;
  });
  exp.start();

  std::size_t last = 0;
  for (int phase = 0; phase < 10; ++phase) {
    attack_on = (phase % 2 == 1);
    exp.run_for(5'000'000);
    if (!attack_on) {
      // Good phases must make clear progress.
      EXPECT_GT(exp.max_honest_commits(), last) << "phase " << phase;
      last = exp.max_honest_commits();
    }
    ASSERT_TRUE(exp.check_safety().ok) << "phase " << phase;
  }
  EXPECT_GT(exp.min_honest_commits(), 200u);
  const auto rep = check_invariants(exp);
  EXPECT_TRUE(rep.ok) << (rep.violations.empty() ? "" : rep.violations.front());
}

TEST(Soak, LongRunWithFaultsAndRestarts) {
  ExperimentConfig cfg;
  cfg.n = 7;
  cfg.protocol = Protocol::kFallback3;
  cfg.seed = 1004;
  cfg.enable_wal = true;
  cfg.faults[6] = core::FaultKind::kEquivocate;
  cfg.faults[5] = core::FaultKind::kTimeoutSpam;
  Experiment exp(cfg);
  exp.start();
  for (int i = 1; i <= 8; ++i) {
    ASSERT_TRUE(exp.run_until_commits(100u * i, 600'000'000'000ull)) << i;
    exp.restart_replica(static_cast<ReplicaId>(i % 5));  // honest replicas only
  }
  ASSERT_TRUE(exp.run_until_commits(1000, 600'000'000'000ull));
  EXPECT_TRUE(exp.check_safety().ok);
  const auto rep = check_invariants(exp);
  EXPECT_TRUE(rep.ok) << (rep.violations.empty() ? "" : rep.violations.front());
}

TEST(Soak, AlwaysFallbackManyViews) {
  // Hundreds of consecutive fallback views (coin elections) at n = 7.
  ExperimentConfig cfg;
  cfg.n = 7;
  cfg.protocol = Protocol::kAlwaysFallback;
  cfg.seed = 1005;
  Experiment exp(cfg);
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(500, 600'000'000'000ull));
  EXPECT_TRUE(exp.check_safety().ok);
  EXPECT_GT(exp.replica(0).current_view(), 100u);
}

}  // namespace
}  // namespace repro::harness
