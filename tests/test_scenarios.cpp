// Scenario tests: multi-phase schedules that exercise the subtle
// interactions the per-scenario tests cannot (spurious timeouts,
// quorum-need healing, flapping networks, mass recovery).
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/invariants.h"

namespace repro::harness {
namespace {

/// One replica suffers a transient link problem and misses fallbacks the
/// others run (its rotation reigns time out, forcing view changes), yet
/// the system keeps committing; after the links heal, a later mid-run
/// crash of a *different* replica still leaves a live system: the three
/// survivors commit through fallbacks whenever rotation reaches the dead
/// leader.
TEST(Scenario, DegradedLinksThenCrashStaysLive) {
  ExperimentConfig cfg;
  cfg.n = 4;
  cfg.protocol = Protocol::kFallback3;
  cfg.seed = 71;
  auto targeted = std::make_unique<net::TargetedDelayModel>(1'000, 50'000, 2'000'000);
  auto* targeted_ptr = targeted.get();
  cfg.make_delay = [&targeted]() { return std::move(targeted); };
  Experiment exp(cfg);
  exp.start();

  // Phase 1: replica 1's links degrade (2s deferral >> 400ms timer).
  targeted_ptr->set_targets({1});
  exp.run_for(3'000'000);
  targeted_ptr->set_targets({});
  exp.run_for(2'000'000);

  // Its reigns forced fallbacks; it missed some of them (delayed links),
  // but everyone has exited by now and progress never stopped.
  EXPECT_GT(exp.replica(0).stats().fallbacks_entered,
            exp.replica(1).stats().fallbacks_entered);
  for (ReplicaId id = 0; id < 4; ++id) {
    EXPECT_FALSE(exp.replica(id).in_fallback()) << id;
    EXPECT_GT(exp.replica(id).ledger().size(), 10u) << id;
  }
  const std::size_t commits_before = exp.max_honest_commits();

  // Phase 2: replica 3 dies mid-run (not declared faulty anywhere — the
  // survivors cannot know, they just stop hearing from it). The three
  // remaining replicas are exactly 2f+1: steady rounds led by the dead
  // replica time out into fallbacks, and commits keep flowing.
  exp.replica(3).halt();
  exp.run_for(30'000'000);
  for (ReplicaId id = 0; id < 3; ++id) {
    EXPECT_GT(exp.replica(id).ledger().size(), commits_before + 20) << id;
  }
  EXPECT_TRUE(exp.check_safety().ok);
  const auto rep = check_invariants(exp);
  EXPECT_TRUE(rep.ok) << (rep.violations.empty() ? "" : rep.violations.front());
}

TEST(Scenario, RapidNetworkFlappingStaysSafeAndLive) {
  // The network flips between good and adversarial every ~1.5 s — faster
  // than some fallbacks complete, so entries/exits interleave heavily.
  ExperimentConfig cfg;
  cfg.n = 4;
  cfg.protocol = Protocol::kFallback3;
  cfg.scenario = NetScenario::kLeaderAttack;
  cfg.attack_delay = 2'500'000;
  cfg.seed = 72;
  Experiment exp(cfg);
  bool attack_on = false;
  auto* attack =
      dynamic_cast<net::AdaptiveLeaderAttackModel*>(&exp.network().delay_model());
  auto& e = exp;
  attack->set_targets_fn([&attack_on, &e]() {
    std::set<ReplicaId> targets;
    if (!attack_on) return targets;
    for (ReplicaId id = 0; id < e.n(); ++id) {
      targets.insert(core::round_leader(e.replica(id).current_round(), e.n(),
                                        e.config().pcfg.leader_rotation));
    }
    return targets;
  });
  exp.start();
  for (int flip = 0; flip < 20; ++flip) {
    attack_on = !attack_on;
    exp.run_for(1'500'000);
    ASSERT_TRUE(exp.check_safety().ok) << "flip " << flip;
  }
  // Over ~30s with half the time good, substantial progress must happen.
  EXPECT_GT(exp.min_honest_commits(), 50u);
  const auto rep = check_invariants(exp);
  EXPECT_TRUE(rep.ok) << (rep.violations.empty() ? "" : rep.violations.front());
}

TEST(Scenario, MassCrashRecoveryViaWal) {
  // f replicas crash simultaneously mid-run and both restart later —
  // the system stalls at no point beyond the crash window itself.
  ExperimentConfig cfg;
  cfg.n = 7;
  cfg.protocol = Protocol::kFallback3;
  cfg.seed = 73;
  cfg.enable_wal = true;
  Experiment exp(cfg);
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(20, 120'000'000));

  exp.replica(2).halt();
  exp.replica(5).halt();
  exp.run_for(5'000'000);  // system keeps going with 5 of 7
  const std::size_t mid = exp.max_honest_commits();
  EXPECT_GT(mid, 20u);

  exp.restart_replica(2);
  exp.restart_replica(5);
  ASSERT_TRUE(exp.run_until_commits(mid + 50, 600'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
  // The restarted replicas caught up fully.
  EXPECT_GE(exp.replica(2).ledger().size(), mid);
  EXPECT_GE(exp.replica(5).ledger().size(), mid);
}

TEST(Scenario, AttackDuringFallbackItself) {
  // The adversary switches targets mid-fallback (it starves whoever is
  // "leader" of the stuck round — irrelevant during a fallback, which is
  // the point: no single target matters once every replica drives a
  // chain). The fallback must still complete.
  ExperimentConfig cfg;
  cfg.n = 4;
  cfg.protocol = Protocol::kFallback3;
  cfg.scenario = NetScenario::kLeaderAttack;
  cfg.attack_delay = 4'000'000;
  cfg.seed = 74;
  Experiment exp(cfg);
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(10, 4'000'000'000ull));
  std::uint64_t entered = 0, exited = 0;
  for (ReplicaId id = 0; id < 4; ++id) {
    entered += exp.replica(id).stats().fallbacks_entered;
    exited += exp.replica(id).stats().fallbacks_exited;
  }
  EXPECT_GT(entered, 0u);
  EXPECT_GT(exited, 0u);
  EXPECT_TRUE(exp.check_safety().ok);
}

}  // namespace
}  // namespace repro::harness
