// End-to-end smoke tests: every protocol commits under a good network,
// and safety holds. Deeper behaviour is covered in the per-module and
// integration test files.
#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace repro::harness {
namespace {

ExperimentConfig base_config(Protocol p) {
  ExperimentConfig cfg;
  cfg.n = 4;
  cfg.protocol = p;
  cfg.scenario = NetScenario::kSynchronous;
  cfg.seed = 42;
  cfg.pcfg.base_timeout_us = 400'000;
  return cfg;
}

TEST(Smoke, DiemBftCommitsUnderSynchrony) {
  Experiment exp(base_config(Protocol::kDiemBft));
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(20, 60'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
}

TEST(Smoke, Fallback3CommitsUnderSynchrony) {
  Experiment exp(base_config(Protocol::kFallback3));
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(20, 60'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
}

TEST(Smoke, Fallback2CommitsUnderSynchrony) {
  Experiment exp(base_config(Protocol::kFallback2));
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(20, 60'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
}

TEST(Smoke, AlwaysFallbackCommitsUnderSynchrony) {
  Experiment exp(base_config(Protocol::kAlwaysFallback));
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(20, 120'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
}

TEST(Smoke, Fallback3CommitsUnderAsynchrony) {
  auto cfg = base_config(Protocol::kFallback3);
  cfg.scenario = NetScenario::kAsynchronous;
  Experiment exp(cfg);
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(5, 2'000'000'000ull));
  EXPECT_TRUE(exp.check_safety().ok);
}

TEST(Smoke, DiemBftStallsUnderLeaderAttack) {
  auto cfg = base_config(Protocol::kDiemBft);
  cfg.scenario = NetScenario::kLeaderAttack;
  Experiment exp(cfg);
  exp.start();
  exp.run_for(200'000'000);  // 200 virtual seconds of adversarial network
  EXPECT_EQ(exp.min_honest_commits(), 0u);
  EXPECT_TRUE(exp.check_safety().ok);
}

TEST(Smoke, Fallback3CommitsUnderLeaderAttack) {
  auto cfg = base_config(Protocol::kFallback3);
  cfg.scenario = NetScenario::kLeaderAttack;
  Experiment exp(cfg);
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(5, 2'000'000'000ull));
  EXPECT_TRUE(exp.check_safety().ok);
}

}  // namespace
}  // namespace repro::harness
