// Machine-checked structural lemmas (harness/invariants.h) over full
// adversarial runs, plus direct tests that the checkers actually detect
// violations when fed corrupted state.
#include <gtest/gtest.h>

#include "harness/invariants.h"

namespace repro::harness {
namespace {

void expect_invariants(Experiment& exp) {
  const InvariantReport rep = check_invariants(exp);
  EXPECT_TRUE(rep.ok);
  for (const auto& v : rep.violations) ADD_FAILURE() << v;
}

struct LemmaCase {
  Protocol protocol;
  NetScenario scenario;
  std::uint32_t n;
  core::FaultKind fault;  // applied to replica n-1 (kNone = all honest)
  std::uint64_t seed;
};

class LemmaSweep : public ::testing::TestWithParam<LemmaCase> {};

TEST_P(LemmaSweep, StructuralLemmasHold) {
  const LemmaCase& c = GetParam();
  ExperimentConfig cfg;
  cfg.n = c.n;
  cfg.protocol = c.protocol;
  cfg.scenario = c.scenario;
  cfg.seed = c.seed;
  if (c.fault != core::FaultKind::kNone) cfg.faults[c.n - 1] = c.fault;
  Experiment exp(cfg);
  exp.start();
  exp.run_until_commits(6, 6'000'000'000ull);
  EXPECT_TRUE(exp.check_safety().ok);
  expect_invariants(exp);
}

std::vector<LemmaCase> lemma_cases() {
  std::vector<LemmaCase> cases;
  std::uint64_t seed = 100;
  for (Protocol p : {Protocol::kFallback3, Protocol::kFallback3Adopt, Protocol::kFallback2,
                     Protocol::kAlwaysFallback, Protocol::kDiemBft}) {
    for (NetScenario s : {NetScenario::kSynchronous, NetScenario::kAsynchronous,
                          NetScenario::kLeaderAttack}) {
      if (p == Protocol::kDiemBft && s != NetScenario::kSynchronous) continue;
      for (core::FaultKind f : {core::FaultKind::kNone, core::FaultKind::kCrash,
                                core::FaultKind::kEquivocate}) {
        cases.push_back(LemmaCase{p, s, 4, f, seed++});
      }
    }
  }
  // A couple at larger scale.
  cases.push_back(LemmaCase{Protocol::kFallback3, NetScenario::kAsynchronous, 7,
                            core::FaultKind::kCrash, seed++});
  cases.push_back(LemmaCase{Protocol::kFallback2, NetScenario::kLeaderAttack, 7,
                            core::FaultKind::kNone, seed++});
  return cases;
}

std::string lemma_name(const ::testing::TestParamInfo<LemmaCase>& info) {
  const auto& c = info.param;
  std::string s = std::string(protocol_name(c.protocol)) + "_" +
                  std::to_string(static_cast<int>(c.scenario)) + "_n" + std::to_string(c.n) +
                  "_f" + std::to_string(static_cast<int>(c.fault)) + "_s" +
                  std::to_string(c.seed);
  for (auto& ch : s) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(Lemmas, LemmaSweep, ::testing::ValuesIn(lemma_cases()),
                         lemma_name);

// ---- the checkers must actually detect violations ---------------------------

TEST(InvariantChecker, DetectsLedgerDivergence) {
  ExperimentConfig cfg;
  cfg.n = 4;
  cfg.protocol = Protocol::kFallback3;
  cfg.seed = 3;
  Experiment exp(cfg);
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(5, 60'000'000));
  ASSERT_TRUE(exp.check_safety().ok);

  // Inject divergence directly into one replica's ledger: commit a block
  // that conflicts with the common prefix.
  auto& ledger = exp.replica(2).ledger();
  smr::BlockStore forged_store;
  const smr::Block forged =
      smr::Block::make(smr::genesis_certificate(), 1, 0, 0, 3, Bytes{0xde, 0xad});
  forged_store.insert(forged);
  // Build a second ledger seeded only with the forged chain to splice in.
  // commit_chain on the live ledger would refuse (ancestors committed), so
  // simulate divergence by comparing against a forged replica instead:
  smr::Ledger forged_ledger;
  forged_ledger.commit_chain(forged, forged_store, 1);
  ASSERT_EQ(forged_ledger.size(), 1u);
  // The real check: two ledgers disagreeing at position 0 is what
  // check_safety flags; verify its comparison logic directly.
  EXPECT_NE(forged_ledger.records()[0].id, ledger.records()[0].id);
}

TEST(InvariantChecker, CleanRunHasNoViolations) {
  ExperimentConfig cfg;
  cfg.n = 4;
  cfg.protocol = Protocol::kFallback3;
  cfg.scenario = NetScenario::kAsynchronous;
  cfg.seed = 4;
  Experiment exp(cfg);
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(4, 4'000'000'000ull));
  const InvariantReport rep = check_invariants(exp);
  EXPECT_TRUE(rep.ok);
  EXPECT_TRUE(rep.violations.empty());
}

}  // namespace
}  // namespace repro::harness
