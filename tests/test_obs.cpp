// Observability layer: metrics registry, log2 histograms, the trace ring
// + NDJSON codec, the timeline analyzer, the threaded logger, and the
// determinism pin (two identical sim runs emit byte-identical traces).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <regex>
#include <sstream>
#include <thread>
#include <vector>

#include "common/log.h"
#include "harness/experiment.h"
#include "obs/admin.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace repro::obs {
namespace {

TEST(Ratio, GuardsZeroDenominator) {
  EXPECT_EQ(ratio(0, 0), 0.0);
  EXPECT_EQ(ratio(17, 0), 0.0);
  EXPECT_DOUBLE_EQ(ratio(6, 3), 2.0);
  EXPECT_DOUBLE_EQ(ratio(1, 2), 0.5);
}

TEST(Counter, ActsLikeUint64AtCallSites) {
  Counter c;
  ++c;
  c += 4;
  c.inc();
  EXPECT_EQ(static_cast<std::uint64_t>(c), 6u);
  Counter copy = c;          // snapshot copy
  c += 10;
  EXPECT_EQ(copy.load(), 6u);
  EXPECT_EQ(c.load(), 16u);
  copy = 3;                  // assignment from raw value
  EXPECT_EQ(copy.load(), 3u);
  EXPECT_EQ(c - copy, 13u);  // arithmetic via implicit conversion
}

TEST(RegistrySnapshot, ConsistentUnderConcurrentIncrements) {
  Registry reg;
  Counter& c = reg.counter("test_ops_total");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 50'000;
  std::atomic<bool> done{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) ++c;
    });
  }
  // Snapshots taken mid-flight must be monotone non-decreasing and never
  // exceed the final total.
  std::uint64_t prev = 0;
  while (!done.load()) {
    const Snapshot snap = reg.snapshot();
    const std::uint64_t v = snap.value("test_ops_total");
    EXPECT_GE(v, prev);
    EXPECT_LE(v, kThreads * kPerThread);
    prev = v;
    if (v == kThreads * kPerThread) break;
    if (workers.front().joinable() && v > kThreads * kPerThread / 2) done = true;
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.snapshot().value("test_ops_total"), kThreads * kPerThread);
}

TEST(Histogram, BucketBoundariesArePowersOfTwo) {
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  for (std::size_t i = 1; i + 1 < Histogram::kBuckets; ++i) {
    const std::uint64_t upper = Histogram::bucket_upper(i);
    EXPECT_EQ(upper, (std::uint64_t{1} << i) - 1);
    EXPECT_EQ(Histogram::bucket_index(upper), i) << "upper of bucket " << i;
    EXPECT_EQ(Histogram::bucket_index(upper + 1), i + 1) << "first of bucket " << i + 1;
  }
  // The last bucket absorbs everything beyond the covered range.
  EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}), Histogram::kBuckets - 1);

  Histogram h;
  h.observe(0);
  h.observe(1);
  h.observe(2);
  h.observe(3);
  h.observe(4);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 10u);
}

TEST(RegistrySnapshot, PrometheusAndNdjsonExposition) {
  Registry reg;
  reg.counter("test_messages_total", {{"type", "vote"}}) += 7;
  reg.histogram("test_latency_us").observe(5);
  reg.attach_gauge_fn("test_depth", {}, [] { return std::uint64_t{42}; });

  const Snapshot snap = reg.snapshot();
  const std::string prom = snap.prometheus();
  EXPECT_NE(prom.find("# TYPE test_messages_total counter"), std::string::npos);
  EXPECT_NE(prom.find("test_messages_total{type=\"vote\"} 7"), std::string::npos);
  EXPECT_NE(prom.find("test_latency_us_bucket"), std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("test_latency_us_count 1"), std::string::npos);
  EXPECT_NE(prom.find("test_depth 42"), std::string::npos);

  const std::string nd = snap.ndjson();
  std::istringstream lines(nd);
  std::string line;
  std::size_t parsed = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++parsed;
  }
  EXPECT_EQ(parsed, snap.samples.size());
}

TEST(TraceRing, WraparoundKeepsNewestEvents) {
  TraceRing ring(8);
  ASSERT_TRUE(ring.enabled());
  for (std::uint64_t i = 0; i < 20; ++i) {
    TraceEvent ev;
    ev.kind = EventKind::kVoteSent;
    ev.t_us = i;
    ev.aux = i;
    ring.push(ev);
  }
  EXPECT_EQ(ring.recorded(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].aux, 12 + i) << "ring must retain the newest 8, oldest first";
  }
}

TEST(TraceRing, ZeroCapacityDisablesRecording) {
  TraceRing ring(0);
  EXPECT_FALSE(ring.enabled());
  ring.push(TraceEvent{});
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_TRUE(ring.events().empty());
}

TEST(TraceNdjson, RoundTripsEveryKind) {
  std::vector<TraceEvent> events;
  for (int k = 0; k <= static_cast<int>(EventKind::kBlockCommitted); ++k) {
    TraceEvent ev;
    ev.kind = static_cast<EventKind>(k);
    ev.replica = static_cast<ReplicaId>(k % 4);
    ev.t_us = 1000 + static_cast<SimTime>(k);
    ev.wall_us = (k % 2 == 0) ? 0 : 1'700'000'000'000'000ull + k;
    ev.view = static_cast<View>(k);
    ev.round = static_cast<Round>(2 * k);
    ev.height = static_cast<std::uint64_t>(k % 3);
    ev.aux = 0xabcdef00ull + k;
    events.push_back(ev);
  }
  const std::string text = to_ndjson(events);
  // wall_us is omitted when zero so sim traces stay deterministic.
  EXPECT_EQ(text.find("\"wall_us\":0,"), std::string::npos);
  std::size_t bad = 0;
  const auto parsed = parse_ndjson(text, &bad);
  EXPECT_EQ(bad, 0u);
  ASSERT_EQ(parsed.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_TRUE(parsed[i] == events[i]) << "event " << i;
  }
}

TEST(TraceNdjson, SkipsMalformedLinesAndCountsThem) {
  std::string text = to_ndjson({TraceEvent{}});
  text += "\nnot json at all\n{\"ev\":\"no_such_kind\",\"replica\":0}\n\n";
  std::size_t bad = 0;
  const auto parsed = parse_ndjson(text, &bad);
  EXPECT_EQ(parsed.size(), 1u);
  EXPECT_EQ(bad, 2u);
}

TEST(TraceMerge, OrdersByTimeThenReplica) {
  std::vector<std::vector<TraceEvent>> streams(2);
  TraceEvent a;
  a.replica = 1;
  a.t_us = 5;
  TraceEvent b;
  b.replica = 0;
  b.t_us = 5;
  TraceEvent c;
  c.replica = 1;
  c.t_us = 2;
  streams[0] = {c, a};
  streams[1] = {b};
  const auto merged = merge_traces(streams);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].t_us, 2u);
  EXPECT_EQ(merged[1].replica, 0u);  // at t=5, replica 0 sorts first
  EXPECT_EQ(merged[2].replica, 1u);
}

/// Two identical seeded sim runs must emit byte-identical traces — any
/// divergence means a nondeterministic input leaked into the event path.
TEST(Determinism, IdenticalRunsEmitIdenticalTraces) {
  auto run = [] {
    harness::ExperimentConfig cfg;
    cfg.n = 4;
    cfg.protocol = harness::Protocol::kFallback3;
    cfg.scenario = harness::NetScenario::kAsynchronous;
    cfg.seed = 99;
    cfg.trace_capacity = 4096;
    harness::Experiment exp(cfg);
    exp.start();
    exp.run_until_commits(4, 30'000'000'000ull);
    return exp.traces_ndjson();
  };
  const std::string first = run();
  const std::string second = run();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(Analyzer, ReportsCommitsAndFallbackWinRate) {
  harness::ExperimentConfig cfg;
  cfg.n = 4;
  cfg.protocol = harness::Protocol::kAlwaysFallback;
  cfg.scenario = harness::NetScenario::kSynchronous;
  cfg.seed = 3;
  cfg.trace_capacity = 1 << 14;
  harness::Experiment exp(cfg);
  exp.start();
  exp.run_until_commits(6, 30'000'000'000ull);

  const TraceReport report = analyze_trace(exp.trace_events());
  EXPECT_GT(report.events_total, 0u);
  EXPECT_GT(report.counts[static_cast<int>(EventKind::kBlockCommitted)], 0u);
  // Always-fallback commits exclusively through certified f-blocks.
  EXPECT_GT(report.fallback.count, 0u);
  EXPECT_EQ(report.steady.count, 0u);
  EXPECT_GT(report.fallbacks_entered, 0u);
  EXPECT_GT(report.win_rate, 0.0);
  EXPECT_LE(report.win_rate, 1.0);
  EXPECT_GT(report.fallback_duration.count, 0u);
  const std::string text = report.summary();
  EXPECT_NE(text.find("fallback win rate"), std::string::npos);
  EXPECT_NE(text.find("commit latency"), std::string::npos);
}

/// The registry serves ReplicaStats/NetStats from the protocol's own
/// storage: a snapshot must equal the struct fields exactly.
TEST(Registry, ServesReplicaAndNetStatsWithoutCopies) {
  harness::ExperimentConfig cfg;
  cfg.n = 4;
  cfg.seed = 11;
  harness::Experiment exp(cfg);
  exp.start();
  exp.run_until_commits(5, 30'000'000'000ull);

  const Snapshot snap = exp.registry().snapshot();
  std::uint64_t proposals = 0, votes = 0;
  for (ReplicaId id = 0; id < 4; ++id) {
    proposals += exp.replica(id).stats().proposals_sent;
    votes += exp.replica(id).stats().votes_sent;
    const Sample* s = snap.find("repro_proposals_sent_total",
                                {{"replica", std::to_string(id)}});
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->value, exp.replica(id).stats().proposals_sent);
  }
  EXPECT_EQ(snap.value("repro_proposals_sent_total"), proposals);
  EXPECT_EQ(snap.value("repro_votes_sent_total"), votes);
  EXPECT_EQ(snap.value("repro_net_messages_total"), exp.network().stats().messages);
  EXPECT_TRUE(snap.has("repro_commit_latency_us"));
  EXPECT_GT(snap.value("repro_committed_blocks"), 0u);
}

/// Send raw bytes to the admin port and return the full HTTP response
/// (the server answers one request per connection and closes).
std::string admin_request(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  ::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

std::string admin_get(std::uint16_t port, const std::string& path) {
  return admin_request(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

bool status_is(const std::string& response, const char* code) {
  return response.rfind(std::string("HTTP/1.0 ") + code, 0) == 0;
}

TEST(AdminServerTest, ServesAllRoutesAndHealthTurns503OnStall) {
  Registry reg;
  reg.counter("test_admin_requests_total", {}) += 3;

  auto trace = std::make_shared<TraceRing>(64);
  TraceEvent tev;
  tev.kind = EventKind::kVoteSent;
  tev.t_us = 7;
  trace->push(tev);

  auto spans = std::make_shared<SpanRing>(64);
  SpanEvent sev;
  sev.stage = SpanStage::kCommit;
  sev.t_us = 11;
  sev.key = 42;
  spans->push(sev);

  std::atomic<bool> stalled{false};
  AdminServer::Options opts;
  opts.registry = &reg;
  opts.trace = trace;
  opts.spans = spans;
  opts.replica = 2;
  opts.health_fn = [&stalled]() -> std::pair<int, std::string> {
    if (stalled.load()) return {503, "stalled last_commit_age_us=999999\n"};
    return {200, "ok last_commit_age_us=12 view=1 round=3\n"};
  };
  AdminServer srv(0, opts);
  ASSERT_TRUE(srv.running());
  ASSERT_NE(srv.port(), 0);

  const std::string metrics = admin_get(srv.port(), "/metrics");
  EXPECT_TRUE(status_is(metrics, "200")) << metrics;
  EXPECT_NE(metrics.find("test_admin_requests_total 3"), std::string::npos);

  // /trace leads with the ring-health meta line so a scraper can tell a
  // complete window from an overwritten one.
  const std::string tr = admin_get(srv.port(), "/trace");
  EXPECT_TRUE(status_is(tr, "200"));
  const std::size_t body = tr.find("\r\n\r\n");
  ASSERT_NE(body, std::string::npos);
  TraceMeta meta;
  const std::string first_line = tr.substr(body + 4, tr.find('\n', body + 4) - body - 3);
  ASSERT_TRUE(parse_trace_meta_line(first_line, &meta)) << first_line;
  EXPECT_EQ(meta.replica, 2u);
  EXPECT_EQ(meta.recorded, 1u);
  EXPECT_NE(tr.find("\"ev\":"), std::string::npos);

  const std::string sp = admin_get(srv.port(), "/spans");
  EXPECT_TRUE(status_is(sp, "200"));
  EXPECT_NE(sp.find("\"stage\":\"commit\""), std::string::npos);

  const std::string healthy = admin_get(srv.port(), "/healthz");
  EXPECT_TRUE(status_is(healthy, "200"));
  EXPECT_NE(healthy.find("last_commit_age_us=12"), std::string::npos);
  stalled.store(true);
  const std::string sick = admin_get(srv.port(), "/healthz");
  EXPECT_TRUE(status_is(sick, "503")) << sick;
  EXPECT_NE(sick.find("stalled"), std::string::npos);

  EXPECT_TRUE(status_is(admin_get(srv.port(), "/nope"), "404"));
  // No dump_fn wired: the route is absent, not an error.
  EXPECT_TRUE(status_is(admin_get(srv.port(), "/dump"), "404"));
}

TEST(AdminServerTest, RejectsOversizedAndMalformedRequestLines) {
  Registry reg;
  AdminServer::Options opts;
  opts.registry = &reg;
  AdminServer srv(0, opts);
  ASSERT_TRUE(srv.running());

  // Wrong method, missing space after the path, and a path that does not
  // start with '/' are all guesses the server refuses to make.
  EXPECT_TRUE(status_is(admin_request(srv.port(), "POST /metrics HTTP/1.0\r\n\r\n"), "400"));
  EXPECT_TRUE(status_is(admin_request(srv.port(), "GET /metrics"), "400"));
  EXPECT_TRUE(status_is(admin_request(srv.port(), "GET metrics HTTP/1.0\r\n\r\n"), "400"));
  EXPECT_TRUE(status_is(admin_request(srv.port(), "\r\n\r\n"), "400"));

  // A request line that fills the server's read buffer without a newline
  // was truncated mid-way; it must be rejected, not parsed on a guess.
  const std::string oversized(1023, 'A');
  EXPECT_TRUE(status_is(admin_request(srv.port(), oversized), "400"));

  // The server must survive all of the above and keep serving.
  EXPECT_TRUE(status_is(admin_get(srv.port(), "/metrics"), "200"));
}

/// Concurrent scrapes racing a /dump racing live span writers: every
/// response must be well-formed and every dump must be triggered exactly
/// once per request (the accept loop serializes, the sources must not
/// assume quiescence).
TEST(AdminServerTest, ConcurrentScrapesRaceDumpAndLiveWriters) {
  Registry reg;
  auto spans = std::make_shared<SpanRing>(256);
  auto trace = std::make_shared<TraceRing>(256);

  std::atomic<std::uint64_t> dump_calls{0};
  AdminServer::Options opts;
  opts.registry = &reg;
  opts.trace = trace;
  opts.spans = spans;
  opts.dump_fn = [&dump_calls, spans]() -> std::string {
    // A real dump snapshots the rings mid-flight; do the same here.
    const std::size_t n = spans->events().size();
    dump_calls.fetch_add(1);
    return "/tmp/bundle-" + std::to_string(n);
  };
  AdminServer srv(0, opts);
  ASSERT_TRUE(srv.running());

  std::atomic<bool> stop{false};
  std::thread writer([&spans, &stop] {
    SpanEvent ev;
    ev.stage = SpanStage::kVoteSend;
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      ev.t_us = ++i;
      ev.key = i;
      spans->push(ev);
    }
  });

  constexpr int kThreads = 4, kIters = 8;
  std::atomic<int> bad{0};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < kThreads; ++t) {
    scrapers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const char* path = (t % 2 == 0) ? (i % 2 == 0 ? "/spans" : "/metrics")
                                        : (i % 2 == 0 ? "/dump" : "/trace");
        const std::string resp = admin_get(srv.port(), path);
        if (!status_is(resp, "200")) bad.fetch_add(1);
      }
    });
  }
  for (auto& s : scrapers) s.join();
  stop.store(true, std::memory_order_release);
  writer.join();

  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(dump_calls.load(), kIters);  // two threads hit /dump every other turn
  EXPECT_GT(spans->recorded(), 0u);
}

TEST(AdminServerTest, DumpFailureMapsTo503) {
  AdminServer::Options opts;
  opts.dump_fn = []() -> std::string { return ""; };
  AdminServer srv(0, opts);
  ASSERT_TRUE(srv.running());
  const std::string resp = admin_get(srv.port(), "/dump");
  EXPECT_TRUE(status_is(resp, "503")) << resp;
  EXPECT_NE(resp.find("dump failed"), std::string::npos);
}

/// Every log line carries `[seconds.micros] [tN] [LEVEL] ` and arrives
/// whole even when several threads log at once (single fwrite per line).
TEST(Logger, PrefixedLinesStayWholeAcrossThreads) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  constexpr int kThreads = 4, kLines = 50;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) LOG_INFO("worker=%d line=%d", t, i);
    });
  }
  for (auto& w : workers) w.join();
  const std::string out = testing::internal::GetCapturedStderr();
  set_log_level(saved);

  const std::regex line_re(
      R"(\[ *\d+\.\d{6}\] \[t\d+\] \[INFO \] worker=\d+ line=\d+)");
  std::istringstream lines(out);
  std::string line;
  int matched = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(std::regex_match(line, line_re)) << "garbled line: " << line;
    ++matched;
  }
  EXPECT_EQ(matched, kThreads * kLines);
}

}  // namespace
}  // namespace repro::obs
