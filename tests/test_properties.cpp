// Property-based sweeps (parameterized gtest): the paper's Safety and
// Liveness theorems checked across the cross-product of protocol,
// network scenario, fault mix, system size and seed. Each instance runs a
// full system and asserts:
//   Safety  — honest committed ledgers are pairwise prefix-consistent,
//             always (Theorem 6).
//   Liveness — honest replicas keep committing whenever the protocol
//             claims liveness for the scenario (Theorem 8); DiemBFT is
//             exempt under the asynchronous adversary (Table 1).
#include <gtest/gtest.h>

#include <string>

#include "harness/experiment.h"

namespace repro::harness {
namespace {

struct SweepCase {
  Protocol protocol;
  NetScenario scenario;
  std::uint32_t n;
  /// Faults applied to the last replicas, at most f of them.
  std::vector<core::FaultKind> faults;
  std::uint64_t seed;
  bool expect_liveness;
  std::size_t commit_target;
  SimTime horizon;
};

std::string fault_tag(core::FaultKind k) {
  switch (k) {
    case core::FaultKind::kNone: return "none";
    case core::FaultKind::kCrash: return "crash";
    case core::FaultKind::kMuteLeader: return "mute";
    case core::FaultKind::kEquivocate: return "equiv";
    case core::FaultKind::kWithholdVotes: return "withhold";
    case core::FaultKind::kTimeoutSpam: return "spam";
  }
  return "?";
}

std::string scenario_tag(NetScenario s) {
  switch (s) {
    case NetScenario::kSynchronous: return "sync";
    case NetScenario::kAsynchronous: return "async";
    case NetScenario::kPartialSynchrony: return "psync";
    case NetScenario::kLeaderAttack: return "attack";
  }
  return "?";
}

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  const SweepCase& c = info.param;
  std::string name = std::string(protocol_name(c.protocol)) + "_" +
                     scenario_tag(c.scenario) + "_n" + std::to_string(c.n);
  for (auto f : c.faults) name += "_" + fault_tag(f);
  name += "_s" + std::to_string(c.seed);
  for (auto& ch : name) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  return name;
}

class ProtocolSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ProtocolSweep, SafetyAlwaysLivenessWhenClaimed) {
  const SweepCase& c = GetParam();
  ExperimentConfig cfg;
  cfg.n = c.n;
  cfg.protocol = c.protocol;
  cfg.scenario = c.scenario;
  cfg.seed = c.seed;
  const auto f = QuorumParams::for_n(c.n).f;
  ASSERT_LE(c.faults.size(), f) << "test bug: more than f faults";
  for (std::size_t i = 0; i < c.faults.size(); ++i) {
    cfg.faults[static_cast<ReplicaId>(c.n - 1 - i)] = c.faults[i];
  }

  Experiment exp(cfg);
  exp.start();
  const bool reached = exp.run_until_commits(c.commit_target, c.horizon);

  const SafetyReport safety = exp.check_safety();
  EXPECT_TRUE(safety.ok) << safety.detail;

  if (c.expect_liveness) {
    EXPECT_TRUE(reached) << "min honest commits " << exp.min_honest_commits() << "/"
                         << c.commit_target;
  } else {
    EXPECT_EQ(exp.min_honest_commits(), 0u) << "DiemBFT committed under the attack?";
  }
}

std::vector<SweepCase> make_cases() {
  std::vector<SweepCase> cases;
  const std::vector<Protocol> protocols = {Protocol::kDiemBft, Protocol::kFallback3,
                                           Protocol::kFallback3Adopt, Protocol::kFallback2,
                                           Protocol::kAlwaysFallback};

  // 1) Every protocol x {sync, psync} x {4, 7} x 2 seeds — all must be live.
  for (Protocol p : protocols) {
    for (NetScenario s : {NetScenario::kSynchronous, NetScenario::kPartialSynchrony}) {
      for (std::uint32_t n : {4u, 7u}) {
        for (std::uint64_t seed : {1ull, 2ull}) {
          cases.push_back(SweepCase{p, s, n, {}, seed, true, 8, 2'000'000'000ull});
        }
      }
    }
  }

  // 2) Asynchrony/attack: fallback family live; DiemBFT not live under
  //    the leader attack.
  for (Protocol p : {Protocol::kFallback3, Protocol::kFallback3Adopt, Protocol::kFallback2,
                     Protocol::kAlwaysFallback}) {
    for (NetScenario s : {NetScenario::kAsynchronous, NetScenario::kLeaderAttack}) {
      for (std::uint64_t seed : {3ull, 4ull}) {
        cases.push_back(SweepCase{p, s, 4, {}, seed, true, 4, 6'000'000'000ull});
      }
    }
  }
  for (std::uint64_t seed : {5ull, 6ull, 7ull}) {
    cases.push_back(SweepCase{Protocol::kDiemBft, NetScenario::kLeaderAttack, 4, {}, seed,
                              false, 1, 400'000'000ull});
  }

  // 3) Fault mixes at n = 4 (f = 1), every protocol, synchrony.
  for (Protocol p : protocols) {
    for (core::FaultKind f : {core::FaultKind::kCrash, core::FaultKind::kMuteLeader,
                              core::FaultKind::kEquivocate, core::FaultKind::kWithholdVotes,
                              core::FaultKind::kTimeoutSpam}) {
      cases.push_back(SweepCase{p, NetScenario::kSynchronous, 4, {f}, 8, true, 6,
                                4'000'000'000ull});
    }
  }

  // 4) f = 2 fault mixes at n = 7 for the main protocol, sync and async.
  using FK = core::FaultKind;
  const std::vector<std::vector<FK>> mixes = {
      {FK::kCrash, FK::kCrash},
      {FK::kCrash, FK::kEquivocate},
      {FK::kMuteLeader, FK::kWithholdVotes},
      {FK::kTimeoutSpam, FK::kCrash},
  };
  for (const auto& mix : mixes) {
    cases.push_back(SweepCase{Protocol::kFallback3, NetScenario::kSynchronous, 7, mix, 9,
                              true, 6, 4'000'000'000ull});
    cases.push_back(SweepCase{Protocol::kFallback3, NetScenario::kAsynchronous, 7, mix, 10,
                              true, 3, 8'000'000'000ull});
  }

  // 5) Crash faults under the leader attack for the 2-chain variant.
  cases.push_back(SweepCase{Protocol::kFallback2, NetScenario::kLeaderAttack, 7,
                            {FK::kCrash, FK::kCrash}, 11, true, 3, 8'000'000'000ull});

  // 6) Larger system smoke: n = 10 (f = 3) with three crashes.
  cases.push_back(SweepCase{Protocol::kFallback3, NetScenario::kSynchronous, 10,
                            {FK::kCrash, FK::kCrash, FK::kCrash}, 12, true, 5,
                            4'000'000'000ull});

  // 7) Equivocation *inside the fallback chains*: the per-proposer
  //    r̄/h̄_vote rules must keep safety while the system stays live.
  for (Protocol p : {Protocol::kFallback3, Protocol::kFallback3Adopt, Protocol::kFallback2,
                     Protocol::kAlwaysFallback}) {
    for (std::uint64_t seed : {13ull, 14ull}) {
      cases.push_back(SweepCase{p, NetScenario::kAsynchronous, 4, {FK::kEquivocate}, seed,
                                true, 3, 10'000'000'000ull});
    }
  }
  cases.push_back(SweepCase{Protocol::kFallback3, NetScenario::kLeaderAttack, 7,
                            {FK::kEquivocate, FK::kEquivocate}, 15, true, 3,
                            10'000'000'000ull});

  // 8) Adoption variants with faults under attack.
  cases.push_back(SweepCase{Protocol::kFallback3Adopt, NetScenario::kLeaderAttack, 7,
                            {FK::kCrash, FK::kMuteLeader}, 16, true, 3, 10'000'000'000ull});
  cases.push_back(SweepCase{Protocol::kAlwaysFallback, NetScenario::kAsynchronous, 7,
                            {FK::kCrash, FK::kWithholdVotes}, 17, true, 3,
                            12'000'000'000ull});

  // 9) n = 13 (f = 4) with a full mixed-fault contingent.
  cases.push_back(SweepCase{Protocol::kFallback3, NetScenario::kSynchronous, 13,
                            {FK::kCrash, FK::kEquivocate, FK::kMuteLeader, FK::kTimeoutSpam},
                            18, true, 5, 8'000'000'000ull});

  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ProtocolSweep, ::testing::ValuesIn(make_cases()),
                         case_name);

}  // namespace
}  // namespace repro::harness
